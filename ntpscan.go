// Package ntpscan is a from-scratch reproduction of "Time To Scan:
// Digging into NTP-based IPv6 Scanning" (IMC 2025): an NTP-Pool-based
// IPv6 address-sourcing and application-layer scanning system, together
// with the synthetic Internet substrate the experiments run on.
//
// The public API is a facade over the internal packages:
//
//   - Pipeline runs the paper's measurement campaign: deploy capture
//     NTP servers into pool zones, collect client addresses for the
//     four-week window, scan every address in real time with the
//     zgrab2-style module set (HTTP(S), SSH, MQTT(S), AMQP(S), CoAP),
//     build and scan a TUM-style hitlist for comparison, and analyse
//     everything.
//   - Suite reproduces every table and figure of the paper's
//     evaluation from one campaign (see EXPERIMENTS.md).
//   - DetectScanners runs the §5 telescope experiment that catches
//     third parties using NTP-based sourcing.
//
// Quickstart:
//
//	s := ntpscan.RunExperiments(ntpscan.Options{Seed: 1})
//	fmt.Print(s.All())
//
// Everything is deterministic in the seed and runs on a simulated IPv6
// Internet (the measurement substrate the paper's vantage points and
// wall-clock time provided); the protocol implementations additionally
// work over real sockets — see examples/realsockets.
package ntpscan

import (
	"ntpscan/internal/analysis"
	"ntpscan/internal/core"
	"ntpscan/internal/experiments"
	"ntpscan/internal/hitlist"
	"ntpscan/internal/world"
)

// Config tunes a measurement pipeline. The zero value (plus a Seed) is
// a sensible default; see the field documentation on core.Config.
type Config = core.Config

// WorldConfig sizes the synthetic Internet population.
type WorldConfig = world.Config

// Pipeline is a deployed measurement campaign.
type Pipeline = core.Pipeline

// NewPipeline builds the world, deploys the vantage NTP servers into
// the pool, and tunes their netspeed.
func NewPipeline(cfg Config) *Pipeline { return core.NewPipeline(cfg) }

// Dataset is one scan campaign's results with analysis indexes.
type Dataset = analysis.Dataset

// AnalysisContext carries the registries (AS, geolocation, IEEE OUI)
// analyses resolve against.
type AnalysisContext = analysis.Context

// HitlistConfig tunes TUM-style hitlist construction.
type HitlistConfig = hitlist.Config

// Options sizes an experiment suite run.
type Options = experiments.Options

// Suite is one executed campaign with every table and figure derivable
// from it.
type Suite = experiments.Suite

// RunExperiments executes the full campaign (collection, real-time NTP
// scan, hitlist build and batch scan, R&L-era comparison) and returns
// the suite for rendering individual tables or Suite.All.
func RunExperiments(opts Options) *Suite { return experiments.Run(opts) }

// CollectExperiments runs only the collection phases — enough for
// Table 1, Figure 1, Table 4, Figure 4, and Table 7 — much faster than
// RunExperiments.
func CollectExperiments(opts Options) *Suite { return experiments.CollectOnly(opts) }

// TelescopeResult is the outcome of the §5 scanner-detection
// experiment.
type TelescopeResult = experiments.Section5Result

// DetectScanners runs the telescope experiment: query pool servers from
// distinct source addresses, capture inbound traffic, and attribute
// scans to the NTP queries that leaked the addresses. The simulated
// pool contains a research-style and a covert scanning actor, modelled
// on the two operations the paper caught.
func DetectScanners(seed uint64) *TelescopeResult { return experiments.Section5(seed) }
