// Command clusterd serves a cluster control plane over the wire: the
// shard lease table, fencing epochs, and rebalance rule (a
// cluster.Fabric) behind the HTTP/JSON transport, so campaign nodes
// can run as separate processes against one shared fabric endpoint.
//
// Usage:
//
//	clusterd -shards 8 -nodes 3 [-listen 127.0.0.1:0] [-lease-ttl 2]
//
// On startup it prints one JSON status line carrying the actual listen
// address (use -listen 127.0.0.1:0 to let the OS pick a port), then
// serves until interrupted. Node processes point at it with
//
//	experiments -cluster http://ADDR -node K -nodes 3 ...
//
// Each node runs a full deterministic campaign replica; the fabric
// decides only which node's submissions are authoritative, so the node
// stores are byte-identical no matter how leases move. -shards must
// match the nodes' campaign decomposition (core.Config.CollectShards,
// default 32) or their submissions are rejected as out of range.
//
// Endpoints:
//
//	POST /v1/cluster/claim       register / rejoin, returns grants
//	POST /v1/cluster/heartbeat   renew leases, returns grants
//	POST /v1/cluster/submit      offer one shard-slice (fencing gate)
//	POST /v1/cluster/release     graceful lease handover
//	GET  /metrics                Prometheus exposition (fabric + wire)
//	GET  /healthz                liveness probe
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ntpscan/internal/cluster"
	"ntpscan/internal/cluster/transport"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// status is the single JSON line clusterd prints once it is serving.
type status struct {
	Listening string `json:"listening"`
	Shards    int    `json:"shards"`
	Nodes     int    `json:"nodes"`
	LeaseTTL  int    `json:"lease_ttl"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "HTTP listen address")
		shards   = fs.Int("shards", 0, "shard count (must match the nodes' collect shards)")
		nodes    = fs.Int("nodes", 1, "campaign node count")
		leaseTTL = fs.Int("lease-ttl", 0, "slices a grant stays valid without renewal (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards < 1 {
		fmt.Fprintln(stderr, "clusterd: -shards is required (the campaign's collect-shard count)")
		return 2
	}

	fab, err := cluster.NewFabric(*shards, cluster.Config{Nodes: *nodes, LeaseTTL: *leaseTTL})
	if err != nil {
		fmt.Fprintln(stderr, "clusterd:", err)
		return 1
	}
	wire := transport.NewServer(fab, fab.Obs)

	mux := http.NewServeMux()
	mux.Handle("/v1/cluster/", wire)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fab.Obs.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "clusterd:", err)
		return 1
	}
	json.NewEncoder(stdout).Encode(status{
		Listening: ln.Addr().String(),
		Shards:    *shards,
		Nodes:     fab.Nodes(),
		LeaseTTL:  *leaseTTL,
	})

	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, "clusterd:", err)
		return 1
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	<-serveErr
	return 0
}
