package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ntpscan/internal/chaos"
	"ntpscan/internal/cluster"
	"ntpscan/internal/cluster/transport"
	"ntpscan/internal/core"
	"ntpscan/internal/obs"
)

// startDaemon runs the daemon's run() in a goroutine on an OS-assigned
// port and returns the parsed status line plus a stop function that
// cancels it and reports the exit code.
func startDaemon(t *testing.T, args ...string) (status, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, args, pw, &stderr)
		pw.Close()
	}()
	var st status
	if err := json.NewDecoder(pr).Decode(&st); err != nil {
		cancel()
		t.Fatalf("decode status line: %v (stderr: %s)", err, stderr.String())
	}
	var once sync.Once
	var code int
	stop := func() int {
		once.Do(func() {
			cancel()
			code = <-exit
			if s := stderr.String(); s != "" {
				t.Logf("clusterd stderr: %s", s)
			}
		})
		return code
	}
	t.Cleanup(func() { stop() })
	return st, stop
}

// The daemon end to end: three campaign replicas — the exact code path
// cmd/experiments -cluster runs — against one clusterd fabric, output
// byte-identical to the single-process campaign, clean shutdown on
// cancel.
func TestClusterdServesCampaignNodes(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	ctx := context.Background()
	const nodes = 3
	seed := chaos.Seeds()[0]

	var want bytes.Buffer
	base := core.NewPipeline(chaos.Config(seed))
	if _, err := base.RunCampaign(ctx, core.CampaignOpts{Out: &want}); err != nil {
		t.Fatal(err)
	}

	st, stop := startDaemon(t,
		"-listen", "127.0.0.1:0",
		"-shards", fmt.Sprint(base.Cfg.CollectShards),
		"-nodes", fmt.Sprint(nodes),
	)
	if st.Shards != base.Cfg.CollectShards || st.Nodes != nodes {
		t.Fatalf("status = %+v, want shards %d nodes %d", st, base.Cfg.CollectShards, nodes)
	}
	baseURL := "http://" + st.Listening

	clientReg := obs.NewRegistry()
	outs := make([]bytes.Buffer, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			api := transport.NewClient(baseURL, n, clientReg)
			defer api.CloseIdle()
			p := core.NewPipeline(chaos.Config(seed))
			_, _, errs[n] = cluster.RunNode(ctx, p, api, n,
				cluster.Config{Nodes: nodes}, core.CampaignOpts{Out: &outs[n]})
		}()
	}
	wg.Wait()
	for n := 0; n < nodes; n++ {
		if errs[n] != nil {
			t.Fatalf("node %d: %v", n, errs[n])
		}
		if !bytes.Equal(outs[n].Bytes(), want.Bytes()) {
			t.Errorf("node %d output via clusterd diverges from single-process run (%d vs %d bytes)",
				n, outs[n].Len(), want.Len())
		}
	}

	// The ops surface: liveness and the merged fabric+wire metric
	// families on the same mux.
	hr, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d, want 200", hr.StatusCode)
	}
	mr, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"cluster_tasks_completed_total",
		"transport_server_requests_total",
	} {
		if !strings.Contains(string(metrics), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}

	if code := stop(); code != 0 {
		t.Errorf("clusterd exit code = %d, want 0", code)
	}
}

func TestClusterdRejectsBadFlags(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	var out, errOut bytes.Buffer
	if code := run(context.Background(), nil, &out, &errOut); code != 2 {
		t.Errorf("run with no -shards = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-shards") {
		t.Errorf("missing-shards error %q does not name the flag", errOut.String())
	}
	if code := run(context.Background(), []string{"-shards", "4", "-listen", "127.0.0.1:port"},
		&out, &errOut); code != 1 {
		t.Errorf("run with unparseable listen address = %d, want 1", code)
	}
}
