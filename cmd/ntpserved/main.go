// Command ntpserved runs a capture-enabled SNTP server on a real UDP
// socket — the paper's modified pool-server instrumentation, usable
// against genuine clients (ntpdate/chronyd/sntp pointed at it will get
// correct time while the server logs their source addresses).
//
// Usage:
//
//	ntpserved [-listen :123] [-stratum 2] [-refid GPS\0] [-quiet]
//
// Captured client addresses are written to stdout as JSON lines:
//
//	{"addr":"2001:db8::1","port":50000,"time":"..."}
//
// Binding port 123 requires privileges; any port works for testing
// (sntp -p 1 127.0.0.1:11123 style clients).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"

	"ntpscan/internal/ntp"
)

type captureLine struct {
	Addr string    `json:"addr"`
	Port uint16    `json:"port"`
	Time time.Time `json:"time"`
}

func main() {
	var (
		listen  = flag.String("listen", ":11123", "UDP listen address")
		stratum = flag.Int("stratum", 2, "reported stratum")
		refid   = flag.String("refid", "GPS", "4-byte reference ID")
		quiet   = flag.Bool("quiet", false, "suppress capture logging (serve only)")
	)
	flag.Parse()

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	defer conn.Close()

	var rid [4]byte
	copy(rid[:], *refid)
	enc := json.NewEncoder(os.Stdout)
	srv := ntp.NewServer(ntp.ServerConfig{
		Stratum:     uint8(*stratum),
		ReferenceID: rid,
		Capture: func(client netip.AddrPort, at time.Time) {
			if *quiet {
				return
			}
			enc.Encode(captureLine{
				Addr: client.Addr().String(),
				Port: client.Port(),
				Time: at.UTC(),
			})
		},
	})

	fmt.Fprintf(os.Stderr, "ntpserved: answering SNTP on %s (stratum %d)\n",
		conn.LocalAddr(), *stratum)
	if err := srv.Serve(conn); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
