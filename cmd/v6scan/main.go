// Command v6scan is the zgrab2-style application-layer scanner. It
// scans IPv6 targets with the paper's module set (HTTP, HTTPS, SSH,
// MQTT, MQTTS, AMQP, AMQPS, CoAP) and writes one JSON result per probe
// to stdout.
//
// By default targets live in the simulated world, regenerated from the
// seed so a target list produced by poolsim with the same seed hits the
// same hosts:
//
//	poolsim -seed 7 | v6scan -seed 7 -targets -
//	v6scan -seed 7 -hitlist
//
// With -real the scanner uses kernel sockets instead and probes actual
// hosts (only scan infrastructure you operate; see the paper's
// Appendix A):
//
//	v6scan -real -targets targets.txt -modules http,ssh -ports ssh=2222
//
// -store DIR additionally persists the results to a columnar store
// directory that cmd/analyze reads directly:
//
//	v6scan -seed 7 -hitlist -store scan.store && analyze -ntp scan.store
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ntpscan/internal/core"
	"ntpscan/internal/hitlist"
	"ntpscan/internal/netsim"
	"ntpscan/internal/obs"
	"ntpscan/internal/prof"
	"ntpscan/internal/store"
	"ntpscan/internal/world"
	"ntpscan/internal/zgrab"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 20240720, "world seed (must match the target source)")
		deviceScale = flag.Float64("device-scale", 3e-3, "responsive population scale")
		addrScale   = flag.Float64("addr-scale", 6e-6, "address-only population scale")
		asScale     = flag.Float64("as-scale", 0.03, "AS count scale")
		targets     = flag.String("targets", "", "target file, '-' for stdin")
		useHitlist  = flag.Bool("hitlist", false, "build and scan the TUM-style hitlist")
		workers     = flag.Int("workers", 64, "worker pool size")
		rate        = flag.Float64("rate", 0, "probe rate limit in pps (0 = unlimited)")
		modules     = flag.String("modules", "", "comma-separated module subset (default: all)")
		real        = flag.Bool("real", false, "scan real networks with kernel sockets instead of the simulation")
		ports       = flag.String("ports", "", "port overrides, e.g. http=8080,ssh=2222")
		storeDir    = flag.String("store", "", "also persist results to a columnar store DIR (readable by cmd/analyze)")
		metricsOut  = flag.String("metrics", "", "write Prometheus-format metrics to FILE at exit")
	)
	profCfg := prof.Flags(nil)
	flag.Parse()
	stopProf, err := profCfg.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "v6scan:", err)
		os.Exit(1)
	}
	if !*useHitlist && *targets == "" {
		fmt.Fprintln(os.Stderr, "v6scan: need -targets FILE or -hitlist")
		os.Exit(2)
	}

	overrides, err := parsePorts(*ports)
	if err != nil {
		fmt.Fprintln(os.Stderr, "v6scan:", err)
		os.Exit(2)
	}

	var fabric *netsim.Network
	var transport zgrab.Net
	var timeout = 500 * time.Millisecond
	if *real {
		if *useHitlist {
			fmt.Fprintln(os.Stderr, "v6scan: -hitlist requires the simulation (drop -real)")
			os.Exit(2)
		}
		transport = zgrab.NewRealNet()
		timeout = 3 * time.Second
	}

	// One registry for the whole process: in simulation it is the
	// pipeline's (so collection metrics land in the same exposition),
	// for -real scans a standalone one.
	reg := obs.NewRegistry()

	var p *core.Pipeline
	if !*real {
		p = core.NewPipeline(core.Config{
			Seed: *seed,
			World: world.Config{
				DeviceScale: *deviceScale,
				AddrScale:   *addrScale,
				ASScale:     *asScale,
			},
			Workers: *workers,
		})
		// Reconstruct the world at the end of the collection window:
		// static deployments plus every dynamic device at its final
		// address. Targets captured in earlier epochs have churned and
		// stay dark — exactly the staleness §6 warns saved lists suffer
		// from.
		p.W.RegisterAllAt(p.W.Cfg.Start.Add(world.CollectionWindow))
		fabric = p.W.Fabric()
		timeout = p.Cfg.Timeout
		reg = p.Obs
	}

	var list []netip.Addr
	if *useHitlist {
		h := p.BuildHitlist(hitlist.Config{})
		list = h.Full
		fmt.Fprintf(os.Stderr, "v6scan: hitlist with %d targets\n", len(list))
	} else {
		var err error
		list, err = readTargets(*targets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "v6scan:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "v6scan: %d targets\n", len(list))
	}

	var st *store.Store
	var stRows []*zgrab.Result
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{Obs: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "v6scan:", err)
			os.Exit(1)
		}
	}

	bw := bufio.NewWriter(os.Stdout)
	defer bw.Flush()
	jw := zgrab.NewJSONLWriter(bw)
	var limiter zgrab.Limiter
	if *rate > 0 {
		limiter = zgrab.NewTokenBucket(*rate, *rate/10+1)
	}
	var mods []zgrab.Module
	if *modules != "" {
		var err error
		mods, err = zgrab.ModulesByName(strings.Split(*modules, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "v6scan:", err)
			os.Exit(2)
		}
	}
	scanner := zgrab.NewScanner(zgrab.Config{
		Fabric:        fabric,
		Net:           transport,
		Source:        core.ScanSource,
		Obs:           reg,
		Workers:       *workers,
		Timeout:       timeout,
		Modules:       mods,
		Limiter:       limiter,
		PortOverrides: overrides,
		OnResult: func(r *zgrab.Result) {
			jw.Write(r)
			if st != nil {
				stRows = append(stRows, r)
			}
		},
	})
	scanner.Start(context.Background())
	for _, a := range list {
		scanner.Submit(a)
	}
	scanner.Close()
	bw.Flush()
	if st != nil {
		err := st.AppendResults(stRows)
		if err == nil {
			err = st.Seal()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "v6scan:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "v6scan: wrote store to", *storeDir)
	}
	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "v6scan:", err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "v6scan:", err)
	}
	fmt.Fprintf(os.Stderr, "v6scan: wrote %d results\n", jw.Count())
}

func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parsePorts(spec string) (map[string]uint16, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]uint16{}
	for _, kv := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad port override %q (want module=port)", kv)
		}
		port, err := strconv.ParseUint(val, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad port in %q: %v", kv, err)
		}
		out[name] = uint16(port)
	}
	return out, nil
}

func readTargets(path string) ([]netip.Addr, error) {
	var in *os.File
	if path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	var out []netip.Addr
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		a, err := netip.ParseAddr(line)
		if err != nil {
			return nil, fmt.Errorf("bad target %q: %v", line, err)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, sc.Err()
}
