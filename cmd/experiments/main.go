// Command experiments regenerates every table and figure of the paper's
// evaluation from one simulated measurement campaign.
//
// Usage:
//
//	experiments [-seed N] [-device-scale F] [-addr-scale F] [-as-scale F]
//	            [-collect-only] [-ablations] [-linkplan FILE]
//	            [-congestion-ladder] [-out FILE]
//
// The output is the complete rendered evaluation; EXPERIMENTS.md embeds
// a run of this command.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ntpscan"
	"ntpscan/internal/experiments"
	"ntpscan/internal/netsim/link"
	"ntpscan/internal/prof"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 20240720, "experiment seed")
		deviceScale = flag.Float64("device-scale", 3e-3, "scan-responsive population scale")
		addrScale   = flag.Float64("addr-scale", 6e-6, "address-only population scale")
		asScale     = flag.Float64("as-scale", 0.03, "AS count scale")
		workers     = flag.Int("workers", 64, "scan worker pool size")
		nodes       = flag.Int("nodes", 1, "run the NTP campaign through a fault-tolerant cluster of N nodes (coordinator + shard leases; output is byte-identical at any N)")
		clusterURL  = flag.String("cluster", "", "multi-process node mode: clusterd base URL (http://addr); pair with -node and -nodes")
		nodeID      = flag.Int("node", 0, "this process's node index under -cluster (0-based)")
		lazy        = flag.Bool("lazy", false, "derive the address-only population on demand through bounded arenas (bit-identical output, sub-linear memory)")
		collectOnly = flag.Bool("collect-only", false, "collection tables only (fast)")
		ablations   = flag.Bool("ablations", false, "also run the ablation experiments")
		out         = flag.String("out", "", "write output to file instead of stdout")
		storeDir    = flag.String("store", "", "persist campaign results to a columnar store DIR (readable by cmd/analyze)")
		metricsOut  = flag.String("metrics", "", "write the campaign's Prometheus-format metrics to FILE at exit")
		linkPlan    = flag.String("linkplan", "", "run the campaign behind the queued-link emulation described by this JSON plan FILE (see internal/netsim/link)")
		ladder      = flag.Bool("congestion-ladder", false, "run only the congestion ladder: the collection campaign at increasing link utilization")
	)
	profCfg := prof.Flags(nil)
	flag.Parse()
	stopProf, err := profCfg.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	opts := ntpscan.Options{
		Seed:        *seed,
		DeviceScale: *deviceScale,
		AddrScale:   *addrScale,
		ASScale:     *asScale,
		Workers:     *workers,
		Nodes:       *nodes,
		ClusterURL:  *clusterURL,
		NodeID:      *nodeID,
		StoreDir:    *storeDir,
		LazyWorld:   *lazy,
	}
	if *clusterURL != "" && *collectOnly {
		fmt.Fprintln(os.Stderr, "experiments: -cluster needs the scan campaign (drop -collect-only)")
		os.Exit(2)
	}
	if *linkPlan != "" {
		blob, err := os.ReadFile(*linkPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		lp, err := link.Decode(blob)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", *linkPlan, err)
			os.Exit(1)
		}
		opts.LinkPlan = lp
	}
	if *ladder {
		fmt.Fprintln(os.Stderr, "running congestion ladder (collection at increasing link utilization)...")
		render := experiments.CongestionLadder(*seed)
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		if *out != "" {
			if err := os.WriteFile(*out, []byte(render), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "write:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "wrote", *out)
			return
		}
		fmt.Print(render)
		return
	}

	var b strings.Builder
	var suite *ntpscan.Suite
	if *collectOnly {
		if *storeDir != "" {
			fmt.Fprintln(os.Stderr, "experiments: -store needs the scan campaign (drop -collect-only)")
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "running collection phases...")
		suite = ntpscan.CollectExperiments(opts)
	} else {
		fmt.Fprintln(os.Stderr, "running full campaign (collection, real-time scan, hitlist, R&L era)...")
		suite = ntpscan.RunExperiments(opts)
	}
	if suite.Err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", suite.Err)
		os.Exit(1)
	}
	if *storeDir != "" {
		fmt.Fprintln(os.Stderr, "wrote campaign store to", *storeDir)
	}
	b.WriteString(suite.All())

	if !*collectOnly {
		fmt.Fprintln(os.Stderr, "running telescope experiment (§5)...")
		b.WriteString(ntpscan.DetectScanners(*seed).Rendered)
	}
	if *ablations && !*collectOnly {
		fmt.Fprintln(os.Stderr, "running ablations and extensions...")
		b.WriteString(experiments.AblationDedup(suite))
		b.WriteString(experiments.AblationNetspeed(*seed))
		b.WriteString(experiments.AblationTitleThreshold(suite))
		abOpts := opts
		abOpts.DeviceScale /= 5
		b.WriteString(experiments.AblationFeedVsBatch(abOpts))
		b.WriteString(experiments.ExtensionTargetGen(suite, 2000))
		b.WriteString(experiments.ExtensionGeneratedVsLive(suite))
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = suite.P.Obs.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote metrics to", *metricsOut)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *out)
		return
	}
	fmt.Print(b.String())
}
