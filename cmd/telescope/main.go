// Command telescope runs the §5 scanner-detection experiment: query
// pool servers from distinct source addresses in a monitored prefix,
// capture everything arriving there, and attribute inbound scans to the
// NTP queries that leaked the addresses.
//
// Usage:
//
//	telescope [-seed N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"ntpscan"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 7, "experiment seed")
		verbose = flag.Bool("v", false, "dump per-campaign source addresses")
	)
	flag.Parse()

	res := ntpscan.DetectScanners(*seed)
	fmt.Print(res.Rendered)

	if *verbose {
		for _, c := range res.Report.Campaigns {
			fmt.Printf("campaign %s sources:\n", c.SourceNet)
			for _, s := range c.Sources {
				fmt.Printf("  %s\n", s)
			}
		}
	}
	if res.Report.ScatterPackets > 0 {
		fmt.Fprintf(os.Stderr,
			"warning: %d packets hit never-queried addresses (random scanning in the area)\n",
			res.Report.ScatterPackets)
	}
}
