// Command analyze turns saved scan results into the paper's analysis
// tables without re-running any scans:
//
//	poolsim -seed 7 | v6scan -seed 7 -targets -  > ntp.jsonl
//	v6scan -seed 7 -hitlist                      > hitlist.jsonl
//	analyze -seed 7 -ntp ntp.jsonl -hitlist hitlist.jsonl
//
// An input path may be a JSONL file (decoded as a stream — no slurp)
// or a columnar store directory (read through the query engine, which
// skips non-result blocks outright; the pruning stats land on stderr).
// The seed regenerates the world's registries (AS, geolocation, OUI)
// so addresses resolve; it must match the seed the scans ran under.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ntpscan/internal/analysis"
	"ntpscan/internal/store"
	"ntpscan/internal/tabulate"
	"ntpscan/internal/world"
	"ntpscan/internal/zgrab"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 20240720, "world seed the scans ran under")
		deviceScale = flag.Float64("device-scale", 3e-3, "must match the scan run")
		addrScale   = flag.Float64("addr-scale", 6e-6, "must match the scan run")
		asScale     = flag.Float64("as-scale", 0.03, "must match the scan run")
		ntpPath     = flag.String("ntp", "", "JSONL results of the NTP-sourced scan")
		hitPath     = flag.String("hitlist", "", "JSONL results of the hitlist scan")
	)
	flag.Parse()
	if *ntpPath == "" {
		fmt.Fprintln(os.Stderr, "analyze: need -ntp FILE (and optionally -hitlist FILE)")
		os.Exit(2)
	}

	w := world.New(world.Config{
		Seed: *seed, DeviceScale: *deviceScale, AddrScale: *addrScale, ASScale: *asScale,
	})
	ctx := &analysis.Context{AS: w.ASReg, Geo: w.Geo, OUI: w.OUIReg}

	ntp, err := loadDataset("ntp", *ntpPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	datasets := []*analysis.Dataset{ntp}
	names := []string{"NTP-sourced"}
	if *hitPath != "" {
		hit, err := loadDataset("hitlist", *hitPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		datasets = append(datasets, hit)
		names = append(names, "Hitlist")
	}

	// Table 2.
	t2 := tabulate.New("Successful scans by protocol",
		append([]string{"Protocol"}, expand(names, "#Addrs", "Certs/Keys")...)...)
	rowsPer := make([][]analysis.Table2Row, len(datasets))
	for i, d := range datasets {
		rowsPer[i] = analysis.Table2(d)
	}
	for ri := range rowsPer[0] {
		cells := []string{rowsPer[0][ri].Protocol}
		for i := range datasets {
			cells = append(cells,
				tabulate.Count(rowsPer[i][ri].Addrs),
				tabulate.Count(rowsPer[i][ri].CertsKeys))
		}
		t2.Cells(cells...)
	}
	fmt.Print(t2.String())
	fmt.Println()

	// Device types.
	for i, d := range datasets {
		tt := tabulate.New("Title groups ("+names[i]+")", "Group", "#Certs").
			SetAligns(tabulate.Left, tabulate.Right)
		for gi, g := range analysis.TitleGroups(d) {
			if gi >= 12 {
				break
			}
			tt.Cells(g.Representative, tabulate.Count(g.Certs))
		}
		fmt.Print(tt.String())
		fmt.Println()
	}

	// Security.
	patch := analysis.SSHOutdated(datasets...)
	ts := tabulate.New("SSH patch state", "Dataset", "Assessable", "Outdated", "Share").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right)
	for i := range datasets {
		ts.Cells(names[i], tabulate.Count(patch[i].Assessable),
			tabulate.Count(patch[i].Outdated), tabulate.Pct(patch[i].OutdatedShare()))
	}
	fmt.Print(ts.String())
	fmt.Println()

	shares := analysis.SecureShares(datasets...)
	th := tabulate.New("Secure share (SSH + IoT hosts)", "Dataset", "Hosts", "Secure", "Share").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right)
	for i := range datasets {
		th.Cells(names[i], tabulate.Count(shares[i].Hosts),
			tabulate.Count(shares[i].Secure), tabulate.Pct(shares[i].Share()))
	}
	fmt.Print(th.String())

	_ = ctx // reserved for per-AS analyses below
	kr := analysis.KeyReuse(ctx, ntp)
	fmt.Printf("\nkey reuse (NTP): %d reused keys over %d addresses (top key: %d addrs, %d ASes)\n",
		kr.ReusedKeys, kr.ReusedIPs, kr.TopKeyIPs, kr.TopKeyASes)
}

func loadDataset(name, path string) (*analysis.Dataset, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		return loadStoreDataset(name, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	d := analysis.NewDataset(name, nil)
	if err := zgrab.DecodeJSONL(br, func(r *zgrab.Result) error {
		d.Add(r)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// loadStoreDataset streams result rows out of a columnar store
// directory. The result-kind predicate pushes down to the footer
// index, so capture blocks are skipped without being read; the scan
// stats quantify it.
func loadStoreDataset(name, dir string) (*analysis.Dataset, error) {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	next, stats := st.Results(store.Pred{})
	d, err := analysis.NewDatasetStream(name, next)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	s := stats()
	fmt.Fprintf(os.Stderr,
		"analyze: %s: %d segments, read %d blocks (%d bytes), skipped %d blocks (%d bytes) via index pruning\n",
		dir, s.Segments, s.BlocksRead, s.BytesRead, s.BlocksSkipped, s.BytesSkipped)
	return d, nil
}

func expand(names []string, cols ...string) []string {
	var out []string
	for _, n := range names {
		for _, c := range cols {
			out = append(out, n+" "+c)
		}
	}
	return out
}
