package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"ntpscan/internal/store"
	"ntpscan/internal/zgrab"
)

func seedStore(t *testing.T, dir string) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mods := []string{"http", "https", "ssh"}
	for sl := 0; sl < 3; sl++ {
		var caps []store.CaptureRow
		var results []*zgrab.Result
		for i := 0; i < 50; i++ {
			var b [16]byte
			b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x0d, 0xb8
			b[15] = byte(sl*50 + i)
			addr := netip.AddrFrom16(b)
			caps = append(caps, store.CaptureRow{Addr: addr, Vantage: "DE"})
			results = append(results, &zgrab.Result{
				IP: addr, Module: mods[i%len(mods)], Port: 443,
				Time: time.Unix(0, int64(i)).UTC(), Status: zgrab.StatusSuccess,
				Seq: int64(sl*1000 + i),
			})
		}
		if err := st.AppendSlice(sl, caps, results); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
}

// startQueryd runs run() against args, waits for the status line, and
// returns the parsed status plus a shutdown func that asserts exit 0.
func startQueryd(t *testing.T, args []string) (status, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan int, 1)
	var stderr bytes.Buffer
	go func() {
		code := run(ctx, args, pw, &stderr)
		pw.Close()
		done <- code
	}()
	var st status
	if err := json.NewDecoder(pr).Decode(&st); err != nil {
		cancel()
		t.Fatalf("no status line: %v (stderr: %s)", err, stderr.String())
	}
	return st, func() {
		cancel()
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("queryd exit %d (stderr: %s)", code, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Error("queryd did not shut down")
		}
	}
}

func TestQuerydOffline(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	st, shutdown := startQueryd(t, []string{"-store", dir, "-listen", "127.0.0.1:0"})
	defer shutdown()

	if st.Mode != "offline" || st.Captures != 150 || st.Results != 150 {
		t.Fatalf("status = %+v", st)
	}
	base := "http://" + st.Listening

	resp, err := http.Get(base + "/v1/tables/modules")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"module":"http"`)) {
		t.Fatalf("modules: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/v1/query?kind=results&module=ssh&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"stats"`)) {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("queryd_requests_total")) {
		t.Fatalf("metrics missing queryd families:\n%s", body)
	}
}

func TestQuerydDemoServesDuringCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("demo campaign in -short")
	}
	st, shutdown := startQueryd(t, []string{"-demo-seed", "7", "-listen", "127.0.0.1:0"})
	defer shutdown()
	if st.Mode != "live" {
		t.Fatalf("status = %+v", st)
	}
	base := "http://" + st.Listening
	// Poll the modules table while the campaign runs: it must always
	// answer, and eventually carry rows as slices drain.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/tables/modules")
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Data []struct {
				Module  string `json:"module"`
				Results int64  `json:"results"`
			} `json:"data"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("modules: %d %v", resp.StatusCode, err)
		}
		filled := false
		for _, row := range env.Data {
			if row.Results > 0 {
				filled = true
			}
		}
		if filled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("modules table never filled during demo campaign")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestQuerydArgErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("no -store: exit %d", code)
	}
	if !strings.Contains(errb.String(), "-store is required") {
		t.Fatalf("stderr: %s", errb.String())
	}
	if code := run(context.Background(), []string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := run(context.Background(), []string{"-store", t.TempDir(), "-listen", "256.256.256.256:0"}, &out, &errb); code != 1 {
		t.Fatalf("bad listen addr: exit %d", code)
	}
}
