// Command queryd serves a columnar scan store over HTTP/JSON: the
// paper's tables (modules, Table 2, vantages, /48 networks, the
// collection timeline) from incrementally-maintained materialized
// aggregates, plus ad-hoc predicate scans with full block-index
// pushdown and a shared decoded-block cache.
//
// Usage:
//
//	queryd -store DIR [-listen :8080] [-cache-bytes N] [-max-rows N]
//	queryd -demo-seed 42 [-store DIR] [...]
//
// Offline mode (-store) opens an existing store directory — typically
// one a campaign sealed — recomputes the aggregates with one full
// scan, and serves. Demo mode (-demo-seed) runs a simulated campaign
// into the store while serving: the aggregate tables advance at every
// slice drain and queries run against the growing store, which is the
// daemon's live-serving configuration.
//
// Endpoints:
//
//	GET /v1/tables/modules            per-module results/successes/addrs
//	GET /v1/tables/table2             the paper's Table 2
//	GET /v1/tables/vantages           per-vantage captures/addrs
//	GET /v1/tables/prefixes?n=20      top /48 networks by distinct addrs
//	GET /v1/tables/slices             collection timeline
//	GET /v1/query?...                 ad-hoc scan (kind, module, vantage,
//	                                  prefix, slice_lo/hi, limit)
//	GET /metrics                      Prometheus exposition
//
// Every JSON response carries a stats envelope: elapsed_ns, rows, and
// for scans the pruning evidence (blocks read/skipped, bytes, cache
// hits/misses).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ntpscan/internal/core"
	"ntpscan/internal/obs"
	"ntpscan/internal/query"
	"ntpscan/internal/store"
	"ntpscan/internal/world"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// status is the single JSON line queryd prints once it is serving.
type status struct {
	Listening string `json:"listening"`
	Mode      string `json:"mode"`
	Segments  int    `json:"segments"`
	Captures  int64  `json:"captures"`
	Results   int64  `json:"results"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("queryd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir        = fs.String("store", "", "store directory (existing unless -demo-seed)")
		listen     = fs.String("listen", ":8080", "HTTP listen address")
		cacheBytes = fs.Int64("cache-bytes", 0, "decoded-block cache budget (0 = default, <0 disables)")
		footerEnts = fs.Int("footer-entries", 0, "parsed-footer cache entries (0 = default, <0 disables)")
		maxRows    = fs.Int("max-rows", 0, "default /v1/query row cap (0 = built-in default)")
		demoSeed   = fs.Uint64("demo-seed", 0, "run a simulated campaign into the store while serving")
		workers    = fs.Int("workers", 8, "demo campaign worker count")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" && *demoSeed == 0 {
		fmt.Fprintln(stderr, "queryd: -store is required (or -demo-seed for a simulated campaign)")
		return 2
	}
	if *dir == "" {
		d, err := os.MkdirTemp("", "queryd-demo-*")
		if err != nil {
			fmt.Fprintln(stderr, "queryd:", err)
			return 1
		}
		defer os.RemoveAll(d)
		*dir = d
	}

	reg := obs.NewRegistry()
	st, err := store.Open(*dir, store.Options{
		Obs:                reg,
		BlockCacheBytes:    *cacheBytes,
		FooterCacheEntries: *footerEnts,
	})
	if err != nil {
		fmt.Fprintln(stderr, "queryd:", err)
		return 1
	}

	mode := "offline"
	agg := query.NewAggregates()
	campaignDone := make(chan error, 1)
	if *demoSeed != 0 {
		mode = "live"
		p := core.NewPipeline(core.Config{
			Seed: *demoSeed,
			World: world.Config{
				DeviceScale: 1e-3,
				AddrScale:   1e-6,
				ASScale:     0.02,
			},
			Workers:       *workers,
			CaptureBudget: 2000,
		})
		go func() {
			_, err := p.RunCampaign(ctx, core.CampaignOpts{Store: st, Aggregates: agg})
			campaignDone <- err
		}()
	} else {
		close(campaignDone)
		if agg, err = query.FromStore(st); err != nil {
			fmt.Fprintln(stderr, "queryd:", err)
			return 1
		}
	}

	srv := query.NewServer(st, agg, reg)
	srv.MaxRows = *maxRows
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "queryd:", err)
		return 1
	}

	caps, results, err := st.Rows()
	if err != nil {
		fmt.Fprintln(stderr, "queryd:", err)
		return 1
	}
	json.NewEncoder(stdout).Encode(status{
		Listening: ln.Addr().String(),
		Mode:      mode,
		Segments:  len(st.Manifest().Segments),
		Captures:  caps,
		Results:   results,
	})

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, "queryd:", err)
		return 1
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	<-serveErr
	if cerr := <-campaignDone; cerr != nil && ctx.Err() == nil {
		fmt.Fprintln(stderr, "queryd: campaign:", cerr)
		return 1
	}
	return 0
}
