// Command benchjson runs a package's benchmarks and records the
// results, together with host metadata and an optional baseline, in a
// JSON file at the repo root.
//
//	go run ./cmd/benchjson -out BENCH_pipeline.json
//	go run ./cmd/benchjson -pkg ./internal/store/ -bench 'BenchmarkStore|BenchmarkJSONL' \
//	    -baseline none -out BENCH_store.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Baseline numbers measured on the serial pipeline (commit before the
// sharded collection→scan rework), NTPSCAN_SCALE=1, single run.
var baseline = []Bench{
	{Name: "BenchmarkFullCampaign", NsPerOp: 1628832620, BytesPerOp: 322624880, AllocsPerOp: 2690083},
	{Name: "BenchmarkTable2ScanResults", NsPerOp: 69457198, BytesPerOp: 19804477, AllocsPerOp: 1270},
}

const baselineHost = "Intel Xeon @ 2.70GHz, linux/amd64, 1 CPU visible (containerised)"

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// LiveHeapBytes is the custom live-heap-B metric reported by the
	// scale ladder (BenchmarkCampaignScale): bytes of heap a run
	// retains after GC, the resident-memory number the sub-linear
	// ladder asserts on.
	LiveHeapBytes float64 `json:"live_heap_bytes,omitempty"`
	// P50Ns/P99Ns/RPS are the serving-benchmark metrics (p50-ns,
	// p99-ns, rps): per-request latency percentiles and throughput
	// from the query daemon's concurrent-client harness. The
	// percentiles gate tail latency in -compare mode; rps is recorded
	// for the report but not gated (it is the reciprocal view of the
	// same measurement).
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
	RPS   float64 `json:"rps,omitempty"`
	// XClean is the congested-campaign cost ratio (x-clean) reported
	// by BenchmarkCampaignCongested: congested ns/op over clean ns/op
	// on the same seeds. The benchmark gates itself (< 2x) when
	// NTPSCAN_BENCH_COMPARE=1; the ratio is recorded here for the
	// report.
	XClean float64 `json:"x_clean,omitempty"`
}

// Report is the BENCH_pipeline.json schema.
type Report struct {
	Generated string  `json:"generated"`
	Host      Host    `json:"host"`
	Note      string  `json:"note"`
	Before    Section `json:"before"`
	After     Section `json:"after"`
}

// Host describes the machine the "after" numbers come from.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// Section pairs benchmark numbers with the host they ran on.
type Section struct {
	Host    string  `json:"host"`
	Results []Bench `json:"results"`
}

// benchLine parses one `go test -bench` result line. Custom metrics
// print after ns/op sorted alphabetically by unit, so the optional
// groups appear in exactly this order: live-heap-B < p50-ns < p99-ns
// < rps < x-clean, then the -benchmem columns.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op` +
	`(?:\s+(\d+(?:\.\d+)?) live-heap-B)?` +
	`(?:\s+(\d+(?:\.\d+)?) p50-ns)?` +
	`(?:\s+(\d+(?:\.\d+)?) p99-ns)?` +
	`(?:\s+(\d+(?:\.\d+)?) rps)?` +
	`(?:\s+(\d+(?:\.\d+)?) x-clean)?` +
	`(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseBench(out string) []Bench {
	var res []Bench
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		b := Bench{Name: m[1]}
		b.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			b.LiveHeapBytes, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			b.P50Ns, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			b.P99Ns, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			b.RPS, _ = strconv.ParseFloat(m[6], 64)
		}
		if m[7] != "" {
			b.XClean, _ = strconv.ParseFloat(m[7], 64)
		}
		if m[8] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(m[8], 64)
		}
		if m[9] != "" {
			b.AllocsPerOp, _ = strconv.ParseFloat(m[9], 64)
		}
		res = append(res, b)
	}
	return res
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output file (and -compare baseline)")
	pkg := flag.String("pkg", ".", "package to benchmark")
	pattern := flag.String("bench", "BenchmarkFullCampaign$|BenchmarkCampaignWorkers$|BenchmarkCampaignScale$|BenchmarkCampaignCongested$|BenchmarkTable2ScanResults$", "benchmark regexp")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (fixed so runs are comparable)")
	baselineKind := flag.String("baseline", "pipeline", "embedded \"before\" section: pipeline (the serial-pipeline numbers) or none (cross-format comparisons live side by side in the \"after\" results)")
	note := flag.String("note", "", "override the report note")
	compare := flag.Bool("compare", false, "compare a fresh run against the committed baseline's \"after\" block and exit non-zero on regression")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional regression for bytes/op and allocs/op in -compare mode")
	nsThreshold := flag.Float64("ns-threshold", 1.00, "allowed fractional regression for ns/op in -compare mode (single-iteration wall time on shared CI hosts varies close to 2x; allocation counts are the deterministic gate)")
	heapThreshold := flag.Float64("heap-threshold", 0.25, "allowed fractional regression for live_heap_bytes in -compare mode (post-GC retained heap is near-deterministic but GC timing adds jitter)")
	flag.Parse()

	// The timed run is always plain `go test` — never -race, whose
	// overhead would swamp every threshold (see ci.sh).
	cmd := exec.Command("go", "test", "-run", "NONE", "-bench", *pattern,
		"-benchmem", "-benchtime", *benchtime, "-count", "1", *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench failed: %v\n", err)
		os.Exit(1)
	}
	results := parseBench(string(raw))
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	if *compare {
		os.Exit(compareBaseline(*out, results, *threshold, *nsThreshold, *heapThreshold))
	}

	host := Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
	before := Section{Host: baselineHost, Results: baseline}
	if *baselineKind == "none" {
		before = Section{}
	}
	report := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      host,
		Note: "Before = serial pipeline, after = sharded parallel pipeline on the logical-time fabric " +
			"(simulated timeouts no longer sleep wall time) plus the allocation overhaul (per-shard scratch " +
			"buffers, append-style NTP codec, dense index-keyed counters, intern table, reusable JSONL encoder " +
			"— see DESIGN.md \"Memory discipline\"), both NTPSCAN_SCALE=1. The single-core win comes from " +
			"eliminating those sleeps; additional multi-core scaling (BenchmarkCampaignWorkers) requires " +
			"NumCPU > 1 — on a 1-CPU host the worker variants measure coordination overhead only. " +
			"Output is bit-identical across worker counts (see TestCampaignDeterministicAcrossWorkers). " +
			"BenchmarkCampaignScale climbs the lazy-world memory ladder: the address-only population grows " +
			"1x/10x/100x at fixed measurement effort, and the retained live heap (live_heap_bytes) must stay " +
			"sub-linear — SCALE=100 under 20x SCALE=1, asserted inside the benchmark itself. " +
			"BenchmarkCampaignCongested runs the campaign behind a utilization-0.9 emulated link " +
			"(internal/netsim/link) and records x_clean, congested over clean ns/op on the same seeds; " +
			"queue outcomes are hash draws on the logical clock, so the ratio must stay under 2x " +
			"(gated in-benchmark when NTPSCAN_BENCH_COMPARE=1).",
		Before: before,
		After: Section{
			Host:    fmt.Sprintf("%s, %s/%s, %d CPU", host.CPUModel, host.GOOS, host.GOARCH, host.NumCPU),
			Results: results,
		},
	}
	if *note != "" {
		report.Note = *note
	}
	if host.NumCPU == 1 {
		report.Note += " WARNING: recorded on a single-CPU host (GOMAXPROCS=" +
			strconv.Itoa(host.GOMAXPROCS) + "); parallel-speedup numbers measure coordination overhead, not scaling."
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(results))
}

// compareBaseline diffs fresh results against the committed report's
// "after" block. Returns the process exit code: 0 when every shared
// benchmark stays within its threshold, 1 on any regression. Metrics
// absent from the baseline (old runs without -benchmem columns) are
// skipped; benchmarks present on only one side are reported but not
// failed, so adding or retiring a benchmark does not break the gate.
func compareBaseline(path string, fresh []Bench, threshold, nsThreshold, heapThreshold float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
		return 1
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", path, err)
		return 1
	}
	base := make(map[string]Bench, len(report.After.Results))
	for _, b := range report.After.Results {
		base[b.Name] = b
	}

	failed := false
	check := func(name, metric string, got, want, limit float64) {
		if want == 0 {
			return // baseline lacks the metric; nothing to compare
		}
		ratio := got/want - 1
		status := "ok"
		if ratio > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s %-12s %14.0f -> %14.0f  %+6.1f%% (limit %+.0f%%)  %s\n",
			name, metric, want, got, ratio*100, limit*100, status)
	}
	for _, f := range fresh {
		b, ok := base[f.Name]
		if !ok {
			fmt.Printf("%-28s (not in baseline, skipped)\n", f.Name)
			continue
		}
		check(f.Name, "ns/op", f.NsPerOp, b.NsPerOp, nsThreshold)
		check(f.Name, "live-heap-B", f.LiveHeapBytes, b.LiveHeapBytes, heapThreshold)
		// Tail latency gates at the wall-time threshold: percentiles on
		// shared CI hosts jitter like ns/op does. Throughput (rps) is the
		// same measurement inverted, so it is recorded but not gated.
		check(f.Name, "p50-ns", f.P50Ns, b.P50Ns, nsThreshold)
		check(f.Name, "p99-ns", f.P99Ns, b.P99Ns, nsThreshold)
		check(f.Name, "B/op", f.BytesPerOp, b.BytesPerOp, threshold)
		check(f.Name, "allocs/op", f.AllocsPerOp, b.AllocsPerOp, threshold)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: benchmark regression against", path)
		return 1
	}
	fmt.Println("benchjson: no regressions against", path)
	return 0
}
