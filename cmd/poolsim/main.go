// Command poolsim runs the NTP Pool collection simulation: deploy the
// eleven vantage servers, tune netspeed, collect client addresses for
// the four-week window, and stream every distinct captured address to
// stdout (one per line), followed by a per-server summary on stderr.
//
// Usage:
//
//	poolsim [-seed N] [-addr-scale F] [-device-scale F] [-summary-only]
//
// The streamed list is exactly what the paper warns against treating as
// a hitlist (it goes stale immediately); pipe it into v6scan -targets -
// to see why.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/netip"
	"os"

	"ntpscan/internal/core"
	"ntpscan/internal/tabulate"
	"ntpscan/internal/world"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 20240720, "experiment seed")
		addrScale   = flag.Float64("addr-scale", 6e-6, "address-only population scale")
		deviceScale = flag.Float64("device-scale", 3e-3, "responsive population scale")
		asScale     = flag.Float64("as-scale", 0.03, "AS count scale")
		summaryOnly = flag.Bool("summary-only", false, "suppress the address stream")
	)
	flag.Parse()

	p := core.NewPipeline(core.Config{
		Seed: *seed,
		World: world.Config{
			DeviceScale: *deviceScale,
			AddrScale:   *addrScale,
			ASScale:     *asScale,
		},
	})
	fmt.Fprintf(os.Stderr, "poolsim: %d vantage servers deployed, collecting...\n", len(p.Servers))

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	seen := make(map[netip.Addr]struct{})
	p.Collect(func(a netip.Addr) {
		if *summaryOnly {
			return
		}
		if _, dup := seen[a]; dup {
			return
		}
		seen[a] = struct{}{}
		fmt.Fprintln(out, a)
	})

	st := p.Summary.Stats()
	t := tabulate.New("collection summary", "metric", "value").
		SetAligns(tabulate.Left, tabulate.Right)
	t.Cells("capture events", tabulate.Count(p.Captures))
	t.Cells("distinct addresses", tabulate.Count(st.Addrs))
	t.Cells("/48 networks", tabulate.Count(st.Nets48))
	t.Cells("ASes", tabulate.Count(st.ASes))
	fmt.Fprint(os.Stderr, t.String())

	per := tabulate.New("addresses per vantage server", "location", "#addresses").
		SetAligns(tabulate.Left, tabulate.Right)
	for _, row := range p.PerCountrySorted() {
		per.Cells(row.Country, tabulate.Count(row.Addrs))
	}
	fmt.Fprint(os.Stderr, per.String())
}
