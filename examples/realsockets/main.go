// Real sockets: the same protocol implementations that power the mass
// simulation, exchanged over genuine loopback sockets with no fabric in
// between — a capture NTP server on real UDP, an HTTP device page and
// an SSH endpoint on real TCP, an HTTPS server using the stdlib TLS
// stack with a generated certificate, and a CoAP device on real UDP.
//
//	go run ./examples/realsockets
package main

import (
	"crypto/tls"
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"

	"ntpscan/internal/ntp"
	"ntpscan/internal/proto/coapx"
	"ntpscan/internal/proto/httpx"
	"ntpscan/internal/proto/sshx"
	"ntpscan/internal/tlsx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "realsockets:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- NTP capture server on a real UDP socket. ---
	ntpConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ntpConn.Close()
	captured := make(chan netip.AddrPort, 1)
	srv := ntp.NewServer(ntp.ServerConfig{
		Capture: func(c netip.AddrPort, _ time.Time) {
			select {
			case captured <- c:
			default:
			}
		},
	})
	go srv.Serve(ntpConn)

	client, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer client.Close()
	res, err := ntp.QueryConn(client, ntpConn.LocalAddr(), 2*time.Second)
	if err != nil {
		return fmt.Errorf("ntp query: %w", err)
	}
	fmt.Printf("NTP: synced against %s (stratum %d, offset %v)\n",
		ntpConn.LocalAddr(), res.Stratum, res.Offset.Truncate(time.Microsecond))
	fmt.Printf("NTP: server captured our address: %v\n", <-captured)

	// --- HTTP device page on real TCP. ---
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer httpLn.Close()
	go func() {
		for {
			c, err := httpLn.Accept()
			if err != nil {
				return
			}
			go httpx.ServeConn(c, httpx.ServerOptions{Title: "FRITZ!Box 7590"})
		}
	}()
	hc, err := net.Dial("tcp", httpLn.Addr().String())
	if err != nil {
		return err
	}
	hc.SetDeadline(time.Now().Add(2 * time.Second))
	resp, err := httpx.Get(hc, "", "/")
	hc.Close()
	if err != nil {
		return fmt.Errorf("http: %w", err)
	}
	fmt.Printf("HTTP: %d with title %q\n", resp.StatusCode, resp.Title())

	// --- HTTPS with the stdlib TLS stack and a generated cert. ---
	cert, err := tlsx.GenerateX509("device.local", []net.IP{net.ParseIP("127.0.0.1")}, time.Hour)
	if err != nil {
		return err
	}
	tlsLn, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		return err
	}
	defer tlsLn.Close()
	go func() {
		for {
			c, err := tlsLn.Accept()
			if err != nil {
				return
			}
			go httpx.ServeConn(c, httpx.ServerOptions{Title: "FRITZ!Box 7590 (TLS)"})
		}
	}()
	tc, err := tls.Dial("tcp", tlsLn.Addr().String(), &tls.Config{InsecureSkipVerify: true})
	if err != nil {
		return err
	}
	tc.SetDeadline(time.Now().Add(2 * time.Second))
	tresp, err := httpx.Get(tc, "", "/")
	cn := tc.ConnectionState().PeerCertificates[0].Subject.CommonName
	tc.Close()
	if err != nil {
		return fmt.Errorf("https: %w", err)
	}
	fmt.Printf("HTTPS: %d, title %q, real X.509 CN %q\n", tresp.StatusCode, tresp.Title(), cn)

	// --- SSH identification + host key over real TCP. ---
	sshLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer sshLn.Close()
	go func() {
		for {
			c, err := sshLn.Accept()
			if err != nil {
				return
			}
			go sshx.ServeConn(c, sshx.ServerOptions{
				ID:      "SSH-2.0-OpenSSH_9.2p1 Raspbian-10+deb12u2",
				HostKey: sshx.HostKey{Type: "ssh-ed25519", Blob: []byte("loopback-demo-key")},
			})
		}
	}()
	sc, err := net.Dial("tcp", sshLn.Addr().String())
	if err != nil {
		return err
	}
	sc.SetDeadline(time.Now().Add(2 * time.Second))
	grab, err := sshx.Scan(sc)
	sc.Close()
	if err != nil {
		return fmt.Errorf("ssh: %w", err)
	}
	fmt.Printf("SSH: %s (OS %s), host key %s\n",
		grab.ID.Raw, grab.ID.OS(), grab.HostKey.FingerprintHex()[:16])

	// --- CoAP discovery over real UDP (raw datagrams, no fabric). ---
	coapSrv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer coapSrv.Close()
	go serveCoAP(coapSrv, coapx.DeviceOptions{Resources: []string{"/castDeviceSearch"}})

	coapCli, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer coapCli.Close()
	req := coapx.NewGet("/.well-known/core", 0x1234, []byte{9, 9})
	enc, _ := req.Marshal()
	if _, err := coapCli.WriteTo(enc, coapSrv.LocalAddr()); err != nil {
		return err
	}
	coapCli.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1500)
	n, _, err := coapCli.ReadFrom(buf)
	if err != nil {
		return fmt.Errorf("coap: %w", err)
	}
	cresp, err := coapx.Parse(buf[:n])
	if err != nil {
		return err
	}
	fmt.Printf("CoAP: %v with resources %v\n",
		cresp.Code, coapx.ParseLinkFormat(string(cresp.Payload)))

	return nil
}

// serveCoAP answers discovery requests on a real packet socket.
func serveCoAP(conn net.PacketConn, opts coapx.DeviceOptions) {
	buf := make([]byte, 1500)
	for {
		n, raddr, err := conn.ReadFrom(buf)
		if err != nil {
			return
		}
		req, err := coapx.Parse(buf[:n])
		if err != nil || req.Code != coapx.CodeGET {
			continue
		}
		resp := coapx.Respond(req, opts)
		if enc, err := resp.Marshal(); err == nil {
			conn.WriteTo(enc, raddr)
		}
	}
}
