// Quickstart: run a small end-to-end campaign — collect IPv6 addresses
// via NTP Pool capture servers, scan them in real time, compare against
// a TUM-style hitlist — and print the headline findings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ntpscan"
	"ntpscan/internal/analysis"
)

func main() {
	fmt.Println("building a small synthetic Internet and running the campaign...")
	s := ntpscan.RunExperiments(ntpscan.Options{
		Seed:        1,
		DeviceScale: 1e-3, // ~360 scan-reachable NTP devices
		AddrScale:   1e-6, // ~100 address-only eyeball devices
		ASScale:     0.02,
		Workers:     32,
	})

	st := s.P.Summary.Stats()
	fmt.Printf("\ncollected %d distinct addresses across %d /48s and %d ASes\n",
		st.Addrs, st.Nets48, st.ASes)

	resp, scanned, rate := analysis.HitRate(s.NTP)
	fmt.Printf("scanned them live: %d of %d responsive (hit rate %.4f)\n",
		resp, scanned, rate)

	fmt.Println("\nwhat NTP sourcing finds that the hitlist misses:")
	hitGroups := analysis.TitleGroups(s.Hitlist)
	for i, g := range analysis.TitleGroups(s.NTP) {
		if i >= 5 {
			break
		}
		inHitlist := 0
		if hg := analysis.FindGroup(hitGroups, g.Representative); hg != nil {
			inHitlist = hg.Certs
		}
		fmt.Printf("  %-40q %4d certs via NTP, %4d via hitlist\n",
			g.Representative, g.Certs, inHitlist)
	}

	shares := analysis.SecureShares(s.NTP, s.Hitlist)
	fmt.Printf("\nsecurity: %.1f%% of NTP-found hosts securely configured vs %.1f%% of hitlist hosts\n",
		shares[0].Share()*100, shares[1].Share()*100)
	fmt.Println("(the paper reports 28.4% vs 43.5% at full scale)")

	fmt.Println("\nfull tables: go run ./cmd/experiments")
}
