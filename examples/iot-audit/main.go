// IoT security audit: the §4.4 workflow in isolation. Collect addresses
// via the NTP capture servers, scan only the IoT protocols (MQTT,
// MQTTS, AMQP, AMQPS, CoAP), and report broker access control and CoAP
// device exposure — the analyses behind Figure 3 and the Table 3 CoAP
// panel.
//
//	go run ./examples/iot-audit
package main

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"ntpscan"
	"ntpscan/internal/analysis"
	"ntpscan/internal/core"
	"ntpscan/internal/tabulate"
	"ntpscan/internal/zgrab"
)

func main() {
	p := ntpscan.NewPipeline(ntpscan.Config{
		Seed: 11,
		World: ntpscan.WorldConfig{
			DeviceScale: 3e-3,
			AddrScale:   1e-6,
			ASScale:     0.02,
		},
		Workers: 32,
	})

	// A scanner restricted to the IoT module set.
	var mu sync.Mutex
	var results []*zgrab.Result
	scanner := zgrab.NewScanner(zgrab.Config{
		Fabric:  p.W.Fabric(),
		Source:  core.ScanSource,
		Workers: 32,
		Modules: []zgrab.Module{
			&zgrab.MQTTModule{}, &zgrab.MQTTModule{TLS: true},
			&zgrab.AMQPModule{}, &zgrab.AMQPModule{TLS: true},
			&zgrab.CoAPModule{},
		},
		Timeout:    p.Cfg.Timeout,
		UDPTimeout: p.Cfg.UDPTimeout,
		OnResult: func(r *zgrab.Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})

	fmt.Println("collecting NTP client addresses and probing IoT services live...")
	scanner.Start(context.Background())
	p.Collect(func(a netip.Addr) { scanner.Submit(a) })
	scanner.Close()

	data := analysis.NewDataset("iot", results)

	t := tabulate.New("broker access control (NTP-sourced)",
		"protocol", "open", "auth required", "open share").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right)
	for _, proto := range []string{"mqtt", "amqp"} {
		ac := analysis.BrokerAccess(data, proto)
		t.Cells(proto, tabulate.Count(ac.Open), tabulate.Count(ac.AccessControl),
			tabulate.Pct(ac.OpenShare()))
	}
	fmt.Print(t.String())

	ct := tabulate.New("CoAP devices by advertised resources", "group", "#addresses").
		SetAligns(tabulate.Left, tabulate.Right)
	for _, row := range analysis.CoAPGroups(data) {
		ct.Cells(row.Group, tabulate.Count(row.Addrs))
	}
	fmt.Print(ct.String())

	mqtt := analysis.BrokerAccess(data, "mqtt")
	if mqtt.OpenShare() > 0.5 {
		fmt.Printf("\nfinding: %.0f%% of NTP-found MQTT brokers accept anonymous sessions —\n",
			mqtt.OpenShare()*100)
		fmt.Println("end-user IoT deployments are significantly less protected than the")
		fmt.Println("professionally managed brokers hitlist scans see (paper §4.4.2).")
	}
}
