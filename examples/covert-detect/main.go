// Covert scanner detection: the §5 experiment narrated step by step.
// An observer joins the pool's client side, querying every listed
// server from a fresh address inside a monitored /56. Two of the
// servers belong to scanning operations; every probe they send back is
// attributed to the exact NTP query that leaked the address.
//
//	go run ./examples/covert-detect
package main

import (
	"fmt"
	"time"

	"ntpscan"
)

func main() {
	fmt.Println("arming the telescope: distinct source address per NTP query,")
	fmt.Println("inbound capture on the monitored /56, scatter control on the rest...")
	res := ntpscan.DetectScanners(2025)
	rep := res.Report

	fmt.Printf("\nqueried %d pool servers, %d answered\n", rep.QueriesSent, rep.QueriesAnswered)
	fmt.Printf("captured %d scan packets; matched %d to NTP queries, %d scatter\n\n",
		rep.ScanPackets, rep.MatchedPackets, rep.ScatterPackets)

	for _, c := range rep.Campaigns {
		fmt.Printf("campaign from %s:\n", c.SourceNet)
		fmt.Printf("  fed by %d NTP servers, probing %d ports on %d of our addresses\n",
			len(c.Servers), len(c.Ports), c.Targets)
		fmt.Printf("  first scan %s after the query, spread over %s\n",
			c.FirstDelay.Truncate(time.Minute), c.Spread.Truncate(time.Minute))
		switch {
		case len(c.Ports) > 100 && c.FirstDelay < time.Hour:
			fmt.Println("  assessment: research scanner — broad ports, fast, no concealment")
			fmt.Println("  (the Georgia-Tech-style actor of §5.2)")
		case len(c.Ports) <= 16 && c.Spread > 24*time.Hour:
			fmt.Println("  assessment: covert actor — security-sensitive ports only,")
			fmt.Printf("  multi-day spread, scan sources in %s while its NTP servers\n", c.SourceNet)
			fmt.Println("  live in a different cloud provider's space")
		default:
			fmt.Println("  assessment: unclassified")
		}
		fmt.Println()
	}

	if rep.ScatterPackets == 0 {
		fmt.Println("no scatter: every probe hit a query-leaked address, so these scanners")
		fmt.Println("source targets from NTP — random scanning cannot explain the pattern.")
	}
}
