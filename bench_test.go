// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
// the shape comparison). Each benchmark runs the relevant pipeline
// stage and renders the corresponding output; `go test -bench=. -benchmem`
// therefore reproduces the complete evaluation.
//
// The heavy campaign (collection + real-time scan + hitlist scan) is
// executed once per process and shared, as the paper derives all of its
// tables from one measurement run.
package ntpscan_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"ntpscan"
	"ntpscan/internal/analysis"
	"ntpscan/internal/experiments"
	"ntpscan/internal/netsim/link"
)

// benchOptions reads the scale from NTPSCAN_SCALE (a multiplier on the
// default bench scales) so larger reproductions can be requested
// without recompiling: NTPSCAN_SCALE=5 go test -bench=.
func benchOptions() ntpscan.Options {
	mult := 1.0
	if v := os.Getenv("NTPSCAN_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			mult = f
		}
	}
	return ntpscan.Options{
		Seed:        20240720,
		DeviceScale: 3e-3 * mult,
		AddrScale:   6e-6 * mult,
		ASScale:     0.03,
		Workers:     64,
	}
}

var (
	benchOnce  sync.Once
	benchSuite *ntpscan.Suite
)

func sharedSuite(b *testing.B) *ntpscan.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite = ntpscan.RunExperiments(benchOptions())
	})
	return benchSuite
}

// BenchmarkFullCampaign measures the complete pipeline end to end:
// world build, vantage deployment, four-week collection with real-time
// scanning, hitlist build + batch scan, R&L-era run.
func BenchmarkFullCampaign(b *testing.B) {
	opts := benchOptions()
	opts.DeviceScale /= 5 // keep per-iteration cost sane
	opts.AddrScale /= 3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(1000 + i)
		s := ntpscan.RunExperiments(opts)
		if s.P.Summary.Set().Len() == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkCampaignWorkers runs the same campaign at several worker
// counts. The collection shard count is fixed, so every variant
// produces a bit-identical dataset; only wall-clock should move. On a
// multi-core host the 8-worker variant is the pipeline speedup
// headline recorded in BENCH_pipeline.json.
func BenchmarkCampaignWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := benchOptions()
			opts.DeviceScale /= 5
			opts.AddrScale /= 3
			opts.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts.Seed = uint64(1000 + i)
				s := ntpscan.RunExperiments(opts)
				if s.P.Summary.Set().Len() == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}

// BenchmarkCampaignCongested runs the full campaign behind a
// utilization-0.9 default link (every flow crosses a queued, delayed,
// bandwidth-limited hop — see internal/netsim/link) and reports its
// cost relative to an identical clean-fabric run as the x-clean
// metric. Queue outcomes are pure hash draws on the logical clock, so
// congestion must cost arithmetic, not wall-clock: with
// NTPSCAN_BENCH_COMPARE=1 the benchmark fails if the congested run
// reaches 2x the clean ns/op.
func BenchmarkCampaignCongested(b *testing.B) {
	opts := benchOptions()
	opts.DeviceScale /= 5
	opts.AddrScale /= 3
	b.ReportAllocs()
	var cleanNs int64
	for i := 0; i < b.N; i++ {
		seed := uint64(4000 + i)
		b.StopTimer()
		clean := opts
		clean.Seed = seed
		t0 := time.Now()
		if s := ntpscan.RunExperiments(clean); s.P.Summary.Set().Len() == 0 {
			b.Fatal("empty clean run")
		}
		cleanNs += time.Since(t0).Nanoseconds()
		b.StartTimer()

		congested := opts
		congested.Seed = seed
		congested.LinkPlan = &link.Plan{
			Seed: seed ^ 0xc049,
			Default: &link.Params{
				QueuePackets: 16,
				BytesPerSec:  64 << 20,
				PropDelay:    15 * time.Microsecond,
				Utilization:  0.9,
				JitterMax:    10 * time.Microsecond,
			},
		}
		if s := ntpscan.RunExperiments(congested); s.P.Summary.Set().Len() == 0 {
			b.Fatal("empty congested run")
		}
	}
	b.StopTimer()
	if cleanNs > 0 {
		ratio := float64(b.Elapsed().Nanoseconds()) / float64(cleanNs)
		b.ReportMetric(ratio, "x-clean")
		if os.Getenv("NTPSCAN_BENCH_COMPARE") == "1" && ratio >= 2 {
			b.Fatalf("congested campaign costs %.2fx the clean run; the gate requires < 2x", ratio)
		}
	}
}

// liveHeap returns the collected live-heap size after a full GC.
func liveHeap() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc)
}

// scaleHeap shares the measured live-heap growth across the SCALE
// ladder's sub-benchmarks so the top rung can assert sub-linear memory
// against the bottom one.
var scaleHeap = map[int]float64{}

// BenchmarkCampaignScale climbs the memory scale ladder: the
// address-only eyeball population (the bulk of the world) grows
// 1x/10x/100x while the reachable population — and therefore the
// campaign's work — stays fixed. The lazy world derives that population
// on demand through the bounded shard arenas instead of building it,
// so the live heap retained by a run must grow sub-linearly: the
// SCALE=100 rung fails if it holds >= 20x the SCALE=1 rung's bytes.
// The per-rung live-heap-B metric is the number recorded in
// BENCH_pipeline.json.
func BenchmarkCampaignScale(b *testing.B) {
	// One throwaway run warms process-global state (the intern table,
	// lazily-built profile tables) so each rung's live-heap delta
	// measures only what that run retains — and so the numbers match
	// whether the ladder runs alone (make bench-scale) or after the
	// other campaign benchmarks (make bench).
	warm := benchOptions()
	warm.DeviceScale /= 5
	warm.AddrScale /= 3
	warm.LazyWorld = true
	warm.CaptureBudget = 20000
	ntpscan.CollectExperiments(warm)
	for _, scale := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			opts := benchOptions()
			opts.DeviceScale /= 5
			opts.AddrScale = opts.AddrScale / 3 * float64(scale)
			opts.LazyWorld = true
			// Fixed measurement effort against a growing world: without
			// the pin, the default budget tracks client mass and the
			// retained datasets scale linearly by construction.
			opts.CaptureBudget = 20000
			b.ReportAllocs()
			var live float64
			for i := 0; i < b.N; i++ {
				before := liveHeap()
				s := ntpscan.CollectExperiments(opts)
				if s.HitFullSum.Set().Len() == 0 {
					b.Fatal("empty collection")
				}
				live = liveHeap() - before
				runtime.KeepAlive(s)
			}
			b.ReportMetric(live, "live-heap-B")
			scaleHeap[scale] = live
			if base, ok := scaleHeap[1]; scale == 100 && ok && base > 0 {
				if ratio := live / base; ratio >= 20 {
					b.Fatalf("SCALE=100 retains %.0f live-heap bytes, %.1fx the SCALE=1 rung (%.0f); the ladder requires < 20x",
						live, ratio, base)
				}
			}
		})
	}
}

// BenchmarkTable1Collection regenerates Table 1 (dataset sizes and
// overlaps).
func BenchmarkTable1Collection(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.StopTimer()
	reportOnce(b, "table1", s.Table1())
}

// BenchmarkFigure1IIDClasses regenerates Figure 1 (IID classes and
// Cable/DSL/ISP shares).
func BenchmarkFigure1IIDClasses(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Figure1(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.StopTimer()
	reportOnce(b, "figure1", s.Figure1())
}

// BenchmarkTable2ScanResults regenerates Table 2 (successful scans by
// protocol, including the hit-rate note).
func BenchmarkTable2ScanResults(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Table2(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.StopTimer()
	reportOnce(b, "table2", s.Table2())
}

// BenchmarkTable3DeviceTypes regenerates Table 3 (title groups, SSH
// OSes, CoAP resources).
func BenchmarkTable3DeviceTypes(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Table3(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.StopTimer()
	reportOnce(b, "table3", s.Table3())
}

// BenchmarkFigure2SSHOutdated regenerates Figure 2.
func BenchmarkFigure2SSHOutdated(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Figure2(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.StopTimer()
	reportOnce(b, "figure2", s.Figure2())
}

// BenchmarkFigure3AccessControl regenerates Figure 3.
func BenchmarkFigure3AccessControl(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Figure3(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.StopTimer()
	reportOnce(b, "figure3", s.Figure3())
}

// BenchmarkSecureShareHeadline regenerates the §4.4 headline.
func BenchmarkSecureShareHeadline(b *testing.B) {
	s := sharedSuite(b)
	var ntpShare, hitShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shares := analysis.SecureShares(s.NTP, s.Hitlist)
		ntpShare, hitShare = shares[0].Share(), shares[1].Share()
	}
	b.StopTimer()
	b.ReportMetric(ntpShare*100, "%secure-ntp")
	b.ReportMetric(hitShare*100, "%secure-hitlist")
	reportOnce(b, "headline", s.Headline())
}

// BenchmarkSection5Telescope regenerates the §5 actor-detection
// experiment.
func BenchmarkSection5Telescope(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := ntpscan.DetectScanners(uint64(100 + i))
		if len(res.Report.Campaigns) != 2 {
			b.Fatalf("campaigns = %d", len(res.Report.Campaigns))
		}
	}
	b.StopTimer()
	reportOnce(b, "section5", ntpscan.DetectScanners(7).Rendered)
}

// BenchmarkTable4EUI64Vendors regenerates Table 4 and Figure 4
// (Appendix B).
func BenchmarkTable4EUI64Vendors(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Table4(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.StopTimer()
	reportOnce(b, "table4", s.Table4()+s.Figure4())
}

// BenchmarkTable5NetworkAggregation regenerates Table 5 (Appendix C).
func BenchmarkTable5NetworkAggregation(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Table5(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.StopTimer()
	reportOnce(b, "table5", s.Table5())
}

// BenchmarkTable6NetworkCounts regenerates Table 6 plus the by-network
// Figure 5/6 variants (Appendix C).
func BenchmarkTable6NetworkCounts(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Table6(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.StopTimer()
	reportOnce(b, "table6", s.Table6())
}

// BenchmarkTable7PerServer regenerates Table 7 (Appendix D).
func BenchmarkTable7PerServer(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Table7(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.StopTimer()
	reportOnce(b, "table7", s.Table7())
}

// BenchmarkTable8Top100 regenerates the Appendix D top-group lists
// (Tables 8/9).
func BenchmarkTable8Top100(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Table8(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.StopTimer()
	reportOnce(b, "table8", s.Table8())
}

// BenchmarkKeyReuse regenerates the §6 key-reuse analysis.
func BenchmarkKeyReuse(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.KeyReuse(); len(out) == 0 {
			b.Fatal("empty analysis")
		}
	}
	b.StopTimer()
	reportOnce(b, "keyreuse", s.KeyReuse())
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// BenchmarkAblationFeedVsBatch: real-time feed vs stale aggregated
// list (§6 "Dynamic IP Addresses").
func BenchmarkAblationFeedVsBatch(b *testing.B) {
	opts := benchOptions()
	opts.DeviceScale /= 5
	opts.AddrScale /= 3
	var out string
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(2000 + i)
		out = experiments.AblationFeedVsBatch(opts)
	}
	b.StopTimer()
	reportOnce(b, "ablation-feed-vs-batch", out)
}

// BenchmarkAblationDedupStrategies: cert/key vs network vs MAC host
// counting.
func BenchmarkAblationDedupStrategies(b *testing.B) {
	s := sharedSuite(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.AblationDedup(s)
	}
	b.StopTimer()
	reportOnce(b, "ablation-dedup", out)
}

// BenchmarkAblationNetspeed: capture share vs configured weight.
func BenchmarkAblationNetspeed(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.AblationNetspeed(uint64(3000 + i))
	}
	b.StopTimer()
	reportOnce(b, "ablation-netspeed", out)
}

// BenchmarkAblationTitleThreshold: Levenshtein grouping threshold
// sweep.
func BenchmarkAblationTitleThreshold(b *testing.B) {
	s := sharedSuite(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.AblationTitleThreshold(s)
	}
	b.StopTimer()
	reportOnce(b, "ablation-title-threshold", out)
}

// reportOnce prints a rendered table once per bench run when verbose
// reproduction output is requested via NTPSCAN_PRINT=1.
var reported sync.Map

func reportOnce(b *testing.B, key, out string) {
	if os.Getenv("NTPSCAN_PRINT") == "" {
		return
	}
	if _, dup := reported.LoadOrStore(key, true); dup {
		return
	}
	fmt.Printf("\n--- %s (%s) ---\n%s\n", key, b.Name(), out)
}

// BenchmarkFigure5SSHByNetwork regenerates Figure 5 (Appendix C).
func BenchmarkFigure5SSHByNetwork(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Figure5(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.StopTimer()
	reportOnce(b, "figure5", s.Figure5())
}

// BenchmarkFigure6AccessByNetwork regenerates Figure 6 (Appendix C).
func BenchmarkFigure6AccessByNetwork(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.Figure6(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.StopTimer()
	reportOnce(b, "figure6", s.Figure6())
}

// BenchmarkExtensionTargetGen runs the §6 future-work experiment:
// target generation trained on each source.
func BenchmarkExtensionTargetGen(b *testing.B) {
	s := sharedSuite(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.ExtensionTargetGen(s, 1000)
	}
	b.StopTimer()
	reportOnce(b, "extension-targetgen", out)
}
