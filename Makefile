GO ?= go
FUZZTIME ?= 10s

.PHONY: all check vet build test race bench bench-query bench-compare \
	bench-scale profiles chaos fuzz-smoke cover cover-gate

all: check

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the parallel collection/scan pipeline is
# exactly the kind of code -race exists for).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suite under the race detector across a
# fixed seed matrix: the netsim fault engine, the zgrab retry/breaker
# machinery, campaign checkpoint/resume, the end-to-end chaos campaigns
# in internal/chaos, and the metric conservation invariants in
# internal/obs. NTPSCAN_CHAOS_SEEDS overrides the seeds. The node-loss
# leg runs the cluster campaign (Nodes=3, a mid-campaign kill plus a
# control-plane partition per run) over the same seed matrix, demanding
# byte-identical output, epoch-fenced zombie submissions, and the
# cluster task-conservation law; the transport leg repeats it with the
# control plane over a real loopback socket (coordinator served by the
# HTTP transport, nodes dialing back as wire clients, Nodes=1/3/8),
# plus the fabric restart/reconnect and multi-replica drivers. The
# congested-fabric leg runs the campaign behind saturated emulated
# links with mid-campaign route churn (internal/netsim/link) and
# demands byte-identical output across worker counts, across a resume,
# and across cluster node counts, plus the link_* conservation laws. A
# final leg re-runs the end-to-end campaign suites for one seed at 10x
# world scale against the lazy (arena-materialized) world — same
# faults, same oracles, sub-linear memory path.
chaos:
	NTPSCAN_CHAOS_SEEDS="$${NTPSCAN_CHAOS_SEEDS:-11 23 42}" \
		$(GO) test -race -skip 'Congested' ./internal/chaos/ ./internal/netsim/ ./internal/netsim/link/ ./internal/zgrab/ ./internal/core/ ./internal/obs/ ./internal/store/
	NTPSCAN_CHAOS_SEEDS="$${NTPSCAN_CHAOS_SEEDS:-11 23 42}" \
		$(GO) test -race ./internal/cluster/ ./internal/cluster/transport/ ./cmd/clusterd/
	NTPSCAN_CHAOS_SEEDS="$${NTPSCAN_CHAOS_SEEDS:-11 23 42}" \
		$(GO) test -race -run 'Congested|TestLink' ./internal/chaos/ ./internal/obs/
	NTPSCAN_CHAOS_SEEDS=23 NTPSCAN_CHAOS_SCALE=10 NTPSCAN_CHAOS_LAZY=1 \
		$(GO) test -race -skip 'Congested' ./internal/chaos/ ./internal/obs/

# fuzz-smoke runs every fuzz target for a short burst (FUZZTIME each,
# default 10s) on top of its committed seed corpus under testdata/fuzz.
# This is the CI tier of fuzzing — long exploratory runs stay manual:
#   go test -fuzz '^FuzzDecode$' -fuzztime 10m ./internal/ntp/
FUZZ_TARGETS := \
	./internal/ntp:FuzzDecode \
	./internal/tlsx:FuzzUnmarshalCert \
	./internal/proto/sshx:FuzzParseServerID \
	./internal/proto/coapx:FuzzParse \
	./internal/proto/coapx:FuzzParseLinkFormat \
	./internal/proto/amqpx:FuzzReadFrame \
	./internal/proto/httpx:FuzzReadResponse \
	./internal/proto/httpx:FuzzExtractTitle \
	./internal/proto/mqttx:FuzzReadPacket \
	./internal/proto/mqttx:FuzzDecodeConnect \
	./internal/store:FuzzSegmentDecode \
	./internal/cluster/transport:FuzzTransportFrameDecode \
	./internal/netsim/link:FuzzLinkPlanDecode

fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "== fuzz $$pkg $$fn"; \
		$(GO) test -run NONE -fuzz "^$$fn\$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

# cover writes the library coverage profile (cmd/ mains are glue over
# the internal packages and are deliberately excluded from the gate).
cover:
	$(GO) test -coverprofile coverage.out ./internal/... .
	@$(GO) tool cover -func coverage.out | tail -1

# cover-gate fails if total statement coverage drops more than 0.5
# points below the committed COVERAGE_baseline.txt. Raise the baseline
# when a PR genuinely lifts coverage:
#   make cover && go tool cover -func coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}' > COVERAGE_baseline.txt
cover-gate: cover
	@total=$$($(GO) tool cover -func coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	base=$$(cat COVERAGE_baseline.txt); \
	echo "coverage: $$total% (baseline $$base%)"; \
	awk -v t="$$total" -v b="$$base" 'BEGIN { exit !(t >= b - 0.5) }' || \
		{ echo "cover-gate: coverage $$total% fell below baseline $$base% - 0.5"; exit 1; }

# bench runs the pipeline benchmarks and records them, with host
# metadata, in BENCH_pipeline.json, then the columnar-store ingest /
# query / compaction benchmarks (side by side with their flat-JSONL
# equivalents) in BENCH_store.json. NTPSCAN_SCALE multiplies the bench
# world scale (see bench_test.go). -benchmem and the fixed -benchtime
# mean the JSON always carries B/op and allocs/op columns and runs are
# comparable across commits.
STORE_BENCH := BenchmarkStoreIngest$$|BenchmarkStoreIngestCompact$$|BenchmarkJSONLIngest$$|BenchmarkStoreScanAll$$|BenchmarkStoreScanModule$$|BenchmarkJSONLScan$$
STORE_BENCH_NOTE := Columnar store vs flat JSONL on an identical 8-slice x 2000-row result workload: \
ingest (segment writes, with and without compaction), full result scan, and a selective \
one-module-of-four scan where dictionary-mask pushdown skips blocks. No before/after split — \
the JSONL benchmarks in the same results block are the comparison.

bench:
	$(GO) run ./cmd/benchjson -benchtime 1x -out BENCH_pipeline.json
	$(GO) run ./cmd/benchjson -pkg ./internal/store/ -bench '$(STORE_BENCH)' \
		-baseline none -note "$(STORE_BENCH_NOTE)" -benchtime 1x -out BENCH_store.json

# bench-query benchmarks the serving layer like a service and records
# BENCH_query.json: cold vs warm selective queries (the decoded-block
# cache win), the footer/dictionary cache in isolation, and the
# concurrent-client harness — fixed request batches across 8 clients,
# reporting per-request p50-ns/p99-ns and rps, plus the same workload
# against a store a live campaign is writing into.
QUERY_BENCH := BenchmarkQueryCold$$|BenchmarkQueryWarm$$|BenchmarkScanDictCacheOn$$|BenchmarkScanDictCacheOff$$|BenchmarkQueryConcurrent$$|BenchmarkQueryDuringCampaign$$
QUERY_BENCH_NOTE := Query daemon serving benchmarks over an 8-slice x 1500-row store. \
Cold opens the store fresh per query (empty caches); Warm repeats the same selective query against \
one long-lived store, so the decoded-block cache absorbs disk, inflate and row decode — the \
cold-vs-warm delta is the cache win. ScanDictCacheOn/Off isolate the parsed-footer (segment \
dictionary) cache: block cache disabled, fully-pruned predicate (50 scans per op), so the delta \
is pure footer read+parse work. QueryConcurrent drives a fixed 400-request mixed \
workload (tables + pushdown scans) across 8 HTTP clients per iteration and reports per-request \
p50-ns/p99-ns plus rps; QueryDuringCampaign runs the same workload while a campaign appends \
slices and feeds the aggregates — the live-serving configuration.

bench-query:
	$(GO) run ./cmd/benchjson -pkg ./internal/query/ -bench '$(QUERY_BENCH)' \
		-baseline none -note "$(QUERY_BENCH_NOTE)" -benchtime 1x -out BENCH_query.json

# bench-compare is the regression gate: a fresh (non -race) benchmark
# run diffed against the committed BENCH_pipeline.json "after" block.
# Fails if bytes/op or allocs/op regress beyond 10% or ns/op beyond
# 100% (single-iteration wall time on shared hosts varies close to 2x;
# allocation counts are deterministic). NTPSCAN_BENCH_COMPARE=1 also
# arms BenchmarkCampaignCongested's in-benchmark gate: the campaign
# behind a utilization-0.9 emulated link must stay under 2x the clean
# run's ns/op. Wired into ci.sh behind NTPSCAN_BENCH_COMPARE=1.
bench-compare:
	NTPSCAN_BENCH_COMPARE=1 $(GO) run ./cmd/benchjson -compare -benchtime 1x -out BENCH_pipeline.json
	$(GO) run ./cmd/benchjson -pkg ./internal/store/ -bench '$(STORE_BENCH)' \
		-compare -benchtime 1x -out BENCH_store.json
	$(GO) run ./cmd/benchjson -pkg ./internal/query/ -bench '$(QUERY_BENCH)' \
		-compare -benchtime 1x -out BENCH_query.json

# bench-scale runs only the lazy-world memory scale ladder
# (BenchmarkCampaignScale, SCALE=1/10/100 at fixed measurement effort)
# and diffs it against the committed BENCH_pipeline.json. Two gates
# fire here: the benchmark itself fails if SCALE=100 retains >= 20x the
# SCALE=1 live heap (the sub-linear-memory contract), and -compare
# fails if any rung's live_heap_bytes regresses beyond the heap
# threshold. Wired into ci.sh behind NTPSCAN_BENCH_COMPARE=1.
bench-scale:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkCampaignScale$$' \
		-compare -benchtime 1x -out BENCH_pipeline.json

# profiles emits pprof CPU+heap profiles and an execution trace for
# BenchmarkFullCampaign into ./profiles/ — the measurement feeding the
# top-10 allocation-site table in EXPERIMENTS.md. Inspect with e.g.
#   go tool pprof -top -sample_index=alloc_objects profiles/campaign.mem.out
profiles:
	mkdir -p profiles
	$(GO) test -run NONE -bench 'BenchmarkFullCampaign$$' -benchmem -benchtime 1x \
		-cpuprofile profiles/campaign.cpu.out \
		-memprofile profiles/campaign.mem.out \
		-trace profiles/campaign.trace.out .
