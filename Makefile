GO ?= go

.PHONY: all check vet build test race bench

all: check

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the parallel collection/scan pipeline is
# exactly the kind of code -race exists for).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the pipeline benchmarks and records them, with host
# metadata, in BENCH_pipeline.json. NTPSCAN_SCALE multiplies the bench
# world scale (see bench_test.go).
bench:
	$(GO) run ./cmd/benchjson -out BENCH_pipeline.json
