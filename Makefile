GO ?= go

.PHONY: all check vet build test race bench chaos

all: check

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the parallel collection/scan pipeline is
# exactly the kind of code -race exists for).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suite under the race detector across a
# fixed seed matrix: the netsim fault engine, the zgrab retry/breaker
# machinery, campaign checkpoint/resume, and the end-to-end chaos
# campaigns in internal/chaos. NTPSCAN_CHAOS_SEEDS overrides the seeds.
chaos:
	NTPSCAN_CHAOS_SEEDS="$${NTPSCAN_CHAOS_SEEDS:-11 23 42}" \
		$(GO) test -race ./internal/chaos/ ./internal/netsim/ ./internal/zgrab/ ./internal/core/

# bench runs the pipeline benchmarks and records them, with host
# metadata, in BENCH_pipeline.json. NTPSCAN_SCALE multiplies the bench
# world scale (see bench_test.go).
bench:
	$(GO) run ./cmd/benchjson -out BENCH_pipeline.json
