GO ?= go

.PHONY: all check vet build test race bench bench-compare profiles chaos

all: check

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the parallel collection/scan pipeline is
# exactly the kind of code -race exists for).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suite under the race detector across a
# fixed seed matrix: the netsim fault engine, the zgrab retry/breaker
# machinery, campaign checkpoint/resume, and the end-to-end chaos
# campaigns in internal/chaos. NTPSCAN_CHAOS_SEEDS overrides the seeds.
chaos:
	NTPSCAN_CHAOS_SEEDS="$${NTPSCAN_CHAOS_SEEDS:-11 23 42}" \
		$(GO) test -race ./internal/chaos/ ./internal/netsim/ ./internal/zgrab/ ./internal/core/

# bench runs the pipeline benchmarks and records them, with host
# metadata, in BENCH_pipeline.json. NTPSCAN_SCALE multiplies the bench
# world scale (see bench_test.go). -benchmem and the fixed -benchtime
# mean the JSON always carries B/op and allocs/op columns and runs are
# comparable across commits.
bench:
	$(GO) run ./cmd/benchjson -benchtime 1x -out BENCH_pipeline.json

# bench-compare is the regression gate: a fresh (non -race) benchmark
# run diffed against the committed BENCH_pipeline.json "after" block.
# Fails if bytes/op or allocs/op regress beyond 10% or ns/op beyond
# 100% (single-iteration wall time on shared hosts varies close to 2x;
# allocation counts are deterministic). Wired into ci.sh behind
# NTPSCAN_BENCH_COMPARE=1.
bench-compare:
	$(GO) run ./cmd/benchjson -compare -benchtime 1x -out BENCH_pipeline.json

# profiles emits pprof CPU+heap profiles and an execution trace for
# BenchmarkFullCampaign into ./profiles/ — the measurement feeding the
# top-10 allocation-site table in EXPERIMENTS.md. Inspect with e.g.
#   go tool pprof -top -sample_index=alloc_objects profiles/campaign.mem.out
profiles:
	mkdir -p profiles
	$(GO) test -run NONE -bench 'BenchmarkFullCampaign$$' -benchmem -benchtime 1x \
		-cpuprofile profiles/campaign.cpu.out \
		-memprofile profiles/campaign.mem.out \
		-trace profiles/campaign.trace.out .
