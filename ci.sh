#!/bin/sh
# CI gate: vet + build + full test suite under the race detector.
# Equivalent to `make check`.
set -eux
go vet ./...
go build ./...
go test -race ./...
# Fault-injection suite over the fixed seed matrix (see `make chaos`),
# including the node-loss leg: cluster campaigns (Nodes=3) with a
# mid-campaign node kill and a control-plane partition per run, under
# -race, demanding byte-identical output and fenced zombie results.
# The transport leg repeats the node-loss campaigns with the control
# plane over a real loopback socket (Nodes=1/3/8) and adds the fabric
# restart/reconnect and clusterd daemon drivers.
make chaos
# Fuzz smoke: every fuzz target for a short burst on its seed corpus.
# NTPSCAN_FUZZTIME overrides the per-target budget.
make fuzz-smoke FUZZTIME="${NTPSCAN_FUZZTIME:-10s}"
# Coverage gate: library statement coverage must not drop below the
# committed baseline (COVERAGE_baseline.txt) minus 0.5 points.
make cover-gate
# Optional bench regression gate against the committed BENCH baseline.
# The timed run is plain `go test -bench` — deliberately NOT -race,
# whose overhead would swamp every threshold. Opt in with
# NTPSCAN_BENCH_COMPARE=1 (off by default: shared CI hosts make wall
# time unreliable; allocation counts are what the gate really pins).
if [ "${NTPSCAN_BENCH_COMPARE:-0}" = "1" ]; then
  # bench-compare covers the pipeline, store, and query-serving
  # baselines (BENCH_pipeline.json, BENCH_store.json, BENCH_query.json);
  # the query leg also gates tail latency (p50-ns/p99-ns at the ns
  # threshold).
  make bench-compare
  # Scale-ladder gate: SCALE=100 must hold under 20x the SCALE=1 live
  # heap, and no rung's live_heap_bytes may regress against the
  # committed baseline.
  make bench-scale
fi
