module ntpscan

go 1.23
