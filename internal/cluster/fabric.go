package cluster

import (
	"fmt"
	"sync"

	"ntpscan/internal/obs"
)

// Fabric is the standalone lease service for multi-process clusters:
// the same lease table, fencing epochs, and contiguous-placement rule
// as the in-process Coordinator, but with no pipeline and no dispatch
// loop — authority is decided purely by the calls that arrive over the
// wire. cmd/clusterd serves one Fabric; node processes (RunNode) each
// run a full deterministic campaign replica and use their grants only
// to decide which shard-slice submissions they are authoritative for.
//
// Liveness without a driver: the Fabric cannot observe a missed
// heartbeat directly (nothing arrives), so leases expire by TTL — a
// sweep at the front of every call fences any lease whose holder has
// not renewed it past the caller's slice. A node that crashes or
// partitions simply stops renewing; LeaseTTL slices later its shards
// fence and rebalance to nodes still calling in. This is the same
// fencing guarantee on a lazier clock: a zombie's submissions carry
// the pre-bump epoch and are rejected exactly as the Coordinator
// rejects them.
type Fabric struct {
	cfg Config

	// Obs carries the same cluster_* lease and fencing families the
	// Coordinator exposes, plus heartbeat arrival counts per node.
	Obs *obs.Registry
	met *metrics

	mu    sync.Mutex
	table []lease
	heard []int // highest slice each node has called in at (-1 never)
	swept int   // highest slice the expiry sweep has run for
}

// NewFabric builds a lease service over a decomposition of `shards`
// shards for cfg.Nodes nodes. Unlike NewCoordinator it needs no
// pipeline — only the shard count, which must match the decomposition
// the node processes run (CollectShards), or their submissions will be
// rejected as out of range.
func NewFabric(shards int, cfg Config) (*Fabric, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: fabric needs at least one shard, got %d", shards)
	}
	cfg.fillDefaults(0)
	f := &Fabric{
		cfg:   cfg,
		Obs:   obs.NewRegistry(),
		table: make([]lease, shards),
		heard: make([]int, cfg.Nodes),
		swept: -1,
	}
	for i := range f.table {
		f.table[i] = lease{holder: -1, epoch: 1} // epoch 0 never passes the fence
	}
	for i := range f.heard {
		f.heard[i] = -1
	}
	f.met = newMetrics(f.Obs, cfg.Nodes)
	return f, nil
}

// Nodes returns the configured node count.
func (f *Fabric) Nodes() int { return f.cfg.Nodes }

// checkNode validates and records the caller.
func (f *Fabric) checkNode(node, slice int) error {
	if node < 0 || node >= f.cfg.Nodes {
		return ErrUnknownNode
	}
	if slice > f.heard[node] {
		f.heard[node] = slice
	}
	return nil
}

// sweepLocked advances the expiry clock to slice: every lease not
// renewed past it fences (epoch bump), then unowned shards rebalance
// contiguously over the nodes heard from recently — within LeaseTTL
// slices, the same window a lease survives without renewal.
func (f *Fabric) sweepLocked(slice int) {
	if slice <= f.swept {
		return
	}
	f.swept = slice
	for sh := range f.table {
		l := &f.table[sh]
		if l.holder >= 0 && l.expires <= slice {
			l.holder = -1
			l.epoch++
			f.met.expired.Inc()
		}
	}
	var live []int
	liveCount := 0
	for n, h := range f.heard {
		if h >= 0 && h >= slice-f.cfg.LeaseTTL {
			live = append(live, n)
			liveCount++
		}
	}
	f.met.live.Set(int64(liveCount))
	var unowned []int
	for sh := range f.table {
		if f.table[sh].holder < 0 {
			unowned = append(unowned, sh)
		}
	}
	if len(unowned) == 0 || len(live) == 0 {
		return
	}
	for i, sh := range unowned {
		l := &f.table[sh]
		l.holder = live[i*len(live)/len(unowned)]
		l.expires = slice + f.cfg.LeaseTTL
	}
}

// renewLocked re-grants every lease node holds, valid through
// slice+TTL — identical to the Coordinator's renewal.
func (f *Fabric) renewLocked(node, slice int) []Grant {
	var grants []Grant
	for sh := range f.table {
		l := &f.table[sh]
		if l.holder != node {
			continue
		}
		l.expires = slice + f.cfg.LeaseTTL
		grants = append(grants, Grant{Shard: sh, Epoch: l.epoch, ExpiresSlice: l.expires})
	}
	f.met.granted.Add(int64(len(grants)))
	return grants
}

// Claim implements API: registration or rejoin. The sweep runs first
// so a rejoining node is offered its share of whatever just fenced.
func (f *Fabric) Claim(node, slice int) ([]Grant, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkNode(node, slice); err != nil {
		return nil, err
	}
	f.met.heartbeats.Inc(node)
	f.sweepLocked(slice)
	return f.renewLocked(node, slice), nil
}

// Heartbeat implements API: renewal. Same motion as Claim — the
// distinction is the caller's (a fresh process Claims, a steady one
// Heartbeats) and is kept for parity with the Coordinator's protocol.
func (f *Fabric) Heartbeat(node, slice int) ([]Grant, error) {
	return f.Claim(node, slice)
}

// SubmitSlice implements API: the fencing gate, byte-for-byte the
// Coordinator's rule — current holder under the current epoch or
// ErrStaleEpoch.
func (f *Fabric) SubmitSlice(node, shard, slice int, epoch uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkNode(node, slice); err != nil {
		return err
	}
	if shard < 0 || shard >= len(f.table) {
		return fmt.Errorf("cluster: shard %d out of range", shard)
	}
	f.sweepLocked(slice)
	l := &f.table[shard]
	f.met.claimed.Inc()
	if l.holder != node || l.epoch != epoch {
		f.met.fenced.Inc()
		return fmt.Errorf("%w: shard %d slice %d epoch %d from node %d (current epoch %d, holder %d)",
			ErrStaleEpoch, shard, slice, epoch, node, l.epoch, l.holder)
	}
	f.met.completed.Inc()
	return nil
}

// Release implements API: voluntary handover with the usual epoch
// bump, so any straggler submission under the released leases fences.
func (f *Fabric) Release(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node < 0 || node >= f.cfg.Nodes {
		return ErrUnknownNode
	}
	for sh := range f.table {
		l := &f.table[sh]
		if l.holder == node {
			l.holder = -1
			l.epoch++
			f.met.released.Inc()
		}
	}
	return nil
}

// TaskCounts returns (claimed, completed, fenced) — submissions
// offered, accepted, and rejected at the fence. The fabric has no
// mid-slice loss channel, so there is no lost counter: claimed ==
// completed + fenced is its conservation law.
func (f *Fabric) TaskCounts() (claimed, completed, fenced int64) {
	return f.met.claimed.Value(), f.met.completed.Value(), f.met.fenced.Value()
}
