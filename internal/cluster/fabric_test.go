package cluster

import (
	"errors"
	"testing"
)

// Fabric protocol white-box: the serve-only lease service must keep
// the Coordinator's fencing guarantees on its TTL clock — no driver,
// only the calls that arrive.

func TestFabricGrantsAndFencing(t *testing.T) {
	f, err := NewFabric(4, Config{Nodes: 2, LeaseTTL: 2})
	if err != nil {
		t.Fatal(err)
	}

	// First contact: node 0 is the only node heard from, takes all.
	g0, err := f.Claim(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g0) != 4 {
		t.Fatalf("node 0 first claim got %d shards, want all 4", len(g0))
	}
	for _, g := range g0 {
		if g.Epoch != 1 || g.ExpiresSlice != 2 {
			t.Errorf("grant %+v, want epoch 1 expires 2", g)
		}
	}

	// Node 1 joins the same slice: everything is owned, nothing yet.
	g1, err := f.Claim(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 0 {
		t.Errorf("node 1 claim while all shards held got %d shards, want 0", len(g1))
	}

	// Node 0 submits under its grants: accepted.
	for _, g := range g0 {
		if err := f.SubmitSlice(0, g.Shard, 0, g.Epoch); err != nil {
			t.Fatalf("submit shard %d: %v", g.Shard, err)
		}
	}
	// Node 1 submits the same shard under the same epoch: not the
	// holder, fenced.
	if err := f.SubmitSlice(1, g0[0].Shard, 0, g0[0].Epoch); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("non-holder submit = %v, want ErrStaleEpoch", err)
	}

	claimed, completed, fenced := f.TaskCounts()
	if claimed != completed+fenced {
		t.Errorf("fabric conservation violated: claimed %d != completed %d + fenced %d",
			claimed, completed, fenced)
	}
}

// A node that stops renewing loses its shards after the TTL: they
// fence (epoch bump) and rebalance to nodes still calling in, and the
// late holder's submissions are rejected.
func TestFabricExpiryFencesSilentNode(t *testing.T) {
	f, err := NewFabric(4, Config{Nodes: 2, LeaseTTL: 2})
	if err != nil {
		t.Fatal(err)
	}
	g0, err := f.Claim(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Claim(1, 0); err != nil {
		t.Fatal(err)
	}

	// Node 0 goes silent; node 1 keeps heartbeating. The lazy liveness
	// clock keeps node 0 in the candidate set for LeaseTTL slices after
	// its last call, so full takeover needs two sweep rounds: the first
	// (slice 2) fences everything node 0 held and reassigns a share
	// back to its still-within-window shadow; the second (slice 4)
	// fences that share too, with only node 1 left live.
	for s := 1; s <= 3; s++ {
		if _, err := f.Heartbeat(1, s); err != nil {
			t.Fatal(err)
		}
	}
	g1, err := f.Heartbeat(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 4 {
		t.Fatalf("survivor got %d shards after expiry, want all 4", len(g1))
	}
	for _, g := range g1 {
		if g.Epoch < 2 {
			t.Errorf("rebalanced shard %d epoch %d, want >= 2 (fenced at least once)", g.Shard, g.Epoch)
		}
	}

	// The silent node wakes up and submits under its old view: fenced.
	for _, g := range g0 {
		if err := f.SubmitSlice(0, g.Shard, 5, g.Epoch); !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("zombie submit shard %d = %v, want ErrStaleEpoch", g.Shard, err)
		}
	}
	if exp := f.Obs.Snapshot()["cluster_leases_expired_total"]; len(exp) != 1 || exp[0] == 0 {
		t.Errorf("cluster_leases_expired_total = %v, want one non-zero series", exp)
	}

	// Roles swap: node 1 goes silent, node 0 rejoins after node 1's
	// leases (renewed through 4+TTL) expire — a fresh Claim re-acquires
	// everything.
	g0b, err := f.Claim(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(g0b) != 4 {
		t.Errorf("rejoined node re-acquired %d shards, want all 4", len(g0b))
	}
}

func TestFabricRejectsBadArguments(t *testing.T) {
	f, err := NewFabric(2, Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Claim(5, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("claim unknown node = %v, want ErrUnknownNode", err)
	}
	if err := f.SubmitSlice(0, 7, 0, 1); err == nil {
		t.Error("out-of-range shard submit accepted")
	}
	if err := f.Release(3); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("release unknown node = %v, want ErrUnknownNode", err)
	}
	if _, err := NewFabric(0, Config{}); err == nil {
		t.Error("NewFabric(0 shards) accepted")
	}
}

// Release hands leases back with the epoch bump, so stragglers fence.
func TestFabricReleaseFencesStragglers(t *testing.T) {
	f, err := NewFabric(2, Config{Nodes: 2, LeaseTTL: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Claim(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Release(0); err != nil {
		t.Fatal(err)
	}
	for _, gr := range g {
		if err := f.SubmitSlice(0, gr.Shard, 1, gr.Epoch); !errors.Is(err, ErrStaleEpoch) {
			t.Errorf("straggler submit after release = %v, want ErrStaleEpoch", err)
		}
	}
}
