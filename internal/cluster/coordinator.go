package cluster

import (
	"fmt"
	"sync"
	"time"

	"ntpscan/internal/core"
	"ntpscan/internal/obs"
)

// lease is one shard's control-plane state: who holds it, under which
// fencing epoch, and through which slice the grant stays valid.
type lease struct {
	holder  int // node index, -1 unowned
	epoch   uint64
	expires int // grant valid while slice < expires
}

// Coordinator owns the campaign's control plane: the lease table over
// the shard decomposition, node liveness, the fencing epochs, and the
// cluster section of the campaign checkpoint. It implements API and
// plugs into the campaign as its slice dispatcher.
//
// Every control decision is a pure function of (fault plan, slice,
// node index): heartbeat outcomes come from the plan's node faults on
// the logical clock, expiry and reassignment follow deterministically,
// and execution concurrency never feeds back into the protocol — so a
// clustered campaign is exactly as replayable as a single-process one.
type Coordinator struct {
	p   *core.Pipeline
	cfg Config

	// Obs is the cluster's own metrics registry — separate from the
	// pipeline's, so campaign telemetry stays byte-identical across
	// node counts while lease/heartbeat/fencing families remain fully
	// observable (and ride the checkpoint's cluster section).
	Obs *obs.Registry
	met *metrics

	mu    sync.Mutex
	table []lease
	live  []bool
	seen  []bool   // node has claimed at least once (Claim vs Heartbeat)
	views [][]Grant // each node's last-received grant list (its lease belief)

	apis []API // per-node control handles (fault seam over Dial or self)
}

// NewCoordinator builds the control plane for a pipeline. The
// pipeline must not have started a campaign yet.
func NewCoordinator(p *core.Pipeline, cfg Config) (*Coordinator, error) {
	if p.Cfg.FullPacketNTP {
		return nil, fmt.Errorf("cluster: FullPacketNTP campaigns cannot be dispatched across nodes")
	}
	cfg.fillDefaults(p.Cfg.Workers)
	c := &Coordinator{
		p:     p,
		cfg:   cfg,
		Obs:   obs.NewRegistry(),
		table: make([]lease, p.Cfg.CollectShards),
		live:  make([]bool, cfg.Nodes),
		seen:  make([]bool, cfg.Nodes),
		views: make([][]Grant, cfg.Nodes),
	}
	for i := range c.table {
		// Epochs start at 1 so a zero value never passes the fence.
		c.table[i] = lease{holder: -1, epoch: 1}
	}
	c.met = newMetrics(c.Obs, cfg.Nodes)
	return c, nil
}

// Nodes returns the configured node count.
func (c *Coordinator) Nodes() int { return c.cfg.Nodes }

// SetDial installs the node→coordinator control path after
// construction. The transport wiring order needs this: build the
// coordinator, serve its API on a listener, then point each node's
// dial back at that endpoint. Must be called before the campaign
// starts; it resets any handles built under the previous dial.
func (c *Coordinator) SetDial(d func(node int) API) {
	c.cfg.Dial = d
	c.apis = nil
}

// handles builds (once) the per-node control handles the dispatcher
// calls through: the configured dial — or the coordinator's own
// methods — wrapped in the wire-fault seam, so a node's crash,
// partition, or heartbeat delay manifests as transport behavior
// identically whether the base is an in-process call or a socket.
func (c *Coordinator) handles() []API {
	if c.apis != nil {
		return c.apis
	}
	plan := c.p.Cfg.Faults
	c.apis = make([]API, c.cfg.Nodes)
	for n := range c.apis {
		base := API(c)
		if c.cfg.Dial != nil {
			base = c.cfg.Dial(n)
		}
		w := NewNodeWire(base, n, plan, c.p.SliceWindow, c.cfg.HeartbeatGrace)
		w.onFault = func(k WireFaultKind) { c.met.wireFaults.Inc(int(k)) }
		w.onDelay = func(d time.Duration) { c.met.hbDelay.Observe(d.Milliseconds()) }
		c.apis[n] = w
	}
	return c.apis
}

// EpochRejections returns the fencing counter — submissions rejected
// for carrying a stale lease epoch.
func (c *Coordinator) EpochRejections() int64 { return c.met.fenced.Value() }

// TaskCounts returns the task-conservation counters
// (claimed, completed, fenced, lost).
func (c *Coordinator) TaskCounts() (claimed, completed, fenced, lost int64) {
	return c.met.claimed.Value(), c.met.completed.Value(),
		c.met.fenced.Value(), c.met.lost.Value()
}

// campaignOpts wires the coordinator into campaign options: it becomes
// the slice dispatcher, and checkpoints grow the cluster section
// (lease epochs + cluster registry) before reaching the caller.
func (c *Coordinator) campaignOpts(opts core.CampaignOpts) core.CampaignOpts {
	opts.Dispatch = c.dispatch
	user := opts.OnCheckpoint
	if user != nil {
		opts.OnCheckpoint = func(cp *core.Checkpoint) {
			cp.Cluster = c.state()
			user(cp)
		}
	}
	return opts
}

// state snapshots the coordinator's checkpoint section.
func (c *Coordinator) state() *core.ClusterState {
	c.mu.Lock()
	epochs := make([]uint64, len(c.table))
	for i := range c.table {
		epochs[i] = c.table[i].epoch
	}
	c.mu.Unlock()
	return &core.ClusterState{Epochs: epochs, Obs: c.Obs.Snapshot()}
}

// restore validates and applies a checkpoint's cluster section: the
// fencing epochs continue from the interrupted run (stragglers fenced
// before the interruption stay fenced after it), and the cluster
// registry resumes its counter sequence.
func (c *Coordinator) restore(cp *core.Checkpoint) error {
	if cp.Cluster == nil {
		return fmt.Errorf("%w: checkpoint carries no cluster section", ErrLeaseTableMismatch)
	}
	if len(cp.Cluster.Epochs) != len(c.table) {
		return fmt.Errorf("%w: checkpoint has %d epochs, pipeline has %d shards",
			ErrLeaseTableMismatch, len(cp.Cluster.Epochs), len(c.table))
	}
	c.mu.Lock()
	for i, e := range cp.Cluster.Epochs {
		c.table[i].epoch = e
		c.table[i].holder = -1
		c.table[i].expires = 0
	}
	c.mu.Unlock()
	c.Obs.Restore(cp.Cluster.Obs)
	return nil
}

// Claim implements API: first contact (or rejoin after a crash). The
// node's stale lease belief is discarded and replaced with its current
// grants.
func (c *Coordinator) Claim(node, slice int) ([]Grant, error) {
	if node < 0 || node >= c.cfg.Nodes {
		return nil, ErrUnknownNode
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[node] = true
	return c.renewLocked(node, slice), nil
}

// Heartbeat implements API: renews the node's leases and returns them
// with a fresh expiry.
func (c *Coordinator) Heartbeat(node, slice int) ([]Grant, error) {
	if node < 0 || node >= c.cfg.Nodes {
		return nil, ErrUnknownNode
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.renewLocked(node, slice), nil
}

// renewLocked re-grants every lease the node holds, valid through
// slice+TTL.
func (c *Coordinator) renewLocked(node, slice int) []Grant {
	var grants []Grant
	for sh := range c.table {
		l := &c.table[sh]
		if l.holder != node {
			continue
		}
		l.expires = slice + c.cfg.LeaseTTL
		grants = append(grants, Grant{Shard: sh, Epoch: l.epoch, ExpiresSlice: l.expires})
	}
	c.met.granted.Add(int64(len(grants)))
	return grants
}

// SubmitSlice implements API: the fencing gate. A submission under the
// shard's current epoch by its current holder is accepted for the
// barrier; anything else — a zombie node's work after its lease
// expired, a straggler from before a resume — is rejected with
// ErrStaleEpoch and must be rolled back by the caller.
func (c *Coordinator) SubmitSlice(node, shard, slice int, epoch uint64) error {
	if node < 0 || node >= c.cfg.Nodes {
		return ErrUnknownNode
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.table) {
		return fmt.Errorf("cluster: shard %d out of range", shard)
	}
	l := &c.table[shard]
	if l.holder != node || l.epoch != epoch {
		c.met.fenced.Inc()
		c.met.inflight.Add(-1)
		return fmt.Errorf("%w: shard %d slice %d epoch %d from node %d (current epoch %d, holder %d)",
			ErrStaleEpoch, shard, slice, epoch, node, l.epoch, l.holder)
	}
	c.met.completed.Inc()
	c.met.inflight.Add(-1)
	return nil
}

// Release implements API: voluntary lease handover. Epochs advance so
// any straggler submission under the released leases still fences.
func (c *Coordinator) Release(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return ErrUnknownNode
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for sh := range c.table {
		l := &c.table[sh]
		if l.holder == node {
			l.holder = -1
			l.epoch++
			c.met.released.Inc()
		}
	}
	c.views[node] = nil
	return nil
}

// expireLocked fences every lease the node holds: epoch bump (the
// fence), holder cleared, expiry counted.
func (c *Coordinator) expireLocked(node int) (freed int) {
	for sh := range c.table {
		l := &c.table[sh]
		if l.holder == node {
			l.holder = -1
			l.epoch++
			c.met.expired.Inc()
			freed++
		}
	}
	return freed
}

// rebalanceLocked assigns every unowned shard across the live nodes in
// contiguous runs, node order — the deterministic placement rule.
func (c *Coordinator) rebalanceLocked(slice int) {
	var unowned []int
	for sh := range c.table {
		if c.table[sh].holder < 0 {
			unowned = append(unowned, sh)
		}
	}
	if len(unowned) == 0 {
		return
	}
	var liveNodes []int
	for n, ok := range c.live {
		if ok {
			liveNodes = append(liveNodes, n)
		}
	}
	if len(liveNodes) == 0 {
		return // coordinator fallback handles execution this slice
	}
	for i, sh := range unowned {
		n := liveNodes[i*len(liveNodes)/len(unowned)]
		l := &c.table[sh]
		l.holder = n
		l.expires = slice + c.cfg.LeaseTTL
	}
}
