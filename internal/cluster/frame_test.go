package cluster

import (
	"bytes"
	"errors"
	"testing"
)

var testMagic = [4]byte{'t', 'e', 's', 't'}

func TestFrameRoundTrip(t *testing.T) {
	for _, body := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, testMagic, body); err != nil {
			t.Fatal(err)
		}
		// The writer and appender must produce identical bytes — the
		// transport uses AppendFrame, the checkpoint EncodeFrame.
		if appended := AppendFrame(nil, testMagic, body); !bytes.Equal(appended, buf.Bytes()) {
			t.Fatalf("AppendFrame and EncodeFrame disagree for %d-byte body", len(body))
		}
		got, err := DecodeFrame(&buf, testMagic, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("decoded %d bytes, want %d", len(got), len(body))
		}
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	valid := AppendFrame(nil, testMagic, []byte("payload"))

	for name, tc := range map[string]struct {
		data []byte
		max  uint32
		want error
	}{
		"truncated header":  {valid[:3], 0, ErrBadFrame},
		"truncated body":    {valid[:10], 0, ErrBadFrame},
		"truncated crc":     {valid[:len(valid)-1], 0, ErrBadFrame},
		"declared too long": {valid, 3, ErrFrameTooLarge},
	} {
		if _, err := DecodeFrame(bytes.NewReader(tc.data), testMagic, tc.max); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}

	wrongMagic := append([]byte(nil), valid...)
	wrongMagic[0] = 'X'
	if _, err := DecodeFrame(bytes.NewReader(wrongMagic), testMagic, 0); !errors.Is(err, ErrBadFrame) {
		t.Errorf("wrong magic: err = %v, want ErrBadFrame", err)
	}
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0x40
	if _, err := DecodeFrame(bytes.NewReader(crcFlip), testMagic, 0); !errors.Is(err, ErrBadFrame) {
		t.Errorf("crc flip: err = %v, want ErrBadFrame", err)
	}
	bodyFlip := append([]byte(nil), valid...)
	bodyFlip[9] ^= 0x01
	if _, err := DecodeFrame(bytes.NewReader(bodyFlip), testMagic, 0); !errors.Is(err, ErrBadFrame) {
		t.Errorf("body flip: err = %v, want ErrBadFrame", err)
	}
}
