package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ntpscan/internal/core"
	"ntpscan/internal/world"
)

// nodeTestConfig is a small campaign for the replica-driver tests.
func nodeTestConfig(seed uint64) core.Config {
	return core.Config{
		Seed: seed,
		World: world.Config{
			DeviceScale: 1e-3,
			AddrScale:   1e-6,
			ASScale:     0.02,
		},
		Workers:       8,
		CaptureBudget: 2000,
	}
}

// One node against a fabric: the replica's output is byte-identical to
// the plain single-process campaign, and — alone in the cluster — it
// is authoritative for every shard-slice task.
func TestRunNodeSoloMatchesSingleProcess(t *testing.T) {
	ctx := context.Background()
	var want bytes.Buffer
	base := core.NewPipeline(nodeTestConfig(7))
	if _, err := base.RunCampaign(ctx, core.CampaignOpts{Out: &want}); err != nil {
		t.Fatal(err)
	}

	p := core.NewPipeline(nodeTestConfig(7))
	fab, err := NewFabric(p.Cfg.CollectShards, Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	_, stats, err := RunNode(ctx, p, fab, 0, Config{Nodes: 1}, core.CampaignOpts{Out: &got})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("replica JSONL diverges from single-process run (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	if stats.Slices == 0 || stats.Executed != stats.Slices*int64(p.Cfg.CollectShards) {
		t.Errorf("replica executed %d tasks over %d slices, want full coverage (%d shards/slice)",
			stats.Executed, stats.Slices, p.Cfg.CollectShards)
	}
	if stats.Accepted != stats.Executed {
		t.Errorf("solo node accepted %d of %d executions — it should be authoritative for all",
			stats.Accepted, stats.Executed)
	}
	if stats.Fenced != 0 || stats.Offline != 0 {
		t.Errorf("solo node fenced %d / offline %d, want 0/0", stats.Fenced, stats.Offline)
	}
	claimed, completed, fenced := fab.TaskCounts()
	if claimed != completed+fenced {
		t.Errorf("fabric conservation violated: %d != %d + %d", claimed, completed, fenced)
	}
}

// Three concurrent replicas share one fabric: every replica's output is
// byte-identical to the oracle (determinism does not depend on lease
// outcomes), the fabric's books balance, and across the cluster each
// accepted task was accepted exactly once.
func TestRunNodeReplicasShareFabric(t *testing.T) {
	ctx := context.Background()
	const nodes = 3

	var want bytes.Buffer
	base := core.NewPipeline(nodeTestConfig(11))
	if _, err := base.RunCampaign(ctx, core.CampaignOpts{Out: &want}); err != nil {
		t.Fatal(err)
	}

	fab, err := NewFabric(base.Cfg.CollectShards, Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]bytes.Buffer, nodes)
	stats := make([]*NodeStats, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := core.NewPipeline(nodeTestConfig(11))
			_, stats[n], errs[n] = RunNode(ctx, p, fab, n, Config{Nodes: nodes},
				core.CampaignOpts{Out: &outs[n]})
		}()
	}
	wg.Wait()

	var accepted int64
	for n := 0; n < nodes; n++ {
		if errs[n] != nil {
			t.Fatalf("node %d: %v", n, errs[n])
		}
		if !bytes.Equal(outs[n].Bytes(), want.Bytes()) {
			t.Errorf("node %d replica JSONL diverges from single-process run (%d vs %d bytes)",
				n, outs[n].Len(), want.Len())
		}
		if stats[n].Executed != stats[n].Slices*int64(base.Cfg.CollectShards) {
			t.Errorf("node %d executed %d over %d slices, want full replica coverage",
				n, stats[n].Executed, stats[n].Slices)
		}
		accepted += stats[n].Accepted
	}
	claimed, completed, fenced := fab.TaskCounts()
	if completed != accepted {
		t.Errorf("fabric completed %d != nodes' accepted sum %d — a task was double-committed or lost",
			completed, accepted)
	}
	if claimed != completed+fenced {
		t.Errorf("fabric conservation violated: %d != %d + %d", claimed, completed, fenced)
	}
	t.Logf("cluster: claimed %d = completed %d + fenced %d", claimed, completed, fenced)
}

// A node index the fabric does not know is a configuration mismatch:
// the campaign aborts through the dispatch error path instead of
// producing an unaccounted store.
func TestRunNodeUnknownNodeAborts(t *testing.T) {
	p := core.NewPipeline(nodeTestConfig(5))
	fab, err := NewFabric(p.Cfg.CollectShards, Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The fabric is sized for one node; the replica believes in four.
	_, _, err = RunNode(context.Background(), p, fab, 2, Config{Nodes: 4}, core.CampaignOpts{})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("RunNode with unknown index = %v, want ErrUnknownNode through the campaign error path", err)
	}
}

// flakyAPI fails every control call in [fromSlice, toSlice) with a
// transport-style error, mimicking a coordinator restart window.
type flakyAPI struct {
	API
	fromSlice, toSlice int
	failures           int
}

func (f *flakyAPI) gate(slice int) error {
	if slice >= f.fromSlice && slice < f.toSlice {
		f.failures++
		return fmt.Errorf("transport: endpoint unavailable (scripted outage)")
	}
	return nil
}

func (f *flakyAPI) Claim(node, slice int) ([]Grant, error) {
	if err := f.gate(slice); err != nil {
		return nil, err
	}
	return f.API.Claim(node, slice)
}

func (f *flakyAPI) Heartbeat(node, slice int) ([]Grant, error) {
	if err := f.gate(slice); err != nil {
		return nil, err
	}
	return f.API.Heartbeat(node, slice)
}

func (f *flakyAPI) SubmitSlice(node, shard, slice int, epoch uint64) error {
	if err := f.gate(slice); err != nil {
		return err
	}
	return f.API.SubmitSlice(node, shard, slice, epoch)
}

// A control-plane outage mid-campaign (the fabric unreachable for a
// slice window) is tolerated: the replica keeps executing, re-Claims
// when the fabric answers again, and its output bytes do not move.
func TestRunNodeToleratesControlOutage(t *testing.T) {
	ctx := context.Background()
	var want bytes.Buffer
	base := core.NewPipeline(nodeTestConfig(13))
	if _, err := base.RunCampaign(ctx, core.CampaignOpts{Out: &want}); err != nil {
		t.Fatal(err)
	}

	p := core.NewPipeline(nodeTestConfig(13))
	fab, err := NewFabric(p.Cfg.CollectShards, Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyAPI{API: fab, fromSlice: 20, toSlice: 30}
	var got bytes.Buffer
	_, stats, err := RunNode(ctx, p, flaky, 0, Config{Nodes: 1}, core.CampaignOpts{Out: &got})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("replica output moved under a control-plane outage (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	if flaky.failures == 0 {
		t.Fatal("scripted outage never fired — the campaign has fewer slices than expected")
	}
	if stats.Offline == 0 {
		t.Error("outage produced no tolerated offline calls")
	}
	if stats.Accepted == 0 || stats.Accepted >= stats.Executed {
		t.Errorf("accepted %d of %d executions — expected partial authority during the outage",
			stats.Accepted, stats.Executed)
	}
}
