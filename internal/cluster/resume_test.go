package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"ntpscan/internal/chaos"
	"ntpscan/internal/cluster"
	"ntpscan/internal/core"
	"ntpscan/internal/netsim"
)

// partitionAt returns the plan mutation used by the resume tests: a
// partition of node 2 spanning slices [40, 52) — zombie executions and
// fencing happen both before and after the checkpoint the tests resume
// from.
func partitionAt(p *core.Pipeline) {
	from, _ := p.SliceWindow(40)
	until, _ := p.SliceWindow(52)
	p.Cfg.Faults.AddNode(netsim.NodeFault{
		Kind: netsim.NodePartition, Node: 2, From: from, Until: until,
	})
}

// Kill-and-resume for the cluster: a fresh coordinator restored from a
// mid-campaign checkpoint — carried through the framed on-disk
// encoding — reproduces the uninterrupted clustered run's remaining
// output byte-for-byte, with the fencing epochs continued.
func TestClusterResumeReproducesOutput(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	seed := chaos.Seeds()[0]
	cfg := cluster.Config{Nodes: 3}

	var full bytes.Buffer
	var cps []*core.Checkpoint
	p1 := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
	partitionAt(p1)
	_, coord1, err := cluster.Run(context.Background(), p1, cfg, core.CampaignOpts{
		Out:             &full,
		CheckpointEvery: 24,
		OnCheckpoint:    func(cp *core.Checkpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 3 {
		t.Fatalf("expected >=3 checkpoints, got %d", len(cps))
	}
	if coord1.EpochRejections() == 0 {
		t.Fatal("partition produced no epoch rejections — fault window missed the run")
	}

	// The checkpoint after the partition window opened: epochs > 1 for
	// the fenced shards. Round-trip it through the framed encoding, as
	// a real kill+resume would through disk.
	src := cps[1]
	if src.Cluster == nil {
		t.Fatal("clustered checkpoint carries no cluster section")
	}
	var frame bytes.Buffer
	if err := cluster.EncodeCheckpoint(&frame, src); err != nil {
		t.Fatal(err)
	}
	cp, err := cluster.DecodeCheckpoint(bytes.NewReader(frame.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var rest bytes.Buffer
	p2 := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
	partitionAt(p2)
	_, coord2, err := cluster.Resume(context.Background(), p2, cp, cfg, core.CampaignOpts{Out: &rest})
	if err != nil {
		t.Fatal(err)
	}
	want := full.Bytes()[cp.OutOffset:]
	if !bytes.Equal(rest.Bytes(), want) {
		t.Fatalf("resumed cluster output diverges: %d bytes vs %d expected", rest.Len(), len(want))
	}
	if p2.Captures != p1.Captures {
		t.Errorf("resumed Captures = %d, want %d", p2.Captures, p1.Captures)
	}
	if g, w := fmt.Sprintf("%+v", p2.Summary.Stats()), fmt.Sprintf("%+v", p1.Summary.Stats()); g != w {
		t.Errorf("resumed Summary diverges:\n got %s\nwant %s", g, w)
	}
	claimed, completed, fenced, lost := coord2.TaskCounts()
	if claimed != completed+fenced+lost {
		t.Errorf("resumed task conservation violated: %d != %d+%d+%d", claimed, completed, fenced, lost)
	}
}

// A checkpoint from a non-clustered campaign has no cluster section;
// resuming a cluster from it must fail loudly with the typed error,
// not silently start with fresh epochs.
func TestClusterResumeRejectsMissingSection(t *testing.T) {
	seed := chaos.Seeds()[0]
	var cps []*core.Checkpoint
	p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
	if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{
		CheckpointEvery: 32,
		OnCheckpoint:    func(cp *core.Checkpoint) { cps = append(cps, cp) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints")
	}
	p2 := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
	_, _, err := cluster.Resume(context.Background(), p2, cps[0], cluster.Config{Nodes: 3}, core.CampaignOpts{})
	if !errors.Is(err, cluster.ErrLeaseTableMismatch) {
		t.Fatalf("resume from non-cluster checkpoint: err = %v, want ErrLeaseTableMismatch", err)
	}
}

// An epoch table that does not match the pipeline's shard decomposition
// (wrong length — a checkpoint from a differently-sharded campaign)
// is rejected with the typed error.
func TestClusterResumeRejectsLeaseTableMismatch(t *testing.T) {
	seed := chaos.Seeds()[0]
	cp := clusterCheckpoint(t, seed)
	cp.Cluster.Epochs = cp.Cluster.Epochs[:len(cp.Cluster.Epochs)/2]
	p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
	_, _, err := cluster.Resume(context.Background(), p, cp, cluster.Config{Nodes: 3}, core.CampaignOpts{})
	if !errors.Is(err, cluster.ErrLeaseTableMismatch) {
		t.Fatalf("resume with truncated epoch table: err = %v, want ErrLeaseTableMismatch", err)
	}
}

// clusterCheckpoint runs a short clustered campaign and returns its
// first checkpoint (JSON round-tripped, as a stored one would be).
func clusterCheckpoint(t *testing.T, seed uint64) *core.Checkpoint {
	t.Helper()
	var cps []*core.Checkpoint
	p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
	_, _, err := cluster.Run(context.Background(), p, cluster.Config{Nodes: 3}, core.CampaignOpts{
		CheckpointEvery: 32,
		OnCheckpoint:    func(cp *core.Checkpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints")
	}
	blob, err := json.Marshal(cps[0])
	if err != nil {
		t.Fatal(err)
	}
	cp := new(core.Checkpoint)
	if err := json.Unmarshal(blob, cp); err != nil {
		t.Fatal(err)
	}
	return cp
}

// The framed coordinator checkpoint fails loudly on every kind of torn
// or corrupt frame: cut anywhere (header, body, trailer), bad magic,
// or a flipped body byte — always the typed ErrTruncatedCheckpoint,
// never half a lease table.
func TestCheckpointFrameRejectsTruncationAndCorruption(t *testing.T) {
	seed := chaos.Seeds()[0]
	cp := clusterCheckpoint(t, seed)

	var frame bytes.Buffer
	if err := cluster.EncodeCheckpoint(&frame, cp); err != nil {
		t.Fatal(err)
	}
	whole := frame.Bytes()

	rt, err := cluster.DecodeCheckpoint(bytes.NewReader(whole))
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if rt.Cluster == nil || len(rt.Cluster.Epochs) != len(cp.Cluster.Epochs) {
		t.Fatal("round-trip lost the cluster section")
	}

	for _, cut := range []int{0, 3, 8, len(whole) / 2, len(whole) - 3, len(whole) - 1} {
		if _, err := cluster.DecodeCheckpoint(bytes.NewReader(whole[:cut])); !errors.Is(err, cluster.ErrTruncatedCheckpoint) {
			t.Errorf("decode of %d/%d bytes: err = %v, want ErrTruncatedCheckpoint", cut, len(whole), err)
		}
	}

	bad := append([]byte(nil), whole...)
	bad[0] ^= 0xff // magic
	if _, err := cluster.DecodeCheckpoint(bytes.NewReader(bad)); !errors.Is(err, cluster.ErrTruncatedCheckpoint) {
		t.Errorf("decode with bad magic: err = %v, want ErrTruncatedCheckpoint", err)
	}

	bad = append([]byte(nil), whole...)
	bad[len(bad)/2] ^= 0x20 // body corruption caught by the CRC
	if _, err := cluster.DecodeCheckpoint(bytes.NewReader(bad)); !errors.Is(err, cluster.ErrTruncatedCheckpoint) {
		t.Errorf("decode with flipped body byte: err = %v, want ErrTruncatedCheckpoint", err)
	}
}
