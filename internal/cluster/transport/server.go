package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"

	"ntpscan/internal/cluster"
	"ntpscan/internal/obs"
)

// Server serves a cluster.API over HTTP with framed JSON bodies. It is
// an http.Handler; mount it on any listener (the cluster convention is
// a loopback socket — ListenLoopback).
type Server struct {
	api cluster.API
	mux *http.ServeMux

	// Obs carries the server-side transport families:
	//
	//	transport_server_requests_total{method}  requests that produced a response
	//	transport_server_errors_total{code}      non-200 responses by wire code
	//	transport_server_bytes_in_total          framed request bytes read
	//	transport_server_bytes_out_total         framed response bytes written
	//
	// With the client families these close the wire conservation laws:
	// every client attempt that reached the server is a request, and
	// framed bytes leaving one side arrive whole at the other.
	Obs *obs.Registry

	requests *obs.CounterVec
	errs     *obs.CounterVec
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
}

// NewServer wraps api. reg may be nil (a private registry is made);
// passing a shared registry lets a daemon expose transport and fabric
// families together.
func NewServer(api cluster.API, reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		api: api,
		mux: http.NewServeMux(),
		Obs: reg,
		requests: reg.NewCounterVec("transport_server_requests_total",
			"wire control requests that produced a response, by method", "method", methodNames),
		errs: reg.NewCounterVec("transport_server_errors_total",
			"non-200 wire responses, by error code", "code",
			[]string{codeStaleEpoch, codeUnknownNode, codeBadRequest, codeFrameTooLarge, codeInternal}),
		bytesIn: reg.NewCounter("transport_server_bytes_in_total",
			"framed request bytes read off the wire"),
		bytesOut: reg.NewCounter("transport_server_bytes_out_total",
			"framed response bytes written to the wire"),
	}
	s.mux.HandleFunc("POST "+pathClaim, s.handleClaim)
	s.mux.HandleFunc("POST "+pathHeartbeat, s.handleHeartbeat)
	s.mux.HandleFunc("POST "+pathSubmit, s.handleSubmit)
	s.mux.HandleFunc("POST "+pathRelease, s.handleRelease)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// codeIndex maps a wire error code to its dense metric index (the
// registration order in NewServer).
func codeIndex(code string) int {
	switch code {
	case codeStaleEpoch:
		return 0
	case codeUnknownNode:
		return 1
	case codeBadRequest:
		return 2
	case codeFrameTooLarge:
		return 3
	}
	return 4
}

// readBody decodes one framed request body into req. A decode failure
// writes the error response itself and returns false.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, method int, req any) bool {
	body, err := cluster.DecodeFrame(r.Body, wireMagic, MaxFrameBody)
	if err != nil {
		switch {
		case errors.Is(err, cluster.ErrFrameTooLarge):
			s.writeError(w, method, http.StatusRequestEntityTooLarge, codeFrameTooLarge, err.Error())
		default:
			s.writeError(w, method, http.StatusBadRequest, codeBadRequest, err.Error())
		}
		return false
	}
	s.bytesIn.Add(int64(frameLen(len(body))))
	if err := json.Unmarshal(body, req); err != nil {
		s.writeError(w, method, http.StatusBadRequest, codeBadRequest, "request body: "+err.Error())
		return false
	}
	return true
}

// writeFramed sends one framed JSON response.
func (s *Server) writeFramed(w http.ResponseWriter, method, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		// Marshal of our own response types cannot fail; keep the
		// accounting honest anyway.
		status, body = http.StatusInternalServerError,
			[]byte(fmt.Sprintf(`{"code":%q,"detail":"encode response"}`, codeInternal))
	}
	frame := cluster.AppendFrame(nil, wireMagic, body)
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	w.Write(frame)
	s.requests.Inc(method)
	s.bytesOut.Add(int64(len(frame)))
}

func (s *Server) writeError(w http.ResponseWriter, method, status int, code, detail string) {
	s.errs.Inc(codeIndex(code))
	s.writeFramed(w, method, status, wireError{Code: code, Detail: detail})
}

// apiError maps a cluster.API error to its wire (status, code).
func apiError(err error) (int, string) {
	switch {
	case errors.Is(err, cluster.ErrStaleEpoch):
		return http.StatusConflict, codeStaleEpoch
	case errors.Is(err, cluster.ErrUnknownNode):
		return http.StatusNotFound, codeUnknownNode
	case strings.Contains(err.Error(), "out of range"):
		return http.StatusBadRequest, codeBadRequest
	}
	return http.StatusInternalServerError, codeInternal
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !s.readBody(w, r, methodClaim, &req) {
		return
	}
	grants, err := s.api.Claim(req.Node, req.Slice)
	if err != nil {
		status, code := apiError(err)
		s.writeError(w, methodClaim, status, code, err.Error())
		return
	}
	s.writeFramed(w, methodClaim, http.StatusOK, grantsResponse{Grants: toWireGrants(grants)})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !s.readBody(w, r, methodHeartbeat, &req) {
		return
	}
	grants, err := s.api.Heartbeat(req.Node, req.Slice)
	if err != nil {
		status, code := apiError(err)
		s.writeError(w, methodHeartbeat, status, code, err.Error())
		return
	}
	s.writeFramed(w, methodHeartbeat, http.StatusOK, grantsResponse{Grants: toWireGrants(grants)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !s.readBody(w, r, methodSubmit, &req) {
		return
	}
	if err := s.api.SubmitSlice(req.Node, req.Shard, req.Slice, req.Epoch); err != nil {
		status, code := apiError(err)
		s.writeError(w, methodSubmit, status, code, err.Error())
		return
	}
	s.writeFramed(w, methodSubmit, http.StatusOK, okResponse{OK: true})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !s.readBody(w, r, methodRelease, &req) {
		return
	}
	if err := s.api.Release(req.Node); err != nil {
		status, code := apiError(err)
		s.writeError(w, methodRelease, status, code, err.Error())
		return
	}
	s.writeFramed(w, methodRelease, http.StatusOK, okResponse{OK: true})
}

// frameLen is the on-wire size of a frame with an n-byte body: magic
// (4) + length (4) + body + crc (4). Client and server count framed
// bytes with the same formula, which is what makes the cross-registry
// bytes law exact.
func frameLen(n int) int { return n + 12 }

// encodeRequest frames a JSON payload for the wire; shared with the
// client and the golden-fixture tests.
func encodeRequest(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return cluster.AppendFrame(nil, wireMagic, body), nil
}

// decodeResponseFrame unwraps one framed response payload.
func decodeResponseFrame(b []byte) ([]byte, error) {
	return cluster.DecodeFrame(bytes.NewReader(b), wireMagic, MaxFrameBody)
}

// Endpoint is a served transport bound to a socket.
type Endpoint struct {
	// URL is the base URL clients dial (http://127.0.0.1:port).
	URL string

	srv *http.Server
	l   net.Listener
}

// ListenLoopback serves s on an OS-assigned loopback port
// (127.0.0.1:0) and returns the live endpoint. The caller owns the
// endpoint and must Close it.
func ListenLoopback(s *Server) (*Endpoint, error) {
	return ListenAddr(s, "127.0.0.1:0")
}

// ListenAddr serves s on the given TCP address.
func ListenAddr(s *Server, addr string) (*Endpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &Endpoint{
		URL: "http://" + l.Addr().String(),
		srv: &http.Server{Handler: s},
		l:   l,
	}
	go e.srv.Serve(l)
	return e, nil
}

// Close shuts the endpoint down and waits for in-flight handlers, so
// tests (and daemons) leave no serving goroutines behind.
func (e *Endpoint) Close() error {
	err := e.srv.Shutdown(context.Background())
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}
