package transport_test

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ntpscan/internal/chaos"
	"ntpscan/internal/cluster"
	"ntpscan/internal/cluster/transport"
	"ntpscan/internal/core"
	"ntpscan/internal/obs"
)

// Mode B: the multi-process shape. One Fabric served on a loopback
// socket, each campaign node a full deterministic replica driven by
// cluster.RunNode through its own transport.Client. These tests run
// the replicas as goroutines — cmd/clusterd's test covers the
// separate-process wiring — but every control call crosses the real
// socket.

// fabricEndpoint serves a fresh Fabric for the pipeline's shard count
// and returns it with its live endpoint.
func fabricEndpoint(t *testing.T, shards, nodes int) (*cluster.Fabric, *transport.Endpoint) {
	t.Helper()
	fab, err := cluster.NewFabric(shards, cluster.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := transport.ListenLoopback(transport.NewServer(fab, fab.Obs))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := ep.Close(); err != nil {
			t.Errorf("endpoint close: %v", err)
		}
	})
	return fab, ep
}

// Three replica drivers against one wire fabric: every node's JSONL is
// byte-identical to the single-process campaign, and the fabric's
// ledger shows each task accepted exactly once cluster-wide.
func TestNodeReplicasOverSocketByteIdentical(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	ctx := context.Background()
	const nodes = 3
	seed := chaos.Seeds()[0]

	var want bytes.Buffer
	base := core.NewPipeline(chaos.Config(seed))
	if _, err := base.RunCampaign(ctx, core.CampaignOpts{Out: &want}); err != nil {
		t.Fatal(err)
	}

	fab, ep := fabricEndpoint(t, base.Cfg.CollectShards, nodes)
	clientReg := obs.NewRegistry()
	outs := make([]bytes.Buffer, nodes)
	stats := make([]*cluster.NodeStats, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			api := transport.NewClient(ep.URL, n, clientReg)
			defer api.CloseIdle()
			p := core.NewPipeline(chaos.Config(seed))
			_, stats[n], errs[n] = cluster.RunNode(ctx, p, api, n,
				cluster.Config{Nodes: nodes}, core.CampaignOpts{Out: &outs[n]})
		}()
	}
	wg.Wait()

	var accepted int64
	for n := 0; n < nodes; n++ {
		if errs[n] != nil {
			t.Fatalf("node %d: %v", n, errs[n])
		}
		if !bytes.Equal(outs[n].Bytes(), want.Bytes()) {
			t.Errorf("node %d wire replica diverges from single-process run (%d vs %d bytes)",
				n, outs[n].Len(), want.Len())
		}
		accepted += stats[n].Accepted
	}
	claimed, completed, fenced := fab.TaskCounts()
	if completed != accepted {
		t.Errorf("fabric completed %d != nodes' accepted sum %d", completed, accepted)
	}
	if claimed != completed+fenced {
		t.Errorf("fabric conservation violated over the socket: %d != %d + %d",
			claimed, completed, fenced)
	}
	t.Logf("wire cluster: claimed %d = completed %d + fenced %d", claimed, completed, fenced)
}

// restartAPI drives a transport.Client and, the first time the
// campaign reaches trigger's slice, kills the endpoint and brings a
// NEW fabric up on the same address after a delay — a coordinator
// process restart, in-memory lease table lost. The client under it
// must bridge the gap with retry/backoff.
type restartAPI struct {
	*transport.Client
	t       *testing.T
	ep      *transport.Endpoint
	shards  int
	nodes   int
	trigger int

	once sync.Once
	done chan *cluster.Fabric
}

func (r *restartAPI) maybeRestart(slice int) {
	if slice < r.trigger {
		return
	}
	r.once.Do(func() {
		if err := r.ep.Close(); err != nil {
			r.t.Errorf("endpoint close: %v", err)
		}
		addr := strings.TrimPrefix(r.ep.URL, "http://")
		go func() {
			time.Sleep(25 * time.Millisecond)
			fab2, err := cluster.NewFabric(r.shards, cluster.Config{Nodes: r.nodes})
			if err != nil {
				r.t.Error(err)
				r.done <- nil
				return
			}
			// The freed port can linger briefly; rebinding it is the
			// whole point (the node's base URL must stay valid), so
			// retry the bind for a bounded window.
			for deadline := time.Now().Add(5 * time.Second); ; {
				ep2, err := transport.ListenAddr(transport.NewServer(fab2, fab2.Obs), addr)
				if err == nil {
					r.done <- fab2
					r.t.Cleanup(func() {
						if err := ep2.Close(); err != nil {
							r.t.Errorf("restarted endpoint close: %v", err)
						}
					})
					return
				}
				if time.Now().After(deadline) {
					r.t.Errorf("rebind %s: %v", addr, err)
					r.done <- nil
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
	})
}

func (r *restartAPI) Claim(node, slice int) ([]cluster.Grant, error) {
	r.maybeRestart(slice)
	return r.Client.Claim(node, slice)
}

func (r *restartAPI) Heartbeat(node, slice int) ([]cluster.Grant, error) {
	r.maybeRestart(slice)
	return r.Client.Heartbeat(node, slice)
}

// The coordinator dies mid-campaign and a cold replacement (empty
// lease table, epochs back at 1) takes over the same address. The
// replica's client retries across the outage, re-claims against the
// new fabric, and the campaign output does not move by a byte.
func TestNodeReplicaSurvivesFabricRestart(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	ctx := context.Background()
	seed := chaos.Seeds()[0]

	var want bytes.Buffer
	base := core.NewPipeline(chaos.Config(seed))
	if _, err := base.RunCampaign(ctx, core.CampaignOpts{Out: &want}); err != nil {
		t.Fatal(err)
	}

	fab, err := cluster.NewFabric(base.Cfg.CollectShards, cluster.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := transport.ListenLoopback(transport.NewServer(fab, fab.Obs))
	if err != nil {
		t.Fatal(err)
	}
	// No cleanup-close for ep: the restart path closes it mid-test.

	clientReg := obs.NewRegistry()
	client := transport.NewClient(ep.URL, 0, clientReg)
	defer client.CloseIdle()
	// Generous budget, tight backoff: the outage is ~25ms and the test
	// should spend its time executing slices, not sleeping.
	client.Retries = 30
	client.Backoff = 2 * time.Millisecond

	api := &restartAPI{
		Client:  client,
		t:       t,
		ep:      ep,
		shards:  base.Cfg.CollectShards,
		nodes:   1,
		trigger: 25,
		done:    make(chan *cluster.Fabric, 1),
	}
	p := core.NewPipeline(chaos.Config(seed))
	var got bytes.Buffer
	_, stats, err := cluster.RunNode(ctx, p, api, 0, cluster.Config{Nodes: 1},
		core.CampaignOpts{Out: &got})
	if err != nil {
		t.Fatal(err)
	}
	fab2 := <-api.done
	if fab2 == nil {
		t.Fatal("fabric restart failed")
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("replica output moved across a coordinator restart (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	retries := clientReg.Snapshot()["transport_client_retries_total"]
	if len(retries) != 1 || retries[0] == 0 {
		t.Errorf("transport_client_retries_total = %v, want non-zero — the outage was never bridged by backoff", retries)
	}
	if stats.Accepted == 0 {
		t.Error("no submissions accepted after the restart")
	}
	// Both incarnations keep their own books; each must balance.
	for i, f := range []*cluster.Fabric{fab, fab2} {
		claimed, completed, fenced := f.TaskCounts()
		if claimed != completed+fenced {
			t.Errorf("fabric incarnation %d conservation violated: %d != %d + %d",
				i, claimed, completed, fenced)
		}
	}
	t.Logf("restart bridged with %d retries, %d offline slices", retries[0], stats.Offline)
}

// A well-formed frame on an unmounted path is a routing error, not a
// hang: the mux answers 404/405 and the client does not retry it into
// oblivion (http-level errors are responses, not transport failures).
func TestUnmountedPathAnswers(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	_, ep := fabricEndpoint(t, 2, 1)
	frame := cluster.AppendFrame(nil, [4]byte{'n', 't', 'p', 'w'}, []byte(`{"node":0,"slice":0}`))
	resp, err := http.Post(ep.URL+"/v1/cluster/nope", "application/x-ntpscan-frame",
		bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unmounted path status = %d, want 404", resp.StatusCode)
	}
	// GET on a mounted POST path: method not allowed.
	g, err := http.Get(ep.URL + "/v1/cluster/claim")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST path status = %d, want 405", g.StatusCode)
	}
}
