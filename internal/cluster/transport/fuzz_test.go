package transport

import (
	"bytes"
	"errors"
	"testing"

	"ntpscan/internal/cluster"
)

// FuzzTransportFrameDecode drives the wire frame decoder with
// arbitrary bytes under the transport's real bound (MaxFrameBody). The
// contract under fuzz: never panic, never allocate past the bound, and
// fail only through the two typed errors — ErrBadFrame for truncation,
// mis-tagging, or CRC disagreement, ErrFrameTooLarge for an oversized
// declared length. A successful decode must be exact: re-framing the
// body reproduces the consumed prefix byte for byte.
func FuzzTransportFrameDecode(f *testing.F) {
	// The committed corpus under testdata/fuzz covers the branch
	// points; these inline seeds duplicate the shapes for -fuzz runs
	// from a clean tree.
	valid := cluster.AppendFrame(nil, wireMagic, []byte(`{"node":1,"slice":10}`))
	f.Add(valid)
	f.Add(valid[:len(valid)-2]) // truncated crc
	f.Add(valid[:9])            // truncated body
	f.Add(valid[:3])            // truncated header
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt) // crc mismatch
	wrongMagic := append([]byte(nil), valid...)
	wrongMagic[3] = 'c'
	f.Add(wrongMagic)
	huge := []byte{'n', 't', 'p', 'w', 0xff, 0xff, 0xff, 0x7f}
	f.Add(huge) // declared length past the bound
	f.Add(cluster.AppendFrame(nil, wireMagic, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := cluster.DecodeFrame(bytes.NewReader(data), wireMagic, MaxFrameBody)
		if err != nil {
			if !errors.Is(err, cluster.ErrBadFrame) && !errors.Is(err, cluster.ErrFrameTooLarge) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re := cluster.AppendFrame(nil, wireMagic, body)
		if len(re) > len(data) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("accepted frame does not re-encode to its input prefix (%d bytes)", len(body))
		}
	})
}
