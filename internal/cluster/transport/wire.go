// Package transport puts a real wire behind the cluster's control
// plane: the four cluster.API calls (Claim, Heartbeat, SubmitSlice,
// Release) served over HTTP on a loopback socket, with every request
// and response body carried as one self-verifying frame (the cluster
// frame codec under the "ntpw" magic) around a JSON payload.
//
// Server wraps any cluster.API — a live Coordinator for the chaos
// oracle, a Fabric for multi-process nodes — and Client implements
// cluster.API over the socket, so cluster dispatch and node replicas
// run unchanged whether their control calls are function calls or HTTP
// round-trips. Protocol errors survive the wire typed: the server maps
// cluster sentinels to stable error codes and HTTP statuses, and the
// client maps them back so errors.Is(err, cluster.ErrStaleEpoch) holds
// on both sides of the socket.
//
// See DESIGN.md "Cluster transport" for the frame format, the fault
// mapping, and the determinism argument.
package transport

import "ntpscan/internal/cluster"

// wireMagic tags transport frames; distinct from the checkpoint magic
// ("ntpc") so a checkpoint file fed to the wire decoder — or vice
// versa — fails loudly at the first four bytes.
var wireMagic = [4]byte{'n', 't', 'p', 'w'}

// MaxFrameBody bounds the JSON payload of one wire frame (1 MiB). The
// largest legitimate body is a grants response — tens of bytes per
// shard — so the bound is generous for any real decomposition while
// keeping a corrupt or hostile length field from making either side
// allocate gigabytes.
const MaxFrameBody = 1 << 20

// Method paths. One POST endpoint per cluster.API call.
const (
	pathClaim     = "/v1/cluster/claim"
	pathHeartbeat = "/v1/cluster/heartbeat"
	pathSubmit    = "/v1/cluster/submit"
	pathRelease   = "/v1/cluster/release"
)

// contentType marks framed bodies so an accidental plain-JSON client
// is diagnosable from the server's logs.
const contentType = "application/x-ntpscan-frame"

// Dense method indices for the transport metric vectors.
const (
	methodClaim = iota
	methodHeartbeat
	methodSubmit
	methodRelease
	methodCount
)

var methodNames = []string{"claim", "heartbeat", "submit", "release"}

// Wire error codes: the stable names protocol errors travel under.
// Status codes are chosen so generic HTTP tooling reads sensibly
// (conflict for fencing, not-found for an unknown node) but the client
// maps on the code string, never the status.
const (
	codeStaleEpoch    = "stale_epoch"     // 409: submission fenced
	codeUnknownNode   = "unknown_node"    // 404: node index outside the cluster
	codeBadRequest    = "bad_request"     // 400: frame or JSON undecodable
	codeFrameTooLarge = "frame_too_large" // 413: declared body over MaxFrameBody
	codeInternal      = "internal"        // 500: anything else
)

// claimRequest carries Claim and Heartbeat arguments.
type claimRequest struct {
	Node  int `json:"node"`
	Slice int `json:"slice"`
}

// submitRequest carries SubmitSlice arguments.
type submitRequest struct {
	Node  int    `json:"node"`
	Shard int    `json:"shard"`
	Slice int    `json:"slice"`
	Epoch uint64 `json:"epoch"`
}

// releaseRequest carries Release arguments.
type releaseRequest struct {
	Node int `json:"node"`
}

// wireGrant is cluster.Grant on the wire.
type wireGrant struct {
	Shard        int    `json:"shard"`
	Epoch        uint64 `json:"epoch"`
	ExpiresSlice int    `json:"expires_slice"`
}

// grantsResponse answers Claim and Heartbeat.
type grantsResponse struct {
	Grants []wireGrant `json:"grants"`
}

// okResponse answers SubmitSlice and Release.
type okResponse struct {
	OK bool `json:"ok"`
}

// wireError is the body of every non-200 response.
type wireError struct {
	Code   string `json:"code"`
	Detail string `json:"detail"`
}

func toWireGrants(gs []cluster.Grant) []wireGrant {
	out := make([]wireGrant, len(gs))
	for i, g := range gs {
		out[i] = wireGrant{Shard: g.Shard, Epoch: g.Epoch, ExpiresSlice: g.ExpiresSlice}
	}
	return out
}

func fromWireGrants(ws []wireGrant) []cluster.Grant {
	if len(ws) == 0 {
		return nil
	}
	out := make([]cluster.Grant, len(ws))
	for i, w := range ws {
		out[i] = cluster.Grant{Shard: w.Shard, Epoch: w.Epoch, ExpiresSlice: w.ExpiresSlice}
	}
	return out
}
