package transport_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ntpscan/internal/chaos"
	"ntpscan/internal/cluster"
	"ntpscan/internal/cluster/transport"
	"ntpscan/internal/core"
	"ntpscan/internal/netsim"
	"ntpscan/internal/obs"
	"ntpscan/internal/store"
)

// The PR's acceptance oracle: the cluster campaign with its control
// plane routed over a real loopback socket — coordinator served by the
// HTTP transport, every node a transport.Client — must produce the
// byte-exact output of the single-process, no-cluster run, at any node
// count, under mid-campaign node loss and a control-plane partition.
// Epoch fencing must provably happen ON THE SERVER side of the wire
// (the zombies' stale submissions travel the socket and come back
// ErrStaleEpoch).

// pinPartition mirrors the chaos suite's pinned partition: node 2 over
// slices [40, 52), guaranteeing zombie submissions.
func pinPartition(p *core.Pipeline) {
	from, _ := p.SliceWindow(40)
	until, _ := p.SliceWindow(52)
	p.Cfg.Faults.AddNode(netsim.NodeFault{
		Kind: netsim.NodePartition, Node: 2, From: from, Until: until,
	})
}

// socketCluster builds a coordinator for p, serves it on a loopback
// socket, and dials every node's control handle back through the wire.
// Returns the coordinator (dispatch-ready) and the shared client
// registry; teardown is registered on t.
func socketCluster(t *testing.T, p *core.Pipeline, nodes int) (*cluster.Coordinator, *obs.Registry, *transport.Server) {
	t.Helper()
	coord, err := cluster.NewCoordinator(p, cluster.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(coord, nil)
	ep, err := transport.ListenLoopback(srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := ep.Close(); err != nil {
			t.Errorf("endpoint close: %v", err)
		}
	})
	clientReg := obs.NewRegistry()
	coord.SetDial(transport.Dial(ep.URL, clientReg))
	return coord, clientReg, srv
}

func TestClusterOverSocketByteIdentical(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	ctx := context.Background()
	for _, seed := range chaos.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Oracle: data-plane faults only, single process, no cluster,
			// no socket.
			var want bytes.Buffer
			base := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
			if _, err := base.RunCampaign(ctx, core.CampaignOpts{Out: &want}); err != nil {
				t.Fatal(err)
			}

			for _, nodes := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
					spec := chaos.DefaultSpec()
					if nodes > 1 {
						spec = chaos.NodeLossSpec(nodes, 1)
					}
					p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, spec)
					if nodes > 1 {
						pinPartition(p)
					}
					coord, _, _ := socketCluster(t, p, nodes)

					var got bytes.Buffer
					if _, err := coord.Run(ctx, core.CampaignOpts{Out: &got}); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got.Bytes(), want.Bytes()) {
						t.Errorf("socket cluster JSONL diverges from single-process run (%d vs %d bytes)",
							got.Len(), want.Len())
					}
					claimed, completed, fenced, lost := coord.TaskCounts()
					if nodes > 1 && fenced == 0 {
						t.Error("no epoch rejections crossed the wire — zombies were not fenced server-side")
					}
					if claimed != completed+fenced+lost {
						t.Errorf("task conservation violated over the socket: claimed %d != completed %d + fenced %d + lost %d",
							claimed, completed, fenced, lost)
					}
				})
			}
		})
	}
}

// storeDigest hashes a store directory's (sorted) entries — the chaos
// suite's byte-identity fingerprint.
func storeDigest(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s %d\n", n, len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Store directories are part of the contract too: a store-backed
// campaign over the socket, with a kill and a partition in flight,
// leaves the exact directory bytes of the single-process run.
func TestClusterStoreDirIdenticalOverSocket(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	ctx := context.Background()
	seed := chaos.Seeds()[0]

	runDir := func(t *testing.T, nodes int) string {
		dir := t.TempDir()
		spec := chaos.DefaultSpec()
		if nodes > 1 {
			spec = chaos.NodeLossSpec(nodes, 1)
		}
		p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, spec)
		st, err := store.Open(dir, store.Options{Obs: p.Obs})
		if err != nil {
			t.Fatal(err)
		}
		if nodes == 1 {
			if _, err := p.RunCampaign(ctx, core.CampaignOpts{Store: st}); err != nil {
				t.Fatal(err)
			}
			return dir
		}
		pinPartition(p)
		coord, _, _ := socketCluster(t, p, nodes)
		if _, err := coord.Run(ctx, core.CampaignOpts{Store: st}); err != nil {
			t.Fatal(err)
		}
		if coord.EpochRejections() == 0 {
			t.Errorf("nodes=%d: no epoch rejections — zombie fencing untested over the socket", nodes)
		}
		return dir
	}

	want := storeDigest(t, runDir(t, 1))
	for _, nodes := range []int{3, 8} {
		if got := storeDigest(t, runDir(t, nodes)); got != want {
			t.Errorf("nodes=%d: socket-cluster store directory diverges from single-process run", nodes)
		}
	}
}
