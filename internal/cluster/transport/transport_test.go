package transport

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ntpscan/internal/chaos"
	"ntpscan/internal/cluster"
)

// scriptAPI is a deterministic cluster.API: fixed grants, a fencing
// epoch of 7, and fully scripted error details — the target for
// round-trip and golden-fixture tests.
type scriptAPI struct {
	mu    sync.Mutex
	calls []string
}

func (a *scriptAPI) record(s string) {
	a.mu.Lock()
	a.calls = append(a.calls, s)
	a.mu.Unlock()
}

func (a *scriptAPI) snapshot() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.calls...)
}

func (a *scriptAPI) Claim(node, slice int) ([]cluster.Grant, error) {
	a.record(fmt.Sprintf("claim %d %d", node, slice))
	if node < 0 || node >= 3 {
		return nil, fmt.Errorf("%w: node %d of 3", cluster.ErrUnknownNode, node)
	}
	return []cluster.Grant{
		{Shard: 2, Epoch: 7, ExpiresSlice: slice + 2},
		{Shard: 5, Epoch: 7, ExpiresSlice: slice + 2},
	}, nil
}

func (a *scriptAPI) Heartbeat(node, slice int) ([]cluster.Grant, error) {
	a.record(fmt.Sprintf("heartbeat %d %d", node, slice))
	if node < 0 || node >= 3 {
		return nil, fmt.Errorf("%w: node %d of 3", cluster.ErrUnknownNode, node)
	}
	return []cluster.Grant{{Shard: 2, Epoch: 7, ExpiresSlice: slice + 2}}, nil
}

func (a *scriptAPI) SubmitSlice(node, shard, slice int, epoch uint64) error {
	a.record(fmt.Sprintf("submit %d %d %d %d", node, shard, slice, epoch))
	if shard < 0 || shard >= 8 {
		return fmt.Errorf("cluster: shard %d out of range", shard)
	}
	if epoch != 7 {
		return fmt.Errorf("%w: shard %d slice %d epoch %d from node %d (current epoch 7, holder 0)",
			cluster.ErrStaleEpoch, shard, slice, epoch, node)
	}
	return nil
}

func (a *scriptAPI) Release(node int) error {
	a.record(fmt.Sprintf("release %d", node))
	if node < 0 || node >= 3 {
		return fmt.Errorf("%w: node %d of 3", cluster.ErrUnknownNode, node)
	}
	return nil
}

// serveScript starts a loopback endpoint over a scriptAPI and returns
// a client for node 0. Everything is torn down at test cleanup, inside
// the goroutine-leak check.
func serveScript(t *testing.T) (*scriptAPI, *Client) {
	t.Helper()
	chaos.NoGoroutineLeaks(t)
	api := &scriptAPI{}
	ep, err := ListenLoopback(NewServer(api, nil))
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ep.URL, 0, nil)
	t.Cleanup(func() {
		c.CloseIdle()
		if err := ep.Close(); err != nil {
			t.Errorf("endpoint close: %v", err)
		}
	})
	return api, c
}

func TestRoundTripsEveryMethod(t *testing.T) {
	api, c := serveScript(t)

	grants, err := c.Claim(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.Grant{{Shard: 2, Epoch: 7, ExpiresSlice: 12}, {Shard: 5, Epoch: 7, ExpiresSlice: 12}}
	if !reflect.DeepEqual(grants, want) {
		t.Errorf("Claim grants = %+v, want %+v", grants, want)
	}

	grants, err = c.Heartbeat(0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(grants, []cluster.Grant{{Shard: 2, Epoch: 7, ExpiresSlice: 13}}) {
		t.Errorf("Heartbeat grants = %+v", grants)
	}

	if err := c.SubmitSlice(0, 2, 11, 7); err != nil {
		t.Errorf("SubmitSlice(current epoch) = %v, want nil", err)
	}
	if err := c.Release(0); err != nil {
		t.Errorf("Release = %v, want nil", err)
	}

	wantCalls := []string{"claim 0 10", "heartbeat 0 11", "submit 0 2 11 7", "release 0"}
	if got := api.snapshot(); !reflect.DeepEqual(got, wantCalls) {
		t.Errorf("server saw %v, want %v", got, wantCalls)
	}
}

// Protocol errors must come back typed: errors.Is against the cluster
// sentinels holds on the client side of the socket.
func TestTypedErrorsSurviveWire(t *testing.T) {
	_, c := serveScript(t)

	if err := c.SubmitSlice(0, 2, 11, 3); !errors.Is(err, cluster.ErrStaleEpoch) {
		t.Errorf("stale submit error = %v, want ErrStaleEpoch", err)
	}
	if _, err := c.Claim(9, 0); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Errorf("unknown-node claim error = %v, want ErrUnknownNode", err)
	}
	if _, err := c.Heartbeat(9, 0); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Errorf("unknown-node heartbeat error = %v, want ErrUnknownNode", err)
	}
	if err := c.SubmitSlice(0, 99, 0, 7); !errors.Is(err, ErrBadRequest) {
		t.Errorf("out-of-range submit error = %v, want ErrBadRequest", err)
	}
}

// rawPost sends an arbitrary body to one method path and returns the
// status and decoded wire error.
func rawPost(t *testing.T, c *Client, body []byte) (int, wireError) {
	t.Helper()
	hr, err := http.Post(c.base+pathClaim, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := decodeResponseFrame(raw)
	if err != nil {
		t.Fatalf("error response is not a valid frame: %v", err)
	}
	var we wireError
	if err := json.Unmarshal(payload, &we); err != nil {
		t.Fatal(err)
	}
	return hr.StatusCode, we
}

func TestServerRejectsBadFrames(t *testing.T) {
	_, c := serveScript(t)

	// Oversized declared length: rejected before the body is read.
	huge := make([]byte, 12)
	copy(huge, wireMagic[:])
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0x7f
	if status, we := rawPost(t, c, huge); status != http.StatusRequestEntityTooLarge || we.Code != codeFrameTooLarge {
		t.Errorf("oversized frame: status %d code %q, want 413 %q", status, we.Code, codeFrameTooLarge)
	}

	// CRC corruption.
	good, err := encodeRequest(claimRequest{Node: 0, Slice: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if status, we := rawPost(t, c, bad); status != http.StatusBadRequest || we.Code != codeBadRequest {
		t.Errorf("corrupt frame: status %d code %q, want 400 %q", status, we.Code, codeBadRequest)
	}

	// Truncation.
	if status, we := rawPost(t, c, good[:len(good)-3]); status != http.StatusBadRequest || we.Code != codeBadRequest {
		t.Errorf("truncated frame: status %d code %q, want 400 %q", status, we.Code, codeBadRequest)
	}

	// Wrong magic (a checkpoint frame on the wire port).
	wrong := append([]byte(nil), good...)
	wrong[3] = 'c'
	if status, we := rawPost(t, c, wrong); status != http.StatusBadRequest || we.Code != codeBadRequest {
		t.Errorf("wrong magic: status %d code %q, want 400 %q", status, we.Code, codeBadRequest)
	}
}

// A client whose endpoint vanished retries with doubling backoff and
// reconnects once something is listening again — the coordinator
// restart path.
func TestClientReconnectsAfterRestart(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	api := &scriptAPI{}
	ep, err := ListenLoopback(NewServer(api, nil))
	if err != nil {
		t.Fatal(err)
	}
	addr := ep.URL[len("http://"):]

	c := NewClient(ep.URL, 0, nil)
	c.Retries = 40
	c.Backoff = time.Millisecond
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d); time.Sleep(d) }
	defer c.CloseIdle()

	if _, err := c.Claim(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}

	// Bring a replacement server up on the same address while the
	// client is mid-retry.
	var ep2 *Endpoint
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(20 * time.Millisecond)
		for i := 0; i < 100; i++ {
			ep2, err = ListenAddr(NewServer(api, nil), addr)
			if err == nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	defer func() {
		<-done
		if ep2 != nil {
			ep2.Close()
		}
	}()

	if _, err := c.Claim(0, 2); err != nil {
		t.Fatalf("claim after restart: %v", err)
	}
	if c.retries.Value() == 0 {
		t.Error("reconnect consumed no retries — the restart window was never exercised")
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] != slept[i-1]*2 {
			t.Errorf("backoff not doubling: %v", slept)
			break
		}
	}
	if got := c.attempts.Value(); got != c.calls.Sum()+c.retries.Value() {
		t.Errorf("attempts %d != calls %d + retries %d", got, c.calls.Sum(), c.retries.Value())
	}
}

// With nothing ever listening the retry budget drains and the call
// surfaces ErrUnavailable, with the attempt accounting exact.
func TestClientUnavailableAfterBudget(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	// Grab a loopback port and free it so nothing answers there.
	ep, err := ListenLoopback(NewServer(&scriptAPI{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	url := ep.URL
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}

	c := NewClient(url, 0, nil)
	c.Retries = 2
	c.Backoff = time.Millisecond
	defer c.CloseIdle()
	if _, err := c.Claim(0, 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("claim against dead endpoint = %v, want ErrUnavailable", err)
	}
	if got := c.netFails.Value(); got != 3 {
		t.Errorf("net failures = %d, want 3 (1 call + 2 retries)", got)
	}
	if got := c.errs.Sum(); got != 1 {
		t.Errorf("client errors = %d, want 1", got)
	}
}

// wireToError's full code table, including codes this client never
// provokes over a healthy server (frame_too_large on a response-side
// reject, unknown future codes).
func TestWireErrorCodeTable(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{codeStaleEpoch, cluster.ErrStaleEpoch},
		{codeUnknownNode, cluster.ErrUnknownNode},
		{codeBadRequest, ErrBadRequest},
		{codeFrameTooLarge, cluster.ErrFrameTooLarge},
	}
	for _, tc := range cases {
		if err := wireToError(wireError{Code: tc.code, Detail: "d"}); !errors.Is(err, tc.want) {
			t.Errorf("code %q maps to %v, want %v", tc.code, err, tc.want)
		}
	}
	// A code minted by a future server version degrades to a plain
	// error carrying both code and detail, never to a false sentinel.
	err := wireToError(wireError{Code: "new_fangled", Detail: "later"})
	for _, sentinel := range []error{cluster.ErrStaleEpoch, cluster.ErrUnknownNode, ErrBadRequest, cluster.ErrFrameTooLarge} {
		if errors.Is(err, sentinel) {
			t.Errorf("unknown code matched sentinel %v", sentinel)
		}
	}
	if !strings.Contains(err.Error(), "new_fangled") || !strings.Contains(err.Error(), "later") {
		t.Errorf("unknown-code error %q drops the code or detail", err)
	}
}

func TestClientNodeAndRelease(t *testing.T) {
	api, c := serveScript(t)
	if c.Node() != 0 {
		t.Errorf("Node() = %d, want 0", c.Node())
	}
	if err := c.Release(0); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := c.Release(9); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Errorf("unknown-node release = %v, want ErrUnknownNode", err)
	}
	var releases int
	for _, call := range api.snapshot() {
		if strings.HasPrefix(call, "release ") {
			releases++
		}
	}
	if releases != 2 {
		t.Errorf("server saw %d release calls, want 2", releases)
	}
}
