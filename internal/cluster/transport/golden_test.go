package transport

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"ntpscan/internal/chaos"
)

var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// Golden wire fixtures: the exact framed bytes of every cluster.API
// method's request and response (success and the canonical error),
// captured against the scripted API over a real loopback socket. The
// fixtures pin the wire format — magic, little-endian length, JSON
// field order, CRC — so an accidental codec or DTO change shows up as
// a byte diff, not as a cross-version deploy failure. Regenerate
// deliberately with:
//
//	go test ./internal/cluster/transport/ -run Golden -update
func checkWireGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverges from golden:\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// render makes a frame reviewable: the status line then a hex dump.
func render(status int, frame []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "status: %d\n", status)
	b.WriteString(hex.Dump(frame))
	return b.Bytes()
}

func TestWireFixturesGolden(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	ep, err := ListenLoopback(NewServer(&scriptAPI{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// post sends one framed request and captures the raw framed
	// response plus status, exactly as they crossed the socket.
	post := func(t *testing.T, path string, req any) (frame []byte, status int, resp []byte) {
		t.Helper()
		frame, err := encodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := http.Post(ep.URL+path, contentType, bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		resp, err = io.ReadAll(hr.Body)
		if err != nil {
			t.Fatal(err)
		}
		if ct := hr.Header.Get("Content-Type"); ct != contentType {
			t.Errorf("%s: Content-Type = %q, want %q", path, ct, contentType)
		}
		return frame, hr.StatusCode, resp
	}

	cases := []struct {
		name string
		path string
		req  any
	}{
		{"claim", pathClaim, claimRequest{Node: 0, Slice: 10}},
		{"heartbeat", pathHeartbeat, claimRequest{Node: 1, Slice: 11}},
		{"submit_ok", pathSubmit, submitRequest{Node: 0, Shard: 2, Slice: 11, Epoch: 7}},
		{"submit_stale", pathSubmit, submitRequest{Node: 0, Shard: 2, Slice: 11, Epoch: 3}},
		{"release", pathRelease, releaseRequest{Node: 0}},
		{"unknown_node", pathClaim, claimRequest{Node: 9, Slice: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, status, resp := post(t, tc.path, tc.req)
			checkWireGolden(t, tc.name+"_request", []byte(hex.Dump(req)))
			checkWireGolden(t, tc.name+"_response", render(status, resp))
		})
	}
}
