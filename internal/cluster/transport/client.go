package transport

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ntpscan/internal/cluster"
	"ntpscan/internal/obs"
)

// Typed client-side errors.
var (
	// ErrBadRequest is the server's bad_request answer come back typed:
	// it could not decode what we sent (or the arguments were out of
	// range, e.g. a shard index outside the decomposition).
	ErrBadRequest = errors.New("transport: server rejected request as malformed")
	// ErrUnavailable wraps the final transport-level failure after the
	// retry budget is spent: the endpoint never produced a response.
	ErrUnavailable = errors.New("transport: endpoint unavailable")
)

// Client speaks cluster.API to a served endpoint. Protocol errors come
// back typed (errors.Is against the cluster sentinels holds across the
// socket); transport-level failures — connection refused while a
// coordinator restarts, a dropped conn — are retried with doubling
// backoff before surfacing as ErrUnavailable.
//
// Retries re-send the identical request, which is safe: every
// cluster.API call is idempotent (Claim/Heartbeat re-grant, a
// duplicate SubmitSlice of a committed task would fence on the next
// slice's epoch state exactly as the first answer said, Release of
// released leases is a no-op).
type Client struct {
	base string
	node int
	hc   *http.Client

	// Retries is the number of re-sends after a transport-level failure
	// (default 4); Backoff the first retry delay, doubling per attempt
	// (default 50ms).
	Retries int
	Backoff time.Duration

	// sleep is swapped in tests to observe backoff without waiting.
	sleep func(time.Duration)

	// Obs carries the client-side transport families:
	//
	//	transport_client_calls_total{method}     API calls issued
	//	transport_client_errors_total{method}    calls that returned an error
	//	transport_client_attempts_total          HTTP sends, including retries
	//	transport_client_retries_total           re-sends after transport failure
	//	transport_client_net_failures_total      attempts with no HTTP response
	//	transport_client_bytes_out_total         framed request bytes sent
	//	transport_client_bytes_in_total          framed response bytes read
	//
	// Laws (checked by the invariant suite): attempts == calls +
	// retries; attempts == server requests + net failures; and framed
	// bytes out here == framed bytes in at the server.
	Obs *obs.Registry

	calls    *obs.CounterVec
	errs     *obs.CounterVec
	attempts *obs.Counter
	retries  *obs.Counter
	netFails *obs.Counter
	bytesOut *obs.Counter
	bytesIn  *obs.Counter
}

// NewClient builds a client for node against the endpoint's base URL
// (http://host:port). reg may be nil (a private registry is made); the
// cluster convention is one shared registry for all node clients so
// the wire laws aggregate.
func NewClient(base string, node int, reg *obs.Registry) *Client {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Client{
		base: base,
		node: node,
		// Keep-alives off: control calls are small and rare, and idle
		// pooled conns would hold goroutines past test teardown.
		hc:      &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		Retries: 4,
		Backoff: 50 * time.Millisecond,
		sleep:   time.Sleep,
		Obs:     reg,
		calls: reg.NewCounterVec("transport_client_calls_total",
			"wire control calls issued, by method", "method", methodNames),
		errs: reg.NewCounterVec("transport_client_errors_total",
			"wire control calls that returned an error, by method", "method", methodNames),
		attempts: reg.NewCounter("transport_client_attempts_total",
			"HTTP sends including retries"),
		retries: reg.NewCounter("transport_client_retries_total",
			"re-sends after a transport-level failure"),
		netFails: reg.NewCounter("transport_client_net_failures_total",
			"attempts that produced no HTTP response"),
		bytesOut: reg.NewCounter("transport_client_bytes_out_total",
			"framed request bytes sent"),
		bytesIn: reg.NewCounter("transport_client_bytes_in_total",
			"framed response bytes read"),
	}
	return c
}

// Node returns the node index this client submits as.
func (c *Client) Node() int { return c.node }

// call does one API round-trip: frame the request, POST with retry on
// transport failure, unframe the response, map wire errors back to
// sentinels.
func (c *Client) call(method int, path string, req, resp any) error {
	c.calls.Inc(method)
	err := c.roundTrip(method, path, req, resp)
	if err != nil {
		c.errs.Inc(method)
	}
	return err
}

func (c *Client) roundTrip(method int, path string, req, resp any) error {
	frame, err := encodeRequest(req)
	if err != nil {
		return fmt.Errorf("transport: encode request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			c.sleep(c.Backoff << (attempt - 1))
		}
		c.attempts.Inc()
		hr, err := c.hc.Post(c.base+path, contentType, bytes.NewReader(frame))
		if err != nil {
			c.netFails.Inc()
			lastErr = err
			continue
		}
		c.bytesOut.Add(int64(len(frame)))
		raw, err := io.ReadAll(hr.Body)
		hr.Body.Close()
		if err != nil {
			c.netFails.Inc()
			lastErr = err
			continue
		}
		c.bytesIn.Add(int64(len(raw)))
		body, err := decodeResponseFrame(raw)
		if err != nil {
			// A mangled response frame is not retried: the server
			// answered, so re-sending would double-count its effect
			// accounting; surface the corruption instead.
			return fmt.Errorf("transport: response frame: %w", err)
		}
		if hr.StatusCode != http.StatusOK {
			var we wireError
			if err := json.Unmarshal(body, &we); err != nil {
				return fmt.Errorf("transport: undecodable error response (status %d): %w", hr.StatusCode, err)
			}
			return wireToError(we)
		}
		if err := json.Unmarshal(body, resp); err != nil {
			return fmt.Errorf("transport: response body: %w", err)
		}
		return nil
	}
	return fmt.Errorf("%w: %s after %d attempts: %v", ErrUnavailable, path, c.Retries+1, lastErr)
}

// wireToError maps a wire error code back to the typed error the
// in-process API would have returned.
func wireToError(we wireError) error {
	switch we.Code {
	case codeStaleEpoch:
		return fmt.Errorf("%w: %s", cluster.ErrStaleEpoch, we.Detail)
	case codeUnknownNode:
		return fmt.Errorf("%w: %s", cluster.ErrUnknownNode, we.Detail)
	case codeBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, we.Detail)
	case codeFrameTooLarge:
		return fmt.Errorf("%w: %s", cluster.ErrFrameTooLarge, we.Detail)
	}
	return fmt.Errorf("transport: server error (%s): %s", we.Code, we.Detail)
}

// Claim implements cluster.API.
func (c *Client) Claim(node, slice int) ([]cluster.Grant, error) {
	var resp grantsResponse
	if err := c.call(methodClaim, pathClaim, claimRequest{Node: node, Slice: slice}, &resp); err != nil {
		return nil, err
	}
	return fromWireGrants(resp.Grants), nil
}

// Heartbeat implements cluster.API.
func (c *Client) Heartbeat(node, slice int) ([]cluster.Grant, error) {
	var resp grantsResponse
	if err := c.call(methodHeartbeat, pathHeartbeat, claimRequest{Node: node, Slice: slice}, &resp); err != nil {
		return nil, err
	}
	return fromWireGrants(resp.Grants), nil
}

// SubmitSlice implements cluster.API.
func (c *Client) SubmitSlice(node, shard, slice int, epoch uint64) error {
	var resp okResponse
	return c.call(methodSubmit, pathSubmit,
		submitRequest{Node: node, Shard: shard, Slice: slice, Epoch: epoch}, &resp)
}

// Release implements cluster.API.
func (c *Client) Release(node int) error {
	var resp okResponse
	return c.call(methodRelease, pathRelease, releaseRequest{Node: node}, &resp)
}

// CloseIdle releases any idle transport state. With keep-alives off
// this is belt-and-braces, but tests call it so goroutine-leak checks
// never race conn teardown.
func (c *Client) CloseIdle() { c.hc.CloseIdleConnections() }

// Dial is the one-line client constructor for cluster.Config.Dial:
//
//	coord.SetDial(transport.Dial(ep.URL, reg))
func Dial(base string, reg *obs.Registry) func(node int) cluster.API {
	return func(node int) cluster.API { return NewClient(base, node, reg) }
}
