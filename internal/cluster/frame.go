package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Self-verifying frame codec, shared by the coordinator checkpoint and
// the wire transport's request/response bodies:
//
//	magic (4 bytes) | uint32 body length | body | crc32(body)
//
// all fixed-width fields little-endian, CRC over the body with the
// IEEE polynomial. A frame cut short anywhere — header, body, or
// trailer — or whose CRC disagrees decodes to ErrBadFrame, never to a
// silently half-read body; a declared length beyond the caller's bound
// decodes to ErrFrameTooLarge before a byte of body is read, so a
// corrupt or hostile length field cannot make the reader allocate
// gigabytes.

// Typed frame errors. Callers match with errors.Is.
var (
	// ErrBadFrame rejects a frame that is truncated, mis-tagged, or
	// fails its CRC.
	ErrBadFrame = errors.New("cluster: frame truncated or corrupt")
	// ErrFrameTooLarge rejects a frame whose declared body length
	// exceeds the decoder's bound.
	ErrFrameTooLarge = errors.New("cluster: frame body exceeds size bound")
)

// EncodeFrame writes body as one framed record under the given magic.
func EncodeFrame(w io.Writer, magic [4]byte, body []byte) error {
	head := make([]byte, 8)
	copy(head, magic[:])
	binary.LittleEndian.PutUint32(head[4:], uint32(len(body)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(body))
	_, err := w.Write(tail[:])
	return err
}

// AppendFrame appends the framed encoding of body to dst and returns
// the extended slice — the allocation-free path for callers that
// already hold a buffer.
func AppendFrame(dst []byte, magic [4]byte, body []byte) []byte {
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
}

// DecodeFrame reads one framed record under the given magic. maxBody
// bounds the declared body length (0 means no bound). Truncation,
// magic mismatch, or CRC disagreement return ErrBadFrame (wrapped with
// the detail); an oversized declaration returns ErrFrameTooLarge.
func DecodeFrame(r io.Reader, magic [4]byte, maxBody uint32) ([]byte, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("%w: frame header: %v", ErrBadFrame, err)
	}
	if [4]byte(head[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrBadFrame, head[:4], magic[:])
	}
	n := binary.LittleEndian.Uint32(head[4:])
	if maxBody > 0 && n > maxBody {
		return nil, fmt.Errorf("%w: declared %d bytes, bound %d", ErrFrameTooLarge, n, maxBody)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: body (%d bytes): %v", ErrBadFrame, n, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: crc trailer: %v", ErrBadFrame, err)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %08x, want %08x)", ErrBadFrame, got, want)
	}
	return body, nil
}
