package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ntpscan/internal/chaos"
	"ntpscan/internal/cluster"
	"ntpscan/internal/core"
	"ntpscan/internal/netsim"
)

// runBaseline is the oracle: the same faulted campaign run
// single-process, no dispatcher.
func runBaseline(t *testing.T, seed uint64) (*core.Pipeline, []byte) {
	t.Helper()
	var out bytes.Buffer
	p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
	if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Out: &out}); err != nil {
		t.Fatal(err)
	}
	return p, out.Bytes()
}

// runCluster runs the same campaign through a node cluster, with
// mutate given a chance to add node faults to the installed plan
// before the campaign starts.
func runCluster(t *testing.T, seed uint64, cfg cluster.Config, mutate func(p *core.Pipeline)) (*core.Pipeline, *cluster.Coordinator, []byte) {
	t.Helper()
	var out bytes.Buffer
	p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
	if mutate != nil {
		mutate(p)
	}
	_, coord, err := cluster.Run(context.Background(), p, cfg, core.CampaignOpts{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	return p, coord, out.Bytes()
}

func checkIdentical(t *testing.T, label string, p, base *core.Pipeline, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Errorf("%s: JSONL diverges from single-process run (%d vs %d bytes)", label, len(got), len(want))
	}
	if p.Captures != base.Captures {
		t.Errorf("%s: Captures = %d, want %d", label, p.Captures, base.Captures)
	}
	if g, w := fmt.Sprintf("%+v", p.Summary.Stats()), fmt.Sprintf("%+v", base.Summary.Stats()); g != w {
		t.Errorf("%s: Summary diverges:\n got %s\nwant %s", label, g, w)
	}
}

func checkConservation(t *testing.T, coord *cluster.Coordinator) {
	t.Helper()
	claimed, completed, fenced, lost := coord.TaskCounts()
	if claimed != completed+fenced+lost {
		t.Errorf("task conservation violated: claimed %d != completed %d + fenced %d + lost %d",
			claimed, completed, fenced, lost)
	}
	if inflight := coord.Obs.Snapshot()["cluster_tasks_inflight"]; len(inflight) != 1 || inflight[0] != 0 {
		t.Errorf("cluster_tasks_inflight = %v at campaign end, want [0]", inflight)
	}
}

// Nodes, like workers, must be pure execution placement: the clustered
// campaign's output is byte-identical to the single-process one at any
// node count.
func TestClusterByteIdenticalAcrossNodes(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	seed := chaos.Seeds()[0]
	base, want := runBaseline(t, seed)
	for _, nodes := range []int{1, 3, 8} {
		p, coord, got := runCluster(t, seed, cluster.Config{Nodes: nodes}, nil)
		checkIdentical(t, fmt.Sprintf("nodes=%d", nodes), p, base, got, want)
		claimed, completed, fenced, lost := coord.TaskCounts()
		if fenced != 0 || lost != 0 {
			t.Errorf("nodes=%d: healthy cluster fenced %d / lost %d tasks", nodes, fenced, lost)
		}
		if claimed == 0 || claimed != completed {
			t.Errorf("nodes=%d: claimed %d, completed %d", nodes, claimed, completed)
		}
		checkConservation(t, coord)
	}
}

// midSlice returns a time strictly inside slice s's window — a crash
// starting there is a mid-slice death, not a missed heartbeat.
func midSlice(p *core.Pipeline, s int) time.Time {
	from, until := p.SliceWindow(s)
	return from.Add(until.Sub(from) / 2)
}

// A node crash mid-campaign — dispatched tasks lost mid-slice, leases
// fenced, shards reassigned to the survivors, the node rejoining from
// coordinator state when the window closes — must not move a single
// output byte.
func TestClusterNodeKillByteIdentical(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	seed := chaos.Seeds()[0]
	base, want := runBaseline(t, seed)
	p, coord, got := runCluster(t, seed, cluster.Config{Nodes: 3}, func(p *core.Pipeline) {
		p.Cfg.Faults.AddNode(netsim.NodeFault{
			Kind: netsim.NodeCrash, Node: 1,
			From: midSlice(p, 40), Until: midSlice(p, 60),
		})
	})
	checkIdentical(t, "kill nodes=3", p, base, got, want)
	_, _, _, lost := coord.TaskCounts()
	if lost == 0 {
		t.Error("mid-slice crash lost no dispatched tasks — the kill window missed execution")
	}
	snap := coord.Obs.Snapshot()
	if missed := snap["cluster_heartbeats_missed_total"]; sum(missed) == 0 {
		t.Error("crashed node missed no heartbeats")
	}
	if expired := snap["cluster_leases_expired_total"]; sum(expired) == 0 {
		t.Error("crash expired no leases")
	}
	checkConservation(t, coord)
}

// A partitioned node cannot hear that its leases expired: it keeps
// executing until its grant view runs out, and every submission it
// makes is fenced by the epoch check (the acceptance criterion:
// epoch-rejections strictly positive in kill runs) — and rolled back so
// the replacement execution leaves output byte-identical.
func TestClusterPartitionFencesZombies(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	seed := chaos.Seeds()[0]
	base, want := runBaseline(t, seed)
	p, coord, got := runCluster(t, seed, cluster.Config{Nodes: 3}, func(p *core.Pipeline) {
		from, _ := p.SliceWindow(40)
		until, _ := p.SliceWindow(52)
		p.Cfg.Faults.AddNode(netsim.NodeFault{
			Kind: netsim.NodePartition, Node: 2, From: from, Until: until,
		})
	})
	checkIdentical(t, "partition nodes=3", p, base, got, want)
	if coord.EpochRejections() == 0 {
		t.Error("partitioned node's zombie submissions were not fenced (epoch rejections == 0)")
	}
	checkConservation(t, coord)
}

// Heartbeats lagging past the coordinator's grace read as misses: the
// node is treated as dead (leases fence and reassign) even though its
// process is fine — and output still does not move.
func TestClusterSlowHeartbeatExpiresLeases(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	seed := chaos.Seeds()[0]
	base, want := runBaseline(t, seed)
	p, coord, got := runCluster(t, seed, cluster.Config{Nodes: 2}, func(p *core.Pipeline) {
		from, _ := p.SliceWindow(30)
		until, _ := p.SliceWindow(36)
		p.Cfg.Faults.AddNode(netsim.NodeFault{
			Kind: netsim.NodeSlowHeartbeat, Node: 0, From: from, Until: until,
			Delay: 2 * time.Hour, // far past the default 30m grace
		})
	})
	checkIdentical(t, "slow-heartbeat nodes=2", p, base, got, want)
	snap := coord.Obs.Snapshot()
	if missed := snap["cluster_heartbeats_missed_total"]; sum(missed) == 0 {
		t.Error("lagged heartbeats were not counted as missed")
	}
	if expired := snap["cluster_leases_expired_total"]; sum(expired) == 0 {
		t.Error("missed heartbeats expired no leases")
	}
	checkConservation(t, coord)
}

// Control calls from node indices outside the configured cluster are
// rejected with the typed error.
func TestClusterUnknownNodeRejected(t *testing.T) {
	seed := chaos.Seeds()[0]
	_, coord, _ := runCluster(t, seed, cluster.Config{Nodes: 2}, nil)
	if _, err := coord.Claim(2, 0); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Errorf("Claim(2): err = %v, want ErrUnknownNode", err)
	}
	if _, err := coord.Heartbeat(-1, 0); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Errorf("Heartbeat(-1): err = %v, want ErrUnknownNode", err)
	}
	if err := coord.SubmitSlice(7, 0, 0, 1); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Errorf("SubmitSlice(7): err = %v, want ErrUnknownNode", err)
	}
	if err := coord.Release(5); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Errorf("Release(5): err = %v, want ErrUnknownNode", err)
	}
}

func sum(vals []int64) (s int64) {
	for _, v := range vals {
		s += v
	}
	return s
}
