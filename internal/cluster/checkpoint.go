package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"ntpscan/internal/core"
)

// Framed coordinator-checkpoint encoding. The coordinator is the one
// component whose loss must not lose the campaign, so its checkpoint
// gets a self-verifying frame rather than bare JSON:
//
//	magic "ntpc" | uint32 body length | body (checkpoint JSON) | crc32(body)
//
// all fixed-width fields little-endian, CRC over the body with the
// IEEE polynomial. A frame cut short anywhere — header, body, or
// trailer — or whose CRC disagrees decodes to ErrTruncatedCheckpoint,
// never to a silently half-restored lease table.

var checkpointMagic = [4]byte{'n', 't', 'p', 'c'}

// EncodeCheckpoint writes cp as one framed record.
func EncodeCheckpoint(w io.Writer, cp *core.Checkpoint) error {
	body, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("cluster: encode checkpoint: %w", err)
	}
	head := make([]byte, 8)
	copy(head, checkpointMagic[:])
	binary.LittleEndian.PutUint32(head[4:], uint32(len(body)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(body))
	_, err = w.Write(tail[:])
	return err
}

// DecodeCheckpoint reads one framed checkpoint. Truncation or
// corruption anywhere in the frame returns ErrTruncatedCheckpoint
// (wrapped with the detail), so a resume from a torn coordinator write
// fails loudly instead of continuing from half a lease table.
func DecodeCheckpoint(r io.Reader) (*core.Checkpoint, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("%w: frame header: %v", ErrTruncatedCheckpoint, err)
	}
	if [4]byte(head[:4]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrTruncatedCheckpoint, head[:4])
	}
	n := binary.LittleEndian.Uint32(head[4:])
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: body (%d bytes): %v", ErrTruncatedCheckpoint, n, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: crc trailer: %v", ErrTruncatedCheckpoint, err)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %08x, want %08x)", ErrTruncatedCheckpoint, got, want)
	}
	cp := new(core.Checkpoint)
	if err := json.Unmarshal(body, cp); err != nil {
		return nil, fmt.Errorf("cluster: decode checkpoint body: %w", err)
	}
	return cp, nil
}
