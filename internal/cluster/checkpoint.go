package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"ntpscan/internal/core"
)

// Framed coordinator-checkpoint encoding. The coordinator is the one
// component whose loss must not lose the campaign, so its checkpoint
// gets a self-verifying frame (see frame.go) rather than bare JSON:
// the body is the checkpoint JSON under the "ntpc" magic. A frame cut
// short anywhere — header, body, or trailer — or whose CRC disagrees
// decodes to ErrTruncatedCheckpoint, never to a silently half-restored
// lease table.

var checkpointMagic = [4]byte{'n', 't', 'p', 'c'}

// EncodeCheckpoint writes cp as one framed record.
func EncodeCheckpoint(w io.Writer, cp *core.Checkpoint) error {
	body, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("cluster: encode checkpoint: %w", err)
	}
	return EncodeFrame(w, checkpointMagic, body)
}

// DecodeCheckpoint reads one framed checkpoint. Truncation or
// corruption anywhere in the frame returns ErrTruncatedCheckpoint
// (wrapped with the detail), so a resume from a torn coordinator write
// fails loudly instead of continuing from half a lease table.
func DecodeCheckpoint(r io.Reader) (*core.Checkpoint, error) {
	body, err := DecodeFrame(r, checkpointMagic, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncatedCheckpoint, err)
	}
	cp := new(core.Checkpoint)
	if err := json.Unmarshal(body, cp); err != nil {
		return nil, fmt.Errorf("cluster: decode checkpoint body: %w", err)
	}
	return cp, nil
}
