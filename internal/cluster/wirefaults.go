package cluster

import (
	"time"

	"ntpscan/internal/netsim"
)

// The wire-fault seam: every node→coordinator control call goes
// through a per-node NodeWire, which reifies the fault plan's node
// faults as transport behavior —
//
//	NodeCrash         → connection refused (netsim.DialRefused): a dead
//	                    process opens no sockets, so nothing is sent.
//	NodePartition     → request blackholed (netsim.DialTimeout) for
//	                    Claim/Heartbeat: the control channel is cut and
//	                    the caller times out. SubmitSlice still passes —
//	                    the data-plane path the zombie scenario needs:
//	                    a partitioned node's submissions arrive carrying
//	                    their stale epoch and are fenced server-side,
//	                    exactly as in PR 7's in-process protocol.
//	NodeSlowHeartbeat → latency stamped, never slept: a delay within the
//	                    coordinator's grace is recorded in the delay
//	                    histogram and the call proceeds; a delay beyond
//	                    it reads as a timeout (netsim.DialTimeout), so
//	                    the heartbeat never arrives as far as the
//	                    protocol can tell.
//
// Because the seam evaluates the plan at the slice-frozen window start
// — the same instant the in-process driver used — liveness, lease
// expiry, and zombie fencing are bit-equal whether the base API is the
// coordinator's methods or an HTTP client pointed at a served socket.

// WireFaultKind names the seam's interventions for the
// cluster_wire_faults_total counter.
type WireFaultKind uint8

const (
	// WireRefused is a control call suppressed because the node's crash
	// window covers the slice (connection refused).
	WireRefused WireFaultKind = iota
	// WireBlackholed is a control call suppressed because the node is
	// partitioned (request sent, nothing returns).
	WireBlackholed
	// WireLate is a heartbeat suppressed because its injected delay
	// exceeds the coordinator's grace.
	WireLate

	wireFaultKinds = 3
)

// String names the kind for the metric label.
func (k WireFaultKind) String() string {
	switch k {
	case WireRefused:
		return "refused"
	case WireBlackholed:
		return "blackhole"
	case WireLate:
		return "late"
	}
	return "unknown"
}

// NodeWire is one node's fault-injecting control-plane handle. It
// implements API over a base API (the coordinator directly, or a
// transport client dialing a served coordinator) and owns no protocol
// state of its own — every decision is a pure function of (plan, node,
// slice window), so the seam cannot desynchronize driver and server.
type NodeWire struct {
	base  API
	node  int
	plan  *netsim.FaultPlan
	win   func(slice int) (from, until time.Time)
	grace time.Duration

	// onFault and onDelay, when non-nil, feed the owner's metrics:
	// interventions by kind, and stamped heartbeat latency.
	onFault func(WireFaultKind)
	onDelay func(time.Duration)
}

// NewNodeWire builds the fault seam for one node. plan may be nil (no
// faults: every call passes). window maps a slice index to its span on
// the logical clock — core.Pipeline.SliceWindow in campaign use.
func NewNodeWire(base API, node int, plan *netsim.FaultPlan, window func(slice int) (from, until time.Time), grace time.Duration) *NodeWire {
	if grace <= 0 {
		grace = 30 * time.Minute
	}
	return &NodeWire{base: base, node: node, plan: plan, win: window, grace: grace}
}

// gate applies the control-channel fault mapping for a call made in
// slice's window. A nil return means the call goes through.
func (w *NodeWire) gate(slice int) error {
	if w.plan == nil {
		return nil
	}
	at, _ := w.win(slice)
	if w.plan.NodeDown(w.node, at) {
		w.fault(WireRefused)
		return netsim.DialRefused()
	}
	if w.plan.NodePartitioned(w.node, at) {
		w.fault(WireBlackholed)
		return netsim.DialTimeout()
	}
	if d := w.plan.HeartbeatDelay(w.node, at); d > 0 {
		if d > w.grace {
			w.fault(WireLate)
			return netsim.DialTimeout()
		}
		if w.onDelay != nil {
			w.onDelay(d)
		}
	}
	return nil
}

func (w *NodeWire) fault(k WireFaultKind) {
	if w.onFault != nil {
		w.onFault(k)
	}
}

// Claim implements API with the control-channel gate applied.
func (w *NodeWire) Claim(node, slice int) ([]Grant, error) {
	if err := w.gate(slice); err != nil {
		return nil, err
	}
	return w.base.Claim(node, slice)
}

// Heartbeat implements API with the control-channel gate applied.
func (w *NodeWire) Heartbeat(node, slice int) ([]Grant, error) {
	if err := w.gate(slice); err != nil {
		return nil, err
	}
	return w.base.Heartbeat(node, slice)
}

// SubmitSlice implements API. Only a crash suppresses submissions — a
// partitioned node's data plane still reaches the coordinator, which
// is precisely how its stale-epoch submissions get fenced rather than
// silently lost.
func (w *NodeWire) SubmitSlice(node, shard, slice int, epoch uint64) error {
	if w.plan != nil {
		if at, _ := w.win(slice); w.plan.NodeDown(w.node, at) {
			w.fault(WireRefused)
			return netsim.DialRefused()
		}
	}
	return w.base.SubmitSlice(node, shard, slice, epoch)
}

// Release implements API. Release is the graceful-decommission call —
// it carries no slice, and a node in a fault window never makes it —
// so it passes through unconditionally.
func (w *NodeWire) Release(node int) error {
	return w.base.Release(node)
}
