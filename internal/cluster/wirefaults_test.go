package cluster

import (
	"errors"
	"testing"
	"time"

	"ntpscan/internal/core"
	"ntpscan/internal/netsim"
)

// recordAPI records every call that made it through the seam.
type recordAPI struct {
	claims, heartbeats, submits, releases int
}

func (r *recordAPI) Claim(node, slice int) ([]Grant, error) {
	r.claims++
	return []Grant{{Shard: 0, Epoch: 1, ExpiresSlice: slice + 2}}, nil
}
func (r *recordAPI) Heartbeat(node, slice int) ([]Grant, error) {
	r.heartbeats++
	return nil, nil
}
func (r *recordAPI) SubmitSlice(node, shard, slice int, epoch uint64) error {
	r.submits++
	return nil
}
func (r *recordAPI) Release(node int) error {
	r.releases++
	return nil
}

// The seam's fault mapping, call by call: crash refuses everything but
// Release, partition blackholes only the control channel, a slow
// heartbeat within grace is stamped and passes, past grace it times
// out. All decisions at the slice window start.
func TestNodeWireFaultMapping(t *testing.T) {
	t0 := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	window := func(slice int) (time.Time, time.Time) {
		from := t0.Add(time.Duration(slice) * time.Hour)
		return from, from.Add(time.Hour)
	}
	var plan netsim.FaultPlan
	plan.AddNode(netsim.NodeFault{Kind: netsim.NodeCrash, Node: 0,
		From: t0.Add(1 * time.Hour), Until: t0.Add(2 * time.Hour)})
	plan.AddNode(netsim.NodeFault{Kind: netsim.NodePartition, Node: 0,
		From: t0.Add(2 * time.Hour), Until: t0.Add(3 * time.Hour)})
	plan.AddNode(netsim.NodeFault{Kind: netsim.NodeSlowHeartbeat, Node: 0, Delay: 5 * time.Minute,
		From: t0.Add(3 * time.Hour), Until: t0.Add(4 * time.Hour)})
	plan.AddNode(netsim.NodeFault{Kind: netsim.NodeSlowHeartbeat, Node: 0, Delay: 2 * time.Hour,
		From: t0.Add(4 * time.Hour), Until: t0.Add(5 * time.Hour)})

	base := &recordAPI{}
	var faults []WireFaultKind
	var delays []time.Duration
	w := NewNodeWire(base, 0, &plan, window, 30*time.Minute)
	w.onFault = func(k WireFaultKind) { faults = append(faults, k) }
	w.onDelay = func(d time.Duration) { delays = append(delays, d) }

	// Slice 0: no fault window — everything passes.
	if _, err := w.Claim(0, 0); err != nil {
		t.Fatalf("clean claim: %v", err)
	}
	if err := w.SubmitSlice(0, 0, 0, 1); err != nil {
		t.Fatalf("clean submit: %v", err)
	}

	// Slice 1: crashed. Control and data plane both refused.
	if _, err := w.Claim(0, 1); err == nil {
		t.Error("claim during crash passed")
	}
	if err := w.SubmitSlice(0, 0, 1, 1); err == nil {
		t.Error("submit during crash passed")
	}

	// Slice 2: partitioned. Control blackholed, data plane passes — the
	// zombie path.
	if _, err := w.Heartbeat(0, 2); err == nil {
		t.Error("heartbeat during partition passed")
	}
	if err := w.SubmitSlice(0, 0, 2, 1); err != nil {
		t.Errorf("submit during partition = %v, want pass-through (zombie data plane)", err)
	}

	// Slice 3: 5m delay, 30m grace — stamped, passes.
	if _, err := w.Heartbeat(0, 3); err != nil {
		t.Errorf("in-grace slow heartbeat = %v, want pass", err)
	}
	// Slice 4: 2h delay past grace — late, suppressed.
	if _, err := w.Heartbeat(0, 4); err == nil {
		t.Error("past-grace heartbeat passed")
	}

	// Release always passes, whatever window the node is in.
	if err := w.Release(0); err != nil {
		t.Errorf("release = %v, want unconditional pass", err)
	}

	wantFaults := []WireFaultKind{WireRefused, WireRefused, WireBlackholed, WireLate}
	if len(faults) != len(wantFaults) {
		t.Fatalf("fault interventions = %v, want %v", faults, wantFaults)
	}
	for i, k := range wantFaults {
		if faults[i] != k {
			t.Errorf("fault %d = %s, want %s", i, faults[i], k)
		}
	}
	if len(delays) != 1 || delays[0] != 5*time.Minute {
		t.Errorf("stamped delays = %v, want [5m]", delays)
	}
	if base.claims != 1 || base.heartbeats != 1 || base.submits != 2 || base.releases != 1 {
		t.Errorf("base saw claims=%d heartbeats=%d submits=%d releases=%d, want 1/1/2/1",
			base.claims, base.heartbeats, base.submits, base.releases)
	}
}

func TestNodeWireNilPlanPassesEverything(t *testing.T) {
	base := &recordAPI{}
	w := NewNodeWire(base, 3, nil, nil, 0) // grace defaulted, window unused
	if _, err := w.Claim(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Heartbeat(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.SubmitSlice(3, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if w.grace != 30*time.Minute {
		t.Errorf("defaulted grace = %v, want 30m", w.grace)
	}
}

func TestWireFaultKindStrings(t *testing.T) {
	cases := map[WireFaultKind]string{
		WireRefused:      "refused",
		WireBlackholed:   "blackhole",
		WireLate:         "late",
		WireFaultKind(9): "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// SetDial reroutes the coordinator's per-node handles: after SetDial,
// control calls reach the dialed API, not the coordinator's own
// methods, and the cached handles are rebuilt.
func TestCoordinatorSetDialReroutesHandles(t *testing.T) {
	p := core.NewPipeline(nodeTestConfig(7))
	c, err := NewCoordinator(p, Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	direct := c.handles()
	if len(direct) != 2 {
		t.Fatalf("handles() = %d entries, want 2", len(direct))
	}

	dialed := make([]*recordAPI, 2)
	c.SetDial(func(node int) API {
		dialed[node] = &recordAPI{}
		return dialed[node]
	})
	rerouted := c.handles()
	if len(rerouted) != 2 {
		t.Fatalf("rerouted handles() = %d entries, want 2", len(rerouted))
	}
	if _, err := rerouted[1].Claim(1, 0); err != nil {
		t.Fatal(err)
	}
	if dialed[1] == nil || dialed[1].claims != 1 {
		t.Error("claim through rerouted handle did not reach the dialed API")
	}
	if dialed[0] != nil && dialed[0].claims != 0 {
		t.Error("claim leaked to the wrong node's handle")
	}
	if c.Nodes() != 2 {
		t.Errorf("Nodes() = %d, want 2", c.Nodes())
	}
}

// errors.Is sanity for the sentinels the wire maps to codes.
func TestSentinelIdentity(t *testing.T) {
	for _, err := range []error{ErrStaleEpoch, ErrUnknownNode, ErrBadFrame, ErrFrameTooLarge} {
		if !errors.Is(err, err) {
			t.Errorf("%v does not match itself", err)
		}
	}
}
