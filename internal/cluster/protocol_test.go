package cluster

import (
	"errors"
	"testing"

	"ntpscan/internal/chaos"
	"ntpscan/internal/core"
)

// White-box protocol unit tests: the lease table's fencing rules,
// checked directly against the coordinator's state machine without a
// campaign around them.

func testCoordinator(t *testing.T, nodes int) *Coordinator {
	t.Helper()
	p := core.NewPipeline(chaos.Config(11))
	c, err := NewCoordinator(p, Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSubmitSliceFencesStaleEpochs(t *testing.T) {
	c := testCoordinator(t, 3)
	c.table[0] = lease{holder: 1, epoch: 5, expires: 2}

	if err := c.SubmitSlice(1, 0, 0, 4); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("stale epoch: err = %v, want ErrStaleEpoch", err)
	}
	if err := c.SubmitSlice(2, 0, 0, 5); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("right epoch, wrong holder: err = %v, want ErrStaleEpoch", err)
	}
	if err := c.SubmitSlice(1, 0, 0, 5); err != nil {
		t.Errorf("current holder, current epoch: err = %v, want nil", err)
	}
	if err := c.SubmitSlice(1, 99, 0, 5); err == nil || errors.Is(err, ErrStaleEpoch) {
		t.Errorf("out-of-range shard: err = %v, want a non-fencing error", err)
	}
	if got := c.met.fenced.Value(); got != 2 {
		t.Errorf("epoch rejections = %d, want 2", got)
	}
	if got := c.met.completed.Value(); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

func TestExpireAndReleaseAdvanceEpochs(t *testing.T) {
	c := testCoordinator(t, 2)
	c.table[0] = lease{holder: 0, epoch: 3}
	c.table[1] = lease{holder: 0, epoch: 7}
	c.table[2] = lease{holder: 1, epoch: 1}

	c.mu.Lock()
	freed := c.expireLocked(0)
	c.mu.Unlock()
	if freed != 2 {
		t.Fatalf("expired %d leases, want 2", freed)
	}
	if c.table[0] != (lease{holder: -1, epoch: 4}) || c.table[1] != (lease{holder: -1, epoch: 8}) {
		t.Errorf("expiry did not fence: %+v %+v", c.table[0], c.table[1])
	}
	if c.table[2].holder != 1 {
		t.Error("expiry touched another node's lease")
	}

	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if c.table[2] != (lease{holder: -1, epoch: 2}) {
		t.Errorf("release did not fence: %+v", c.table[2])
	}
	// A straggler submission under the released epoch fences.
	if err := c.SubmitSlice(1, 2, 0, 1); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("post-release submission: err = %v, want ErrStaleEpoch", err)
	}
}

// Rebalance must be the deterministic placement rule the determinism
// argument leans on: contiguous runs of shards over live nodes in node
// order, every unowned shard placed, no owned lease disturbed.
func TestRebalanceContiguousOverLiveNodes(t *testing.T) {
	c := testCoordinator(t, 4)
	c.live = []bool{true, false, true, true} // node 1 dead
	c.table[5] = lease{holder: 2, epoch: 9, expires: 1}

	c.mu.Lock()
	c.rebalanceLocked(3)
	c.mu.Unlock()

	if c.table[5] != (lease{holder: 2, epoch: 9, expires: 1}) {
		t.Errorf("rebalance disturbed an owned lease: %+v", c.table[5])
	}
	prev := -1
	counts := map[int]int{}
	for sh := range c.table {
		l := c.table[sh]
		if l.holder < 0 {
			t.Fatalf("shard %d left unowned", sh)
		}
		if l.holder == 1 {
			t.Fatalf("shard %d assigned to a dead node", sh)
		}
		if sh == 5 {
			continue
		}
		if l.holder < prev {
			t.Fatalf("placement not contiguous in node order: shard %d holder %d after %d", sh, l.holder, prev)
		}
		prev = l.holder
		counts[l.holder]++
		if l.expires != 3+c.cfg.LeaseTTL {
			t.Fatalf("shard %d expires at %d, want %d", sh, l.expires, 3+c.cfg.LeaseTTL)
		}
	}
	for _, n := range []int{0, 2, 3} {
		if counts[n] == 0 {
			t.Errorf("live node %d received no shards", n)
		}
	}
}

func TestHeartbeatRenewsLeases(t *testing.T) {
	c := testCoordinator(t, 2)
	c.table[4] = lease{holder: 1, epoch: 2, expires: 1}
	grants, err := c.Heartbeat(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 1 || grants[0] != (Grant{Shard: 4, Epoch: 2, ExpiresSlice: 6 + c.cfg.LeaseTTL}) {
		t.Fatalf("grants = %+v", grants)
	}
	if c.table[4].expires != 6+c.cfg.LeaseTTL {
		t.Errorf("lease expiry not renewed: %+v", c.table[4])
	}
}

func TestNewCoordinatorRejectsFullPacketNTP(t *testing.T) {
	cfg := chaos.Config(11)
	cfg.FullPacketNTP = true
	if _, err := NewCoordinator(core.NewPipeline(cfg), Config{Nodes: 2}); err == nil {
		t.Fatal("FullPacketNTP pipeline accepted — the fabric hook needs serial shards")
	}
}

func TestEpochsStartAtOne(t *testing.T) {
	c := testCoordinator(t, 1)
	for sh := range c.table {
		if c.table[sh].epoch != 1 {
			t.Fatalf("shard %d epoch %d, want 1 (zero must never pass the fence)", sh, c.table[sh].epoch)
		}
	}
}
