package cluster

import (
	"sync"
	"sync/atomic"

	"ntpscan/internal/core"
)

// node is one in-process campaign node: an executor over its granted
// shards with a bounded worker pool. Nodes are deliberately stateless
// beyond their grant list — shard state lives with the pipeline, and a
// rejoining node re-Claims rather than trusting its memory.
type node struct {
	id      int
	grants  []Grant
	workers int
}

// execute runs the node's granted shard tasks (worker-pool, dynamic
// pickup) and submits each through the fencing gate. A live node's
// submission fencing is a protocol invariant violation, not a runtime
// condition — the coordinator only dispatches to nodes whose leases it
// just renewed — so it panics rather than silently dropping work.
func (n *node) execute(api API, slice int, shards []core.ShardRef, run func(core.ShardRef)) {
	w := n.workers
	if w > len(n.grants) {
		w = len(n.grants)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(n.grants) {
					return
				}
				g := n.grants[t]
				run(shards[g.Shard])
				if err := api.SubmitSlice(n.id, g.Shard, slice, g.Epoch); err != nil {
					panic("cluster: live node's submission fenced: " + err.Error())
				}
			}
		}()
	}
	wg.Wait()
}

// dispatch is the campaign's slice driver (core.DispatchFunc): the
// whole node-loss protocol runs here, once per slice, in a fixed phase
// order so every control decision is a pure function of (fault plan,
// slice, node index). Every node→coordinator call goes through the
// node's wire handle (c.handles()): in-process that is the fault seam
// over the coordinator's own methods; with Config.Dial set it is the
// same seam over a transport client, so the protocol below runs
// unchanged over a real socket.
//
//  1. Heartbeats: each node's probe is sent through its wire handle; a
//     call the seam refuses, blackholes, or times out is a miss.
//  2. Expiry: leases held by nodes that missed fence (epoch bump).
//  3. Zombies: a partitioned node cannot hear that its leases expired;
//     while its own grant view is unexpired it keeps executing. Those
//     executions are fenced at SubmitSlice (ErrStaleEpoch) and rolled
//     back bit-exactly from a pre-execution snapshot.
//  4. Rebalance: unowned shards spread contiguously over live nodes in
//     node order; rejoining nodes Claim, steady nodes Heartbeat.
//  5. Execution: per-node worker pools run the granted tasks. A node
//     whose crash window opens mid-slice loses its dispatched tasks
//     before submission; the loop fences it and re-dispatches its
//     shards to the survivors. With no live nodes at all the
//     coordinator executes the remainder inline (fallback), so the
//     campaign converges regardless of the kill schedule.
//
// The core barrier then commits every shard's effects in ascending
// shard order — by the time dispatch returns, each shard has exactly
// one surviving execution.
func (c *Coordinator) dispatch(s int, shards []core.ShardRef, run func(core.ShardRef)) error {
	plan := c.p.Cfg.Faults
	from, until := c.p.SliceWindow(s)
	nodes := c.cfg.Nodes
	apis := c.handles()

	// Phase 1: heartbeats, probed through each node's wire handle. The
	// seam turns the plan's faults into call outcomes (refused,
	// blackholed, past-grace timeout), so "missed" means exactly "the
	// coordinator heard nothing in time" — in-process and over a socket
	// alike.
	prevLive := append([]bool(nil), c.live...)
	liveCount := 0
	for n := 0; n < nodes; n++ {
		_, herr := apis[n].Heartbeat(n, s)
		ok := herr == nil
		if ok {
			c.met.heartbeats.Inc(n)
			liveCount++
		} else {
			c.met.missed.Inc(n)
			if plan.NodeDown(n, from) {
				c.views[n] = nil // a crash loses the lease view with the process
			}
		}
		c.live[n] = ok
	}
	c.met.live.Set(int64(liveCount))

	// Phase 2: expire (fence) everything held by a node that missed.
	c.mu.Lock()
	for n := 0; n < nodes; n++ {
		if !c.live[n] {
			c.expireLocked(n)
		}
	}
	c.mu.Unlock()

	// Phase 3: zombie executions by partitioned nodes, fenced and
	// rolled back. Runs strictly before live execution so `run` is
	// never concurrent for the same shard.
	for n := 0; n < nodes; n++ {
		if c.live[n] || plan == nil || !plan.NodePartitioned(n, from) || plan.NodeDown(n, from) {
			continue
		}
		for _, g := range c.views[n] {
			if g.ExpiresSlice <= s {
				continue // grant view expired: the node self-fences
			}
			ref := shards[g.Shard]
			snap := ref.Snapshot()
			c.met.claimed.Inc()
			c.met.inflight.Add(1)
			run(ref)
			// The submission rides the data plane: a partition cuts the
			// control channel, not this path, so the zombie's stale epoch
			// reaches the coordinator and is fenced server-side.
			if err := apis[n].SubmitSlice(n, g.Shard, s, g.Epoch); err == nil {
				panic("cluster: partitioned node's submission passed the fence")
			}
			if err := ref.Restore(snap); err != nil {
				panic("cluster: rollback of fenced execution failed: " + err.Error())
			}
		}
	}

	// Phases 4–5: assign and execute until every shard has a surviving
	// execution.
	dying := make([]bool, nodes)
	for n := 0; n < nodes; n++ {
		dying[n] = plan.NodeDiesWithin(n, from, until)
	}
	committed := make([]bool, len(shards))
	left := len(shards)
	for left > 0 {
		if liveCount == 0 {
			for sh := range shards {
				if !committed[sh] {
					c.met.fallback.Inc()
					run(shards[sh])
					committed[sh] = true
					left--
				}
			}
			break
		}
		c.mu.Lock()
		c.rebalanceLocked(s)
		c.mu.Unlock()
		tasks := make([][]Grant, nodes)
		executing := make([]bool, nodes)
		for n := 0; n < nodes; n++ {
			if !c.live[n] {
				continue
			}
			var grants []Grant
			var err error
			if !c.seen[n] || !prevLive[n] {
				grants, err = apis[n].Claim(n, s)
			} else {
				grants, err = apis[n].Heartbeat(n, s)
			}
			if err != nil {
				panic("cluster: control call failed for configured node: " + err.Error())
			}
			prevLive[n] = true
			c.views[n] = grants
			for _, g := range grants {
				if !committed[g.Shard] {
					tasks[n] = append(tasks[n], g)
				}
			}
		}
		var wg sync.WaitGroup
		for n := 0; n < nodes; n++ {
			if !c.live[n] || len(tasks[n]) == 0 {
				continue
			}
			k := int64(len(tasks[n]))
			c.met.claimed.Add(k)
			c.met.inflight.Add(k)
			if dying[n] {
				// Mid-slice crash: the dispatched tasks are lost before
				// submission; fence the node and put its shards back in
				// the pool for the survivors.
				c.met.lost.Add(k)
				c.met.inflight.Add(-k)
				c.mu.Lock()
				c.expireLocked(n)
				c.mu.Unlock()
				c.live[n] = false
				c.views[n] = nil
				liveCount--
				continue
			}
			executing[n] = true
			nd := &node{id: n, grants: tasks[n], workers: c.cfg.WorkersPerNode}
			wg.Add(1)
			go func() {
				defer wg.Done()
				nd.execute(apis[n], s, shards, run)
			}()
		}
		wg.Wait()
		for n := 0; n < nodes; n++ {
			if executing[n] {
				for _, g := range tasks[n] {
					committed[g.Shard] = true
					left--
				}
			}
		}
	}
	c.met.live.Set(int64(liveCount))
	return nil
}
