package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ntpscan/internal/analysis"
	"ntpscan/internal/core"
)

// RunNode runs one campaign node as its own process: a full
// deterministic campaign replica whose control plane is the given API
// — in practice a transport.Client dialing a clusterd fabric.
//
// The replica executes every shard of every slice locally. That is
// what makes multi-process output byte-identical with no data plane:
// all world and device state is a pure function of (seed, global ID),
// so N replicas of the same configuration produce N identical stores
// regardless of what the lease service decides. Grants decide only
// authority — which shard-slice submissions this node offers the
// fabric as its own — which is the accounting the cluster invariants
// check (across nodes, each task accepted exactly once).
//
// Failure handling mirrors a real deployment:
//
//   - A control-plane failure (coordinator restarting, transient
//     refusal) is tolerated: the node keeps executing under its last
//     grant view while the grants' ExpiresSlice holds — the same
//     self-fencing window a partitioned in-process node gets — and
//     re-Claims on the next successful contact.
//   - ErrStaleEpoch on submission means another node now holds the
//     shard; the submission is simply not authoritative. Not an error.
//   - ErrUnknownNode or a bad-request rejection is a configuration
//     mismatch (wrong node index, wrong shard decomposition) and aborts
//     the campaign through the dispatch error path.
//
// The returned NodeStats summarize the node's view of the protocol.
func RunNode(ctx context.Context, p *core.Pipeline, api API, nodeID int, cfg Config, opts core.CampaignOpts) (*analysis.Dataset, *NodeStats, error) {
	if p.Cfg.FullPacketNTP {
		return nil, nil, fmt.Errorf("cluster: FullPacketNTP campaigns cannot be dispatched across nodes")
	}
	cfg.fillDefaults(p.Cfg.Workers)
	if nodeID < 0 || nodeID >= cfg.Nodes {
		return nil, nil, fmt.Errorf("%w: node %d of %d", ErrUnknownNode, nodeID, cfg.Nodes)
	}
	nd := &nodeDriver{api: api, id: nodeID, workers: cfg.WorkersPerNode}
	opts.Dispatch = nd.dispatch
	ds, err := p.RunCampaign(ctx, opts)
	if err == nil {
		// Graceful decommission; a failure here is a stat, not an error
		// (the fabric will expire our leases by TTL anyway).
		if rerr := api.Release(nodeID); rerr != nil {
			nd.stats.Offline++
		}
	}
	return ds, &nd.stats, err
}

// NodeStats is one node's protocol accounting. Slices counts dispatch
// invocations; Executed counts shard-slice executions (always
// slices × shards — the replica executes everything); Submitted splits
// into Accepted + Fenced + Offline-lost sends.
type NodeStats struct {
	Slices    int64
	Executed  int64
	Granted   int64 // grants received across all renewals
	Submitted int64 // submissions offered to the fabric
	Accepted  int64 // submissions the fabric committed to this node
	Fenced    int64 // submissions rejected as stale (another holder)
	Offline   int64 // control calls lost to transport failure, tolerated
}

// nodeDriver is the replica's slice dispatcher.
type nodeDriver struct {
	api     API
	id      int
	workers int

	claimed bool    // first successful contact made
	offline bool    // last control call failed: next contact re-Claims
	view    []Grant // last grant list received
	stats   NodeStats
}

func (d *nodeDriver) dispatch(s int, shards []core.ShardRef, run func(core.ShardRef)) error {
	d.stats.Slices++

	// Control: Claim on first contact or after an offline stretch,
	// Heartbeat when steady.
	var grants []Grant
	var err error
	if !d.claimed || d.offline {
		grants, err = d.api.Claim(d.id, s)
	} else {
		grants, err = d.api.Heartbeat(d.id, s)
	}
	switch {
	case err == nil:
		d.claimed, d.offline = true, false
		d.view = grants
		d.stats.Granted += int64(len(grants))
	case errors.Is(err, ErrUnknownNode):
		return fmt.Errorf("cluster: node %d rejected by fabric: %w", d.id, err)
	default:
		// Transport failure: tolerate, keep the (self-fencing) view.
		d.offline = true
		d.stats.Offline++
	}

	// Execute every shard — the replica's whole point. Worker pool with
	// dynamic pickup, same shape as the in-process node executor.
	w := d.workers
	if w > len(shards) {
		w = len(shards)
	}
	if w < 1 {
		w = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(shards) {
					return
				}
				run(shards[t])
			}
		}()
	}
	wg.Wait()
	d.stats.Executed += int64(len(shards))

	// Submit the shard-slices we believe we hold. A grant view past its
	// expiry self-fences: the node stops claiming authority it can no
	// longer verify, exactly like a partitioned in-process node.
	for _, g := range d.view {
		if g.ExpiresSlice <= s {
			continue
		}
		d.stats.Submitted++
		serr := d.api.SubmitSlice(d.id, g.Shard, s, g.Epoch)
		switch {
		case serr == nil:
			d.stats.Accepted++
		case errors.Is(serr, ErrStaleEpoch):
			d.stats.Fenced++ // another node holds it now; not ours to commit
		case errors.Is(serr, ErrUnknownNode):
			return fmt.Errorf("cluster: node %d rejected by fabric: %w", d.id, serr)
		default:
			// Transport failure mid-slice: the fabric never saw it, so
			// nothing to roll back — our store is a full replica either
			// way.
			d.offline = true
			d.stats.Offline++
		}
	}
	return nil
}
