package cluster

import (
	"fmt"

	"ntpscan/internal/obs"
)

// metrics is the cluster's observability bundle. It lives on the
// coordinator's own registry, not the pipeline's: per-node families
// (and every lease/fencing count) necessarily differ across node
// counts and kill schedules, while the campaign telemetry stream must
// stay byte-identical across both. Checkpoints carry this registry in
// the checkpoint's cluster section, so resumed coordinators continue
// the counter sequence exactly.
//
// Conservation law, checked by the invariant suite and the chaos
// node-loss tests: every dispatched shard-slice task is accounted for
// exactly once —
//
//	cluster_tasks_claimed_total == cluster_tasks_completed_total
//	                             + cluster_epoch_rejections_total
//	                             + cluster_tasks_lost_total
//
// with cluster_tasks_inflight back at zero at every drain barrier
// (claimed tasks are either committed, fenced as zombie work, or lost
// with a mid-slice crash and re-dispatched under a fresh claim).
type metrics struct {
	claimed   *obs.Counter // shard-slice tasks dispatched under a lease
	completed *obs.Counter // tasks accepted for commit at the barrier
	fenced    *obs.Counter // submissions rejected by the epoch check
	lost      *obs.Counter // tasks dispatched to a node that died mid-slice

	granted  *obs.Counter // lease grants (incl. per-slice renewals)
	expired  *obs.Counter // leases expired on missed heartbeats
	released *obs.Counter // leases handed back voluntarily
	fallback *obs.Counter // slices the coordinator executed itself (no live nodes)

	heartbeats *obs.CounterVec // heartbeats arrived, per node
	missed     *obs.CounterVec // heartbeats missed (crash/partition/late), per node

	wireFaults *obs.CounterVec // control calls intercepted at the wire-fault seam, by kind
	hbDelay    *obs.Histogram  // injected heartbeat latency stamped (never slept), ms

	live     *obs.Gauge // nodes currently considered live
	inflight *obs.Gauge // dispatched tasks not yet completed/fenced/lost
}

func newMetrics(r *obs.Registry, nodes int) *metrics {
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	return &metrics{
		claimed: r.NewCounter("cluster_tasks_claimed_total",
			"shard-slice tasks dispatched to a node under a lease"),
		completed: r.NewCounter("cluster_tasks_completed_total",
			"shard-slice tasks accepted for commit at the drain barrier"),
		fenced: r.NewCounter("cluster_epoch_rejections_total",
			"submissions rejected by the lease epoch check (zombie fencing)"),
		lost: r.NewCounter("cluster_tasks_lost_total",
			"dispatched tasks lost to a mid-slice node crash"),
		granted: r.NewCounter("cluster_leases_granted_total",
			"shard leases granted, including per-slice renewals"),
		expired: r.NewCounter("cluster_leases_expired_total",
			"shard leases expired on missed heartbeats"),
		released: r.NewCounter("cluster_leases_released_total",
			"shard leases handed back voluntarily"),
		fallback: r.NewCounter("cluster_coordinator_fallbacks_total",
			"shard-slice tasks the coordinator executed itself for lack of live nodes"),
		heartbeats: r.NewCounterVec("cluster_heartbeats_total",
			"heartbeats arrived per node", "node", names),
		missed: r.NewCounterVec("cluster_heartbeats_missed_total",
			"heartbeats missed per node (crash, partition, or past grace)", "node", names),
		wireFaults: r.NewCounterVec("cluster_wire_faults_total",
			"node control calls intercepted at the wire-fault seam", "kind",
			[]string{WireRefused.String(), WireBlackholed.String(), WireLate.String()}),
		hbDelay: r.NewHistogram("cluster_heartbeat_delay_ms",
			"injected heartbeat latency stamped at the wire seam (never slept)",
			[]int64{100, 1_000, 10_000, 60_000, 600_000}),
		live: r.NewGauge("cluster_nodes_live",
			"nodes currently holding a live heartbeat"),
		inflight: r.NewGauge("cluster_tasks_inflight",
			"dispatched tasks not yet completed, fenced, or lost"),
	}
}
