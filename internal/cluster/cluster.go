// Package cluster turns a single-process campaign into an in-process
// cluster: a coordinator that owns the campaign checkpoint and a lease
// table over the collection's shard decomposition, and N campaign
// nodes that claim shard leases, execute their shards against the
// shared netsim fabric, heartbeat on the logical clock, and stream
// per-slice results back through the campaign's existing drain
// barrier.
//
// A lease is (shard, epoch, logical-clock expiry). Heartbeats renew
// leases once per slice; a missed heartbeat expires them — the
// coordinator bumps the shards' fencing epochs, so anything a dead
// holder later submits carries a stale epoch and is rejected
// (ErrStaleEpoch), then reassigns the shards to live nodes. Because a
// shard's slice execution touches only shard-local state until the
// barrier commits it (core's dispatch SPI), a fenced execution is
// rolled back bit-exactly and re-run by the new holder: campaign
// output stays byte-identical across node counts and across
// mid-campaign node loss.
//
// Node failure is driven by the fault plan, not wall-clock accident:
// netsim.FaultPlan's node faults (crash, partition, slow heartbeat)
// schedule which nodes miss which heartbeats on the logical timeline,
// so `make chaos` can kill nodes mid-campaign and still demand
// byte-identical output. See DESIGN.md "Cluster & leases".
//
// The node↔coordinator surface is the RPC-shaped API interface
// (Claim/Heartbeat/SubmitSlice/Release): in-process the Coordinator
// implements it directly; a real transport slots in behind the same
// four calls.
package cluster

import (
	"context"
	"errors"
	"time"

	"ntpscan/internal/analysis"
	"ntpscan/internal/core"
)

// Typed protocol and restore errors. Tests (and operators) match on
// these with errors.Is.
var (
	// ErrStaleEpoch rejects a submission whose lease epoch is no longer
	// the shard's current one — the fencing check that keeps zombie
	// nodes from landing results after their lease expired.
	ErrStaleEpoch = errors.New("cluster: submission epoch is stale (lease fenced)")
	// ErrUnknownNode rejects control calls from node indices outside
	// the configured cluster.
	ErrUnknownNode = errors.New("cluster: unknown node index")
	// ErrLeaseTableMismatch rejects resuming from a checkpoint whose
	// lease table does not fit the pipeline (missing cluster section,
	// or an epoch count that disagrees with the shard decomposition).
	ErrLeaseTableMismatch = errors.New("cluster: checkpoint lease table does not match shard decomposition")
	// ErrTruncatedCheckpoint rejects a framed coordinator checkpoint
	// whose body is cut short or fails its integrity check.
	ErrTruncatedCheckpoint = errors.New("cluster: coordinator checkpoint truncated or corrupt")
)

// Grant is one leased shard as a node sees it: the fencing epoch to
// submit under and the slice bound the lease is valid through. A node
// whose heartbeats stop being answered keeps working only while
// slice < ExpiresSlice, then self-fences.
type Grant struct {
	Shard        int
	Epoch        uint64
	ExpiresSlice int
}

// API is the node↔coordinator control surface. All calls are keyed by
// the caller's node index; slice is the logical slice the call is made
// in. In-process dispatch drives these directly — a remote deployment
// would put a wire protocol behind the same shape.
type API interface {
	// Claim registers the node (first contact or rejoin after a crash)
	// and returns its current grants.
	Claim(node, slice int) ([]Grant, error)
	// Heartbeat renews the node's leases and returns them re-granted
	// with a fresh expiry.
	Heartbeat(node, slice int) ([]Grant, error)
	// SubmitSlice offers one executed shard-slice for commit. A stale
	// epoch returns ErrStaleEpoch and the execution must be rolled
	// back; nil means the barrier will commit it.
	SubmitSlice(node, shard, slice int, epoch uint64) error
	// Release hands the node's leases back voluntarily (graceful
	// decommission). Epochs still advance so stragglers fence.
	Release(node int) error
}

// Config tunes the cluster.
type Config struct {
	// Nodes is the campaign-node count (default 1). Output is
	// byte-identical for any value: nodes, like workers, are pure
	// execution placement.
	Nodes int
	// LeaseTTL is how many slices a grant stays valid without renewal
	// (default 2). The coordinator expires leases on the first missed
	// heartbeat regardless; the TTL bounds how long a partitioned node
	// keeps zombie-executing before it self-fences.
	LeaseTTL int
	// HeartbeatGrace is the largest heartbeat delay still counted as
	// arrived (default 30m). Slow-heartbeat faults beyond it read as
	// misses.
	HeartbeatGrace time.Duration
	// WorkersPerNode bounds each node's shard concurrency (default:
	// pipeline Workers / Nodes, floored at 1).
	WorkersPerNode int
	// Dial, when set, supplies each node's control-plane handle in
	// place of the coordinator's own methods — the transport seam. The
	// handle returned for node n must speak cluster.API back to this
	// same coordinator (typically a transport.Client pointed at its
	// served endpoint). Leave nil for direct in-process dispatch. Since
	// serving a coordinator requires constructing it first, transport
	// wiring usually goes NewCoordinator → serve → SetDial.
	Dial func(node int) API
}

func (c *Config) fillDefaults(pipelineWorkers int) {
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	if c.LeaseTTL < 1 {
		c.LeaseTTL = 2
	}
	if c.HeartbeatGrace <= 0 {
		c.HeartbeatGrace = 30 * time.Minute
	}
	if c.WorkersPerNode < 1 {
		c.WorkersPerNode = pipelineWorkers / c.Nodes
		if c.WorkersPerNode < 1 {
			c.WorkersPerNode = 1
		}
	}
}

// Run executes a campaign on a fresh pipeline through a cluster of
// cfg.Nodes nodes. The returned Coordinator exposes the cluster's
// metrics registry (fencing and lease counters) for inspection; the
// dataset and error are RunCampaign's.
func Run(ctx context.Context, p *core.Pipeline, cfg Config, opts core.CampaignOpts) (*analysis.Dataset, *Coordinator, error) {
	coord, err := NewCoordinator(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	ds, err := coord.Run(ctx, opts)
	return ds, coord, err
}

// Run executes the campaign on this coordinator's pipeline with the
// coordinator installed as slice dispatcher. Callers that need to wire
// a transport between construction and execution (serve the API, then
// SetDial the clients) use this instead of the package-level Run.
func (c *Coordinator) Run(ctx context.Context, opts core.CampaignOpts) (*analysis.Dataset, error) {
	return c.p.RunCampaign(ctx, c.campaignOpts(opts))
}

// Resume continues a checkpointed campaign on this coordinator,
// restoring its lease epochs and metrics from the checkpoint's cluster
// section first.
func (c *Coordinator) Resume(ctx context.Context, cp *core.Checkpoint, opts core.CampaignOpts) (*analysis.Dataset, error) {
	if err := c.restore(cp); err != nil {
		return nil, err
	}
	return c.p.ResumeCampaign(ctx, cp, c.campaignOpts(opts))
}

// Resume continues a checkpointed cluster campaign on a fresh
// pipeline. The checkpoint must carry a cluster section whose lease
// table fits the pipeline's shard decomposition (ErrLeaseTableMismatch
// otherwise): fencing epochs continue from where the interrupted
// coordinator left them, so stragglers from before the interruption
// stay fenced after it.
func Resume(ctx context.Context, p *core.Pipeline, cp *core.Checkpoint, cfg Config, opts core.CampaignOpts) (*analysis.Dataset, *Coordinator, error) {
	coord, err := NewCoordinator(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	ds, err := coord.Resume(ctx, cp, opts)
	return ds, coord, err
}
