package core

import (
	"context"
	"net/netip"
	"sync"

	"ntpscan/internal/analysis"
	"ntpscan/internal/hitlist"
	"ntpscan/internal/zgrab"
)

// ScanSource is the address our scan host probes from. Its reverse DNS
// and web page identify the research scan in the real deployment; here
// it identifies us to the telescope.
var ScanSource = netip.MustParseAddr("2a10:ffff:5ca::1")

// resultSink accumulates scan results from concurrent workers.
type resultSink struct {
	mu  sync.Mutex
	all []*zgrab.Result
}

func (s *resultSink) add(r *zgrab.Result) {
	s.mu.Lock()
	s.all = append(s.all, r)
	s.mu.Unlock()
}

// newScanner assembles a scanner wired to the pipeline's fabric.
func (p *Pipeline) newScanner(sink *resultSink) *zgrab.Scanner {
	return zgrab.NewScanner(zgrab.Config{
		Fabric:     p.W.Fabric(),
		Clock:      p.W.Clock(),
		Source:     ScanSource,
		Timeout:    p.Cfg.Timeout,
		UDPTimeout: p.Cfg.UDPTimeout,
		Workers:    p.Cfg.Workers,
		OnResult:   sink.add,
	})
}

// RunNTPCampaign performs the §4.1 core experiment: collect addresses
// for the full window while scanning every newly seen address in real
// time. It returns the scan dataset; collection statistics live on the
// pipeline afterwards.
func (p *Pipeline) RunNTPCampaign(ctx context.Context) *analysis.Dataset {
	sink := &resultSink{}
	scanner := p.newScanner(sink)
	scanner.Start(ctx)
	p.Collect(func(addr netip.Addr) {
		scanner.Submit(addr)
	})
	scanner.Close()
	return analysis.NewDataset("ntp", sink.all)
}

// CollectOnly runs the collection without scanning (Table 1 runs).
func (p *Pipeline) CollectOnly() {
	p.Collect(nil)
}

// BuildHitlist constructs the TUM-style list against the current world
// state (call after collection so dyndns seeds carry current
// addresses). Static deployments are registered first.
func (p *Pipeline) BuildHitlist(cfg hitlist.Config) *hitlist.Hitlist {
	if cfg.Seed == 0 {
		cfg.Seed = p.Cfg.Seed ^ 0x411
	}
	p.W.RegisterStatic()
	return hitlist.Build(p.W, cfg)
}

// ScanHitlist batch-scans the full hitlist (the paper scans the
// unfiltered variant, §4.1) and returns the dataset.
func (p *Pipeline) ScanHitlist(ctx context.Context, h *hitlist.Hitlist) *analysis.Dataset {
	sink := &resultSink{}
	scanner := p.newScanner(sink)
	scanner.Start(ctx)
	for _, addr := range h.Full {
		scanner.Submit(addr)
	}
	scanner.Close()
	return analysis.NewDataset("hitlist", sink.all)
}

// PublicHitlist applies the responsiveness filter plus aliased-prefix
// dealiasing, producing the published variant for Table 1's "public"
// column (TUM's public list excludes aliased blocks).
func (p *Pipeline) PublicHitlist(ctx context.Context, h *hitlist.Hitlist) []netip.Addr {
	responsive := h.Public(func(a netip.Addr) bool {
		return hitlist.Probe(ctx, p.W.Fabric(), ScanSource, a, p.Cfg.Timeout)
	}, p.Cfg.Workers)
	return h.Dealias(responsive, 8, 2)
}

// SummarizeHitlist builds address summaries for hitlist variants.
func (p *Pipeline) SummarizeHitlist(addrs []netip.Addr) *analysis.AddrSummary {
	return analysis.SummarizeAddrs(p.Ctx, addrs)
}
