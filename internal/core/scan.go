package core

import (
	"context"
	"net/netip"
	"sort"

	"ntpscan/internal/analysis"
	"ntpscan/internal/hitlist"
	"ntpscan/internal/zgrab"
)

// ScanSource is the address our scan host probes from. Its reverse DNS
// and web page identify the research scan in the real deployment; here
// it identifies us to the telescope.
var ScanSource = netip.MustParseAddr("2a10:ffff:5ca::1")

// resultSink accumulates scan results lock-free: every scanner worker
// appends to its own bucket (the scanner guarantees one worker index
// per goroutine), and merged restores the deterministic submission
// order by sorting on the sequence numbers the scanner stamped.
type resultSink struct {
	buckets [][]*zgrab.Result
}

func newResultSink(workers int) *resultSink {
	if workers < 1 {
		workers = 1
	}
	return &resultSink{buckets: make([][]*zgrab.Result, workers)}
}

// add is the scanner's OnResultWorker hook. No locking: bucket w is
// only ever touched by worker w.
func (s *resultSink) add(worker int, r *zgrab.Result) {
	s.buckets[worker] = append(s.buckets[worker], r)
}

// merged concatenates the buckets and sorts by submission sequence.
// Call after the scanner is closed.
func (s *resultSink) merged() []*zgrab.Result {
	n := 0
	for _, b := range s.buckets {
		n += len(b)
	}
	all := make([]*zgrab.Result, 0, n)
	for _, b := range s.buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return all
}

// newScanner assembles a scanner wired to the pipeline's fabric,
// carrying the pipeline's retry policy and breaker configuration.
func (p *Pipeline) newScanner(add func(worker int, r *zgrab.Result)) *zgrab.Scanner {
	return zgrab.NewScanner(zgrab.Config{
		Fabric:         p.W.Fabric(),
		Clock:          p.W.Clock(),
		Source:         ScanSource,
		Obs:            p.Obs,
		Timeout:        p.Cfg.Timeout,
		UDPTimeout:     p.Cfg.UDPTimeout,
		Workers:        p.Cfg.Workers,
		Retry:          p.Cfg.Retry,
		Breaker:        p.Cfg.Breaker,
		OnResultWorker: add,
	})
}

// RunNTPCampaign performs the §4.1 core experiment: collect addresses
// for the full window while scanning every newly seen address in real
// time. Each collection slice's captures are batch-submitted in shard
// order and drained before the logical clock moves, so the dataset is
// bit-identical for a given (seed, scale) at any worker count. It
// returns the scan dataset; collection statistics live on the pipeline
// afterwards. (This is RunCampaign with no output writer and no
// checkpoints.)
func (p *Pipeline) RunNTPCampaign(ctx context.Context) *analysis.Dataset {
	ds, _ := p.RunCampaign(ctx, CampaignOpts{})
	return ds
}

// CollectOnly runs the collection without scanning (Table 1 runs).
func (p *Pipeline) CollectOnly() {
	p.Collect(nil)
}

// BuildHitlist constructs the TUM-style list against the current world
// state (call after collection so dyndns seeds carry current
// addresses). Static deployments are registered first.
func (p *Pipeline) BuildHitlist(cfg hitlist.Config) *hitlist.Hitlist {
	if cfg.Seed == 0 {
		cfg.Seed = p.Cfg.Seed ^ 0x411
	}
	p.W.RegisterStatic()
	return hitlist.Build(p.W, cfg)
}

// ScanHitlist batch-scans the full hitlist (the paper scans the
// unfiltered variant, §4.1) and returns the dataset.
func (p *Pipeline) ScanHitlist(ctx context.Context, h *hitlist.Hitlist) *analysis.Dataset {
	sink := newResultSink(p.Cfg.Workers)
	scanner := p.newScanner(sink.add)
	scanner.Start(ctx)
	scanner.SubmitBatch(h.Full)
	scanner.Close()
	return analysis.NewDataset("hitlist", sink.merged())
}

// PublicHitlist applies the responsiveness filter plus aliased-prefix
// dealiasing, producing the published variant for Table 1's "public"
// column (TUM's public list excludes aliased blocks).
func (p *Pipeline) PublicHitlist(ctx context.Context, h *hitlist.Hitlist) []netip.Addr {
	responsive := h.Public(func(a netip.Addr) bool {
		return hitlist.Probe(ctx, p.W.Fabric(), ScanSource, a, p.Cfg.Timeout)
	}, p.Cfg.Workers)
	return h.Dealias(responsive, 8, 2)
}

// SummarizeHitlist builds address summaries for hitlist variants.
func (p *Pipeline) SummarizeHitlist(addrs []netip.Addr) *analysis.AddrSummary {
	return analysis.SummarizeAddrs(p.Ctx, addrs)
}
