// Campaign dispatch SPI: the narrow surface through which an external
// executor — internal/cluster's leased-node fabric — drives the
// collection's shard tasks in place of the built-in worker pool.
//
// The contract mirrors the determinism argument of DESIGN.md
// "Concurrency & determinism": a shard's slice execution reads only
// shard-local state (rng streams, arena, scratch buffers) plus
// immutable or slice-frozen globals, and writes only shard-local
// effect buffers. The drain barrier commits those buffers in ascending
// shard order. A dispatcher may therefore run shards on any schedule —
// and may discard and re-run an execution, provided it first restores
// the shard's Snapshot — without changing a byte of output.
package core

import (
	"time"

	"ntpscan/internal/world"
)

// DispatchFunc executes one slice's shard tasks. The campaign calls it
// once per slice with a handle per shard and the task closure; by the
// time it returns, run(ref) must have been *committed* exactly once
// per shard — executions beyond that must each have been rolled back
// via Restore with a Snapshot taken before the attempt ran. run is
// safe to call concurrently for distinct refs, never for the same ref.
//
// A non-nil error aborts the campaign: the remaining slices are
// skipped (no further dispatch calls are made) and RunCampaign returns
// the error. Dispatchers use this for fatal control-plane failures — a
// cluster transport that cannot reach its coordinator and cannot
// safely fall back, or a coordinator whose shard decomposition
// disagrees with the pipeline's — where continuing would execute an
// undefined placement.
type DispatchFunc func(slice int, shards []ShardRef, run func(ShardRef)) error

// ShardRef is an opaque handle to one collection shard, valid for the
// campaign that issued it.
type ShardRef struct {
	p  *Pipeline
	sh *collectShard
}

// Index is the shard's position in the canonical decomposition.
func (r ShardRef) Index() int { return r.sh.idx }

// ShardSnap is a shard's restorable execution state: rng stream
// positions and the device arena's resident set. Taken at a slice
// boundary (or before a speculative execution), it is everything a
// re-run needs — effect buffers are empty at those points, and arena
// slot contents re-derive from the world seed.
type ShardSnap struct {
	Vol   [4]uint64
	Resp  [4]uint64
	Ports [4]uint64
	Arena *world.ArenaState
}

// Snapshot captures the shard's restorable state. Call only while the
// shard is not executing.
func (r ShardRef) Snapshot() ShardSnap {
	return ShardSnap{
		Vol:   r.sh.vol.State(),
		Resp:  r.sh.resp.State(),
		Ports: r.sh.ports.State(),
		Arena: r.sh.arena.Snapshot(),
	}
}

// Restore rewinds the shard to a snapshot and discards any uncommitted
// slice effects — the fencing path: a rejected (zombie) execution's
// buffered captures, drop counts and counter deltas vanish, and the
// shard is bit-exactly where it was when the snapshot was taken, ready
// for the replacement node to re-run it.
func (r ShardRef) Restore(s ShardSnap) error {
	r.sh.discardSliceEffects()
	r.sh.vol.SetState(s.Vol)
	r.sh.resp.SetState(s.Resp)
	r.sh.ports.SetState(s.Ports)
	if s.Arena != nil {
		return r.sh.arena.Restore(s.Arena)
	}
	return nil
}

// SliceWindow is slice s's span on the logical timeline: [from, until).
// Dispatchers use it to evaluate fault-plan windows (a node crash
// strictly inside the window is a mid-slice death; one active at `from`
// already missed its heartbeat).
func (p *Pipeline) SliceWindow(s int) (from, until time.Time) {
	return p.sliceTime(s), p.sliceTime(s + 1)
}

// shardRefs hands out (and caches) the dispatcher's shard handles.
func (p *Pipeline) shardRefs(shards []*collectShard) []ShardRef {
	if len(p.refs) != len(shards) {
		p.refs = make([]ShardRef, len(shards))
		for i, sh := range shards {
			p.refs[i] = ShardRef{p: p, sh: sh}
		}
	}
	return p.refs
}
