package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// RunCampaign with zero options must be RunNTPCampaign exactly.
func TestRunCampaignMatchesNTPCampaign(t *testing.T) {
	cfg := testConfig(11)
	cfg.CaptureBudget = 2000

	p1 := NewPipeline(cfg)
	d1 := p1.RunNTPCampaign(context.Background())

	p2 := NewPipeline(cfg)
	d2, err := p2.RunCampaign(context.Background(), CampaignOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := datasetDigest(t, d2), datasetDigest(t, d1); got != want {
		t.Fatalf("RunCampaign digest %x, want RunNTPCampaign's %x", got, want)
	}
}

// The JSONL writer must carry the same results as the returned dataset,
// in the same order.
func TestCampaignOutputIsOrderedJSONL(t *testing.T) {
	cfg := testConfig(12)
	cfg.CaptureBudget = 1500
	var out bytes.Buffer
	p := NewPipeline(cfg)
	ds, err := p.RunCampaign(context.Background(), CampaignOpts{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for _, r := range ds.Results {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Fatalf("JSONL output (%d bytes) diverges from dataset encoding (%d bytes)",
			out.Len(), want.Len())
	}
}

// Checkpoints survive a JSON round trip unchanged.
func TestCheckpointJSONRoundTrip(t *testing.T) {
	cfg := testConfig(13)
	cfg.CaptureBudget = 1000
	var cps []*Checkpoint
	p := NewPipeline(cfg)
	if _, err := p.RunCampaign(context.Background(), CampaignOpts{
		CheckpointEvery: 32,
		OnCheckpoint:    func(cp *Checkpoint) { cps = append(cps, cp) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints taken")
	}
	for i, cp := range cps {
		blob, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		var back Checkpoint
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		blob2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Errorf("checkpoint %d changed across JSON round trip", i)
		}
	}
}

// Clean kill-and-resume: a fresh pipeline resumed from any checkpoint
// reproduces the uninterrupted run's remaining output byte-for-byte.
func TestResumeReproducesCleanCampaign(t *testing.T) {
	cfg := testConfig(14)
	cfg.CaptureBudget = 2000

	var full bytes.Buffer
	var cps []*Checkpoint
	p1 := NewPipeline(cfg)
	_, err := p1.RunCampaign(context.Background(), CampaignOpts{
		Out:             &full,
		CheckpointEvery: 24,
		OnCheckpoint:    func(cp *Checkpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 3 {
		t.Fatalf("expected 3 checkpoints, got %d", len(cps))
	}

	for i, cp := range cps {
		var rest bytes.Buffer
		p2 := NewPipeline(cfg)
		_, err := p2.ResumeCampaign(context.Background(), cp, CampaignOpts{Out: &rest})
		if err != nil {
			t.Fatal(err)
		}
		want := full.Bytes()[cp.OutOffset:]
		if !bytes.Equal(rest.Bytes(), want) {
			t.Errorf("checkpoint %d (slice %d): resumed output %d bytes, want %d",
				i, cp.NextSlice, rest.Len(), len(want))
			continue
		}
		if p2.Captures != p1.Captures {
			t.Errorf("checkpoint %d: resumed Captures = %d, want %d", i, p2.Captures, p1.Captures)
		}
		if got, want := fmt.Sprintf("%+v", p2.Summary.Stats()), fmt.Sprintf("%+v", p1.Summary.Stats()); got != want {
			t.Errorf("checkpoint %d: resumed Summary diverges", i)
		}
	}
}

// A checkpoint refuses to resume onto a mismatched pipeline.
func TestResumeValidation(t *testing.T) {
	cfg := testConfig(15)
	cfg.CaptureBudget = 1000
	var cps []*Checkpoint
	p := NewPipeline(cfg)
	if _, err := p.RunCampaign(context.Background(), CampaignOpts{
		CheckpointEvery: 48,
		OnCheckpoint:    func(cp *Checkpoint) { cps = append(cps, cp) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints")
	}
	cp := cps[0]

	bad := testConfig(16) // wrong seed
	bad.CaptureBudget = 1000
	if _, err := NewPipeline(bad).ResumeCampaign(context.Background(), cp, CampaignOpts{}); err == nil {
		t.Error("resume accepted a checkpoint from a different seed")
	}
	if _, err := p.ResumeCampaign(context.Background(), cp, CampaignOpts{}); err == nil {
		t.Error("resume accepted a non-fresh pipeline")
	}
}
