// Package core orchestrates the paper's end-to-end measurement
// pipeline — the primary contribution being reproduced:
//
//  1. deploy capture-enabled NTP servers into underserved pool zones
//     and tune their netspeed until the capture rate matches the scan
//     budget (§3.1);
//  2. collect client addresses for the four-week window, feeding every
//     new address to the zgrab scanner in real time (§4.1);
//  3. build and batch-scan the TUM-style hitlist in the final week for
//     comparison;
//  4. run an R&L-era collection for the Table 1 replication column;
//  5. hand everything to the analysis package.
//
// The collect→scan hot path is sharded: the capture stream is split
// into Config.CollectShards deterministic sub-streams executed by up to
// Config.Workers goroutines, and merged in canonical shard order. The
// decomposition is part of the experiment definition (like Seed);
// Workers only sets concurrency and never affects output. See DESIGN.md
// "Concurrency & determinism".
package core

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"ntpscan/internal/analysis"
	"ntpscan/internal/ipv6x"
	"ntpscan/internal/netsim"
	"ntpscan/internal/netsim/link"
	"ntpscan/internal/ntp"
	"ntpscan/internal/ntppool"
	"ntpscan/internal/obs"
	"ntpscan/internal/rng"
	"ntpscan/internal/world"
	"ntpscan/internal/zgrab"
)

// Config tunes the pipeline.
type Config struct {
	// Seed drives everything; same seed, same experiment.
	Seed uint64
	// World generation parameters.
	World world.Config
	// CaptureBudget is the number of volume-channel capture events
	// (address-only eyeball syncs reaching our servers). Zero derives
	// ~3 events per expected distinct address.
	CaptureBudget int
	// TargetShare is the per-zone traffic share the netspeed
	// controller aims for (the paper tuned netspeed until the request
	// rate matched the scanning budget).
	TargetShare float64
	// ResponsiveDupRate is the expected number of *extra* captures of
	// a responsive device in later address epochs (dynamic addresses
	// re-captured; drives the addrs-per-cert ratio of Table 2).
	ResponsiveDupRate float64
	// Workers for the scan pool and the collection fan-out. Workers is
	// pure concurrency: any value produces bit-identical output for a
	// given (Seed, scales, CollectShards).
	Workers int
	// CollectShards is the number of deterministic sub-streams the
	// collection is decomposed into (default 32). It is part of the
	// experiment definition like Seed — changing it changes the sampled
	// stream — and bounds the useful collection parallelism.
	CollectShards int
	// ArenaBytes is each collection shard's device-arena byte budget
	// (default 256 KiB). Sampled client devices are materialized on
	// demand into the arena and evicted clock-wise when it fills, so the
	// pipeline's resident device state is bounded regardless of how
	// large the address-only population grows. Arenas run in both eager
	// and lazy worlds — derivation is identical, so output and telemetry
	// never depend on World.Lazy. Like CollectShards, the budget is part
	// of the experiment definition: checkpoints snapshot arena contents
	// and only resume onto the same budget.
	ArenaBytes int
	// Timeout per scan connection; UDPTimeout for connectionless
	// probes.
	Timeout    time.Duration
	UDPTimeout time.Duration
	// FullPacketNTP routes every capture through a complete UDP
	// exchange on the fabric instead of the codec fast path. Slower,
	// and collection shards run one at a time (the fabric-side capture
	// hook cannot tag a shard); used by tests and small demos to prove
	// equivalence.
	FullPacketNTP bool
	// Faults, when set, is installed on the fabric at construction: the
	// campaign runs under the plan's scheduled outages, loss bursts,
	// slow links and garbled banners. The (Seed, Faults) pair defines
	// the experiment exactly as Seed alone does a clean one.
	Faults *netsim.FaultPlan
	// Retry gives each scan probe retries with exponential backoff
	// (nil: single attempt, the pre-robustness behaviour).
	Retry *zgrab.RetryPolicy
	// Breaker enables the scanner's per-prefix circuit breaker.
	Breaker *zgrab.BreakerConfig
}

func (c *Config) fillDefaults() {
	c.World.Seed = c.Seed
	if c.TargetShare == 0 {
		c.TargetShare = 0.08
	}
	if c.ResponsiveDupRate == 0 {
		c.ResponsiveDupRate = 0.8
	}
	if c.Workers < 1 {
		c.Workers = 64
	}
	if c.CollectShards < 1 {
		c.CollectShards = 32
	}
	if c.ArenaBytes < 1 {
		c.ArenaBytes = 256 << 10
	}
	if c.Timeout == 0 {
		c.Timeout = 50 * time.Millisecond
	}
	if c.UDPTimeout == 0 {
		c.UDPTimeout = 2 * time.Millisecond
	}
	if c.World.DialTimeout == 0 {
		c.World.DialTimeout = 100 * time.Microsecond
	}
}

// VantageServer is one of our capture deployments.
type VantageServer struct {
	ID      string
	Country string
	Addr    netip.Addr
	NTP     *ntp.Server

	// idx is the server's position in Pipeline.Servers; the dense index
	// behind the per-vantage counter slices and the shards' server
	// tables (hot paths index instead of hashing country strings).
	idx int
}

// countryKey is a 2-letter ISO country code packed into a comparable
// array — the allocation-free key of serverByCountry.
type countryKey [2]byte

func ckey(code string) (countryKey, bool) {
	if len(code) != 2 {
		return countryKey{}, false
	}
	return countryKey{code[0], code[1]}, true
}

// CaptureRecord is one captured client address with its capturing
// vantage, the raw material of Tables 1/7 and Appendix B.
type CaptureRecord struct {
	Addr    netip.Addr
	Country string // vantage country
	Time    time.Time
}

// Pipeline is a deployed experiment.
type Pipeline struct {
	Cfg  Config
	W    *world.World
	Pool *ntppool.Pool
	Ctx  *analysis.Context
	// Monitor is the pool's health monitor. The collection driver
	// probes every vantage once per slice; a blacked-out vantage drops
	// below MinScore, its capture stream pauses, and the zone's traffic
	// re-maps to the remaining weights until it recovers.
	Monitor *ntppool.Monitor
	// Obs is the pipeline's metrics registry: every subsystem the
	// pipeline assembles (collection, scanner, pool monitor, NTP
	// servers, fabric faults) registers here, campaign checkpoints
	// snapshot it, and the campaign's telemetry stream serialises it
	// once per slice.
	Obs *obs.Registry

	Servers []*VantageServer

	// Collection outputs, published at the end of each Collect.
	Summary    *analysis.AddrSummary
	EUI        *analysis.EUI64Stats
	PerCountry map[string]int // distinct addresses per vantage country
	Captures   int            // total capture events

	rng *rng.Stream
	// onAddr is invoked for every captured address (duplicates
	// included) — the real-time scan feed hook.
	onAddr func(netip.Addr)
	// respCache memoises the responsive NTP population.
	respCache []*world.Device

	// serverByCountry indexes Servers for the per-device lookup on the
	// responsive channel, keyed by the packed country code (no string
	// hashing on the per-device path).
	serverByCountry map[countryKey]*VantageServer

	// Concurrent accumulators behind the published outputs: hash-
	// sharded dedup summaries and atomic counters, merged into
	// Summary/EUI/PerCountry/Captures in fixed order when Collect
	// finishes. perCountryN is indexed by VantageServer.idx and sized at
	// deploy time (the vantage set is fixed), so collection workers only
	// ever load-and-add — no map lookups, no pointer boxing.
	sumShards   *analysis.ShardedAddrSummary
	euiShards   *analysis.ShardedEUI64Stats
	captures    atomic.Int64
	perCountryN []atomic.Int64

	// activeShard routes fabric-side capture hooks to the collection
	// shard being driven. Only the FullPacketNTP path uses it — the
	// registered vantage server's hook cannot tag a shard, so shards
	// run one at a time in that mode.
	activeShard *collectShard

	// respCaptured tracks which responsive devices have had their
	// guaranteed first capture. Indexed like responsive(); shard i owns
	// indices ≡ i (mod nshards), so concurrent writes never touch the
	// same element. A device whose slice fell inside a vantage outage
	// stays unmarked and is caught up in the next healthy slice — the
	// self-healing that lets faulted campaigns converge to clean ones.
	respCaptured []bool

	// recordCaps turns on the capture log feeding checkpoints: each
	// first-seen (addr, country) pair, in capture order. Replaying the
	// log into fresh accumulators reproduces Summary/EUI/PerCountry
	// exactly on resume.
	recordCaps bool
	capLog     []CapRecord

	// feedBuf is commitShard's reusable scratch: one shard's slice feed
	// (every captured address, duplicates included) built from its event
	// buffer and handed to the scan batch callback at the barrier.
	feedBuf []netip.Addr

	// dispatch, when set, replaces the built-in worker pool as the
	// executor of each slice's shard tasks (see CampaignOpts.Dispatch).
	// refs caches the ShardRef handles handed to it. dispatchErr holds
	// the first error a dispatcher returned: once set, the remaining
	// slices are skipped and RunCampaign fails with it.
	dispatch    DispatchFunc
	dispatchErr error
	refs        []ShardRef

	// restoreCp, when set, seeds makeCollectShards with checkpointed
	// stream positions instead of fresh derivations.
	restoreCp *Checkpoint

	// met holds the pipeline's metric handles (see obsmetrics.go).
	met *pipelineMetrics
}

// NewPipeline builds the world and deploys the vantage servers.
func NewPipeline(cfg Config) *Pipeline {
	cfg.fillDefaults()
	w := world.New(cfg.World)
	p := &Pipeline{
		Cfg:  cfg,
		W:    w,
		Pool: ntppool.New(),
		Ctx: &analysis.Context{
			AS:  w.ASReg,
			Geo: w.Geo,
			OUI: w.OUIReg,
		},
		serverByCountry: make(map[countryKey]*VantageServer),
		rng:             rng.New(cfg.Seed ^ 0xc0fe),
	}
	p.Summary = analysis.NewAddrSummary(p.Ctx)
	p.EUI = analysis.NewEUI64Stats(p.Ctx)
	p.sumShards = analysis.NewShardedAddrSummary(p.Ctx)
	p.euiShards = analysis.NewShardedEUI64Stats(p.Ctx)
	p.Obs = obs.NewRegistry()
	p.met = newPipelineMetrics(p.Obs)
	p.Monitor = ntppool.NewMonitor(p.Pool)
	p.Monitor.SetMetrics(p.met.pool)
	p.deployServers()
	w.Fabric().SetFaultMetrics(netsim.NewFaultMetrics(p.Obs))
	w.Fabric().SetLinkMetrics(link.NewMetrics(p.Obs))
	if cfg.Faults != nil {
		w.Fabric().InstallFaults(cfg.Faults)
	}
	return p
}

// InstallFaults installs (or, with nil, removes) a fault plan on the
// running pipeline's fabric. Install before the campaign starts; the
// same plan must be installed on a fresh pipeline before resuming one
// of its checkpoints.
func (p *Pipeline) InstallFaults(plan *netsim.FaultPlan) {
	p.Cfg.Faults = plan
	p.W.Fabric().InstallFaults(plan)
}

// deployServers places one capture server per vantage country (§3.1
// selected countries with few pool servers relative to routed space)
// and runs the netspeed controller.
func (p *Pipeline) deployServers() {
	for _, c := range p.W.Countries {
		spec := c.Spec
		p.Pool.SetBackground(spec.Code, spec.PoolBG)
		if !spec.Vantage {
			continue
		}
		country := spec.Code
		addr := ipv6x.FromParts(0x2a10_0000_0000_0000|uint64(c.Index)<<32, 0x123)
		vs := &VantageServer{ID: "ours-" + country, Country: country, Addr: addr, idx: len(p.Servers)}
		srv := ntp.NewServer(ntp.ServerConfig{
			Now:     p.W.Clock().Now,
			Metrics: p.met.ntp,
			Capture: func(client netip.AddrPort, at time.Time) {
				p.recordCapture(client.Addr(), vs.idx, at)
			},
		})
		vs.NTP = srv
		p.W.Fabric().Register(addr, netsim.NewHost("vantage-"+country).HandleUDP(ntp.Port, srv.Handle))
		p.Servers = append(p.Servers, vs)
		if k, ok := ckey(country); ok {
			p.serverByCountry[k] = vs
		}
		p.Pool.AddServer(&ntppool.Server{
			ID: vs.ID, Country: country, Addr: addr, NetSpeed: 1,
		})
		p.tuneNetspeed(vs)
	}
	p.Pool.SetGlobalBackground(5000)
	p.perCountryN = make([]atomic.Int64, len(p.Servers))
	p.PerCountry = make(map[string]int, len(p.Servers))
	codes := make([]string, len(p.Servers))
	for i, vs := range p.Servers {
		codes[i] = vs.Country
	}
	p.met.registerVantage(p.Obs, codes)
}

// tuneNetspeed raises the server's weight step by step until its zone
// share reaches the target — the monitor-and-increase loop of §3.1.
func (p *Pipeline) tuneNetspeed(vs *VantageServer) {
	speed := 1.0
	for i := 0; i < 64; i++ {
		if p.Pool.ShareEstimate(vs.Country) >= p.Cfg.TargetShare {
			return
		}
		speed *= 1.5
		p.Pool.SetNetSpeed(vs.ID, speed)
	}
}

// ServerByCountry returns the vantage deployment for a country.
func (p *Pipeline) ServerByCountry(code string) (*VantageServer, bool) {
	k, ok := ckey(code)
	if !ok {
		return nil, false
	}
	vs, ok := p.serverByCountry[k]
	return vs, ok
}

// recordCapture is the fabric-side capture hook (FullPacketNTP and any
// stray NTP traffic reaching a vantage address): it attributes the
// event to the shard currently being driven, if any.
func (p *Pipeline) recordCapture(addr netip.Addr, vantage int, at time.Time) {
	p.recordCaptureShard(p.activeShard, addr, vantage, at)
}

// recordCaptureShard is the capture hook. A shard-attributed capture
// only appends to the shard's private event buffer — no shared state
// moves until the drain barrier replays the buffer in ascending shard
// order (commitShard). Deferring the dedup Adds to the barrier is what
// makes first-seen attribution (and with it the checkpoint capture log
// and the store's capture rows) independent of worker scheduling: two
// shards first-capturing the same address in one slice now always
// resolve in shard order, not in whichever-goroutine-got-there-first
// order. Unattributed captures (stray fabric traffic outside a slice)
// keep the immediate path — there is no barrier to defer to.
func (p *Pipeline) recordCaptureShard(sh *collectShard, addr netip.Addr, vantage int, at time.Time) {
	if sh == nil {
		p.captures.Add(1)
		p.met.captures.Inc()
		if p.onAddr != nil {
			p.onAddr(addr)
		}
		return
	}
	sh.events = append(sh.events, capEvent{addr: addr, vantage: int32(vantage), volume: sh.volumeStats})
}

// captureVia routes one client sync through the vantage server: either
// a full UDP exchange on the fabric or the shard's codec fast path.
// Both paths run the same ntp.Server logic and fire the same capture
// hook. The fast path encodes the request and receives the response in
// the shard's scratch buffers — zero heap allocations per capture in
// steady state (asserted by TestCaptureFastPathZeroAlloc).
func (p *Pipeline) captureVia(sh *collectShard, vs *VantageServer, client netip.Addr) error {
	now := p.W.Clock().Now()
	port := 40000 + uint16(sh.ports.Intn(20000))
	if !p.W.Fabric().HostUp(vs.Addr, now) {
		// The vantage is blacked out by the fault plan: the sync never
		// completes, on either capture path. (The port draw above still
		// happened, keeping the shard's stream schedule independent of
		// the plan's timing.)
		sh.dropped[vs.idx]++
		return fmt.Errorf("core: vantage %s is down", vs.ID)
	}
	if p.Cfg.FullPacketNTP {
		// The fabric has no latency: a response either arrives
		// immediately or was lost. A short timeout keeps lossy mass
		// collections from serialising on dead queries.
		_, err := ntp.QuerySim(p.W.Fabric(),
			netip.AddrPortFrom(client, port),
			netip.AddrPortFrom(vs.Addr, ntp.Port),
			p.W.Clock().Now, 10*time.Millisecond)
		if err != nil {
			sh.dropped[vs.idx]++
		}
		return err
	}
	// The codec fast path bypasses the fabric, so the link-layer round
	// trip is modelled here: request through the vantage's link,
	// response through the client's. A blocked exchange is a drop — the
	// same accounting as a blacked-out vantage. (FullPacketNTP campaigns
	// take the SendUDP path above, where the fabric itself traverses.)
	if !p.W.Fabric().LinkAdmit(client, vs.Addr, port) {
		sh.dropped[vs.idx]++
		return fmt.Errorf("core: vantage %s link blocked", vs.ID)
	}
	req := ntp.ClientPacket(now)
	sh.reqBuf = req.AppendEncode(sh.reqBuf[:0])
	resp, ok := sh.ntp[vs.idx].RespondAppend(netip.AddrPortFrom(client, port), sh.reqBuf, sh.respBuf[:0])
	sh.respBuf = resp
	if !ok {
		sh.dropped[vs.idx]++
		return fmt.Errorf("core: vantage %s dropped request", vs.ID)
	}
	return nil
}

// volumeBatch emits n volume-channel events for one vantage through the
// codec batch path. Per-event semantics — stream draw order (client
// sample, then source port), the down-vantage drop accounting, and the
// capture hook sequence — are exactly the per-event captureVia loop's;
// what the batch buys is that every client in a frozen slice sends the
// same mode-3 request, so the slab is encoded by stride copy, decoded
// once, and answered with one RespondBatch call instead of n codec
// round-trips. FullPacketNTP campaigns never reach here (runShardSlice
// keeps them on the per-event fabric path).
func (p *Pipeline) volumeBatch(sh *collectShard, vs *VantageServer, n int) {
	now := p.W.Clock().Now()
	fabric := p.W.Fabric()
	clients := sh.clients[:0]
	for i := 0; i < n; i++ {
		gid := p.W.SampleClientID(vs.Country, sh.vol)
		if gid < 0 {
			continue
		}
		dev := sh.arena.Device(gid)
		addr := p.W.CurrentAddr(dev, now)
		// The port draw precedes the health check, exactly like
		// captureVia: the shard's stream schedule must not depend on the
		// fault plan's timing.
		port := 40000 + uint16(sh.ports.Intn(20000))
		if !fabric.HostUp(vs.Addr, now) {
			sh.dropped[vs.idx]++
			continue
		}
		// Same link-layer round trip as captureVia's codec path; the
		// admit hash excludes payload, so batch and per-event paths
		// agree on which exchanges survive.
		if !fabric.LinkAdmit(addr, vs.Addr, port) {
			sh.dropped[vs.idx]++
			continue
		}
		clients = append(clients, netip.AddrPortFrom(addr, port))
	}
	sh.clients = clients
	if len(clients) == 0 {
		return
	}
	req := ntp.ClientPacket(now)
	pkts := sh.pkts[:0]
	for range clients {
		pkts = append(pkts, req)
	}
	sh.pkts = pkts
	sh.reqBuf = ntp.EncodeBatch(pkts, sh.reqBuf[:0])
	if cap(sh.oks) < len(clients) {
		sh.oks = make([]bool, len(clients))
	}
	oks := sh.oks[:len(clients)]
	sh.respBuf, _ = sh.ntp[vs.idx].RespondBatch(clients, sh.reqBuf, sh.respBuf[:0], oks)
	for i := range oks {
		if !oks[i] {
			sh.dropped[vs.idx]++
		}
	}
}
