package core

import (
	"ntpscan/internal/ntp"
	"ntpscan/internal/ntppool"
	"ntpscan/internal/obs"
)

// pipelineMetrics bundles the pipeline's observability handles. Scalar
// families register at construction; the per-vantage vectors register
// in deployServers once the vantage set (and so the label space) is
// known. Per-vantage vectors are indexed by VantageServer.idx — the
// same dense index the accumulator slices use, so the capture fast
// path pays one atomic add per series and never hashes.
//
// Conservation laws checked by the invariant suite:
//
//	campaign_captures_total  == scan_submitted_total (campaign feed)
//	capture_distinct_total_i == PerCountry[vantage i]
//	ntp_answered_total       == campaign_captures_total (codec path)
//	world_arena_materializations_total - world_arena_evictions_total
//	                         == world_arena_resident_bytes / slot size
//
// The last is the arena conservation law: every device ever
// materialized was either evicted or is still resident, and lookups
// split exactly into hits and materializations. The counters fold
// per-shard deltas in ascending shard order at each slice's drain
// barrier, so the whole family is byte-stable across worker counts and
// across checkpoint/resume.
type pipelineMetrics struct {
	captures    *obs.Counter   // capture events, both channels
	slices      *obs.Counter   // collection slices completed
	sliceCaps   *obs.Histogram // capture events per slice
	checkpoints *obs.Counter   // checkpoints taken
	outBytes    *obs.Gauge     // JSONL output offset

	arenaMat      *obs.Counter // devices materialized into shard arenas
	arenaHits     *obs.Counter // arena lookups served from residents
	arenaEvict    *obs.Counter // residents clock-evicted to recycle slots
	arenaResident *obs.Gauge   // bytes of device state resident, all shards

	capEvents   *obs.CounterVec // volume-channel events per vantage
	capDistinct *obs.CounterVec // first-seen addresses per vantage
	capDropped  *obs.CounterVec // capture attempts lost per vantage

	ntp  *ntp.ServerMetrics
	pool *ntppool.MonitorMetrics
}

func newPipelineMetrics(r *obs.Registry) *pipelineMetrics {
	return &pipelineMetrics{
		captures: r.NewCounter("campaign_captures_total", "capture events recorded, both channels"),
		slices:   r.NewCounter("campaign_slices_total", "collection slices completed"),
		sliceCaps: r.NewHistogram("campaign_slice_captures", "capture events per collection slice",
			[]int64{10, 100, 1000, 10000, 100000, 1000000}),
		checkpoints: r.NewCounter("campaign_checkpoints_total", "checkpoints taken"),
		outBytes:    r.NewGauge("campaign_out_bytes", "bytes of JSONL scan output written"),
		arenaMat: r.NewCounter("world_arena_materializations_total",
			"devices materialized on demand into collection-shard arenas"),
		arenaHits: r.NewCounter("world_arena_hits_total",
			"arena lookups served from already-resident devices"),
		arenaEvict: r.NewCounter("world_arena_evictions_total",
			"resident devices clock-evicted to recycle arena slots"),
		arenaResident: r.NewGauge("world_arena_resident_bytes",
			"bytes of materialized device state resident across all shard arenas"),
		ntp:  ntp.NewServerMetrics(r),
		pool: ntppool.NewMonitorMetrics(r),
	}
}

// registerVantage registers the per-vantage families once the vantage
// set is deployed. codes holds one country code per VantageServer in
// idx order (the vector's index space).
func (m *pipelineMetrics) registerVantage(r *obs.Registry, codes []string) {
	if len(codes) == 0 {
		return // no vantage servers: nothing can capture
	}
	m.capEvents = r.NewCounterVec("capture_events_total",
		"volume-channel capture events per vantage", "vantage", codes)
	m.capDistinct = r.NewCounterVec("capture_distinct_total",
		"first-seen addresses per vantage (volume channel)", "vantage", codes)
	m.capDropped = r.NewCounterVec("capture_dropped_total",
		"capture attempts lost to outages or drops per vantage", "vantage", codes)
}
