package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ntpscan/internal/store"
)

// storeDirDigest hashes a store directory's full contents: file names,
// sizes, and bytes, in sorted name order.
func storeDirDigest(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s %d\n", n, len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// copyDir copies every regular file in src to dst.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// A store-backed campaign's directory and telemetry must be
// bit-identical at any worker count.
func TestStoreCampaignBitIdenticalAcrossWorkers(t *testing.T) {
	var wantDigest, wantTel string
	for _, workers := range []int{1, 3, 8} {
		cfg := testConfig(41)
		cfg.CaptureBudget = 2000
		cfg.Workers = workers
		p := NewPipeline(cfg)
		dir := t.TempDir()
		st, err := store.Open(dir, store.Options{Obs: p.Obs})
		if err != nil {
			t.Fatal(err)
		}
		var tel bytes.Buffer
		if _, err := p.RunCampaign(context.Background(), CampaignOpts{Store: st, Telemetry: &tel}); err != nil {
			t.Fatal(err)
		}
		digest := storeDirDigest(t, dir)
		if wantDigest == "" {
			wantDigest, wantTel = digest, tel.String()
			continue
		}
		if digest != wantDigest {
			t.Errorf("workers=%d: store directory diverges", workers)
		}
		if tel.String() != wantTel {
			t.Errorf("workers=%d: telemetry (with store counters) diverges", workers)
		}
	}
}

// The store must carry exactly the campaign's output: an unfiltered
// JSONL export reproduces the Out stream byte-for-byte.
func TestStoreExportMatchesCampaignJSONL(t *testing.T) {
	cfg := testConfig(42)
	cfg.CaptureBudget = 1500
	p := NewPipeline(cfg)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := p.RunCampaign(context.Background(), CampaignOpts{Store: st, Out: &out}); err != nil {
		t.Fatal(err)
	}
	var exported bytes.Buffer
	if err := st.ExportJSONL(&exported, store.Pred{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exported.Bytes(), out.Bytes()) {
		t.Fatalf("store export (%d bytes) diverges from campaign JSONL (%d bytes)",
			exported.Len(), out.Len())
	}
}

// Kill-and-resume with the store attached: the campaign is "crashed"
// at a late checkpoint (directory copied mid-run, retired compaction
// inputs and all), resumed from an *earlier* checkpoint — so ResetTo
// must rewind across a compaction — and the resumed run's final
// directory and output tail must be bit-identical to the
// uninterrupted run's.
func TestStoreResumeReproducesDirectory(t *testing.T) {
	cfg := testConfig(43)
	cfg.CaptureBudget = 2000

	var full bytes.Buffer
	var cps []*Checkpoint
	crashDir := t.TempDir()
	fullDir := t.TempDir()
	p1 := NewPipeline(cfg)
	st1, err := store.Open(fullDir, store.Options{Obs: p1.Obs})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p1.RunCampaign(context.Background(), CampaignOpts{
		Store:           st1,
		Out:             &full,
		CheckpointEvery: 24,
		OnCheckpoint: func(cp *Checkpoint) {
			cps = append(cps, cp)
			if len(cps) == 3 {
				// Simulate the crash point: the directory as a later victim
				// process would leave it, well past the resume checkpoint.
				copyDir(t, fullDir, crashDir)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 3 {
		t.Fatalf("expected 3 checkpoints, got %d", len(cps))
	}
	wantDigest := storeDirDigest(t, fullDir)

	cp := cps[0]
	if cp.Store == nil {
		t.Fatal("checkpoint carries no store manifest")
	}
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	var rest bytes.Buffer
	p2 := NewPipeline(cfg)
	st2, err := store.Open(crashDir, store.Options{Obs: p2.Obs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.ResumeCampaign(context.Background(), &back, CampaignOpts{Store: st2, Out: &rest}); err != nil {
		t.Fatal(err)
	}
	if got := storeDirDigest(t, crashDir); got != wantDigest {
		t.Error("resumed store directory diverges from uninterrupted run")
	}
	if want := full.Bytes()[cp.OutOffset:]; !bytes.Equal(rest.Bytes(), want) {
		t.Errorf("resumed output %d bytes, want %d", rest.Len(), len(want))
	}
}

// A store-attached resume refuses a checkpoint that has no manifest.
func TestStoreResumeRequiresManifest(t *testing.T) {
	cfg := testConfig(44)
	cfg.CaptureBudget = 1000
	var cps []*Checkpoint
	p := NewPipeline(cfg)
	if _, err := p.RunCampaign(context.Background(), CampaignOpts{
		CheckpointEvery: 48,
		OnCheckpoint:    func(cp *Checkpoint) { cps = append(cps, cp) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints")
	}
	p2 := NewPipeline(cfg)
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.ResumeCampaign(context.Background(), cps[0], CampaignOpts{Store: st}); err == nil {
		t.Error("resume accepted a manifest-less checkpoint with a store attached")
	}
}
