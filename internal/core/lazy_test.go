package core

import (
	"bytes"
	"context"
	"testing"
)

// TestCampaignLazyWorldByteIdentical is the tentpole acceptance check
// for the lazy world: a full campaign — JSONL scan output and per-slice
// telemetry stream included — must be byte-for-byte identical whether
// the address-only population is built eagerly or derived on demand
// through the shard arenas. World.Lazy is a memory knob, never an
// experiment knob.
func TestCampaignLazyWorldByteIdentical(t *testing.T) {
	run := func(lazy bool) (out, tel []byte, captures int) {
		cfg := testConfig(11)
		cfg.World.Lazy = lazy
		cfg.CaptureBudget = 3000
		p := NewPipeline(cfg)
		var o, tw bytes.Buffer
		if _, err := p.RunCampaign(context.Background(), CampaignOpts{
			Out: &o, Telemetry: &tw,
		}); err != nil {
			t.Fatal(err)
		}
		return o.Bytes(), tw.Bytes(), p.Captures
	}

	eOut, eTel, eCaps := run(false)
	lOut, lTel, lCaps := run(true)
	if eCaps == 0 {
		t.Fatal("campaign captured nothing")
	}
	if eCaps != lCaps {
		t.Fatalf("capture counts differ: eager %d, lazy %d", eCaps, lCaps)
	}
	if !bytes.Equal(eOut, lOut) {
		t.Fatal("JSONL scan output differs between eager and lazy worlds")
	}
	if !bytes.Equal(eTel, lTel) {
		t.Fatal("telemetry stream differs between eager and lazy worlds")
	}
}

// TestCampaignLazyWorldAcrossWorkers re-runs the worker-count identity
// check with the lazy world active: per-shard arenas keep the
// materialization sequence inside each shard's own stream, so worker
// scheduling must not leak into the dataset or the arena counters.
func TestCampaignLazyWorldAcrossWorkers(t *testing.T) {
	run := func(workers int) (uint64, map[string]int64) {
		cfg := testConfig(11)
		cfg.World.Lazy = true
		cfg.Workers = workers
		cfg.CaptureBudget = 3000
		p := NewPipeline(cfg)
		d := p.RunNTPCampaign(context.Background())
		arena := map[string]int64{
			"mat":      p.met.arenaMat.Value(),
			"hits":     p.met.arenaHits.Value(),
			"evict":    p.met.arenaEvict.Value(),
			"resident": p.met.arenaResident.Value(),
		}
		return datasetDigest(t, d), arena
	}

	base, arena1 := run(1)
	if arena1["mat"] == 0 {
		t.Fatal("campaign never materialized a device through the arenas")
	}
	for _, workers := range []int{3, 8} {
		got, arena := run(workers)
		if got != base {
			t.Errorf("workers=%d dataset digest %x, want %x", workers, got, base)
		}
		for k, v := range arena1 {
			if arena[k] != v {
				t.Errorf("workers=%d arena %s = %d, want %d", workers, k, arena[k], v)
			}
		}
	}
}
