package core

import (
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ntpscan/internal/analysis"
	"ntpscan/internal/ntp"
	"ntpscan/internal/obs"
	"ntpscan/internal/rng"
	"ntpscan/internal/world"
)

// collectShard is one deterministic sub-stream of the collection. Each
// shard owns derived rng streams (a pure function of the root seed and
// the shard index), per-vantage NTP server clones whose capture hooks
// tag this shard, and a feed buffer of captured addresses. Shards never
// share mutable state, so any number of them can run concurrently; the
// slice driver merges feed buffers in ascending shard order.
type collectShard struct {
	idx   int
	vol   *rng.Stream // volume-channel sampling
	resp  *rng.Stream // responsive-channel re-capture draws
	ports *rng.Stream // client source ports
	// ntp holds per-vantage capture servers for the codec fast path,
	// indexed by VantageServer.idx; their hooks record into this shard.
	ntp []*ntp.Server
	// arena bounds the shard's resident device state: sampled clients
	// are materialized on demand and clock-evicted when the byte budget
	// fills. One arena per shard keeps lookups lock-free and the
	// hit/miss sequence a pure function of the shard's draw stream, so
	// the folded counters stay byte-identical across worker counts.
	arena *world.Materializer
	// reqBuf/respBuf are the shard's reusable NTP wire buffers: the
	// codec fast path encodes every request slab and receives every
	// response slab here, so steady-state captures allocate nothing.
	// Owned by exactly one shard, never shared — pooling per shard keeps
	// the buffers out of any cross-goroutine ordering.
	reqBuf  []byte
	respBuf []byte
	// pkts/clients/oks are the volume batch path's per-slice scratch:
	// the slice's sampled clients and their request/response bookkeeping
	// for one RespondBatch call. High-water capacity is kept across
	// slices.
	pkts    []ntp.Packet
	clients []netip.AddrPort
	oks     []bool
	// events buffers this shard's captures within the current slice —
	// address, vantage, and channel, in exact capture order.
	// Preallocated from the capture budget so steady-state appends
	// never grow it. Nothing global is touched while a shard executes:
	// the drain barrier replays each shard's events into the shared
	// accumulators in ascending shard order (commitShard), which makes
	// first-seen attribution — and so the checkpoint capture log and
	// the store's capture rows — a pure function of the experiment,
	// never of worker scheduling, and lets an external dispatcher
	// discard a fenced execution without a trace.
	events []capEvent
	// dropped counts capture attempts lost per vantage this slice,
	// folded into the capture_dropped_total vector at the barrier.
	dropped []int64
	// ntpMet is the shard's private NTP-counter buffer: the per-shard
	// server clones account here, and the barrier folds the deltas into
	// the fleet-wide families.
	ntpMet *ntp.ServerMetrics
	// respSet holds responsive-population indices whose guaranteed
	// first capture landed this slice; committed into the shared bitmap
	// at the barrier. Each index is visited at most once per slice, so
	// deferring the bitmap write never changes an execution's reads.
	respSet []int32
	// volumeStats gates collection statistics: only volume-channel
	// captures count toward Tables 1/4/7 and Figures 1/4. The
	// responsive channel is a DeviceScale population — at full scale it
	// contributes a negligible sliver of the 3B collected addresses,
	// but at bench scale ratios it would swamp the AddrScale-denominated
	// statistics (see DESIGN.md on the two-scale substitution).
	volumeStats bool
}

// capEvent is one buffered capture: the facts the barrier needs to
// replay the event against the shared accumulators.
type capEvent struct {
	addr    netip.Addr
	vantage int32
	volume  bool
}

// makeCollectShards derives the shard set. Shard i's streams are
// Derive("volume/shard/i") etc. off the pipeline stream — stable across
// runs and independent of the worker count. On a resumed pipeline the
// streams are fast-forwarded to their checkpointed positions instead.
func (p *Pipeline) makeCollectShards() []*collectShard {
	shards := make([]*collectShard, p.Cfg.CollectShards)
	// Size each shard's feed for its slice share of the capture budget
	// (volume events split across slices and shards, plus headroom for
	// the responsive channel) so steady-state appends never regrow it.
	feedCap := p.captureBudget()/(collectSlices*len(shards)) + 64
	for i := range shards {
		sh := &collectShard{
			idx:     i,
			vol:     p.rng.DeriveIndexed("volume/shard", i),
			resp:    p.rng.DeriveIndexed("responsive/shard", i),
			ports:   p.rng.DeriveIndexed("ports/shard", i),
			arena:   p.W.NewMaterializer(p.Cfg.ArenaBytes),
			ntp:     make([]*ntp.Server, len(p.Servers)),
			reqBuf:  make([]byte, 0, ntp.PacketSize),
			respBuf: make([]byte, 0, ntp.PacketSize),
			events:  make([]capEvent, 0, feedCap),
			dropped: make([]int64, len(p.Servers)),
			ntpMet: &ntp.ServerMetrics{
				Requests:    obs.LocalCounter(),
				Answered:    obs.LocalCounter(),
				RateLimited: obs.LocalCounter(),
			},
		}
		if p.restoreCp != nil && i < len(p.restoreCp.Shards) {
			st := p.restoreCp.Shards[i]
			sh.vol.SetState(st.Vol)
			sh.resp.SetState(st.Resp)
			sh.ports.SetState(st.Ports)
			if st.Arena != nil {
				// Capacity was validated against the budget in restore();
				// a failure here is an invariant violation, not bad input.
				if err := sh.arena.Restore(st.Arena); err != nil {
					panic("core: arena restore after validation: " + err.Error())
				}
			}
		}
		for _, vs := range p.Servers {
			vi := vs.idx
			sh.ntp[vi] = ntp.NewServer(ntp.ServerConfig{
				Now: p.W.Clock().Now,
				// Shard clones account into the shard's private buffer;
				// the barrier folds the deltas into the same books as the
				// fabric-registered vantage servers, so totals still read
				// per fleet, whichever path served the request.
				Metrics: sh.ntpMet,
				Capture: func(client netip.AddrPort, at time.Time) {
					p.recordCaptureShard(sh, client.Addr(), vi, at)
				},
			})
		}
		shards[i] = sh
	}
	return shards
}

// captureBudget resolves Config.CaptureBudget with its default.
func (p *Pipeline) captureBudget() int {
	if p.Cfg.CaptureBudget != 0 {
		return p.Cfg.CaptureBudget
	}
	return 3 * p.expectedDistinct()
}

// collectQuota is one vantage country's volume-channel event budget.
type collectQuota struct {
	vs     *VantageServer
	events int
}

// Collect runs the four-week address collection. Capture events arrive
// on two channels:
//
//   - the volume channel samples the address-only eyeball population
//     per country, weighted by sync mass and the tuned zone share —
//     this produces the Table 1/7 address bulk;
//   - the responsive channel captures every scan-reachable NTP client
//     at least once (their sync cadence over four weeks makes capture
//     near-certain; see DESIGN.md), plus extra captures in later
//     address epochs with rate ResponsiveDupRate — dynamic addresses
//     re-observed, the mechanism behind addrs > certs in Table 2.
//
// feed, when non-nil, receives every captured address as it happens
// (the real-time scan feed), in canonical shard order within each time
// slice. The logical clock advances across the window as events are
// generated.
func (p *Pipeline) Collect(feed func(netip.Addr)) {
	var batch func([]netip.Addr)
	if feed != nil {
		batch = func(addrs []netip.Addr) {
			for _, a := range addrs {
				feed(a)
			}
		}
	}
	p.collect(batch, nil)
}

// collect is the sharded collection driver. batch, when non-nil,
// receives each slice's captures merged in shard order; drain, when
// non-nil, runs after each slice's batches — the campaign uses it to
// complete all in-flight scans before the clock moves.
func (p *Pipeline) collect(batch func([]netip.Addr), drain func()) {
	p.collectFrom(0, batch, drain, nil)
}

// collectSlices is the collection window's time resolution: 7-hour
// steps across four weeks. Also the granularity of monitor sweeps,
// breaker transitions, and checkpoints.
const collectSlices = 96

// CollectSlices exports the collection window's slice count so plan
// builders (link route-churn schedules are slice-indexed) can align
// their grids with the campaign's without duplicating the constant.
const CollectSlices = collectSlices

// sliceTime maps a slice index onto the logical timeline.
func (p *Pipeline) sliceTime(s int) time.Time {
	return p.W.Cfg.Start.Add(world.CollectionWindow * time.Duration(s) / collectSlices)
}

// collectFrom is collect starting at an arbitrary slice (resume path).
// onSlice, when non-nil, runs after each slice is fully drained — the
// quiescent point where the checkpointer snapshots shard streams.
func (p *Pipeline) collectFrom(startSlice int, batch func([]netip.Addr), drain func(), onSlice func(next int, shards []*collectShard)) {
	budget := p.captureBudget()
	clock := p.W.Clock()

	// Per-country event quotas: sync mass x tuned share. The share is
	// the score-blind configured one — budgets are part of the
	// experiment definition and must not bend to whatever health the
	// monitor sees at planning time (a resumed campaign re-plans here
	// and has to land on the identical quota set).
	var quotas []collectQuota
	totalWeight := 0.0
	for _, vs := range p.Servers {
		totalWeight += p.W.SyncMass(vs.Country) * p.Pool.ConfiguredShare(vs.Country)
	}
	if totalWeight > 0 {
		for _, vs := range p.Servers {
			w := p.W.SyncMass(vs.Country) * p.Pool.ConfiguredShare(vs.Country)
			quotas = append(quotas, collectQuota{vs: vs, events: int(float64(budget) * w / totalWeight)})
		}
	}

	// Warm the responsive-population cache (and its capture bitmap)
	// before fanning out.
	p.responsive()

	shards := p.makeCollectShards()
	workers := p.Cfg.Workers
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers < 1 || p.Cfg.FullPacketNTP {
		// FullPacketNTP captures arrive through the fabric-registered
		// vantage server, whose hook routes via p.activeShard — shards
		// must run one at a time.
		workers = 1
	}

	// Interleave: walk the window in slices, emitting each country's
	// proportional share per slice so time advances monotonically and
	// dynamic devices rotate through their epochs. Within a slice the
	// clock is frozen: shards run in parallel, their feeds are merged
	// in shard order, and drain completes the slice's scans before the
	// next Set.
	lastCaptures := p.captures.Load()
	for s := startSlice; s < collectSlices; s++ {
		if st := p.sliceTime(s); st.After(clock.Now()) {
			clock.Set(st)
		}
		// Monitor sweep: one health probe per vantage per slice. On a
		// clean run every probe succeeds and scores stay pinned at the
		// maximum; under an outage fault the score collapses below
		// MinScore within one slice (asymmetric penalty), pausing the
		// vantage's capture stream, and recovers two slices after the
		// fault lifts.
		for _, vs := range p.Servers {
			p.Monitor.Check(vs.ID, p.W.Fabric().HostUp(vs.Addr, clock.Now()))
		}
		// Pin the link layer's churn slice and book its events. The
		// canonical slice time goes in, not clock.Now(): cluster
		// heartbeats can leave the clock past the boundary, and the
		// pinned slice must be a pure function of s so every execution
		// mode draws the same queues.
		p.W.Fabric().NoteLinkSlice(p.sliceTime(s))
		p.runShards(shards, workers, s, collectSlices, quotas)
		// Drain barrier: commit per-shard effect buffers (capture
		// events, dedup attribution, drop and NTP counter deltas, the
		// responsive bitmap) and fold the arenas' activity deltas into
		// the obs counters, all in ascending shard order. Nothing global
		// moved while shards executed, so the shared state sequence —
		// including first-seen attribution and the capture log the store
		// persists — is byte-stable across worker counts and node
		// schedules. Folding here — before telemetry and checkpoints run
		// in onSlice — keeps every shard's pending delta at zero whenever
		// a snapshot is cut, so resumed runs repeat the counter sequence
		// exactly.
		var resident int64
		for _, sh := range shards {
			p.commitShard(sh, batch)
			st := sh.arena.TakeStats()
			p.met.arenaMat.Add(int64(st.Materializations))
			p.met.arenaHits.Add(int64(st.Hits))
			p.met.arenaEvict.Add(int64(st.Evictions))
			resident += int64(sh.arena.ResidentBytes())
		}
		p.met.arenaResident.Set(resident)
		if drain != nil {
			drain()
		}
		// Slice accounting at the quiescent point, before onSlice runs:
		// telemetry lines and checkpoints taken there must already see
		// this slice's totals.
		p.met.slices.Inc()
		cur := p.captures.Load()
		p.met.sliceCaps.Observe(cur - lastCaptures)
		lastCaptures = cur
		if onSlice != nil {
			onSlice(s+1, shards)
		}
	}

	// Publish the collection outputs in canonical order. PerCountry is
	// reused across publishes: cleared and refilled in place, with the
	// deploy-time server-count capacity (the only keys it can ever hold).
	p.Captures = int(p.captures.Load())
	p.Summary = p.sumShards.Merge()
	p.EUI = p.euiShards.Merge()
	if p.PerCountry == nil {
		p.PerCountry = make(map[string]int, len(p.Servers))
	} else {
		clear(p.PerCountry)
	}
	for i := range p.perCountryN {
		if v := int(p.perCountryN[i].Load()); v > 0 {
			p.PerCountry[p.Servers[i].Country] = v
		}
	}
}

// commitShard replays one shard's buffered slice effects against the
// pipeline's shared state: capture and distinct counters, the dedup
// accumulators (whose first-seen attribution decides the checkpoint
// capture log and the store's capture rows), per-vantage drop counts,
// the shard clones' NTP counter deltas, the responsive first-capture
// bitmap, and the scan feed. Called only at the drain barrier, in
// ascending shard order — the single point where shard execution
// touches global state. Until a shard is committed its execution can
// be discarded and re-run (cluster fencing) with no global trace.
func (p *Pipeline) commitShard(sh *collectShard, batch func([]netip.Addr)) {
	if n := len(sh.events); n > 0 {
		p.captures.Add(int64(n))
		p.met.captures.Add(int64(n))
	}
	feed := p.feedBuf[:0]
	for i := range sh.events {
		ev := &sh.events[i]
		if ev.volume {
			vi := int(ev.vantage)
			country := p.Servers[vi].Country
			p.met.capEvents.Inc(vi)
			p.euiShards.Add(ev.addr, country)
			if p.sumShards.Add(ev.addr) {
				p.perCountryN[vi].Add(1)
				p.met.capDistinct.Inc(vi)
				if p.recordCaps {
					// First sighting: log it so a resume can replay the
					// accumulator state. Only fresh addresses are logged —
					// re-Adding each exactly once restores every dedup'd
					// statistic.
					p.capLog = append(p.capLog, CapRecord{Addr: ev.addr, Country: country})
				}
			}
		}
		feed = append(feed, ev.addr)
	}
	p.feedBuf = feed
	if batch != nil && len(feed) > 0 {
		batch(feed)
	}
	sh.events = sh.events[:0]
	for vi := range sh.dropped {
		if n := sh.dropped[vi]; n > 0 {
			p.met.capDropped.Add(vi, n)
			sh.dropped[vi] = 0
		}
	}
	p.met.ntp.Requests.Add(sh.ntpMet.Requests.Take())
	p.met.ntp.Answered.Add(sh.ntpMet.Answered.Take())
	p.met.ntp.RateLimited.Add(sh.ntpMet.RateLimited.Take())
	for _, i := range sh.respSet {
		p.respCaptured[i] = true
	}
	sh.respSet = sh.respSet[:0]
}

// discardShardSlice drops a shard's uncommitted slice effects — the
// forget half of the commit/discard pair external dispatchers use when
// an execution is fenced. Stream and arena state are restored
// separately (ShardRef.Restore); this only empties the effect buffers.
func (sh *collectShard) discardSliceEffects() {
	sh.events = sh.events[:0]
	for i := range sh.dropped {
		sh.dropped[i] = 0
	}
	sh.ntpMet.Requests.Take()
	sh.ntpMet.Answered.Take()
	sh.ntpMet.RateLimited.Take()
	sh.respSet = sh.respSet[:0]
	sh.volumeStats = false
}

// vantageUp reports whether the vantage is in pool rotation (monitor
// score above the cutoff). Collection pauses for drained vantages; the
// zone's sync traffic falls to the background servers meanwhile.
func (p *Pipeline) vantageUp(vs *VantageServer) bool {
	return p.Pool.Healthy(vs.ID)
}

// runShards executes one slice across the shard set with up to workers
// goroutines. Shards are picked up dynamically (they are independent,
// so pickup order is irrelevant); with workers == 1 they run in order,
// with activeShard routing for the FullPacketNTP fabric hook. A
// campaign dispatcher, when installed, replaces the pool wholesale —
// the cluster path, where leased nodes decide who runs what.
func (p *Pipeline) runShards(shards []*collectShard, workers, s, slices int, quotas []collectQuota) {
	if p.dispatch != nil {
		if p.dispatchErr != nil {
			// A previous slice's dispatch failed fatally: the campaign is
			// aborting. Running more slices against an undefined placement
			// would only produce output the caller must discard anyway.
			return
		}
		refs := p.shardRefs(shards)
		if err := p.dispatch(s, refs, func(r ShardRef) {
			p.runShardSlice(r.sh, s, slices, len(shards), quotas)
		}); err != nil {
			p.dispatchErr = err
		}
		return
	}
	if workers <= 1 {
		for _, sh := range shards {
			if p.Cfg.FullPacketNTP {
				p.activeShard = sh
			}
			p.runShardSlice(sh, s, slices, len(shards), quotas)
		}
		p.activeShard = nil
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				p.runShardSlice(shards[i], s, slices, len(shards), quotas)
			}
		}()
	}
	wg.Wait()
}

// runShardSlice emits shard sh's portion of one time slice: its split
// of every country's volume quota, then its subset of the responsive
// population.
func (p *Pipeline) runShardSlice(sh *collectShard, s, slices, nshards int, quotas []collectQuota) {
	clock := p.W.Clock()
	for _, q := range quotas {
		if !p.vantageUp(q.vs) {
			// Drained by the monitor: no sync lands on this vantage
			// this slice — background servers absorb the zone's
			// traffic, and these capture events simply never happen.
			continue
		}
		// The slice's event count for this country...
		n := q.events / slices
		if s < q.events%slices {
			n++
		}
		// ...split evenly across shards.
		sn := n / nshards
		if sh.idx < n%nshards {
			sn++
		}
		sh.volumeStats = true
		if p.Cfg.FullPacketNTP {
			// Full UDP exchanges stay per-event: each sync is its own
			// round-trip on the fabric.
			for i := 0; i < sn; i++ {
				gid := p.W.SampleClientID(q.vs.Country, sh.vol)
				if gid < 0 {
					continue
				}
				dev := sh.arena.Device(gid)
				addr := p.W.CurrentAddr(dev, clock.Now())
				p.captureVia(sh, q.vs, addr)
			}
		} else {
			p.volumeBatch(sh, q.vs, sn)
		}
		sh.volumeStats = false
	}
	p.responsiveShardSlice(sh, s, slices, nshards)
}

// responsiveShardSlice captures the shard's portion of the responsive
// population for one slice. Device i belongs to shard i%nshards and is
// due for its first capture in slice i%slices (spreading the
// population over the window); if that slice falls while the device's
// vantage is drained, or the sync itself is lost, the capture is
// retried every following slice until it lands (the device keeps
// syncing — a four-week window makes eventual capture near-certain
// even under faults). Once captured, dynamic devices are re-captured
// in later epochs with probability derived from ResponsiveDupRate —
// drawn from the shard's own stream, so the decision sequence is fixed
// per shard regardless of worker count.
func (p *Pipeline) responsiveShardSlice(sh *collectShard, s, slices, nshards int) {
	clock := p.W.Clock()
	for i, dev := range p.responsive() {
		if i%nshards != sh.idx {
			continue
		}
		vs, ok := p.ServerByCountry(dev.Country)
		if !ok {
			continue
		}
		first := i % slices
		if s < first {
			continue
		}
		if !p.respCaptured[i] {
			// First capture, or catch-up after an outage/loss ate it.
			// Shard sh owns index i and visits it once per slice, so
			// buffering the bitmap write until the barrier never changes
			// what this execution reads.
			if p.vantageUp(vs) {
				addr := p.W.CurrentAddr(dev, clock.Now())
				if p.captureVia(sh, vs, addr) == nil {
					sh.respSet = append(sh.respSet, int32(i))
				}
			}
			continue
		}
		if s > first && dev.Profile.PrefixEpochs > 1 {
			// Dynamic devices may be re-captured after renumbering. The
			// stream is drawn before the health check so the shard's
			// draw schedule does not depend on the fault plan's timing.
			perSlice := p.Cfg.ResponsiveDupRate / float64(slices-first)
			if sh.resp.Bool(perSlice) && p.vantageUp(vs) {
				addr := p.W.CurrentAddr(dev, clock.Now())
				p.captureVia(sh, vs, addr)
			}
		}
	}
}

// responsive caches the responsive NTP population and sizes its
// first-capture bitmap.
func (p *Pipeline) responsive() []*world.Device {
	if p.respCache == nil {
		p.respCache = p.W.ResponsiveNTP()
		p.respCaptured = make([]bool, len(p.respCache))
	}
	return p.respCache
}

// expectedDistinct estimates the distinct-address yield of the
// address-only population (devices x epochs), for auto-sizing the
// capture budget. It reads the world's precomputed per-country epoch
// masses — no device enumeration, so it works identically on lazy
// worlds where the population is never resident.
func (p *Pipeline) expectedDistinct() int {
	var total int64
	for _, c := range p.W.Countries {
		if !c.Spec.Vantage {
			continue
		}
		total += p.W.ClientEpochMass(c.Spec.Code)
	}
	if total < 1000 {
		total = 1000
	}
	return int(total)
}

// PerCountrySorted returns Table 7: distinct captured addresses per
// vantage country, descending.
func (p *Pipeline) PerCountrySorted() []CountryCount {
	out := make([]CountryCount, 0, len(p.PerCountry))
	for c, n := range p.PerCountry {
		out = append(out, CountryCount{Country: c, Addrs: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addrs != out[j].Addrs {
			return out[i].Addrs > out[j].Addrs
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// CountryCount is one Table 7 row.
type CountryCount struct {
	Country string
	Addrs   int
}

// AdvanceWorld moves the logical clock forward and re-registers every
// reachable dynamic device at its now-current address, blackholing the
// addresses they held before — the world as a scanner finds it some
// time after the collection window (the staleness the §6 discussion
// warns static lists suffer from).
func (p *Pipeline) AdvanceWorld(d time.Duration) {
	now := p.W.Clock().Advance(d)
	for _, dev := range p.W.Reachable() {
		if dev.Profile.PrefixEpochs > 1 {
			p.W.CurrentAddr(dev, now)
		}
	}
}

// RLCollect runs a Rye-and-Levin-era collection for the Table 1
// comparison column: 27 vantage countries (every generated country,
// vantage or not, plus repeats), an earlier address-epoch base (the
// 2022 measurement period), and a partially drifted device population
// (a quarter of today's devices did not exist then). Only the address
// summary is produced — R&L did not scan.
func (p *Pipeline) RLCollect(budget int) *analysis.AddrSummary {
	if budget == 0 {
		// Seven months vs four weeks. Derived from the campaign budget
		// (identical when Config.CaptureBudget is unset) so a pinned
		// budget pins the R&L era with it — fixed measurement effort
		// stays fixed when only the world grows.
		budget = 2 * p.captureBudget()
	}
	summary := analysis.NewAddrSummary(p.Ctx)
	r := p.rng.Derive("rl-era")
	// A private arena keeps the 2022-era walk off the shard arenas (and
	// out of their obs counters): this runs outside the campaign.
	arena := p.W.NewMaterializer(p.Cfg.ArenaBytes)
	countries := make([]string, 0, len(p.W.Countries))
	for _, c := range p.W.Countries {
		countries = append(countries, c.Spec.Code)
	}
	perCountry := budget / len(countries)
	for _, code := range countries {
		for i := 0; i < perCountry; i++ {
			gid := p.W.SampleClientID(code, r)
			if gid < 0 {
				continue
			}
			dev := arena.Device(gid)
			// Population drift: 2022's population misses a quarter of
			// today's devices (and vice versa, devices retired since).
			if dev.ID%4 == 0 {
				continue
			}
			// Earlier era: epochs shifted far before the 2024 window.
			epoch := dev.EpochAt(p.W.Cfg.Start, p.W.Cfg.Start) - 180 - int64(r.Intn(60))
			summary.Add(p.W.AddrAt(dev, epoch))
		}
	}
	return summary
}
