package core

import (
	"net/netip"
	"sort"
	"time"

	"ntpscan/internal/analysis"
	"ntpscan/internal/rng"
	"ntpscan/internal/world"
)

// Collect runs the four-week address collection. Capture events arrive
// on two channels:
//
//   - the volume channel samples the address-only eyeball population
//     per country, weighted by sync mass and the tuned zone share —
//     this produces the Table 1/7 address bulk;
//   - the responsive channel captures every scan-reachable NTP client
//     at least once (their sync cadence over four weeks makes capture
//     near-certain; see DESIGN.md), plus extra captures in later
//     address epochs with rate ResponsiveDupRate — dynamic addresses
//     re-observed, the mechanism behind addrs > certs in Table 2.
//
// feed, when non-nil, receives every captured address as it happens
// (the real-time scan feed). The logical clock advances across the
// window as events are generated.
func (p *Pipeline) Collect(feed func(netip.Addr)) {
	p.onAddr = feed
	defer func() { p.onAddr = nil }()

	budget := p.Cfg.CaptureBudget
	if budget == 0 {
		budget = 3 * p.expectedDistinct()
	}
	clock := p.W.Clock()
	start := p.W.Cfg.Start

	// Per-country event quotas: sync mass x tuned share.
	type quota struct {
		vs     *VantageServer
		events int
	}
	var quotas []quota
	totalWeight := 0.0
	for _, vs := range p.Servers {
		totalWeight += p.W.SyncMass(vs.Country) * p.Pool.ShareEstimate(vs.Country)
	}
	if totalWeight > 0 {
		for _, vs := range p.Servers {
			w := p.W.SyncMass(vs.Country) * p.Pool.ShareEstimate(vs.Country)
			quotas = append(quotas, quota{vs: vs, events: int(float64(budget) * w / totalWeight)})
		}
	}

	// Interleave: walk the window in slices, emitting each country's
	// proportional share per slice so time advances monotonically and
	// dynamic devices rotate through their epochs.
	const slices = 96 // 7-hour steps across four weeks
	r := p.rng.Derive("volume")
	for s := 0; s < slices; s++ {
		sliceTime := start.Add(world.CollectionWindow * time.Duration(s) / slices)
		if sliceTime.After(clock.Now()) {
			clock.Set(sliceTime)
		}
		for _, q := range quotas {
			n := q.events / slices
			if s < q.events%slices {
				n++
			}
			p.volumeStats = true
			for i := 0; i < n; i++ {
				dev := p.W.SampleClient(q.vs.Country, r)
				if dev == nil {
					continue
				}
				addr := p.W.CurrentAddr(dev, clock.Now())
				p.captureVia(q.vs, addr)
			}
			p.volumeStats = false
		}
		p.responsiveSlice(s, slices, r)
	}
}

// responsiveSlice captures the slice's portion of the responsive
// population. Device i is first captured in slice i%slices (spreading
// the population over the window), then re-captured in later epochs
// with probability derived from ResponsiveDupRate.
func (p *Pipeline) responsiveSlice(s, slices int, r *rng.Stream) {
	clock := p.W.Clock()
	for i, dev := range p.responsive() {
		vs, ok := p.ServerByCountry(dev.Country)
		if !ok {
			continue
		}
		first := i % slices
		switch {
		case s == first:
			addr := p.W.CurrentAddr(dev, clock.Now())
			p.captureVia(vs, addr)
		case s > first && dev.Profile.PrefixEpochs > 1:
			// Dynamic devices may be re-captured after renumbering.
			perSlice := p.Cfg.ResponsiveDupRate / float64(slices-first)
			if r.Bool(perSlice) {
				addr := p.W.CurrentAddr(dev, clock.Now())
				p.captureVia(vs, addr)
			}
		}
	}
}

// responsive caches the responsive NTP population.
func (p *Pipeline) responsive() []*world.Device {
	if p.respCache == nil {
		p.respCache = p.W.ResponsiveNTP()
	}
	return p.respCache
}

// expectedDistinct estimates the distinct-address yield of the
// address-only population (devices x epochs), for auto-sizing the
// capture budget.
func (p *Pipeline) expectedDistinct() int {
	total := 0
	for _, c := range p.W.Countries {
		if !c.Spec.Vantage {
			continue
		}
		for _, d := range p.W.NTPClients(c.Spec.Code) {
			e := d.Profile.PrefixEpochs
			if e < 1 {
				e = 1
			}
			total += e
		}
	}
	if total < 1000 {
		total = 1000
	}
	return total
}

// PerCountrySorted returns Table 7: distinct captured addresses per
// vantage country, descending.
func (p *Pipeline) PerCountrySorted() []CountryCount {
	out := make([]CountryCount, 0, len(p.PerCountry))
	for c, n := range p.PerCountry {
		out = append(out, CountryCount{Country: c, Addrs: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addrs != out[j].Addrs {
			return out[i].Addrs > out[j].Addrs
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// CountryCount is one Table 7 row.
type CountryCount struct {
	Country string
	Addrs   int
}

// AdvanceWorld moves the logical clock forward and re-registers every
// reachable dynamic device at its now-current address, blackholing the
// addresses they held before — the world as a scanner finds it some
// time after the collection window (the staleness the §6 discussion
// warns static lists suffer from).
func (p *Pipeline) AdvanceWorld(d time.Duration) {
	now := p.W.Clock().Advance(d)
	for _, dev := range p.W.Devices {
		if dev.Role() != world.RoleAddrOnly && dev.Profile.PrefixEpochs > 1 {
			p.W.CurrentAddr(dev, now)
		}
	}
}

// RLCollect runs a Rye-and-Levin-era collection for the Table 1
// comparison column: 27 vantage countries (every generated country,
// vantage or not, plus repeats), an earlier address-epoch base (the
// 2022 measurement period), and a partially drifted device population
// (a quarter of today's devices did not exist then). Only the address
// summary is produced — R&L did not scan.
func (p *Pipeline) RLCollect(budget int) *analysis.AddrSummary {
	if budget == 0 {
		budget = 6 * p.expectedDistinct() // seven months vs four weeks
	}
	summary := analysis.NewAddrSummary(p.Ctx)
	r := p.rng.Derive("rl-era")
	countries := make([]string, 0, len(p.W.Countries))
	for _, c := range p.W.Countries {
		countries = append(countries, c.Spec.Code)
	}
	perCountry := budget / len(countries)
	for _, code := range countries {
		for i := 0; i < perCountry; i++ {
			dev := p.W.SampleClient(code, r)
			if dev == nil {
				continue
			}
			// Population drift: 2022's population misses a quarter of
			// today's devices (and vice versa, devices retired since).
			if dev.ID%4 == 0 {
				continue
			}
			// Earlier era: epochs shifted far before the 2024 window.
			epoch := dev.EpochAt(p.W.Cfg.Start, p.W.Cfg.Start) - 180 - int64(r.Intn(60))
			summary.Add(p.W.AddrAt(dev, epoch))
		}
	}
	return summary
}
