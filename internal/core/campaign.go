// Campaign checkpoint/resume. RunCampaign is RunNTPCampaign with two
// robustness additions: the merged result stream can be tee'd to a
// JSONL writer, and the run can snapshot itself at slice boundaries
// into a Checkpoint — a pure-data, JSON-serialisable record from which
// ResumeCampaign on a *fresh* pipeline (same Config, same installed
// FaultPlan) reproduces the uninterrupted run's remaining output
// byte-for-byte.
//
// The checkpoint deliberately contains only deltas: the world itself is
// a pure function of the seed, so a resumed pipeline rebuilds it from
// Config and restores just the mutable campaign state — shard stream
// positions, the first-seen capture log (replayed into fresh dedup
// accumulators), the responsive first-capture bitmap, scanner state
// (sequence counter, revisit table, breaker), pool monitor scores, the
// logical clock, and the output byte offset.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"ntpscan/internal/analysis"
	"ntpscan/internal/obs"
	"ntpscan/internal/store"
	"ntpscan/internal/world"
	"ntpscan/internal/zgrab"
)

// CapRecord is one first-seen capture: the minimal fact whose ordered
// replay reconstructs every dedup'd collection statistic.
type CapRecord struct {
	Addr    netip.Addr `json:"addr"`
	Country string     `json:"country"`
}

// ShardState is one collection shard's rng stream positions plus its
// device arena's resident set. The arena snapshot is IDs only — slot
// contents re-derive from the world seed on restore — so checkpoints
// stay small however much device state is resident.
type ShardState struct {
	Vol   [4]uint64         `json:"vol"`
	Resp  [4]uint64         `json:"resp"`
	Ports [4]uint64         `json:"ports"`
	Arena *world.ArenaState `json:"arena,omitempty"`
}

// Checkpoint is a resumable snapshot of a campaign, taken at a slice
// boundary (the drain barrier: no captures or scans in flight). It is
// plain data — json.Marshal/Unmarshal round-trips it exactly.
type Checkpoint struct {
	// Identity guards: a checkpoint only resumes onto a pipeline built
	// with the same seed and shard decomposition.
	Seed          uint64 `json:"seed"`
	CollectShards int    `json:"collect_shards"`

	// NextSlice is the first slice the resumed run executes.
	NextSlice int       `json:"next_slice"`
	Time      time.Time `json:"time"` // logical clock at the boundary

	Captures     int64           `json:"captures"`
	Shards       []ShardState    `json:"shards"`
	CapturedResp []int           `json:"captured_resp,omitempty"`
	CapLog       []CapRecord     `json:"cap_log,omitempty"`
	Scan         zgrab.ScanState `json:"scan"`
	PoolScores   PoolScoreMap    `json:"pool_scores,omitempty"`
	// Obs carries the metrics registry's raw values, so a resumed run's
	// telemetry stream continues the interrupted run's byte-for-byte.
	Obs obs.Snapshot `json:"obs,omitempty"`
	// OutOffset is how many bytes of JSONL output the run had written;
	// a resumed run's writer continues exactly here.
	OutOffset int64 `json:"out_offset"`
	// Store pins the columnar store's live segment list at the boundary
	// (present only when the campaign ran with a store attached). Resume
	// rewinds the store directory to exactly this state — the durable
	// replacement for the fragile JSONL byte offset.
	Store *store.Manifest `json:"store,omitempty"`
	// Aggregates is the slice aggregator's snapshot (present only when
	// the campaign ran with CampaignOpts.Aggregates). Resume restores
	// the aggregator from it before re-entering the slice loop, so
	// incrementally maintained query tables stay exactly consistent with
	// the store the checkpoint pins.
	Aggregates json.RawMessage `json:"aggregates,omitempty"`
	// Cluster is the coordinator's section, present only when the
	// campaign ran under internal/cluster: the per-shard lease epochs
	// (the fencing state — a resumed coordinator must keep rejecting
	// the same dead epochs) and the cluster registry's counters. core
	// itself never reads it; the coordinator fills it on checkpoint and
	// validates it on resume.
	Cluster *ClusterState `json:"cluster,omitempty"`
}

// ClusterState is the plain-data cluster checkpoint section (owned by
// internal/cluster; defined here so Checkpoint stays one JSON
// document).
type ClusterState struct {
	// Epochs is the lease table's per-shard fencing epoch, indexed by
	// shard. Length must equal the pipeline's CollectShards on resume.
	Epochs []uint64 `json:"epochs"`
	// Obs carries the cluster's own metrics registry (lease, heartbeat
	// and fencing families — kept out of the campaign registry so
	// telemetry stays byte-identical across node counts).
	Obs obs.Snapshot `json:"obs,omitempty"`
}

// PoolScoreMap is the checkpoint's vantage-score table. Its custom
// marshaller emits keys in sorted order so checkpoint bytes are a pure
// function of the state — map iteration order never leaks into files
// that are compared byte-for-byte across runs.
type PoolScoreMap map[string]float64

// MarshalJSON implements json.Marshaler with deterministic key order.
func (m PoolScoreMap) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0, 16+24*len(keys))
	buf = append(buf, '{')
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		buf = append(buf, kb...)
		buf = append(buf, ':')
		buf = append(buf, vb...)
	}
	return append(buf, '}'), nil
}

// CampaignOpts tunes RunCampaign beyond the plain RunNTPCampaign
// behaviour.
type CampaignOpts struct {
	// Out, when non-nil, receives every scan result as a JSONL line in
	// deterministic (submission-sequence) order, flushed once per slice.
	Out io.Writer
	// CheckpointEvery takes a checkpoint every N slices (0 disables).
	CheckpointEvery int
	// OnCheckpoint receives each checkpoint. The pointer and everything
	// it references belong to the callee.
	OnCheckpoint func(*Checkpoint)
	// Telemetry, when non-nil, receives one JSONL line per slice with
	// the full metrics registry state, written at the drain barrier.
	// The stream is deterministic: byte-identical across worker counts,
	// and a resumed campaign emits exactly the lines the uninterrupted
	// run would have from its resume slice onward.
	Telemetry io.Writer
	// Store, when non-nil, is the campaign's durable columnar sink: at
	// each slice's drain barrier the slice's capture events and scan
	// results are appended as one immutable segment, checkpoints carry
	// the store manifest, and resume rewinds the directory to it. The
	// store directory is bit-identical across worker counts and across
	// an interrupted-and-resumed run.
	Store *store.Store
	// Dispatch, when non-nil, replaces the built-in worker pool as the
	// slice executor (see DispatchFunc). Incompatible with
	// FullPacketNTP, whose fabric-side hook needs strictly serial
	// shards.
	Dispatch DispatchFunc
	// Aggregates, when non-nil, observes every slice's drained data at
	// the same barrier the store append runs at, letting a serving layer
	// maintain materialized query tables incrementally instead of
	// rescanning the store. Checkpoints carry its Snapshot and
	// ResumeCampaign calls Restore, so aggregate state survives
	// interruption exactly in step with the pinned store manifest.
	Aggregates SliceAggregator
}

// SliceAggregator consumes each slice's quiescent drained data — the
// capture rows and scan results the slice produced, in deterministic
// order. AggregateSlice runs at the drain barrier on the campaign
// goroutine; caps and results are only valid for the duration of the
// call (the campaign reuses the backing arrays), so implementations
// must copy what they keep. The post-Close result tail arrives as one
// final synthetic slice (caps nil), mirroring the store's tail append.
// Aggregate state must be order-insensitive in its snapshot: Snapshot
// bytes are compared across worker counts and against full-store
// recomputation.
type SliceAggregator interface {
	AggregateSlice(slice int, caps []store.CaptureRow, results []*zgrab.Result) error
	Snapshot() (json.RawMessage, error)
	Restore(json.RawMessage) error
}

// countingWriter tracks the output byte offset for checkpoints.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// orderedSink accumulates scan results per worker (lock-free, like
// resultSink) and flushes them in sequence order at each slice's drain
// barrier. Per-slice sorting yields the global order: the barrier
// guarantees every slice-s sequence number precedes every slice-s+1
// one.
type orderedSink struct {
	buckets [][]*zgrab.Result
	all     []*zgrab.Result
	cw      *countingWriter
	enc     *json.Encoder
	// batch and encBuf are flush scratch, reused across the campaign's
	// 96 slice flushes: batch collects the slice's results for sorting,
	// encBuf accumulates their JSONL bytes so each slice costs one
	// Write instead of one per result. Both keep their high-water
	// capacity.
	batch  []*zgrab.Result
	encBuf jsonlBuf
}

// jsonlBuf is the minimal reusable byte sink behind the campaign's
// json.Encoder (bytes.Buffer without the unused machinery).
type jsonlBuf struct{ b []byte }

func (j *jsonlBuf) Write(p []byte) (int, error) {
	j.b = append(j.b, p...)
	return len(p), nil
}

func newOrderedSink(workers int, out io.Writer) *orderedSink {
	if workers < 1 {
		workers = 1
	}
	s := &orderedSink{buckets: make([][]*zgrab.Result, workers)}
	if out != nil {
		s.cw = &countingWriter{w: out}
		s.enc = json.NewEncoder(&s.encBuf)
	}
	return s
}

// add is the scanner's OnResultWorker hook.
func (s *orderedSink) add(worker int, r *zgrab.Result) {
	s.buckets[worker] = append(s.buckets[worker], r)
}

// flush drains the buckets in sequence order into the output writer
// and the accumulated dataset. Call only at a drain barrier.
func (s *orderedSink) flush() error {
	batch := s.batch[:0]
	for i, b := range s.buckets {
		batch = append(batch, b...)
		s.buckets[i] = b[:0]
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Seq < batch[j].Seq })
	s.all = append(s.all, batch...)
	s.batch = batch
	if s.enc != nil {
		s.encBuf.b = s.encBuf.b[:0]
		for _, r := range batch {
			if err := s.enc.Encode(r); err != nil {
				return err
			}
		}
		if len(s.encBuf.b) > 0 {
			if _, err := s.cw.Write(s.encBuf.b); err != nil {
				return err
			}
		}
	}
	return nil
}

// offset is the JSONL byte position (0 with no writer).
func (s *orderedSink) offset() int64 {
	if s.cw == nil {
		return 0
	}
	return s.cw.n
}

// RunCampaign is the §4.1 collect-and-scan campaign with streaming
// output and checkpointing. With zero opts it produces exactly
// RunNTPCampaign's dataset.
func (p *Pipeline) RunCampaign(ctx context.Context, opts CampaignOpts) (*analysis.Dataset, error) {
	return p.runCampaignFrom(ctx, 0, opts)
}

// ResumeCampaign continues a checkpointed campaign on a freshly built
// pipeline. The pipeline must have been constructed with the same
// Config (seed, scales, shards) — and the same FaultPlan installed —
// as the run that took the checkpoint; the resumed run then emits the
// exact output the uninterrupted run would have produced from
// cp.OutOffset onward.
func (p *Pipeline) ResumeCampaign(ctx context.Context, cp *Checkpoint, opts CampaignOpts) (*analysis.Dataset, error) {
	if err := p.restore(cp); err != nil {
		return nil, err
	}
	if opts.Store != nil {
		if cp.Store == nil {
			return nil, fmt.Errorf("core: checkpoint carries no store manifest but a store is attached")
		}
		if err := opts.Store.ResetTo(*cp.Store); err != nil {
			return nil, err
		}
	}
	if opts.Aggregates != nil {
		if cp.Aggregates == nil {
			return nil, fmt.Errorf("core: checkpoint carries no aggregate snapshot but an aggregator is attached")
		}
		if err := opts.Aggregates.Restore(cp.Aggregates); err != nil {
			return nil, fmt.Errorf("core: restore aggregates: %w", err)
		}
	}
	return p.runCampaignFrom(ctx, cp.NextSlice, opts)
}

// runCampaignFrom drives collection from startSlice with the scan feed
// attached, flushing output and taking checkpoints at slice
// boundaries.
func (p *Pipeline) runCampaignFrom(ctx context.Context, startSlice int, opts CampaignOpts) (*analysis.Dataset, error) {
	if opts.Dispatch != nil && p.Cfg.FullPacketNTP {
		return nil, fmt.Errorf("core: campaign dispatcher is incompatible with FullPacketNTP (fabric hook needs serial shards)")
	}
	p.dispatch = opts.Dispatch
	p.dispatchErr = nil
	defer func() { p.dispatch = nil }()
	p.recordCaps = true
	sink := newOrderedSink(p.Cfg.Workers, opts.Out)
	if p.restoreCp != nil && sink.cw != nil {
		sink.cw.n = p.restoreCp.OutOffset
	}
	scanner := p.newScanner(sink.add)
	if p.restoreCp != nil {
		scanner.Restore(p.restoreCp.Scan)
	}
	scanner.Start(ctx)

	var tw *obs.TelemetryWriter
	if opts.Telemetry != nil {
		tw = obs.NewTelemetryWriter(p.Obs, opts.Telemetry)
	}

	var werr error
	// capBase marks the capture-log high-water mark, so each slice's
	// store append carries exactly the captures that slice produced.
	// After a restore the log already holds the replayed prefix — those
	// slices live in segments the store was reset to.
	capBase := len(p.capLog)
	var capScratch []store.CaptureRow
	p.collectFrom(startSlice, func(batch []netip.Addr) {
		scanner.SubmitBatch(batch)
	}, scanner.Drain, func(next int, shards []*collectShard) {
		if err := sink.flush(); err != nil && werr == nil {
			werr = err
		}
		// Store before telemetry: the slice's segment write lands in its
		// own telemetry line and checkpoint snapshot, identically in full
		// and resumed runs. The aggregator sees exactly the rows the store
		// appends, at the same barrier.
		if opts.Store != nil || opts.Aggregates != nil {
			rows := capScratch[:0]
			for _, c := range p.capLog[capBase:] {
				rows = append(rows, store.CaptureRow{Addr: c.Addr, Vantage: c.Country})
			}
			capBase = len(p.capLog)
			capScratch = rows
			if opts.Store != nil {
				if err := opts.Store.AppendSlice(next-1, rows, sink.batch); err != nil && werr == nil {
					werr = err
				}
			}
			if opts.Aggregates != nil {
				if err := opts.Aggregates.AggregateSlice(next-1, rows, sink.batch); err != nil && werr == nil {
					werr = err
				}
			}
		}
		// Telemetry before checkpointing: the line reflects the slice's
		// quiescent state, and the checkpoint counter below must tick
		// after it so full and resumed runs agree on every line.
		p.met.outBytes.Set(sink.offset())
		if tw != nil {
			if err := tw.WriteSlice(next-1, p.W.Clock().Now()); err != nil && werr == nil {
				werr = err
			}
		}
		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil &&
			next < collectSlices && next%opts.CheckpointEvery == 0 {
			p.met.checkpoints.Inc()
			cp := p.checkpoint(next, shards, scanner, sink.offset())
			if opts.Store != nil {
				m := opts.Store.Manifest()
				cp.Store = &m
			}
			if opts.Aggregates != nil {
				raw, err := opts.Aggregates.Snapshot()
				if err != nil && werr == nil {
					werr = err
				}
				cp.Aggregates = raw
			}
			opts.OnCheckpoint(cp)
		}
	})
	scanner.Close()
	// A fatal dispatcher error outranks sink errors: it names the root
	// cause (the control plane died), not the knock-on effects.
	if p.dispatchErr != nil && werr == nil {
		werr = p.dispatchErr
	}
	if err := sink.flush(); err != nil && werr == nil {
		werr = err
	}
	// The post-Close drain can surface a result tail past the last
	// collection slice; it lands on the synthetic slice collectSlices
	// (for both the store and the aggregator), and sealing garbage-
	// collects retired compaction inputs.
	if opts.Store != nil {
		if err := opts.Store.AppendSlice(collectSlices, nil, sink.batch); err != nil && werr == nil {
			werr = err
		}
	}
	if opts.Aggregates != nil {
		if err := opts.Aggregates.AggregateSlice(collectSlices, nil, sink.batch); err != nil && werr == nil {
			werr = err
		}
	}
	if opts.Store != nil {
		if err := opts.Store.Seal(); err != nil && werr == nil {
			werr = err
		}
	}
	p.restoreCp = nil
	return analysis.NewDataset("ntp", sink.all), werr
}

// checkpoint snapshots the campaign at a drain barrier. next is the
// first slice still to run; shards are quiescent.
func (p *Pipeline) checkpoint(next int, shards []*collectShard, scanner *zgrab.Scanner, outOffset int64) *Checkpoint {
	cp := &Checkpoint{
		Seed:          p.Cfg.Seed,
		CollectShards: p.Cfg.CollectShards,
		NextSlice:     next,
		Time:          p.W.Clock().Now(),
		Captures:      p.captures.Load(),
		Shards:        make([]ShardState, len(shards)),
		CapLog:        append([]CapRecord(nil), p.capLog...),
		Scan:          scanner.Snapshot(),
		PoolScores:    make(PoolScoreMap, len(p.Servers)),
		Obs:           p.Obs.Snapshot(),
		OutOffset:     outOffset,
	}
	for i, sh := range shards {
		cp.Shards[i] = ShardState{
			Vol:   sh.vol.State(),
			Resp:  sh.resp.State(),
			Ports: sh.ports.State(),
			Arena: sh.arena.Snapshot(),
		}
	}
	for i, done := range p.respCaptured {
		if done {
			cp.CapturedResp = append(cp.CapturedResp, i)
		}
	}
	for _, vs := range p.Servers {
		cp.PoolScores[vs.ID] = p.Pool.Score(vs.ID)
	}
	return cp
}

// restore rebuilds the checkpointed campaign state on a fresh
// pipeline: clock, pool health, dedup accumulators (by replaying the
// first-seen capture log), the responsive bitmap, and the shard stream
// positions (applied lazily when makeCollectShards runs).
func (p *Pipeline) restore(cp *Checkpoint) error {
	if cp.Seed != p.Cfg.Seed {
		return fmt.Errorf("core: checkpoint seed %d does not match pipeline seed %d", cp.Seed, p.Cfg.Seed)
	}
	if cp.CollectShards != p.Cfg.CollectShards || len(cp.Shards) != p.Cfg.CollectShards {
		return fmt.Errorf("core: checkpoint has %d shards, pipeline %d", len(cp.Shards), p.Cfg.CollectShards)
	}
	if cp.NextSlice < 1 || cp.NextSlice > collectSlices {
		return fmt.Errorf("core: checkpoint slice %d out of range", cp.NextSlice)
	}
	// Arena snapshots only restore onto the same byte budget: slot
	// counts must match or the clock hand and resident set misread.
	// Probe with a throwaway arena so the capacity math lives in one
	// place (the world package).
	if len(cp.Shards) > 0 {
		capSlots := p.W.NewMaterializer(p.Cfg.ArenaBytes).Capacity()
		for i := range cp.Shards {
			if st := cp.Shards[i].Arena; st != nil && len(st.Slots) != capSlots {
				return fmt.Errorf("core: shard %d arena snapshot has %d slots, budget %d gives %d (ArenaBytes changed?)",
					i, len(st.Slots), p.Cfg.ArenaBytes, capSlots)
			}
		}
	}
	if p.captures.Load() != 0 {
		return fmt.Errorf("core: resume requires a fresh pipeline")
	}
	p.restoreCp = cp
	if clock := p.W.Clock(); cp.Time.After(clock.Now()) {
		clock.Set(cp.Time)
	}
	for id, score := range cp.PoolScores {
		p.Pool.SetScore(id, score)
	}
	p.captures.Store(cp.Captures)
	// Replay the first-seen log: each address re-Added exactly once
	// restores every dedup'd statistic; the world's fabric registration
	// side effects are not needed here (any address scanned after the
	// resume point is re-registered by its own capture's CurrentAddr).
	for _, rec := range cp.CapLog {
		p.euiShards.Add(rec.Addr, rec.Country)
		if p.sumShards.Add(rec.Addr) {
			if vs, ok := p.ServerByCountry(rec.Country); ok {
				p.perCountryN[vs.idx].Add(1)
			}
		}
	}
	p.capLog = append(p.capLog, cp.CapLog...)
	p.responsive() // size the bitmap
	for _, i := range cp.CapturedResp {
		if i >= 0 && i < len(p.respCaptured) {
			p.respCaptured[i] = true
		}
	}
	// Metrics last: the capture-log replay above re-ran instrumented
	// paths, and the checkpointed values are authoritative — Restore
	// overwrites whatever the replay accumulated. Scanner metrics are
	// not registered yet (the scanner is built in runCampaignFrom);
	// their values stay pending in the registry and apply then.
	p.Obs.Restore(cp.Obs)
	return nil
}
