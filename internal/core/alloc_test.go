package core

import (
	"net/netip"
	"testing"
)

// TestCaptureFastPathZeroAlloc pins the capture-record fast path:
// after warm-up (shard scratch buffers sized, address already in the
// dedup structures, feed within capacity), routing one client sync
// through the vantage server — request encode, server respond, capture
// hook, feed append — must not allocate. This is the loop the paper's
// ~3x10^9-address collection would spend four weeks in.
func TestCaptureFastPathZeroAlloc(t *testing.T) {
	p := NewPipeline(testConfig(1))
	shards := p.makeCollectShards()
	sh := shards[0]
	vs := p.Servers[0]
	client := netip.MustParseAddr("2001:db8::1234")

	// Warm up: first capture inserts the address into the dedup
	// accumulators and touches every lazy structure.
	sh.volumeStats = true
	if err := p.captureVia(sh, vs, client); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		sh.events = sh.events[:0] // committed at the slice boundary
		if err := p.captureVia(sh, vs, client); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("capture fast path allocated %v times per run, want 0", allocs)
	}
	if len(sh.events) == 0 {
		t.Fatal("capture not buffered")
	}
	p.commitShard(sh, nil)
	if p.captures.Load() == 0 {
		t.Fatal("captures not recorded at commit")
	}
}
