package core

import (
	"context"
	"net/netip"
	"testing"

	"ntpscan/internal/analysis"
	"ntpscan/internal/hitlist"
	"ntpscan/internal/world"
)

func testConfig(seed uint64) Config {
	return Config{
		Seed: seed,
		World: world.Config{
			DeviceScale: 1e-3,
			AddrScale:   1e-6,
			ASScale:     0.02,
		},
		Workers: 16,
	}
}

func TestDeployment(t *testing.T) {
	p := NewPipeline(testConfig(1))
	if len(p.Servers) != 11 {
		t.Fatalf("deployed %d servers, want 11 (one per vantage country)", len(p.Servers))
	}
	seen := map[string]bool{}
	for _, s := range p.Servers {
		if seen[s.Country] {
			t.Fatalf("duplicate vantage in %s", s.Country)
		}
		seen[s.Country] = true
		if _, ok := p.W.Fabric().HostAt(s.Addr); !ok {
			t.Fatalf("server %s not on fabric", s.ID)
		}
		share := p.Pool.ShareEstimate(s.Country)
		if share < p.Cfg.TargetShare*0.9 {
			t.Fatalf("%s share = %v, controller failed", s.Country, share)
		}
	}
}

func TestCollectProducesAddresses(t *testing.T) {
	p := NewPipeline(testConfig(1))
	p.CollectOnly()
	if p.Summary.Set().Len() == 0 {
		t.Fatal("no addresses collected")
	}
	if p.Captures < p.Summary.Set().Len() {
		t.Fatal("captures < distinct addresses")
	}
	st := p.Summary.Stats()
	if st.Nets48 == 0 || st.ASes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// India must dominate the per-country capture distribution
	// (Table 7 shape).
	per := p.PerCountrySorted()
	if len(per) == 0 || per[0].Country != "IN" {
		t.Fatalf("top country = %+v", per)
	}
	last := per[len(per)-1]
	if per[0].Addrs < 5*last.Addrs {
		t.Fatalf("India (%d) should dwarf %s (%d)", per[0].Addrs, last.Country, last.Addrs)
	}
}

func TestCollectDeterministic(t *testing.T) {
	a, b := NewPipeline(testConfig(7)), NewPipeline(testConfig(7))
	a.CollectOnly()
	b.CollectOnly()
	if a.Summary.Set().Len() != b.Summary.Set().Len() || a.Captures != b.Captures {
		t.Fatalf("runs differ: %d/%d vs %d/%d",
			a.Summary.Set().Len(), a.Captures, b.Summary.Set().Len(), b.Captures)
	}
}

func TestCollectFeedSeesEveryCapture(t *testing.T) {
	p := NewPipeline(testConfig(1))
	n := 0
	p.Collect(func(a netip.Addr) {
		if !a.IsValid() {
			t.Error("invalid address in feed")
		}
		n++
	})
	if n != p.Captures {
		t.Fatalf("feed saw %d of %d captures", n, p.Captures)
	}
}

func TestFullPacketEquivalence(t *testing.T) {
	// The codec fast path and full UDP exchanges must capture the same
	// address set.
	cfgA := testConfig(3)
	cfgA.CaptureBudget = 500
	a := NewPipeline(cfgA)
	a.CollectOnly()

	cfgB := testConfig(3)
	cfgB.CaptureBudget = 500
	cfgB.FullPacketNTP = true
	b := NewPipeline(cfgB)
	b.CollectOnly()

	if a.Summary.Set().Len() != b.Summary.Set().Len() {
		t.Fatalf("fast path %d addrs, full packet %d addrs",
			a.Summary.Set().Len(), b.Summary.Set().Len())
	}
	if a.Summary.Set().OverlapWith(b.Summary.Set()) != a.Summary.Set().Len() {
		t.Fatal("address sets differ between capture paths")
	}
}

func TestNTPCampaignFindsConsumerDevices(t *testing.T) {
	p := NewPipeline(testConfig(1))
	data := p.RunNTPCampaign(context.Background())
	if len(data.Results) == 0 {
		t.Fatal("no scan results")
	}
	groups := analysis.TitleGroups(data)
	fritz := analysis.FindGroup(groups, "FRITZ!Box")
	if fritz == nil || fritz.Certs == 0 {
		t.Fatalf("no FRITZ!Box devices found via NTP; groups = %+v", groups)
	}
	// The responsive population is guaranteed captured: every
	// responsive HTTPS fritzbox should be found.
	rows := analysis.Table2(data)
	if rows[0].CertsKeys < fritz.Certs {
		t.Fatalf("table2 inconsistent: %+v vs fritz %d", rows[0], fritz.Certs)
	}
}

func TestHitRateIsLow(t *testing.T) {
	p := NewPipeline(testConfig(1))
	data := p.RunNTPCampaign(context.Background())
	_, _, rate := analysis.HitRate(analysis.NewDataset("ntp", data.Results))
	// Most captured addresses are firewalled phones: the hit rate must
	// be far below one half (the paper's is 0.42 permille at full
	// scale; scale compression raises ours).
	if rate > 0.5 {
		t.Fatalf("hit rate %v implausibly high", rate)
	}
	if rate == 0 {
		t.Fatal("nothing responsive at all")
	}
}

func TestHitlistPipeline(t *testing.T) {
	p := NewPipeline(testConfig(1))
	p.CollectOnly()
	h := p.BuildHitlist(hitlist.Config{})
	if h.Len() == 0 {
		t.Fatal("empty hitlist")
	}
	ctx := context.Background()
	data := p.ScanHitlist(ctx, h)
	groups := analysis.TitleGroups(data)
	if g := analysis.FindGroup(groups, "D-LINK"); g == nil {
		t.Fatalf("hitlist scan missed D-LINK infrastructure; groups = %+v", groups)
	}
	pub := p.PublicHitlist(ctx, h)
	if len(pub) == 0 || len(pub) >= h.Len() {
		t.Fatalf("public list = %d of %d", len(pub), h.Len())
	}
	fullSum := p.SummarizeHitlist(h.Full)
	pubSum := p.SummarizeHitlist(pub)
	if fullSum.Stats().ASes < pubSum.Stats().ASes {
		t.Fatal("full hitlist should cover at least as many ASes")
	}
}

func TestRLCollect(t *testing.T) {
	p := NewPipeline(testConfig(1))
	p.CollectOnly()
	rl := p.RLCollect(0)
	if rl.Set().Len() == 0 {
		t.Fatal("R&L run empty")
	}
	// Partial /48 overlap with our run: some but not all.
	overlap := p.Summary.Per48().OverlapWith(rl.Per48())
	if overlap == 0 {
		t.Fatal("no /48 overlap with R&L era")
	}
	if overlap == p.Summary.Per48().Len() {
		t.Fatal("complete /48 overlap is implausible across eras")
	}
}

func TestSecureShareGap(t *testing.T) {
	// The headline: NTP-sourced hosts are less securely configured
	// than hitlist-found hosts.
	cfg := testConfig(2)
	cfg.World.DeviceScale = 3e-3
	p := NewPipeline(cfg)
	ctx := context.Background()
	ntpData := p.RunNTPCampaign(ctx)
	h := p.BuildHitlist(hitlist.Config{})
	hitData := p.ScanHitlist(ctx, h)
	shares := analysis.SecureShares(ntpData, hitData)
	if shares[0].Hosts == 0 || shares[1].Hosts == 0 {
		t.Fatalf("empty host sets: %+v", shares)
	}
	if shares[0].Share() >= shares[1].Share() {
		t.Fatalf("NTP share %.3f should be below hitlist share %.3f",
			shares[0].Share(), shares[1].Share())
	}
}
