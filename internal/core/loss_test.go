package core

import (
	"context"
	"testing"

	"ntpscan/internal/analysis"
	"ntpscan/internal/world"
)

// Failure injection: the pipeline must behave sensibly on a lossy
// fabric — fewer full-packet captures and degraded UDP scans, never
// hangs or crashes.

func lossyConfig(seed uint64, loss float64) Config {
	return Config{
		Seed: seed,
		World: world.Config{
			DeviceScale: 1e-3,
			AddrScale:   1e-6,
			ASScale:     0.02,
			Loss:        loss,
		},
		Workers:       16,
		CaptureBudget: 2000,
		FullPacketNTP: true,
	}
}

func TestLossReducesFullPacketCaptures(t *testing.T) {
	clean := NewPipeline(lossyConfig(5, 0))
	clean.CollectOnly()

	lossy := NewPipeline(lossyConfig(5, 0.5))
	lossy.CollectOnly()

	if lossy.Captures >= clean.Captures {
		t.Fatalf("50%% loss should reduce captures: %d vs %d",
			lossy.Captures, clean.Captures)
	}
	if lossy.Captures == 0 {
		t.Fatal("all captures lost at 50% loss")
	}
	// Roughly half the volume-channel request packets vanish (capture
	// happens server-side on request arrival). The responsive channel
	// self-heals — a lost first capture is retried in later slices — so
	// the overall ratio sits somewhat above the raw loss rate.
	ratio := float64(lossy.Captures) / float64(clean.Captures)
	if ratio < 0.35 || ratio > 0.85 {
		t.Fatalf("capture ratio %.2f far from the configured loss", ratio)
	}
}

func TestLossyScanStillFindsDevices(t *testing.T) {
	cfg := lossyConfig(6, 0.3)
	cfg.FullPacketNTP = false // codec captures; loss hits the scans
	cfg.CaptureBudget = 0
	p := NewPipeline(cfg)
	data := p.RunNTPCampaign(context.Background())
	resp, _, _ := analysis.HitRate(data)
	if resp == 0 {
		t.Fatal("nothing found through a 30% lossy fabric")
	}
	// TCP grabs are connection-oriented in the sim (loss applies to
	// datagrams), so HTTP findings survive; CoAP suffers.
	groups := analysis.TitleGroups(data)
	if analysis.FindGroup(groups, "FRITZ!Box") == nil {
		t.Fatal("TCP findings lost under UDP loss")
	}
}

func TestCoAPDegradesUnderLoss(t *testing.T) {
	count := func(loss float64) int {
		cfg := lossyConfig(7, loss)
		cfg.FullPacketNTP = false
		cfg.CaptureBudget = 0
		p := NewPipeline(cfg)
		data := p.RunNTPCampaign(context.Background())
		n := 0
		for _, r := range data.Successes("coap") {
			_ = r
			n++
		}
		return n
	}
	clean, lossy := count(0), count(0.6)
	if clean == 0 {
		t.Skip("no CoAP devices at this scale")
	}
	if lossy >= clean {
		t.Fatalf("CoAP successes did not degrade: %d vs %d", lossy, clean)
	}
}
