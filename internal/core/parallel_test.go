package core

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"testing"

	"ntpscan/internal/analysis"
	"ntpscan/internal/hitlist"
)

// digest folds every result — in the merged, seq-ordered dataset
// order — into one hash. Any reordering, dropped result, or field
// difference between two runs changes the value.
func datasetDigest(t *testing.T, d *analysis.Dataset) uint64 {
	t.Helper()
	h := fnv.New64a()
	for _, r := range d.Results {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// The tentpole acceptance check: the same (seed, scale) experiment must
// be bit-identical at any worker count. Workers is pure concurrency;
// CollectShards (fixed by default) is the experiment-defining knob.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (*Pipeline, *analysis.Dataset) {
		cfg := testConfig(11)
		cfg.Workers = workers
		cfg.CaptureBudget = 3000
		p := NewPipeline(cfg)
		return p, p.RunNTPCampaign(context.Background())
	}

	p1, d1 := run(1)
	base := datasetDigest(t, d1)
	stats1 := fmt.Sprintf("%+v", p1.Summary.Stats())
	if len(d1.Results) == 0 {
		t.Fatal("campaign produced no scan results")
	}

	// 3 does not divide the shard count evenly; 8 exercises the usual
	// multi-core path.
	for _, workers := range []int{3, 8} {
		p, d := run(workers)
		if got := fmt.Sprintf("%+v", p.Summary.Stats()); got != stats1 {
			t.Errorf("workers=%d Summary diverges:\n got %s\nwant %s", workers, got, stats1)
		}
		if p.Captures != p1.Captures {
			t.Errorf("workers=%d Captures = %d, want %d", workers, p.Captures, p1.Captures)
		}
		if len(p.PerCountry) != len(p1.PerCountry) {
			t.Errorf("workers=%d PerCountry has %d countries, want %d",
				workers, len(p.PerCountry), len(p1.PerCountry))
		}
		for c, n := range p1.PerCountry {
			if p.PerCountry[c] != n {
				t.Errorf("workers=%d PerCountry[%s] = %d, want %d", workers, c, p.PerCountry[c], n)
			}
		}
		if len(d.Results) != len(d1.Results) {
			t.Errorf("workers=%d dataset has %d results, want %d", workers, len(d.Results), len(d1.Results))
		}
		if got := datasetDigest(t, d); got != base {
			t.Errorf("workers=%d dataset digest %x, want %x", workers, got, base)
		}
	}
}

// Hitlist scanning goes through the same batched scanner path and must
// be equally order-stable.
func TestHitlistScanDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) uint64 {
		cfg := testConfig(5)
		cfg.Workers = workers
		cfg.CaptureBudget = 1000
		p := NewPipeline(cfg)
		p.CollectOnly()
		h := p.BuildHitlist(hitlist.Config{})
		return datasetDigest(t, p.ScanHitlist(context.Background(), h))
	}
	base := run(1)
	if got := run(8); got != base {
		t.Fatalf("hitlist dataset digest differs across workers: %x vs %x", got, base)
	}
}
