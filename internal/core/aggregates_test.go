package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"ntpscan/internal/store"
	"ntpscan/internal/zgrab"
)

// countingAggregator is a minimal SliceAggregator: it tallies rows and
// snapshots the tallies, enough to pin the feed/checkpoint/restore
// plumbing without internal/query (which has its own end-to-end
// byte-identity suite against this interface).
type countingAggregator struct {
	Caps      int64 `json:"caps"`
	Results   int64 `json:"results"`
	Slices    int   `json:"slices"`
	TailSeen  bool  `json:"tail_seen"`
	restored  int
	failFeed  bool
	failSnap  bool
	failRest  bool
	snapshots int
}

func (a *countingAggregator) AggregateSlice(slice int, caps []store.CaptureRow, results []*zgrab.Result) error {
	if a.failFeed {
		return errors.New("aggregator feed boom")
	}
	a.Caps += int64(len(caps))
	a.Results += int64(len(results))
	a.Slices++
	if caps == nil {
		a.TailSeen = true
	}
	return nil
}

func (a *countingAggregator) Snapshot() (json.RawMessage, error) {
	if a.failSnap {
		return nil, errors.New("aggregator snapshot boom")
	}
	a.snapshots++
	return json.Marshal(a)
}

func (a *countingAggregator) Restore(raw json.RawMessage) error {
	if a.failRest {
		return errors.New("aggregator restore boom")
	}
	a.restored++
	return json.Unmarshal(raw, a)
}

// The aggregator sees exactly the rows the store appends — same
// barrier, same data — and the tail flush arrives as a nil-caps slice.
func TestAggregatorSeesStoreRows(t *testing.T) {
	cfg := testConfig(45)
	cfg.CaptureBudget = 1500
	p := NewPipeline(cfg)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Obs: p.Obs})
	if err != nil {
		t.Fatal(err)
	}
	agg := &countingAggregator{}
	if _, err := p.RunCampaign(context.Background(), CampaignOpts{Store: st, Aggregates: agg}); err != nil {
		t.Fatal(err)
	}
	caps, results, err := st.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Caps != caps || agg.Results != results {
		t.Errorf("aggregator saw %d/%d rows, store holds %d/%d", agg.Caps, agg.Results, caps, results)
	}
	if !agg.TailSeen {
		t.Error("tail flush never reached the aggregator")
	}
	if agg.Caps == 0 || agg.Results == 0 {
		t.Fatalf("empty campaign (caps=%d results=%d)", agg.Caps, agg.Results)
	}

	// A store-less aggregator campaign feeds identical totals: the
	// capture-row build must run for the aggregator alone too.
	p2 := NewPipeline(cfg)
	agg2 := &countingAggregator{}
	if _, err := p2.RunCampaign(context.Background(), CampaignOpts{Aggregates: agg2}); err != nil {
		t.Fatal(err)
	}
	if agg2.Caps != agg.Caps || agg2.Results != agg.Results || agg2.Slices != agg.Slices {
		t.Errorf("store-less feed diverges: %+v vs %+v", agg2, agg)
	}
}

// Checkpoints carry the aggregator snapshot; resume restores it and
// the resumed run finishes with the uninterrupted run's totals.
func TestAggregatorCheckpointResume(t *testing.T) {
	cfg := testConfig(46)
	cfg.CaptureBudget = 1500
	var cps []*Checkpoint
	p := NewPipeline(cfg)
	full := &countingAggregator{}
	if _, err := p.RunCampaign(context.Background(), CampaignOpts{
		Aggregates:      full,
		CheckpointEvery: 32,
		OnCheckpoint:    func(cp *Checkpoint) { cps = append(cps, cp) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 || full.snapshots != len(cps) {
		t.Fatalf("snapshots = %d, checkpoints = %d", full.snapshots, len(cps))
	}
	if cps[0].Aggregates == nil {
		t.Fatal("checkpoint carries no aggregate snapshot")
	}

	p2 := NewPipeline(cfg)
	resumed := &countingAggregator{}
	if _, err := p2.ResumeCampaign(context.Background(), cps[0], CampaignOpts{Aggregates: resumed}); err != nil {
		t.Fatal(err)
	}
	if resumed.restored != 1 {
		t.Errorf("restored %d times, want 1", resumed.restored)
	}
	if resumed.Caps != full.Caps || resumed.Results != full.Results || !resumed.TailSeen {
		t.Errorf("resumed totals %+v, want %+v", resumed, full)
	}

	// A checkpoint from an aggregator-less run is refused.
	var plain []*Checkpoint
	p3 := NewPipeline(cfg)
	if _, err := p3.RunCampaign(context.Background(), CampaignOpts{
		CheckpointEvery: 48,
		OnCheckpoint:    func(cp *Checkpoint) { plain = append(plain, cp) },
	}); err != nil {
		t.Fatal(err)
	}
	p4 := NewPipeline(cfg)
	if _, err := p4.ResumeCampaign(context.Background(), plain[0], CampaignOpts{Aggregates: &countingAggregator{}}); err == nil {
		t.Error("resume accepted a snapshot-less checkpoint with an aggregator attached")
	}

	// A restore failure surfaces before the slice loop starts.
	p5 := NewPipeline(cfg)
	if _, err := p5.ResumeCampaign(context.Background(), cps[0], CampaignOpts{Aggregates: &countingAggregator{failRest: true}}); err == nil {
		t.Error("resume swallowed a Restore error")
	}
}

// Aggregator errors — from the slice feed and from Snapshot — fail the
// campaign instead of silently desynchronising the materialized view.
func TestAggregatorErrorsFailCampaign(t *testing.T) {
	cfg := testConfig(47)
	cfg.CaptureBudget = 1000
	p := NewPipeline(cfg)
	_, err := p.RunCampaign(context.Background(), CampaignOpts{Aggregates: &countingAggregator{failFeed: true}})
	if err == nil || !strings.Contains(err.Error(), "feed boom") {
		t.Errorf("feed error not surfaced: %v", err)
	}
	p2 := NewPipeline(cfg)
	_, err = p2.RunCampaign(context.Background(), CampaignOpts{
		Aggregates:      &countingAggregator{failSnap: true},
		CheckpointEvery: 24,
		OnCheckpoint:    func(*Checkpoint) {},
	})
	if err == nil || !strings.Contains(err.Error(), "snapshot boom") {
		t.Errorf("snapshot error not surfaced: %v", err)
	}
}
