package coapx

import (
	"net/netip"
	"time"

	"ntpscan/internal/netsim"
)

// DeviceOptions describes a simulated CoAP endpoint.
type DeviceOptions struct {
	// Resources are the paths advertised via /.well-known/core
	// (e.g. "/castDeviceSearch", "/qlink/config"). An empty list still
	// answers discovery with an empty document — the "empty" group of
	// Table 3.
	Resources []string
}

// Handler returns a netsim UDP packet handler implementing the device.
func Handler(opts DeviceOptions) func(netip.AddrPort, []byte) [][]byte {
	return func(from netip.AddrPort, payload []byte) [][]byte {
		req, err := Parse(payload)
		if err != nil || req.Code != CodeGET {
			return nil
		}
		resp := Respond(req, opts)
		enc, err := resp.Marshal()
		if err != nil {
			return nil
		}
		return [][]byte{enc}
	}
}

// Respond computes the device's answer to a GET.
func Respond(req *Message, opts DeviceOptions) *Message {
	resp := &Message{
		Type:      Acknowledgement,
		MessageID: req.MessageID,
		Token:     req.Token,
	}
	switch path := req.Path(); path {
	case "/.well-known/core":
		resp.Code = CodeContent
		resp.Options = []Option{{
			Number: OptionContentFormat,
			Value:  []byte{ContentFormatLinkFormat},
		}}
		resp.Payload = []byte(EncodeLinkFormat(opts.Resources))
	default:
		for _, r := range opts.Resources {
			if r == path {
				resp.Code = CodeContent
				resp.Payload = []byte("{}")
				return resp
			}
		}
		resp.Code = CodeNotFound
	}
	return resp
}

// ScanResult is the outcome of one CoAP discovery probe.
type ScanResult struct {
	Code      Code
	Resources []string // parsed from link-format on 2.05
}

// PacketSocket is the datagram surface ScanConn needs. netsim's UDPConn
// satisfies it directly; real net.PacketConn sockets satisfy it through
// a thin adapter (see zgrab's RealNet).
type PacketSocket interface {
	WriteTo(p []byte, dst netip.AddrPort) (int, error)
	ReadFrom(p []byte) (int, netip.AddrPort, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// ScanConn sends GET /.well-known/core over an already-bound socket and
// parses the reply. messageID seeds the request identifiers; the
// response must echo the derived token. The caller keeps ownership of
// sock.
func ScanConn(sock PacketSocket, dst netip.AddrPort, messageID uint16, timeout time.Duration) (*ScanResult, error) {
	token := []byte{byte(messageID >> 8), byte(messageID), 0x5c, 0x0a}
	req := NewGet("/.well-known/core", messageID, token)
	enc, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	if _, err := sock.WriteTo(enc, dst); err != nil {
		return nil, err
	}
	sock.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 2048)
	for {
		n, from, err := sock.ReadFrom(buf)
		if err != nil {
			return nil, err
		}
		if from != dst {
			continue
		}
		resp, err := Parse(buf[:n])
		if err != nil {
			return nil, err
		}
		if string(resp.Token) != string(token) {
			continue // stale or spoofed reply
		}
		res := &ScanResult{Code: resp.Code}
		if resp.Code == CodeContent {
			res.Resources = ParseLinkFormat(string(resp.Payload))
		}
		return res, nil
	}
}

// Scan is ScanConn over a fresh fabric socket bound at src.
func Scan(fabric *netsim.Network, src netip.AddrPort, dst netip.AddrPort, messageID uint16, timeout time.Duration) (*ScanResult, error) {
	conn, err := fabric.ListenUDP(src)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return ScanConn(conn, dst, messageID, timeout)
}
