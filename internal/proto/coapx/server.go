package coapx

import (
	"bytes"
	"net/netip"
	"sync"
	"time"

	"ntpscan/internal/netsim"
)

// DeviceOptions describes a simulated CoAP endpoint.
type DeviceOptions struct {
	// Resources are the paths advertised via /.well-known/core
	// (e.g. "/castDeviceSearch", "/qlink/config"). An empty list still
	// answers discovery with an empty document — the "empty" group of
	// Table 3.
	Resources []string
}

// handlerMsgs pools the scratch messages Handler parses requests into;
// option values alias the request payload, which the handler is done
// with before it returns.
var handlerMsgs = sync.Pool{
	New: func() any { return &Message{} },
}

// Handler returns a netsim UDP packet handler implementing the device.
// The response bodies are precomputed per device: a request only
// selects one of them and stamps the echoed message ID and token, so
// steady-state handling allocates just the outgoing datagram.
func Handler(opts DeviceOptions) func(netip.AddrPort, []byte) [][]byte {
	// Response tails (everything after the echoed ID/token) by outcome.
	discovery := appendRespTail(nil, []Option{{
		Number: OptionContentFormat,
		Value:  []byte{ContentFormatLinkFormat},
	}}, []byte(EncodeLinkFormat(opts.Resources)))
	resource := appendRespTail(nil, nil, []byte("{}"))
	notFound := appendRespTail(nil, nil, nil)

	resSegs := make([][]string, len(opts.Resources))
	for i, r := range opts.Resources {
		resSegs[i] = splitPath(r)
	}

	return func(from netip.AddrPort, payload []byte) [][]byte {
		req := handlerMsgs.Get().(*Message)
		defer handlerMsgs.Put(req)
		if err := parseInto(req, payload, false); err != nil || req.Code != CodeGET {
			return nil
		}
		var tail []byte
		var code Code
		switch {
		case req.pathEquals(wellKnownSegs):
			tail, code = discovery, CodeContent
		case matchesAny(req, resSegs):
			tail, code = resource, CodeContent
		default:
			tail, code = notFound, CodeNotFound
		}
		enc := make([]byte, 0, 4+len(req.Token)+len(tail))
		enc = append(enc,
			1<<6|byte(Acknowledgement)<<4|byte(len(req.Token)),
			byte(code),
			byte(req.MessageID>>8),
			byte(req.MessageID))
		enc = append(enc, req.Token...)
		enc = append(enc, tail...)
		return [][]byte{enc}
	}
}

// appendRespTail encodes the option+payload suffix of an acknowledgement.
func appendRespTail(dst []byte, opts []Option, payload []byte) []byte {
	prev := uint16(0)
	for _, o := range opts {
		dst = appendOptionHeader(dst, o.Number-prev, len(o.Value))
		dst = append(dst, o.Value...)
		prev = o.Number
	}
	if len(payload) > 0 {
		dst = append(dst, 0xff)
		dst = append(dst, payload...)
	}
	return dst
}

// wellKnownSegs is the discovery path in segment form.
var wellKnownSegs = []string{".well-known", "core"}

// splitPath breaks "/a/b" into {"a","b"} without strings.Split's
// surrounding allocations at call sites that run per request.
func splitPath(p string) []string {
	var segs []string
	for len(p) > 0 {
		for len(p) > 0 && p[0] == '/' {
			p = p[1:]
		}
		if len(p) == 0 {
			break
		}
		i := 0
		for i < len(p) && p[i] != '/' {
			i++
		}
		segs = append(segs, p[:i])
		p = p[i:]
	}
	return segs
}

// pathEquals reports whether the message's Uri-Path options spell segs.
func (m *Message) pathEquals(segs []string) bool {
	i := 0
	for _, o := range m.Options {
		if o.Number != OptionUriPath {
			continue
		}
		if i >= len(segs) || string(o.Value) != segs[i] {
			return false
		}
		i++
	}
	return i == len(segs)
}

func matchesAny(m *Message, resources [][]string) bool {
	for _, segs := range resources {
		if m.pathEquals(segs) {
			return true
		}
	}
	return false
}

// Respond computes the device's answer to a GET.
func Respond(req *Message, opts DeviceOptions) *Message {
	resp := &Message{
		Type:      Acknowledgement,
		MessageID: req.MessageID,
		Token:     req.Token,
	}
	switch path := req.Path(); path {
	case "/.well-known/core":
		resp.Code = CodeContent
		resp.Options = []Option{{
			Number: OptionContentFormat,
			Value:  []byte{ContentFormatLinkFormat},
		}}
		resp.Payload = []byte(EncodeLinkFormat(opts.Resources))
	default:
		for _, r := range opts.Resources {
			if r == path {
				resp.Code = CodeContent
				resp.Payload = []byte("{}")
				return resp
			}
		}
		resp.Code = CodeNotFound
	}
	return resp
}

// ScanResult is the outcome of one CoAP discovery probe.
type ScanResult struct {
	Code      Code
	Resources []string // parsed from link-format on 2.05
}

// PacketSocket is the datagram surface ScanConn needs. netsim's UDPConn
// satisfies it directly; real net.PacketConn sockets satisfy it through
// a thin adapter (see zgrab's RealNet).
type PacketSocket interface {
	WriteTo(p []byte, dst netip.AddrPort) (int, error)
	ReadFrom(p []byte) (int, netip.AddrPort, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// scanScratch is the per-probe working set of ScanConn, pooled so a
// steady-state probe allocates only its result: the request token and
// encoding, the 2 KB receive buffer (formerly a fresh allocation per
// probe — one of the campaign's top sites by bytes), and the parsed
// response (whose fields alias buf).
type scanScratch struct {
	token [4]byte
	enc   []byte
	buf   []byte
	resp  Message
}

var scanScratches = sync.Pool{
	New: func() any {
		return &scanScratch{enc: make([]byte, 0, 64), buf: make([]byte, 2048)}
	},
}

// wellKnownOpts is the Uri-Path option pair of the discovery request.
var wellKnownOpts = []Option{
	{Number: OptionUriPath, Value: []byte(".well-known")},
	{Number: OptionUriPath, Value: []byte("core")},
}

// ScanConn sends GET /.well-known/core over an already-bound socket and
// parses the reply. messageID seeds the request identifiers; the
// response must echo the derived token. The caller keeps ownership of
// sock.
func ScanConn(sock PacketSocket, dst netip.AddrPort, messageID uint16, timeout time.Duration) (*ScanResult, error) {
	sc := scanScratches.Get().(*scanScratch)
	defer scanScratches.Put(sc)
	sc.token = [4]byte{byte(messageID >> 8), byte(messageID), 0x5c, 0x0a}
	req := Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: messageID,
		Token:     sc.token[:],
		Options:   wellKnownOpts,
	}
	enc, err := req.MarshalAppend(sc.enc[:0])
	if err != nil {
		return nil, err
	}
	sc.enc = enc[:0]
	if _, err := sock.WriteTo(enc, dst); err != nil {
		return nil, err
	}
	sock.SetReadDeadline(time.Now().Add(timeout))
	for {
		n, from, err := sock.ReadFrom(sc.buf)
		if err != nil {
			return nil, err
		}
		if from != dst {
			continue
		}
		if err := parseInto(&sc.resp, sc.buf[:n], false); err != nil {
			return nil, err
		}
		if !bytes.Equal(sc.resp.Token, sc.token[:]) {
			continue // stale or spoofed reply
		}
		res := &ScanResult{Code: sc.resp.Code}
		if sc.resp.Code == CodeContent {
			res.Resources = parseLinkFormatBytes(sc.resp.Payload)
		}
		return res, nil
	}
}

// Scan is ScanConn over a fresh fabric socket bound at src.
func Scan(fabric *netsim.Network, src netip.AddrPort, dst netip.AddrPort, messageID uint16, timeout time.Duration) (*ScanResult, error) {
	conn, err := fabric.ListenUDP(src)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return ScanConn(conn, dst, messageID, timeout)
}
