package coapx

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"ntpscan/internal/netsim"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	m := &Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: 0xbeef,
		Token:     []byte{1, 2, 3, 4},
		Options: []Option{
			{Number: OptionUriPath, Value: []byte(".well-known")},
			{Number: OptionUriPath, Value: []byte("core")},
			{Number: OptionContentFormat, Value: []byte{40}},
		},
		Payload: []byte("hello"),
	}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(mid uint16, tok []byte, segs [][]byte, payload []byte) bool {
		if len(tok) > 8 {
			tok = tok[:8]
		}
		m := &Message{Type: NonConfirmable, Code: CodeContent, MessageID: mid, Token: tok}
		for _, s := range segs {
			if len(s) > 400 {
				s = s[:400]
			}
			m.Options = append(m.Options, Option{Number: OptionUriPath, Value: s})
		}
		if len(payload) > 0 {
			m.Payload = payload
		}
		enc, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(enc)
		if err != nil {
			return false
		}
		if got.MessageID != m.MessageID || got.Code != m.Code || len(got.Options) != len(m.Options) {
			return false
		}
		for i := range m.Options {
			if string(got.Options[i].Value) != string(m.Options[i].Value) {
				return false
			}
		}
		return string(got.Payload) == string(m.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOptionDeltaExtensions(t *testing.T) {
	// Option numbers needing 13- and 14-style extended deltas.
	m := &Message{
		Type: Confirmable, Code: CodeGET, MessageID: 1,
		Options: []Option{
			{Number: 11, Value: []byte("a")},
			{Number: 60, Value: []byte("b")},   // delta 49: 13-ext
			{Number: 2048, Value: []byte("c")}, // delta 1988: 14-ext
		},
	}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != 3 || got.Options[1].Number != 60 || got.Options[2].Number != 2048 {
		t.Fatalf("options = %+v", got.Options)
	}
}

func TestLongOptionValue(t *testing.T) {
	long := make([]byte, 300) // needs 14-style length extension
	for i := range long {
		long[i] = byte(i)
	}
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1,
		Options: []Option{{Number: OptionUriPath, Value: long}}}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Options[0].Value) != string(long) {
		t.Fatal("long option corrupted")
	}
}

func TestMarshalRejectsLongToken(t *testing.T) {
	m := &Message{Token: make([]byte, 9)}
	if _, err := m.Marshal(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v", err)
	}
}

func TestParseRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x40, 0x01},                   // short
		{0x80, 0x01, 0x00, 0x01},       // version 2
		{0x4f, 0x01, 0x00, 0x01},       // TKL 15
		{0x40, 0x01, 0x00, 0x01, 0xff}, // payload marker with no payload
		{0x40, 0x01, 0x00, 0x01, 0xf0}, // reserved option nibble
	}
	for _, b := range cases {
		if _, err := Parse(b); err == nil {
			t.Errorf("accepted %x", b)
		}
	}
}

func TestCodeString(t *testing.T) {
	if CodeGET.String() != "0.01" || CodeContent.String() != "2.05" || CodeNotFound.String() != "4.04" {
		t.Fatalf("codes: %v %v %v", CodeGET, CodeContent, CodeNotFound)
	}
}

func TestNewGetAndPath(t *testing.T) {
	m := NewGet("/.well-known/core", 7, []byte{1})
	if got := m.Path(); got != "/.well-known/core" {
		t.Fatalf("path = %q", got)
	}
	if m.Code != CodeGET || len(m.Options) != 2 {
		t.Fatalf("msg = %+v", m)
	}
	root := NewGet("/", 7, nil)
	if root.Path() != "/" || len(root.Options) != 0 {
		t.Fatalf("root = %+v", root)
	}
}

func TestLinkFormatRoundTrip(t *testing.T) {
	paths := []string{"/castDeviceSearch", "/qlink/config", "/qlink/status"}
	doc := EncodeLinkFormat(paths)
	got := ParseLinkFormat(doc)
	if !reflect.DeepEqual(got, paths) {
		t.Fatalf("got %v", got)
	}
}

func TestParseLinkFormatWithAttributes(t *testing.T) {
	got := ParseLinkFormat(`</sensors/temp>;rt="temperature";ct=40, </firmware>;sz=1024`)
	want := []string{"/sensors/temp", "/firmware"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestParseLinkFormatGarbage(t *testing.T) {
	if got := ParseLinkFormat("no links here"); got != nil {
		t.Fatalf("got %v", got)
	}
	if got := ParseLinkFormat(""); got != nil {
		t.Fatalf("empty doc: %v", got)
	}
}

func TestRespondWellKnown(t *testing.T) {
	req := NewGet("/.well-known/core", 9, []byte{7})
	resp := Respond(req, DeviceOptions{Resources: []string{"/a", "/b"}})
	if resp.Code != CodeContent || resp.MessageID != 9 || string(resp.Token) != string(req.Token) {
		t.Fatalf("resp = %+v", resp)
	}
	if got := ParseLinkFormat(string(resp.Payload)); len(got) != 2 {
		t.Fatalf("resources = %v", got)
	}
}

func TestRespondKnownAndUnknownPath(t *testing.T) {
	opts := DeviceOptions{Resources: []string{"/exists"}}
	if r := Respond(NewGet("/exists", 1, nil), opts); r.Code != CodeContent {
		t.Fatalf("known path: %v", r.Code)
	}
	if r := Respond(NewGet("/missing", 1, nil), opts); r.Code != CodeNotFound {
		t.Fatalf("unknown path: %v", r.Code)
	}
}

func TestScanEndToEnd(t *testing.T) {
	fabric := netsim.New(netsim.Config{})
	dev := netsim.NewHost("cast-device").HandleUDP(Port,
		Handler(DeviceOptions{Resources: []string{"/castDeviceSearch"}}))
	devAddr := netip.MustParseAddr("2001:db8::cafe")
	fabric.Register(devAddr, dev)

	res, err := Scan(fabric,
		netip.MustParseAddrPort("[2001:db8::1]:40000"),
		netip.AddrPortFrom(devAddr, Port), 0x1234, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != CodeContent || len(res.Resources) != 1 || res.Resources[0] != "/castDeviceSearch" {
		t.Fatalf("res = %+v", res)
	}
}

func TestScanEmptyResources(t *testing.T) {
	fabric := netsim.New(netsim.Config{})
	devAddr := netip.MustParseAddr("2001:db8::1:1")
	fabric.Register(devAddr, netsim.NewHost("bare").HandleUDP(Port, Handler(DeviceOptions{})))
	res, err := Scan(fabric,
		netip.MustParseAddrPort("[2001:db8::2]:40000"),
		netip.AddrPortFrom(devAddr, Port), 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != CodeContent || len(res.Resources) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestScanTimeout(t *testing.T) {
	fabric := netsim.New(netsim.Config{})
	_, err := Scan(fabric,
		netip.MustParseAddrPort("[2001:db8::2]:40000"),
		netip.MustParseAddrPort("[2001:db8::dead]:5683"), 1, 30*time.Millisecond)
	if err == nil {
		t.Fatal("scan of unrouted space succeeded")
	}
}
