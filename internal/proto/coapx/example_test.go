package coapx_test

import (
	"fmt"

	"ntpscan/internal/proto/coapx"
)

func ExampleParseLinkFormat() {
	doc := `</castDeviceSearch>;rt="cast", </qlink/sta>;ct=40`
	fmt.Println(coapx.ParseLinkFormat(doc))
	// Output:
	// [/castDeviceSearch /qlink/sta]
}

func ExampleNewGet() {
	msg := coapx.NewGet("/.well-known/core", 0x1234, []byte{1, 2})
	enc, _ := msg.Marshal()
	back, _ := coapx.Parse(enc)
	fmt.Println(back.Path(), back.Code)
	// Output:
	// /.well-known/core 0.01
}
