// Package coapx implements the CoAP (RFC 7252) subset the paper's UDP
// IoT scans use: the binary message codec, GET requests, and
// /.well-known/core resource discovery with CoRE link-format (RFC 6690)
// parsing. Resource prefixes from discovery drive the paper's Table 3
// CoAP device-type grouping (/castDeviceSearch, /qlink/*, ...).
package coapx

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Port is the IANA-assigned CoAP UDP port.
const Port = 5683

// Type is the 2-bit message type.
type Type uint8

// Message types.
const (
	Confirmable Type = iota
	NonConfirmable
	Acknowledgement
	Reset
)

// Code is the 8-bit request/response code (class.detail).
type Code uint8

// Codes used by the scan.
const (
	CodeEmpty    Code = 0x00
	CodeGET      Code = 0x01 // 0.01
	CodeContent  Code = 0x45 // 2.05
	CodeNotFound Code = 0x84 // 4.04
)

// String renders class.detail form ("2.05").
func (c Code) String() string {
	return fmt.Sprintf("%d.%02d", c>>5, c&0x1f)
}

// Option numbers used by the scan.
const (
	OptionUriPath       = 11
	OptionContentFormat = 12
)

// ContentFormatLinkFormat is the CoRE link-format media type id.
const ContentFormatLinkFormat = 40

// Option is one CoAP option.
type Option struct {
	Number uint16
	Value  []byte
}

// Message is a CoAP message.
type Message struct {
	Type      Type
	Code      Code
	MessageID uint16
	Token     []byte // 0..8 bytes
	Options   []Option
	Payload   []byte
}

// Errors returned by the codec.
var (
	ErrMalformed  = errors.New("coapx: malformed message")
	ErrBadVersion = errors.New("coapx: unsupported version")
)

// Marshal serialises the message. Options are sorted by number as the
// delta encoding requires.
func (m *Message) Marshal() ([]byte, error) {
	return m.MarshalAppend(make([]byte, 0, 16+len(m.Payload)))
}

// MarshalAppend serialises the message onto dst and returns the
// extended slice, allocating only if dst lacks capacity. Messages whose
// options are already in ascending order — every message this codebase
// builds — encode without the defensive copy-and-sort pass.
func (m *Message) MarshalAppend(dst []byte) ([]byte, error) {
	if len(m.Token) > 8 {
		return nil, fmt.Errorf("%w: token of %d bytes", ErrMalformed, len(m.Token))
	}
	b := append(dst,
		1<<6|byte(m.Type)<<4|byte(len(m.Token)),
		byte(m.Code),
		byte(m.MessageID>>8),
		byte(m.MessageID))
	b = append(b, m.Token...)

	opts := m.Options
	if !optionsSorted(opts) {
		sorted := make([]Option, len(opts))
		copy(sorted, opts)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Number < sorted[j].Number })
		opts = sorted
	}
	prev := uint16(0)
	for _, o := range opts {
		delta := o.Number - prev
		prev = o.Number
		b = appendOptionHeader(b, delta, len(o.Value))
		b = append(b, o.Value...)
	}
	if len(m.Payload) > 0 {
		b = append(b, 0xff)
		b = append(b, m.Payload...)
	}
	return b, nil
}

func optionsSorted(opts []Option) bool {
	for i := 1; i < len(opts); i++ {
		if opts[i].Number < opts[i-1].Number {
			return false
		}
	}
	return true
}

// appendOptionHeader encodes delta/length nibbles with 13/14 extensions.
func appendOptionHeader(b []byte, delta uint16, length int) []byte {
	dn, dext := nibble(int(delta))
	ln, lext := nibble(length)
	b = append(b, byte(dn)<<4|byte(ln))
	b = append(b, dext...)
	return append(b, lext...)
}

// nibble returns the 4-bit field value and extension bytes for v.
func nibble(v int) (int, []byte) {
	switch {
	case v < 13:
		return v, nil
	case v < 269:
		return 13, []byte{byte(v - 13)}
	default:
		e := v - 269
		return 14, []byte{byte(e >> 8), byte(e)}
	}
}

// Parse decodes a CoAP message. The returned message owns its memory
// (token, option values and payload are copied out of b).
func Parse(b []byte) (*Message, error) {
	m := &Message{}
	if err := parseInto(m, b, true); err != nil {
		return nil, err
	}
	return m, nil
}

// parseInto decodes b into m, reusing m's token/options/payload
// capacity. With copyData false the decoded slices alias b — the
// zero-copy mode of callers that own the receive buffer and finish
// with the message before reusing it.
func parseInto(m *Message, b []byte, copyData bool) error {
	if len(b) < 4 {
		return ErrMalformed
	}
	if b[0]>>6 != 1 {
		return ErrBadVersion
	}
	m.Type = Type(b[0] >> 4 & 0x3)
	m.Code = Code(b[1])
	m.MessageID = uint16(b[2])<<8 | uint16(b[3])
	m.Options = m.Options[:0]
	m.Payload = m.Payload[:0]
	tkl := int(b[0] & 0x0f)
	if tkl > 8 {
		return ErrMalformed
	}
	b = b[4:]
	if len(b) < tkl {
		return ErrMalformed
	}
	if copyData {
		m.Token = append(m.Token[:0], b[:tkl]...)
	} else {
		m.Token = b[:tkl]
	}
	b = b[tkl:]

	num := 0
	for len(b) > 0 {
		if b[0] == 0xff {
			if len(b) == 1 {
				return fmt.Errorf("%w: empty payload after marker", ErrMalformed)
			}
			if copyData {
				m.Payload = append(m.Payload[:0], b[1:]...)
			} else {
				m.Payload = b[1:]
			}
			return nil
		}
		dn := int(b[0] >> 4)
		ln := int(b[0] & 0x0f)
		b = b[1:]
		var err error
		var delta, length int
		if delta, b, err = readExt(dn, b); err != nil {
			return err
		}
		if length, b, err = readExt(ln, b); err != nil {
			return err
		}
		if len(b) < length {
			return ErrMalformed
		}
		num += delta
		if num > 0xffff {
			// Accumulated option numbers beyond 16 bits would wrap and
			// break the ascending-order invariant.
			return fmt.Errorf("%w: option number overflow", ErrMalformed)
		}
		val := b[:length]
		if copyData {
			val = append([]byte(nil), val...)
		}
		m.Options = append(m.Options, Option{Number: uint16(num), Value: val})
		b = b[length:]
	}
	return nil
}

func readExt(n int, b []byte) (int, []byte, error) {
	switch n {
	case 13:
		if len(b) < 1 {
			return 0, nil, ErrMalformed
		}
		return int(b[0]) + 13, b[1:], nil
	case 14:
		if len(b) < 2 {
			return 0, nil, ErrMalformed
		}
		return int(b[0])<<8 + int(b[1]) + 269, b[2:], nil
	case 15:
		return 0, nil, fmt.Errorf("%w: reserved option nibble", ErrMalformed)
	default:
		return n, b, nil
	}
}

// NewGet builds a confirmable GET for the given path ("/a/b" becomes two
// Uri-Path options).
func NewGet(path string, messageID uint16, token []byte) *Message {
	m := &Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: messageID,
		Token:     token,
	}
	for _, seg := range strings.Split(strings.Trim(path, "/"), "/") {
		if seg != "" {
			m.Options = append(m.Options, Option{Number: OptionUriPath, Value: []byte(seg)})
		}
	}
	return m
}

// Path reassembles the Uri-Path options into "/a/b". The root path
// (no options) is "/".
func (m *Message) Path() string {
	var segs []string
	for _, o := range m.Options {
		if o.Number == OptionUriPath {
			segs = append(segs, string(o.Value))
		}
	}
	return "/" + strings.Join(segs, "/")
}

// EncodeLinkFormat renders resource paths as a CoRE link-format document:
// "</a>,</b/c>".
func EncodeLinkFormat(paths []string) string {
	out := make([]string, len(paths))
	for i, p := range paths {
		if !strings.HasPrefix(p, "/") {
			p = "/" + p
		}
		out[i] = "<" + p + ">"
	}
	return strings.Join(out, ",")
}

// ParseLinkFormat extracts the resource paths from a link-format
// document, ignoring attributes. The comma-separated entries are
// walked in place rather than pre-split into a throwaway slice.
func ParseLinkFormat(doc string) []string {
	var out []string
	for len(doc) > 0 {
		part := doc
		if i := strings.IndexByte(doc, ','); i >= 0 {
			part, doc = doc[:i], doc[i+1:]
		} else {
			doc = ""
		}
		part = strings.TrimSpace(part)
		start := strings.IndexByte(part, '<')
		end := strings.IndexByte(part, '>')
		if start < 0 || end < 0 || end <= start+1 {
			continue
		}
		out = append(out, part[start+1:end])
	}
	return out
}

// parseLinkFormatBytes is ParseLinkFormat for a byte-slice document the
// caller owns: only the retained path strings are allocated, not a
// string copy of the whole document.
func parseLinkFormatBytes(doc []byte) []string {
	var out []string
	for len(doc) > 0 {
		part := doc
		if i := bytes.IndexByte(doc, ','); i >= 0 {
			part, doc = doc[:i], doc[i+1:]
		} else {
			doc = nil
		}
		part = bytes.TrimSpace(part)
		start := bytes.IndexByte(part, '<')
		end := bytes.IndexByte(part, '>')
		if start < 0 || end < 0 || end <= start+1 {
			continue
		}
		out = append(out, string(part[start+1:end]))
	}
	return out
}
