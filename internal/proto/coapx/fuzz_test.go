package coapx

import (
	"reflect"
	"testing"
)

// FuzzParse hardens the CoAP parser: scan responses arrive from
// arbitrary Internet hosts.
func FuzzParse(f *testing.F) {
	seed, _ := NewGet("/.well-known/core", 0x1234, []byte{1, 2}).Marshal()
	f.Add(seed)
	resp, _ := (&Message{Type: Acknowledgement, Code: CodeContent, MessageID: 9,
		Payload: []byte("</a>,</b>")}).Marshal()
	f.Add(resp)
	f.Add([]byte{0x40, 0x01, 0x00, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		enc, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted message does not re-marshal: %v", err)
		}
		back, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.Code != m.Code || back.MessageID != m.MessageID ||
			string(back.Token) != string(m.Token) ||
			string(back.Payload) != string(m.Payload) ||
			!reflect.DeepEqual(back.Options, m.Options) {
			t.Fatalf("round trip changed message:\n%+v\n%+v", m, back)
		}
	})
}

// FuzzParseLinkFormat must never panic on arbitrary documents.
func FuzzParseLinkFormat(f *testing.F) {
	f.Add("</a>;rt=x,</b>")
	f.Add("<<<>>>,,,;;;")
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		for _, p := range ParseLinkFormat(doc) {
			if p == "" {
				t.Fatal("empty path extracted")
			}
		}
	})
}
