package amqpx

import (
	"bytes"
	"io"
	"net"
)

// BrokerOptions configures a simulated AMQP broker.
type BrokerOptions struct {
	// Product is advertised in server-properties ("RabbitMQ" etc.).
	Product string
	// RequireAuth refuses unknown credentials with Close 403. Brokers
	// without access control accept any PLAIN response (RabbitMQ with
	// default guest/guest open to the world behaves this way for the
	// scanner's purposes).
	RequireAuth bool
	// Credentials lists accepted username→password pairs when
	// RequireAuth is set.
	Credentials map[string]string
}

// ServeConn negotiates one client connection per policy and closes it.
func ServeConn(conn net.Conn, opts BrokerOptions) {
	defer conn.Close()
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return
	}
	if !bytes.Equal(hdr, ProtocolHeader) {
		// Spec: a server receiving an unsupported header writes the
		// header it wants and closes.
		conn.Write(ProtocolHeader)
		return
	}
	if err := writeMethod(conn, ClassConnection, MethodStart, encodeStart(opts.Product)); err != nil {
		return
	}
	f, err := ReadFrame(conn)
	if err != nil || f.Type != FrameMethod {
		return
	}
	m, err := DecodeMethod(f.Payload)
	if err != nil || m.Class != ClassConnection || m.Method != MethodStartOK {
		return
	}
	_, user, pass, err := decodeStartOK(m.Args)
	if err != nil {
		return
	}
	if opts.RequireAuth {
		if want, ok := opts.Credentials[user]; !ok || want != pass {
			writeMethod(conn, ClassConnection, MethodClose,
				encodeClose(ReplyAccessRefused, "ACCESS_REFUSED - Login was refused"))
			return
		}
	}
	// Accept: Connection.Tune(channel-max 2047, frame-max 128k,
	// heartbeat 60).
	tune := []byte{
		0x07, 0xff, // channel-max
		0x00, 0x02, 0x00, 0x00, // frame-max
		0x00, 0x3c, // heartbeat
	}
	writeMethod(conn, ClassConnection, MethodTune, tune)
}

// Handler returns a netsim-compatible stream handler for the broker.
func Handler(opts BrokerOptions) func(net.Conn) {
	return func(conn net.Conn) { ServeConn(conn, opts) }
}

// ScanResult is the outcome of one AMQP grab.
type ScanResult struct {
	// Start carries the server's advertised version/mechanisms/product.
	Start StartArgs
	// Open reports whether the probe credentials were accepted (the
	// broker enforces no effective access control).
	Open bool
	// CloseCode is the reply code when the broker refused (403).
	CloseCode uint16
}

// Scan negotiates as a client using probe credentials (guest/guest, the
// RabbitMQ default the paper's methodology relies on). The caller owns
// conn and deadlines.
func Scan(conn net.Conn) (*ScanResult, error) {
	if _, err := conn.Write(ProtocolHeader); err != nil {
		return nil, err
	}
	f, err := ReadFrame(conn)
	if err != nil {
		return nil, ErrNotAMQP
	}
	m, err := DecodeMethod(f.Payload)
	if err != nil || m.Class != ClassConnection || m.Method != MethodStart {
		return nil, ErrNotAMQP
	}
	start, err := decodeStart(m.Args)
	if err != nil {
		return nil, err
	}
	res := &ScanResult{Start: start}

	if err := writeMethod(conn, ClassConnection, MethodStartOK, encodeStartOK("guest", "guest")); err != nil {
		return res, nil
	}
	f, err = ReadFrame(conn)
	if err != nil {
		return res, nil // Start grabbed; refusal by disconnect
	}
	m, err = DecodeMethod(f.Payload)
	if err != nil || m.Class != ClassConnection {
		return res, nil
	}
	switch m.Method {
	case MethodTune:
		res.Open = true
	case MethodClose:
		code, _, err := decodeClose(m.Args)
		if err == nil {
			res.CloseCode = code
		}
	}
	return res, nil
}
