// Package amqpx implements the AMQP 0-9-1 connection negotiation the
// paper's broker scans exercise: protocol header, Connection.Start /
// Start-Ok with SASL PLAIN, and the accept (Tune) or refuse
// (Close 403 ACCESS_REFUSED) outcomes that define the access-control
// populations of Figure 3.
//
// Framing follows the AMQP 0-9-1 spec: 7-byte frame header (type,
// channel, size), method payloads starting with class and method IDs,
// and the 0xCE frame-end octet.
package amqpx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// ProtocolHeader is the 8-byte preamble opening every AMQP 0-9-1
// connection.
var ProtocolHeader = []byte{'A', 'M', 'Q', 'P', 0, 0, 9, 1}

// Frame types.
const (
	FrameMethod = 1
	frameEnd    = 0xCE
)

// Connection class methods used in negotiation.
const (
	ClassConnection = 10

	MethodStart   = 10
	MethodStartOK = 11
	MethodTune    = 30
	MethodClose   = 50
)

// ReplyAccessRefused is the AMQP reply code for failed authentication.
const ReplyAccessRefused = 403

// Errors returned by the codec and scanner.
var (
	ErrNotAMQP    = errors.New("amqpx: peer does not speak AMQP 0-9-1")
	ErrMalformed  = errors.New("amqpx: malformed frame")
	maxFrameBytes = 128 << 10
)

// Frame is one raw AMQP frame.
type Frame struct {
	Type    byte
	Channel uint16
	Payload []byte
}

// WriteFrame serialises f to w.
func WriteFrame(w io.Writer, f Frame) error {
	hdr := make([]byte, 7, 7+len(f.Payload)+1)
	hdr[0] = f.Type
	binary.BigEndian.PutUint16(hdr[1:], f.Channel)
	binary.BigEndian.PutUint32(hdr[3:], uint32(len(f.Payload)))
	out := append(hdr, f.Payload...)
	out = append(out, frameEnd)
	_, err := w.Write(out)
	return err
}

// ReadFrame parses one frame from r, validating the end octet.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	f := Frame{Type: hdr[0], Channel: binary.BigEndian.Uint16(hdr[1:])}
	size := binary.BigEndian.Uint32(hdr[3:])
	if size > uint32(maxFrameBytes) {
		return Frame{}, fmt.Errorf("%w: frame of %d bytes", ErrMalformed, size)
	}
	buf := make([]byte, size+1)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, ErrMalformed
	}
	if buf[size] != frameEnd {
		return Frame{}, fmt.Errorf("%w: missing frame end", ErrMalformed)
	}
	f.Payload = buf[:size]
	return f, nil
}

// Method is a decoded method frame: class, method, and the argument
// bytes that follow.
type Method struct {
	Class  uint16
	Method uint16
	Args   []byte
}

// DecodeMethod splits a method-frame payload.
func DecodeMethod(payload []byte) (Method, error) {
	if len(payload) < 4 {
		return Method{}, ErrMalformed
	}
	return Method{
		Class:  binary.BigEndian.Uint16(payload),
		Method: binary.BigEndian.Uint16(payload[2:]),
		Args:   payload[4:],
	}, nil
}

// encodeMethod builds a method-frame payload.
func encodeMethod(class, method uint16, args []byte) []byte {
	out := make([]byte, 4, 4+len(args))
	binary.BigEndian.PutUint16(out, class)
	binary.BigEndian.PutUint16(out[2:], method)
	return append(out, args...)
}

// Field encoders: the negotiation uses short strings, long strings, and
// (empty) field tables.

func appendShortStr(b []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	b = append(b, byte(len(s)))
	return append(b, s...)
}

func appendLongStr(b []byte, s string) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	b = append(b, l[:]...)
	return append(b, s...)
}

func readShortStr(b []byte) (string, []byte, error) {
	if len(b) < 1 {
		return "", nil, ErrMalformed
	}
	n := int(b[0])
	b = b[1:]
	if len(b) < n {
		return "", nil, ErrMalformed
	}
	return string(b[:n]), b[n:], nil
}

func readLongStr(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, ErrMalformed
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return "", nil, ErrMalformed
	}
	return string(b[:n]), b[n:], nil
}

// StartArgs are the Connection.Start arguments the scanner records.
type StartArgs struct {
	VersionMajor byte
	VersionMinor byte
	Mechanisms   string // space-separated SASL mechanisms
	Locales      string
	Product      string // from server-properties, when present
}

// encodeStart builds Connection.Start arguments. Server properties are
// encoded as a field table holding a single longstr "product" entry when
// product is non-empty.
func encodeStart(product string) []byte {
	args := []byte{0, 9} // version-major, version-minor
	var table []byte
	if product != "" {
		table = appendShortStr(table, "product")
		table = append(table, 'S')
		table = appendLongStr(table, product)
	}
	var tl [4]byte
	binary.BigEndian.PutUint32(tl[:], uint32(len(table)))
	args = append(args, tl[:]...)
	args = append(args, table...)
	args = appendLongStr(args, "PLAIN AMQPLAIN")
	args = appendLongStr(args, "en_US")
	return args
}

// decodeStart parses Connection.Start arguments.
func decodeStart(args []byte) (StartArgs, error) {
	if len(args) < 2 {
		return StartArgs{}, ErrMalformed
	}
	out := StartArgs{VersionMajor: args[0], VersionMinor: args[1]}
	rest := args[2:]
	// Server properties table.
	if len(rest) < 4 {
		return StartArgs{}, ErrMalformed
	}
	tlen := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < tlen {
		return StartArgs{}, ErrMalformed
	}
	table := rest[:tlen]
	rest = rest[tlen:]
	for len(table) > 0 {
		var key string
		var err error
		key, table, err = readShortStr(table)
		if err != nil || len(table) < 1 {
			break
		}
		typ := table[0]
		table = table[1:]
		if typ != 'S' {
			break // only longstr values are produced by our encoder
		}
		var val string
		val, table, err = readLongStr(table)
		if err != nil {
			break
		}
		if key == "product" {
			out.Product = val
		}
	}
	var err error
	if out.Mechanisms, rest, err = readLongStr(rest); err != nil {
		return StartArgs{}, err
	}
	if out.Locales, _, err = readLongStr(rest); err != nil {
		return StartArgs{}, err
	}
	return out, nil
}

// encodeStartOK builds Connection.Start-Ok arguments with SASL PLAIN
// credentials.
func encodeStartOK(user, pass string) []byte {
	var args []byte
	args = append(args, 0, 0, 0, 0) // empty client-properties table
	args = appendShortStr(args, "PLAIN")
	args = appendLongStr(args, "\x00"+user+"\x00"+pass)
	args = appendShortStr(args, "en_US")
	return args
}

// decodeStartOK extracts mechanism and PLAIN credentials.
func decodeStartOK(args []byte) (mechanism, user, pass string, err error) {
	if len(args) < 4 {
		return "", "", "", ErrMalformed
	}
	tlen := int(binary.BigEndian.Uint32(args))
	args = args[4:]
	if len(args) < tlen {
		return "", "", "", ErrMalformed
	}
	args = args[tlen:]
	if mechanism, args, err = readShortStr(args); err != nil {
		return "", "", "", err
	}
	var response string
	if response, _, err = readLongStr(args); err != nil {
		return "", "", "", err
	}
	if mechanism == "PLAIN" && len(response) > 0 && response[0] == 0 {
		rest := response[1:]
		for i := 0; i < len(rest); i++ {
			if rest[i] == 0 {
				return mechanism, rest[:i], rest[i+1:], nil
			}
		}
	}
	return mechanism, "", "", nil
}

// encodeClose builds Connection.Close arguments.
func encodeClose(code uint16, text string) []byte {
	var args []byte
	var c [2]byte
	binary.BigEndian.PutUint16(c[:], code)
	args = append(args, c[:]...)
	args = appendShortStr(args, text)
	args = append(args, 0, 0, 0, 0) // class-id, method-id of offending method
	return args
}

// decodeClose extracts the reply code and text.
func decodeClose(args []byte) (code uint16, text string, err error) {
	if len(args) < 2 {
		return 0, "", ErrMalformed
	}
	code = binary.BigEndian.Uint16(args)
	text, _, err = readShortStr(args[2:])
	return code, text, err
}

// writeMethod frames and writes one channel-0 method.
func writeMethod(w net.Conn, class, method uint16, args []byte) error {
	return WriteFrame(w, Frame{Type: FrameMethod, Channel: 0, Payload: encodeMethod(class, method, args)})
}
