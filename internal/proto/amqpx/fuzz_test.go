package amqpx

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the frame parser.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: FrameMethod, Channel: 0, Payload: encodeMethod(ClassConnection, MethodStart, encodeStart("RabbitMQ"))})
	f.Add(buf.Bytes())
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0xCE})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		back, err := ReadFrame(&out)
		if err != nil || back.Type != fr.Type || back.Channel != fr.Channel ||
			!bytes.Equal(back.Payload, fr.Payload) {
			t.Fatalf("round trip changed frame: %v", err)
		}
		if m, err := DecodeMethod(fr.Payload); err == nil && m.Class == ClassConnection {
			// The negotiation decoders must not panic on any payload.
			decodeStart(m.Args)
			decodeStartOK(m.Args)
			decodeClose(m.Args)
		}
	})
}
