package amqpx

import (
	"bytes"
	"errors"
	"net"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"ntpscan/internal/netsim"
)

func pair() (net.Conn, net.Conn) {
	return netsim.NewConnPair(
		netip.MustParseAddrPort("[2001:db8::1]:40000"),
		netip.MustParseAddrPort("[2001:db8::2]:5672"))
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(typ byte, channel uint16, payload []byte) bool {
		if typ == 0 {
			typ = 1
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Type: typ, Channel: channel, Payload: payload}); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && got.Type == typ && got.Channel == channel &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsBadEnd(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: 1, Channel: 0, Payload: []byte{1, 2}})
	raw := buf.Bytes()
	raw[len(raw)-1] = 0x00 // corrupt frame end
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v", err)
	}
}

func TestReadFrameRejectsHuge(t *testing.T) {
	hdr := []byte{1, 0, 0, 0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v", err)
	}
}

func TestStartRoundTrip(t *testing.T) {
	args := encodeStart("RabbitMQ")
	got, err := decodeStart(args)
	if err != nil {
		t.Fatal(err)
	}
	if got.VersionMajor != 0 || got.VersionMinor != 9 {
		t.Fatalf("version = %d.%d", got.VersionMajor, got.VersionMinor)
	}
	if got.Mechanisms != "PLAIN AMQPLAIN" || got.Product != "RabbitMQ" {
		t.Fatalf("start = %+v", got)
	}
}

func TestStartNoProduct(t *testing.T) {
	got, err := decodeStart(encodeStart(""))
	if err != nil || got.Product != "" {
		t.Fatalf("start = %+v %v", got, err)
	}
}

func TestStartOKRoundTrip(t *testing.T) {
	mech, user, pass, err := decodeStartOK(encodeStartOK("guest", "s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	if mech != "PLAIN" || user != "guest" || pass != "s3cret" {
		t.Fatalf("decoded %q %q %q", mech, user, pass)
	}
}

func TestCloseRoundTrip(t *testing.T) {
	code, text, err := decodeClose(encodeClose(403, "ACCESS_REFUSED"))
	if err != nil || code != 403 || text != "ACCESS_REFUSED" {
		t.Fatalf("close = %d %q %v", code, text, err)
	}
}

func TestDecodeMethodShort(t *testing.T) {
	if _, err := DecodeMethod([]byte{0, 10}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v", err)
	}
}

func scanBroker(t *testing.T, opts BrokerOptions) *ScanResult {
	t.Helper()
	c, s := pair()
	defer c.Close()
	go ServeConn(s, opts)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	res, err := Scan(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScanOpenBroker(t *testing.T) {
	res := scanBroker(t, BrokerOptions{Product: "RabbitMQ"})
	if !res.Open {
		t.Fatalf("res = %+v", res)
	}
	if res.Start.Product != "RabbitMQ" {
		t.Fatalf("product = %q", res.Start.Product)
	}
}

func TestScanAuthBroker(t *testing.T) {
	res := scanBroker(t, BrokerOptions{
		RequireAuth: true,
		Credentials: map[string]string{"admin": "strongpass"},
	})
	if res.Open {
		t.Fatal("auth broker reported open")
	}
	if res.CloseCode != ReplyAccessRefused {
		t.Fatalf("close code = %d", res.CloseCode)
	}
}

func TestBrokerAcceptsDefaultGuestWhenConfigured(t *testing.T) {
	res := scanBroker(t, BrokerOptions{
		RequireAuth: true,
		Credentials: map[string]string{"guest": "guest"},
	})
	// guest/guest configured: the scanner's default credentials work,
	// which the methodology counts as no effective access control.
	if !res.Open {
		t.Fatalf("res = %+v", res)
	}
}

func TestBrokerRejectsWrongHeader(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go ServeConn(s, BrokerOptions{})
	c.SetDeadline(time.Now().Add(time.Second))
	c.Write([]byte("HTTP/1.1 ")) // 8 bytes, wrong magic
	buf := make([]byte, 8)
	n, _ := c.Read(buf)
	if !bytes.Equal(buf[:n], ProtocolHeader) {
		t.Fatalf("server answered %q, want its protocol header", buf[:n])
	}
}

func TestScanNonAMQPServer(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go func() {
		buf := make([]byte, 16)
		s.Read(buf)
		s.Write([]byte("220 smtp ready\r\n"))
		s.Close()
	}()
	c.SetDeadline(time.Now().Add(time.Second))
	if _, err := Scan(c); err == nil {
		t.Fatal("non-AMQP peer accepted")
	}
}
