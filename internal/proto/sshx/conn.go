package sshx

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
)

// readers pools the buffered readers both ends of the exchange use.
// Heap profiles put per-connection bufio.NewReader among the campaign's
// top allocation sites: every SSH probe paid for two 4 KB buffers (one
// per end) that lived for a handful of short lines.
var readers = sync.Pool{
	New: func() any { return bufio.NewReader(nil) },
}

func getReader(conn net.Conn) *bufio.Reader {
	br := readers.Get().(*bufio.Reader)
	br.Reset(conn)
	return br
}

func putReader(br *bufio.Reader) {
	br.Reset(nil)
	readers.Put(br)
}

// msgHostKey is the packet type byte of our simplified host-key packet.
// Real SSH uses 20 (SSH_MSG_KEXINIT) at this point in the conversation;
// we reuse the number so packet traces look plausible.
const msgHostKey = 20

// clientID is the identification string our scanner presents. Research
// scanners identify themselves (Appendix A.2.2).
const clientID = "SSH-2.0-ntpscan_research_scanner"

// ServerOptions configures a simulated SSH server.
type ServerOptions struct {
	// ID is the full identification string, e.g.
	// "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3".
	ID string
	// HostKey is presented to every client.
	HostKey HostKey
	// Banner lines are sent before the identification string, as RFC
	// 4253 §4.2 permits.
	Banner []string
}

// ServeConn runs the server side of the exchange on conn and closes it:
// banner lines, server ID, read client ID, send host key packet.
func ServeConn(conn net.Conn, opts ServerOptions) {
	Handler(opts)(conn)
}

// Handler returns a connection handler for opts with the static part
// of the exchange — banner lines, identification string, host-key
// packet — encoded once per server rather than once per connection.
// Device hosts serve thousands of probes with identical bytes; the
// per-connection work is one write, one line read, one write.
func Handler(opts ServerOptions) func(net.Conn) {
	var pre []byte
	for _, line := range opts.Banner {
		pre = append(pre, line...)
		pre = append(pre, "\r\n"...)
	}
	pre = append(pre, opts.ID...)
	pre = append(pre, "\r\n"...)
	keyPkt := encodeHostKeyPacket(opts.HostKey)
	return func(conn net.Conn) {
		defer conn.Close()
		if _, err := conn.Write(pre); err != nil {
			return
		}
		br := getReader(conn)
		defer putReader(br)
		line, err := br.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "SSH-") {
			return
		}
		conn.Write(keyPkt)
	}
}

// encodeHostKeyPacket frames the host key as an SSH binary packet:
// uint32 length, then type byte, string key type, string key blob.
func encodeHostKeyPacket(k HostKey) []byte {
	payload := []byte{msgHostKey}
	payload = appendString(payload, []byte(k.Type))
	payload = appendString(payload, k.Blob)
	out := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

func appendString(b, s []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	b = append(b, l[:]...)
	return append(b, s...)
}

// ScanResult is what one SSH grab yields.
type ScanResult struct {
	ID      ServerID
	HostKey *HostKey // nil if the server closed before sending one
	Banner  []string // pre-identification lines, if any
}

// Scan performs the client side on conn: read (banner lines and) the
// server ID, send our ID, read the host key packet. The caller owns conn
// and its deadlines. A server that presents a valid ID but closes before
// the key packet still yields a result with HostKey nil — zgrab records
// such partial grabs too.
func Scan(conn net.Conn) (*ScanResult, error) {
	br := getReader(conn)
	defer putReader(br)
	res := &ScanResult{}

	// RFC 4253 allows arbitrary lines before the identification string.
	for i := 0; ; i++ {
		if i > 32 {
			return nil, ErrTooManyPre
		}
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, ErrNotSSH
		}
		line = strings.TrimRight(line, "\r\n")
		if strings.HasPrefix(line, "SSH-") {
			id, err := ParseServerID(line)
			if err != nil {
				return nil, err
			}
			res.ID = id
			break
		}
		res.Banner = append(res.Banner, line)
	}

	if _, err := io.WriteString(conn, clientID+"\r\n"); err != nil {
		return res, nil // ID grabbed; treat write failure as partial
	}

	key, err := readHostKeyPacket(br)
	if err != nil {
		if errors.Is(err, errNoHostKey) {
			return res, nil
		}
		return nil, err
	}
	res.HostKey = key
	return res, nil
}

func readHostKeyPacket(br *bufio.Reader) (*HostKey, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, errNoHostKey
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:]))
	if n < 1 || n > maxPacketBytes {
		return nil, ErrBadPacket
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, ErrBadPacket
	}
	if payload[0] != msgHostKey {
		return nil, ErrBadPacket
	}
	payload = payload[1:]
	typ, payload, err := readString(payload)
	if err != nil {
		return nil, err
	}
	blob, _, err := readString(payload)
	if err != nil {
		return nil, err
	}
	return &HostKey{Type: string(typ), Blob: blob}, nil
}

func readString(b []byte) (s, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, ErrBadPacket
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n > len(b) {
		return nil, nil, ErrBadPacket
	}
	return b[:n], b[n:], nil
}
