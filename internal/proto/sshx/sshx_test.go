package sshx

import (
	"bufio"
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"ntpscan/internal/netsim"
)

func pair() (net.Conn, net.Conn) {
	return netsim.NewConnPair(
		netip.MustParseAddrPort("[2001:db8::1]:40000"),
		netip.MustParseAddrPort("[2001:db8::2]:22"))
}

func TestParseServerID(t *testing.T) {
	cases := []struct {
		line              string
		software, comment string
		os                string
	}{
		{"SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3", "OpenSSH_9.2p1", "Debian-2+deb12u3", "Debian"},
		{"SSH-2.0-OpenSSH_8.9p1 Ubuntu-3ubuntu0.10", "OpenSSH_8.9p1", "Ubuntu-3ubuntu0.10", "Ubuntu"},
		{"SSH-2.0-OpenSSH_7.9p1 Raspbian-10+deb10u2", "OpenSSH_7.9p1", "Raspbian-10+deb10u2", "Raspbian"},
		{"SSH-2.0-OpenSSH_9.6 FreeBSD-20240701", "OpenSSH_9.6", "FreeBSD-20240701", "FreeBSD"},
		{"SSH-2.0-OpenSSH_9.6p1", "OpenSSH_9.6p1", "", ""},
		{"SSH-2.0-dropbear_2022.83", "dropbear_2022.83", "", ""},
	}
	for _, c := range cases {
		id, err := ParseServerID(c.line)
		if err != nil {
			t.Fatalf("ParseServerID(%q): %v", c.line, err)
		}
		if id.ProtoVersion != "2.0" || id.Software != c.software || id.Comment != c.comment {
			t.Errorf("parsed %q: %+v", c.line, id)
		}
		if got := id.OS(); got != c.os {
			t.Errorf("OS(%q) = %q, want %q", c.line, got, c.os)
		}
	}
}

func TestParseServerIDRejects(t *testing.T) {
	for _, line := range []string{"", "HTTP/1.1 200 OK", "SSH2.0-x", "SSH-2.0"} {
		if _, err := ParseServerID(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestOpenSSHVersion(t *testing.T) {
	id, _ := ParseServerID("SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3")
	if v := id.OpenSSHVersion(); v != "9.2p1" {
		t.Fatalf("version = %q", v)
	}
	drop, _ := ParseServerID("SSH-2.0-dropbear_2022.83")
	if v := drop.OpenSSHVersion(); v != "" {
		t.Fatalf("dropbear version = %q", v)
	}
}

func TestPatchLevel(t *testing.T) {
	cases := []struct {
		comment string
		base    string
		rev     int
		ok      bool
	}{
		{"Debian-2+deb12u3", "Debian-2+deb12u", 3, true},
		{"Raspbian-10+deb10u2", "Raspbian-10+deb10u", 2, true},
		{"Ubuntu-3ubuntu13.4", "Ubuntu-3ubuntu13.", 4, true},
		{"Ubuntu-3ubuntu0.10", "Ubuntu-3ubuntu0.", 10, true},
		{"FreeBSD-20240701", "", 0, false}, // date, not a patch marker ('1' preceded by digit run to start)
		{"", "", 0, false},
		{"Debian", "", 0, false},
	}
	for _, c := range cases {
		id := ServerID{Comment: c.comment}
		base, rev, ok := id.PatchLevel()
		if ok != c.ok || base != c.base || rev != c.rev {
			t.Errorf("PatchLevel(%q) = %q %d %v, want %q %d %v",
				c.comment, base, rev, ok, c.base, c.rev, c.ok)
		}
	}
}

func TestHostKeyFingerprint(t *testing.T) {
	a := HostKey{Type: "ssh-ed25519", Blob: []byte{1, 2, 3}}
	b := HostKey{Type: "ssh-ed25519", Blob: []byte{1, 2, 3}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical keys differ")
	}
	c := HostKey{Type: "ssh-rsa", Blob: []byte{1, 2, 3}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("type not part of fingerprint")
	}
	d := HostKey{Type: "ssh-ed25519", Blob: []byte{9}}
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("blob not part of fingerprint")
	}
	if len(a.FingerprintHex()) != 64 {
		t.Fatal("hex length")
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestScanEndToEnd(t *testing.T) {
	c, s := pair()
	defer c.Close()
	key := HostKey{Type: "ssh-ed25519", Blob: []byte("device-key-1")}
	go ServeConn(s, ServerOptions{
		ID:      "SSH-2.0-OpenSSH_9.2p1 Raspbian-10+deb10u2",
		HostKey: key,
	})
	c.SetDeadline(time.Now().Add(2 * time.Second))
	res, err := Scan(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID.OS() != "Raspbian" {
		t.Fatalf("OS = %q", res.ID.OS())
	}
	if res.HostKey == nil || res.HostKey.Fingerprint() != key.Fingerprint() {
		t.Fatalf("host key = %+v", res.HostKey)
	}
}

func TestScanWithBannerLines(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go ServeConn(s, ServerOptions{
		ID:      "SSH-2.0-OpenSSH_9.6p1 Ubuntu-3ubuntu13.4",
		HostKey: HostKey{Type: "ssh-rsa", Blob: []byte("k")},
		Banner:  []string{"Unauthorized access prohibited", "All sessions are logged"},
	})
	c.SetDeadline(time.Now().Add(2 * time.Second))
	res, err := Scan(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Banner) != 2 || res.Banner[0] != "Unauthorized access prohibited" {
		t.Fatalf("banner = %v", res.Banner)
	}
	if res.ID.OS() != "Ubuntu" {
		t.Fatalf("OS = %q", res.ID.OS())
	}
}

func TestScanNonSSHServer(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go func() {
		s.Write([]byte("220 mail.example.org ESMTP\r\n"))
		// Keep emitting non-SSH lines until the scanner gives up.
		for i := 0; i < 64; i++ {
			if _, err := s.Write([]byte("250 whatever\r\n")); err != nil {
				return
			}
		}
		s.Close()
	}()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := Scan(c); !errors.Is(err, ErrTooManyPre) && !errors.Is(err, ErrNotSSH) {
		t.Fatalf("got %v", err)
	}
}

func TestScanPartialNoHostKey(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go func() {
		s.Write([]byte("SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3\r\n"))
		s.Close() // close before key packet
	}()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	res, err := Scan(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostKey != nil {
		t.Fatal("phantom host key")
	}
	if res.ID.Software != "OpenSSH_9.2p1" {
		t.Fatalf("ID = %+v", res.ID)
	}
}

func TestScanRejectsOversizedPacket(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go func() {
		s.Write([]byte("SSH-2.0-OpenSSH_9.2p1\r\n"))
		// Length prefix far beyond the cap.
		s.Write([]byte{0xff, 0xff, 0xff, 0xff})
		s.Close()
	}()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := Scan(c); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("got %v", err)
	}
}

func TestHostKeyPacketRoundTrip(t *testing.T) {
	key := HostKey{Type: "ecdsa-sha2-nistp256", Blob: []byte{0, 1, 2, 3, 4}}
	enc := encodeHostKeyPacket(key)
	c, s := pair()
	defer c.Close()
	defer s.Close()
	go func() { s.Write(enc) }()
	c.SetDeadline(time.Now().Add(time.Second))
	br := bufio.NewReader(c)
	got, err := readHostKeyPacket(br)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != key.Type || string(got.Blob) != string(key.Blob) {
		t.Fatalf("round trip = %+v", got)
	}
}
