package sshx

import "testing"

// FuzzParseServerID hardens identification parsing against hostile
// banners (the paper's Table 9 tail shows how creative they get).
func FuzzParseServerID(f *testing.F) {
	f.Add("SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3")
	f.Add("SSH-2.0-YouWillNotSeeMyDistro")
	f.Add("SSH-1.99-weird comment with spaces")
	f.Add("not ssh")
	f.Fuzz(func(t *testing.T, line string) {
		id, err := ParseServerID(line)
		if err != nil {
			return
		}
		// Derived extractors must not panic on any accepted ID.
		_ = id.OS()
		_ = id.OpenSSHVersion()
		if base, rev, ok := id.PatchLevel(); ok {
			if rev < 0 || base == "" {
				t.Fatalf("bad patch parse: %q %d", base, rev)
			}
		}
	})
}
