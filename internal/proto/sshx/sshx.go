// Package sshx implements the SSH-2 surface the paper's scans consume:
// the RFC 4253 identification-string exchange and a host-key exchange
// that yields the server's key identity.
//
// The identification exchange is wire-faithful (version lines, optional
// pre-banner lines, CR LF framing). The key exchange is simplified: the
// server sends one SSH-framed KEXINIT-style packet carrying its host key
// blob instead of running a full Diffie-Hellman negotiation — the scan
// only needs key identity (for dedup and reuse analysis, Tables 2/3 and
// §6), never a session key. Field extraction from the server ID (OS
// name, OpenSSH version, Debian-style patch level) matches the paper's
// §4.3.2/§4.4.1 methodology.
package sshx

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Errors returned by the scanner and parsers.
var (
	ErrNotSSH      = errors.New("sshx: peer did not present an SSH identification string")
	ErrBadPacket   = errors.New("sshx: malformed key packet")
	ErrTooManyPre  = errors.New("sshx: too many pre-identification lines")
	errNoHostKey   = errors.New("sshx: connection closed before host key")
	maxPacketBytes = 16 << 10
)

// ServerID is a parsed SSH identification string, e.g.
// "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3".
type ServerID struct {
	Raw          string
	ProtoVersion string // "2.0"
	Software     string // "OpenSSH_9.2p1"
	Comment      string // "Debian-2+deb12u3" (may be empty)
}

// ParseServerID parses one identification line (without line ending).
func ParseServerID(line string) (ServerID, error) {
	if !strings.HasPrefix(line, "SSH-") {
		return ServerID{}, ErrNotSSH
	}
	id := ServerID{Raw: line}
	rest := line[len("SSH-"):]
	proto, rest, ok := strings.Cut(rest, "-")
	if !ok {
		return ServerID{}, ErrNotSSH
	}
	id.ProtoVersion = proto
	id.Software, id.Comment, _ = strings.Cut(rest, " ")
	return id, nil
}

// OS extracts the operating-system name the paper reads from server IDs:
// the token before the first '-' of the comment ("Debian-2+deb12u3" →
// "Debian"). An empty comment yields "".
func (id ServerID) OS() string {
	if id.Comment == "" {
		return ""
	}
	os, _, _ := strings.Cut(id.Comment, "-")
	return os
}

// OpenSSHVersion returns the version part of an OpenSSH software string
// ("OpenSSH_9.2p1" → "9.2p1"), or "" for other software.
func (id ServerID) OpenSSHVersion() string {
	v, ok := strings.CutPrefix(id.Software, "OpenSSH_")
	if !ok {
		return ""
	}
	return v
}

// PatchLevel splits a Debian-style comment into a base release string
// and a numeric patch revision, the granularity of the paper's
// outdatedness analysis (§4.4.1):
//
//	"Debian-2+deb12u3"    → base "Debian-2+deb12u",    rev 3
//	"Raspbian-10+deb10u2" → base "Raspbian-10+deb10u", rev 2
//	"Ubuntu-3ubuntu13.4"  → base "Ubuntu-3ubuntu13.",  rev 4
//
// ok is false when the comment exposes no patch revision (FreeBSD date
// tags, bare comments), excluding the host from the analysis exactly as
// the paper excludes non-Debian-derived servers.
func (id ServerID) PatchLevel() (base string, rev int, ok bool) {
	c := id.Comment
	if c == "" {
		return "", 0, false
	}
	// Find the trailing digit run.
	i := len(c)
	for i > 0 && c[i-1] >= '0' && c[i-1] <= '9' {
		i--
	}
	if i == len(c) || i == 0 {
		return "", 0, false
	}
	// The separator before the revision must be a Debian/Ubuntu patch
	// marker: "uN" or ".N".
	switch c[i-1] {
	case 'u', '.':
	default:
		return "", 0, false
	}
	rev, err := strconv.Atoi(c[i:])
	if err != nil {
		return "", 0, false
	}
	return c[:i], rev, true
}

// HostKey is a server host key: algorithm name plus opaque key blob.
type HostKey struct {
	Type string // e.g. "ssh-ed25519"
	Blob []byte // public key material (opaque identity)
}

// Fingerprint is the SHA-256 digest over type and blob, the dedup key
// ("#Host Keys" in the tables).
func (k HostKey) Fingerprint() [32]byte {
	h := sha256.New()
	h.Write([]byte(k.Type))
	h.Write([]byte{0})
	h.Write(k.Blob)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// FingerprintHex returns the fingerprint in lowercase hex.
func (k HostKey) FingerprintHex() string {
	fp := k.Fingerprint()
	return hex.EncodeToString(fp[:])
}

// String implements fmt.Stringer.
func (k HostKey) String() string {
	return fmt.Sprintf("%s %s", k.Type, k.FingerprintHex()[:16])
}
