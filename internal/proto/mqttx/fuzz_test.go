package mqttx

import (
	"bytes"
	"testing"
)

// FuzzReadPacket hardens the framing layer against hostile peers.
func FuzzReadPacket(f *testing.F) {
	f.Add(EncodeConnect(&ConnectPacket{ProtoName: "MQTT", ProtoLevel: 4, ClientID: "c"}))
	f.Add(EncodeConnack(false, CodeAccepted))
	f.Add([]byte{0x10, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, _, body, err := ReadPacket(bytes.NewReader(data))
		if err != nil {
			return
		}
		if typ == 0 {
			t.Fatal("reserved type accepted")
		}
		if len(body) > maxPacketBytes {
			t.Fatalf("body of %d bytes exceeds cap", len(body))
		}
		if typ == TypeConnect {
			// DecodeConnect must not panic on any accepted body.
			DecodeConnect(body)
		}
	})
}

// FuzzDecodeConnect exercises the CONNECT payload parser directly.
func FuzzDecodeConnect(f *testing.F) {
	conn := EncodeConnect(&ConnectPacket{
		ProtoName: "MQTT", ProtoLevel: 4, ClientID: "dev",
		HasAuth: true, Username: "u", Password: "p",
	})
	// Strip the fixed header (type byte + 1-byte remaining length).
	f.Add(conn[2:])
	f.Add([]byte{0, 4, 'M', 'Q', 'T', 'T', 4, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		p, err := DecodeConnect(body)
		if err != nil {
			return
		}
		enc := EncodeConnect(p)
		_, _, back, err := ReadPacket(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encode unparseable: %v", err)
		}
		p2, err := DecodeConnect(back)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if p2.ProtoName != p.ProtoName || p2.ClientID != p.ClientID ||
			p2.Username != p.Username || p2.Password != p.Password {
			t.Fatalf("round trip changed connect:\n%+v\n%+v", p, p2)
		}
	})
}
