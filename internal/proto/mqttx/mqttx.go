// Package mqttx implements the MQTT 3.1.1 connection establishment the
// paper's IoT scans exercise: CONNECT/CONNACK with authentication
// semantics. A broker either accepts anonymous sessions (the "no access
// control" population of Figure 3) or refuses them with return code 5.
//
// The codec follows the OASIS MQTT 3.1.1 wire format (fixed header with
// variable-length remaining-length field, length-prefixed strings).
package mqttx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Control packet types (high nibble of the fixed header).
const (
	TypeConnect = 1
	TypeConnack = 2
)

// CONNACK return codes (MQTT 3.1.1 §3.2.2.3).
const (
	CodeAccepted           = 0x00
	CodeUnacceptableProto  = 0x01
	CodeIdentifierRejected = 0x02
	CodeServerUnavailable  = 0x03
	CodeBadCredentials     = 0x04
	CodeNotAuthorized      = 0x05
)

// Errors returned by codec and scan functions.
var (
	ErrNotMQTT     = errors.New("mqttx: not an MQTT response")
	ErrMalformed   = errors.New("mqttx: malformed packet")
	ErrTooLarge    = errors.New("mqttx: remaining length exceeds limit")
	maxPacketBytes = 64 << 10
)

// ConnectPacket is a parsed CONNECT.
type ConnectPacket struct {
	ProtoName  string // "MQTT" (3.1.1) or "MQIsdp" (3.1)
	ProtoLevel byte   // 4 for 3.1.1
	CleanStart bool
	KeepAlive  uint16
	ClientID   string
	Username   string
	Password   string
	HasAuth    bool // username flag was set
}

// EncodeConnect serialises a CONNECT packet.
func EncodeConnect(p *ConnectPacket) []byte {
	var body []byte
	body = appendMQTTString(body, p.ProtoName)
	body = append(body, p.ProtoLevel)
	var flags byte
	if p.CleanStart {
		flags |= 0x02
	}
	if p.HasAuth {
		flags |= 0x80 | 0x40 // username + password
	}
	body = append(body, flags)
	var ka [2]byte
	binary.BigEndian.PutUint16(ka[:], p.KeepAlive)
	body = append(body, ka[:]...)
	body = appendMQTTString(body, p.ClientID)
	if p.HasAuth {
		body = appendMQTTString(body, p.Username)
		body = appendMQTTString(body, p.Password)
	}
	return frame(TypeConnect, 0, body)
}

// DecodeConnect parses a CONNECT packet body (after the fixed header).
func DecodeConnect(body []byte) (*ConnectPacket, error) {
	p := &ConnectPacket{}
	var err error
	if p.ProtoName, body, err = readMQTTString(body); err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, ErrMalformed
	}
	p.ProtoLevel = body[0]
	flags := body[1]
	p.CleanStart = flags&0x02 != 0
	p.KeepAlive = binary.BigEndian.Uint16(body[2:4])
	body = body[4:]
	if p.ClientID, body, err = readMQTTString(body); err != nil {
		return nil, err
	}
	if flags&0x04 != 0 { // will flag: skip will topic + message
		if _, body, err = readMQTTString(body); err != nil {
			return nil, err
		}
		if _, body, err = readMQTTString(body); err != nil {
			return nil, err
		}
	}
	if flags&0x80 != 0 {
		p.HasAuth = true
		if p.Username, body, err = readMQTTString(body); err != nil {
			return nil, err
		}
		if flags&0x40 != 0 {
			if p.Password, _, err = readMQTTString(body); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// EncodeConnack serialises a CONNACK with the given return code.
func EncodeConnack(sessionPresent bool, code byte) []byte {
	sp := byte(0)
	if sessionPresent {
		sp = 1
	}
	return frame(TypeConnack, 0, []byte{sp, code})
}

// frame prepends the fixed header.
func frame(typ, flags byte, body []byte) []byte {
	out := []byte{typ<<4 | flags&0x0f}
	out = appendRemainingLength(out, len(body))
	return append(out, body...)
}

// appendRemainingLength encodes the MQTT variable-length integer.
func appendRemainingLength(b []byte, n int) []byte {
	for {
		d := byte(n % 128)
		n /= 128
		if n > 0 {
			b = append(b, d|0x80)
		} else {
			return append(b, d)
		}
	}
}

// ReadPacket reads one MQTT control packet from r, returning its type,
// flags, and body.
func ReadPacket(r io.Reader) (typ, flags byte, body []byte, err error) {
	var hdr [1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	typ, flags = hdr[0]>>4, hdr[0]&0x0f
	if typ == 0 {
		return 0, 0, nil, ErrMalformed
	}
	n, err := readRemainingLength(r)
	if err != nil {
		return 0, 0, nil, err
	}
	if n > maxPacketBytes {
		return 0, 0, nil, ErrTooLarge
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, ErrMalformed
	}
	return typ, flags, body, nil
}

func readRemainingLength(r io.Reader) (int, error) {
	mult, val := 1, 0
	for i := 0; i < 4; i++ {
		var b [1]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, ErrMalformed
		}
		val += int(b[0]&0x7f) * mult
		if b[0]&0x80 == 0 {
			return val, nil
		}
		mult *= 128
	}
	return 0, fmt.Errorf("%w: remaining length over 4 bytes", ErrMalformed)
}

func appendMQTTString(b []byte, s string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	b = append(b, l[:]...)
	return append(b, s...)
}

func readMQTTString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrMalformed
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, ErrMalformed
	}
	return string(b[:n]), b[n:], nil
}
