package mqttx

import (
	"bytes"
	"errors"
	"net"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"ntpscan/internal/netsim"
)

func pair() (net.Conn, net.Conn) {
	return netsim.NewConnPair(
		netip.MustParseAddrPort("[2001:db8::1]:40000"),
		netip.MustParseAddrPort("[2001:db8::2]:1883"))
}

func TestConnectRoundTrip(t *testing.T) {
	p := &ConnectPacket{
		ProtoName: "MQTT", ProtoLevel: 4, CleanStart: true,
		KeepAlive: 60, ClientID: "sensor-7",
		HasAuth: true, Username: "user", Password: "pass",
	}
	enc := EncodeConnect(p)
	typ, _, body, err := ReadPacket(bytes.NewReader(enc))
	if err != nil || typ != TypeConnect {
		t.Fatalf("ReadPacket: %d %v", typ, err)
	}
	got, err := DecodeConnect(body)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestConnectAnonymousRoundTrip(t *testing.T) {
	p := &ConnectPacket{ProtoName: "MQTT", ProtoLevel: 4, ClientID: "c"}
	_, _, body, err := ReadPacket(bytes.NewReader(EncodeConnect(p)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeConnect(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasAuth || got.Username != "" {
		t.Fatalf("anonymous decode = %+v", got)
	}
}

func TestRemainingLengthEncoding(t *testing.T) {
	// Spec examples: 127 -> 0x7F; 128 -> 0x80 0x01; 16383 -> 0xFF 0x7F.
	cases := []struct {
		n    int
		want []byte
	}{
		{0, []byte{0x00}},
		{127, []byte{0x7f}},
		{128, []byte{0x80, 0x01}},
		{16383, []byte{0xff, 0x7f}},
		{16384, []byte{0x80, 0x80, 0x01}},
	}
	for _, c := range cases {
		got := appendRemainingLength(nil, c.n)
		if !bytes.Equal(got, c.want) {
			t.Errorf("encode(%d) = %x, want %x", c.n, got, c.want)
		}
		dec, err := readRemainingLength(bytes.NewReader(got))
		if err != nil || dec != c.n {
			t.Errorf("decode(%x) = %d %v", got, dec, err)
		}
	}
}

func TestRemainingLengthProperty(t *testing.T) {
	f := func(n uint16) bool {
		enc := appendRemainingLength(nil, int(n))
		dec, err := readRemainingLength(bytes.NewReader(enc))
		return err == nil && dec == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadPacketLimits(t *testing.T) {
	// Remaining length over the cap.
	huge := append([]byte{TypeConnect << 4}, appendRemainingLength(nil, maxPacketBytes+1)...)
	if _, _, _, err := ReadPacket(bytes.NewReader(huge)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
	// Truncated body.
	short := append([]byte{TypeConnect << 4}, appendRemainingLength(nil, 10)...)
	if _, _, _, err := ReadPacket(bytes.NewReader(short)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v", err)
	}
	// Type 0 is reserved.
	if _, _, _, err := ReadPacket(bytes.NewReader([]byte{0x00, 0x00})); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v", err)
	}
}

func TestDecodeConnectMalformed(t *testing.T) {
	for _, body := range [][]byte{
		{},
		{0, 4, 'M', 'Q'},           // truncated proto name
		{0, 4, 'M', 'Q', 'T', 'T'}, // missing level/flags
	} {
		if _, err := DecodeConnect(body); err == nil {
			t.Errorf("accepted %x", body)
		}
	}
}

func TestDecodeConnectSkipsWill(t *testing.T) {
	var body []byte
	body = appendMQTTString(body, "MQTT")
	body = append(body, 4, 0x04) // will flag
	body = append(body, 0, 30)
	body = appendMQTTString(body, "client")
	body = appendMQTTString(body, "will/topic")
	body = appendMQTTString(body, "gone")
	p, err := DecodeConnect(body)
	if err != nil {
		t.Fatal(err)
	}
	if p.ClientID != "client" {
		t.Fatalf("client = %q", p.ClientID)
	}
}

func scanBroker(t *testing.T, opts BrokerOptions) *ScanResult {
	t.Helper()
	c, s := pair()
	defer c.Close()
	go ServeConn(s, opts)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	res, err := Scan(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScanOpenBroker(t *testing.T) {
	res := scanBroker(t, BrokerOptions{})
	if !res.Open || res.ReturnCode != CodeAccepted {
		t.Fatalf("res = %+v", res)
	}
}

func TestScanAuthBroker(t *testing.T) {
	res := scanBroker(t, BrokerOptions{RequireAuth: true})
	if res.Open || res.ReturnCode != CodeNotAuthorized {
		t.Fatalf("res = %+v", res)
	}
	if !res.Connected {
		t.Fatal("auth-refusing broker still spoke MQTT")
	}
}

func TestBrokerAcceptsGoodCredentials(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go ServeConn(s, BrokerOptions{RequireAuth: true, Credentials: map[string]string{"u": "p"}})
	req := &ConnectPacket{ProtoName: "MQTT", ProtoLevel: 4, ClientID: "x", HasAuth: true, Username: "u", Password: "p"}
	c.SetDeadline(time.Now().Add(time.Second))
	c.Write(EncodeConnect(req))
	typ, _, body, err := ReadPacket(c)
	if err != nil || typ != TypeConnack || body[1] != CodeAccepted {
		t.Fatalf("connack = %d %x %v", typ, body, err)
	}
}

func TestBrokerRejectsBadCredentials(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go ServeConn(s, BrokerOptions{RequireAuth: true, Credentials: map[string]string{"u": "p"}})
	req := &ConnectPacket{ProtoName: "MQTT", ProtoLevel: 4, ClientID: "x", HasAuth: true, Username: "u", Password: "wrong"}
	c.SetDeadline(time.Now().Add(time.Second))
	c.Write(EncodeConnect(req))
	_, _, body, err := ReadPacket(c)
	if err != nil || body[1] != CodeBadCredentials {
		t.Fatalf("connack = %x %v", body, err)
	}
}

func TestBrokerRejectsOldProtocol(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go ServeConn(s, BrokerOptions{})
	req := &ConnectPacket{ProtoName: "MQIsdp", ProtoLevel: 3, ClientID: "x"}
	c.SetDeadline(time.Now().Add(time.Second))
	c.Write(EncodeConnect(req))
	_, _, body, err := ReadPacket(c)
	if err != nil || body[1] != CodeUnacceptableProto {
		t.Fatalf("connack = %x %v", body, err)
	}
}

func TestScanNonMQTTServer(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go func() {
		buf := make([]byte, 64)
		s.Read(buf)
		s.Write([]byte("SSH-2.0-OpenSSH_9.2\r\n"))
		s.Close()
	}()
	c.SetDeadline(time.Now().Add(time.Second))
	if _, err := Scan(c); err == nil {
		t.Fatal("non-MQTT peer accepted")
	}
}
