package mqttx

import (
	"net"
)

// BrokerOptions configures a simulated MQTT broker's connection policy.
type BrokerOptions struct {
	// RequireAuth refuses anonymous CONNECTs with return code 5 — the
	// "access control enabled" population of the paper's Figure 3.
	RequireAuth bool
	// Credentials, when RequireAuth is set, lists accepted
	// username→password pairs. An empty map accepts no one (the scan
	// still observes "auth required", which is all Figure 3 needs).
	Credentials map[string]string
}

// ServeConn handles one client connection: read CONNECT, answer CONNACK
// per policy, then close (the scanner disconnects after CONNACK anyway).
func ServeConn(conn net.Conn, opts BrokerOptions) {
	defer conn.Close()
	typ, _, body, err := ReadPacket(conn)
	if err != nil || typ != TypeConnect {
		return
	}
	connect, err := DecodeConnect(body)
	if err != nil {
		return
	}
	if connect.ProtoLevel != 4 || connect.ProtoName != "MQTT" {
		conn.Write(EncodeConnack(false, CodeUnacceptableProto))
		return
	}
	if opts.RequireAuth {
		if !connect.HasAuth {
			conn.Write(EncodeConnack(false, CodeNotAuthorized))
			return
		}
		if pw, ok := opts.Credentials[connect.Username]; !ok || pw != connect.Password {
			conn.Write(EncodeConnack(false, CodeBadCredentials))
			return
		}
	}
	conn.Write(EncodeConnack(false, CodeAccepted))
}

// Handler returns a netsim-compatible stream handler for the broker.
func Handler(opts BrokerOptions) func(net.Conn) {
	return func(conn net.Conn) { ServeConn(conn, opts) }
}

// ScanResult is the outcome of one MQTT grab.
type ScanResult struct {
	// Connected is true when the broker spoke valid MQTT at all.
	Connected bool
	// ReturnCode is the CONNACK return code.
	ReturnCode byte
	// Open means an anonymous session was accepted: no access control.
	Open bool
}

// Scan attempts an anonymous MQTT 3.1.1 session on conn. The caller owns
// conn and deadlines.
func Scan(conn net.Conn) (*ScanResult, error) {
	req := &ConnectPacket{
		ProtoName:  "MQTT",
		ProtoLevel: 4,
		CleanStart: true,
		KeepAlive:  30,
		ClientID:   "ntpscan-probe",
	}
	if _, err := conn.Write(EncodeConnect(req)); err != nil {
		return nil, err
	}
	typ, _, body, err := ReadPacket(conn)
	if err != nil {
		return nil, ErrNotMQTT
	}
	if typ != TypeConnack || len(body) < 2 {
		return nil, ErrNotMQTT
	}
	code := body[1]
	return &ScanResult{
		Connected:  true,
		ReturnCode: code,
		Open:       code == CodeAccepted,
	}, nil
}
