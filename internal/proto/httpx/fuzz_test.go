package httpx

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzReadResponse hardens the HTTP response parser against arbitrary
// servers.
func FuzzReadResponse(f *testing.F) {
	f.Add("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
	f.Add("HTTP/1.0 404 Not Found\r\n\r\n")
	f.Add("garbage")
	f.Add("HTTP/1.1 200 OK\r\nContent-Length: 999999999999\r\n\r\nx")
	f.Fuzz(func(t *testing.T, raw string) {
		resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)))
		if err != nil {
			return
		}
		if resp.StatusCode < 100 || resp.StatusCode > 599 {
			t.Fatalf("accepted status %d", resp.StatusCode)
		}
		if len(resp.Body) > maxBodyBytes {
			t.Fatalf("body of %d bytes exceeds cap", len(resp.Body))
		}
		_ = resp.Title()
	})
}

// FuzzExtractTitle must never panic and always return collapsed text.
func FuzzExtractTitle(f *testing.F) {
	f.Add("<title>ok</title>")
	f.Add("<TITLE foo=bar>x</TITLE>")
	f.Add("<title><title></title>")
	f.Fuzz(func(t *testing.T, doc string) {
		title := ExtractTitle(doc)
		if strings.ContainsAny(title, "\n\t\r") {
			t.Fatalf("title not collapsed: %q", title)
		}
	})
}
