package httpx

import (
	"bufio"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"ntpscan/internal/netsim"
)

func pair() (net.Conn, net.Conn) {
	return netsim.NewConnPair(
		netip.MustParseAddrPort("[2001:db8::1]:40000"),
		netip.MustParseAddrPort("[2001:db8::2]:80"))
}

func doGet(t *testing.T, opts ServerOptions, host string) *Response {
	t.Helper()
	c, s := pair()
	defer c.Close()
	go ServeConn(s, opts)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	resp, err := Get(c, host, "/")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	return resp
}

func TestGetTitlePage(t *testing.T) {
	resp := doGet(t, ServerOptions{Title: "FRITZ!Box", ServerHeader: "AVM"}, "")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Title(); got != "FRITZ!Box" {
		t.Fatalf("title = %q", got)
	}
	if resp.Header["Server"] != "AVM" {
		t.Fatalf("server header = %q", resp.Header["Server"])
	}
	if resp.Proto != "HTTP/1.1" {
		t.Fatalf("proto = %q", resp.Proto)
	}
}

func TestGetNoTitle(t *testing.T) {
	resp := doGet(t, ServerOptions{}, "")
	if resp.StatusCode != 200 || resp.Title() != "" {
		t.Fatalf("resp = %d title %q", resp.StatusCode, resp.Title())
	}
}

func TestGetCustomStatus(t *testing.T) {
	resp := doGet(t, ServerOptions{Title: "Login", StatusCode: 401}, "")
	if resp.StatusCode != 401 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestRequireHost(t *testing.T) {
	opts := ServerOptions{Title: "real site", RequireHost: true, HostErrorTitle: "Host Europe GmbH"}
	// Without Host: provider error page.
	resp := doGet(t, opts, "")
	if resp.StatusCode != 404 || resp.Title() != "Host Europe GmbH" {
		t.Fatalf("no-host resp = %d %q", resp.StatusCode, resp.Title())
	}
	// With Host: the real page.
	resp = doGet(t, opts, "example.org")
	if resp.StatusCode != 200 || resp.Title() != "real site" {
		t.Fatalf("host resp = %d %q", resp.StatusCode, resp.Title())
	}
}

func TestCustomBody(t *testing.T) {
	resp := doGet(t, ServerOptions{Body: "<html><head><TITLE>Welcome to nginx!</TITLE></head></html>"}, "")
	if got := resp.Title(); got != "Welcome to nginx!" {
		t.Fatalf("title = %q", got)
	}
}

func TestMalformedRequestGets400(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go ServeConn(s, ServerOptions{Title: "x"})
	c.Write([]byte("NONSENSE\r\n\r\n"))
	c.SetDeadline(time.Now().Add(time.Second))
	resp, err := ReadResponse(bufioReader(c))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPostRejected(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go ServeConn(s, ServerOptions{Title: "x"})
	c.Write([]byte("POST / HTTP/1.1\r\nHost: a\r\n\r\n"))
	c.SetDeadline(time.Now().Add(time.Second))
	resp, err := ReadResponse(bufioReader(c))
	if err != nil || resp.StatusCode != 400 {
		t.Fatalf("resp = %+v %v", resp, err)
	}
}

func TestHeadHasNoBody(t *testing.T) {
	c, s := pair()
	defer c.Close()
	go ServeConn(s, ServerOptions{Title: "x"})
	c.Write([]byte("HEAD / HTTP/1.1\r\nHost: a\r\n\r\n"))
	c.SetDeadline(time.Now().Add(time.Second))
	resp, err := ReadResponse(bufioReader(c))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("resp = %+v %v", resp, err)
	}
	if len(resp.Body) != 0 {
		t.Fatalf("HEAD body = %q", resp.Body)
	}
}

func TestExtractTitle(t *testing.T) {
	cases := []struct {
		doc, want string
	}{
		{"<html><title>Simple</title></html>", "Simple"},
		{"<TITLE>Upper</TITLE>", "Upper"},
		{`<title lang="en">Attr</title>`, "Attr"},
		{"<title>  spaced \n\t out  </title>", "spaced out"},
		{"<html><body>no title</body></html>", ""},
		{"<title>unclosed", ""},
		{"<title", ""},
		{"", ""},
		{"<title></title>", ""},
		{"<title>first</title><title>second</title>", "first"},
	}
	for _, c := range cases {
		if got := ExtractTitle(c.doc); got != c.want {
			t.Errorf("ExtractTitle(%q) = %q, want %q", c.doc, got, c.want)
		}
	}
}

func TestCanonicalHeaderNames(t *testing.T) {
	cases := map[string]string{
		"content-length": "Content-Length",
		"SERVER":         "Server",
		" x-powered-by ": "X-Powered-By",
	}
	for in, want := range cases {
		if got := canonical(in); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReadResponseMalformed(t *testing.T) {
	for _, raw := range []string{
		"garbage\r\n\r\n",
		"HTTP/1.1 banana OK\r\n\r\n",
		"HTTP/1.1 99 Too Low\r\n\r\n",
	} {
		if _, err := ReadResponse(bufioReaderFromString(raw)); err == nil {
			t.Errorf("accepted %q", raw)
		}
	}
}

func TestReadResponseContentLength(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhelloEXTRA"
	resp, err := ReadResponse(bufioReaderFromString(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "hello" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestReadResponseNoContentLength(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\n\r\neverything to eof"
	resp, err := ReadResponse(bufioReaderFromString(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "everything to eof" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestStatusText(t *testing.T) {
	if statusText(200) != "OK" || statusText(404) != "Not Found" {
		t.Fatal("common codes wrong")
	}
	if statusText(299) != "Unknown" {
		t.Fatal("fallback wrong")
	}
}

func bufioReader(c net.Conn) *bufio.Reader { return bufio.NewReader(c) }
func bufioReaderFromString(s string) *bufio.Reader {
	return bufio.NewReader(strings.NewReader(s))
}
