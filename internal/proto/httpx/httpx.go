// Package httpx implements the minimal HTTP/1.1 client and server the
// scan pipeline uses. The client issues one GET and parses the response
// (status, headers, body, HTML title); the server renders device web
// interfaces from a small template model.
//
// Both ends speak real HTTP/1.1 over any net.Conn — plain TCP, the
// netsim fabric, tlsx, or stdlib crypto/tls — so the scanner code is the
// same for HTTP and HTTPS and for simulation and real sockets.
package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// maxBodyBytes bounds how much of a response body the client retains,
// like zgrab2's body truncation. Titles live in the first kilobytes.
const maxBodyBytes = 64 << 10

// maxHeaderBytes bounds the header section to keep malicious or broken
// servers from ballooning memory.
const maxHeaderBytes = 32 << 10

// Response is a parsed HTTP response.
type Response struct {
	Proto      string // e.g. "HTTP/1.1"
	StatusCode int
	Status     string            // e.g. "200 OK"
	Header     map[string]string // canonicalised field names, last wins
	Body       []byte            // up to maxBodyBytes
}

// Errors returned by the client.
var (
	ErrMalformedResponse = errors.New("httpx: malformed response")
)

// Get writes a GET request for path with the given Host header (empty
// means the header is omitted — the address-literal probing mode of mass
// scans) and parses the response. The caller owns conn and its deadlines.
func Get(conn net.Conn, host, path string) (*Response, error) {
	if path == "" {
		path = "/"
	}
	var req strings.Builder
	fmt.Fprintf(&req, "GET %s HTTP/1.1\r\n", path)
	if host != "" {
		fmt.Fprintf(&req, "Host: %s\r\n", host)
	}
	req.WriteString("User-Agent: ntpscan-research-scanner/1.0 (+https://example.edu/scan)\r\n")
	req.WriteString("Accept: */*\r\n")
	req.WriteString("Connection: close\r\n\r\n")
	if _, err := io.WriteString(conn, req.String()); err != nil {
		return nil, err
	}
	return ReadResponse(bufio.NewReader(io.LimitReader(conn, maxHeaderBytes+maxBodyBytes+4096)))
}

// ReadResponse parses an HTTP/1.x response from r.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	proto, rest, ok := strings.Cut(line, " ")
	if !ok || !strings.HasPrefix(proto, "HTTP/") {
		return nil, ErrMalformedResponse
	}
	codeStr, _, _ := strings.Cut(rest, " ")
	code, err := strconv.Atoi(codeStr)
	if err != nil || code < 100 || code > 599 {
		return nil, ErrMalformedResponse
	}
	resp := &Response{
		Proto:      proto,
		StatusCode: code,
		Status:     rest,
		Header:     make(map[string]string),
	}
	total := 0
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if line == "" {
			break
		}
		total += len(line)
		if total > maxHeaderBytes {
			return nil, ErrMalformedResponse
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			continue // tolerate junk header lines
		}
		resp.Header[canonical(name)] = strings.TrimSpace(value)
	}

	// Body: honour Content-Length when present, otherwise read to EOF
	// (Connection: close semantics). Chunked encoding is not emitted by
	// our servers and therefore not implemented; a chunked body is
	// retained raw.
	limit := int64(maxBodyBytes)
	if cl, ok := resp.Header["Content-Length"]; ok {
		if n, err := strconv.ParseInt(cl, 10, 64); err == nil && n >= 0 && n < limit {
			limit = n
		}
	}
	body, err := io.ReadAll(io.LimitReader(r, limit))
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	resp.Body = body
	return resp, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if errors.Is(err, io.EOF) && line != "" {
			// Tolerate a final unterminated line.
			return strings.TrimRight(line, "\r\n"), nil
		}
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// canonical normalises a header field name (Content-Length style).
func canonical(name string) string {
	name = strings.TrimSpace(name)
	parts := strings.Split(name, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// Title extracts the contents of the first <title> element from the
// response body, whitespace-collapsed. It returns "" when no title is
// present — the "(no title present)" group of Table 3.
func (r *Response) Title() string {
	return ExtractTitle(string(r.Body))
}

// ExtractTitle finds the first <title>...</title> in doc,
// case-insensitively, and returns its collapsed text content.
//
// Matching uses ASCII case folding on the raw bytes: strings.ToLower can
// change the byte length of non-ASCII input, which would desynchronise
// offsets from the original document (found by fuzzing; scan targets
// serve arbitrary bytes).
func ExtractTitle(doc string) string {
	start := asciiIndexFold(doc, "<title")
	if start < 0 {
		return ""
	}
	// Skip to the end of the opening tag (it may carry attributes).
	openEnd := strings.IndexByte(doc[start:], '>')
	if openEnd < 0 {
		return ""
	}
	contentStart := start + openEnd + 1
	end := asciiIndexFold(doc[contentStart:], "</title")
	if end < 0 {
		return ""
	}
	return strings.Join(strings.Fields(doc[contentStart:contentStart+end]), " ")
}

// asciiIndexFold returns the first index of sub in s, comparing bytes
// with ASCII case folding. sub must be lowercase ASCII.
func asciiIndexFold(s, sub string) int {
	if len(sub) == 0 {
		return 0
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != sub[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}
