// Package httpx implements the minimal HTTP/1.1 client and server the
// scan pipeline uses. The client issues one GET and parses the response
// (status, headers, body, HTML title); the server renders device web
// interfaces from a small template model.
//
// Both ends speak real HTTP/1.1 over any net.Conn — plain TCP, the
// netsim fabric, tlsx, or stdlib crypto/tls — so the scanner code is the
// same for HTTP and HTTPS and for simulation and real sockets.
package httpx

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// maxBodyBytes bounds how much of a response body the client retains,
// like zgrab2's body truncation. Titles live in the first kilobytes.
const maxBodyBytes = 64 << 10

// maxHeaderBytes bounds the header section to keep malicious or broken
// servers from ballooning memory.
const maxHeaderBytes = 32 << 10

// Response is a parsed HTTP response.
type Response struct {
	Proto      string // e.g. "HTTP/1.1"
	StatusCode int
	Status     string            // e.g. "200 OK"
	Header     map[string]string // canonicalised field names, last wins
	Body       []byte            // up to maxBodyBytes
}

// Errors returned by the client.
var (
	ErrMalformedResponse = errors.New("httpx: malformed response")
)

// reqTrailer is the constant tail of every request we emit.
const reqTrailer = "User-Agent: ntpscan-research-scanner/1.0 (+https://example.edu/scan)\r\n" +
	"Accept: */*\r\n" +
	"Connection: close\r\n\r\n"

// defaultGET is the request of the mass-scan probing mode (no Host
// header, root path) — the only request the campaign hot path sends,
// precomputed so Get builds nothing per probe.
const defaultGET = "GET / HTTP/1.1\r\n" + reqTrailer

// clientReader is the pooled read side of one Get call: the byte-limit
// guard and the buffered reader, recycled together so a probe allocates
// neither.
type clientReader struct {
	lr io.LimitedReader
	br *bufio.Reader
}

var clientReaders = sync.Pool{
	New: func() any {
		cr := &clientReader{}
		cr.br = bufio.NewReader(&cr.lr)
		return cr
	},
}

// Get writes a GET request for path with the given Host header (empty
// means the header is omitted — the address-literal probing mode of mass
// scans) and parses the response. The caller owns conn and its deadlines.
func Get(conn net.Conn, host, path string) (*Response, error) {
	if path == "" {
		path = "/"
	}
	if host == "" && path == "/" {
		if _, err := io.WriteString(conn, defaultGET); err != nil {
			return nil, err
		}
	} else {
		var req strings.Builder
		fmt.Fprintf(&req, "GET %s HTTP/1.1\r\n", path)
		if host != "" {
			fmt.Fprintf(&req, "Host: %s\r\n", host)
		}
		req.WriteString(reqTrailer)
		if _, err := io.WriteString(conn, req.String()); err != nil {
			return nil, err
		}
	}
	cr := clientReaders.Get().(*clientReader)
	cr.lr.R = conn
	cr.lr.N = maxHeaderBytes + maxBodyBytes + 4096
	cr.br.Reset(&cr.lr)
	resp, err := ReadResponse(cr.br)
	cr.lr.R = nil
	cr.br.Reset(&cr.lr) // drop any buffered reference to conn's data
	clientReaders.Put(cr)
	return resp, err
}

// ReadResponse parses an HTTP/1.x response from r.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	proto, rest, ok := strings.Cut(line, " ")
	if !ok || !strings.HasPrefix(proto, "HTTP/") {
		return nil, ErrMalformedResponse
	}
	codeStr, _, _ := strings.Cut(rest, " ")
	code, err := strconv.Atoi(codeStr)
	if err != nil || code < 100 || code > 599 {
		return nil, ErrMalformedResponse
	}
	resp := &Response{
		Proto:      proto,
		StatusCode: code,
		Status:     rest,
		Header:     make(map[string]string),
	}
	total := 0
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if line == "" {
			break
		}
		total += len(line)
		if total > maxHeaderBytes {
			return nil, ErrMalformedResponse
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			continue // tolerate junk header lines
		}
		resp.Header[canonical(name)] = strings.TrimSpace(value)
	}

	// Body: honour Content-Length when present, otherwise read to EOF
	// (Connection: close semantics). Chunked encoding is not emitted by
	// our servers and therefore not implemented; a chunked body is
	// retained raw.
	limit := int64(maxBodyBytes)
	sized := false
	if cl, ok := resp.Header["Content-Length"]; ok {
		if n, err := strconv.ParseInt(cl, 10, 64); err == nil && n >= 0 && n < limit {
			limit, sized = n, true
		}
	}
	if sized {
		// A declared length lets the body land in one right-sized
		// allocation instead of io.ReadAll's doubling growth.
		buf := make([]byte, limit)
		n, err := io.ReadFull(r, buf)
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, err
		}
		resp.Body = buf[:n]
		return resp, nil
	}
	body, err := io.ReadAll(io.LimitReader(r, limit))
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	resp.Body = body
	return resp, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if errors.Is(err, io.EOF) && line != "" {
			// Tolerate a final unterminated line.
			return strings.TrimRight(line, "\r\n"), nil
		}
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// canonical normalises a header field name (Content-Length style).
// Well-formed senders — every server in the fabric — already emit
// canonical names, so the common case returns the input unchanged
// without the split/rejoin allocations.
func canonical(name string) string {
	name = strings.TrimSpace(name)
	if isCanonical(name) {
		return name
	}
	parts := strings.Split(name, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// isCanonical reports whether name is already in Canonical-Form: each
// dash-separated part starts with an uppercase (or non-letter) byte
// followed by no uppercase letters.
func isCanonical(name string) bool {
	first := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '-' {
			first = true
			continue
		}
		if first {
			if c >= 'a' && c <= 'z' {
				return false
			}
		} else if c >= 'A' && c <= 'Z' {
			return false
		}
		first = false
	}
	return true
}

// Title extracts the contents of the first <title> element from the
// response body, whitespace-collapsed. It returns "" when no title is
// present — the "(no title present)" group of Table 3. It works on the
// body bytes directly: stringifying a 64 KB body to find a 30-byte
// title was one of the scan path's larger per-probe allocations.
func (r *Response) Title() string {
	return extractTitle(r.Body)
}

// ExtractTitle finds the first <title>...</title> in doc,
// case-insensitively, and returns its collapsed text content.
//
// Matching uses ASCII case folding on the raw bytes: strings.ToLower can
// change the byte length of non-ASCII input, which would desynchronise
// offsets from the original document (found by fuzzing; scan targets
// serve arbitrary bytes).
func ExtractTitle(doc string) string {
	return extractTitle([]byte(doc))
}

func extractTitle(doc []byte) string {
	start := asciiIndexFold(doc, "<title")
	if start < 0 {
		return ""
	}
	// Skip to the end of the opening tag (it may carry attributes).
	openEnd := bytes.IndexByte(doc[start:], '>')
	if openEnd < 0 {
		return ""
	}
	contentStart := start + openEnd + 1
	end := asciiIndexFold(doc[contentStart:], "</title")
	if end < 0 {
		return ""
	}
	return strings.Join(strings.Fields(string(doc[contentStart:contentStart+end])), " ")
}

// asciiIndexFold returns the first index of sub in s, comparing bytes
// with ASCII case folding. sub must be lowercase ASCII.
func asciiIndexFold(s []byte, sub string) int {
	if len(sub) == 0 {
		return 0
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != sub[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}
