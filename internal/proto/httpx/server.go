package httpx

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// serverReaders pools the per-connection buffered readers; a device
// answers one request per connection, so the reader's lifetime is one
// ServeConn call.
var serverReaders = sync.Pool{
	New: func() any { return bufio.NewReader(nil) },
}

// responseBufs pools the response assembly buffers so writeResponse
// neither grows a fresh strings.Builder nor double-copies it into a
// []byte for conn.Write.
var responseBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// ServerOptions describes the web interface a simulated device presents.
type ServerOptions struct {
	// Title is the HTML page title (device model pages, default pages,
	// hosting placeholders). Empty renders a titleless page.
	Title string
	// StatusCode defaults to 200.
	StatusCode int
	// ServerHeader is the Server: response header value.
	ServerHeader string
	// Body overrides the generated HTML page entirely when non-empty.
	Body string
	// RequireHost makes the server answer 404 with a provider error
	// page when the request carries no Host header (virtual-hosting
	// front ends; the "(IP) was not found" group of Table 3).
	RequireHost bool
	// HostErrorTitle is the title of the RequireHost error page.
	HostErrorTitle string
}

// statusText covers the codes the simulation emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 401:
		return "Unauthorized"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Unknown"
	}
}

// renderPage builds a minimal HTML document with the given title.
func renderPage(title string) string {
	if title == "" {
		return "<html><head></head><body></body></html>\n"
	}
	return fmt.Sprintf("<html><head><title>%s</title></head><body><h1>%s</h1></body></html>\n", title, title)
}

// ServeConn handles exactly one request on conn and closes it,
// Connection: close style. Malformed requests get a 400.
func ServeConn(conn net.Conn, opts ServerOptions) {
	defer conn.Close()
	br := serverReaders.Get().(*bufio.Reader)
	br.Reset(conn)
	defer func() {
		br.Reset(nil)
		serverReaders.Put(br)
	}()
	reqLine, err := readLine(br)
	if err != nil {
		return
	}
	parts := strings.SplitN(reqLine, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		writeResponse(conn, 400, "", "", "<html><body>Bad Request</body></html>\n")
		return
	}
	method := parts[0]

	// Drain headers, remembering Host.
	host := ""
	for {
		line, err := readLine(br)
		if err != nil || line == "" {
			break
		}
		if name, value, ok := strings.Cut(line, ":"); ok && canonical(name) == "Host" {
			host = strings.TrimSpace(value)
		}
	}

	if method != "GET" && method != "HEAD" {
		writeResponse(conn, 400, opts.ServerHeader, "", "<html><body>Bad Request</body></html>\n")
		return
	}
	if opts.RequireHost && host == "" {
		title := opts.HostErrorTitle
		if title == "" {
			title = "Unknown Domain"
		}
		writeResponse(conn, 404, opts.ServerHeader, "", renderPage(title))
		return
	}

	code := opts.StatusCode
	if code == 0 {
		code = 200
	}
	body := opts.Body
	if body == "" {
		body = renderPage(opts.Title)
	}
	if method == "HEAD" {
		body = ""
	}
	writeResponse(conn, code, opts.ServerHeader, "", body)
}

func writeResponse(conn net.Conn, code int, serverHeader, contentType, body string) {
	if contentType == "" {
		contentType = "text/html; charset=utf-8"
	}
	bp := responseBufs.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(code), 10)
	b = append(b, ' ')
	b = append(b, statusText(code)...)
	b = append(b, "\r\n"...)
	if serverHeader != "" {
		b = append(b, "Server: "...)
		b = append(b, serverHeader...)
		b = append(b, "\r\n"...)
	}
	b = append(b, "Content-Type: "...)
	b = append(b, contentType...)
	b = append(b, "\r\nContent-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, "\r\nConnection: close\r\n\r\n"...)
	b = append(b, body...)
	conn.Write(b)
	*bp = b[:0]
	responseBufs.Put(bp)
}

// Handler returns a netsim-compatible stream handler serving opts.
func Handler(opts ServerOptions) func(net.Conn) {
	return func(conn net.Conn) { ServeConn(conn, opts) }
}
