// Package ipv6x provides the IPv6 address algebra the measurement pipeline
// is built on: interface-identifier (IID) classification, Shannon entropy
// of IIDs, EUI-64/MAC embedding and extraction, and prefix aggregation at
// the granularities the paper reports (/32, /48, /56, /64).
//
// All functions operate on netip.Addr values and reject IPv4 addresses
// explicitly rather than silently misclassifying them.
package ipv6x

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
)

// FromParts assembles an IPv6 address from the upper (network) and lower
// (interface identifier) 64-bit halves.
func FromParts(hi, lo uint64) netip.Addr {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], hi)
	binary.BigEndian.PutUint64(b[8:], lo)
	return netip.AddrFrom16(b)
}

// Parts splits an IPv6 address into its upper and lower 64-bit halves.
// It panics if addr is not IPv6 (use Is6 to check first).
func Parts(addr netip.Addr) (hi, lo uint64) {
	if !Is6(addr) {
		panic(fmt.Sprintf("ipv6x: Parts of non-IPv6 address %v", addr))
	}
	b := addr.As16()
	return binary.BigEndian.Uint64(b[:8]), binary.BigEndian.Uint64(b[8:])
}

// Is6 reports whether addr is a plain IPv6 address (not an IPv4-mapped
// one).
func Is6(addr netip.Addr) bool {
	return addr.Is6() && !addr.Is4In6()
}

// IID returns the interface identifier (low 64 bits) of addr.
func IID(addr netip.Addr) uint64 {
	_, lo := Parts(addr)
	return lo
}

// Prefix returns addr masked to the given prefix length as a canonical
// netip.Prefix. It panics on invalid bit lengths for IPv6.
func Prefix(addr netip.Addr, bits int) netip.Prefix {
	p, err := addr.Prefix(bits)
	if err != nil {
		panic(fmt.Sprintf("ipv6x: Prefix(%v, %d): %v", addr, bits, err))
	}
	return p
}

// Convenience wrappers for the granularities in the paper's tables.
func Prefix32(addr netip.Addr) netip.Prefix { return Prefix(addr, 32) }
func Prefix48(addr netip.Addr) netip.Prefix { return Prefix(addr, 48) }
func Prefix56(addr netip.Addr) netip.Prefix { return Prefix(addr, 56) }
func Prefix64(addr netip.Addr) netip.Prefix { return Prefix(addr, 64) }

// IIDClass is the paper's Figure 1 grouping of addresses by their
// interface identifier structure.
type IIDClass int

const (
	// IIDZero: the interface identifier is all zeroes (subnet-router
	// anycast style, typical for manually numbered routers).
	IIDZero IIDClass = iota
	// IIDLastByte: only the last byte is non-zero ("structured",
	// typically ::1, ::2 ... manual server numbering).
	IIDLastByte
	// IIDLastTwoBytes: only the last two bytes are non-zero.
	IIDLastTwoBytes
	// IIDLowEntropy: remaining IIDs with byte-entropy < 1 bit.
	IIDLowEntropy
	// IIDMediumEntropy: byte-entropy in [1, 2) bits.
	IIDMediumEntropy
	// IIDHighEntropy: byte-entropy >= 2 bits (SLAAC privacy addresses
	// and other randomized identifiers).
	IIDHighEntropy
)

// String implements fmt.Stringer.
func (c IIDClass) String() string {
	switch c {
	case IIDZero:
		return "zero"
	case IIDLastByte:
		return "last-byte"
	case IIDLastTwoBytes:
		return "last-2-bytes"
	case IIDLowEntropy:
		return "entropy<1"
	case IIDMediumEntropy:
		return "entropy 1-2"
	case IIDHighEntropy:
		return "entropy>=2"
	default:
		return fmt.Sprintf("IIDClass(%d)", int(c))
	}
}

// NIIDClasses is the number of defined IID classes, for array sizing.
const NIIDClasses = 6

// ClassifyIID places addr into its Figure 1 group. Structured classes are
// checked before entropy, mirroring the paper's ordering ("whether these
// are zeroes, have only the last (two) byte(s) set, and, for others, by
// their entropy").
func ClassifyIID(addr netip.Addr) IIDClass {
	iid := IID(addr)
	switch {
	case iid == 0:
		return IIDZero
	case iid&^0xff == 0:
		return IIDLastByte
	case iid&^0xffff == 0:
		return IIDLastTwoBytes
	}
	e := IIDEntropy(addr)
	switch {
	case e < 1:
		return IIDLowEntropy
	case e < 2:
		return IIDMediumEntropy
	default:
		return IIDHighEntropy
	}
}

// IIDEntropy returns the Shannon entropy, in bits, of the byte values of
// addr's interface identifier. With eight samples the maximum is 3 bits
// (all bytes distinct); fully repeated bytes give 0.
func IIDEntropy(addr netip.Addr) float64 {
	iid := IID(addr)
	var counts [256]uint8
	for i := 0; i < 8; i++ {
		counts[byte(iid>>(8*uint(i)))]++
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / 8
		h -= p * math.Log2(p)
	}
	return h
}

// MAC is a 48-bit IEEE 802 hardware address.
type MAC [6]byte

// String renders the MAC in canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// OUI returns the first three bytes (the organizationally unique
// identifier) with the U/L and I/G bits cleared, matching how the IEEE
// registry is keyed.
func (m MAC) OUI() [3]byte {
	return [3]byte{m[0] &^ 0x03, m[1], m[2]}
}

// Universal reports whether the MAC claims global uniqueness (U/L bit,
// 0x02 of the first octet, is clear). The paper calls this the "unique"
// bit.
func (m MAC) Universal() bool { return m[0]&0x02 == 0 }

// Multicast reports whether the I/G bit (0x01 of the first octet) is set.
func (m MAC) Multicast() bool { return m[0]&0x01 != 0 }

// eui64Marker is the 16-bit value inserted between the two MAC halves in
// a modified EUI-64 interface identifier.
const eui64Marker = 0xfffe

// IsEUI64 reports whether addr's interface identifier has the modified
// EUI-64 shape: the ff:fe marker in bytes 3-4 of the IID.
func IsEUI64(addr netip.Addr) bool {
	iid := IID(addr)
	return uint16(iid>>24) == eui64Marker
}

// EmbedMAC returns the modified EUI-64 interface identifier for a MAC:
// the MAC split around ff:fe with the U/L bit inverted, per RFC 4291
// Appendix A.
func EmbedMAC(m MAC) uint64 {
	var b [8]byte
	b[0] = m[0] ^ 0x02 // invert U/L bit
	b[1] = m[1]
	b[2] = m[2]
	b[3] = 0xff
	b[4] = 0xfe
	b[5] = m[3]
	b[6] = m[4]
	b[7] = m[5]
	return binary.BigEndian.Uint64(b[:])
}

// ExtractMAC recovers the embedded MAC address from a modified EUI-64
// interface identifier. ok is false when addr is not EUI-64 shaped.
func ExtractMAC(addr netip.Addr) (m MAC, ok bool) {
	if !IsEUI64(addr) {
		return MAC{}, false
	}
	iid := IID(addr)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], iid)
	m = MAC{b[0] ^ 0x02, b[1], b[2], b[5], b[6], b[7]}
	return m, true
}
