package ipv6x

import (
	"net/netip"
	"sort"
)

// AddrSet is a set of IPv6 addresses with cheap distinct counting. The
// zero value is not usable; call NewAddrSet.
type AddrSet struct {
	m map[netip.Addr]struct{}
}

// NewAddrSet returns an empty address set.
func NewAddrSet() *AddrSet {
	return &AddrSet{m: make(map[netip.Addr]struct{})}
}

// Add inserts addr and reports whether it was not already present.
func (s *AddrSet) Add(addr netip.Addr) bool {
	if _, dup := s.m[addr]; dup {
		return false
	}
	s.m[addr] = struct{}{}
	return true
}

// Merge inserts every address of other.
func (s *AddrSet) Merge(other *AddrSet) {
	for a := range other.m {
		s.m[a] = struct{}{}
	}
}

// Contains reports membership.
func (s *AddrSet) Contains(addr netip.Addr) bool {
	_, ok := s.m[addr]
	return ok
}

// Len returns the number of distinct addresses.
func (s *AddrSet) Len() int { return len(s.m) }

// ForEach calls fn for every address in unspecified order. Iteration
// stops early if fn returns false.
func (s *AddrSet) ForEach(fn func(netip.Addr) bool) {
	for a := range s.m {
		if !fn(a) {
			return
		}
	}
}

// Sorted returns all addresses in ascending order. Intended for tests and
// small sets; it allocates O(n).
func (s *AddrSet) Sorted() []netip.Addr {
	out := make([]netip.Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// OverlapWith returns the number of addresses present in both sets. It
// iterates the smaller set.
func (s *AddrSet) OverlapWith(other *AddrSet) int {
	a, b := s, other
	if b.Len() < a.Len() {
		a, b = b, a
	}
	n := 0
	for addr := range a.m {
		if _, ok := b.m[addr]; ok {
			n++
		}
	}
	return n
}

// PrefixCounter counts distinct addresses per enclosing prefix of a fixed
// bit length (e.g. one counter per dataset at /48).
type PrefixCounter struct {
	bits int
	m    map[netip.Prefix]int
}

// NewPrefixCounter returns a counter aggregating at the given prefix
// length.
func NewPrefixCounter(bits int) *PrefixCounter {
	return &PrefixCounter{bits: bits, m: make(map[netip.Prefix]int)}
}

// Bits returns the aggregation prefix length.
func (c *PrefixCounter) Bits() int { return c.bits }

// Add counts addr against its enclosing prefix.
func (c *PrefixCounter) Add(addr netip.Addr) {
	c.m[Prefix(addr, c.bits)]++
}

// Merge adds other's per-prefix counts into c. Both counters must
// aggregate at the same bit length.
func (c *PrefixCounter) Merge(other *PrefixCounter) {
	for p, n := range other.m {
		c.m[p] += n
	}
}

// Len returns the number of distinct prefixes observed.
func (c *PrefixCounter) Len() int { return len(c.m) }

// Count returns the number of additions within p.
func (c *PrefixCounter) Count(p netip.Prefix) int { return c.m[p] }

// Counts returns the multiset of per-prefix counts in ascending order
// (for density medians: "median IPs in /48s").
func (c *PrefixCounter) Counts() []int {
	out := make([]int, 0, len(c.m))
	for _, n := range c.m {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// OverlapWith returns how many prefixes appear in both counters. Both
// counters must aggregate at the same bit length for the result to be
// meaningful.
func (c *PrefixCounter) OverlapWith(other *PrefixCounter) int {
	a, b := c, other
	if len(b.m) < len(a.m) {
		a, b = b, a
	}
	n := 0
	for p := range a.m {
		if _, ok := b.m[p]; ok {
			n++
		}
	}
	return n
}

// ForEach calls fn for every (prefix, count) pair in unspecified order.
func (c *PrefixCounter) ForEach(fn func(netip.Prefix, int) bool) {
	for p, n := range c.m {
		if !fn(p, n) {
			return
		}
	}
}

// Prefixes returns all distinct prefixes in ascending order.
func (c *PrefixCounter) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(c.m))
	for p := range c.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Addr().Less(out[j].Addr())
	})
	return out
}
