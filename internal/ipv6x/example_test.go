package ipv6x_test

import (
	"fmt"
	"net/netip"

	"ntpscan/internal/ipv6x"
)

func ExampleClassifyIID() {
	for _, s := range []string{
		"2001:db8::1",
		"2001:db8::beef",
		"2001:db8:1:2:8a2e:370:7334:abcd",
	} {
		addr := netip.MustParseAddr(s)
		fmt.Printf("%s -> %v\n", s, ipv6x.ClassifyIID(addr))
	}
	// Output:
	// 2001:db8::1 -> last-byte
	// 2001:db8::beef -> last-2-bytes
	// 2001:db8:1:2:8a2e:370:7334:abcd -> entropy>=2
}

func ExampleExtractMAC() {
	// A FRITZ!Box-style EUI-64 address embeds the device MAC.
	mac := ipv6x.MAC{0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde}
	addr := ipv6x.FromParts(0x20010db8_00010002, ipv6x.EmbedMAC(mac))
	got, ok := ipv6x.ExtractMAC(addr)
	fmt.Println(ok, got, got.Universal())
	// Output:
	// true 34:56:78:9a:bc:de true
}

func ExamplePrefix48() {
	addr := netip.MustParseAddr("2001:db8:aaaa:bbbb::1")
	fmt.Println(ipv6x.Prefix48(addr))
	// Output:
	// 2001:db8:aaaa::/48
}
