package ipv6x

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestFromPartsRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := FromParts(hi, lo)
		gh, gl := Parts(a)
		return gh == hi && gl == lo && Is6(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartsKnown(t *testing.T) {
	a := mustAddr("2001:db8:1:2:3:4:5:6")
	hi, lo := Parts(a)
	if hi != 0x20010db800010002 || lo != 0x0003000400050006 {
		t.Fatalf("Parts = %x %x", hi, lo)
	}
}

func TestPartsPanicsOnIPv4(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parts should panic on IPv4")
		}
	}()
	Parts(mustAddr("192.0.2.1"))
}

func TestIs6(t *testing.T) {
	if Is6(mustAddr("192.0.2.1")) {
		t.Fatal("IPv4 classified as IPv6")
	}
	if Is6(mustAddr("::ffff:192.0.2.1")) {
		t.Fatal("IPv4-mapped classified as IPv6")
	}
	if !Is6(mustAddr("2001:db8::1")) {
		t.Fatal("IPv6 not recognised")
	}
}

func TestPrefixes(t *testing.T) {
	a := mustAddr("2001:db8:aaaa:bbbb:cccc:dddd:eeee:ffff")
	cases := []struct {
		got  netip.Prefix
		want string
	}{
		{Prefix32(a), "2001:db8::/32"},
		{Prefix48(a), "2001:db8:aaaa::/48"},
		{Prefix56(a), "2001:db8:aaaa:bb00::/56"},
		{Prefix64(a), "2001:db8:aaaa:bbbb::/64"},
	}
	for _, c := range cases {
		if c.got != netip.MustParsePrefix(c.want) {
			t.Errorf("prefix = %v, want %v", c.got, c.want)
		}
	}
}

func TestClassifyIID(t *testing.T) {
	cases := []struct {
		addr string
		want IIDClass
	}{
		{"2001:db8::", IIDZero},
		{"2001:db8::1", IIDLastByte},
		{"2001:db8::ff", IIDLastByte},
		{"2001:db8::1234", IIDLastTwoBytes},
		{"2001:db8::face", IIDLastTwoBytes},
		{"2001:db8::1111:1111:1111:1111", IIDLowEntropy},
		// Bytes aa×4 bb×2 cc×2: entropy 1.5 bits -> medium.
		{"2001:db8::aaaa:aaaa:bbbb:cccc", IIDMediumEntropy},
		{"2001:db8:1:2:8a2e:0370:7334:abcd", IIDHighEntropy},
	}
	for _, c := range cases {
		if got := ClassifyIID(mustAddr(c.addr)); got != c.want {
			t.Errorf("ClassifyIID(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestClassifyIIDLastTwoBytesBoundary(t *testing.T) {
	// 0x0100 has only byte 1 set within the last two bytes -> last-2-bytes.
	a := FromParts(0x20010db800000000, 0x0100)
	if got := ClassifyIID(a); got != IIDLastTwoBytes {
		t.Fatalf("got %v", got)
	}
	// Bit above the last two bytes -> entropy classes.
	b := FromParts(0x20010db800000000, 0x10000)
	if got := ClassifyIID(b); got == IIDZero || got == IIDLastByte || got == IIDLastTwoBytes {
		t.Fatalf("0x10000 misclassified as %v", got)
	}
}

func TestIIDEntropyBounds(t *testing.T) {
	f := func(hi, lo uint64) bool {
		e := IIDEntropy(FromParts(hi, lo))
		return e >= 0 && e <= 3+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIIDEntropyKnown(t *testing.T) {
	// All-same bytes: entropy 0.
	if e := IIDEntropy(FromParts(0, 0x1111111111111111)); e != 0 {
		t.Fatalf("uniform IID entropy = %v", e)
	}
	// All-distinct bytes: entropy 3 bits.
	if e := IIDEntropy(FromParts(0, 0x0102030405060708)); math.Abs(e-3) > 1e-9 {
		t.Fatalf("distinct IID entropy = %v", e)
	}
	// Two alternating bytes: entropy 1 bit.
	if e := IIDEntropy(FromParts(0, 0xdeaddeaddeaddead)); math.Abs(e-1) > 1e-9 {
		t.Fatalf("alternating IID entropy = %v", e)
	}
}

func TestIIDClassString(t *testing.T) {
	for c := IIDClass(0); c < NIIDClasses; c++ {
		if c.String() == "" {
			t.Fatalf("class %d has empty name", c)
		}
	}
	if IIDClass(99).String() != "IIDClass(99)" {
		t.Fatal("unknown class string wrong")
	}
}

func TestMACEmbedExtractRoundTrip(t *testing.T) {
	f := func(b [6]byte) bool {
		m := MAC(b)
		iid := EmbedMAC(m)
		addr := FromParts(0x20010db8deadbeef, iid)
		if !IsEUI64(addr) {
			return false
		}
		got, ok := ExtractMAC(addr)
		return ok && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedMACKnown(t *testing.T) {
	// RFC 4291 Appendix A example: 34-56-78-9A-BC-DE ->
	// 36:56:78:ff:fe:9a:bc:de
	m := MAC{0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde}
	if got := EmbedMAC(m); got != 0x365678fffe9abcde {
		t.Fatalf("EmbedMAC = %x", got)
	}
}

func TestExtractMACNotEUI64(t *testing.T) {
	if _, ok := ExtractMAC(mustAddr("2001:db8::1")); ok {
		t.Fatal("non-EUI-64 address yielded a MAC")
	}
}

func TestMACBits(t *testing.T) {
	uni := MAC{0x00, 0x1f, 0x3f, 0x01, 0x02, 0x03}
	if !uni.Universal() || uni.Multicast() {
		t.Fatal("universal unicast MAC misread")
	}
	local := MAC{0x02, 0, 0, 0, 0, 0}
	if local.Universal() {
		t.Fatal("locally administered MAC claimed universal")
	}
	mcast := MAC{0x01, 0, 0, 0, 0, 0}
	if !mcast.Multicast() {
		t.Fatal("multicast bit missed")
	}
}

func TestMACOUIMasksFlagBits(t *testing.T) {
	a := MAC{0x03, 0xaa, 0xbb, 1, 2, 3}
	b := MAC{0x00, 0xaa, 0xbb, 9, 9, 9}
	if a.OUI() != b.OUI() {
		t.Fatal("OUI should ignore U/L and I/G bits")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Fatalf("String = %q", got)
	}
}

func TestAddrSet(t *testing.T) {
	s := NewAddrSet()
	a, b := mustAddr("2001:db8::1"), mustAddr("2001:db8::2")
	if !s.Add(a) || s.Len() != 1 {
		t.Fatal("first Add failed")
	}
	if s.Add(a) {
		t.Fatal("duplicate Add returned true")
	}
	s.Add(b)
	if !s.Contains(a) || !s.Contains(b) || s.Contains(mustAddr("2001:db8::3")) {
		t.Fatal("Contains wrong")
	}
	sorted := s.Sorted()
	if len(sorted) != 2 || !sorted[0].Less(sorted[1]) {
		t.Fatalf("Sorted = %v", sorted)
	}
}

func TestAddrSetOverlap(t *testing.T) {
	a, b := NewAddrSet(), NewAddrSet()
	for i := 0; i < 10; i++ {
		a.Add(FromParts(1, uint64(i)))
	}
	for i := 5; i < 20; i++ {
		b.Add(FromParts(1, uint64(i)))
	}
	if got := a.OverlapWith(b); got != 5 {
		t.Fatalf("overlap = %d, want 5", got)
	}
	if got := b.OverlapWith(a); got != 5 {
		t.Fatalf("overlap not symmetric: %d", got)
	}
}

func TestAddrSetForEachEarlyStop(t *testing.T) {
	s := NewAddrSet()
	for i := 0; i < 10; i++ {
		s.Add(FromParts(0, uint64(i)))
	}
	n := 0
	s.ForEach(func(netip.Addr) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop failed, visited %d", n)
	}
}

func TestPrefixCounter(t *testing.T) {
	c := NewPrefixCounter(48)
	if c.Bits() != 48 {
		t.Fatal("Bits wrong")
	}
	c.Add(mustAddr("2001:db8:1::1"))
	c.Add(mustAddr("2001:db8:1::2"))
	c.Add(mustAddr("2001:db8:2::1"))
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Count(netip.MustParsePrefix("2001:db8:1::/48")); got != 2 {
		t.Fatalf("Count = %d", got)
	}
	counts := c.Counts()
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("Counts = %v", counts)
	}
}

func TestPrefixCounterOverlap(t *testing.T) {
	a, b := NewPrefixCounter(48), NewPrefixCounter(48)
	a.Add(mustAddr("2001:db8:1::1"))
	a.Add(mustAddr("2001:db8:2::1"))
	b.Add(mustAddr("2001:db8:2::9"))
	b.Add(mustAddr("2001:db8:3::9"))
	if got := a.OverlapWith(b); got != 1 {
		t.Fatalf("overlap = %d", got)
	}
}

func TestPrefixCounterPrefixesSorted(t *testing.T) {
	c := NewPrefixCounter(48)
	c.Add(mustAddr("2001:db8:9::1"))
	c.Add(mustAddr("2001:db8:1::1"))
	ps := c.Prefixes()
	if len(ps) != 2 || !ps[0].Addr().Less(ps[1].Addr()) {
		t.Fatalf("Prefixes = %v", ps)
	}
}

func BenchmarkClassifyIID(b *testing.B) {
	a := mustAddr("2001:db8:1:2:8a2e:370:7334:abcd")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ClassifyIID(a)
	}
}

func BenchmarkAddrSetAdd(b *testing.B) {
	s := NewAddrSet()
	for i := 0; i < b.N; i++ {
		s.Add(FromParts(uint64(i>>16), uint64(i)))
	}
}
