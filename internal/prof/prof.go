// Package prof is the pipeline's profiling harness: one call starts
// any combination of CPU profile, execution trace, and final heap
// profile, and the returned stop function flushes them. Commands wire
// it to -cpuprofile/-memprofile/-trace flags (see Flags); `make
// profiles` drives the same collection for BenchmarkFullCampaign.
//
// The heap profile is written after a forced GC so it reflects live
// retained memory, not transient garbage; allocation-site analysis
// uses -sample_index=alloc_objects/alloc_space on the same file.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the output files; empty fields disable that profile.
type Config struct {
	CPU   string // pprof CPU profile
	Mem   string // pprof heap profile, written at stop
	Trace string // runtime execution trace
}

// Flags registers -cpuprofile, -memprofile and -trace on fs (the
// standard flag set when nil) and returns the config they fill.
func Flags(fs *flag.FlagSet) *Config {
	if fs == nil {
		fs = flag.CommandLine
	}
	cfg := &Config{}
	fs.StringVar(&cfg.CPU, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&cfg.Mem, "memprofile", "", "write a pprof heap profile to `file` on exit")
	fs.StringVar(&cfg.Trace, "trace", "", "write a runtime execution trace to `file`")
	return cfg
}

// Enabled reports whether any profile output is requested.
func (c *Config) Enabled() bool {
	return c != nil && (c.CPU != "" || c.Mem != "" || c.Trace != "")
}

// Start begins the requested profiles. The returned stop function ends
// them and writes the heap profile; call it exactly once (defer it
// before the workload). Errors opening or starting any output abort
// the whole start with everything already begun rolled back.
func (c *Config) Start() (stop func() error, err error) {
	if c == nil {
		return func() error { return nil }, nil
	}
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if c.CPU != "" {
		if cpuF, err = os.Create(c.CPU); err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if c.Trace != "" {
		if traceF, err = os.Create(c.Trace); err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err = trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		cleanup()
		if c.Mem == "" {
			return nil
		}
		f, err := os.Create(c.Mem)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		return nil
	}, nil
}
