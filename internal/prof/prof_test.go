package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{
		CPU:   filepath.Join(dir, "cpu.out"),
		Mem:   filepath.Join(dir, "mem.out"),
		Trace: filepath.Join(dir, "trace.out"),
	}
	if !cfg.Enabled() {
		t.Fatal("Enabled() = false with all outputs set")
	}
	stop, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profiles are non-trivial.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.CPU, cfg.Mem, cfg.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestNilAndDisabled(t *testing.T) {
	var cfg *Config
	if cfg.Enabled() {
		t.Fatal("nil config reports enabled")
	}
	stop, err := cfg.Start()
	if err != nil || stop() != nil {
		t.Fatal("nil config must be a no-op")
	}
	empty := &Config{}
	if empty.Enabled() {
		t.Fatal("empty config reports enabled")
	}
	stop, err = empty.Start()
	if err != nil || stop() != nil {
		t.Fatal("empty config must be a no-op")
	}
}
