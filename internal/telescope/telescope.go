// Package telescope implements the paper's §5 methodology for catching
// NTP-sourcing scanners in the act: continuously query NTP Pool servers,
// using a distinct IPv6 source address per query, capture all traffic
// arriving in the monitored prefix, and attribute every inbound scan
// packet to the NTP query that leaked the address. The surrounding
// address space is monitored for scatter so random scanning cannot be
// mistaken for NTP-based sourcing.
package telescope

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/netsim"
	"ntpscan/internal/ntp"
)

// PoolServerEntry is one NTP server the observer queries, as it would
// appear in the pool's zone listings.
type PoolServerEntry struct {
	Addr netip.AddrPort
	// Owner labels the operator for ground-truth checks in tests; the
	// observer never reads it during attribution.
	Owner string
}

// QueryRecord remembers which server was queried from which source
// address at what time.
type QueryRecord struct {
	Server netip.AddrPort
	Time   time.Time
	OK     bool // server answered
}

// Observer owns a monitored prefix and performs the querying.
type Observer struct {
	fabric *netsim.Network
	clock  netsim.Clock
	prefix netip.Prefix // monitored space, e.g. a /56

	mu      sync.Mutex
	queries map[netip.Addr]QueryRecord
	inbound []netsim.PacketInfo
	nextSrc uint64
	cancel  func()
}

// NewObserver arms the telescope on prefix. Call Close to stop
// capturing.
func NewObserver(fabric *netsim.Network, prefix netip.Prefix) *Observer {
	o := &Observer{
		fabric:  fabric,
		clock:   fabric.Clock(),
		prefix:  prefix.Masked(),
		queries: make(map[netip.Addr]QueryRecord),
	}
	o.cancel = fabric.Sniff(o.prefix, func(pi netsim.PacketInfo) {
		// Our own outbound NTP responses arrive here too; keep
		// everything and let attribution separate NTP replies from
		// scans.
		o.mu.Lock()
		o.inbound = append(o.inbound, pi)
		o.mu.Unlock()
	})
	return o
}

// Close stops capturing.
func (o *Observer) Close() { o.cancel() }

// Prefix returns the monitored prefix.
func (o *Observer) Prefix() netip.Prefix { return o.prefix }

// nextSource allocates a fresh, never-used source address inside the
// monitored prefix. The low half of the space is used for queries; the
// upper half stays dark as the scatter control.
func (o *Observer) nextSource() netip.Addr {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nextSrc++
	hi, _ := ipv6x.Parts(o.prefix.Addr())
	return ipv6x.FromParts(hi, o.nextSrc)
}

// QueryServer sends one NTP query to the server from a fresh source
// address and records the association.
func (o *Observer) QueryServer(entry PoolServerEntry, timeout time.Duration) (netip.Addr, error) {
	src := o.nextSource()
	_, err := ntp.QuerySim(o.fabric, netip.AddrPortFrom(src, 40123), entry.Addr, o.clock.Now, timeout)
	o.mu.Lock()
	o.queries[src] = QueryRecord{Server: entry.Addr, Time: o.clock.Now(), OK: err == nil}
	o.mu.Unlock()
	return src, err
}

// QueryAll queries every listed server once and returns how many
// answered (the paper saw ~86 % response rates).
func (o *Observer) QueryAll(servers []PoolServerEntry, timeout time.Duration) (answered int) {
	for _, s := range servers {
		if _, err := o.QueryServer(s, timeout); err == nil {
			answered++
		}
	}
	return answered
}

// Campaign is one attributed scanning operation: scan traffic grouped by
// the source /32 (one operator's address space).
type Campaign struct {
	SourceNet netip.Prefix // /32 of the scan sources
	Sources   []netip.Addr // distinct scanning addresses
	// Servers are the NTP servers whose queries leaked the scanned
	// addresses.
	Servers []netip.AddrPort
	// Ports are the distinct destination ports probed, ascending.
	Ports []uint16
	// Packets is the total scan packets captured.
	Packets int
	// Targets is the number of distinct monitored addresses probed.
	Targets int
	// FirstDelay is the shortest observed query→scan delay; Spread is
	// the span between first and last packet.
	FirstDelay time.Duration
	Spread     time.Duration
}

// Report is the telescope's attribution summary.
type Report struct {
	QueriesSent     int
	QueriesAnswered int
	ScanPackets     int
	// MatchedPackets could be attributed to an NTP query (the paper
	// matched all of them).
	MatchedPackets int
	// ScatterPackets hit never-used addresses — evidence of random
	// scanning rather than NTP sourcing (the paper saw none).
	ScatterPackets int
	Campaigns      []Campaign
}

// Analyze attributes captured traffic. NTP responses from queried
// servers are recognised (same address pair, UDP 123) and excluded from
// scan accounting.
func (o *Observer) Analyze() *Report {
	o.mu.Lock()
	defer o.mu.Unlock()

	rep := &Report{QueriesSent: len(o.queries)}
	for _, q := range o.queries {
		if q.OK {
			rep.QueriesAnswered++
		}
	}

	type camKey struct{ net netip.Prefix }
	type camAgg struct {
		sources map[netip.Addr]struct{}
		servers map[netip.AddrPort]struct{}
		ports   map[uint16]struct{}
		targets map[netip.Addr]struct{}
		packets int
		first   time.Duration
		start   time.Time
		end     time.Time
	}
	cams := map[camKey]*camAgg{}

	for _, pi := range o.inbound {
		dst := pi.Dst.Addr()
		q, queried := o.queries[dst]
		// NTP responses from the queried server are protocol traffic,
		// not scans.
		if queried && pi.Src == q.Server {
			continue
		}
		rep.ScanPackets++
		if !queried {
			rep.ScatterPackets++
			continue
		}
		rep.MatchedPackets++

		key := camKey{net: ipv6x.Prefix32(pi.Src.Addr())}
		agg := cams[key]
		if agg == nil {
			agg = &camAgg{
				sources: map[netip.Addr]struct{}{},
				servers: map[netip.AddrPort]struct{}{},
				ports:   map[uint16]struct{}{},
				targets: map[netip.Addr]struct{}{},
				first:   1 << 62,
				start:   pi.Time,
				end:     pi.Time,
			}
			cams[key] = agg
		}
		agg.sources[pi.Src.Addr()] = struct{}{}
		agg.servers[q.Server] = struct{}{}
		agg.ports[pi.Dst.Port()] = struct{}{}
		agg.targets[dst] = struct{}{}
		agg.packets++
		if d := pi.Time.Sub(q.Time); d < agg.first {
			agg.first = d
		}
		if pi.Time.Before(agg.start) {
			agg.start = pi.Time
		}
		if pi.Time.After(agg.end) {
			agg.end = pi.Time
		}
	}

	for key, agg := range cams {
		c := Campaign{
			SourceNet:  key.net,
			Packets:    agg.packets,
			Targets:    len(agg.targets),
			FirstDelay: agg.first,
			Spread:     agg.end.Sub(agg.start),
		}
		for s := range agg.sources {
			c.Sources = append(c.Sources, s)
		}
		sort.Slice(c.Sources, func(i, j int) bool { return c.Sources[i].Less(c.Sources[j]) })
		for s := range agg.servers {
			c.Servers = append(c.Servers, s)
		}
		sort.Slice(c.Servers, func(i, j int) bool {
			return c.Servers[i].Addr().Less(c.Servers[j].Addr())
		})
		for p := range agg.ports {
			c.Ports = append(c.Ports, p)
		}
		sort.Slice(c.Ports, func(i, j int) bool { return c.Ports[i] < c.Ports[j] })
		rep.Campaigns = append(rep.Campaigns, c)
	}
	sort.Slice(rep.Campaigns, func(i, j int) bool {
		return rep.Campaigns[i].SourceNet.Addr().Less(rep.Campaigns[j].SourceNet.Addr())
	})
	return rep
}
