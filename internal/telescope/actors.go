package telescope

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"ntpscan/internal/netsim"
	"ntpscan/internal/ntp"
	"ntpscan/internal/rng"
)

// ActorProfile parameterises a third-party NTP-sourcing scanner, with
// presets matching the two operations the paper caught (§5.2).
type ActorProfile struct {
	Name string
	// Servers is how many capture-enabled pool servers the actor runs.
	Servers int
	// ServerNet and ScanNet are the /32s hosting the actor's NTP
	// servers and scan sources. The covert actor splits them across
	// two cloud providers; the research actor does not hide.
	ServerNet netip.Prefix
	ScanNet   netip.Prefix
	// Ports scanned per captured address.
	Ports []uint16
	// PortSubset, when non-zero, scans only this many randomly chosen
	// ports per address (the covert actor's partial coverage).
	PortSubset int
	// StartDelay is how long after capture scanning begins; Spread
	// stretches the probes of one address over this span.
	StartDelay time.Duration
	Spread     time.Duration
	// Identified actors publish rDNS/web pages identifying the
	// operation (the research actor). Carried through for reports.
	Identified bool
}

// ResearchActorProfile models the Georgia-Tech-style measurement
// operation: 15 servers, 1011 ports, scanning within the hour for about
// ten minutes, openly identified.
func ResearchActorProfile(serverNet, scanNet netip.Prefix) ActorProfile {
	ports := make([]uint16, 0, 1011)
	for p := uint16(1); len(ports) < 1011; p += 13 {
		ports = append(ports, p)
	}
	return ActorProfile{
		Name:       "research",
		Servers:    15,
		ServerNet:  serverNet,
		ScanNet:    scanNet,
		Ports:      ports,
		StartDelay: 45 * time.Minute,
		Spread:     10 * time.Minute,
		Identified: true,
	}
}

// CovertActorProfile models the anonymous operation: servers and
// scanners in two different cloud ASes, security-sensitive ports only,
// multi-day spread, partial port coverage per address.
func CovertActorProfile(serverNet, scanNet netip.Prefix) ActorProfile {
	return ActorProfile{
		Name:      "covert",
		Servers:   4,
		ServerNet: serverNet,
		ScanNet:   scanNet,
		Ports: []uint16{
			443, 3388, 3389, 5900, 5901, 6000, 6001, 8443, 9200, 27017,
		},
		PortSubset: 4,
		StartDelay: 6 * time.Hour,
		Spread:     72 * time.Hour,
		Identified: false,
	}
}

// Actor is a running third-party scanner: its pool servers capture
// client addresses and it probes them according to its profile.
type Actor struct {
	Profile ActorProfile
	fabric  *netsim.Network
	rng     *rng.Stream

	mu       sync.Mutex
	captured []capturedAddr
	entries  []PoolServerEntry
}

type capturedAddr struct {
	addr netip.Addr
	at   time.Time
}

// NewActor deploys the actor's NTP servers onto the fabric and returns
// the pool entries to advertise.
func NewActor(fabric *netsim.Network, profile ActorProfile, seed uint64) *Actor {
	a := &Actor{
		Profile: profile,
		fabric:  fabric,
		rng:     rng.New(seed ^ ac7or(profile.Name)),
	}
	hi := prefHi(profile.ServerNet)
	for i := 0; i < profile.Servers; i++ {
		addr := addrIn(hi, uint64(i)+1)
		srv := ntp.NewServer(ntp.ServerConfig{
			Now: fabric.Clock().Now,
			Capture: func(client netip.AddrPort, at time.Time) {
				a.mu.Lock()
				a.captured = append(a.captured, capturedAddr{addr: client.Addr(), at: at})
				a.mu.Unlock()
			},
		})
		fabric.Register(addr, netsim.NewHost(profile.Name+"-ntp").HandleUDP(ntp.Port, srv.Handle))
		a.entries = append(a.entries, PoolServerEntry{
			Addr:  netip.AddrPortFrom(addr, ntp.Port),
			Owner: profile.Name,
		})
	}
	return a
}

// PoolEntries returns the actor's advertised servers.
func (a *Actor) PoolEntries() []PoolServerEntry { return a.entries }

// CapturedCount returns how many addresses the actor has harvested.
func (a *Actor) CapturedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.captured)
}

// RunScans probes every captured address per the profile. In the
// simulation the logical clock is advanced by the driver; probe
// timestamps are synthesised by temporarily advancing a manual clock
// when one is in use, otherwise stamps are taken as-is.
func (a *Actor) RunScans(clock *netsim.ManualClock) {
	a.mu.Lock()
	captured := append([]capturedAddr(nil), a.captured...)
	a.captured = a.captured[:0]
	a.mu.Unlock()

	p := a.Profile
	scanHi := prefHi(p.ScanNet)
	for _, c := range captured {
		ports := p.Ports
		if p.PortSubset > 0 && p.PortSubset < len(ports) {
			perm := a.rng.Perm(len(ports))
			sub := make([]uint16, p.PortSubset)
			for i := range sub {
				sub[i] = ports[perm[i]]
			}
			ports = sub
		}
		// Scans begin StartDelay after capture and spread over Spread.
		if clock != nil {
			target := c.at.Add(p.StartDelay)
			if target.After(clock.Now()) {
				clock.Set(target)
			}
		}
		src := netip.AddrPortFrom(addrIn(scanHi, 0x100+a.rng.Uint64n(16)), 51234)
		for i, port := range ports {
			if clock != nil && p.Spread > 0 && len(ports) > 1 {
				clock.Advance(p.Spread / time.Duration(len(ports)))
			}
			_ = i
			// A SYN probe: the connection attempt itself is what the
			// telescope observes; the actor never waits for answers
			// (pre-cancelled context, so blackholes return instantly).
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if conn, err := a.fabric.DialTCP(ctx, src.Addr(), netip.AddrPortFrom(c.addr, port)); err == nil {
				conn.Close()
			}
		}
	}
}

// prefHi returns the upper 64 bits of a prefix base address.
func prefHi(p netip.Prefix) uint64 {
	b := p.Masked().Addr().As16()
	var hi uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
	}
	return hi
}

// addrIn builds an address under the /64 implied by hi.
func addrIn(hi, iid uint64) netip.Addr {
	var b [16]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(hi)
		hi >>= 8
	}
	for i := 15; i >= 8; i-- {
		b[i] = byte(iid)
		iid >>= 8
	}
	return netip.AddrFrom16(b)
}

// ac7or derives a seed component from the actor name.
func ac7or(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}
