package telescope

import (
	"net/netip"
	"testing"
	"time"

	"ntpscan/internal/netsim"
	"ntpscan/internal/ntp"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func testFabric() (*netsim.Network, *netsim.ManualClock) {
	clock := netsim.NewManualClock(time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC))
	return netsim.New(netsim.Config{Clock: clock, DialTimeout: time.Millisecond}), clock
}

// deployBenign registers n plain (non-capturing, non-scanning) pool
// servers.
func deployBenign(f *netsim.Network, n int) []PoolServerEntry {
	var out []PoolServerEntry
	for i := 0; i < n; i++ {
		addr := addrIn(0x2001_0b00_0000_0000, uint64(i)+1)
		srv := ntp.NewServer(ntp.ServerConfig{Now: f.Clock().Now})
		f.Register(addr, netsim.NewHost("benign-ntp").HandleUDP(ntp.Port, srv.Handle))
		out = append(out, PoolServerEntry{Addr: netip.AddrPortFrom(addr, ntp.Port)})
	}
	return out
}

func TestObserverQueriesAnswered(t *testing.T) {
	f, _ := testFabric()
	servers := deployBenign(f, 10)
	o := NewObserver(f, pfx("2001:db8:7e1e:5c00::/56"))
	defer o.Close()
	answered := o.QueryAll(servers, 100*time.Millisecond)
	if answered != 10 {
		t.Fatalf("answered = %d", answered)
	}
	rep := o.Analyze()
	if rep.QueriesSent != 10 || rep.QueriesAnswered != 10 {
		t.Fatalf("report = %+v", rep)
	}
	// NTP responses must not be misread as scans.
	if rep.ScanPackets != 0 || len(rep.Campaigns) != 0 {
		t.Fatalf("phantom scans: %+v", rep)
	}
}

func TestObserverDistinctSources(t *testing.T) {
	f, _ := testFabric()
	servers := deployBenign(f, 5)
	o := NewObserver(f, pfx("2001:db8:7e1e:5c00::/56"))
	defer o.Close()
	seen := map[netip.Addr]bool{}
	for _, s := range servers {
		src, err := o.QueryServer(s, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if seen[src] {
			t.Fatalf("source %v reused", src)
		}
		if !o.Prefix().Contains(src) {
			t.Fatalf("source %v outside monitored prefix", src)
		}
		seen[src] = true
	}
}

func TestActorDetection(t *testing.T) {
	f, clock := testFabric()
	benign := deployBenign(f, 20)

	research := NewActor(f, ResearchActorProfile(
		pfx("2a01:4f8::/32"), pfx("2a01:4f8::/32")), 1)
	covert := NewActor(f, CovertActorProfile(
		pfx("2600:1f00::/32"), pfx("2a01:7e00::/32")), 2)

	servers := append(benign, research.PoolEntries()...)
	servers = append(servers, covert.PoolEntries()...)

	o := NewObserver(f, pfx("2001:db8:7e1e:5c00::/56"))
	defer o.Close()
	answered := o.QueryAll(servers, 100*time.Millisecond)
	if answered != len(servers) {
		t.Fatalf("answered %d of %d", answered, len(servers))
	}
	if research.CapturedCount() != 15 || covert.CapturedCount() != 4 {
		t.Fatalf("captures = %d %d", research.CapturedCount(), covert.CapturedCount())
	}

	research.RunScans(clock)
	covert.RunScans(clock)

	rep := o.Analyze()
	if rep.ScatterPackets != 0 {
		t.Fatalf("scatter = %d", rep.ScatterPackets)
	}
	if rep.MatchedPackets == 0 || rep.MatchedPackets != rep.ScanPackets {
		t.Fatalf("matched %d of %d", rep.MatchedPackets, rep.ScanPackets)
	}
	if len(rep.Campaigns) != 2 {
		t.Fatalf("campaigns = %d", len(rep.Campaigns))
	}

	var researchCam, covertCam *Campaign
	for i := range rep.Campaigns {
		c := &rep.Campaigns[i]
		switch c.SourceNet {
		case pfx("2a01:4f8::/32").Masked():
			researchCam = c
		case pfx("2a01:7e00::/32").Masked():
			covertCam = c
		}
	}
	if researchCam == nil || covertCam == nil {
		t.Fatalf("campaign nets wrong: %+v", rep.Campaigns)
	}
	// The research actor probes over a thousand ports from 15 servers'
	// captures, fast.
	if len(researchCam.Ports) < 500 {
		t.Fatalf("research ports = %d", len(researchCam.Ports))
	}
	if len(researchCam.Servers) != 15 {
		t.Fatalf("research servers = %d", len(researchCam.Servers))
	}
	if researchCam.FirstDelay > time.Hour {
		t.Fatalf("research first delay = %v", researchCam.FirstDelay)
	}
	// The covert actor: few security-sensitive ports, long delays,
	// multi-day spread, scan sources in a different /32 than its
	// servers.
	for _, p := range covertCam.Ports {
		switch p {
		case 443, 3388, 3389, 5900, 5901, 6000, 6001, 8443, 9200, 27017:
		default:
			t.Fatalf("covert scanned unexpected port %d", p)
		}
	}
	if covertCam.FirstDelay < time.Hour {
		t.Fatalf("covert first delay = %v", covertCam.FirstDelay)
	}
	if covertCam.Spread < 12*time.Hour {
		t.Fatalf("covert spread = %v", covertCam.Spread)
	}
	if covertCam.SourceNet == pfx("2600:1f00::/32").Masked() {
		t.Fatal("covert scan sources should differ from its server network")
	}
}

func TestScatterDetection(t *testing.T) {
	f, _ := testFabric()
	o := NewObserver(f, pfx("2001:db8:7e1e:5c00::/56"))
	defer o.Close()
	// A random scanner hits a never-queried address in the prefix.
	dark := netip.MustParseAddr("2001:db8:7e1e:5cff::42")
	f.SendUDP(netip.MustParseAddrPort("[2c0f:f248::1]:55555"),
		netip.AddrPortFrom(dark, 443), []byte("probe"))
	rep := o.Analyze()
	if rep.ScatterPackets != 1 || rep.MatchedPackets != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPortSubset(t *testing.T) {
	f, clock := testFabric()
	covert := NewActor(f, CovertActorProfile(
		pfx("2600:1f00::/32"), pfx("2a01:7e00::/32")), 3)
	o := NewObserver(f, pfx("2001:db8:7e1e:5c00::/56"))
	defer o.Close()
	o.QueryAll(covert.PoolEntries(), 100*time.Millisecond)
	covert.RunScans(clock)
	rep := o.Analyze()
	if len(rep.Campaigns) != 1 {
		t.Fatalf("campaigns = %d", len(rep.Campaigns))
	}
	// Each captured address gets only PortSubset probes.
	c := rep.Campaigns[0]
	if c.Packets != covert.Profile.PortSubset*c.Targets {
		t.Fatalf("packets = %d targets = %d subset = %d",
			c.Packets, c.Targets, covert.Profile.PortSubset)
	}
}

func TestRunScansDrainsQueue(t *testing.T) {
	f, clock := testFabric()
	a := NewActor(f, ResearchActorProfile(
		pfx("2a01:4f8::/32"), pfx("2a01:4f8::/32")), 4)
	o := NewObserver(f, pfx("2001:db8:7e1e:5c00::/56"))
	defer o.Close()
	o.QueryAll(a.PoolEntries(), 100*time.Millisecond)
	if a.CapturedCount() == 0 {
		t.Fatal("no captures")
	}
	a.RunScans(clock)
	if a.CapturedCount() != 0 {
		t.Fatal("queue not drained")
	}
}
