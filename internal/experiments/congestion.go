package experiments

// The congestion ladder: the same collection campaign run behind
// access links of increasing utilization, so the effect of queueing on
// capture yield is measurable in one table. Every rung is a fresh
// pipeline with an identical world; only the link plan's utilization
// moves. The plan uses a Default link — every flow in the campaign
// crosses it — which makes the rungs comparable without choosing
// prefixes. Plans are built inline (not via internal/chaos, whose
// hooks link the testing package).

import (
	"fmt"
	"strings"
	"time"

	"ntpscan/internal/netsim/link"
)

// congestionRung is one utilization level of the ladder.
type congestionRung struct {
	Name string
	Util float64 // <0 means no link plan at all (clean fabric)
}

// CongestionLadder runs the collection campaign across utilization
// rungs and renders the capture/drop table. The ladder is
// deterministic: same seed, same bytes.
func CongestionLadder(seed uint64) string {
	rungs := []congestionRung{
		{"clean", -1},
		{"u=0.50", 0.50},
		{"u=0.90", 0.90},
		{"u=0.99", 0.99},
	}

	var b strings.Builder
	b.WriteString("== Congestion ladder (collection under queued links) ==\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %10s %10s\n",
		"rung", "captures", "enqueued", "delivered", "tail-drop", "late", "yield")

	var clean int
	for _, rung := range rungs {
		opts := Options{
			Seed:          seed,
			DeviceScale:   1e-3,
			AddrScale:     2e-6,
			Workers:       8,
			CaptureBudget: 2500,
			LinkPlan:      ladderPlan(seed, rung.Util),
		}
		s := CollectOnly(opts)
		lm := link.NewMetrics(s.P.Obs)
		captures := s.P.Captures
		if rung.Util < 0 {
			clean = captures
		}
		yield := "-"
		if clean > 0 {
			yield = fmt.Sprintf("%.3f", float64(captures)/float64(clean))
		}
		fmt.Fprintf(&b, "%-8s %10d %10d %10d %10d %10d %10s\n",
			rung.Name, captures, lm.Enqueued.Value(), lm.Delivered.Value(),
			lm.DroppedTail.Value(), lm.Late.Value(), yield)
	}
	b.WriteString("\nyield = captures relative to the clean rung; the ladder is\n")
	b.WriteString("deterministic (pure-hash queues on the logical clock).\n\n")
	return b.String()
}

// ladderPlan builds the rung's link plan: one Default link that every
// flow crosses, sized like a loaded access circuit. The time grid is
// left zero — installLinkPlan pins it to the campaign's slices. util
// < 0 returns nil (clean fabric, no plan installed).
func ladderPlan(seed uint64, util float64) *link.Plan {
	if util < 0 {
		return nil
	}
	return &link.Plan{
		Seed: seed ^ 0x11ad,
		Default: &link.Params{
			QueuePackets: 16,
			BytesPerSec:  64 << 20,
			PropDelay:    15 * time.Microsecond,
			Utilization:  util,
			JitterMax:    10 * time.Microsecond,
		},
	}
}
