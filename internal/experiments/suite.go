// Package experiments reproduces every table and figure of the paper's
// evaluation. A Suite runs the full pipeline once (collection,
// real-time NTP scan, hitlist build + batch scan, R&L-era comparison
// run) and renders each table/figure from the shared results, exactly
// as the paper derives all of its outputs from one measurement
// campaign.
package experiments

import (
	"context"
	"fmt"
	"net/netip"
	"strings"

	"ntpscan/internal/analysis"
	"ntpscan/internal/cluster"
	"ntpscan/internal/cluster/transport"
	"ntpscan/internal/core"
	"ntpscan/internal/hitlist"
	"ntpscan/internal/netsim"
	"ntpscan/internal/netsim/link"
	"ntpscan/internal/store"
	"ntpscan/internal/world"
)

// Options sizes a suite run.
type Options struct {
	// Seed drives the whole experiment.
	Seed uint64
	// DeviceScale/AddrScale/ASScale forward to world generation. Zero
	// values select the bench defaults (DeviceScale 3e-3, AddrScale
	// 6e-6, ASScale 0.03), which run the full suite in tens of
	// seconds.
	DeviceScale float64
	AddrScale   float64
	ASScale     float64
	// Workers for scanning.
	Workers int
	// CollectShards partitions collection work. Unlike Workers it is
	// part of the experiment definition (shard streams are derived from
	// it), so leave it zero (= core default) unless you intend to
	// define a different experiment.
	CollectShards int
	// StoreDir, when non-empty, persists the NTP campaign's captures
	// and results to a columnar store directory there (see
	// internal/store; readable by cmd/analyze). Attaching the store
	// does not change the campaign's dataset or tables.
	StoreDir string
	// LazyWorld skips the eager device build: the address-only
	// population is derived on demand through the collection shards'
	// arenas instead of being resident. Output is bit-identical either
	// way — the switch only changes memory, which is what lets the
	// scale ladder climb 100x without a 100x heap.
	LazyWorld bool
	// CaptureBudget pins the campaign's volume-channel capture count
	// (core.Config.CaptureBudget). Zero keeps the default, which scales
	// with the world's client mass; the scale ladder pins it so
	// measurement effort stays fixed while only the world grows.
	CaptureBudget int
	// Nodes runs the NTP campaign through an internal/cluster of that
	// many campaign nodes (coordinator, shard leases, heartbeats).
	// Like Workers it is pure execution placement: every dataset and
	// table is byte-identical at any node count. Zero or one keeps the
	// single-process campaign.
	Nodes int
	// ClusterURL switches the campaign to multi-process node mode: the
	// NTP campaign runs as a full deterministic replica whose control
	// plane is the clusterd fabric at this base URL (cluster.RunNode
	// over the wire transport). Nodes must carry the cluster's total
	// node count and NodeID this process's index. The replica's outputs
	// are byte-identical to a single-process run; the fabric decides
	// only which shard-slice submissions this node is authoritative
	// for.
	ClusterURL string
	// NodeID is this process's node index under ClusterURL (0-based).
	NodeID int
	// LinkPlan, when non-nil, puts the campaign's flows behind the
	// deterministic queued-link emulation (internal/netsim/link):
	// bandwidth, propagation delay, finite queues, and route churn, all
	// stamped on the logical clock. Installed as the pipeline's fault
	// plan before the campaign starts; outputs stay byte-identical at
	// any Workers/Nodes count because queue outcomes are pure functions
	// of (seed, link, flow, slice).
	LinkPlan *link.Plan
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 20240720
	}
	if o.DeviceScale == 0 {
		o.DeviceScale = 3e-3
	}
	if o.AddrScale == 0 {
		o.AddrScale = 6e-6
	}
	if o.ASScale == 0 {
		o.ASScale = 0.03
	}
	if o.Workers == 0 {
		o.Workers = 64
	}
}

// installLinkPlan wraps a link plan in a fault plan and installs it.
// A nil plan leaves the pipeline untouched (no fabric intervention at
// all), so zero-link suites stay byte-identical to pre-link ones. A
// plan without a time grid inherits the campaign's: epoch at the
// collection start, one churn slice per collection slice.
func installLinkPlan(p *core.Pipeline, lp *link.Plan) {
	if lp == nil {
		return
	}
	if lp.Epoch.IsZero() {
		lp.Epoch = p.W.Cfg.Start
	}
	if lp.SliceLen <= 0 {
		lp.SliceLen = world.CollectionWindow / core.CollectSlices
	}
	p.InstallFaults(&netsim.FaultPlan{Seed: lp.Seed, Links: lp})
}

// Suite is one executed campaign with all derived datasets.
type Suite struct {
	Opts Options
	P    *core.Pipeline
	// Err is set when the optional store sink failed (open or write);
	// the datasets are not usable in that case.
	Err error

	NTP     *analysis.Dataset // real-time NTP-sourced scan results
	Hitlist *analysis.Dataset // batch hitlist scan results

	HL         *hitlist.Hitlist
	HitFullSum *analysis.AddrSummary
	HitPubSum  *analysis.AddrSummary
	RLSum      *analysis.AddrSummary
	PublicLen  int
}

// Run executes the campaign.
func Run(opts Options) *Suite {
	opts.fill()
	p := core.NewPipeline(core.Config{
		Seed: opts.Seed,
		World: world.Config{
			DeviceScale: opts.DeviceScale,
			AddrScale:   opts.AddrScale,
			ASScale:     opts.ASScale,
			Lazy:        opts.LazyWorld,
		},
		Workers:       opts.Workers,
		CollectShards: opts.CollectShards,
		CaptureBudget: opts.CaptureBudget,
	})
	installLinkPlan(p, opts.LinkPlan)
	s := &Suite{Opts: opts, P: p}
	ctx := context.Background()

	runCampaign := func(copts core.CampaignOpts) (*analysis.Dataset, error) {
		if opts.ClusterURL != "" {
			api := transport.NewClient(opts.ClusterURL, opts.NodeID, nil)
			ds, _, err := cluster.RunNode(ctx, p, api, opts.NodeID,
				cluster.Config{Nodes: opts.Nodes}, copts)
			return ds, err
		}
		if opts.Nodes > 1 {
			ds, _, err := cluster.Run(ctx, p, cluster.Config{Nodes: opts.Nodes}, copts)
			return ds, err
		}
		return p.RunCampaign(ctx, copts)
	}
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir, store.Options{Obs: p.Obs})
		if err == nil {
			s.NTP, err = runCampaign(core.CampaignOpts{Store: st})
		}
		if err != nil {
			s.Err = err
			return s
		}
	} else {
		var err error
		s.NTP, err = runCampaign(core.CampaignOpts{})
		if err != nil {
			s.Err = err
			return s
		}
	}
	s.HL = p.BuildHitlist(hitlist.Config{})
	s.Hitlist = p.ScanHitlist(ctx, s.HL)

	pub := p.PublicHitlist(ctx, s.HL)
	s.PublicLen = len(pub)
	s.HitFullSum = p.SummarizeHitlist(s.HL.Full)
	s.HitPubSum = p.SummarizeHitlist(pub)
	s.RLSum = p.RLCollect(0)
	return s
}

// CollectOnly runs just the collection phases (enough for Table 1,
// Figure 1, Table 4, Figure 4, Table 7) — much faster than Run.
func CollectOnly(opts Options) *Suite {
	opts.fill()
	p := core.NewPipeline(core.Config{
		Seed: opts.Seed,
		World: world.Config{
			DeviceScale: opts.DeviceScale,
			AddrScale:   opts.AddrScale,
			ASScale:     opts.ASScale,
			Lazy:        opts.LazyWorld,
		},
		Workers:       opts.Workers,
		CollectShards: opts.CollectShards,
		CaptureBudget: opts.CaptureBudget,
	})
	installLinkPlan(p, opts.LinkPlan)
	s := &Suite{Opts: opts, P: p}
	p.CollectOnly()
	s.HL = p.BuildHitlist(hitlist.Config{})
	s.HitFullSum = p.SummarizeHitlist(s.HL.Full)
	pub := p.PublicHitlist(context.Background(), s.HL)
	s.PublicLen = len(pub)
	s.HitPubSum = p.SummarizeHitlist(pub)
	s.RLSum = p.RLCollect(0)
	return s
}

// section renders a titled block.
func section(title, body string) string {
	var b strings.Builder
	b.WriteString("== " + title + " ==\n")
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.String()
}

// addrsOf extracts an address list from a summary.
func addrsOf(s *analysis.AddrSummary) []netip.Addr {
	return s.Set().Sorted()
}

// All renders every table and figure.
func (s *Suite) All() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ntpscan experiment suite (seed=%d, device-scale=%g, addr-scale=%g)\n\n",
		s.Opts.Seed, s.Opts.DeviceScale, s.Opts.AddrScale)
	b.WriteString(s.Table1())
	b.WriteString(s.Figure1())
	if s.NTP != nil {
		b.WriteString(s.Table2())
		b.WriteString(s.Table3())
		b.WriteString(s.Figure2())
		b.WriteString(s.Figure3())
		b.WriteString(s.Headline())
		b.WriteString(s.KeyReuse())
		b.WriteString(s.Table5())
		b.WriteString(s.Table6())
		b.WriteString(s.Figure5())
		b.WriteString(s.Figure6())
		b.WriteString(s.Table8())
	}
	b.WriteString(s.Table4())
	b.WriteString(s.Figure4())
	b.WriteString(s.Table7())
	return b.String()
}
