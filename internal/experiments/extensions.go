package experiments

import (
	"context"
	"net/netip"
	"sync"

	"ntpscan/internal/analysis"
	"ntpscan/internal/core"
	"ntpscan/internal/tabulate"
	"ntpscan/internal/targetgen"
	"ntpscan/internal/zgrab"
)

// ExtensionTargetGen answers the paper's §6 future-work question: are
// "address generators trained on [NTP-sourced] addresses" a useful
// substitute for live sourcing? Two models are trained — one on the
// NTP-collected addresses, one on the responsive hitlist addresses —
// and their generated candidates are scanned. The eyeball-trained model
// has almost nothing learnable (privacy addressing) and its candidates
// land in churned or never-assigned space; the server-trained model
// fares far better, reproducing why TGAs stay biased toward
// infrastructure (§2.1.1).
func ExtensionTargetGen(s *Suite, candidates int) string {
	if candidates <= 0 {
		candidates = 2000
	}
	ctx := context.Background()

	// Seed sets: collected NTP addresses (volume channel) plus the
	// addresses our scans actually saw; and the hitlist's responsive
	// addresses.
	ntpSeeds := s.P.Summary.Set().Sorted()
	for _, r := range s.NTP.Results {
		if r.Success() {
			ntpSeeds = append(ntpSeeds, r.IP)
		}
	}
	var hitSeeds []netip.Addr
	seen := map[netip.Addr]struct{}{}
	for _, r := range s.Hitlist.Results {
		if r.Success() {
			if _, dup := seen[r.IP]; !dup {
				seen[r.IP] = struct{}{}
				hitSeeds = append(hitSeeds, r.IP)
			}
		}
	}

	t := tabulate.New("Extension: target generation trained on each source (paper §6 future work)",
		"Training set", "Seeds", "Learnable IIDs", "Candidates", "Responsive", "Hit rate").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right)

	for _, arm := range []struct {
		name  string
		seeds []netip.Addr
	}{
		{"NTP-sourced (eyeball)", ntpSeeds},
		{"Hitlist responsive (servers)", hitSeeds},
	} {
		model := targetgen.Train(arm.seeds)
		cands := model.Generate(candidates, s.Opts.Seed)
		responsive := scanCandidates(ctx, s.P, cands)
		rate := 0.0
		if len(cands) > 0 {
			rate = float64(responsive) / float64(len(cands))
		}
		t.Cells(arm.name,
			tabulate.Count(model.SeedCount()),
			tabulate.Pct(model.LearnableShare()),
			tabulate.Count(len(cands)),
			tabulate.Count(responsive),
			tabulate.Pct(rate))
	}
	t.Note("live NTP sourcing has no static substitute: the eyeball model has little to learn and its candidates age instantly")
	return section("Extension: target generation", t.String())
}

// scanCandidates probes candidates with the full module set and counts
// responsive addresses.
func scanCandidates(ctx context.Context, p *core.Pipeline, cands []netip.Addr) int {
	var mu sync.Mutex
	responsive := map[netip.Addr]struct{}{}
	scanner := zgrab.NewScanner(zgrab.Config{
		Fabric:     p.W.Fabric(),
		Clock:      p.W.Clock(),
		Source:     core.ScanSource,
		Timeout:    p.Cfg.Timeout,
		UDPTimeout: p.Cfg.UDPTimeout,
		Workers:    p.Cfg.Workers,
		OnResult: func(r *zgrab.Result) {
			if r.Success() {
				mu.Lock()
				responsive[r.IP] = struct{}{}
				mu.Unlock()
			}
		},
	})
	scanner.Start(ctx)
	for _, a := range cands {
		scanner.Submit(a)
	}
	scanner.Close()
	return len(responsive)
}

// ExtensionGeneratedVsLive contrasts the generator's best case against
// simply continuing to scan the live feed — the recommendation the
// paper closes with.
func ExtensionGeneratedVsLive(s *Suite) string {
	_, _, liveRate := analysis.HitRate(s.NTP)
	t := tabulate.New("Extension: candidate quality vs live feed",
		"Source", "Hit rate").
		SetAligns(tabulate.Left, tabulate.Right)
	t.Cells("live NTP feed (measured)", tabulate.Pct(liveRate))

	seeds := s.P.Summary.Set().Sorted()
	model := targetgen.Train(seeds)
	cands := model.Generate(2000, s.Opts.Seed+1)
	responsive := scanCandidates(context.Background(), s.P, cands)
	rate := 0.0
	if len(cands) > 0 {
		rate = float64(responsive) / float64(len(cands))
	}
	t.Cells("generated from collected addrs", tabulate.Pct(rate))
	return section("Extension: generated vs live", t.String())
}
