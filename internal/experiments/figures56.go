package experiments

import (
	"strings"

	"ntpscan/internal/analysis"
	"ntpscan/internal/tabulate"
)

// Figure5 renders Appendix C's SSH outdatedness counted by addresses
// and networks instead of unique keys. Key-reusing outdated servers
// count once per address here, so outdatedness rises relative to
// Figure 2 and the NTP-vs-hitlist gap widens — the paper's observation.
func (s *Suite) Figure5() string {
	stats := analysis.SSHOutdatedByNetwork(s.NTP, s.Hitlist)
	t := tabulate.New("Figure 5: SSH patch state by network",
		"Dataset", "Granularity", "Assessable", "Outdated", "Outdated share").
		SetAligns(tabulate.Left, tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right)
	for i, name := range []string{"Our Data", "TUM Hitlist"} {
		for _, row := range stats[i] {
			t.Cells(name, row.Granularity,
				tabulate.Count(row.Assessable), tabulate.Count(row.Outdated),
				tabulate.Pct(row.OutdatedShare()))
		}
	}
	return section("Figure 5 (Appendix C)", t.String())
}

// Figure6 renders Appendix C's broker access control counted by
// networks.
func (s *Suite) Figure6() string {
	var b strings.Builder
	for _, proto := range []string{"mqtt", "amqp"} {
		t := tabulate.New("Figure 6: "+strings.ToUpper(proto)+" access control by network",
			"Dataset", "Granularity", "Open", "Access control", "Open share").
			SetAligns(tabulate.Left, tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right)
		for i, d := range []*analysis.Dataset{s.NTP, s.Hitlist} {
			name := []string{"Our Data", "TUM Hitlist"}[i]
			for _, row := range analysis.BrokerAccessByNetwork(d, proto) {
				t.Cells(name, row.Granularity,
					tabulate.Count(row.Open), tabulate.Count(row.AccessControl),
					tabulate.Pct(row.OpenShare()))
			}
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return section("Figure 6 (Appendix C)", b.String())
}
