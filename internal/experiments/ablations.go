package experiments

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"ntpscan/internal/analysis"
	"ntpscan/internal/core"
	"ntpscan/internal/ipv6x"
	"ntpscan/internal/levenshtein"
	"ntpscan/internal/ntppool"
	"ntpscan/internal/rng"
	"ntpscan/internal/tabulate"
	"ntpscan/internal/world"
	"ntpscan/internal/zgrab"
)

// AblationFeedVsBatch quantifies the paper's §6 "Dynamic IP Addresses"
// argument: scanning the NTP feed in real time versus aggregating the
// collected addresses into a static list and scanning that list after
// the window. Dynamic end-user devices renumber in between, so the
// batch scan loses exactly the population NTP sourcing exists to find.
func AblationFeedVsBatch(opts Options) string {
	opts.fill()
	mk := func() *core.Pipeline {
		return core.NewPipeline(core.Config{
			Seed: opts.Seed,
			World: world.Config{
				DeviceScale: opts.DeviceScale,
				AddrScale:   opts.AddrScale,
				ASScale:     opts.ASScale,
			},
			Workers: opts.Workers,
		})
	}
	ctx := context.Background()

	// Arm A: real-time feed.
	live := mk()
	liveData := live.RunNTPCampaign(ctx)
	liveResp, liveScanned, _ := analysis.HitRate(liveData)
	liveFritz := groupCount(liveData, "FRITZ!Box")

	// Arm B: collect first, let a week pass (addresses churn), then
	// scan the aggregated list.
	batch := mk()
	var collected []netip.Addr
	seen := map[netip.Addr]struct{}{}
	batch.Collect(func(a netip.Addr) {
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			collected = append(collected, a)
		}
	})
	batch.AdvanceWorld(7 * 24 * time.Hour)
	sink := make([]*zgrab.Result, 0, len(collected))
	scanner := batchScanner(batch, &sink)
	scanner.Start(ctx)
	for _, a := range collected {
		scanner.Submit(a)
	}
	scanner.Close()
	batchData := analysis.NewDataset("batch", sink)
	batchResp, batchScanned, _ := analysis.HitRate(batchData)
	batchFritz := groupCount(batchData, "FRITZ!Box")

	t := tabulate.New("Ablation: real-time feed vs stale batch list",
		"Arm", "Scanned", "Responsive", "FRITZ!Box certs").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right)
	t.Cells("real-time feed", tabulate.Count(liveScanned), tabulate.Count(liveResp), tabulate.Count(liveFritz))
	t.Cells("post-hoc batch", tabulate.Count(batchScanned), tabulate.Count(batchResp), tabulate.Count(batchFritz))
	t.Note("aggregating NTP-sourced addresses into a list forfeits dynamic devices (§6)")
	return section("Ablation: feed vs batch", t.String())
}

func groupCount(d *analysis.Dataset, needle string) int {
	if g := analysis.FindGroup(analysis.TitleGroups(d), needle); g != nil {
		return g.Certs
	}
	return 0
}

func batchScanner(p *core.Pipeline, sink *[]*zgrab.Result) *zgrab.Scanner {
	var mu sync.Mutex
	return zgrab.NewScanner(zgrab.Config{
		Fabric:     p.W.Fabric(),
		Clock:      p.W.Clock(),
		Source:     core.ScanSource,
		Timeout:    p.Cfg.Timeout,
		UDPTimeout: p.Cfg.UDPTimeout,
		Workers:    p.Cfg.Workers,
		OnResult: func(r *zgrab.Result) {
			mu.Lock()
			*sink = append(*sink, r)
			mu.Unlock()
		},
	})
}

// AblationDedup compares the three host-counting strategies the paper
// weighs (§4.2, Appendix C): unique certificates/keys, network
// aggregation, and embedded MAC addresses.
func AblationDedup(s *Suite) string {
	d := s.NTP
	certs := map[string]struct{}{}
	macs := map[ipv6x.MAC]struct{}{}
	nets := map[netip.Prefix]struct{}{}
	addrs := map[netip.Addr]struct{}{}
	for _, module := range []string{"https", "mqtts", "amqps"} {
		for _, r := range d.Successes(module) {
			if r.TLS != nil && r.TLS.HandshakeOK {
				certs[r.TLS.CertFingerprint] = struct{}{}
			}
		}
	}
	for _, r := range d.Successes("ssh") {
		if r.SSH != nil && r.SSH.KeyFingerprint != "" {
			certs["ssh:"+r.SSH.KeyFingerprint] = struct{}{}
		}
	}
	for _, r := range d.Results {
		if !r.Success() {
			continue
		}
		addrs[r.IP] = struct{}{}
		nets[ipv6x.Prefix64(r.IP)] = struct{}{}
		if mac, ok := ipv6x.ExtractMAC(r.IP); ok && mac.Universal() {
			macs[mac] = struct{}{}
		}
	}
	t := tabulate.New("Ablation: host-count estimates by dedup strategy",
		"Strategy", "Estimate").
		SetAligns(tabulate.Left, tabulate.Right)
	t.Cells("addresses (no dedup)", tabulate.Count(len(addrs)))
	t.Cells("/64 networks", tabulate.Count(len(nets)))
	t.Cells("certs + host keys", tabulate.Count(len(certs)))
	t.Cells("embedded unique MACs", tabulate.Count(len(macs)))
	t.Note("the paper keeps certs/keys as the hard lower bound; MACs undercount (§6)")
	return section("Ablation: dedup strategies", t.String())
}

// AblationNetspeed demonstrates the §3.1 control loop: capture share
// grows with the operator-configured netspeed weight.
func AblationNetspeed(seed uint64) string {
	t := tabulate.New("Ablation: zone share vs netspeed",
		"Netspeed", "Measured share").
		SetAligns(tabulate.Right, tabulate.Right)
	r := rng.New(seed)
	for _, speed := range []float64{1, 10, 50, 200, 1000} {
		pool := ntppool.New()
		pool.SetBackground("DE", 220)
		pool.AddServer(&ntppool.Server{ID: "x", Country: "DE", NetSpeed: speed})
		hits := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			if _, ours := pool.MapClient("DE", r); ours {
				hits++
			}
		}
		t.Cells(fmt.Sprintf("%.0f", speed), tabulate.Pct(float64(hits)/draws))
	}
	return section("Ablation: netspeed control", t.String())
}

// AblationTitleThreshold sweeps the Levenshtein grouping threshold the
// paper fixes at 0.25, showing the grouping's sensitivity.
func AblationTitleThreshold(s *Suite) string {
	titleByCert := map[string]string{}
	for _, r := range s.NTP.Successes("https") {
		if r.TLS != nil && r.TLS.HandshakeOK && r.HTTP != nil && r.HTTP.StatusCode == 200 && r.HTTP.Title != "" {
			titleByCert[r.TLS.CertFingerprint] = r.HTTP.Title
		}
	}
	counts := map[string]int{}
	for _, title := range titleByCert {
		counts[title]++
	}
	var titles []string
	var weights []int
	for title, n := range counts {
		titles = append(titles, title)
		weights = append(weights, n)
	}
	t := tabulate.New("Ablation: title-grouping threshold sweep",
		"Threshold", "Groups").
		SetAligns(tabulate.Right, tabulate.Right)
	for _, th := range []float64{0, 0.1, 0.25, 0.5, 0.9} {
		groups := levenshtein.Cluster(titles, weights, th)
		t.Cells(fmt.Sprintf("%.2f", th), tabulate.Count(len(groups)))
	}
	t.Note("distinct titles: %d; the paper groups at 0.25", len(titles))
	return section("Ablation: title threshold", t.String())
}
