package experiments

import (
	"strings"
	"sync"
	"testing"

	"ntpscan/internal/analysis"
	"ntpscan/internal/ipv6x"
	"ntpscan/internal/targetgen"
)

// The suite is expensive; tests share one run.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite = Run(Options{
			Seed:        42,
			DeviceScale: 2e-3,
			AddrScale:   3e-6,
			ASScale:     0.02,
			Workers:     32,
		})
	})
	return suite
}

func TestTable1Shapes(t *testing.T) {
	s := testSuite(t)
	ours := s.P.Summary.Stats()
	pub := s.HitPubSum.Stats()
	full := s.HitFullSum.Stats()

	// Who wins: our collection yields far more addresses than the
	// public hitlist; the full hitlist dwarfs the public one.
	if ours.Addrs <= pub.Addrs {
		t.Errorf("ours %d addrs should exceed public hitlist %d", ours.Addrs, pub.Addrs)
	}
	if full.Addrs <= pub.Addrs {
		t.Errorf("full %d should exceed public %d", full.Addrs, pub.Addrs)
	}
	// Our networks are denser (eyeball clients pack /48s).
	if ours.Median48 < full.Median48 {
		t.Errorf("our median /48 density %.1f below hitlist %.1f", ours.Median48, full.Median48)
	}
	// The hitlist covers most of the ASes we see (paper: 10311 of
	// 10515).
	overlap := s.P.Summary.ASOverlap(s.HitFullSum)
	if float64(overlap) < 0.6*float64(ours.ASes) {
		t.Errorf("AS overlap %d of ours %d too low", overlap, ours.ASes)
	}
	// But the hitlist also knows many ASes we never see.
	if full.ASes <= ours.ASes {
		t.Errorf("hitlist ASes %d should exceed ours %d", full.ASes, ours.ASes)
	}
	out := s.Table1()
	if !strings.Contains(out, "IP addresses") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestFigure1Shapes(t *testing.T) {
	s := testSuite(t)
	ours := s.P.Summary.Stats()
	pub := s.HitPubSum.Stats()

	structured := func(st analysis.CollectionStats) float64 {
		return st.IIDShare(ipv6x.IIDZero) + st.IIDShare(ipv6x.IIDLastByte) +
			st.IIDShare(ipv6x.IIDLastTwoBytes)
	}
	// Hitlist leans structured (servers); ours leans entropy/EUI.
	if structured(ours) >= structured(pub) {
		t.Errorf("our structured share %.3f should be below hitlist public %.3f",
			structured(ours), structured(pub))
	}
	// More eyeball ASes in our data.
	if ours.CableShare() <= pub.CableShare() {
		t.Errorf("our Cable/DSL/ISP share %.3f should exceed hitlist %.3f",
			ours.CableShare(), pub.CableShare())
	}
	if out := s.Figure1(); !strings.Contains(out, "Cable/DSL/ISP") {
		t.Fatal("render broken")
	}
}

func table2Map(d *analysis.Dataset) map[string]analysis.Table2Row {
	out := map[string]analysis.Table2Row{}
	for _, r := range analysis.Table2(d) {
		key := strings.Fields(r.Protocol)[0]
		out[key] = r
	}
	return out
}

func TestTable2Shapes(t *testing.T) {
	s := testSuite(t)
	ours := table2Map(s.NTP)
	hit := table2Map(s.Hitlist)

	// The hitlist finds more endpoints for every protocol except CoAP
	// (the paper's key asymmetry).
	for _, proto := range []string{"HTTP", "SSH", "MQTT", "AMQP"} {
		if ours[proto].Addrs >= hit[proto].Addrs {
			t.Errorf("%s: ours %d should be below hitlist %d",
				proto, ours[proto].Addrs, hit[proto].Addrs)
		}
	}
	if ours["CoAP"].Addrs <= hit["CoAP"].Addrs {
		t.Errorf("CoAP: ours %d should exceed hitlist %d",
			ours["CoAP"].Addrs, hit["CoAP"].Addrs)
	}
	// Dynamic addressing: our HTTP addresses exceed unique certs.
	if ours["HTTP"].Addrs <= ours["HTTP"].CertsKeys {
		t.Errorf("HTTP addrs %d should exceed certs %d (dynamic re-finds)",
			ours["HTTP"].Addrs, ours["HTTP"].CertsKeys)
	}
	// Hit rate: ours is low (most captures are firewalled eyeballs).
	_, _, rate := analysis.HitRate(s.NTP)
	if rate > 0.35 {
		t.Errorf("NTP hit rate %.3f implausibly high", rate)
	}
}

func TestTable3Shapes(t *testing.T) {
	s := testSuite(t)
	oursTG := analysis.TitleGroups(s.NTP)
	hitTG := analysis.TitleGroups(s.Hitlist)

	fritzOurs := analysis.FindGroup(oursTG, "FRITZ!Box")
	if fritzOurs == nil {
		t.Fatal("no FRITZ!Box group in our data")
	}
	// FRITZ!Box dominates our certificates (paper: 90.8 %).
	if share := float64(fritzOurs.Certs) / float64(analysis.TotalCerts(oursTG)); share < 0.5 {
		t.Errorf("FRITZ!Box share %.3f too low", share)
	}
	// D-LINK: hitlist-only.
	if g := analysis.FindGroup(oursTG, "D-LINK"); g != nil {
		t.Errorf("D-LINK found via NTP: %+v", g)
	}
	if g := analysis.FindGroup(hitTG, "D-LINK"); g == nil {
		t.Error("D-LINK missing from hitlist results")
	}
	// FRITZ devices appear in the hitlist too, but far fewer.
	if g := analysis.FindGroup(hitTG, "FRITZ!Box"); g != nil && g.Certs >= fritzOurs.Certs {
		t.Errorf("hitlist FRITZ %d should be far below ours %d", g.Certs, fritzOurs.Certs)
	}

	// SSH: Raspbian is NTP territory; FreeBSD is hitlist territory.
	oursSSH := rowsByOS(analysis.SSHOSTable(s.NTP))
	hitSSH := rowsByOS(analysis.SSHOSTable(s.Hitlist))
	if oursSSH["Raspbian"] <= hitSSH["Raspbian"] {
		t.Errorf("Raspbian: ours %d vs hitlist %d", oursSSH["Raspbian"], hitSSH["Raspbian"])
	}
	if hitSSH["FreeBSD"] <= oursSSH["FreeBSD"] {
		t.Errorf("FreeBSD: hitlist %d vs ours %d", hitSSH["FreeBSD"], oursSSH["FreeBSD"])
	}

	// CoAP: castdevice invisible to the hitlist.
	oursCoAP := rowsByCoAP(analysis.CoAPGroups(s.NTP))
	hitCoAP := rowsByCoAP(analysis.CoAPGroups(s.Hitlist))
	if oursCoAP["castdevice"] == 0 {
		t.Error("no castdevice group via NTP")
	}
	if hitCoAP["castdevice"] != 0 {
		t.Errorf("hitlist found %d castdevices, paper found none", hitCoAP["castdevice"])
	}
	if analysis.NewDeviceFinds(s.NTP, s.Hitlist) == 0 {
		t.Error("no new/underrepresented devices counted")
	}
}

func TestFigure2Shape(t *testing.T) {
	s := testSuite(t)
	stats := analysis.SSHOutdated(s.NTP, s.Hitlist)
	if stats[0].Assessable == 0 || stats[1].Assessable == 0 {
		t.Fatalf("no assessable keys: %+v", stats)
	}
	// NTP-found servers are more outdated (Figure 2).
	if stats[0].OutdatedShare() <= stats[1].OutdatedShare() {
		t.Errorf("NTP outdated %.3f should exceed hitlist %.3f",
			stats[0].OutdatedShare(), stats[1].OutdatedShare())
	}
}

func TestFigure3Shape(t *testing.T) {
	s := testSuite(t)
	oursMQTT := analysis.BrokerAccess(s.NTP, "mqtt")
	hitMQTT := analysis.BrokerAccess(s.Hitlist, "mqtt")
	if oursMQTT.Total() == 0 || hitMQTT.Total() == 0 {
		t.Fatalf("no MQTT brokers: %+v %+v", oursMQTT, hitMQTT)
	}
	// Over half the NTP-found brokers lack access control; the hitlist
	// population is much better protected (paper: ~80 %).
	if oursMQTT.OpenShare() <= hitMQTT.OpenShare() {
		t.Errorf("MQTT open: ours %.3f should exceed hitlist %.3f",
			oursMQTT.OpenShare(), hitMQTT.OpenShare())
	}
	// AMQP access control is widespread on both sides.
	oursAMQP := analysis.BrokerAccess(s.NTP, "amqp")
	if oursAMQP.Total() > 0 && oursAMQP.OpenShare() > 0.5 {
		t.Errorf("AMQP open share %.3f too high", oursAMQP.OpenShare())
	}
}

func TestHeadlineShape(t *testing.T) {
	s := testSuite(t)
	shares := analysis.SecureShares(s.NTP, s.Hitlist)
	ntpShare, hitShare := shares[0].Share(), shares[1].Share()
	// Paper: 28.4 % vs 43.5 %. Require the gap and the rough bands.
	if ntpShare >= hitShare {
		t.Fatalf("NTP %.3f should be below hitlist %.3f", ntpShare, hitShare)
	}
	if ntpShare < 0.10 || ntpShare > 0.50 {
		t.Errorf("NTP secure share %.3f outside plausible band around 0.284", ntpShare)
	}
	if hitShare < 0.25 || hitShare > 0.65 {
		t.Errorf("hitlist secure share %.3f outside plausible band around 0.435", hitShare)
	}
	t.Logf("secure shares: ntp=%.3f (paper 0.284), hitlist=%.3f (paper 0.435)", ntpShare, hitShare)
}

func TestTable4Shape(t *testing.T) {
	s := testSuite(t)
	e := s.P.EUI
	if e.AddrsEUI == 0 || e.AddrsEUI >= e.AddrsTotal {
		t.Fatalf("EUI counts wrong: %d of %d", e.AddrsEUI, e.AddrsTotal)
	}
	// Most EUI addresses are locally administered (randomised MACs).
	if e.AddrsUnique*2 > e.AddrsEUI {
		t.Errorf("unique-bit addrs %d should be a minority of EUI %d", e.AddrsUnique, e.AddrsEUI)
	}
	top := e.TopVendors(3)
	if len(top) == 0 {
		t.Fatal("no vendors attributed")
	}
	// AVM leads (the paper's headline deviation from R&L).
	if !strings.Contains(top[0].Vendor, "AVM") {
		t.Errorf("top vendor = %q, want AVM", top[0].Vendor)
	}
}

func TestFigure4Shape(t *testing.T) {
	s := testSuite(t)
	countries, shares := s.P.EUI.OriginDistribution(analysis.MACListed)
	// Listed MACs (AVM gear) are captured mostly in Europe.
	euShare := 0.0
	for i, c := range countries {
		switch c {
		case "DE", "GB", "NL", "ES", "PL":
			euShare += shares[i]
		}
	}
	if euShare < 0.4 {
		t.Errorf("European share of listed MACs %.3f too low", euShare)
	}
}

func TestTable7Shape(t *testing.T) {
	s := testSuite(t)
	rows := s.P.PerCountrySorted()
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Country != "IN" {
		t.Errorf("top = %s, want IN", rows[0].Country)
	}
	if rows[0].Addrs < 5*rows[len(rows)-1].Addrs {
		t.Errorf("per-server spread too flat: %v", rows)
	}
}

func TestRenderAll(t *testing.T) {
	s := testSuite(t)
	out := s.All()
	for _, want := range []string{
		"Table 1", "Figure 1", "Table 2", "Table 3", "Figure 2",
		"Figure 3", "Secure-share headline", "Table 4", "Figure 4",
		"Table 5", "Table 6", "Table 7", "Key reuse",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("All() missing %q", want)
		}
	}
}

func TestSection5(t *testing.T) {
	res := Section5(7)
	rep := res.Report
	if len(rep.Campaigns) != 2 {
		t.Fatalf("campaigns = %d", len(rep.Campaigns))
	}
	if rep.ScatterPackets != 0 {
		t.Errorf("scatter = %d", rep.ScatterPackets)
	}
	if rep.MatchedPackets != rep.ScanPackets {
		t.Errorf("matched %d of %d", rep.MatchedPackets, rep.ScanPackets)
	}
	// One campaign is broad (research, ~1011 ports), one narrow
	// (covert, ≤10 ports).
	var broad, narrow bool
	for _, c := range rep.Campaigns {
		if len(c.Ports) > 100 {
			broad = true
		}
		if len(c.Ports) <= 10 {
			narrow = true
		}
	}
	if !broad || !narrow {
		t.Errorf("campaign port profiles wrong: %+v", rep.Campaigns)
	}
	if !strings.Contains(res.Rendered, "telescope attribution") {
		t.Error("render broken")
	}
}

func TestAblations(t *testing.T) {
	s := testSuite(t)
	if out := AblationDedup(s); !strings.Contains(out, "certs + host keys") {
		t.Error("dedup ablation broken")
	}
	if out := AblationNetspeed(3); !strings.Contains(out, "1000") {
		t.Error("netspeed ablation broken")
	}
	if out := AblationTitleThreshold(s); !strings.Contains(out, "0.25") {
		t.Error("threshold ablation broken")
	}
}

func TestAblationFeedVsBatch(t *testing.T) {
	out := AblationFeedVsBatch(Options{
		Seed: 5, DeviceScale: 1e-3, AddrScale: 1e-6, ASScale: 0.02, Workers: 32,
	})
	if !strings.Contains(out, "real-time feed") || !strings.Contains(out, "post-hoc batch") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestCollectOnlySuite(t *testing.T) {
	s := CollectOnly(Options{Seed: 9, DeviceScale: 1e-3, AddrScale: 1e-6, ASScale: 0.02, Workers: 32})
	if s.P.Summary.Set().Len() == 0 {
		t.Fatal("no collection")
	}
	out := s.All()
	if !strings.Contains(out, "Table 1") || strings.Contains(out, "Table 2") {
		t.Error("CollectOnly should render collection tables only")
	}
}

func TestFigure5And6Render(t *testing.T) {
	s := testSuite(t)
	f5 := s.Figure5()
	if !strings.Contains(f5, "Figure 5") || !strings.Contains(f5, "/56") {
		t.Fatalf("figure 5 broken:\n%s", f5)
	}
	// By-address counting must show at least as much outdatedness as
	// by-key counting (key-reusing outdated servers multiply).
	byNet := analysis.SSHOutdatedByNetwork(s.NTP, s.Hitlist)
	byKey := analysis.SSHOutdated(s.NTP, s.Hitlist)
	if byNet[0][0].OutdatedShare()+0.02 < byKey[0].OutdatedShare() {
		t.Errorf("by-addr outdated %.3f unexpectedly far below by-key %.3f",
			byNet[0][0].OutdatedShare(), byKey[0].OutdatedShare())
	}
	f6 := s.Figure6()
	if !strings.Contains(f6, "MQTT access control by network") {
		t.Fatalf("figure 6 broken:\n%s", f6)
	}
}

func TestExtensionTargetGen(t *testing.T) {
	s := testSuite(t)
	out := ExtensionTargetGen(s, 500)
	if !strings.Contains(out, "NTP-sourced (eyeball)") ||
		!strings.Contains(out, "Hitlist responsive (servers)") {
		t.Fatalf("render broken:\n%s", out)
	}
	// The core claim: the eyeball-trained model learns from a far
	// smaller share of its seeds than the server-trained model.
	ntpSeeds := s.P.Summary.Set().Sorted()
	ntpModel := targetgen.Train(ntpSeeds)
	if ntpModel.LearnableShare() > 0.5 {
		t.Errorf("eyeball model learnable share %.3f implausibly high",
			ntpModel.LearnableShare())
	}
	live := ExtensionGeneratedVsLive(s)
	if !strings.Contains(live, "live NTP feed") {
		t.Fatalf("render broken:\n%s", live)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	opts := Options{Seed: 77, DeviceScale: 5e-4, AddrScale: 5e-7, ASScale: 0.02, Workers: 16}
	a := CollectOnly(opts)
	b := CollectOnly(opts)
	if got, want := a.Table1(), b.Table1(); got != want {
		t.Fatalf("Table1 not deterministic:\n%s\nvs\n%s", got, want)
	}
	if got, want := a.Figure1(), b.Figure1(); got != want {
		t.Fatal("Figure1 not deterministic")
	}
	if got, want := a.Table7(), b.Table7(); got != want {
		t.Fatal("Table7 not deterministic")
	}
}

func TestSection5Deterministic(t *testing.T) {
	a, b := Section5(123), Section5(123)
	if a.Rendered != b.Rendered {
		t.Fatal("Section5 not deterministic")
	}
}
