package experiments

import (
	"net/netip"
	"strings"
	"time"

	"ntpscan/internal/netsim"
	"ntpscan/internal/ntp"
	"ntpscan/internal/tabulate"
	"ntpscan/internal/telescope"
)

// Section5Result carries the telescope experiment's outputs.
type Section5Result struct {
	Report   *telescope.Report
	Research *telescope.Actor
	Covert   *telescope.Actor
	Rendered string
}

// Section5 runs the "NTP-Sourcing by Others" experiment: a pool of
// benign servers plus a research-style actor (15 servers, 1011 ports,
// immediate scanning) and a covert actor (cloud-hosted, security
// ports, multi-day spread); the observer queries every server from
// distinct addresses and attributes all inbound scans.
func Section5(seed uint64) *Section5Result {
	clock := netsim.NewManualClock(time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC))
	fabric := netsim.New(netsim.Config{Clock: clock, DialTimeout: time.Millisecond})

	// Benign pool servers that answer but never scan. One in seven is
	// listed but unresponsive (decommissioned or firewalled members the
	// pool has not yet descored) — the paper measured an 86 % response
	// rate across its continuous querying.
	var servers []telescope.PoolServerEntry
	for i := 0; i < 60; i++ {
		addr := netip.AddrFrom16(benignAddr(i))
		if i%7 == 6 {
			fabric.Register(addr, netsim.NewHost("dead-ntp"))
		} else {
			srv := ntp.NewServer(ntp.ServerConfig{Now: clock.Now})
			fabric.Register(addr, netsim.NewHost("pool-ntp").HandleUDP(ntp.Port, srv.Handle))
		}
		servers = append(servers, telescope.PoolServerEntry{Addr: netip.AddrPortFrom(addr, ntp.Port)})
	}

	research := telescope.NewActor(fabric, telescope.ResearchActorProfile(
		netip.MustParsePrefix("2610:148::/32"), // university space
		netip.MustParsePrefix("2610:148::/32")),
		seed)
	covert := telescope.NewActor(fabric, telescope.CovertActorProfile(
		netip.MustParsePrefix("2600:1f00::/32"),  // cloud provider A
		netip.MustParsePrefix("2a01:7e00::/32")), // cloud provider B
		seed+1)
	servers = append(servers, research.PoolEntries()...)
	servers = append(servers, covert.PoolEntries()...)

	obs := telescope.NewObserver(fabric, netip.MustParsePrefix("2001:db8:7e1e:5c00::/56"))
	defer obs.Close()
	obs.QueryAll(servers, 100*time.Millisecond)
	research.RunScans(clock)
	covert.RunScans(clock)
	rep := obs.Analyze()

	var b strings.Builder
	t := tabulate.New("Section 5: telescope attribution",
		"Campaign net", "Sources", "NTP servers", "Ports", "Targets", "First delay", "Spread").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right,
			tabulate.Right, tabulate.Right, tabulate.Right)
	for _, c := range rep.Campaigns {
		t.Cells(c.SourceNet.String(),
			tabulate.Count(len(c.Sources)), tabulate.Count(len(c.Servers)),
			tabulate.Count(len(c.Ports)), tabulate.Count(c.Targets),
			c.FirstDelay.Truncate(time.Minute).String(),
			c.Spread.Truncate(time.Minute).String())
	}
	t.Note("queries sent %d, answered %d (%.0f%%); scan packets %d, matched %d, scatter %d",
		rep.QueriesSent, rep.QueriesAnswered,
		100*float64(rep.QueriesAnswered)/float64(max(1, rep.QueriesSent)),
		rep.ScanPackets, rep.MatchedPackets, rep.ScatterPackets)

	b.WriteString(section("Section 5 (NTP-sourcing by others)", t.String()))
	return &Section5Result{
		Report:   rep,
		Research: research,
		Covert:   covert,
		Rendered: b.String(),
	}
}

func benignAddr(i int) (b [16]byte) {
	b[0], b[1] = 0x20, 0x01
	b[2], b[3] = 0x0b, 0x00
	b[14] = byte(i >> 8)
	b[15] = byte(i)
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
