package experiments

import (
	"fmt"
	"strings"

	"ntpscan/internal/analysis"
	"ntpscan/internal/ipv6x"
	"ntpscan/internal/tabulate"
	"ntpscan/internal/zgrab"
)

// Table1 renders the dataset-size comparison (distinct IPs, /48s, ASes,
// overlaps, medians) across our collection, the R&L-era run, and the
// hitlist variants.
func (s *Suite) Table1() string {
	ours := s.P.Summary
	oursStats := ours.Stats()
	rl := s.RLSum.Stats()
	pub := s.HitPubSum.Stats()
	full := s.HitFullSum.Stats()

	t := tabulate.New("Table 1: number of distinct IPs/networks per dataset",
		"", "Our Data", "R&L-era", "TUM public", "TUM full").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right)
	t.Cells("IP addresses",
		tabulate.Count(oursStats.Addrs), tabulate.Count(rl.Addrs),
		tabulate.Count(pub.Addrs), tabulate.Count(full.Addrs))
	t.Cells("  overlap w/ ours", "-",
		tabulate.Count(ours.Set().OverlapWith(s.RLSum.Set())),
		tabulate.Count(ours.Set().OverlapWith(s.HitPubSum.Set())),
		tabulate.Count(ours.Set().OverlapWith(s.HitFullSum.Set())))
	t.Cells("/48 networks",
		tabulate.Count(oursStats.Nets48), tabulate.Count(rl.Nets48),
		tabulate.Count(pub.Nets48), tabulate.Count(full.Nets48))
	t.Cells("  overlap w/ ours", "-",
		tabulate.Count(ours.Per48().OverlapWith(s.RLSum.Per48())),
		tabulate.Count(ours.Per48().OverlapWith(s.HitPubSum.Per48())),
		tabulate.Count(ours.Per48().OverlapWith(s.HitFullSum.Per48())))
	t.Cells("ASes",
		tabulate.Count(oursStats.ASes), tabulate.Count(rl.ASes),
		tabulate.Count(pub.ASes), tabulate.Count(full.ASes))
	t.Cells("  overlap w/ ours", "-",
		tabulate.Count(ours.ASOverlap(s.RLSum)),
		tabulate.Count(ours.ASOverlap(s.HitPubSum)),
		tabulate.Count(ours.ASOverlap(s.HitFullSum)))
	t.Cells("median IPs in /48s",
		fmt.Sprintf("%.1f", oursStats.Median48), fmt.Sprintf("%.1f", rl.Median48),
		fmt.Sprintf("%.1f", pub.Median48), fmt.Sprintf("%.1f", full.Median48))
	t.Cells("median IPs in ASes",
		fmt.Sprintf("%.1f", oursStats.MedianAS), fmt.Sprintf("%.1f", rl.MedianAS),
		fmt.Sprintf("%.1f", pub.MedianAS), fmt.Sprintf("%.1f", full.MedianAS))
	return section("Table 1", t.String())
}

// Figure1 renders the IID-class proportions plus the Cable/DSL/ISP AS
// share per dataset.
func (s *Suite) Figure1() string {
	datasets := []struct {
		name  string
		stats analysis.CollectionStats
	}{
		{"Our Data", s.P.Summary.Stats()},
		{"R&L-era", s.RLSum.Stats()},
		{"TUM public", s.HitPubSum.Stats()},
		{"TUM full", s.HitFullSum.Stats()},
	}
	t := tabulate.New("Figure 1: proportion of addresses grouped by IID class and AS type",
		"Dataset", "zero", "last-byte", "last-2B", "ent<1", "ent 1-2", "ent>=2", "Cable/DSL/ISP").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right,
			tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right)
	for _, d := range datasets {
		cells := []string{d.name}
		for c := ipv6x.IIDClass(0); c < ipv6x.NIIDClasses; c++ {
			cells = append(cells, tabulate.Pct(d.stats.IIDShare(c)))
		}
		cells = append(cells, tabulate.Pct(d.stats.CableShare()))
		t.Cells(cells...)
	}
	return section("Figure 1", t.String())
}

// Table2 renders successful scans by protocol for both sources.
func (s *Suite) Table2() string {
	ours := analysis.Table2(s.NTP)
	hit := analysis.Table2(s.Hitlist)
	t := tabulate.New("Table 2: successful scans by protocol",
		"Protocol", "Our #Addrs", "Our w/TLS", "Our Certs/Keys",
		"Hitlist #Addrs", "Hitlist w/TLS", "Hitlist Certs/Keys").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right,
			tabulate.Right, tabulate.Right, tabulate.Right)
	for i := range ours {
		t.Cells(ours[i].Protocol,
			tabulate.Count(ours[i].Addrs), tabulate.Count(ours[i].AddrsTLS), tabulate.Count(ours[i].CertsKeys),
			tabulate.Count(hit[i].Addrs), tabulate.Count(hit[i].AddrsTLS), tabulate.Count(hit[i].CertsKeys))
	}
	respO, scanO, rateO := analysis.HitRate(s.NTP)
	respH, scanH, rateH := analysis.HitRate(s.Hitlist)
	t.Note("hit rate ours: %d/%d = %.4f; hitlist: %d/%d = %.4f",
		respO, scanO, rateO, respH, scanH, rateH)
	return section("Table 2", t.String())
}

// Table3 renders the device-type panels: title groups, SSH OS, CoAP
// resource groups.
func (s *Suite) Table3() string {
	var b strings.Builder

	oursTG, hitTG := analysis.TitleGroups(s.NTP), analysis.TitleGroups(s.Hitlist)
	oursTotal, hitTotal := analysis.TotalCerts(oursTG), analysis.TotalCerts(hitTG)
	th := tabulate.New("HTML title groups (#certificates)",
		"Title group", "Our Data", "TUM Hitlist").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right)
	listed := map[string]bool{}
	addRow := func(g analysis.TitleGroup, source int) {
		if listed[g.Representative] {
			return
		}
		listed[g.Representative] = true
		var oCount, hCount int
		if og := analysis.FindGroup(oursTG, g.Representative); og != nil {
			oCount = og.Certs
		}
		if hg := analysis.FindGroup(hitTG, g.Representative); hg != nil {
			hCount = hg.Certs
		}
		th.Cells(clip(g.Representative, 42),
			tabulate.CountPct(oCount, oursTotal), tabulate.CountPct(hCount, hitTotal))
		_ = source
	}
	for i, g := range oursTG {
		if i >= 8 {
			break
		}
		addRow(g, 0)
	}
	for i, g := range hitTG {
		if i >= 8 {
			break
		}
		addRow(g, 1)
	}
	b.WriteString(th.String())
	b.WriteByte('\n')

	to := tabulate.New("SSH OS (#host keys)", "OS", "Our Data", "TUM Hitlist").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right)
	oursSSH := rowsByOS(analysis.SSHOSTable(s.NTP))
	hitSSH := rowsByOS(analysis.SSHOSTable(s.Hitlist))
	oursTotalSSH, hitTotalSSH := sumOS(oursSSH), sumOS(hitSSH)
	for _, os := range []string{"Ubuntu", "Debian", "Raspbian", "FreeBSD", "other/unknown"} {
		to.Cells(os,
			tabulate.CountPct(oursSSH[os], oursTotalSSH),
			tabulate.CountPct(hitSSH[os], hitTotalSSH))
	}
	b.WriteString(to.String())
	b.WriteByte('\n')

	tc := tabulate.New("CoAP resource groups (#addresses)", "Group", "Our Data", "TUM Hitlist").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right)
	oursCoAP := rowsByCoAP(analysis.CoAPGroups(s.NTP))
	hitCoAP := rowsByCoAP(analysis.CoAPGroups(s.Hitlist))
	oursTotalC, hitTotalC := sumCoAP(oursCoAP), sumCoAP(hitCoAP)
	for _, g := range []string{"castdevice", "qlink", "efento", "nanoleaf", "empty", "other"} {
		tc.Cells(g,
			tabulate.CountPct(oursCoAP[g], oursTotalC),
			tabulate.CountPct(hitCoAP[g], hitTotalC))
	}
	tc.Note("new or underrepresented devices found via NTP: %s",
		tabulate.Count(analysis.NewDeviceFinds(s.NTP, s.Hitlist)))
	b.WriteString(tc.String())
	return section("Table 3", b.String())
}

func rowsByOS(rows []analysis.SSHOSRow) map[string]int {
	out := map[string]int{}
	for _, r := range rows {
		out[r.OS] = r.Keys
	}
	return out
}

func sumOS(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func rowsByCoAP(rows []analysis.CoAPRow) map[string]int {
	out := map[string]int{}
	for _, r := range rows {
		out[r.Group] = r.Addrs
	}
	return out
}

func sumCoAP(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}

// Figure2 renders SSH up-to-dateness per source.
func (s *Suite) Figure2() string {
	stats := analysis.SSHOutdated(s.NTP, s.Hitlist)
	t := tabulate.New("Figure 2: SSH patch state (unique keys, Debian-derived)",
		"Dataset", "Assessable", "Up to date", "Outdated", "Outdated share").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right)
	for i, name := range []string{"Our Data", "TUM Hitlist"} {
		t.Cells(name,
			tabulate.Count(stats[i].Assessable),
			tabulate.Count(stats[i].UpToDate()),
			tabulate.Count(stats[i].Outdated),
			tabulate.Pct(stats[i].OutdatedShare()))
	}
	return section("Figure 2", t.String())
}

// Figure3 renders broker access control per source.
func (s *Suite) Figure3() string {
	t := tabulate.New("Figure 3: broker access control",
		"Protocol", "Dataset", "Open", "Access control", "Open share").
		SetAligns(tabulate.Left, tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right)
	for _, proto := range []string{"mqtt", "amqp"} {
		for i, d := range []*analysis.Dataset{s.NTP, s.Hitlist} {
			name := []string{"Our Data", "TUM Hitlist"}[i]
			ac := analysis.BrokerAccess(d, proto)
			t.Cells(strings.ToUpper(proto), name,
				tabulate.Count(ac.Open), tabulate.Count(ac.AccessControl),
				tabulate.Pct(ac.OpenShare()))
		}
	}
	return section("Figure 3", t.String())
}

// Headline renders the §4.4 secure-share takeaway.
func (s *Suite) Headline() string {
	shares := analysis.SecureShares(s.NTP, s.Hitlist)
	t := tabulate.New("Headline: secure share of SSH+IoT hosts",
		"Dataset", "Hosts", "Secure", "Share").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right)
	for i, name := range []string{"Our Data (NTP)", "TUM Hitlist"} {
		t.Cells(name, tabulate.Count(shares[i].Hosts),
			tabulate.Count(shares[i].Secure), tabulate.Pct(shares[i].Share()))
	}
	t.Note("paper: 28.4%% of 73 975 NTP hosts vs 43.5%% of 854 704 hitlist hosts")
	return section("Secure-share headline (§4.4)", t.String())
}

// KeyReuse renders the §6 reuse analysis.
func (s *Suite) KeyReuse() string {
	t := tabulate.New("Key reuse across >2 ASes (§6)",
		"Dataset", "Reused keys", "IPs on reused keys", "Top key IPs", "Top key ASes", "Widest key ASes").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right)
	for i, d := range []*analysis.Dataset{s.NTP, s.Hitlist} {
		name := []string{"Our Data", "TUM Hitlist"}[i]
		st := analysis.KeyReuse(s.P.Ctx, d)
		t.Cells(name, tabulate.Count(st.ReusedKeys), tabulate.Count(st.ReusedIPs),
			tabulate.Count(st.TopKeyIPs), tabulate.Count(st.TopKeyASes),
			tabulate.Count(st.WidestKeyASes))
	}
	return section("Key reuse (§6)", t.String())
}

// Table4 renders the EUI-64 vendor attribution.
func (s *Suite) Table4() string {
	e := s.P.EUI
	t := tabulate.New("Table 4: embedded MACs by manufacturer",
		"Manufacturer", "#MACs", "#IPs").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right)
	for _, row := range e.TopVendors(20) {
		t.Cells(clip(row.Vendor, 48), tabulate.Count(row.MACs), tabulate.Count(row.IPs))
	}
	t.Note("addresses: %s total, %s EUI-64, %s with unique bit; %s distinct MACs, %s IEEE-listed",
		tabulate.Count(e.AddrsTotal), tabulate.Count(e.AddrsEUI), tabulate.Count(e.AddrsUnique),
		tabulate.Count(e.DistinctMACs()), tabulate.Count(e.ListedMACs()))
	return section("Table 4 (Appendix B)", t.String())
}

// Figure4 renders the capture-country distribution per MAC class.
func (s *Suite) Figure4() string {
	t := tabulate.New("Figure 4: capture-server country by embedded-MAC class",
		"Class", "Top countries (share)").
		SetAligns(tabulate.Left, tabulate.Left)
	for class := analysis.MACClass(0); class < analysis.NMACClasses; class++ {
		countries, shares := s.P.EUI.OriginDistribution(class)
		type cs struct {
			c string
			s float64
		}
		var all []cs
		for i := range countries {
			all = append(all, cs{countries[i], shares[i]})
		}
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j].s > all[i].s {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		var parts []string
		for i, v := range all {
			if i >= 4 {
				break
			}
			parts = append(parts, fmt.Sprintf("%s %s", v.c, tabulate.Pct(v.s)))
		}
		t.Cells(class.String(), strings.Join(parts, ", "))
	}
	return section("Figure 4 (Appendix B)", t.String())
}

// Table5 renders per-network aggregation for both sources.
func (s *Suite) Table5() string {
	var b strings.Builder
	for i, d := range []*analysis.Dataset{s.NTP, s.Hitlist} {
		name := []string{"Our Data", "TUM Hitlist"}[i]
		t := tabulate.New("Successful scans per network ("+name+")",
			"Protocol", "Addrs", "/32", "/48", "/56", "/64", "ASes", "Countries").
			SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right,
				tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right)
		for _, row := range analysis.Table5(s.P.Ctx, d) {
			t.Cells(row.Module, tabulate.Count(row.Addrs),
				tabulate.Count(row.Nets32), tabulate.Count(row.Nets48),
				tabulate.Count(row.Nets56), tabulate.Count(row.Nets64),
				tabulate.Count(row.ASes), tabulate.Count(row.Countries))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return section("Table 5 (Appendix C)", b.String())
}

// Table6 renders device groups counted by networks.
func (s *Suite) Table6() string {
	var b strings.Builder
	for i, d := range []*analysis.Dataset{s.NTP, s.Hitlist} {
		name := []string{"Our Data", "TUM Hitlist"}[i]
		t := tabulate.New("CoAP groups by networks ("+name+")",
			"Group", "IPs", "/48", "/56", "/64").
			SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right)
		rows := analysis.GroupByNetworks(d, "coap", func(r *zgrab.Result) string {
			if r.CoAP == nil || r.CoAP.Code != "2.05" {
				return ""
			}
			return analysis.CoAPGroupOf(r.CoAP.Resources)
		})
		for _, row := range rows {
			t.Cells(row.Group, tabulate.Count(row.IPs), tabulate.Count(row.Nets48),
				tabulate.Count(row.Nets56), tabulate.Count(row.Nets64))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')

		ts := tabulate.New("SSH OS by networks ("+name+")",
			"OS", "IPs", "/48", "/56", "/64").
			SetAligns(tabulate.Left, tabulate.Right, tabulate.Right, tabulate.Right, tabulate.Right)
		osRows := analysis.GroupByNetworks(d, "ssh", func(r *zgrab.Result) string {
			if r.SSH == nil {
				return ""
			}
			switch r.SSH.OS {
			case "Ubuntu", "Debian", "Raspbian", "FreeBSD":
				return r.SSH.OS
			default:
				return "other/unknown"
			}
		})
		for _, row := range osRows {
			ts.Cells(row.Group, tabulate.Count(row.IPs), tabulate.Count(row.Nets48),
				tabulate.Count(row.Nets56), tabulate.Count(row.Nets64))
		}
		b.WriteString(ts.String())
		b.WriteByte('\n')
	}
	return section("Table 6 (Appendix C)", b.String())
}

// Table7 renders addresses collected per vantage server.
func (s *Suite) Table7() string {
	t := tabulate.New("Table 7: distinct addresses per vantage server",
		"Location", "#Addresses").
		SetAligns(tabulate.Left, tabulate.Right)
	for _, row := range s.P.PerCountrySorted() {
		t.Cells(row.Country, tabulate.Count(row.Addrs))
	}
	return section("Table 7 (Appendix D)", t.String())
}

// Table8 renders the top-N titles and SSH OS strings (Tables 8/9).
func (s *Suite) Table8() string {
	var b strings.Builder
	t := tabulate.New("Top HTML title groups by unique certificate",
		"Title group", "Our Data", "TUM Hitlist").
		SetAligns(tabulate.Left, tabulate.Right, tabulate.Right)
	ours, hit := analysis.TitleGroups(s.NTP), analysis.TitleGroups(s.Hitlist)
	seen := map[string]bool{}
	emit := func(groups []analysis.TitleGroup, limit int) {
		for i, g := range groups {
			if i >= limit || seen[g.Representative] {
				continue
			}
			seen[g.Representative] = true
			o, h := 0, 0
			if og := analysis.FindGroup(ours, g.Representative); og != nil {
				o = og.Certs
			}
			if hg := analysis.FindGroup(hit, g.Representative); hg != nil {
				h = hg.Certs
			}
			t.Cells(clip(g.Representative, 44), tabulate.Count(o), tabulate.Count(h))
		}
	}
	emit(ours, 15)
	emit(hit, 15)
	b.WriteString(t.String())
	return section("Tables 8/9 (Appendix D, top groups)", b.String())
}
