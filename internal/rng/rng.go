// Package rng provides deterministic, hierarchically seedable random
// number streams for the simulation.
//
// Every stochastic component of the reproduction draws from a Stream
// derived from a single root seed, so an entire experiment is
// bit-reproducible given (seed, scale). Streams are derived by name with
// Derive, which hashes the parent state and the label; two streams with
// different labels are statistically independent, and deriving the same
// label twice yields the same stream.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// reference construction by Blackman and Vigna. It is not cryptographic;
// it only has to be fast, well distributed, and stable across releases
// (math/rand's default source gives no cross-version guarantee, and
// math/rand/v2's ChaCha8 is seeded from OS entropy).
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/bits"
	"strconv"
)

// Stream is a deterministic random number stream. It is NOT safe for
// concurrent use; derive one stream per goroutine instead of sharing.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is the
// recommended seeder for xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	st.Reseed(seed)
	return st
}

// Reseed reinitialises the stream in place from a 64-bit seed, exactly
// as New would. Hot paths that derive one short-lived stream per item
// (per-device materialization, per-address derivation) reuse a single
// scratch Stream through Reseed instead of allocating with New.
func (r *Stream) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s == [4]uint64{} {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Derive returns a child stream whose seed is a function of the parent's
// current seed material and the label. Derivation does not advance the
// parent, so the set of children is stable regardless of how much the
// parent has been used before deriving — callers should derive all
// children up front for clarity, but are not required to.
func (r *Stream) Derive(label string) *Stream {
	h := fnv.New64a()
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:], r.s[0])
	binary.LittleEndian.PutUint64(buf[8:], r.s[1])
	binary.LittleEndian.PutUint64(buf[16:], r.s[2])
	binary.LittleEndian.PutUint64(buf[24:], r.s[3])
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// State exports the stream's current position so a checkpoint can
// capture it. Restoring the four words with SetState resumes the
// stream exactly where it left off.
func (r *Stream) State() [4]uint64 { return r.s }

// SetState restores a position previously captured with State. The
// all-zero state is invalid for xoshiro and is rejected by falling
// back to a fixed non-zero word (it can only arise from a corrupted
// checkpoint, never from State).
func (r *Stream) SetState(s [4]uint64) {
	if s == [4]uint64{} {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}

// DeriveIndexed returns Derive(label + "/" + i) without building the
// label through fmt. Sharded pipelines derive one stream per shard index
// — e.g. DeriveIndexed("volume/shard", 3) == Derive("volume/shard/3") —
// so a shard's stream depends only on the root seed and its index, never
// on how many goroutines execute the shards.
func (r *Stream) DeriveIndexed(label string, i int) *Stream {
	return r.Derive(label + "/" + strconv.Itoa(i))
}

// Uint64 returns the next 64 bits from the stream.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint32 returns the next 32 bits.
func (r *Stream) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Int63 returns a non-negative int64.
func (r *Stream) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method.
func (r *Stream) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Stream) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns exp(mu + sigma*N(0,1)); handy for heavy-tailed counts
// such as per-network device populations.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Zipf returns a value in [0, n) with a Zipf-like distribution of
// exponent s (s > 0). Small values are most likely. This uses the
// rejection-inversion method specialised to bounded support.
func (r *Stream) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation: P(X <= x) ~ H(x)/H(n) with
	// H(x) = (x+1)^(1-s). Exact enough for workload shaping.
	if s == 1 {
		s = 1.0000001
	}
	oneMinus := 1 - s
	hn := math.Pow(float64(n), oneMinus)
	u := r.Float64()
	x := math.Pow(u*(hn-1)+1, 1/oneMinus) - 1
	v := int(x)
	if v < 0 {
		v = 0
	}
	if v >= n {
		v = n - 1
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function, Fisher-Yates style.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](r *Stream, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// WeightedIndex returns an index into weights chosen with probability
// proportional to the weight. Zero or negative weights are never chosen.
// It returns -1 if the total weight is not positive.
func (r *Stream) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	target := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		target -= w
		if target < 0 {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// Bytes fills b with random bytes.
func (r *Stream) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], r.Uint64())
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
