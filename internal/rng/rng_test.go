package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestDeriveStable(t *testing.T) {
	root := New(7)
	c1 := root.Derive("world")
	c2 := root.Derive("world")
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("deriving the same label twice should yield identical streams")
	}
	c3 := root.Derive("pool")
	if c1.Uint64() == c3.Uint64() {
		t.Fatal("different labels should yield different streams")
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Derive("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive must not advance the parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square-ish sanity: 10 buckets, 100k draws, each bucket within
	// 5% relative error of the expected count.
	r := New(11)
	const n, draws = 10, 100000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64n(n)]++
	}
	want := draws / n
	for i, c := range buckets {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(uint8) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) must be true")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	const n, draws = 100, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Zipf(n, 1.2)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("Zipf should be head-heavy: first=%d last=%d", counts[0], counts[n-1])
	}
	if counts[0] < draws/10 {
		t.Fatalf("Zipf head too light: %d of %d", counts[0], draws)
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := New(29)
	if v := r.Zipf(1, 1.5); v != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", v)
	}
	if v := r.Zipf(0, 1.5); v != 0 {
		t.Fatalf("Zipf(0) = %d, want 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for n := 0; n < 40; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(41)
	w := []float64{0, 1, 3, 0}
	counts := make([]int, len(w))
	for i := 0; i < 40000; i++ {
		idx := r.WeightedIndex(w)
		if idx < 0 || idx >= len(w) {
			t.Fatalf("index out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight entries chosen: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
	if r.WeightedIndex([]float64{0, 0}) != -1 {
		t.Fatal("all-zero weights should return -1")
	}
	if r.WeightedIndex(nil) != -1 {
		t.Fatal("empty weights should return -1")
	}
}

func TestBytesFills(t *testing.T) {
	r := New(43)
	for _, n := range []int{0, 1, 7, 8, 9, 17, 64} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 8 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) left buffer all zero", n)
			}
		}
	}
}

func TestPickCoversAll(t *testing.T) {
	r := New(47)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick missed elements: %v", seen)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(53)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func TestDeriveIndexed(t *testing.T) {
	r := New(7)
	// DeriveIndexed is sugar for Derive("label/i") — shard streams must
	// line up with the hand-built label exactly.
	a := New(7).DeriveIndexed("volume/shard", 3)
	b := r.Derive("volume/shard/3")
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("DeriveIndexed diverged from Derive at %d", i)
		}
	}
	// Different indices give independent streams.
	c, d := r.DeriveIndexed("x", 0), r.DeriveIndexed("x", 1)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("indexed streams 0 and 1 collide %d/100 draws", same)
	}
}

func TestStateSetStateRoundTrip(t *testing.T) {
	r := New(42).Derive("checkpoint/stream")
	for i := 0; i < 1000; i++ {
		r.Uint64() // advance to an arbitrary mid-stream position
	}
	state := r.State()

	// A fresh stream restored to that position replays the identical
	// tail — draw by draw, across every output shape.
	fresh := New(0)
	fresh.SetState(state)
	for i := 0; i < 200; i++ {
		if a, b := r.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("restored stream diverged at draw %d: %x vs %x", i, a, b)
		}
	}
	if a, b := r.Float64(), fresh.Float64(); a != b {
		t.Fatalf("Float64 after restore: %v vs %v", a, b)
	}

	// State is a copy, not an alias: drawing must not mutate a captured
	// snapshot.
	snap := r.State()
	r.Uint64()
	if snap != r.State() {
		// expected: the stream moved on while the snapshot stayed put
	} else {
		t.Fatal("State did not advance after a draw")
	}

	// The invalid all-zero state falls back to a usable stream instead
	// of the xoshiro fixed point.
	z := New(1)
	z.SetState([4]uint64{})
	if z.Uint64() == 0 && z.Uint64() == 0 && z.Uint64() == 0 {
		t.Fatal("all-zero SetState left the stream stuck at zero")
	}
}
