package analysis

import (
	"net/netip"
	"sort"
	"strings"

	"ntpscan/internal/levenshtein"
)

// TitleThreshold is the paper's normalized Levenshtein grouping
// threshold for HTML titles (§4.3.1).
const TitleThreshold = 0.25

// TitleGroup is one clustered page-title group counted by unique
// certificates.
type TitleGroup struct {
	Representative string
	Certs          int
}

// TitleGroups reproduces the §4.3.1 methodology: take TLS-enabled HTTP
// endpoints with status 200 (excluding CDN error pages), deduplicate by
// certificate fingerprint, extract titles, and cluster titles whose
// normalized Levenshtein distance is at most TitleThreshold. The empty
// title is kept as its own "(no title)" group rather than clustered.
func TitleGroups(d *Dataset) []TitleGroup {
	// Pre-pass: first title per certificate, first-wins in dataset
	// order. Chunks tag each certificate with the position of its first
	// occurrence and the merge keeps the lowest, so the parallel build
	// picks the same title as a serial scan.
	https := d.Successes("https")
	type firstTitle struct {
		idx   int
		title string
	}
	certTitles := make(map[string]firstTitle)
	parallelFold(len(https), func(lo, hi int) map[string]firstTitle {
		local := make(map[string]firstTitle)
		for i := lo; i < hi; i++ {
			r := https[i]
			if r.TLS == nil || !r.TLS.HandshakeOK || r.HTTP == nil || r.HTTP.StatusCode != 200 {
				continue
			}
			if _, seen := local[r.TLS.CertFingerprint]; !seen {
				local[r.TLS.CertFingerprint] = firstTitle{idx: i, title: r.HTTP.Title}
			}
		}
		return local
	}, func(local map[string]firstTitle) {
		for cert, ft := range local {
			if cur, seen := certTitles[cert]; !seen || ft.idx < cur.idx {
				certTitles[cert] = ft
			}
		}
	})
	titleByCert := make(map[string]string, len(certTitles))
	for cert, ft := range certTitles {
		titleByCert[cert] = ft.title
	}

	// Count identical titles first so clustering runs over distinct
	// strings with weights (the cert populations are huge, the title
	// vocabulary is not).
	counts := make(map[string]int)
	for _, title := range titleByCert {
		counts[title]++
	}
	empty := counts[""]
	delete(counts, "")

	titles := sortedKeys(counts)
	// Cluster most common titles first so representatives are the
	// canonical spellings.
	sort.SliceStable(titles, func(i, j int) bool { return counts[titles[i]] > counts[titles[j]] })
	weights := make([]int, len(titles))
	for i, t := range titles {
		weights[i] = counts[t]
	}
	var out []TitleGroup
	if empty > 0 {
		out = append(out, TitleGroup{Representative: "(no title present)", Certs: empty})
	}
	for _, g := range levenshtein.ClusterN(titles, weights, TitleThreshold, Workers()) {
		out = append(out, TitleGroup{Representative: g.Representative, Certs: g.Count})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Certs > out[j].Certs })
	return out
}

// TotalCerts sums group counts.
func TotalCerts(groups []TitleGroup) int {
	n := 0
	for _, g := range groups {
		n += g.Certs
	}
	return n
}

// FindGroup locates the group whose representative matches (substring,
// case-sensitive) the needle; nil if absent.
func FindGroup(groups []TitleGroup, needle string) *TitleGroup {
	for i := range groups {
		if strings.Contains(groups[i].Representative, needle) {
			return &groups[i]
		}
	}
	return nil
}

// Known SSH OS buckets the paper's Table 3 reports; everything else is
// other/unknown.
var knownSSHOSes = []string{"Ubuntu", "Debian", "Raspbian", "FreeBSD"}

// SSHOSRow is one OS bucket counted by unique host keys.
type SSHOSRow struct {
	OS   string
	Keys int
}

// SSHOSTable reproduces §4.3.2: deduplicate SSH endpoints by host key
// and bucket by the OS name extracted from the server ID.
func SSHOSTable(d *Dataset) []SSHOSRow {
	osByKey := make(map[string]string)
	for _, r := range d.Successes("ssh") {
		if r.SSH == nil || r.SSH.KeyFingerprint == "" {
			continue
		}
		if _, seen := osByKey[r.SSH.KeyFingerprint]; !seen {
			osByKey[r.SSH.KeyFingerprint] = r.SSH.OS
		}
	}
	counts := map[string]int{}
	for _, os := range osByKey {
		bucket := "other/unknown"
		for _, known := range knownSSHOSes {
			if os == known {
				bucket = known
			}
		}
		counts[bucket]++
	}
	rows := make([]SSHOSRow, 0, len(counts))
	for _, os := range append(append([]string{}, knownSSHOSes...), "other/unknown") {
		if n, ok := counts[os]; ok {
			rows = append(rows, SSHOSRow{OS: os, Keys: n})
		}
	}
	return rows
}

// CoAP resource groups from §4.3.3, keyed by marker substring.
var coapGroupMarkers = []struct {
	Group  string
	Marker string
}{
	{"castdevice", "castDeviceSearch"},
	{"qlink", "/qlink"},
	{"efento", "efento"},
	{"nanoleaf", "nanoleaf"},
}

// CoAPGroupOf classifies one discovery result's resource list.
func CoAPGroupOf(resources []string) string {
	if len(resources) == 0 {
		return "empty"
	}
	joined := strings.Join(resources, ",")
	for _, g := range coapGroupMarkers {
		if strings.Contains(joined, g.Marker) {
			return g.Group
		}
	}
	return "other"
}

// CoAPRow is one resource group counted by addresses.
type CoAPRow struct {
	Group string
	Addrs int
}

// CoAPGroups reproduces the Table 3 CoAP panel: group responding
// addresses by advertised resource prefixes.
func CoAPGroups(d *Dataset) []CoAPRow {
	byAddr := make(map[netip.Addr]string)
	for _, r := range d.Successes("coap") {
		if r.CoAP == nil || r.CoAP.Code != "2.05" {
			continue
		}
		if _, seen := byAddr[r.IP]; !seen {
			byAddr[r.IP] = CoAPGroupOf(r.CoAP.Resources)
		}
	}
	counts := map[string]int{}
	for _, g := range byAddr {
		counts[g]++
	}
	order := []string{"castdevice", "qlink", "efento", "nanoleaf", "empty", "other"}
	var rows []CoAPRow
	for _, g := range order {
		if n, ok := counts[g]; ok {
			rows = append(rows, CoAPRow{Group: g, Addrs: n})
		}
	}
	return rows
}

// NewDeviceFinds computes the §4.3 takeaway: devices (unique certs or
// addresses) in groups that the reference dataset misses entirely or
// holds at under a tenth of ours ("new or underrepresented").
func NewDeviceFinds(ours, reference *Dataset) int {
	total := 0
	refGroups := TitleGroups(reference)
	for _, g := range TitleGroups(ours) {
		ref := FindGroup(refGroups, g.Representative)
		if ref == nil || ref.Certs*10 < g.Certs {
			total += g.Certs
		}
	}
	refCoAP := map[string]int{}
	for _, r := range CoAPGroups(reference) {
		refCoAP[r.Group] = r.Addrs
	}
	for _, r := range CoAPGroups(ours) {
		if r.Group == "empty" || r.Group == "other" {
			continue
		}
		if refCoAP[r.Group]*10 < r.Addrs {
			total += r.Addrs
		}
	}
	refSSH := map[string]int{}
	for _, r := range SSHOSTable(reference) {
		refSSH[r.OS] = r.Keys
	}
	for _, r := range SSHOSTable(ours) {
		if r.OS == "other/unknown" {
			continue
		}
		if refSSH[r.OS]*10 < r.Keys {
			total += r.Keys
		}
	}
	return total
}
