package analysis

import (
	"hash/maphash"
	"net/netip"
	"sync"
)

// Hash-sharded accumulators for the parallel collection pipeline. The
// serial AddrSummary/EUI64Stats stay the canonical read-side types;
// these wrappers partition the write side across addrShards independent
// locks so many collection workers can add concurrently, then Merge
// folds the shards back into one summary in fixed shard order.
//
// Determinism: an address always hashes to the same shard, every
// accumulator update is a pure function of the address (plus its fixed
// capture country), and dedup is per-address — so the merged summary is
// independent of the order and interleaving in which workers added
// addresses. Any worker count yields bit-identical statistics.

// addrShards is the lock fan-out of the sharded accumulators.
const addrShards = 64

var addrShardSeed = maphash.MakeSeed()

func addrShard(addr netip.Addr) int {
	b := addr.As16()
	return int(maphash.Bytes(addrShardSeed, b[:]) % addrShards)
}

// ShardedAddrSummary is a concurrency-safe AddrSummary accumulator.
type ShardedAddrSummary struct {
	shards [addrShards]struct {
		mu  sync.Mutex
		sum *AddrSummary
	}
	ctx *Context
}

// NewShardedAddrSummary returns an empty sharded accumulator resolving
// against ctx.
func NewShardedAddrSummary(ctx *Context) *ShardedAddrSummary {
	s := &ShardedAddrSummary{ctx: ctx}
	for i := range s.shards {
		s.shards[i].sum = NewAddrSummary(ctx)
	}
	return s
}

// Add observes one address; duplicates are ignored. It reports whether
// the address was new. Safe for concurrent use.
func (s *ShardedAddrSummary) Add(addr netip.Addr) bool {
	sh := &s.shards[addrShard(addr)]
	sh.mu.Lock()
	fresh := sh.sum.Add(addr)
	sh.mu.Unlock()
	return fresh
}

// Merge folds all shards into one serial AddrSummary snapshot. The
// shards partition the address space, so the result equals what a
// serial accumulator fed the same addresses (in any order) would hold.
func (s *ShardedAddrSummary) Merge() *AddrSummary {
	out := NewAddrSummary(s.ctx)
	for i := range s.shards {
		s.shards[i].mu.Lock()
		out.Merge(s.shards[i].sum)
		s.shards[i].mu.Unlock()
	}
	return out
}

// ShardedEUI64Stats is a concurrency-safe EUI64Stats accumulator.
type ShardedEUI64Stats struct {
	shards [addrShards]struct {
		mu  sync.Mutex
		sum *EUI64Stats
	}
	ctx *Context
}

// NewShardedEUI64Stats returns an empty sharded accumulator.
func NewShardedEUI64Stats(ctx *Context) *ShardedEUI64Stats {
	s := &ShardedEUI64Stats{ctx: ctx}
	for i := range s.shards {
		s.shards[i].sum = NewEUI64Stats(ctx)
	}
	return s
}

// Add observes one captured address with the capturing vantage country.
// Duplicate addresses are ignored. Safe for concurrent use.
func (s *ShardedEUI64Stats) Add(addr netip.Addr, captureCountry string) {
	sh := &s.shards[addrShard(addr)]
	sh.mu.Lock()
	sh.sum.Add(addr, captureCountry)
	sh.mu.Unlock()
}

// Merge folds all shards into one serial EUI64Stats snapshot.
func (s *ShardedEUI64Stats) Merge() *EUI64Stats {
	out := NewEUI64Stats(s.ctx)
	for i := range s.shards {
		s.shards[i].mu.Lock()
		out.Merge(s.shards[i].sum)
		s.shards[i].mu.Unlock()
	}
	return out
}
