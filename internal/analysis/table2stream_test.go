package analysis

import (
	"bytes"
	"reflect"
	"testing"

	"ntpscan/internal/zgrab"
)

func table2Corpus() []*zgrab.Result {
	rs := []*zgrab.Result{
		{IP: addr(1), Module: "http", Status: zgrab.StatusSuccess, HTTP: &zgrab.HTTPGrab{StatusCode: 200}},
		httpsOK(addr(1), "certA", "T", 200),
		httpsOK(addr(2), "certA", "T", 200),
		httpsOK(addr(2), "certA", "T", 200), // duplicate grab, same addr+cert
		sshOK(addr(3), "key1", "SSH-2.0-OpenSSH_9.6p1", "Ubuntu"),
		sshOK(addr(4), "key1", "SSH-2.0-OpenSSH_9.6p1", "Ubuntu"),
		sshOK(addr(4), "key2", "SSH-2.0-OpenSSH_9.6p1", "Ubuntu"),
		mqttOK(addr(5), true),
		coapOK(addr(6), "/castDeviceSearch"),
		{IP: addr(7), Module: "mqtts", Status: zgrab.StatusSuccess,
			TLS: &zgrab.TLSGrab{HandshakeOK: true, CertFingerprint: "certM"}},
		{IP: addr(8), Module: "amqp", Status: zgrab.StatusSuccess},
		{IP: addr(9), Module: "http", Status: zgrab.StatusTimeout, Error: "i/o timeout"}, // failure: ignored
		{IP: addr(10), Module: "ntp", Status: zgrab.StatusSuccess},                       // no Table 2 group
	}
	return rs
}

// TestTable2BuilderMatchesBatch feeds the corpus in two different
// orders and requires both builders to agree row-for-row with batch
// Table2 over the same dataset, and to produce byte-identical state
// snapshots — the property the campaign-time aggregates rely on.
func TestTable2BuilderMatchesBatch(t *testing.T) {
	rs := table2Corpus()
	want := Table2(NewDataset("x", rs))

	fwd := NewTable2Builder()
	for _, r := range rs {
		fwd.Add(r)
	}
	rev := NewTable2Builder()
	for i := len(rs) - 1; i >= 0; i-- {
		rev.Add(rs[i])
	}

	if got := fwd.Rows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("forward builder rows = %+v, want %+v", got, want)
	}
	if got := rev.Rows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reverse builder rows = %+v, want %+v", got, want)
	}

	sf, err := fwd.State()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := rev.State()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sf, sr) {
		t.Fatalf("state snapshots differ across add order:\n%s\nvs\n%s", sf, sr)
	}
}

// TestTable2BuilderRestore round-trips the snapshot and keeps
// accumulating correctly afterwards.
func TestTable2BuilderRestore(t *testing.T) {
	rs := table2Corpus()
	half := len(rs) / 2

	b := NewTable2Builder()
	for _, r := range rs[:half] {
		b.Add(r)
	}
	snap, err := b.State()
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewTable2Builder()
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2, err := resumed.State()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Fatalf("restore changed the snapshot:\n%s\nvs\n%s", snap, snap2)
	}

	for _, r := range rs[half:] {
		b.Add(r)
		resumed.Add(r)
	}
	want := Table2(NewDataset("x", rs))
	if got := resumed.Rows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed builder rows = %+v, want %+v", got, want)
	}
	if got := b.Rows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("original builder rows = %+v, want %+v", got, want)
	}

	if err := resumed.Restore([]byte(`[{}]`)); err == nil {
		t.Fatal("restore accepted a wrong-shaped snapshot")
	}
	if err := resumed.Restore([]byte(`{`)); err == nil {
		t.Fatal("restore accepted malformed JSON")
	}
}
