package analysis

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"

	"ntpscan/internal/zgrab"
)

func TestNewDatasetStream(t *testing.T) {
	rows := []*zgrab.Result{
		{IP: netip.MustParseAddr("2001:db8::1"), Module: "http", Status: zgrab.StatusSuccess},
		{IP: netip.MustParseAddr("2001:db8::2"), Module: "ssh", Status: zgrab.StatusTimeout},
	}
	i := 0
	ds, err := NewDatasetStream("ntp", func() (*zgrab.Result, error) {
		if i == len(rows) {
			return nil, nil
		}
		i++
		return rows[i-1], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := NewDataset("ntp", rows)
	if !reflect.DeepEqual(ds.Results, want.Results) ||
		!reflect.DeepEqual(ds.Successes("http"), want.Successes("http")) {
		t.Fatalf("streamed dataset diverges from slurped: %d vs %d rows", len(ds.Results), len(want.Results))
	}

	boom := errors.New("boom")
	if _, err := NewDatasetStream("ntp", func() (*zgrab.Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("source error not propagated: %v", err)
	}
}
