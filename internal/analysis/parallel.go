package analysis

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The analysis aggregations are embarrassingly parallel: each builds
// per-key state by folding a commutative, associative update (boolean
// OR, first-wins keyed by input position) over result records. workers
// below controls the fan-out; every parallel path merges per-chunk
// state in chunk order, so the output is bit-identical at any setting.

var workersKnob atomic.Int64

// SetWorkers sets the aggregation fan-out for this package; n < 1
// restores the default (GOMAXPROCS).
func SetWorkers(n int) {
	if n < 1 {
		n = 0
	}
	workersKnob.Store(int64(n))
}

// Workers returns the current aggregation fan-out.
func Workers() int {
	if n := int(workersKnob.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelChunks is the smallest input that is worth fanning out; below
// it the goroutine overhead dominates.
const parallelMinItems = 2048

// chunkBounds splits [0, n) into at most workers contiguous chunks.
func chunkBounds(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([][2]int, 0, workers)
	for i := 0; i < workers; i++ {
		lo := n * i / workers
		hi := n * (i + 1) / workers
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// parallelFold builds one partial state per contiguous input chunk with
// build (called concurrently) and folds the partials in chunk order with
// merge (called serially). With one chunk it degenerates to a serial
// build; the fold order makes the result deterministic whenever merge
// commutes or the partial states are position-tagged.
func parallelFold[S any](n int, build func(lo, hi int) S, merge func(S)) {
	workers := Workers()
	if n < parallelMinItems || workers < 2 {
		if n > 0 {
			merge(build(0, n))
		}
		return
	}
	bounds := chunkBounds(n, workers)
	partials := make([]S, len(bounds))
	var wg sync.WaitGroup
	for i, b := range bounds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			partials[i] = build(b[0], b[1])
		}()
	}
	wg.Wait()
	for _, p := range partials {
		merge(p)
	}
}
