package analysis

import (
	"ntpscan/internal/proto/sshx"
)

// PatchStats summarises SSH up-to-dateness for one dataset (Figure 2).
type PatchStats struct {
	Assessable int // unique keys exposing a Debian-style patch level
	Outdated   int // keys below the latest revision of their release
}

// UpToDate returns Assessable - Outdated.
func (p PatchStats) UpToDate() int { return p.Assessable - p.Outdated }

// OutdatedShare returns the outdated proportion among assessable keys.
func (p PatchStats) OutdatedShare() float64 {
	if p.Assessable == 0 {
		return 0
	}
	return float64(p.Outdated) / float64(p.Assessable)
}

// releaseKey identifies one distribution release: software string plus
// the patch base ("OpenSSH_9.2p1" + "Debian-2+deb12u").
type releaseKey struct {
	software string
	base     string
}

// sshPatchRecord is one unique host key's patch information.
type sshPatchRecord struct {
	release releaseKey
	rev     int
}

// collectPatchRecords deduplicates by host key and parses patch levels,
// restricting to banners that expose one (the paper's Debian-derived
// restriction, §4.4.1).
func collectPatchRecords(d *Dataset) map[string]sshPatchRecord {
	out := make(map[string]sshPatchRecord)
	for _, r := range d.Successes("ssh") {
		if r.SSH == nil || r.SSH.KeyFingerprint == "" {
			continue
		}
		if _, seen := out[r.SSH.KeyFingerprint]; seen {
			continue
		}
		id, err := sshx.ParseServerID(r.SSH.ServerID)
		if err != nil {
			continue
		}
		base, rev, ok := id.PatchLevel()
		if !ok {
			continue
		}
		out[r.SSH.KeyFingerprint] = sshPatchRecord{
			release: releaseKey{software: id.Software, base: base},
			rev:     rev,
		}
	}
	return out
}

// SSHOutdated computes per-dataset patch statistics. The latest known
// revision per release is established across all given datasets (as
// updates to stable releases only ship fixes, the highest observed
// revision is the current one — §4.4.1); every key below it is
// outdated.
func SSHOutdated(datasets ...*Dataset) []PatchStats {
	records := make([]map[string]sshPatchRecord, len(datasets))
	latest := make(map[releaseKey]int)
	for i, d := range datasets {
		records[i] = collectPatchRecords(d)
		for _, rec := range records[i] {
			if rec.rev > latest[rec.release] {
				latest[rec.release] = rec.rev
			}
		}
	}
	out := make([]PatchStats, len(datasets))
	for i := range datasets {
		for _, rec := range records[i] {
			out[i].Assessable++
			if rec.rev < latest[rec.release] {
				out[i].Outdated++
			}
		}
	}
	return out
}

// AccessStats summarises broker access control for one protocol
// (Figure 3).
type AccessStats struct {
	Open          int // brokers accepting the anonymous/default probe
	AccessControl int // brokers refusing it
}

// Total returns all assessed brokers.
func (a AccessStats) Total() int { return a.Open + a.AccessControl }

// OpenShare returns the unprotected proportion.
func (a AccessStats) OpenShare() float64 {
	if a.Total() == 0 {
		return 0
	}
	return float64(a.Open) / float64(a.Total())
}

// BrokerAccess counts access control for a broker protocol ("mqtt" or
// "amqp"), deduplicating by certificate where TLS provides one and by
// address otherwise (plain brokers present no identity).
func BrokerAccess(d *Dataset, proto string) AccessStats {
	type verdict struct{ open bool }
	seen := make(map[string]verdict)
	record := func(key string, open bool) {
		if _, dup := seen[key]; !dup {
			seen[key] = verdict{open: open}
		}
	}
	for _, r := range d.Successes(proto) {
		switch proto {
		case "mqtt":
			if r.MQTT != nil {
				record("addr:"+r.IP.String(), r.MQTT.Open)
			}
		case "amqp":
			if r.AMQP != nil {
				record("addr:"+r.IP.String(), r.AMQP.Open)
			}
		}
	}
	for _, r := range d.Successes(proto + "s") {
		key := "addr:" + r.IP.String()
		if r.TLS != nil && r.TLS.HandshakeOK && r.TLS.CertFingerprint != "" {
			key = "cert:" + r.TLS.CertFingerprint
		}
		switch proto {
		case "mqtt":
			if r.MQTT != nil {
				record(key, r.MQTT.Open)
			}
		case "amqp":
			if r.AMQP != nil {
				record(key, r.AMQP.Open)
			}
		}
	}
	var out AccessStats
	for _, v := range seen {
		if v.open {
			out.Open++
		} else {
			out.AccessControl++
		}
	}
	return out
}

// SecureShare is the paper's §4.4 headline metric over SSH and IoT
// hosts: unique SSH host keys plus unique MQTT/AMQP broker identities;
// a host counts as securely configured when its SSH patch level is
// current, or its broker enforces access control. Hosts whose patch
// state cannot be assessed count toward the denominator but not the
// numerator (they reveal nothing that would mark them secure).
type SecureShare struct {
	Hosts  int
	Secure int
}

// Share returns the secure proportion.
func (s SecureShare) Share() float64 {
	if s.Hosts == 0 {
		return 0
	}
	return float64(s.Secure) / float64(s.Hosts)
}

// SecureShares computes the headline for each dataset, with the SSH
// latest-revision baseline established jointly.
func SecureShares(datasets ...*Dataset) []SecureShare {
	patch := SSHOutdated(datasets...)
	out := make([]SecureShare, len(datasets))
	for i, d := range datasets {
		// All unique SSH keys.
		keys := make(map[string]struct{})
		for _, r := range d.Successes("ssh") {
			if r.SSH != nil && r.SSH.KeyFingerprint != "" {
				keys[r.SSH.KeyFingerprint] = struct{}{}
			}
		}
		out[i].Hosts += len(keys)
		out[i].Secure += patch[i].UpToDate()

		for _, proto := range []string{"mqtt", "amqp"} {
			ac := BrokerAccess(d, proto)
			out[i].Hosts += ac.Total()
			out[i].Secure += ac.AccessControl
		}
	}
	return out
}
