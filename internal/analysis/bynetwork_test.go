package analysis

import (
	"testing"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/zgrab"
)

func TestSSHOutdatedByNetwork(t *testing.T) {
	// Two addresses in one /64 share a reused outdated key; one
	// up-to-date server sits in another /64.
	a1 := ipv6x.FromParts(0x20010db8_00000000, 1)
	a2 := ipv6x.FromParts(0x20010db8_00000000, 2)
	b1 := ipv6x.FromParts(0x20010db8_00010000, 1)
	d := NewDataset("x", []*zgrab.Result{
		sshOK(a1, "reused", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u1", "Debian"),
		sshOK(a2, "reused", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u1", "Debian"),
		sshOK(b1, "fresh", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u5", "Debian"),
	})

	byKey := SSHOutdated(d)[0]
	if byKey.Assessable != 2 || byKey.Outdated != 1 {
		t.Fatalf("by-key = %+v", byKey)
	}
	byNet := SSHOutdatedByNetwork(d)[0]
	var byAddr, by64 PatchByNet
	for _, row := range byNet {
		switch row.Granularity {
		case "addr":
			byAddr = row
		case "/64":
			by64 = row
		}
	}
	// By address, the reused key counts twice: 2 of 3 outdated.
	if byAddr.Assessable != 3 || byAddr.Outdated != 2 {
		t.Fatalf("by-addr = %+v", byAddr)
	}
	if byAddr.OutdatedShare() <= byKey.OutdatedShare() {
		t.Fatal("address counting should raise outdatedness under key reuse")
	}
	// By /64, the shared network counts once (outdated) plus the fresh
	// one.
	if by64.Assessable != 2 || by64.Outdated != 1 {
		t.Fatalf("by-/64 = %+v", by64)
	}
}

func TestSSHOutdatedByNetworkEmpty(t *testing.T) {
	rows := SSHOutdatedByNetwork(NewDataset("x", nil))[0]
	for _, row := range rows {
		if row.Assessable != 0 || row.OutdatedShare() != 0 {
			t.Fatalf("empty dataset row = %+v", row)
		}
	}
}

func TestBrokerAccessByNetwork(t *testing.T) {
	// Same /64: one open, one protected broker -> the network counts
	// as open.
	a1 := ipv6x.FromParts(0x20010db8_00000000, 1)
	a2 := ipv6x.FromParts(0x20010db8_00000000, 2)
	b1 := ipv6x.FromParts(0x20010db8_00010000, 1)
	d := NewDataset("x", []*zgrab.Result{
		mqttOK(a1, true),
		mqttOK(a2, false),
		mqttOK(b1, false),
	})
	rows := BrokerAccessByNetwork(d, "mqtt")
	var byAddr, by64 AccessByNet
	for _, row := range rows {
		switch row.Granularity {
		case "addr":
			byAddr = row
		case "/64":
			by64 = row
		}
	}
	if byAddr.Open != 1 || byAddr.AccessControl != 2 {
		t.Fatalf("by-addr = %+v", byAddr)
	}
	if by64.Open != 1 || by64.AccessControl != 1 {
		t.Fatalf("by-/64 = %+v", by64)
	}
	if byAddr.OpenShare() >= by64.OpenShare() {
		t.Fatal("network counting should raise the open share here")
	}
	if (AccessByNet{}).OpenShare() != 0 {
		t.Fatal("zero-value open share")
	}
}

func TestNewDeviceFinds(t *testing.T) {
	ours := NewDataset("ntp", []*zgrab.Result{
		httpsOK(addr(1), "c1", "FRITZ!Box", 200),
		httpsOK(addr(2), "c2", "FRITZ!Box", 200),
		coapOK(addr(3), "/castDeviceSearch"),
		sshOK(addr(4), "k1", "SSH-2.0-OpenSSH_9.2p1 Raspbian-10+deb12u2", "Raspbian"),
	})
	ref := NewDataset("hitlist", []*zgrab.Result{
		httpsOK(addr(5), "c5", "Welcome to nginx!", 200),
	})
	got := NewDeviceFinds(ours, ref)
	// 2 FRITZ certs + 1 castdevice + 1 Raspbian key: all absent from
	// the reference.
	if got != 4 {
		t.Fatalf("NewDeviceFinds = %d, want 4", got)
	}
	// Symmetric check: reference's nginx is not "new" for ours.
	if n := NewDeviceFinds(ref, ours); n != 1 {
		t.Fatalf("reverse = %d, want 1 (nginx)", n)
	}
}

func TestIIDShareAndASNumbers(t *testing.T) {
	ctx := testContext()
	s := NewAddrSummary(ctx)
	s.Add(ipv6x.FromParts(0x20010db8_00000000, 1))
	s.Add(ipv6x.FromParts(0x20010db8_00000000, 0xdeadbeefcafe1234))
	st := s.Stats()
	if got := st.IIDShare(ipv6x.IIDLastByte); got != 0.5 {
		t.Fatalf("IIDShare = %v", got)
	}
	if len(s.ASNumbers()) != 1 {
		t.Fatalf("ASNumbers = %v", s.ASNumbers())
	}
}
