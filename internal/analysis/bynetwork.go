package analysis

import (
	"net/netip"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/proto/sshx"
)

// This file implements the Appendix C re-countings of the security
// analyses: instead of deduplicating by host key or certificate, hosts
// are counted per address and per network. Key-reusing outdated servers
// count once per address here, which is why Figure 5 shows much more
// outdatedness than Figure 2 — the paper discusses exactly this effect.

// PatchByNet holds Figure 5 counts at one granularity.
type PatchByNet struct {
	Granularity string // "addr", "/48", "/56", "/64"
	Assessable  int
	Outdated    int
}

// OutdatedShare returns the outdated proportion.
func (p PatchByNet) OutdatedShare() float64 {
	if p.Assessable == 0 {
		return 0
	}
	return float64(p.Outdated) / float64(p.Assessable)
}

// SSHOutdatedByNetwork recomputes the Figure 2 analysis per address and
// per network (Figure 5). The latest revision per release is established
// across all datasets jointly, then each dataset's addresses and
// networks are classified; a network is outdated if any address in it
// runs an outdated server (the conservative reading).
func SSHOutdatedByNetwork(datasets ...*Dataset) [][]PatchByNet {
	// Joint latest per release, over addresses (not keys) so the
	// baseline matches Figure 2's.
	latest := map[releaseKey]int{}
	type rec struct {
		release releaseKey
		rev     int
		addr    netip.Addr
	}
	all := make([][]rec, len(datasets))
	for i, d := range datasets {
		for _, r := range d.Successes("ssh") {
			if r.SSH == nil {
				continue
			}
			id, err := sshx.ParseServerID(r.SSH.ServerID)
			if err != nil {
				continue
			}
			base, rev, ok := id.PatchLevel()
			if !ok {
				continue
			}
			k := releaseKey{software: id.Software, base: base}
			if rev > latest[k] {
				latest[k] = rev
			}
			all[i] = append(all[i], rec{release: k, rev: rev, addr: r.IP})
		}
	}

	out := make([][]PatchByNet, len(datasets))
	for i := range datasets {
		type state struct{ outdated bool }
		addrs := map[netip.Addr]*state{}
		nets := map[int]map[netip.Prefix]*state{48: {}, 56: {}, 64: {}}
		for _, rc := range all[i] {
			outdated := rc.rev < latest[rc.release]
			if s, ok := addrs[rc.addr]; ok {
				s.outdated = s.outdated || outdated
			} else {
				addrs[rc.addr] = &state{outdated: outdated}
			}
			for bits, m := range nets {
				p := ipv6x.Prefix(rc.addr, bits)
				if s, ok := m[p]; ok {
					s.outdated = s.outdated || outdated
				} else {
					m[p] = &state{outdated: outdated}
				}
			}
		}
		count := func(label string, m map[netip.Prefix]*state) PatchByNet {
			out := PatchByNet{Granularity: label}
			for _, s := range m {
				out.Assessable++
				if s.outdated {
					out.Outdated++
				}
			}
			return out
		}
		byAddr := PatchByNet{Granularity: "addr"}
		for _, s := range addrs {
			byAddr.Assessable++
			if s.outdated {
				byAddr.Outdated++
			}
		}
		out[i] = []PatchByNet{
			byAddr,
			count("/48", nets[48]),
			count("/56", nets[56]),
			count("/64", nets[64]),
		}
	}
	return out
}

// AccessByNet holds Figure 6 counts at one granularity.
type AccessByNet struct {
	Granularity   string
	Open          int
	AccessControl int
}

// OpenShare returns the unprotected proportion.
func (a AccessByNet) OpenShare() float64 {
	total := a.Open + a.AccessControl
	if total == 0 {
		return 0
	}
	return float64(a.Open) / float64(total)
}

// BrokerAccessByNetwork recomputes Figure 3 per address and network
// (Figure 6). A network counts as open if any broker in it accepted the
// anonymous probe.
func BrokerAccessByNetwork(d *Dataset, proto string) []AccessByNet {
	type state struct{ open bool }
	addrs := map[netip.Addr]*state{}
	nets := map[int]map[netip.Prefix]*state{48: {}, 56: {}, 64: {}}
	observe := func(addr netip.Addr, open bool) {
		if s, ok := addrs[addr]; ok {
			s.open = s.open || open
		} else {
			addrs[addr] = &state{open: open}
		}
		for bits, m := range nets {
			p := ipv6x.Prefix(addr, bits)
			if s, ok := m[p]; ok {
				s.open = s.open || open
			} else {
				m[p] = &state{open: open}
			}
		}
	}
	for _, module := range []string{proto, proto + "s"} {
		for _, r := range d.Successes(module) {
			switch proto {
			case "mqtt":
				if r.MQTT != nil {
					observe(r.IP, r.MQTT.Open)
				}
			case "amqp":
				if r.AMQP != nil {
					observe(r.IP, r.AMQP.Open)
				}
			}
		}
	}
	count := func(label string, m map[netip.Prefix]*state) AccessByNet {
		out := AccessByNet{Granularity: label}
		for _, s := range m {
			if s.open {
				out.Open++
			} else {
				out.AccessControl++
			}
		}
		return out
	}
	byAddr := AccessByNet{Granularity: "addr"}
	for _, s := range addrs {
		if s.open {
			byAddr.Open++
		} else {
			byAddr.AccessControl++
		}
	}
	return []AccessByNet{
		byAddr,
		count("/48", nets[48]),
		count("/56", nets[56]),
		count("/64", nets[64]),
	}
}
