package analysis

import (
	"net/netip"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/proto/sshx"
)

// This file implements the Appendix C re-countings of the security
// analyses: instead of deduplicating by host key or certificate, hosts
// are counted per address and per network. Key-reusing outdated servers
// count once per address here, which is why Figure 5 shows much more
// outdatedness than Figure 2 — the paper discusses exactly this effect.
//
// Both rollups fold a boolean OR per address/prefix, which commutes, so
// the record stream is chunked across analysis workers (parallelFold)
// and the per-chunk maps are OR-merged without affecting the output.

// PatchByNet holds Figure 5 counts at one granularity.
type PatchByNet struct {
	Granularity string // "addr", "/48", "/56", "/64"
	Assessable  int
	Outdated    int
}

// OutdatedShare returns the outdated proportion.
func (p PatchByNet) OutdatedShare() float64 {
	if p.Assessable == 0 {
		return 0
	}
	return float64(p.Outdated) / float64(p.Assessable)
}

// netFlags accumulates one boolean per address and per prefix at the
// three paper granularities.
type netFlags struct {
	addrs map[netip.Addr]bool
	nets  map[int]map[netip.Prefix]bool
}

func newNetFlags() *netFlags {
	return &netFlags{
		addrs: map[netip.Addr]bool{},
		nets:  map[int]map[netip.Prefix]bool{48: {}, 56: {}, 64: {}},
	}
}

func (f *netFlags) observe(addr netip.Addr, flag bool) {
	f.addrs[addr] = f.addrs[addr] || flag
	for bits, m := range f.nets {
		p := ipv6x.Prefix(addr, bits)
		m[p] = m[p] || flag
	}
}

func (f *netFlags) merge(o *netFlags) {
	for a, flag := range o.addrs {
		f.addrs[a] = f.addrs[a] || flag
	}
	for bits, om := range o.nets {
		m := f.nets[bits]
		for p, flag := range om {
			m[p] = m[p] || flag
		}
	}
}

// SSHOutdatedByNetwork recomputes the Figure 2 analysis per address and
// per network (Figure 5). The latest revision per release is established
// across all datasets jointly, then each dataset's addresses and
// networks are classified; a network is outdated if any address in it
// runs an outdated server (the conservative reading).
func SSHOutdatedByNetwork(datasets ...*Dataset) [][]PatchByNet {
	// Joint latest per release, over addresses (not keys) so the
	// baseline matches Figure 2's.
	latest := map[releaseKey]int{}
	type rec struct {
		release releaseKey
		rev     int
		addr    netip.Addr
	}
	all := make([][]rec, len(datasets))
	for i, d := range datasets {
		ssh := d.Successes("ssh")
		type parsed struct {
			recs   []rec
			latest map[releaseKey]int
		}
		parallelFold(len(ssh), func(lo, hi int) parsed {
			p := parsed{latest: map[releaseKey]int{}}
			for _, r := range ssh[lo:hi] {
				if r.SSH == nil {
					continue
				}
				id, err := sshx.ParseServerID(r.SSH.ServerID)
				if err != nil {
					continue
				}
				base, rev, ok := id.PatchLevel()
				if !ok {
					continue
				}
				k := releaseKey{software: id.Software, base: base}
				if rev > p.latest[k] {
					p.latest[k] = rev
				}
				p.recs = append(p.recs, rec{release: k, rev: rev, addr: r.IP})
			}
			return p
		}, func(p parsed) {
			for k, rev := range p.latest {
				if rev > latest[k] {
					latest[k] = rev
				}
			}
			all[i] = append(all[i], p.recs...)
		})
	}

	out := make([][]PatchByNet, len(datasets))
	for i := range datasets {
		recs := all[i]
		flags := newNetFlags()
		parallelFold(len(recs), func(lo, hi int) *netFlags {
			f := newNetFlags()
			for _, rc := range recs[lo:hi] {
				f.observe(rc.addr, rc.rev < latest[rc.release])
			}
			return f
		}, flags.merge)
		count := func(label string, m map[netip.Prefix]bool) PatchByNet {
			out := PatchByNet{Granularity: label}
			for _, outdated := range m {
				out.Assessable++
				if outdated {
					out.Outdated++
				}
			}
			return out
		}
		byAddr := PatchByNet{Granularity: "addr"}
		for _, outdated := range flags.addrs {
			byAddr.Assessable++
			if outdated {
				byAddr.Outdated++
			}
		}
		out[i] = []PatchByNet{
			byAddr,
			count("/48", flags.nets[48]),
			count("/56", flags.nets[56]),
			count("/64", flags.nets[64]),
		}
	}
	return out
}

// AccessByNet holds Figure 6 counts at one granularity.
type AccessByNet struct {
	Granularity   string
	Open          int
	AccessControl int
}

// OpenShare returns the unprotected proportion.
func (a AccessByNet) OpenShare() float64 {
	total := a.Open + a.AccessControl
	if total == 0 {
		return 0
	}
	return float64(a.Open) / float64(total)
}

// BrokerAccessByNetwork recomputes Figure 3 per address and network
// (Figure 6). A network counts as open if any broker in it accepted the
// anonymous probe.
func BrokerAccessByNetwork(d *Dataset, proto string) []AccessByNet {
	type rec struct {
		addr netip.Addr
		open bool
	}
	var recs []rec
	for _, module := range []string{proto, proto + "s"} {
		for _, r := range d.Successes(module) {
			switch proto {
			case "mqtt":
				if r.MQTT != nil {
					recs = append(recs, rec{addr: r.IP, open: r.MQTT.Open})
				}
			case "amqp":
				if r.AMQP != nil {
					recs = append(recs, rec{addr: r.IP, open: r.AMQP.Open})
				}
			}
		}
	}
	flags := newNetFlags()
	parallelFold(len(recs), func(lo, hi int) *netFlags {
		f := newNetFlags()
		for _, rc := range recs[lo:hi] {
			f.observe(rc.addr, rc.open)
		}
		return f
	}, flags.merge)
	count := func(label string, m map[netip.Prefix]bool) AccessByNet {
		out := AccessByNet{Granularity: label}
		for _, open := range m {
			if open {
				out.Open++
			} else {
				out.AccessControl++
			}
		}
		return out
	}
	byAddr := AccessByNet{Granularity: "addr"}
	for _, open := range flags.addrs {
		if open {
			byAddr.Open++
		} else {
			byAddr.AccessControl++
		}
	}
	return []AccessByNet{
		byAddr,
		count("/48", flags.nets[48]),
		count("/56", flags.nets[56]),
		count("/64", flags.nets[64]),
	}
}
