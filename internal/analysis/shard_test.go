package analysis

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"ntpscan/internal/ipv6x"
)

// The sharded accumulators must match the serial ones exactly when fed
// the same addresses, from any number of goroutines in any order.
func TestShardedAddrSummaryMatchesSerial(t *testing.T) {
	ctx := testContext()
	var addrs []netip.Addr
	for i := 0; i < 5000; i++ {
		addrs = append(addrs, addr(i%3000)) // duplicates included
	}

	serial := NewAddrSummary(ctx)
	for _, a := range addrs {
		serial.Add(a)
	}

	sharded := NewShardedAddrSummary(ctx)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every goroutine adds every address: worst-case duplicate
			// contention, same distinct set.
			for _, a := range addrs {
				sharded.Add(a)
			}
		}()
	}
	wg.Wait()
	got, want := sharded.Merge().Stats(), serial.Stats()
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("sharded stats diverge:\n got %+v\nwant %+v", got, want)
	}
}

func TestShardedEUI64StatsMatchesSerial(t *testing.T) {
	ctx := testContext()
	countries := []string{"DE", "IN", "US"}
	var addrs []netip.Addr
	for i := 0; i < 2000; i++ {
		if i%3 == 0 {
			// EUI-64-shaped: embed a MAC into the IID.
			mac := ipv6x.MAC{0x00, 0x1f, 0x28, byte(i), byte(i >> 8), 7}
			addrs = append(addrs, ipv6x.FromParts(0x20010db8_00000000, ipv6x.EmbedMAC(mac)))
		} else {
			addrs = append(addrs, addr(i))
		}
	}
	countryOf := func(a netip.Addr) string {
		b := a.As16()
		return countries[int(b[15])%len(countries)]
	}

	serial := NewEUI64Stats(ctx)
	for _, a := range addrs {
		serial.Add(a, countryOf(a))
	}

	sharded := NewShardedEUI64Stats(ctx)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, a := range addrs {
				sharded.Add(a, countryOf(a))
			}
		}()
	}
	wg.Wait()
	merged := sharded.Merge()

	if merged.AddrsTotal != serial.AddrsTotal ||
		merged.AddrsEUI != serial.AddrsEUI ||
		merged.AddrsUnique != serial.AddrsUnique ||
		merged.DistinctMACs() != serial.DistinctMACs() ||
		merged.ListedMACs() != serial.ListedMACs() {
		t.Fatalf("sharded EUI stats diverge: %d/%d/%d/%d/%d vs %d/%d/%d/%d/%d",
			merged.AddrsTotal, merged.AddrsEUI, merged.AddrsUnique, merged.DistinctMACs(), merged.ListedMACs(),
			serial.AddrsTotal, serial.AddrsEUI, serial.AddrsUnique, serial.DistinctMACs(), serial.ListedMACs())
	}
	for _, class := range []MACClass{MACListed, MACUnlisted, MACLocal} {
		gc, gs := merged.OriginDistribution(class)
		wc, ws := serial.OriginDistribution(class)
		if fmt.Sprint(gc, gs) != fmt.Sprint(wc, ws) {
			t.Fatalf("class %v origin distribution diverges", class)
		}
	}
	if fmt.Sprint(merged.TopVendors(10)) != fmt.Sprint(serial.TopVendors(10)) {
		t.Fatal("vendor table diverges")
	}
}

// The parallel fold must produce the same rollups at any worker count.
func TestParallelWorkersKnobDeterminism(t *testing.T) {
	d := NewDataset("x", nil)
	for i := 0; i < 4000; i++ {
		rev := i % 3
		d.Add(sshOK(addr(i%1000), fmt.Sprintf("k%d", i%50),
			fmt.Sprintf("SSH-2.0-OpenSSH_9.%dp1", rev), "Ubuntu"))
		d.Add(mqttOK(addr(i%700), i%5 == 0))
		d.Add(httpsOK(addr(i%900), fmt.Sprintf("c%d", i%333), fmt.Sprintf("Device %d", i%7), 200))
	}

	SetWorkers(1)
	ssh1 := fmt.Sprint(SSHOutdatedByNetwork(d))
	mqtt1 := fmt.Sprint(BrokerAccessByNetwork(d, "mqtt"))
	titles1 := fmt.Sprint(TitleGroups(d))

	SetWorkers(8)
	ssh8 := fmt.Sprint(SSHOutdatedByNetwork(d))
	mqtt8 := fmt.Sprint(BrokerAccessByNetwork(d, "mqtt"))
	titles8 := fmt.Sprint(TitleGroups(d))
	SetWorkers(0)

	if ssh1 != ssh8 {
		t.Fatalf("SSHOutdatedByNetwork differs across workers:\n%s\n%s", ssh1, ssh8)
	}
	if mqtt1 != mqtt8 {
		t.Fatalf("BrokerAccessByNetwork differs across workers:\n%s\n%s", mqtt1, mqtt8)
	}
	if titles1 != titles8 {
		t.Fatalf("TitleGroups differs across workers:\n%s\n%s", titles1, titles8)
	}
}
