package analysis

import (
	"fmt"
	"net/netip"
	"testing"

	"ntpscan/internal/asn"
	"ntpscan/internal/geo"
	"ntpscan/internal/ipv6x"
	"ntpscan/internal/oui"
	"ntpscan/internal/zgrab"
)

func addr(i int) netip.Addr {
	return ipv6x.FromParts(0x20010db8_00000000|uint64(i>>8)<<16, uint64(i))
}

func httpsOK(ip netip.Addr, cert, title string, status int) *zgrab.Result {
	return &zgrab.Result{
		IP: ip, Module: "https", Status: zgrab.StatusSuccess,
		TLS:  &zgrab.TLSGrab{HandshakeOK: true, CertFingerprint: cert, KeyID: "k" + cert},
		HTTP: &zgrab.HTTPGrab{StatusCode: status, Title: title},
	}
}

func sshOK(ip netip.Addr, key, serverID, os string) *zgrab.Result {
	return &zgrab.Result{
		IP: ip, Module: "ssh", Status: zgrab.StatusSuccess,
		SSH: &zgrab.SSHGrab{ServerID: serverID, OS: os, KeyFingerprint: key},
	}
}

func mqttOK(ip netip.Addr, open bool) *zgrab.Result {
	return &zgrab.Result{
		IP: ip, Module: "mqtt", Status: zgrab.StatusSuccess,
		MQTT: &zgrab.MQTTGrab{Open: open},
	}
}

func coapOK(ip netip.Addr, resources ...string) *zgrab.Result {
	return &zgrab.Result{
		IP: ip, Module: "coap", Status: zgrab.StatusSuccess,
		CoAP: &zgrab.CoAPGrab{Code: "2.05", Resources: resources},
	}
}

func TestDatasetIndexing(t *testing.T) {
	rs := []*zgrab.Result{
		httpsOK(addr(1), "c1", "T", 200),
		{IP: addr(2), Module: "https", Status: zgrab.StatusTimeout},
	}
	d := NewDataset("x", rs)
	if len(d.Successes("https")) != 1 {
		t.Fatalf("successes = %d", len(d.Successes("https")))
	}
	d.Add(httpsOK(addr(3), "c2", "T", 200))
	if len(d.Successes("https")) != 2 {
		t.Fatal("Add did not index")
	}
}

func TestTable2(t *testing.T) {
	d := NewDataset("x", []*zgrab.Result{
		{IP: addr(1), Module: "http", Status: zgrab.StatusSuccess, HTTP: &zgrab.HTTPGrab{StatusCode: 200}},
		httpsOK(addr(1), "certA", "T", 200),
		httpsOK(addr(2), "certA", "T", 200), // same cert, second address
		sshOK(addr(3), "key1", "SSH-2.0-OpenSSH_9.6p1 Ubuntu-3ubuntu13.4", "Ubuntu"),
		sshOK(addr(4), "key1", "SSH-2.0-OpenSSH_9.6p1 Ubuntu-3ubuntu13.4", "Ubuntu"),
		mqttOK(addr(5), true),
		coapOK(addr(6), "/castDeviceSearch"),
	})
	rows := Table2(d)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	http := rows[0]
	if http.Addrs != 2 || http.AddrsTLS != 2 || http.CertsKeys != 1 {
		t.Fatalf("http row = %+v", http)
	}
	ssh := rows[1]
	if ssh.Addrs != 2 || ssh.CertsKeys != 1 {
		t.Fatalf("ssh row = %+v", ssh)
	}
	if rows[2].Addrs != 1 || rows[4].Addrs != 1 {
		t.Fatalf("mqtt/coap rows = %+v %+v", rows[2], rows[4])
	}
}

func TestHitRate(t *testing.T) {
	d := NewDataset("x", []*zgrab.Result{
		{IP: addr(1), Module: "http", Status: zgrab.StatusSuccess, HTTP: &zgrab.HTTPGrab{}},
		{IP: addr(1), Module: "ssh", Status: zgrab.StatusTimeout},
		{IP: addr(2), Module: "http", Status: zgrab.StatusTimeout},
		{IP: addr(3), Module: "http", Status: zgrab.StatusTimeout},
		{IP: addr(4), Module: "http", Status: zgrab.StatusTimeout},
	})
	resp, scanned, rate := HitRate(d)
	if resp != 1 || scanned != 4 || rate != 0.25 {
		t.Fatalf("hit rate = %d %d %v", resp, scanned, rate)
	}
}

func TestTitleGroups(t *testing.T) {
	var rs []*zgrab.Result
	for i := 0; i < 10; i++ {
		rs = append(rs, httpsOK(addr(100+i), fmt.Sprintf("fb%d", i), fmt.Sprintf("FRITZ!Box 75%d0", i%3), 200))
	}
	rs = append(rs,
		httpsOK(addr(200), "dl", "D-LINK", 200),
		httpsOK(addr(201), "err", "Error Page", 404),     // non-200: excluded
		httpsOK(addr(202), "nt", "", 200),                // no title
		httpsOK(addr(203), "fb0", "FRITZ!Box 7500", 200), // dup cert: ignored
	)
	groups := TitleGroups(NewDataset("x", rs))
	fritz := FindGroup(groups, "FRITZ!Box")
	if fritz == nil || fritz.Certs != 10 {
		t.Fatalf("fritz group = %+v", fritz)
	}
	if g := FindGroup(groups, "D-LINK"); g == nil || g.Certs != 1 {
		t.Fatalf("dlink group = %+v", g)
	}
	if g := FindGroup(groups, "(no title present)"); g == nil || g.Certs != 1 {
		t.Fatalf("empty group = %+v", g)
	}
	if g := FindGroup(groups, "Error Page"); g != nil {
		t.Fatal("non-200 page grouped")
	}
	if TotalCerts(groups) != 12 {
		t.Fatalf("total certs = %d", TotalCerts(groups))
	}
	// Largest group first.
	if groups[0].Certs < groups[len(groups)-1].Certs {
		t.Fatal("groups not sorted")
	}
}

func TestSSHOSTable(t *testing.T) {
	d := NewDataset("x", []*zgrab.Result{
		sshOK(addr(1), "k1", "SSH-2.0-OpenSSH_9.6p1 Ubuntu-3ubuntu13.4", "Ubuntu"),
		sshOK(addr(2), "k2", "SSH-2.0-OpenSSH_9.2p1 Raspbian-10+deb12u2", "Raspbian"),
		sshOK(addr(3), "k2", "SSH-2.0-OpenSSH_9.2p1 Raspbian-10+deb12u2", "Raspbian"), // dup key
		sshOK(addr(4), "k3", "SSH-2.0-dropbear_2022.83", ""),
		sshOK(addr(5), "k4", "SSH-2.0-OpenSSH_9.9", "Gentoo"),
	})
	rows := SSHOSTable(d)
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.OS] = r.Keys
	}
	if counts["Ubuntu"] != 1 || counts["Raspbian"] != 1 || counts["other/unknown"] != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestCoAPGroups(t *testing.T) {
	d := NewDataset("x", []*zgrab.Result{
		coapOK(addr(1), "/castDeviceSearch"),
		coapOK(addr(2), "/qlink/sta", "/qlink/config"),
		coapOK(addr(3)),
		coapOK(addr(4), "/weird"),
		coapOK(addr(5), "/efento/m"),
	})
	rows := CoAPGroups(d)
	got := map[string]int{}
	for _, r := range rows {
		got[r.Group] = r.Addrs
	}
	want := map[string]int{"castdevice": 1, "qlink": 1, "empty": 1, "other": 1, "efento": 1}
	for g, n := range want {
		if got[g] != n {
			t.Fatalf("group %s = %d, want %d (all: %v)", g, got[g], n, got)
		}
	}
}

func TestSSHOutdated(t *testing.T) {
	ntp := NewDataset("ntp", []*zgrab.Result{
		sshOK(addr(1), "k1", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3", "Debian"),
		sshOK(addr(2), "k2", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u1", "Debian"),
		sshOK(addr(3), "k3", "SSH-2.0-OpenSSH_9.6 FreeBSD-20240701", "FreeBSD"), // not assessable
	})
	hit := NewDataset("hitlist", []*zgrab.Result{
		sshOK(addr(4), "k4", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u5", "Debian"), // the latest
		sshOK(addr(5), "k5", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u5", "Debian"),
	})
	stats := SSHOutdated(ntp, hit)
	// Latest rev is 5 (from hitlist); both NTP keys are outdated.
	if stats[0].Assessable != 2 || stats[0].Outdated != 2 {
		t.Fatalf("ntp stats = %+v", stats[0])
	}
	if stats[1].Assessable != 2 || stats[1].Outdated != 0 {
		t.Fatalf("hitlist stats = %+v", stats[1])
	}
	if stats[0].OutdatedShare() != 1 || stats[1].UpToDate() != 2 {
		t.Fatal("derived metrics wrong")
	}
}

func TestSSHOutdatedDifferentReleasesIndependent(t *testing.T) {
	d := NewDataset("x", []*zgrab.Result{
		sshOK(addr(1), "k1", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3", "Debian"),
		sshOK(addr(2), "k2", "SSH-2.0-OpenSSH_8.4p1 Debian-5+deb11u9", "Debian"),
	})
	st := SSHOutdated(d)[0]
	// Each is the latest of its own release: none outdated.
	if st.Assessable != 2 || st.Outdated != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBrokerAccess(t *testing.T) {
	d := NewDataset("x", []*zgrab.Result{
		mqttOK(addr(1), true),
		mqttOK(addr(2), false),
		mqttOK(addr(3), false),
		// TLS broker deduped by cert: two addresses, one identity.
		{IP: addr(4), Module: "mqtts", Status: zgrab.StatusSuccess,
			TLS:  &zgrab.TLSGrab{HandshakeOK: true, CertFingerprint: "shared"},
			MQTT: &zgrab.MQTTGrab{Open: true}},
		{IP: addr(5), Module: "mqtts", Status: zgrab.StatusSuccess,
			TLS:  &zgrab.TLSGrab{HandshakeOK: true, CertFingerprint: "shared"},
			MQTT: &zgrab.MQTTGrab{Open: true}},
	})
	ac := BrokerAccess(d, "mqtt")
	if ac.Open != 2 || ac.AccessControl != 2 {
		t.Fatalf("access = %+v", ac)
	}
	if ac.OpenShare() != 0.5 {
		t.Fatalf("open share = %v", ac.OpenShare())
	}
}

func TestSecureShares(t *testing.T) {
	ntp := NewDataset("ntp", []*zgrab.Result{
		sshOK(addr(1), "k1", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u1", "Debian"), // outdated
		mqttOK(addr(2), true), // open
	})
	hit := NewDataset("hit", []*zgrab.Result{
		sshOK(addr(3), "k3", "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u5", "Debian"), // latest
		mqttOK(addr(4), false), // access controlled
	})
	shares := SecureShares(ntp, hit)
	if shares[0].Hosts != 2 || shares[0].Secure != 0 {
		t.Fatalf("ntp share = %+v", shares[0])
	}
	if shares[1].Hosts != 2 || shares[1].Secure != 2 {
		t.Fatalf("hit share = %+v", shares[1])
	}
	if shares[0].Share() != 0 || shares[1].Share() != 1 {
		t.Fatal("share values wrong")
	}
}

func testContext() *Context {
	reg := asn.NewRegistry()
	gdb := geo.NewDB()
	// addr(i) for i>=256 lands in different /48s; map three ASes.
	for i := uint32(0); i < 8; i++ {
		p := netip.PrefixFrom(ipv6x.FromParts(0x20010db8_00000000|uint64(i)<<16, 0), 48)
		reg.Register(asn.AS{Number: 100 + i, Type: asn.TypeCableDSLISP, Country: "DE"})
		reg.Announce(p, 100+i)
		gdb.MapPrefix(p, "DE")
	}
	return &Context{AS: reg, Geo: gdb, OUI: oui.Default()}
}

func TestKeyReuse(t *testing.T) {
	ctx := testContext()
	var rs []*zgrab.Result
	// One key spread over 4 ASes and 6 addresses.
	for i := 0; i < 6; i++ {
		rs = append(rs, sshOK(addr(i<<8), "reused", "SSH-2.0-OpenSSH_9.2p1", ""))
	}
	// A dual-homed key (2 ASes): excluded.
	rs = append(rs,
		sshOK(addr(0<<8|5), "dual", "SSH-2.0-OpenSSH_9.2p1", ""),
		sshOK(addr(1<<8|5), "dual", "SSH-2.0-OpenSSH_9.2p1", ""),
	)
	st := KeyReuse(ctx, NewDataset("x", rs))
	if st.ReusedKeys != 1 {
		t.Fatalf("reused keys = %d", st.ReusedKeys)
	}
	if st.ReusedIPs != 6 || st.TopKeyIPs != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TopKeyASes < 3 || st.WidestKeyASes < 3 {
		t.Fatalf("AS spread = %+v", st)
	}
}

func TestAddrSummary(t *testing.T) {
	ctx := testContext()
	s := NewAddrSummary(ctx)
	a1 := ipv6x.FromParts(0x20010db8_00000000, 0x1)                // AS 100, last-byte IID
	a2 := ipv6x.FromParts(0x20010db8_00000000, 0xdeadbeefcafe1234) // same /48, privacy
	a3 := ipv6x.FromParts(0x20010db8_00010000, 0x1)                // AS 101
	if !s.Add(a1) || !s.Add(a2) || !s.Add(a3) {
		t.Fatal("adds failed")
	}
	if s.Add(a1) {
		t.Fatal("duplicate accepted")
	}
	st := s.Stats()
	if st.Addrs != 3 || st.Nets48 != 2 || st.ASes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IIDClasses[ipv6x.IIDLastByte] != 2 || st.IIDClasses[ipv6x.IIDHighEntropy] != 1 {
		t.Fatalf("IID classes = %v", st.IIDClasses)
	}
	if st.CableDSLISP != 3 || st.ASKnown != 3 {
		t.Fatalf("cable = %d known = %d", st.CableDSLISP, st.ASKnown)
	}
	if st.CableShare() != 1 {
		t.Fatalf("cable share = %v", st.CableShare())
	}
	if st.Median48 != 1.5 {
		t.Fatalf("median48 = %v", st.Median48)
	}
}

func TestAddrSummaryOverlap(t *testing.T) {
	ctx := testContext()
	a := SummarizeAddrs(ctx, []netip.Addr{
		ipv6x.FromParts(0x20010db8_00000000, 1),
		ipv6x.FromParts(0x20010db8_00010000, 1),
	})
	b := SummarizeAddrs(ctx, []netip.Addr{
		ipv6x.FromParts(0x20010db8_00010000, 2),
		ipv6x.FromParts(0x20010db8_00020000, 1),
	})
	if got := a.Per48().OverlapWith(b.Per48()); got != 1 {
		t.Fatalf("/48 overlap = %d", got)
	}
	if got := a.ASOverlap(b); got != 1 {
		t.Fatalf("AS overlap = %d", got)
	}
	if got := a.Set().OverlapWith(b.Set()); got != 0 {
		t.Fatalf("addr overlap = %d", got)
	}
}

func TestEUI64Stats(t *testing.T) {
	ctx := testContext()
	e := NewEUI64Stats(ctx)
	// Listed universal MAC (from the default registry).
	block := ctx.OUI.OUIs(oui.VendorSamsung)[0]
	listed := ipv6x.MAC{block[0], block[1], block[2], 1, 2, 3}
	aListed := ipv6x.FromParts(0x20010db8_00000000, ipv6x.EmbedMAC(listed))
	// Unlisted universal MAC.
	unlisted := ipv6x.MAC{0x00, 0xff, 0xee, 9, 9, 9}
	aUnlisted := ipv6x.FromParts(0x20010db8_00010000, ipv6x.EmbedMAC(unlisted))
	// Locally administered.
	local := ipv6x.MAC{0x02, 1, 2, 3, 4, 5}
	aLocal := ipv6x.FromParts(0x20010db8_00020000, ipv6x.EmbedMAC(local))
	// Non-EUI address.
	plain := ipv6x.FromParts(0x20010db8_00030000, 0xdeadbeefcafe0001)

	e.Add(aListed, "DE")
	e.Add(aListed, "DE") // dup ignored
	e.Add(aUnlisted, "IN")
	e.Add(aLocal, "IN")
	e.Add(plain, "IN")

	if e.AddrsTotal != 4 || e.AddrsEUI != 3 || e.AddrsUnique != 2 {
		t.Fatalf("counts = %d %d %d", e.AddrsTotal, e.AddrsEUI, e.AddrsUnique)
	}
	if e.DistinctMACs() != 3 || e.ListedMACs() != 1 {
		t.Fatalf("MACs = %d listed %d", e.DistinctMACs(), e.ListedMACs())
	}
	top := e.TopVendors(5)
	if len(top) != 1 || top[0].Vendor != oui.VendorSamsung || top[0].MACs != 1 || top[0].IPs != 1 {
		t.Fatalf("vendors = %+v", top)
	}
	countries, shares := e.OriginDistribution(MACListed)
	if len(countries) != 1 || countries[0] != "DE" || shares[0] != 1 {
		t.Fatalf("listed origin = %v %v", countries, shares)
	}
	_, localShares := e.OriginDistribution(MACLocal)
	if len(localShares) != 1 || localShares[0] != 1 {
		t.Fatalf("local origin = %v", localShares)
	}
	if MACListed.String() == "" || MACClass(42).String() != "?" {
		t.Fatal("class strings")
	}
}

func TestAggregateModule(t *testing.T) {
	ctx := testContext()
	d := NewDataset("x", []*zgrab.Result{
		{IP: ipv6x.FromParts(0x20010db8_00000000, 1), Module: "http", Status: zgrab.StatusSuccess},
		{IP: ipv6x.FromParts(0x20010db8_00000000, 2), Module: "http", Status: zgrab.StatusSuccess},
		{IP: ipv6x.FromParts(0x20010db8_00010000, 1), Module: "http", Status: zgrab.StatusSuccess},
		{IP: ipv6x.FromParts(0x20010db8_00010000, 1), Module: "http", Status: zgrab.StatusSuccess}, // dup
	})
	agg := AggregateModule(ctx, d, "http")
	if agg.Addrs != 3 || agg.Nets48 != 2 || agg.Nets64 != 2 || agg.ASes != 2 || agg.Countries != 1 {
		t.Fatalf("agg = %+v", agg)
	}
	rows := Table5(ctx, d)
	if len(rows) != len(Table5Modules) {
		t.Fatalf("table5 rows = %d", len(rows))
	}
	if rows[0].Addrs != 3 {
		t.Fatalf("http row = %+v", rows[0])
	}
}

func TestGroupByNetworks(t *testing.T) {
	d := NewDataset("x", []*zgrab.Result{
		coapOK(ipv6x.FromParts(0x20010db8_00000000, 1), "/qlink/sta"),
		coapOK(ipv6x.FromParts(0x20010db8_00000000, 2), "/qlink/sta"),
		coapOK(ipv6x.FromParts(0x20010db8_00010000, 1), "/castDeviceSearch"),
	})
	rows := GroupByNetworks(d, "coap", func(r *zgrab.Result) string {
		return CoAPGroupOf(r.CoAP.Resources)
	})
	got := map[string]NetworkCounts{}
	for _, r := range rows {
		got[r.Group] = r
	}
	if got["qlink"].IPs != 2 || got["qlink"].Nets64 != 1 {
		t.Fatalf("qlink = %+v", got["qlink"])
	}
	if got["castdevice"].IPs != 1 {
		t.Fatalf("castdevice = %+v", got["castdevice"])
	}
}
