package analysis

import (
	"net/netip"

	"ntpscan/internal/intern"
	"ntpscan/internal/ipv6x"
	"ntpscan/internal/zgrab"
)

// NetworkAggregation is one protocol's Appendix C (Table 5) row:
// responsive endpoints counted at every granularity.
type NetworkAggregation struct {
	Module    string
	Addrs     int
	Nets32    int
	Nets48    int
	Nets56    int
	Nets64    int
	ASes      int
	Countries int
}

// AggregateModule computes Table 5 counts for one module's successes.
func AggregateModule(ctx *Context, d *Dataset, module string) NetworkAggregation {
	agg := NetworkAggregation{Module: module}
	// The result count bounds every set below; sizing them up front
	// keeps the dedup maps from rehashing as they fill.
	n := len(d.Successes(module))
	addrs := make(map[netip.Addr]struct{}, n)
	n32 := make(map[netip.Prefix]struct{}, n)
	n48 := make(map[netip.Prefix]struct{}, n)
	n56 := make(map[netip.Prefix]struct{}, n)
	n64 := make(map[netip.Prefix]struct{}, n)
	ases := make(map[uint32]struct{}, 64)
	countries := make(map[string]struct{}, 64)
	for _, r := range d.Successes(module) {
		if _, dup := addrs[r.IP]; dup {
			continue
		}
		addrs[r.IP] = struct{}{}
		n32[ipv6x.Prefix32(r.IP)] = struct{}{}
		n48[ipv6x.Prefix48(r.IP)] = struct{}{}
		n56[ipv6x.Prefix56(r.IP)] = struct{}{}
		n64[ipv6x.Prefix64(r.IP)] = struct{}{}
		if ctx != nil && ctx.AS != nil {
			if asn, ok := ctx.AS.LookupASN(r.IP); ok {
				ases[asn] = struct{}{}
			}
		}
		if ctx != nil && ctx.Geo != nil {
			if cc, ok := ctx.Geo.Locate(r.IP); ok {
				countries[cc] = struct{}{}
			}
		}
	}
	agg.Addrs = len(addrs)
	agg.Nets32, agg.Nets48 = len(n32), len(n48)
	agg.Nets56, agg.Nets64 = len(n56), len(n64)
	agg.ASes, agg.Countries = len(ases), len(countries)
	return agg
}

// Table5Modules is the Appendix C module order.
var Table5Modules = []string{"http", "https", "ssh", "mqtt", "mqtts", "amqp", "amqps", "coap"}

// Table5 aggregates every module.
func Table5(ctx *Context, d *Dataset) []NetworkAggregation {
	out := make([]NetworkAggregation, 0, len(Table5Modules))
	for _, m := range Table5Modules {
		out = append(out, AggregateModule(ctx, d, m))
	}
	return out
}

// GroupByNetworks recounts a classification (title group, SSH OS, CoAP
// group) at address and network granularities (Table 6): classify
// returns the group label for one successful result, or "" to skip it.
type NetworkCounts struct {
	Group  string
	IPs    int
	Nets48 int
	Nets56 int
	Nets64 int
}

// GroupByNetworks aggregates successes of module under classify.
func GroupByNetworks(d *Dataset, module string, classify func(*zgrab.Result) string) []NetworkCounts {
	type sets struct {
		ips map[netip.Addr]struct{}
		n48 map[netip.Prefix]struct{}
		n56 map[netip.Prefix]struct{}
		n64 map[netip.Prefix]struct{}
	}
	groups := make(map[string]*sets, 16)
	for _, r := range d.Successes(module) {
		label := classify(r)
		if label == "" {
			continue
		}
		g := groups[label]
		if g == nil {
			// Classifiers may synthesise label strings per result;
			// interning keeps one copy per distinct group.
			label = intern.Default.String(label)
			g = &sets{
				ips: make(map[netip.Addr]struct{}, 64),
				n48: make(map[netip.Prefix]struct{}, 64),
				n56: make(map[netip.Prefix]struct{}, 64),
				n64: make(map[netip.Prefix]struct{}, 64),
			}
			groups[label] = g
		}
		g.ips[r.IP] = struct{}{}
		g.n48[ipv6x.Prefix48(r.IP)] = struct{}{}
		g.n56[ipv6x.Prefix56(r.IP)] = struct{}{}
		g.n64[ipv6x.Prefix64(r.IP)] = struct{}{}
	}
	out := make([]NetworkCounts, 0, len(groups))
	for _, label := range sortedKeys(groups) {
		g := groups[label]
		out = append(out, NetworkCounts{
			Group: label, IPs: len(g.ips),
			Nets48: len(g.n48), Nets56: len(g.n56), Nets64: len(g.n64),
		})
	}
	return out
}
