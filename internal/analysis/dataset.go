// Package analysis implements every analysis the paper runs over scan
// results and collected addresses: protocol result tables (Table 2),
// device-type extraction via title clustering, SSH server IDs and CoAP
// resources (Table 3), SSH patch-level outdatedness (Figure 2), broker
// access control (Figure 3), the secure-share headline (§4.4), key
// reuse (§6), collection statistics and IID classes (Table 1,
// Figure 1), EUI-64 vendor attribution (Appendix B), and network-level
// aggregation (Appendix C).
package analysis

import (
	"net/netip"
	"sort"

	"ntpscan/internal/asn"
	"ntpscan/internal/geo"
	"ntpscan/internal/oui"
	"ntpscan/internal/zgrab"
)

// Context carries the registries analyses resolve against.
type Context struct {
	AS  *asn.Registry
	Geo *geo.DB
	OUI *oui.Registry
}

// Dataset is one scan campaign's results (e.g. "ntp" or "hitlist") with
// per-module indexes built once.
type Dataset struct {
	Name    string
	Results []*zgrab.Result

	byModule map[string][]*zgrab.Result // successes only
}

// NewDataset indexes results.
func NewDataset(name string, results []*zgrab.Result) *Dataset {
	d := &Dataset{Name: name, Results: results, byModule: map[string][]*zgrab.Result{}}
	for _, r := range results {
		if r.Success() {
			d.byModule[r.Module] = append(d.byModule[r.Module], r)
		}
	}
	return d
}

// Successes returns the successful grabs of a module.
func (d *Dataset) Successes(module string) []*zgrab.Result {
	return d.byModule[module]
}

// Add appends more results (streaming collection).
func (d *Dataset) Add(r *zgrab.Result) {
	d.Results = append(d.Results, r)
	if r.Success() {
		d.byModule[r.Module] = append(d.byModule[r.Module], r)
	}
}

// NewDatasetStream builds a dataset by pulling results from next until
// it reports the end with (nil, nil) — the shape both the columnar
// store's query iterator and a streaming JSONL decoder adapt to, so no
// caller ever materialises an undecoded input file.
func NewDatasetStream(name string, next func() (*zgrab.Result, error)) (*Dataset, error) {
	d := NewDataset(name, nil)
	for {
		r, err := next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return d, nil
		}
		d.Add(r)
	}
}

// uniqueAddrs returns the distinct addresses among results.
func uniqueAddrs(results []*zgrab.Result) map[netip.Addr]struct{} {
	out := make(map[netip.Addr]struct{})
	for _, r := range results {
		out[r.IP] = struct{}{}
	}
	return out
}

// Protocol groups pair a plain module with its TLS sibling as the
// paper's Table 2 rows do.
type protocolGroup struct {
	Label   string
	Plain   string
	TLS     string
	UDPOnly bool
}

var table2Groups = []protocolGroup{
	{Label: "HTTP (80, 443)", Plain: "http", TLS: "https"},
	{Label: "SSH (22)", Plain: "ssh"},
	{Label: "MQTT (1883, 8883)", Plain: "mqtt", TLS: "mqtts"},
	{Label: "AMQP (5672, 5671)", Plain: "amqp", TLS: "amqps"},
	{Label: "CoAP (5683 (UDP))", Plain: "coap", UDPOnly: true},
}

// Table2Row reproduces one row of the paper's Table 2.
type Table2Row struct {
	Protocol  string
	Addrs     int // distinct addresses with any successful grab
	AddrsTLS  int // distinct addresses with a successful TLS handshake
	CertsKeys int // unique certificates (TLS) or host keys (SSH)
}

// Table2 computes "Successful scans by protocol" for the dataset.
func Table2(d *Dataset) []Table2Row {
	var rows []Table2Row
	for _, g := range table2Groups {
		addrs := make(map[netip.Addr]struct{})
		tlsAddrs := make(map[netip.Addr]struct{})
		idents := make(map[string]struct{})

		for _, r := range d.Successes(g.Plain) {
			addrs[r.IP] = struct{}{}
			if g.Plain == "ssh" && r.SSH != nil && r.SSH.KeyFingerprint != "" {
				idents[r.SSH.KeyFingerprint] = struct{}{}
			}
		}
		if g.TLS != "" {
			for _, r := range d.Successes(g.TLS) {
				addrs[r.IP] = struct{}{}
				if r.TLS != nil && r.TLS.HandshakeOK {
					tlsAddrs[r.IP] = struct{}{}
					if r.TLS.CertFingerprint != "" {
						idents[r.TLS.CertFingerprint] = struct{}{}
					}
				}
			}
		}
		rows = append(rows, Table2Row{
			Protocol:  g.Label,
			Addrs:     len(addrs),
			AddrsTLS:  len(tlsAddrs),
			CertsKeys: len(idents),
		})
	}
	return rows
}

// HitRate returns responsive-address share: distinct addresses with at
// least one successful grab over distinct addresses scanned.
func HitRate(d *Dataset) (responsive, scanned int, rate float64) {
	all := uniqueAddrs(d.Results)
	resp := make(map[netip.Addr]struct{})
	for _, r := range d.Results {
		if r.Success() {
			resp[r.IP] = struct{}{}
		}
	}
	scanned = len(all)
	responsive = len(resp)
	if scanned > 0 {
		rate = float64(responsive) / float64(scanned)
	}
	return responsive, scanned, rate
}

// sortedKeys returns map keys sorted for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
