package analysis

import (
	"net/netip"
	"sort"

	"ntpscan/internal/ipv6x"
)

// MACClass buckets EUI-64-embedded hardware addresses for the Appendix
// B / Figure 4 breakdown.
type MACClass int

const (
	// MACListed: globally unique and present in the IEEE registry.
	MACListed MACClass = iota
	// MACUnlisted: claims global uniqueness but has no registry entry.
	MACUnlisted
	// MACLocal: locally administered (randomised) hardware addresses.
	MACLocal
	// NMACClasses sizes arrays over the classes.
	NMACClasses
)

// String implements fmt.Stringer.
func (c MACClass) String() string {
	switch c {
	case MACListed:
		return "listed"
	case MACUnlisted:
		return "unlisted-universal"
	case MACLocal:
		return "locally-administered"
	default:
		return "?"
	}
}

// EUI64Stats reproduces the Appendix B analysis over captured
// addresses.
type EUI64Stats struct {
	ctx *Context

	// AddrsTotal counts all distinct addresses observed.
	AddrsTotal int
	// AddrsEUI counts EUI-64-shaped addresses.
	AddrsEUI int
	// AddrsUnique counts EUI addresses whose embedded MAC has the
	// global-uniqueness bit.
	AddrsUnique int

	macs    map[ipv6x.MAC]MACClass
	vendors map[string]*VendorCount
	// perClassOrigin counts addresses per (MAC class, capture
	// country) for Figure 4.
	perClassOrigin map[MACClass]map[string]int
	seen           map[netip.Addr]struct{}
}

// VendorCount is one manufacturer's row in Table 4.
type VendorCount struct {
	Vendor string
	MACs   map[ipv6x.MAC]struct{}
	IPs    int
}

// NewEUI64Stats returns an empty accumulator.
func NewEUI64Stats(ctx *Context) *EUI64Stats {
	return &EUI64Stats{
		ctx:            ctx,
		macs:           make(map[ipv6x.MAC]MACClass),
		vendors:        make(map[string]*VendorCount),
		perClassOrigin: make(map[MACClass]map[string]int),
		seen:           make(map[netip.Addr]struct{}),
	}
}

// Add observes one captured address together with the country of the
// capturing vantage server. Duplicate addresses are ignored.
func (e *EUI64Stats) Add(addr netip.Addr, captureCountry string) {
	if _, dup := e.seen[addr]; dup {
		return
	}
	e.seen[addr] = struct{}{}
	e.AddrsTotal++

	mac, ok := ipv6x.ExtractMAC(addr)
	if !ok {
		return
	}
	e.AddrsEUI++
	class := MACLocal
	if mac.Universal() {
		e.AddrsUnique++
		class = MACUnlisted
		if e.ctx != nil && e.ctx.OUI != nil {
			if vendor, listed := e.ctx.OUI.Lookup(mac); listed {
				class = MACListed
				vc := e.vendors[vendor]
				if vc == nil {
					vc = &VendorCount{Vendor: vendor, MACs: make(map[ipv6x.MAC]struct{})}
					e.vendors[vendor] = vc
				}
				vc.MACs[mac] = struct{}{}
				vc.IPs++
			}
		}
	}
	e.macs[mac] = class
	origin := e.perClassOrigin[class]
	if origin == nil {
		origin = make(map[string]int)
		e.perClassOrigin[class] = origin
	}
	origin[captureCountry]++
}

// Merge folds other into e. The two accumulators must have observed
// disjoint address sets; MACs and vendors may overlap (one hardware
// address embedded by addresses in different shards) and are unioned.
func (e *EUI64Stats) Merge(other *EUI64Stats) {
	e.AddrsTotal += other.AddrsTotal
	e.AddrsEUI += other.AddrsEUI
	e.AddrsUnique += other.AddrsUnique
	for a := range other.seen {
		e.seen[a] = struct{}{}
	}
	for mac, class := range other.macs {
		e.macs[mac] = class
	}
	for vendor, ovc := range other.vendors {
		vc := e.vendors[vendor]
		if vc == nil {
			vc = &VendorCount{Vendor: vendor, MACs: make(map[ipv6x.MAC]struct{})}
			e.vendors[vendor] = vc
		}
		for mac := range ovc.MACs {
			vc.MACs[mac] = struct{}{}
		}
		vc.IPs += ovc.IPs
	}
	for class, origin := range other.perClassOrigin {
		dst := e.perClassOrigin[class]
		if dst == nil {
			dst = make(map[string]int)
			e.perClassOrigin[class] = dst
		}
		for country, n := range origin {
			dst[country] += n
		}
	}
}

// DistinctMACs returns how many distinct embedded hardware addresses
// were seen (all classes).
func (e *EUI64Stats) DistinctMACs() int { return len(e.macs) }

// ListedMACs returns the distinct IEEE-listed MAC count.
func (e *EUI64Stats) ListedMACs() int {
	n := 0
	for _, vc := range e.vendors {
		n += len(vc.MACs)
	}
	return n
}

// VendorRow is one finished Table 4 row.
type VendorRow struct {
	Vendor string
	MACs   int
	IPs    int
}

// TopVendors returns manufacturers ranked by distinct MACs.
func (e *EUI64Stats) TopVendors(n int) []VendorRow {
	rows := make([]VendorRow, 0, len(e.vendors))
	for _, vc := range e.vendors {
		rows = append(rows, VendorRow{Vendor: vc.Vendor, MACs: len(vc.MACs), IPs: vc.IPs})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MACs != rows[j].MACs {
			return rows[i].MACs > rows[j].MACs
		}
		return rows[i].Vendor < rows[j].Vendor
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// OriginDistribution returns, for one MAC class, the share of addresses
// captured per vantage country (Figure 4). Countries are sorted.
func (e *EUI64Stats) OriginDistribution(class MACClass) (countries []string, shares []float64) {
	origin := e.perClassOrigin[class]
	total := 0
	for _, n := range origin {
		total += n
	}
	countries = sortedKeys(origin)
	shares = make([]float64, len(countries))
	if total == 0 {
		return countries, shares
	}
	for i, c := range countries {
		shares[i] = float64(origin[c]) / float64(total)
	}
	return countries, shares
}
