package analysis

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"

	"ntpscan/internal/zgrab"
)

// Table2Builder maintains Table 2 ("successful scans by protocol")
// incrementally, one result at a time, so a live campaign can serve the
// table without rescanning the store. The builder's state is pure sets
// (distinct addresses and identities per protocol group), which makes
// it order-insensitive: feeding the same results in any order — the
// per-slice drain order of a running campaign or the segment order of a
// full store scan — yields identical rows and an identical snapshot.
type Table2Builder struct {
	groups []*t2group
}

type t2group struct {
	addrs    map[netip.Addr]struct{}
	tlsAddrs map[netip.Addr]struct{}
	idents   map[string]struct{}
}

// NewTable2Builder returns an empty builder with one group per Table 2
// row.
func NewTable2Builder() *Table2Builder {
	b := &Table2Builder{}
	for range table2Groups {
		b.groups = append(b.groups, &t2group{
			addrs:    map[netip.Addr]struct{}{},
			tlsAddrs: map[netip.Addr]struct{}{},
			idents:   map[string]struct{}{},
		})
	}
	return b
}

// Add folds one result into the table. Results whose module belongs to
// no Table 2 group, and unsuccessful grabs, are ignored — exactly the
// rows batch Table2 skips.
func (b *Table2Builder) Add(r *zgrab.Result) {
	if !r.Success() {
		return
	}
	for i, g := range table2Groups {
		switch r.Module {
		case g.Plain:
			b.groups[i].addrs[r.IP] = struct{}{}
			if g.Plain == "ssh" && r.SSH != nil && r.SSH.KeyFingerprint != "" {
				b.groups[i].idents[r.SSH.KeyFingerprint] = struct{}{}
			}
		case g.TLS:
			if g.TLS == "" {
				continue
			}
			b.groups[i].addrs[r.IP] = struct{}{}
			if r.TLS != nil && r.TLS.HandshakeOK {
				b.groups[i].tlsAddrs[r.IP] = struct{}{}
				if r.TLS.CertFingerprint != "" {
					b.groups[i].idents[r.TLS.CertFingerprint] = struct{}{}
				}
			}
		}
	}
}

// Rows materialises the current table in the batch Table2 row order.
func (b *Table2Builder) Rows() []Table2Row {
	var rows []Table2Row
	for i, g := range table2Groups {
		rows = append(rows, Table2Row{
			Protocol:  g.Label,
			Addrs:     len(b.groups[i].addrs),
			AddrsTLS:  len(b.groups[i].tlsAddrs),
			CertsKeys: len(b.groups[i].idents),
		})
	}
	return rows
}

// t2state is the wire form of one group's sets: sorted string slices,
// so the snapshot is byte-deterministic for equal set contents.
type t2state struct {
	Addrs    []string `json:"addrs"`
	TLSAddrs []string `json:"tls_addrs"`
	Idents   []string `json:"idents"`
}

// State snapshots the builder deterministically: equal set contents —
// however they were accumulated — produce identical bytes.
func (b *Table2Builder) State() (json.RawMessage, error) {
	out := make([]t2state, len(b.groups))
	for i, g := range b.groups {
		out[i] = t2state{
			Addrs:    sortedAddrStrings(g.addrs),
			TLSAddrs: sortedAddrStrings(g.tlsAddrs),
			Idents:   sortedSet(g.idents),
		}
	}
	return json.Marshal(out)
}

// Restore replaces the builder's state with a State snapshot. The
// snapshot must come from the same table2Groups shape (group count is
// checked).
func (b *Table2Builder) Restore(raw json.RawMessage) error {
	var in []t2state
	if err := json.Unmarshal(raw, &in); err != nil {
		return fmt.Errorf("analysis: table2 state: %w", err)
	}
	if len(in) != len(table2Groups) {
		return fmt.Errorf("analysis: table2 state has %d groups, want %d", len(in), len(table2Groups))
	}
	fresh := NewTable2Builder()
	for i, st := range in {
		g := fresh.groups[i]
		for _, a := range st.Addrs {
			ip, err := netip.ParseAddr(a)
			if err != nil {
				return fmt.Errorf("analysis: table2 state: %w", err)
			}
			g.addrs[ip] = struct{}{}
		}
		for _, a := range st.TLSAddrs {
			ip, err := netip.ParseAddr(a)
			if err != nil {
				return fmt.Errorf("analysis: table2 state: %w", err)
			}
			g.tlsAddrs[ip] = struct{}{}
		}
		for _, id := range st.Idents {
			g.idents[id] = struct{}{}
		}
	}
	b.groups = fresh.groups
	return nil
}

func sortedAddrStrings(m map[netip.Addr]struct{}) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a.String())
	}
	sort.Strings(out)
	return out
}

func sortedSet(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
