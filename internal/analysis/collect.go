package analysis

import (
	"net/netip"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/stats"
)

// CollectionStats summarises one collected address set as the paper's
// Table 1 and Figure 1 report it.
type CollectionStats struct {
	Addrs       int
	Nets48      int
	ASes        int
	Median48    float64 // median IPs per /48
	MedianAS    float64 // median IPs per AS
	IIDClasses  [ipv6x.NIIDClasses]int
	CableDSLISP int // addresses whose AS PeeringDB type is Cable/DSL/ISP
	ASKnown     int // addresses with a resolvable origin AS
}

// IIDShare returns the proportion of addresses in the given class.
func (c *CollectionStats) IIDShare(class ipv6x.IIDClass) float64 {
	return stats.Proportion(c.IIDClasses[class], c.Addrs)
}

// CableShare returns the Cable/DSL/ISP proportion among addresses with
// a known AS (the Figure 1 right panel).
func (c *CollectionStats) CableShare() float64 {
	return stats.Proportion(c.CableDSLISP, c.ASKnown)
}

// AddrSummary is the reusable accumulator behind CollectionStats: feed
// it distinct addresses, read the statistics at the end. Not safe for
// concurrent use.
type AddrSummary struct {
	ctx     *Context
	set     *ipv6x.AddrSet
	per48   *ipv6x.PrefixCounter
	perAS   map[uint32]int
	classes [ipv6x.NIIDClasses]int
	cable   int
	asKnown int
}

// NewAddrSummary returns an empty accumulator resolving against ctx.
func NewAddrSummary(ctx *Context) *AddrSummary {
	return &AddrSummary{
		ctx:   ctx,
		set:   ipv6x.NewAddrSet(),
		per48: ipv6x.NewPrefixCounter(48),
		perAS: make(map[uint32]int),
	}
}

// Add observes one address; duplicates are ignored. It reports whether
// the address was new.
func (s *AddrSummary) Add(addr netip.Addr) bool {
	if !s.set.Add(addr) {
		return false
	}
	s.per48.Add(addr)
	s.classes[ipv6x.ClassifyIID(addr)]++
	if s.ctx != nil && s.ctx.AS != nil {
		if as, ok := s.ctx.AS.Lookup(addr); ok {
			s.perAS[as.Number]++
			s.asKnown++
			if as.Type.String() == "Cable/DSL/ISP" {
				s.cable++
			}
		} else if asn, ok := s.ctx.AS.LookupASN(addr); ok {
			s.perAS[asn]++
			s.asKnown++
		}
	}
	return true
}

// Merge folds other into s. The two summaries must have observed
// disjoint address sets (the sharded accumulator's hash partition
// guarantees this); per-prefix and per-AS counts then sum exactly.
func (s *AddrSummary) Merge(other *AddrSummary) {
	s.set.Merge(other.set)
	s.per48.Merge(other.per48)
	for as, n := range other.perAS {
		s.perAS[as] += n
	}
	for i, n := range other.classes {
		s.classes[i] += n
	}
	s.cable += other.cable
	s.asKnown += other.asKnown
}

// Set exposes the underlying address set (overlap computations).
func (s *AddrSummary) Set() *ipv6x.AddrSet { return s.set }

// Per48 exposes the /48 counter (overlap computations).
func (s *AddrSummary) Per48() *ipv6x.PrefixCounter { return s.per48 }

// ASNumbers returns the distinct origin ASes observed.
func (s *AddrSummary) ASNumbers() map[uint32]int { return s.perAS }

// ASOverlap counts ASes present in both summaries.
func (s *AddrSummary) ASOverlap(other *AddrSummary) int {
	a, b := s.perAS, other.perAS
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for asn := range a {
		if _, ok := b[asn]; ok {
			n++
		}
	}
	return n
}

// Stats freezes the summary into CollectionStats.
func (s *AddrSummary) Stats() CollectionStats {
	asCounts := make([]int, 0, len(s.perAS))
	for _, n := range s.perAS {
		asCounts = append(asCounts, n)
	}
	return CollectionStats{
		Addrs:       s.set.Len(),
		Nets48:      s.per48.Len(),
		ASes:        len(s.perAS),
		Median48:    stats.MedianInts(s.per48.Counts()),
		MedianAS:    stats.MedianInts(asCounts),
		IIDClasses:  s.classes,
		CableDSLISP: s.cable,
		ASKnown:     s.asKnown,
	}
}

// SummarizeAddrs builds a summary over a finished address list.
func SummarizeAddrs(ctx *Context, addrs []netip.Addr) *AddrSummary {
	s := NewAddrSummary(ctx)
	for _, a := range addrs {
		s.Add(a)
	}
	return s
}
