package analysis

import (
	"net/netip"
	"sort"
)

// KeyReuseStats reproduces the §6 "Certificate and Key Reuse" analysis:
// keys or certificates observed at multiple addresses across more than
// two ASes (the threshold that excludes dual-homed hosts).
type KeyReuseStats struct {
	// ReusedKeys is the number of distinct identities (SSH keys and
	// TLS key IDs) appearing in more than two ASes.
	ReusedKeys int
	// ReusedIPs is the number of addresses relying on those keys.
	ReusedIPs int
	// TopKeyIPs/TopKeyASes describe the most-used key (by addresses).
	TopKeyIPs  int
	TopKeyASes int
	// WidestKeyASes is the AS span of the most widespread key.
	WidestKeyASes int
}

// KeyReuse analyses a dataset. HTTP entries are restricted to status
// 200 responses, as the paper does.
func KeyReuse(ctx *Context, d *Dataset) KeyReuseStats {
	type spread struct {
		ips  map[netip.Addr]struct{}
		ases map[uint32]struct{}
	}
	keys := map[string]*spread{}
	observe := func(id string, addr netip.Addr) {
		s := keys[id]
		if s == nil {
			s = &spread{ips: map[netip.Addr]struct{}{}, ases: map[uint32]struct{}{}}
			keys[id] = s
		}
		s.ips[addr] = struct{}{}
		if ctx != nil && ctx.AS != nil {
			if asn, ok := ctx.AS.LookupASN(addr); ok {
				s.ases[asn] = struct{}{}
			}
		}
	}
	for _, r := range d.Successes("ssh") {
		if r.SSH != nil && r.SSH.KeyFingerprint != "" {
			observe("ssh:"+r.SSH.KeyFingerprint, r.IP)
		}
	}
	for _, module := range []string{"https", "mqtts", "amqps"} {
		for _, r := range d.Successes(module) {
			if r.TLS == nil || !r.TLS.HandshakeOK || r.TLS.KeyID == "" {
				continue
			}
			if module == "https" && (r.HTTP == nil || r.HTTP.StatusCode != 200) {
				continue
			}
			observe("tls:"+r.TLS.KeyID, r.IP)
		}
	}

	var out KeyReuseStats
	type ranked struct{ ips, ases int }
	var all []ranked
	for _, s := range keys {
		if len(s.ases) <= 2 {
			continue // dual-homing tolerance
		}
		out.ReusedKeys++
		out.ReusedIPs += len(s.ips)
		all = append(all, ranked{ips: len(s.ips), ases: len(s.ases)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ips > all[j].ips })
	if len(all) > 0 {
		out.TopKeyIPs = all[0].ips
		out.TopKeyASes = all[0].ases
		widest := 0
		for _, r := range all {
			if r.ases > widest {
				widest = r.ases
			}
		}
		out.WidestKeyASes = widest
	}
	return out
}
