package analysis

import (
	"net/netip"
	"sort"
)

// KeyReuseStats reproduces the §6 "Certificate and Key Reuse" analysis:
// keys or certificates observed at multiple addresses across more than
// two ASes (the threshold that excludes dual-homed hosts).
type KeyReuseStats struct {
	// ReusedKeys is the number of distinct identities (SSH keys and
	// TLS key IDs) appearing in more than two ASes.
	ReusedKeys int
	// ReusedIPs is the number of addresses relying on those keys.
	ReusedIPs int
	// TopKeyIPs/TopKeyASes describe the most-used key (by addresses).
	TopKeyIPs  int
	TopKeyASes int
	// WidestKeyASes is the AS span of the most widespread key.
	WidestKeyASes int
}

// identKind distinguishes SSH host keys from TLS key IDs in identKey
// (the two fingerprint namespaces must not collide).
type identKind uint8

const (
	identSSH identKind = iota + 1
	identTLS
)

// identKey is the reuse map's key: fingerprint kind plus the decoded
// fingerprint bytes. Fingerprints arrive as hex strings (up to 64
// chars = 32 bytes); decoding them into a fixed array makes the key
// comparable without any per-observation string concatenation — the
// old "ssh:"+fp key allocated once per observed result. Non-hex
// identities (hand-edited JSONL) fall back to the raw string field.
type identKey struct {
	kind identKind
	n    uint8 // decoded byte count (disambiguates "ab" from "ab00...")
	id   [32]byte
	raw  string // only set when the identity is not valid hex
}

// makeIdentKey builds the key for one fingerprint string.
func makeIdentKey(kind identKind, fp string) identKey {
	k := identKey{kind: kind}
	if len(fp) > 2*len(k.id) || len(fp)%2 != 0 || !hexInto(k.id[:], fp) {
		return identKey{kind: kind, raw: fp}
	}
	k.n = uint8(len(fp) / 2)
	return k
}

// hexInto decodes lowercase/uppercase hex s into dst without
// allocating. Reports whether s was entirely valid hex.
func hexInto(dst []byte, s string) bool {
	for i := 0; i+1 < len(s); i += 2 {
		hi, ok1 := unhex(s[i])
		lo, ok2 := unhex(s[i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i/2] = hi<<4 | lo
	}
	return true
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// KeyReuse analyses a dataset. HTTP entries are restricted to status
// 200 responses, as the paper does.
func KeyReuse(ctx *Context, d *Dataset) KeyReuseStats {
	type spread struct {
		ips  map[netip.Addr]struct{}
		ases map[uint32]struct{}
	}
	keys := map[identKey]*spread{}
	observe := func(kind identKind, fp string, addr netip.Addr) {
		id := makeIdentKey(kind, fp)
		s := keys[id]
		if s == nil {
			s = &spread{ips: map[netip.Addr]struct{}{}, ases: map[uint32]struct{}{}}
			keys[id] = s
		}
		s.ips[addr] = struct{}{}
		if ctx != nil && ctx.AS != nil {
			if asn, ok := ctx.AS.LookupASN(addr); ok {
				s.ases[asn] = struct{}{}
			}
		}
	}
	for _, r := range d.Successes("ssh") {
		if r.SSH != nil && r.SSH.KeyFingerprint != "" {
			observe(identSSH, r.SSH.KeyFingerprint, r.IP)
		}
	}
	for _, module := range []string{"https", "mqtts", "amqps"} {
		for _, r := range d.Successes(module) {
			if r.TLS == nil || !r.TLS.HandshakeOK || r.TLS.KeyID == "" {
				continue
			}
			if module == "https" && (r.HTTP == nil || r.HTTP.StatusCode != 200) {
				continue
			}
			observe(identTLS, r.TLS.KeyID, r.IP)
		}
	}

	var out KeyReuseStats
	type ranked struct{ ips, ases int }
	var all []ranked
	for _, s := range keys {
		if len(s.ases) <= 2 {
			continue // dual-homing tolerance
		}
		out.ReusedKeys++
		out.ReusedIPs += len(s.ips)
		all = append(all, ranked{ips: len(s.ips), ases: len(s.ases)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ips > all[j].ips })
	if len(all) > 0 {
		out.TopKeyIPs = all[0].ips
		out.TopKeyASes = all[0].ases
		widest := 0
		for _, r := range all {
			if r.ases > widest {
				widest = r.ases
			}
		}
		out.WidestKeyASes = widest
	}
	return out
}
