// Package asn models the routing-metadata substrate the paper consumes:
// an AS registry with announced IPv6 prefixes (RIPE-RIS-equivalent,
// longest-prefix-match lookups) and PeeringDB-style network-type labels
// ("Cable/DSL/ISP" is the class Figure 1 singles out for eyeball
// networks).
package asn

import (
	"fmt"
	"net/netip"
	"sort"
)

// Type is a PeeringDB-style network classification.
type Type int

const (
	// TypeUnknown means no PeeringDB record exists for the AS.
	TypeUnknown Type = iota
	// TypeCableDSLISP marks eyeball access networks.
	TypeCableDSLISP
	// TypeNSP marks transit/backbone network service providers.
	TypeNSP
	// TypeContent marks content providers and hyperscalers.
	TypeContent
	// TypeEnterprise marks corporate networks.
	TypeEnterprise
	// TypeEducational marks research and education networks.
	TypeEducational
	// TypeNonProfit marks non-profit operators.
	TypeNonProfit
)

// String implements fmt.Stringer using PeeringDB's labels.
func (t Type) String() string {
	switch t {
	case TypeUnknown:
		return "Unknown"
	case TypeCableDSLISP:
		return "Cable/DSL/ISP"
	case TypeNSP:
		return "NSP"
	case TypeContent:
		return "Content"
	case TypeEnterprise:
		return "Enterprise"
	case TypeEducational:
		return "Educational/Research"
	case TypeNonProfit:
		return "Non-Profit"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// AS is one autonomous system record.
type AS struct {
	Number  uint32
	Name    string
	Country string // ISO 3166-1 alpha-2
	Type    Type
}

// Registry holds AS records and their announced prefixes and answers
// address→AS lookups by longest prefix match.
type Registry struct {
	ases map[uint32]*AS
	// tables maps prefix length -> masked prefix -> origin ASN. Lookup
	// probes lengths longest-first; IPv6 tables use a handful of
	// distinct lengths, so the probe loop is short.
	tables  map[int]map[netip.Prefix]uint32
	lengths []int // distinct announced lengths, descending
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ases:   make(map[uint32]*AS),
		tables: make(map[int]map[netip.Prefix]uint32),
	}
}

// Register adds (or replaces) an AS record and returns the stored value.
func (r *Registry) Register(as AS) *AS {
	stored := as
	r.ases[as.Number] = &stored
	return &stored
}

// Get returns the record for an AS number.
func (r *Registry) Get(asn uint32) (*AS, bool) {
	as, ok := r.ases[asn]
	return as, ok
}

// Len returns the number of registered ASes.
func (r *Registry) Len() int { return len(r.ases) }

// Announce records that asn originates p. Re-announcing a prefix
// overwrites the previous origin (no MOAS modelling).
func (r *Registry) Announce(p netip.Prefix, asn uint32) {
	p = p.Masked()
	bits := p.Bits()
	tbl, ok := r.tables[bits]
	if !ok {
		tbl = make(map[netip.Prefix]uint32)
		r.tables[bits] = tbl
		r.lengths = append(r.lengths, bits)
		sort.Sort(sort.Reverse(sort.IntSlice(r.lengths)))
	}
	tbl[p] = asn
}

// Lookup returns the AS originating the longest matching announced
// prefix covering addr.
func (r *Registry) Lookup(addr netip.Addr) (*AS, bool) {
	asn, ok := r.LookupASN(addr)
	if !ok {
		return nil, false
	}
	as, ok := r.ases[asn]
	return as, ok
}

// LookupASN is Lookup returning only the origin AS number. The origin
// may be unregistered (announced but without a Register call); the
// lookup still succeeds.
func (r *Registry) LookupASN(addr netip.Addr) (uint32, bool) {
	for _, bits := range r.lengths {
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if asn, ok := r.tables[bits][p]; ok {
			return asn, true
		}
	}
	return 0, false
}

// LookupPrefix returns the matched announced prefix for addr, if any.
func (r *Registry) LookupPrefix(addr netip.Addr) (netip.Prefix, bool) {
	for _, bits := range r.lengths {
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if _, ok := r.tables[bits][p]; ok {
			return p, true
		}
	}
	return netip.Prefix{}, false
}

// Announced returns the total number of announced prefixes.
func (r *Registry) Announced() int {
	n := 0
	for _, tbl := range r.tables {
		n += len(tbl)
	}
	return n
}

// ASNumbers returns all registered AS numbers in ascending order.
func (r *Registry) ASNumbers() []uint32 {
	out := make([]uint32, 0, len(r.ases))
	for n := range r.ases {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachAnnouncement iterates every (prefix, origin ASN) pair, longest
// lengths first, prefixes in ascending order within a length. Iteration
// order is deterministic.
func (r *Registry) ForEachAnnouncement(fn func(netip.Prefix, uint32) bool) {
	for _, bits := range r.lengths {
		tbl := r.tables[bits]
		ps := make([]netip.Prefix, 0, len(tbl))
		for p := range tbl {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Addr().Less(ps[j].Addr()) })
		for _, p := range ps {
			if !fn(p, tbl[p]) {
				return
			}
		}
	}
}
