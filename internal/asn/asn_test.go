package asn

import (
	"net/netip"
	"testing"
)

func mustAddr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestRegisterGet(t *testing.T) {
	r := NewRegistry()
	r.Register(AS{Number: 64500, Name: "Example ISP", Country: "DE", Type: TypeCableDSLISP})
	as, ok := r.Get(64500)
	if !ok || as.Name != "Example ISP" || as.Type != TypeCableDSLISP {
		t.Fatalf("Get = %+v, %v", as, ok)
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("unknown AS resolved")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestLookupLongestMatch(t *testing.T) {
	r := NewRegistry()
	r.Register(AS{Number: 100, Name: "big"})
	r.Register(AS{Number: 200, Name: "more-specific"})
	r.Announce(mustPfx("2001:db8::/32"), 100)
	r.Announce(mustPfx("2001:db8:1::/48"), 200)

	if asn, ok := r.LookupASN(mustAddr("2001:db8:1::5")); !ok || asn != 200 {
		t.Fatalf("more-specific not preferred: %d %v", asn, ok)
	}
	if asn, ok := r.LookupASN(mustAddr("2001:db8:2::5")); !ok || asn != 100 {
		t.Fatalf("covering prefix missed: %d %v", asn, ok)
	}
	if _, ok := r.LookupASN(mustAddr("2001:db9::1")); ok {
		t.Fatal("unannounced space resolved")
	}
}

func TestLookupReturnsRecord(t *testing.T) {
	r := NewRegistry()
	r.Register(AS{Number: 300, Name: "X"})
	r.Announce(mustPfx("2001:db8::/32"), 300)
	as, ok := r.Lookup(mustAddr("2001:db8::1"))
	if !ok || as.Number != 300 {
		t.Fatalf("Lookup = %+v %v", as, ok)
	}
	// Announced by an unregistered AS: LookupASN works, Lookup does not.
	r.Announce(mustPfx("2001:db9::/32"), 999)
	if _, ok := r.Lookup(mustAddr("2001:db9::1")); ok {
		t.Fatal("unregistered AS returned a record")
	}
	if asn, ok := r.LookupASN(mustAddr("2001:db9::1")); !ok || asn != 999 {
		t.Fatal("LookupASN should still resolve unregistered origins")
	}
}

func TestLookupPrefix(t *testing.T) {
	r := NewRegistry()
	r.Announce(mustPfx("2001:db8::/32"), 1)
	r.Announce(mustPfx("2001:db8:1::/48"), 2)
	p, ok := r.LookupPrefix(mustAddr("2001:db8:1::1"))
	if !ok || p != mustPfx("2001:db8:1::/48") {
		t.Fatalf("LookupPrefix = %v %v", p, ok)
	}
}

func TestAnnounceMasksPrefix(t *testing.T) {
	r := NewRegistry()
	// Host bits set in the announcement should be masked away.
	r.Announce(netip.PrefixFrom(mustAddr("2001:db8::beef"), 32), 7)
	if asn, ok := r.LookupASN(mustAddr("2001:db8:ffff::1")); !ok || asn != 7 {
		t.Fatalf("masked announce failed: %d %v", asn, ok)
	}
}

func TestReAnnounceOverwrites(t *testing.T) {
	r := NewRegistry()
	p := mustPfx("2001:db8::/32")
	r.Announce(p, 1)
	r.Announce(p, 2)
	if asn, _ := r.LookupASN(mustAddr("2001:db8::1")); asn != 2 {
		t.Fatalf("origin = %d, want 2", asn)
	}
	if r.Announced() != 1 {
		t.Fatalf("Announced = %d", r.Announced())
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeCableDSLISP.String() != "Cable/DSL/ISP" {
		t.Fatalf("label = %q", TypeCableDSLISP.String())
	}
	for ty := TypeUnknown; ty <= TypeNonProfit; ty++ {
		if ty.String() == "" {
			t.Fatalf("type %d has empty label", ty)
		}
	}
	if Type(42).String() != "Type(42)" {
		t.Fatal("unknown type label wrong")
	}
}

func TestASNumbersSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []uint32{5, 1, 9, 3} {
		r.Register(AS{Number: n})
	}
	got := r.ASNumbers()
	want := []uint32{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ASNumbers = %v", got)
		}
	}
}

func TestForEachAnnouncementDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Announce(mustPfx("2001:db8:2::/48"), 2)
	r.Announce(mustPfx("2001:db8:1::/48"), 1)
	r.Announce(mustPfx("2001:db8::/32"), 3)
	var first []netip.Prefix
	r.ForEachAnnouncement(func(p netip.Prefix, asn uint32) bool {
		first = append(first, p)
		return true
	})
	// /48s come before /32 (longest first), ascending within length.
	if len(first) != 3 || first[0] != mustPfx("2001:db8:1::/48") ||
		first[1] != mustPfx("2001:db8:2::/48") || first[2] != mustPfx("2001:db8::/32") {
		t.Fatalf("order = %v", first)
	}
	// Early stop.
	n := 0
	r.ForEachAnnouncement(func(netip.Prefix, uint32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func BenchmarkLookupASN(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 10000; i++ {
		hi := 0x2001000000000000 | uint64(i)<<16
		r.Announce(netip.PrefixFrom(netip.AddrFrom16(addr16(hi)), 48), uint32(i))
	}
	target := netip.AddrFrom16(addr16(0x2001000000000000 | 5000<<16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.LookupASN(target)
	}
}

func addr16(hi uint64) (b [16]byte) {
	for i := 0; i < 8; i++ {
		b[i] = byte(hi >> (56 - 8*uint(i)))
	}
	return b
}
