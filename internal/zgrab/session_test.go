package zgrab

import (
	"context"
	"net/netip"
	"testing"
)

// TestSessionTableLifecycle exercises the dense table directly: ids are
// handed out densely, freed ids recycle LIFO, the high-water mark
// tracks peak liveness, and a double release panics.
func TestSessionTableLifecycle(t *testing.T) {
	var tab sessionTable
	a, b, c := tab.acquire(), tab.acquire(), tab.acquire()
	if a.id != 0 || b.id != 1 || c.id != 2 {
		t.Fatalf("ids not dense: %d %d %d", a.id, b.id, c.id)
	}
	if live, high := tab.stats(); live != 3 || high != 3 {
		t.Fatalf("stats = %d live, %d high, want 3/3", live, high)
	}
	tab.release(b)
	if got := tab.acquire(); got != b {
		t.Fatalf("freed slot not recycled: got id %d, want %d", got.id, b.id)
	}
	tab.release(a)
	tab.release(b)
	tab.release(c)
	if live, high := tab.stats(); live != 0 || high != 3 {
		t.Fatalf("stats = %d live, %d high, want 0/3", live, high)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	tab.release(a)
}

// TestSessionTableZeroAllocSteadyState pins the recycle path: once the
// table has grown to the in-flight high-water mark, acquire/release
// pairs never touch the allocator (the property the sync.Pool it
// replaced only provided probabilistically).
func TestSessionTableZeroAllocSteadyState(t *testing.T) {
	var tab sessionTable
	warm := make([]*session, 8)
	for i := range warm {
		warm[i] = tab.acquire()
	}
	for _, s := range warm {
		tab.release(s)
	}
	addr := netip.MustParseAddr("2001:db8::1")
	if avg := testing.AllocsPerRun(200, func() {
		s := tab.acquire()
		s.targets = append(s.targets, target{addr: addr})
		tab.release(s)
	}); avg != 0 {
		t.Fatalf("steady-state acquire/release allocates %.1f objects", avg)
	}
}

// TestScannerSessionAccounting checks the table through the public
// surface: after a drained run every session has been released and the
// high-water mark reflects that chunks were actually in flight.
func TestScannerSessionAccounting(t *testing.T) {
	s := NewScanner(Config{Fabric: testFabric(), Source: scanSrc, Workers: 4})
	s.Start(context.Background())
	defer s.Close()
	addrs := make([]netip.Addr, 0, 3*submitChunk+5)
	for i := 0; i < cap(addrs); i++ {
		addrs = append(addrs, netip.AddrFrom16(
			[16]byte{0x20, 0x01, 0xd, 0xb8, 0xfe, byte(i >> 8), byte(i)}))
	}
	s.SubmitBatch(addrs)
	s.Drain()
	live, high := s.Sessions()
	if live != 0 {
		t.Fatalf("%d sessions still live after drain", live)
	}
	if high < 1 {
		t.Fatalf("high-water mark %d, want >= 1", high)
	}
}
