package zgrab

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"
)

func grabResult() *Result {
	return &Result{
		IP:     netip.MustParseAddr("2001:db8::1"),
		Module: "http",
		Port:   80,
		Time:   time.Date(2024, 7, 20, 12, 0, 0, 0, time.UTC),
		Status: StatusSuccess,
		HTTP:   &HTTPGrab{StatusCode: 200, Server: "httpd", Title: "root"},
		TLS:    &TLSGrab{Version: "TLS 1.3", HandshakeOK: true},
		SSH:    &SSHGrab{ServerID: "SSH-2.0-x", Software: "x"},
		MQTT:   &MQTTGrab{ReturnCode: 0, Open: true},
		AMQP:   &AMQPGrab{Product: "broker", Open: true},
		CoAP:   &CoAPGrab{Code: "2.05", Resources: []string{"/x"}},
	}
}

// AppendGrabs/SetGrabs carry the grab payloads through the columnar
// store's row encoding; they must round-trip every module pointer and
// encode "no grabs" as zero bytes.
func TestAppendSetGrabsRoundTrip(t *testing.T) {
	r := grabResult()
	buf, err := r.AppendGrabs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 {
		t.Fatal("grab payload empty")
	}
	var back Result
	if err := back.SetGrabs(buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.HTTP, r.HTTP) || !reflect.DeepEqual(back.TLS, r.TLS) ||
		!reflect.DeepEqual(back.SSH, r.SSH) || !reflect.DeepEqual(back.MQTT, r.MQTT) ||
		!reflect.DeepEqual(back.AMQP, r.AMQP) || !reflect.DeepEqual(back.CoAP, r.CoAP) {
		t.Fatalf("grabs changed across round trip: %+v vs %+v", back, r)
	}

	// AppendGrabs appends — a prefixed buffer must survive.
	prefixed, err := r.AppendGrabs([]byte("xx"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prefixed[:2], []byte("xx")) || !bytes.Equal(prefixed[2:], buf) {
		t.Fatal("AppendGrabs did not append to the given buffer")
	}

	// No grabs: nothing appended, and SetGrabs of empty clears nothing.
	bare := &Result{Module: "http", Status: StatusTimeout}
	if buf, err := bare.AppendGrabs(nil); err != nil || len(buf) != 0 {
		t.Fatalf("all-nil grabs encoded to %d bytes (err %v)", len(buf), err)
	}
	if err := bare.SetGrabs(nil); err != nil {
		t.Fatal(err)
	}
	if bare.HTTP != nil || bare.TLS != nil {
		t.Fatal("SetGrabs(nil) invented grabs")
	}
	if err := bare.SetGrabs([]byte("{")); err == nil {
		t.Fatal("SetGrabs accepted truncated JSON")
	}
}

// Intern canonicalises a decoded result's strings into the shared
// table, same as the scan path does.
func TestResultIntern(t *testing.T) {
	module := strings.Repeat("http", 1)[:4] // a non-constant "http"
	r := &Result{Module: module, Status: StatusSuccess, Error: "e"}
	r.Intern()
	if r.Module != "http" || r.Status != StatusSuccess || r.Error != "e" {
		t.Fatalf("Intern changed values: %+v", r)
	}
}

func TestDecodeJSONLStopsOnCallbackError(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Write(grabResult())
	w.Write(grabResult())
	n := 0
	err := DecodeJSONL(&buf, func(*Result) error {
		n++
		return errStop
	})
	if err != errStop || n != 1 {
		t.Fatalf("callback error not propagated: err=%v n=%d", err, n)
	}
}

var errStop = errorString("stop")

type errorString string

func (e errorString) Error() string { return string(e) }
