package zgrab

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ntpscan/internal/netsim"
)

func TestRevisitSweepEvictsExpired(t *testing.T) {
	rv := NewRevisit(time.Hour)
	t0 := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	a := netip.MustParseAddr("2001:db8::1")
	b := netip.MustParseAddr("2001:db8::2")
	rv.Allow(a, t0)
	rv.Allow(b, t0.Add(30*time.Minute))
	if rv.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rv.Len())
	}

	// Only a's holdoff has expired at t0+1h.
	if n := rv.Sweep(t0.Add(time.Hour)); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if rv.Len() != 1 {
		t.Fatalf("Len after sweep = %d, want 1", rv.Len())
	}
	if !rv.Allow(a, t0.Add(time.Hour)) {
		t.Fatal("evicted address still suppressed")
	}
	if rv.Allow(b, t0.Add(time.Hour)) {
		t.Fatal("unexpired address admitted")
	}
}

func TestRevisitSnapshotRestore(t *testing.T) {
	rv := NewRevisit(time.Hour)
	t0 := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		rv.Allow(netip.AddrFrom16([16]byte{0x20, 0x01, 15: byte(i)}), t0.Add(time.Duration(i)*time.Minute))
	}
	snap := rv.Snapshot()
	if len(snap) != 10 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if !snap[i-1].Addr.Less(snap[i].Addr) {
			t.Fatal("snapshot not in canonical address order")
		}
	}
	rv2 := NewRevisit(time.Hour)
	rv2.Restore(snap)
	if fmt.Sprintf("%+v", rv2.Snapshot()) != fmt.Sprintf("%+v", snap) {
		t.Fatal("restore round trip diverges")
	}
}

// Satellite: cancelling the scanner's context mid-drain must not wedge
// Drain or Close — in-flight targets finish (possibly with error
// results), the pending count hits zero, and shutdown completes.
func TestScannerContextCancelMidDrain(t *testing.T) {
	f := netsim.New(netsim.Config{DialTimeout: 50 * time.Millisecond})
	// No hosts registered: every dial blackholes until DialTimeout, so
	// the queue stays busy long enough for a mid-flight cancel.
	ctx, cancel := context.WithCancel(context.Background())
	s := NewScanner(Config{
		Fabric:   f,
		Clock:    netsim.RealClock{},
		Source:   scanSrc,
		Timeout:  50 * time.Millisecond,
		Workers:  4,
		OnResult: func(*Result) {},
	})
	s.Start(ctx)
	addrs := make([]netip.Addr, 64)
	for i := range addrs {
		addrs[i] = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 15: byte(i)})
	}
	s.SubmitBatch(addrs)

	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()

	done := make(chan struct{})
	go func() {
		s.Drain()
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain/Close wedged after context cancellation")
	}
}

// Breaker-shed targets must keep the sequence space dense: every
// module slot yields a result whether scanned or skipped.
func TestBreakerOpenKeepsSeqDense(t *testing.T) {
	clock := netsim.NewManualClock(time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC))
	f := netsim.New(netsim.Config{Clock: clock, DialTimeout: time.Millisecond})

	var mu sync.Mutex
	var results []*Result
	s := NewScanner(Config{
		Fabric:  f,
		Source:  scanSrc,
		Timeout: time.Millisecond,
		Workers: 2,
		Breaker: &BreakerConfig{Threshold: 4, Cooldown: time.Hour},
		OnResult: func(r *Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	s.Start(context.Background())

	dark := make([]netip.Addr, 8)
	for i := range dark {
		dark[i] = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 15: byte(i + 1)})
	}
	s.SubmitBatch(dark[:4])
	s.Drain() // folds 4 dark targets → breaker trips
	if s.Breaker().Open() != 1 {
		t.Fatalf("breaker Open = %d, want 1", s.Breaker().Open())
	}
	s.SubmitBatch(dark[4:])
	s.Drain()
	s.Close()

	mods := len(AllModules())
	if want := 8 * mods; len(results) != want {
		t.Fatalf("got %d results, want %d (dense seq space)", len(results), want)
	}
	seen := make(map[int64]bool)
	var shed int
	for _, r := range results {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
		if r.Status == StatusBreakerOpen {
			shed++
		}
	}
	for i := int64(0); i < int64(8*mods); i++ {
		if !seen[i] {
			t.Fatalf("seq %d missing — sequence space has holes", i)
		}
	}
	if shed != 4*mods {
		t.Fatalf("shed %d module results, want %d", shed, 4*mods)
	}
	if s.Breaker().Skipped() != 4 {
		t.Fatalf("Skipped = %d, want 4", s.Breaker().Skipped())
	}
}

// Under a logical clock retries stamp their backoff into the result's
// schedule instead of sleeping, and the retry count lands in Attempts.
func TestRetryStampsBackoffOnLogicalClock(t *testing.T) {
	start := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	clock := netsim.NewManualClock(start)
	f := netsim.New(netsim.Config{Clock: clock, DialTimeout: time.Millisecond})
	// Unregistered target: every attempt times out (ClassFiltered,
	// retryable), so each module burns all attempts.
	var mu sync.Mutex
	var results []*Result
	s := NewScanner(Config{
		Fabric:  f,
		Source:  scanSrc,
		Timeout: time.Millisecond,
		Workers: 1,
		Retry:   &RetryPolicy{MaxAttempts: 3, Base: time.Second, Max: 8 * time.Second, Multiplier: 2, Jitter: 0},
		OnResult: func(r *Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	s.Start(context.Background())
	wall := time.Now()
	s.Submit(netip.MustParseAddr("2001:db8::dead"))
	s.Drain()
	s.Close()
	if elapsed := time.Since(wall); elapsed > 5*time.Second {
		t.Fatalf("logical-clock retries slept %v of wall time", elapsed)
	}

	if len(results) != len(AllModules()) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Attempts != 3 {
			t.Errorf("%s: Attempts = %d, want 3", r.Module, r.Attempts)
		}
		// Two backoffs (1s + 2s) accumulated into the schedule stamp.
		if got := r.Time.Sub(start); got != 3*time.Second {
			t.Errorf("%s: schedule offset %v, want 3s of stamped backoff", r.Module, got)
		}
	}
	_, _, _, probes := s.Stats()
	if want := int64(3 * len(AllModules())); probes != want {
		t.Fatalf("probes = %d, want %d", probes, want)
	}
}

// A retry against a garbling fault plan re-rolls the fabric's fault
// hashes; one retried probe must produce at most one result per module
// (only the final attempt is emitted).
func TestRetryEmitsOnlyFinalAttempt(t *testing.T) {
	f := testFabric()
	target := netip.MustParseAddr("2001:db8::d")
	f.Register(target, fullHost())
	var mu sync.Mutex
	count := map[string]int{}
	s := NewScanner(Config{
		Fabric:  f,
		Clock:   netsim.RealClock{},
		Source:  scanSrc,
		Timeout: time.Second,
		Workers: 2,
		Retry:   &RetryPolicy{MaxAttempts: 3, Base: time.Microsecond, Multiplier: 2},
		OnResult: func(r *Result) {
			mu.Lock()
			count[r.Module]++
			mu.Unlock()
		},
	})
	s.Start(context.Background())
	s.Submit(target)
	s.Close()
	for m, n := range count {
		if n != 1 {
			t.Errorf("module %s emitted %d results, want 1", m, n)
		}
	}
	if len(count) != len(AllModules()) {
		t.Fatalf("got %d modules, want %d", len(count), len(AllModules()))
	}
}
