package zgrab

import (
	"net/netip"
	"time"
)

// ErrorClass partitions grab outcomes by what a rescheduler should do
// with them. The classification is structural (status + grab fields),
// never string matching on error text.
type ErrorClass int

// Outcome classes.
const (
	// ClassNone: success or a definitive answer (TLS alert, breaker
	// skip). Retrying buys nothing.
	ClassNone ErrorClass = iota
	// ClassRefused: the host answered with a reset. Definitive — the
	// port is closed — but proof the host is alive.
	ClassRefused
	// ClassFiltered: silence. Either dark space, a firewall, or
	// transient loss on the path; only a retry can tell the last apart.
	ClassFiltered
	// ClassTransient: local I/O trouble (socket exhaustion, bind
	// failure). Unrelated to the target; retry.
	ClassTransient
	// ClassGarbled: bytes arrived but did not parse — a truncated or
	// corrupted banner. The host speaks; retry for a clean read.
	ClassGarbled
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassRefused:
		return "refused"
	case ClassFiltered:
		return "filtered"
	case ClassTransient:
		return "transient"
	case ClassGarbled:
		return "garbled"
	}
	return "unknown"
}

// Retryable reports whether a retry could plausibly change the
// outcome.
func (c ErrorClass) Retryable() bool {
	return c == ClassFiltered || c == ClassTransient || c == ClassGarbled
}

// Classify maps a grab result onto its error class.
//
// TLS failures split structurally: a handshake that died with an alert
// is the peer's deliberate answer (ClassNone), while one that died
// without an alert ran into a truncated or corrupted stream
// (ClassGarbled).
func Classify(r *Result) ErrorClass {
	switch r.Status {
	case StatusRefused:
		return ClassRefused
	case StatusTimeout:
		return ClassFiltered
	case StatusIOError:
		return ClassTransient
	case StatusProtocolError:
		return ClassGarbled
	case StatusTLSError:
		if r.TLS != nil && r.TLS.Alert != "" {
			return ClassNone
		}
		return ClassGarbled
	}
	return ClassNone
}

// Alive reports whether the result proves a host exists at the address
// — any answer at all, including refusals and broken banners. The
// circuit breaker counts targets with no alive signal across all
// modules as dark.
func Alive(r *Result) bool {
	switch Classify(r) {
	case ClassFiltered, ClassTransient:
		return false
	}
	return true
}

// RetryPolicy is the per-probe retry schedule: exponential backoff
// with deterministic jitter. The jitter is a pure hash of (address,
// module, attempt), so the backoff a probe experiences is a property
// of the experiment, not of scheduling — on a logical clock the delay
// is stamped into the result's schedule rather than slept.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per module probe (first try
	// included). Values < 1 mean 1.
	MaxAttempts int
	// Base is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier, capped at Max.
	Base       time.Duration
	Max        time.Duration
	Multiplier float64
	// Jitter is the fraction of each backoff randomised around its
	// nominal value (0.5 → uniform in [0.75x, 1.25x]).
	Jitter float64
}

// DefaultRetryPolicy mirrors common scanner practice: three tries,
// 1 s → 2 s backoff with ±25% jitter.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 3, Base: time.Second, Max: 30 * time.Second, Multiplier: 2, Jitter: 0.5}
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the delay before attempt+1 (attempt counts from 0).
func (p *RetryPolicy) Backoff(addr netip.Addr, module string, attempt int) time.Duration {
	d := p.Base
	if d <= 0 {
		d = time.Second
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	for i := 0; i < attempt; i++ {
		d = time.Duration(float64(d) * mult)
		if p.Max > 0 && d > p.Max {
			d = p.Max
			break
		}
	}
	if p.Jitter > 0 {
		// frac in [0,1) from a pure hash; shift d to [1-J/2, 1+J/2) x d.
		frac := float64(jitterHash(addr, module, attempt)>>11) / (1 << 53)
		d = time.Duration(float64(d) * (1 - p.Jitter/2 + frac*p.Jitter))
	}
	return d
}

// jitterHash is an FNV-1a/splitmix mix of the probe identity.
func jitterHash(addr netip.Addr, module string, attempt int) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	b := addr.As16()
	for _, x := range b {
		h = (h ^ uint64(x)) * prime
	}
	for _, x := range []byte(module) {
		h = (h ^ uint64(x)) * prime
	}
	h = (h ^ uint64(attempt)) * prime
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}
