package zgrab

import (
	"context"
	"net"
	"net/netip"
	"time"

	"ntpscan/internal/netsim"
	"ntpscan/internal/proto/coapx"
)

// Net is the transport surface scan modules run over. Two
// implementations exist: SimNet (the netsim fabric, for mass
// experiments) and RealNet (kernel sockets, for scanning actual
// networks — the zgrab2 deployment mode).
type Net interface {
	// DialTCP opens a stream to dst. src is advisory: the fabric
	// honours it, kernel sockets pick their own source address.
	DialTCP(ctx context.Context, src netip.Addr, dst netip.AddrPort) (net.Conn, error)
	// ListenUDP binds a datagram socket for connectionless probes.
	// local is advisory for RealNet (wildcard bind).
	ListenUDP(local netip.AddrPort) (coapx.PacketSocket, error)
}

// SimNet adapts a netsim fabric to the Net interface.
func SimNet(f *netsim.Network) Net { return simNet{f: f} }

type simNet struct{ f *netsim.Network }

func (s simNet) DialTCP(ctx context.Context, src netip.Addr, dst netip.AddrPort) (net.Conn, error) {
	return s.f.DialTCP(ctx, src, dst)
}

func (s simNet) ListenUDP(local netip.AddrPort) (coapx.PacketSocket, error) {
	return s.f.ListenUDP(local)
}

// RealNet scans actual networks through the kernel's stack. The ethics
// machinery around the scanner (rate limiting, revisit suppression,
// identifying source) applies unchanged; see the paper's Appendix A
// before pointing it anywhere you do not operate.
type RealNet struct {
	// Dialer configures TCP dialing (timeouts come from the module
	// environment's contexts).
	Dialer net.Dialer
}

// NewRealNet returns a kernel-socket transport.
func NewRealNet() *RealNet { return &RealNet{} }

// DialTCP implements Net.
func (r *RealNet) DialTCP(ctx context.Context, _ netip.Addr, dst netip.AddrPort) (net.Conn, error) {
	return r.Dialer.DialContext(ctx, "tcp", dst.String())
}

// ListenUDP implements Net: a wildcard-bound kernel socket (the local
// hint's address family selects v4/v6 wildcard).
func (r *RealNet) ListenUDP(local netip.AddrPort) (coapx.PacketSocket, error) {
	network := "udp6"
	if local.Addr().Is4() || local.Addr().Is4In6() {
		network = "udp4"
	}
	pc, err := net.ListenPacket(network, ":0")
	if err != nil {
		// Fall back to the unconstrained family (v6-only or v4-only
		// hosts).
		pc, err = net.ListenPacket("udp", ":0")
		if err != nil {
			return nil, err
		}
	}
	return &realSocket{pc: pc}, nil
}

// realSocket adapts net.PacketConn to coapx.PacketSocket.
type realSocket struct {
	pc net.PacketConn
}

func (s *realSocket) WriteTo(p []byte, dst netip.AddrPort) (int, error) {
	return s.pc.WriteTo(p, net.UDPAddrFromAddrPort(dst))
}

func (s *realSocket) ReadFrom(p []byte) (int, netip.AddrPort, error) {
	n, addr, err := s.pc.ReadFrom(p)
	if err != nil {
		return 0, netip.AddrPort{}, err
	}
	if ua, ok := addr.(*net.UDPAddr); ok {
		return n, ua.AddrPort(), nil
	}
	return n, netip.AddrPort{}, nil
}

func (s *realSocket) SetReadDeadline(t time.Time) error { return s.pc.SetReadDeadline(t) }

func (s *realSocket) Close() error { return s.pc.Close() }
