package zgrab

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"syscall"
	"time"

	"ntpscan/internal/intern"
	"ntpscan/internal/netsim"
	"ntpscan/internal/proto/amqpx"
	"ntpscan/internal/proto/coapx"
	"ntpscan/internal/proto/httpx"
	"ntpscan/internal/proto/mqttx"
	"ntpscan/internal/proto/sshx"
	"ntpscan/internal/tlsx"
)

// interned canonicalises a grab string through the shared intern table:
// fingerprints, titles, banners and version strings draw from the
// world's bounded device vocabulary, so each distinct value is kept
// once no matter how many results carry it.
func interned(s string) string { return intern.Default.String(s) }

// internedHex interns the lowercase hex form of raw without an
// intermediate string allocation.
func internedHex(raw []byte) string {
	var scratch [64]byte
	if hex.EncodedLen(len(raw)) > len(scratch) {
		return interned(hex.EncodeToString(raw))
	}
	n := hex.Encode(scratch[:], raw)
	return intern.Default.Bytes(scratch[:n])
}

// Module is one protocol scanner. Implementations must be safe for
// concurrent use.
type Module interface {
	// Name is the module identifier ("http", "mqtts", ...).
	Name() string
	// Port is the IANA port the module probes.
	Port() uint16
	// Scan grabs one target. env supplies fabric, source address, and
	// timeouts. The returned result always carries Status; a nil error
	// with non-success status is normal (closed port etc.).
	Scan(ctx context.Context, env *Env, target netip.Addr) *Result
}

// Env is the scan environment shared by modules.
type Env struct {
	// Net is the transport: SimNet for experiments, RealNet for actual
	// networks.
	Net     Net
	Source  netip.Addr
	Clock   netsim.Clock
	Timeout time.Duration
	// UDPTimeout bounds connectionless probes (CoAP), which have no
	// refused/timeout distinction and otherwise wait out the full
	// Timeout on every silent address. Zero means Timeout.
	UDPTimeout time.Duration
	// PortOverrides redirects a module (by name) to a non-IANA port —
	// zgrab2's --port, needed for unprivileged real-socket targets.
	PortOverrides map[string]uint16
	// Logical marks a manual-clock run. Wall-clock dial guards are
	// pointless there — the fabric resolves every dial synchronously and
	// hands out deadline-ignoring streams — so the dial path skips the
	// per-probe context.WithTimeout/SetDeadline machinery, which heap
	// profiles showed as the campaign's single largest allocation site.
	Logical bool

	// udpSocks pools bound CoAP sockets. A probe socket carries no
	// cross-probe state the scan loop doesn't already filter (stale
	// datagrams fail the source/token checks), so reuse is invisible to
	// results and saves a bind + buffer per UDP probe.
	udpSocks sync.Pool
}

func (e *Env) udpTimeout() time.Duration {
	if e.UDPTimeout > 0 {
		return e.UDPTimeout
	}
	return e.Timeout
}

// portFor resolves the effective target port for a module.
func (e *Env) portFor(m Module) uint16 {
	if p, ok := e.PortOverrides[m.Name()]; ok {
		return p
	}
	return m.Port()
}

// now stamps results from the experiment clock.
func (e *Env) now() time.Time { return e.Clock.Now() }

// dial opens a TCP connection with the module timeout applied both to
// the dial and as the connection deadline.
func (e *Env) dial(ctx context.Context, target netip.Addr, port uint16) (net.Conn, Status, string) {
	if !e.Logical {
		dctx, cancel := context.WithTimeout(ctx, e.Timeout)
		defer cancel()
		ctx = dctx
	}
	conn, err := e.Net.DialTCP(ctx, e.Source, netip.AddrPortFrom(target, port))
	if err != nil {
		if errors.Is(err, netsim.ErrConnRefused) || errors.Is(err, syscall.ECONNREFUSED) {
			return nil, StatusRefused, netsim.DialErrString(err)
		}
		// Structural classification via net.Error: a timeout is silence
		// (filtered/dark/lossy); anything else is local I/O trouble.
		// The direct assertion covers every error the transports return
		// (*net.OpError and friends implement net.Error themselves);
		// errors.As — whose target escapes to the heap per call — is
		// kept only for exotic wrapped errors.
		if ne, ok := err.(net.Error); ok {
			if !ne.Timeout() {
				return nil, StatusIOError, netsim.DialErrString(err)
			}
			return nil, StatusTimeout, netsim.DialErrString(err)
		}
		var ne net.Error
		if errors.As(err, &ne) && !ne.Timeout() {
			return nil, StatusIOError, netsim.DialErrString(err)
		}
		return nil, StatusTimeout, netsim.DialErrString(err)
	}
	if !e.Logical {
		conn.SetDeadline(time.Now().Add(e.Timeout))
	}
	return conn, StatusSuccess, ""
}

// AllModules returns the paper's module set: HTTP, SSH, AMQP, MQTT and
// CoAP on their IANA ports, plus the TLS variants of HTTP, AMQP and
// MQTT (§4.1).
func AllModules() []Module {
	return []Module{
		&HTTPModule{},
		&HTTPModule{TLS: true},
		&SSHModule{},
		&MQTTModule{},
		&MQTTModule{TLS: true},
		&AMQPModule{},
		&AMQPModule{TLS: true},
		&CoAPModule{},
	}
}

// ModulesByName resolves module names ("http", "mqtts", ...) to
// instances, preserving order. Unknown names are an error.
func ModulesByName(names []string) ([]Module, error) {
	all := AllModules()
	byName := make(map[string]Module, len(all))
	for _, m := range all {
		byName[m.Name()] = m
	}
	out := make([]Module, 0, len(names))
	for _, n := range names {
		m, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("zgrab: unknown module %q", n)
		}
		out = append(out, m)
	}
	return out, nil
}

// tlsGrab converts a completed handshake state. Fingerprint and key
// hex strings go through the intern table — the same certificate is
// grabbed once per responsive address it serves.
func tlsGrab(st tlsx.ConnState) *TLSGrab {
	cert := st.Certificate
	fp := cert.Fingerprint()
	return &TLSGrab{
		Version:         st.Version.String(),
		HandshakeOK:     true,
		CertFingerprint: internedHex(fp[:]),
		Subject:         cert.Subject,
		Issuer:          cert.Issuer,
		SelfSigned:      cert.SelfSigned,
		KeyID:           internedHex(cert.Key[:]),
		NotBefore:       cert.NotBefore,
		NotAfter:        cert.NotAfter,
	}
}

// tlsFail converts a handshake failure.
func tlsFail(err error) *TLSGrab {
	g := &TLSGrab{HandshakeOK: false}
	var alert *tlsx.AlertError
	if errors.As(err, &alert) {
		g.Alert = alert.Reason.String()
	}
	return g
}

// HTTPModule grabs HTTP or HTTPS (mass scans probe address literals, so
// no Host header and no SNI — the behaviour behind the paper's CDN
// handshake failures).
type HTTPModule struct {
	TLS bool
}

// Name implements Module.
func (m *HTTPModule) Name() string {
	if m.TLS {
		return "https"
	}
	return "http"
}

// Port implements Module.
func (m *HTTPModule) Port() uint16 {
	if m.TLS {
		return 443
	}
	return 80
}

// Scan implements Module.
func (m *HTTPModule) Scan(ctx context.Context, env *Env, target netip.Addr) *Result {
	port := env.portFor(m)
	res := &Result{IP: target, Module: m.Name(), Port: port, Time: env.now()}
	conn, status, errStr := env.dial(ctx, target, port)
	if status != StatusSuccess {
		res.Status, res.Error = status, errStr
		return res
	}
	defer conn.Close()

	var appConn net.Conn = conn
	if m.TLS {
		tc, err := tlsx.Client(conn, tlsx.ClientConfig{}) // no SNI
		if err != nil {
			res.Status = StatusTLSError
			res.Error = err.Error()
			res.TLS = tlsFail(err)
			return res
		}
		res.TLS = tlsGrab(tc.State())
		appConn = tc
	}
	resp, err := httpx.Get(appConn, "", "/")
	if err != nil {
		res.Status = StatusProtocolError
		res.Error = err.Error()
		return res
	}
	res.Status = StatusSuccess
	res.HTTP = &HTTPGrab{
		StatusCode: resp.StatusCode,
		Title:      interned(resp.Title()),
		Server:     interned(resp.Header["Server"]),
	}
	return res
}

// SSHModule grabs the identification string and host key.
type SSHModule struct{}

// Name implements Module.
func (m *SSHModule) Name() string { return "ssh" }

// Port implements Module.
func (m *SSHModule) Port() uint16 { return 22 }

// Scan implements Module.
func (m *SSHModule) Scan(ctx context.Context, env *Env, target netip.Addr) *Result {
	port := env.portFor(m)
	res := &Result{IP: target, Module: m.Name(), Port: port, Time: env.now()}
	conn, status, errStr := env.dial(ctx, target, port)
	if status != StatusSuccess {
		res.Status, res.Error = status, errStr
		return res
	}
	defer conn.Close()
	grab, err := sshx.Scan(conn)
	if err != nil {
		res.Status = StatusProtocolError
		res.Error = err.Error()
		return res
	}
	res.Status = StatusSuccess
	res.SSH = &SSHGrab{
		ServerID: interned(grab.ID.Raw),
		Software: interned(grab.ID.Software),
		OS:       interned(grab.ID.OS()),
	}
	if grab.HostKey != nil {
		res.SSH.KeyType = interned(grab.HostKey.Type)
		fp := grab.HostKey.Fingerprint()
		res.SSH.KeyFingerprint = internedHex(fp[:])
	}
	return res
}

// MQTTModule grabs broker connection policy, optionally over TLS.
type MQTTModule struct {
	TLS bool
}

// Name implements Module.
func (m *MQTTModule) Name() string {
	if m.TLS {
		return "mqtts"
	}
	return "mqtt"
}

// Port implements Module.
func (m *MQTTModule) Port() uint16 {
	if m.TLS {
		return 8883
	}
	return 1883
}

// Scan implements Module.
func (m *MQTTModule) Scan(ctx context.Context, env *Env, target netip.Addr) *Result {
	port := env.portFor(m)
	res := &Result{IP: target, Module: m.Name(), Port: port, Time: env.now()}
	conn, status, errStr := env.dial(ctx, target, port)
	if status != StatusSuccess {
		res.Status, res.Error = status, errStr
		return res
	}
	defer conn.Close()
	var appConn net.Conn = conn
	if m.TLS {
		tc, err := tlsx.Client(conn, tlsx.ClientConfig{})
		if err != nil {
			res.Status = StatusTLSError
			res.Error = err.Error()
			res.TLS = tlsFail(err)
			return res
		}
		res.TLS = tlsGrab(tc.State())
		appConn = tc
	}
	grab, err := mqttx.Scan(appConn)
	if err != nil {
		res.Status = StatusProtocolError
		res.Error = err.Error()
		return res
	}
	res.Status = StatusSuccess
	res.MQTT = &MQTTGrab{ReturnCode: grab.ReturnCode, Open: grab.Open}
	return res
}

// AMQPModule grabs broker negotiation, optionally over TLS.
type AMQPModule struct {
	TLS bool
}

// Name implements Module.
func (m *AMQPModule) Name() string {
	if m.TLS {
		return "amqps"
	}
	return "amqp"
}

// Port implements Module.
func (m *AMQPModule) Port() uint16 {
	if m.TLS {
		return 5671
	}
	return 5672
}

// Scan implements Module.
func (m *AMQPModule) Scan(ctx context.Context, env *Env, target netip.Addr) *Result {
	port := env.portFor(m)
	res := &Result{IP: target, Module: m.Name(), Port: port, Time: env.now()}
	conn, status, errStr := env.dial(ctx, target, port)
	if status != StatusSuccess {
		res.Status, res.Error = status, errStr
		return res
	}
	defer conn.Close()
	var appConn net.Conn = conn
	if m.TLS {
		tc, err := tlsx.Client(conn, tlsx.ClientConfig{})
		if err != nil {
			res.Status = StatusTLSError
			res.Error = err.Error()
			res.TLS = tlsFail(err)
			return res
		}
		res.TLS = tlsGrab(tc.State())
		appConn = tc
	}
	grab, err := amqpx.Scan(appConn)
	if err != nil {
		res.Status = StatusProtocolError
		res.Error = err.Error()
		return res
	}
	res.Status = StatusSuccess
	res.AMQP = &AMQPGrab{
		Product:    grab.Start.Product,
		Mechanisms: grab.Start.Mechanisms,
		Open:       grab.Open,
		CloseCode:  grab.CloseCode,
	}
	return res
}

// CoAPModule probes /.well-known/core over UDP.
type CoAPModule struct{}

// Name implements Module.
func (m *CoAPModule) Name() string { return "coap" }

// Port implements Module.
func (m *CoAPModule) Port() uint16 { return coapx.Port }

// Scan implements Module.
func (m *CoAPModule) Scan(ctx context.Context, env *Env, target netip.Addr) *Result {
	port := env.portFor(m)
	res := &Result{IP: target, Module: m.Name(), Port: port, Time: env.now()}
	var sock coapx.PacketSocket
	if v := env.udpSocks.Get(); v != nil {
		sock = v.(coapx.PacketSocket)
	} else {
		s, err := env.Net.ListenUDP(netip.AddrPortFrom(env.Source, 0))
		if err != nil {
			res.Status = StatusIOError
			res.Error = err.Error()
			return res
		}
		sock = s
	}
	defer env.udpSocks.Put(sock)
	// The message ID varies per retry attempt so a retransmission is a
	// fresh datagram to the fabric's flow-hashed loss process.
	mid := msgIDFor(target) + uint16(netsim.AttemptFrom(ctx))*0x9d7
	grab, err := coapx.ScanConn(sock, netip.AddrPortFrom(target, port), mid, env.udpTimeout())
	if err != nil {
		res.Status = StatusTimeout
		res.Error = err.Error()
		return res
	}
	res.Status = StatusSuccess
	res.CoAP = &CoAPGrab{Code: grab.Code.String(), Resources: grab.Resources}
	return res
}

// msgIDFor derives a stable CoAP message ID per target.
func msgIDFor(a netip.Addr) uint16 {
	b := a.As16()
	var h uint32 = 2166136261
	for _, x := range b {
		h = (h ^ uint32(x)) * 16777619
	}
	return uint16(h)
}
