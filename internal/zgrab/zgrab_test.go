package zgrab

import (
	"bytes"
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ntpscan/internal/netsim"
	"ntpscan/internal/proto/amqpx"
	"ntpscan/internal/proto/coapx"
	"ntpscan/internal/proto/httpx"
	"ntpscan/internal/proto/mqttx"
	"ntpscan/internal/proto/sshx"
	"ntpscan/internal/tlsx"
)

var (
	scanSrc = netip.MustParseAddr("2001:db8:5ca:1::1")
)

func testFabric() *netsim.Network {
	return netsim.New(netsim.Config{DialTimeout: 10 * time.Millisecond})
}

func testEnv(f *netsim.Network) *Env {
	return &Env{Net: SimNet(f), Source: scanSrc, Clock: netsim.RealClock{}, Timeout: time.Second}
}

func fullHost() *netsim.Host {
	cert := &tlsx.Certificate{
		Subject: "device.example", Issuer: "device.example", SerialNum: 7,
		NotBefore: time.Now().Add(-time.Hour), NotAfter: time.Now().Add(time.Hour),
		SelfSigned: true, Key: tlsx.KeyID{9},
	}
	tlsCfg := tlsx.ServerConfig{Certificate: cert}
	httpOpts := httpx.ServerOptions{Title: "FRITZ!Box 7590"}
	h := netsim.NewHost("device")
	h.HandleTCP(80, httpx.Handler(httpOpts))
	h.HandleTCP(443, func(c net.Conn) {
		tc, err := tlsx.Server(c, tlsCfg)
		if err != nil {
			c.Close()
			return
		}
		httpx.ServeConn(tc, httpOpts)
	})
	h.HandleTCP(22, func(c net.Conn) {
		sshx.ServeConn(c, sshx.ServerOptions{
			ID:      "SSH-2.0-OpenSSH_9.2p1 Raspbian-10+deb12u2",
			HostKey: sshx.HostKey{Type: "ssh-ed25519", Blob: []byte("k1")},
		})
	})
	h.HandleTCP(1883, mqttx.Handler(mqttx.BrokerOptions{}))
	h.HandleTCP(5672, amqpx.Handler(amqpx.BrokerOptions{Product: "RabbitMQ", RequireAuth: true}))
	h.HandleUDP(5683, coapx.Handler(coapx.DeviceOptions{Resources: []string{"/castDeviceSearch"}}))
	return h
}

func TestModulesAgainstFullHost(t *testing.T) {
	f := testFabric()
	target := netip.MustParseAddr("2001:db8::d")
	f.Register(target, fullHost())
	env := testEnv(f)
	ctx := context.Background()

	for _, m := range AllModules() {
		r := m.Scan(ctx, env, target)
		switch m.Name() {
		case "http":
			if !r.Success() || r.HTTP.Title != "FRITZ!Box 7590" {
				t.Fatalf("http grab = %+v", r)
			}
		case "https":
			if !r.Success() || r.TLS == nil || !r.TLS.HandshakeOK || !r.TLS.SelfSigned {
				t.Fatalf("https grab = %+v %+v", r, r.TLS)
			}
			if r.HTTP.Title != "FRITZ!Box 7590" {
				t.Fatalf("https title = %q", r.HTTP.Title)
			}
		case "ssh":
			if !r.Success() || r.SSH.OS != "Raspbian" || r.SSH.KeyFingerprint == "" {
				t.Fatalf("ssh grab = %+v", r.SSH)
			}
		case "mqtt":
			if !r.Success() || !r.MQTT.Open {
				t.Fatalf("mqtt grab = %+v", r)
			}
		case "mqtts":
			// Port closed on this host.
			if r.Status != StatusRefused {
				t.Fatalf("mqtts status = %v", r.Status)
			}
		case "amqp":
			if !r.Success() || r.AMQP.Open || r.AMQP.CloseCode != amqpx.ReplyAccessRefused {
				t.Fatalf("amqp grab = %+v", r.AMQP)
			}
			if r.AMQP.Product != "RabbitMQ" {
				t.Fatalf("amqp product = %q", r.AMQP.Product)
			}
		case "amqps":
			if r.Status != StatusRefused {
				t.Fatalf("amqps status = %v", r.Status)
			}
		case "coap":
			if !r.Success() || len(r.CoAP.Resources) != 1 {
				t.Fatalf("coap grab = %+v", r.CoAP)
			}
		}
	}
}

func TestModuleTimeoutOnBlackhole(t *testing.T) {
	f := testFabric()
	env := testEnv(f)
	env.Timeout = 30 * time.Millisecond
	r := (&HTTPModule{}).Scan(context.Background(), env, netip.MustParseAddr("2001:db8::dead"))
	if r.Status != StatusTimeout {
		t.Fatalf("status = %v", r.Status)
	}
	rc := (&CoAPModule{}).Scan(context.Background(), env, netip.MustParseAddr("2001:db8::dead"))
	if rc.Status != StatusTimeout {
		t.Fatalf("coap status = %v", rc.Status)
	}
}

func TestHTTPSAgainstSNIRequiringServer(t *testing.T) {
	// The mass scan has no hostname; SNI-requiring edges must produce
	// tls-error with unrecognized_name — the paper's CDN observation.
	f := testFabric()
	target := netip.MustParseAddr("2001:db8::c")
	cert := &tlsx.Certificate{Subject: "cdn", Issuer: "cdn", Key: tlsx.KeyID{1}}
	h := netsim.NewHost("cdn").HandleTCP(443, func(c net.Conn) {
		if tc, err := tlsx.Server(c, tlsx.ServerConfig{Certificate: cert, RequireSNI: true}); err == nil {
			httpx.ServeConn(tc, httpx.ServerOptions{})
		} else {
			c.Close()
		}
	})
	f.Register(target, h)
	r := (&HTTPModule{TLS: true}).Scan(context.Background(), testEnv(f), target)
	if r.Status != StatusTLSError || r.TLS == nil || r.TLS.Alert != "unrecognized_name" {
		t.Fatalf("grab = %+v tls=%+v", r, r.TLS)
	}
}

func TestProtocolErrorOnWrongService(t *testing.T) {
	// MQTT probe against an HTTP server.
	f := testFabric()
	target := netip.MustParseAddr("2001:db8::e")
	h := netsim.NewHost("web").HandleTCP(1883, httpx.Handler(httpx.ServerOptions{Title: "x"}))
	f.Register(target, h)
	r := (&MQTTModule{}).Scan(context.Background(), testEnv(f), target)
	if r.Status != StatusProtocolError {
		t.Fatalf("status = %v", r.Status)
	}
}

func TestRevisitSuppression(t *testing.T) {
	rv := NewRevisit(72 * time.Hour)
	addr := netip.MustParseAddr("2001:db8::1")
	t0 := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	if !rv.Allow(addr, t0) {
		t.Fatal("first scan blocked")
	}
	if rv.Allow(addr, t0.Add(time.Hour)) {
		t.Fatal("re-scan within holdoff allowed")
	}
	if !rv.Allow(addr, t0.Add(73*time.Hour)) {
		t.Fatal("re-scan after holdoff blocked")
	}
	if rv.Len() != 1 {
		t.Fatalf("Len = %d", rv.Len())
	}
}

func TestTokenBucketRate(t *testing.T) {
	tb := NewTokenBucket(1000, 1) // 1k tokens/s, minimal burst
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 50; i++ {
		if err := tb.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 49 refills needed at 1ms each: at least ~40ms.
	if elapsed < 35*time.Millisecond {
		t.Fatalf("50 tokens in %v: limiter not limiting", elapsed)
	}
}

func TestTokenBucketContextCancel(t *testing.T) {
	tb := NewTokenBucket(0.1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	tb.Wait(ctx) // consume burst
	if err := tb.Wait(ctx); err == nil {
		t.Fatal("cancelled wait returned nil")
	}
}

func TestScannerEndToEnd(t *testing.T) {
	f := testFabric()
	target := netip.MustParseAddr("2001:db8::d")
	f.Register(target, fullHost())

	var mu sync.Mutex
	results := map[string]*Result{}
	s := NewScanner(Config{
		Fabric:  f,
		Clock:   netsim.RealClock{},
		Source:  scanSrc,
		Timeout: time.Second,
		Workers: 4,
		OnResult: func(r *Result) {
			mu.Lock()
			results[r.Module] = r
			mu.Unlock()
		},
	})
	s.Start(context.Background())
	if !s.Submit(target) {
		t.Fatal("submit rejected")
	}
	if s.Submit(target) {
		t.Fatal("duplicate submit not suppressed")
	}
	s.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(results) != len(AllModules()) {
		t.Fatalf("got %d module results", len(results))
	}
	if !results["http"].Success() {
		t.Fatalf("http = %+v", results["http"])
	}
	submitted, scanned, suppressed, probes := s.Stats()
	if submitted != 2 || scanned != 1 || suppressed != 1 || probes != int64(len(AllModules())) {
		t.Fatalf("stats = %d %d %d %d", submitted, scanned, suppressed, probes)
	}
}

func TestScanNow(t *testing.T) {
	f := testFabric()
	target := netip.MustParseAddr("2001:db8::d")
	f.Register(target, fullHost())
	s := NewScanner(Config{Fabric: f, Source: scanSrc, Timeout: time.Second})
	rs := s.ScanNow(context.Background(), target)
	if len(rs) != len(AllModules()) {
		t.Fatalf("got %d results", len(rs))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	r1 := &Result{
		IP: netip.MustParseAddr("2001:db8::1"), Module: "http", Port: 80,
		Status: StatusSuccess, HTTP: &HTTPGrab{StatusCode: 200, Title: "FRITZ!Box"},
	}
	r2 := &Result{
		IP: netip.MustParseAddr("2001:db8::2"), Module: "ssh", Port: 22,
		Status: StatusTimeout, Error: "i/o timeout",
	}
	if err := w.Write(r1); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(r2); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].HTTP.Title != "FRITZ!Box" || got[1].Status != StatusTimeout {
		t.Fatalf("round trip = %+v", got)
	}
	if got[0].IP != r1.IP {
		t.Fatalf("IP round trip = %v", got[0].IP)
	}
}

func TestNopLimiterCounts(t *testing.T) {
	l := &NopLimiter{}
	for i := 0; i < 5; i++ {
		l.Wait(context.Background())
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d", l.Count())
	}
}

func TestModuleNamesAndPorts(t *testing.T) {
	want := map[string]uint16{
		"http": 80, "https": 443, "ssh": 22, "mqtt": 1883,
		"mqtts": 8883, "amqp": 5672, "amqps": 5671, "coap": 5683,
	}
	got := map[string]uint16{}
	for _, m := range AllModules() {
		got[m.Name()] = m.Port()
	}
	for name, port := range want {
		if got[name] != port {
			t.Errorf("%s port = %d, want %d", name, got[name], port)
		}
	}
}

func TestModulesByName(t *testing.T) {
	mods, err := ModulesByName([]string{"ssh", "coap"})
	if err != nil || len(mods) != 2 || mods[0].Name() != "ssh" || mods[1].Name() != "coap" {
		t.Fatalf("got %v %v", mods, err)
	}
	if _, err := ModulesByName([]string{"gopher"}); err == nil {
		t.Fatal("unknown module accepted")
	}
	if mods, _ := ModulesByName(nil); len(mods) != 0 {
		t.Fatal("nil names should yield no modules")
	}
}
