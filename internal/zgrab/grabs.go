// Package zgrab is the application-layer scan framework, modelled on
// zgrab2 (which the paper extended): pluggable per-protocol modules, a
// token-bucket rate limiter capped at the paper's 100 kpps, revisit
// suppression (no re-scan of an address for three days), a worker pool
// fed in real time by the NTP capture stream, and a JSONL result
// envelope.
package zgrab

import (
	"encoding/json"
	"io"
	"net/netip"
	"sync"
	"time"

	"ntpscan/internal/intern"
)

// Status classifies a scan attempt's outcome, following zgrab2's status
// vocabulary.
type Status string

// Scan statuses.
const (
	StatusSuccess       Status = "success"
	StatusTimeout       Status = "connection-timeout"
	StatusRefused       Status = "connection-refused"
	StatusProtocolError Status = "protocol-error"
	StatusTLSError      Status = "tls-error"
	StatusIOError       Status = "io-error"
	// StatusBreakerOpen marks a target shed by the per-prefix circuit
	// breaker: no probe was sent. Not part of zgrab2's vocabulary, but
	// it keeps the result stream dense when load-shedding is active.
	StatusBreakerOpen Status = "breaker-open"
)

// Result is one module's grab of one address.
type Result struct {
	IP     netip.Addr `json:"ip"`
	Module string     `json:"module"`
	Port   uint16     `json:"port"`
	Time   time.Time  `json:"time"`
	Status Status     `json:"status"`
	Error  string     `json:"error,omitempty"`
	// Attempts is how many tries the probe took under the retry policy;
	// omitted when the first try settled it.
	Attempts int `json:"attempts,omitempty"`

	// Seq orders results by submission: targets are numbered serially as
	// they enter the scanner and each module slot gets a distinct
	// sequence value, so sinks fed from concurrent workers can restore
	// the deterministic submission order with a sort. It is scanner
	// bookkeeping, not part of the zgrab2 envelope.
	Seq int64 `json:"-"`

	HTTP *HTTPGrab `json:"http,omitempty"`
	TLS  *TLSGrab  `json:"tls,omitempty"`
	SSH  *SSHGrab  `json:"ssh,omitempty"`
	MQTT *MQTTGrab `json:"mqtt,omitempty"`
	AMQP *AMQPGrab `json:"amqp,omitempty"`
	CoAP *CoAPGrab `json:"coap,omitempty"`
}

// Success reports whether the grab reached a speaking endpoint.
func (r *Result) Success() bool { return r.Status == StatusSuccess }

// HTTPGrab carries the HTTP response surface the analysis consumes.
type HTTPGrab struct {
	StatusCode int    `json:"status_code"`
	Title      string `json:"title"`
	Server     string `json:"server,omitempty"`
}

// TLSGrab carries handshake results.
type TLSGrab struct {
	Version         string    `json:"version,omitempty"`
	HandshakeOK     bool      `json:"handshake_ok"`
	Alert           string    `json:"alert,omitempty"`
	CertFingerprint string    `json:"cert_fingerprint,omitempty"`
	Subject         string    `json:"subject,omitempty"`
	Issuer          string    `json:"issuer,omitempty"`
	SelfSigned      bool      `json:"self_signed,omitempty"`
	KeyID           string    `json:"key_id,omitempty"`
	NotBefore       time.Time `json:"not_before,omitempty"`
	NotAfter        time.Time `json:"not_after,omitempty"`
}

// SSHGrab carries the identification string and host key.
type SSHGrab struct {
	ServerID       string `json:"server_id"`
	Software       string `json:"software"`
	OS             string `json:"os,omitempty"`
	KeyType        string `json:"key_type,omitempty"`
	KeyFingerprint string `json:"key_fingerprint,omitempty"`
}

// MQTTGrab carries broker negotiation results.
type MQTTGrab struct {
	ReturnCode byte `json:"return_code"`
	Open       bool `json:"open"`
}

// AMQPGrab carries broker negotiation results.
type AMQPGrab struct {
	Product    string `json:"product,omitempty"`
	Mechanisms string `json:"mechanisms,omitempty"`
	Open       bool   `json:"open"`
	CloseCode  uint16 `json:"close_code,omitempty"`
}

// CoAPGrab carries discovery results.
type CoAPGrab struct {
	Code      string   `json:"code"`
	Resources []string `json:"resources,omitempty"`
}

// JSONLWriter serialises results as one JSON object per line, the
// zgrab2 output format. It is safe for concurrent use.
type JSONLWriter struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	n   int
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: w, enc: json.NewEncoder(w)}
}

// Write emits one result line.
func (jw *JSONLWriter) Write(r *Result) error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	jw.n++
	return jw.enc.Encode(r)
}

// Count returns how many results were written.
func (jw *JSONLWriter) Count() int {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.n
}

// DecodeJSONL streams results from a JSONL reader through fn, one at
// a time — no whole-file slice is ever built, so arbitrarily large
// result files decode in constant memory. Repeated string fields
// (module names, statuses, fingerprints, titles, banners) are
// canonicalised through the shared intern table before fn sees them.
func DecodeJSONL(r io.Reader, fn func(*Result) error) error {
	dec := json.NewDecoder(r)
	for {
		res := &Result{}
		if err := dec.Decode(res); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		res.internStrings()
		if err := fn(res); err != nil {
			return err
		}
	}
}

// ReadJSONL parses results back from a JSONL stream into one slice;
// callers that can process incrementally should prefer DecodeJSONL.
func ReadJSONL(r io.Reader) ([]*Result, error) {
	var out []*Result
	err := DecodeJSONL(r, func(res *Result) error {
		out = append(out, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// grabPayload is exactly the module-specific grab surface of a Result,
// marshalled as one compact JSON object: the columnar store keeps the
// envelope fields in typed columns and this payload as an opaque
// per-row value.
type grabPayload struct {
	HTTP *HTTPGrab `json:"http,omitempty"`
	TLS  *TLSGrab  `json:"tls,omitempty"`
	SSH  *SSHGrab  `json:"ssh,omitempty"`
	MQTT *MQTTGrab `json:"mqtt,omitempty"`
	AMQP *AMQPGrab `json:"amqp,omitempty"`
	CoAP *CoAPGrab `json:"coap,omitempty"`
}

// AppendGrabs appends the result's module-specific payload to buf as
// one JSON object, or appends nothing when the result carries no grab.
func (r *Result) AppendGrabs(buf []byte) ([]byte, error) {
	if r.HTTP == nil && r.TLS == nil && r.SSH == nil &&
		r.MQTT == nil && r.AMQP == nil && r.CoAP == nil {
		return buf, nil
	}
	b, err := json.Marshal(grabPayload{r.HTTP, r.TLS, r.SSH, r.MQTT, r.AMQP, r.CoAP})
	if err != nil {
		return nil, err
	}
	return append(buf, b...), nil
}

// SetGrabs restores the grab pointers from AppendGrabs bytes; empty
// input means no grab.
func (r *Result) SetGrabs(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var g grabPayload
	if err := json.Unmarshal(data, &g); err != nil {
		return err
	}
	r.HTTP, r.TLS, r.SSH, r.MQTT, r.AMQP, r.CoAP = g.HTTP, g.TLS, g.SSH, g.MQTT, g.AMQP, g.CoAP
	return nil
}

// Intern canonicalises the result's vocabulary-bounded strings through
// the shared intern table; ReadJSONL and DecodeJSONL apply it
// automatically, the columnar store's row decoder calls it directly.
func (r *Result) Intern() { r.internStrings() }

// internStrings replaces the result's vocabulary-bounded string fields
// with their canonical interned instances.
func (r *Result) internStrings() {
	it := intern.Default
	r.Module = it.String(r.Module)
	r.Status = Status(it.String(string(r.Status)))
	r.Error = it.String(r.Error)
	if h := r.HTTP; h != nil {
		h.Title = it.String(h.Title)
		h.Server = it.String(h.Server)
	}
	if t := r.TLS; t != nil {
		t.Version = it.String(t.Version)
		t.Alert = it.String(t.Alert)
		t.CertFingerprint = it.String(t.CertFingerprint)
		t.Subject = it.String(t.Subject)
		t.Issuer = it.String(t.Issuer)
		t.KeyID = it.String(t.KeyID)
	}
	if s := r.SSH; s != nil {
		s.ServerID = it.String(s.ServerID)
		s.Software = it.String(s.Software)
		s.OS = it.String(s.OS)
		s.KeyType = it.String(s.KeyType)
		s.KeyFingerprint = it.String(s.KeyFingerprint)
	}
	if a := r.AMQP; a != nil {
		a.Product = it.String(a.Product)
		a.Mechanisms = it.String(a.Mechanisms)
	}
	if c := r.CoAP; c != nil {
		c.Code = it.String(c.Code)
		for i, res := range c.Resources {
			c.Resources[i] = it.String(res)
		}
	}
}
