package zgrab

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ntpscan/internal/proto/coapx"
	"ntpscan/internal/proto/httpx"
	"ntpscan/internal/proto/mqttx"
	"ntpscan/internal/proto/sshx"
)

// TestRealNetScan runs the complete zgrab scanner against genuine
// loopback services — the deployment mode the paper's extended zgrab2
// operated in. Services bind random unprivileged ports and the scanner
// is redirected via PortOverrides (zgrab2's --port).
func TestRealNetScan(t *testing.T) {
	serveTCP := func(handler func(net.Conn)) (uint16, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("no loopback TCP: %v", err)
		}
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go handler(c)
			}
		}()
		return uint16(ln.Addr().(*net.TCPAddr).Port), func() { ln.Close() }
	}

	httpPort, closeHTTP := serveTCP(func(c net.Conn) {
		httpx.ServeConn(c, httpx.ServerOptions{Title: "FRITZ!Box 7590"})
	})
	defer closeHTTP()
	sshPort, closeSSH := serveTCP(func(c net.Conn) {
		sshx.ServeConn(c, sshx.ServerOptions{
			ID:      "SSH-2.0-OpenSSH_9.2p1 Raspbian-10+deb12u2",
			HostKey: sshx.HostKey{Type: "ssh-ed25519", Blob: []byte("real-socket-key")},
		})
	})
	defer closeSSH()
	mqttPort, closeMQTT := serveTCP(func(c net.Conn) {
		mqttx.ServeConn(c, mqttx.BrokerOptions{RequireAuth: true})
	})
	defer closeMQTT()

	coapConn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer coapConn.Close()
	go func() {
		buf := make([]byte, 1500)
		for {
			n, raddr, err := coapConn.ReadFrom(buf)
			if err != nil {
				return
			}
			req, err := coapx.Parse(buf[:n])
			if err != nil {
				continue
			}
			resp := coapx.Respond(req, coapx.DeviceOptions{Resources: []string{"/castDeviceSearch"}})
			if enc, err := resp.Marshal(); err == nil {
				coapConn.WriteTo(enc, raddr)
			}
		}
	}()
	coapPort := uint16(coapConn.LocalAddr().(*net.UDPAddr).Port)

	var mu sync.Mutex
	results := map[string]*Result{}
	s := NewScanner(Config{
		Net:     NewRealNet(),
		Source:  netip.MustParseAddr("127.0.0.1"),
		Timeout: 2 * time.Second,
		Workers: 2,
		Modules: func() []Module {
			m, _ := ModulesByName([]string{"http", "ssh", "mqtt", "coap"})
			return m
		}(),
		PortOverrides: map[string]uint16{
			"http": httpPort, "ssh": sshPort, "mqtt": mqttPort, "coap": coapPort,
		},
		OnResult: func(r *Result) {
			mu.Lock()
			results[r.Module] = r
			mu.Unlock()
		},
	})
	s.Start(context.Background())
	s.Submit(netip.MustParseAddr("127.0.0.1"))
	s.Close()

	mu.Lock()
	defer mu.Unlock()
	if r := results["http"]; r == nil || !r.Success() || r.HTTP.Title != "FRITZ!Box 7590" {
		t.Fatalf("http = %+v", results["http"])
	}
	if r := results["ssh"]; r == nil || !r.Success() || r.SSH.OS != "Raspbian" {
		t.Fatalf("ssh = %+v", results["ssh"])
	}
	if r := results["mqtt"]; r == nil || !r.Success() || r.MQTT.Open {
		t.Fatalf("mqtt = %+v", results["mqtt"])
	}
	if r := results["coap"]; r == nil || !r.Success() ||
		len(r.CoAP.Resources) != 1 || r.CoAP.Resources[0] != "/castDeviceSearch" {
		t.Fatalf("coap = %+v", results["coap"])
	}
	if results["http"].Port != httpPort {
		t.Fatalf("port override not recorded: %d", results["http"].Port)
	}
}

// TestRealNetRefused verifies error classification on kernel sockets: a
// closed loopback port yields connection-refused, not timeout.
func TestRealNetRefused(t *testing.T) {
	// Grab a port then close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	port := uint16(ln.Addr().(*net.TCPAddr).Port)
	ln.Close()

	env := &Env{
		Net: NewRealNet(), Source: netip.MustParseAddr("127.0.0.1"),
		Clock: realClockForTest{}, Timeout: 2 * time.Second,
		PortOverrides: map[string]uint16{"http": port},
	}
	r := (&HTTPModule{}).Scan(context.Background(), env, netip.MustParseAddr("127.0.0.1"))
	if r.Status != StatusRefused {
		t.Fatalf("status = %v (%s)", r.Status, r.Error)
	}
}

type realClockForTest struct{}

func (realClockForTest) Now() time.Time { return time.Now() }
