package zgrab

import "ntpscan/internal/obs"

// Metrics bundles the scanner's observability handles. Target-level
// flows obey a conservation law checked by the invariant suite: at any
// quiescent point (after Drain, nothing in flight)
//
//	scan_submitted_total == scan_suppressed_total
//	                      + scan_shed_total
//	                      + scan_completed_total
//
// Per-module series are dense vectors indexed by the module's slot in
// Config.Modules; duration histograms record milliseconds of logical
// time (stamped backoff, limiter waits on the injected clock), so the
// whole bundle is byte-identical across worker counts.
type Metrics struct {
	// Target-level flow.
	Submitted  *obs.Counter // targets offered to Submit/SubmitBatch
	Suppressed *obs.Counter // rejected by revisit holdoff
	Shed       *obs.Counter // skipped whole by an open breaker
	Completed  *obs.Counter // ran the full module loop

	// Per-module probe flow.
	Probes    *obs.CounterVec // attempts sent, including retries
	Successes *obs.CounterVec // final results with StatusSuccess
	Retries   *obs.CounterVec // re-attempts after a retryable failure

	RetryExhausted *obs.Counter   // probes that used every retry and still failed retryably
	Backoff        *obs.Histogram // stamped/slept retry backoff, ms
	LimiterWait    *obs.Histogram // limiter wait per probe, ms (0 under a frozen logical clock)

	// Breaker lifecycle: transition counters plus the current open-set
	// gauge, all updated at the drain barrier. Pairing invariant:
	// opened + reopened - probation == open (once every open prefix has
	// either closed or re-opened, the books balance exactly).
	BreakerOpened    *obs.Counter // closed -> open trips
	BreakerProbation *obs.Counter // open -> probing admissions
	BreakerClosed    *obs.Counter // probing -> closed recoveries
	BreakerReopened  *obs.Counter // probing -> open relapses
	BreakerOpen      *obs.Gauge   // prefixes currently shedding
}

// newScanMetrics registers the scanner's metric families on r. The
// per-module vectors take their label set from the configured modules,
// so two scanners sharing a registry must run the same module list (the
// registry panics on a shape mismatch — by design).
func newScanMetrics(r *obs.Registry, modules []Module) *Metrics {
	names := make([]string, len(modules))
	for i, m := range modules {
		names[i] = m.Name()
	}
	return &Metrics{
		Submitted:  r.NewCounter("scan_submitted_total", "targets offered to the scanner"),
		Suppressed: r.NewCounter("scan_suppressed_total", "targets rejected by the revisit holdoff"),
		Shed:       r.NewCounter("scan_shed_total", "targets skipped whole by an open circuit breaker"),
		Completed:  r.NewCounter("scan_completed_total", "targets scanned through the full module loop"),

		Probes:    r.NewCounterVec("scan_probes_total", "probe attempts sent, including retries", "module", names),
		Successes: r.NewCounterVec("scan_success_total", "final module results with a successful grab", "module", names),
		Retries:   r.NewCounterVec("scan_retries_total", "probe re-attempts after a retryable failure", "module", names),

		RetryExhausted: r.NewCounter("scan_retry_exhausted_total", "probes that spent every retry and still failed retryably"),
		Backoff: r.NewHistogram("scan_retry_backoff_ms", "retry backoff stamped into result schedules, ms",
			[]int64{250, 500, 1000, 2000, 4000, 8000, 16000, 30000}),
		LimiterWait: r.NewHistogram("scan_limiter_wait_ms", "rate-limiter wait per probe, ms of injected-clock time",
			[]int64{0, 1, 10, 100, 1000, 10000}),

		BreakerOpened:    r.NewCounter("breaker_opened_total", "prefix breakers tripped closed -> open"),
		BreakerProbation: r.NewCounter("breaker_probation_total", "open prefixes admitted to a probation slice"),
		BreakerClosed:    r.NewCounter("breaker_closed_total", "probing prefixes recovered to closed"),
		BreakerReopened:  r.NewCounter("breaker_reopened_total", "probing prefixes relapsed to open"),
		BreakerOpen:      r.NewGauge("breaker_open", "prefixes currently shedding"),
	}
}

// Metrics returns the scanner's observability handles (never nil: a
// scanner built without Config.Obs carries a private registry).
func (s *Scanner) Metrics() *Metrics { return s.met }
