package zgrab

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ntpscan/internal/netsim"
)

// The token bucket must meter against the injected clock. A mass run on
// a manual clock advances weeks in milliseconds of wall time; before
// the clock was threaded through, such runs silently rate-limited
// against time.Now() instead.
func TestTokenBucketLogicalClock(t *testing.T) {
	start := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	clock := netsim.NewManualClock(start)
	// 0.001 tokens/s: replenishing one token takes ~17 wall minutes if
	// the bucket reads real time, but a single logical advance here.
	tb := NewTokenBucketAt(0.001, 1, clock)
	ctx := context.Background()
	if err := tb.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2000 * time.Second)
	done := make(chan error, 1)
	go func() { done <- tb.Wait(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("token not replenished from logical time")
	}
}

// A waiter that parked before the advance must wake when the logical
// clock moves, without any wall-clock timer involvement.
func TestTokenBucketLogicalWake(t *testing.T) {
	start := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	clock := netsim.NewManualClock(start)
	tb := NewTokenBucketAt(1, 1, clock)
	ctx := context.Background()
	if err := tb.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tb.Wait(ctx) }()
	// Give the waiter a moment to park, then move logical time.
	time.Sleep(10 * time.Millisecond)
	clock.Advance(5 * time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not wake on clock advance")
	}
	// And a parked waiter with no advance obeys cancellation.
	cctx, cancel := context.WithCancel(ctx)
	go func() { done <- tb.Wait(cctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled logical wait returned nil")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	f := testFabric()
	s := NewScanner(Config{Fabric: f, Source: scanSrc, Workers: 2})
	s.Start(context.Background())
	s.Close()
	if s.Submit(netip.MustParseAddr("2001:db8::1")) {
		t.Fatal("Submit accepted after Close")
	}
	if n := s.SubmitBatch([]netip.Addr{netip.MustParseAddr("2001:db8::2")}); n != 0 {
		t.Fatalf("SubmitBatch accepted %d after Close", n)
	}
	s.Close() // double close is a no-op, not a panic
}

func TestSubmitCloseRace(t *testing.T) {
	f := testFabric()
	target := netip.MustParseAddr("2001:db8::d")
	f.Register(target, fullHost())
	for round := 0; round < 20; round++ {
		s := NewScanner(Config{Fabric: f, Source: scanSrc, Workers: 4, Timeout: time.Second})
		s.Start(context.Background())
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					a := netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, byte(g), byte(i >> 8), byte(i)})
					s.Submit(a)
				}
			}()
		}
		s.Close() // races with the submitters; must never panic
		wg.Wait()
	}
}

func TestSubmitBatchAndDrain(t *testing.T) {
	f := testFabric()
	target := netip.MustParseAddr("2001:db8::d")
	f.Register(target, fullHost())

	addrs := make([]netip.Addr, 200)
	for i := range addrs {
		addrs[i] = netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, 1, byte(i >> 8), byte(i)})
	}
	addrs = append(addrs, addrs[0]) // one revisit duplicate

	var mu sync.Mutex
	var seqs []int64
	s := NewScanner(Config{
		Fabric: f, Source: scanSrc, Workers: 8, Timeout: time.Second,
		Modules: []Module{&HTTPModule{}},
		OnResult: func(r *Result) {
			mu.Lock()
			seqs = append(seqs, r.Seq)
			mu.Unlock()
		},
	})
	s.Start(context.Background())
	if n := s.SubmitBatch(addrs); n != 200 {
		t.Fatalf("accepted %d of 200 distinct", n)
	}
	s.Drain()
	mu.Lock()
	drained := len(seqs)
	mu.Unlock()
	if drained != 200 {
		t.Fatalf("Drain returned with %d of 200 results", drained)
	}
	s.Close()

	// Sequence numbers cover [0, 200) exactly once: batch order is
	// preserved through the concurrent pool.
	seen := make(map[int64]bool, len(seqs))
	for _, q := range seqs {
		if q < 0 || q >= 200 || seen[q] {
			t.Fatalf("bad/duplicate seq %d", q)
		}
		seen[q] = true
	}

	submitted, scanned, suppressed, _ := s.Stats()
	if submitted != 201 || scanned != 200 || suppressed != 1 {
		t.Fatalf("stats = %d %d %d", submitted, scanned, suppressed)
	}
}

func TestDrainWithoutWork(t *testing.T) {
	s := NewScanner(Config{Fabric: testFabric(), Source: scanSrc, Workers: 2})
	s.Start(context.Background())
	s.Drain() // must not block
	s.Close()
}
