package zgrab

import (
	"fmt"
	"net/netip"
	"testing"
	"time"
)

var breakerT0 = time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)

func darkAddrs(n int) []netip.Addr {
	out := make([]netip.Addr, n)
	for i := range out {
		out[i] = netip.MustParseAddr(fmt.Sprintf("2001:db8:dead::%x", i+1))
	}
	return out
}

func TestBreakerTripsOnDarkness(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 8, Cooldown: 2 * time.Hour})
	for _, a := range darkAddrs(8) {
		if !b.Allow(a) {
			t.Fatal("closed breaker refused a probe")
		}
		b.Record(a, false)
	}
	b.Advance(breakerT0)
	if b.Open() != 1 {
		t.Fatalf("Open = %d after %d dark targets, want 1", b.Open(), 8)
	}
	if b.Allow(darkAddrs(1)[0]) {
		t.Fatal("open breaker admitted a probe")
	}
	if b.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", b.Skipped())
	}
}

func TestBreakerLifePreventsTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 8, Cooldown: 2 * time.Hour})
	addrs := darkAddrs(16)
	for _, a := range addrs[:15] {
		b.Record(a, false)
	}
	b.Record(addrs[15], true) // one live host in the aggregate
	b.Advance(breakerT0)
	if b.Open() != 0 {
		t.Fatal("breaker tripped despite a live host in the prefix")
	}
}

func TestBreakerCooldownProbationRecovery(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 4, Cooldown: 2 * time.Hour})
	addrs := darkAddrs(4)
	for _, a := range addrs {
		b.Record(a, false)
	}
	now := breakerT0
	b.Advance(now)
	if b.Open() != 1 {
		t.Fatal("did not trip")
	}

	// Before cooldown: still shedding.
	now = now.Add(time.Hour)
	b.Advance(now)
	if b.Allow(addrs[0]) {
		t.Fatal("admitted before cooldown")
	}

	// After cooldown: probation admits the whole slice.
	now = now.Add(2 * time.Hour)
	b.Advance(now)
	if !b.Allow(addrs[0]) {
		t.Fatal("probation slice not admitted after cooldown")
	}

	// Probation finds life → closes and forgives the dark window.
	b.Record(addrs[0], true)
	b.Advance(now.Add(time.Hour))
	if b.Open() != 0 {
		t.Fatal("breaker did not close after probation found life")
	}
}

func TestBreakerProbationReopensOnDarkness(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 4, Cooldown: time.Hour})
	addrs := darkAddrs(4)
	for _, a := range addrs {
		b.Record(a, false)
	}
	now := breakerT0
	b.Advance(now)
	now = now.Add(2 * time.Hour)
	b.Advance(now) // open → probing
	if !b.Allow(addrs[0]) {
		t.Fatal("probation not admitting")
	}
	b.Record(addrs[0], false) // probe met silence again
	b.Advance(now.Add(time.Hour))
	if b.Open() != 1 {
		t.Fatal("probation darkness did not re-open the breaker")
	}
}

func TestBreakerWindowDecays(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 8, Cooldown: time.Hour})
	// 5 dark now; decays to 2 next slice, 1 after — never reaches 8.
	for _, a := range darkAddrs(5) {
		b.Record(a, false)
	}
	now := breakerT0
	for i := 0; i < 4; i++ {
		b.Advance(now)
		now = now.Add(time.Hour)
	}
	if b.Open() != 0 {
		t.Fatal("decayed darkness should not trip the breaker")
	}
	// But sustained darkness accumulates past the threshold:
	// 5 + 5/2... converges above 8? 5+2=7, 7/2+5=8 → trips.
	for i := 0; i < 3; i++ {
		for _, a := range darkAddrs(5) {
			b.Record(a, false)
		}
		b.Advance(now)
		now = now.Add(time.Hour)
	}
	if b.Open() != 1 {
		t.Fatal("sustained darkness should trip the breaker")
	}
}

func TestBreakerSnapshotRestoreRoundTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 4, Cooldown: time.Hour})
	for _, a := range darkAddrs(4) {
		b.Record(a, false)
	}
	b.Record(netip.MustParseAddr("2001:db8:beef::1"), true)
	b.Advance(breakerT0)

	snap := b.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}

	b2 := NewBreaker(BreakerConfig{Threshold: 4, Cooldown: time.Hour})
	b2.Restore(snap)
	snap2 := b2.Snapshot()
	if fmt.Sprintf("%+v", snap2) != fmt.Sprintf("%+v", snap) {
		t.Fatalf("restore round trip diverges:\n got %+v\nwant %+v", snap2, snap)
	}
	if b2.Open() != b.Open() {
		t.Fatalf("restored Open = %d, want %d", b2.Open(), b.Open())
	}
	// The restored breaker behaves identically: still shedding the dark
	// prefix, still admitting the live one.
	if b2.Allow(netip.MustParseAddr("2001:db8:dead::99")) {
		t.Fatal("restored breaker admits the open prefix")
	}
	if !b2.Allow(netip.MustParseAddr("2001:db8:beef::2")) {
		t.Fatal("restored breaker sheds the healthy prefix")
	}
}
