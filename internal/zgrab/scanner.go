package zgrab

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ntpscan/internal/netsim"
)

// Limiter bounds the probe rate. Wait blocks until the caller may send
// one probe.
type Limiter interface {
	Wait(ctx context.Context) error
}

// TokenBucket is a real-time token-bucket limiter. The paper caps scans
// at 100 000 packets per second (Appendix A.2.1).
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a limiter emitting rate tokens/second with the
// given burst.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// Wait implements Limiter.
func (tb *TokenBucket) Wait(ctx context.Context) error {
	for {
		tb.mu.Lock()
		now := time.Now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		tb.last = now
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return nil
		}
		need := (1 - tb.tokens) / tb.rate
		tb.mu.Unlock()
		t := time.NewTimer(time.Duration(need * float64(time.Second)))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// NopLimiter never blocks; mass simulations run on logical time where
// the 100 kpps budget is accounted for analytically instead.
type NopLimiter struct{ n atomic.Int64 }

// Wait implements Limiter.
func (l *NopLimiter) Wait(context.Context) error {
	l.n.Add(1)
	return nil
}

// Count returns how many probes passed.
func (l *NopLimiter) Count() int64 { return l.n.Load() }

// Revisit suppresses re-scans of recently scanned addresses: the paper
// refrains from re-scanning an address for three days (Appendix A.2.1).
type Revisit struct {
	mu    sync.Mutex
	last  map[netip.Addr]time.Time
	after time.Duration
}

// NewRevisit returns a suppressor with the given re-scan holdoff.
func NewRevisit(after time.Duration) *Revisit {
	return &Revisit{last: make(map[netip.Addr]time.Time), after: after}
}

// Allow reports whether addr may be scanned at now, and records the scan
// if so.
func (rv *Revisit) Allow(addr netip.Addr, now time.Time) bool {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if t, seen := rv.last[addr]; seen && now.Sub(t) < rv.after {
		return false
	}
	rv.last[addr] = now
	return true
}

// Len returns how many addresses are tracked.
func (rv *Revisit) Len() int {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	return len(rv.last)
}

// Config assembles a scanner.
type Config struct {
	// Fabric selects the simulation transport; leave nil and set Net
	// for real-socket scanning.
	Fabric *netsim.Network
	// Net overrides the transport (e.g. NewRealNet()). Defaults to
	// SimNet(Fabric).
	Net Net
	// Clock stamps results (the experiment's logical clock for mass
	// runs). Defaults to the fabric clock.
	Clock netsim.Clock
	// Source is the scanner's source address. The paper's scan hosts
	// carry identifying rDNS and web pages; in the simulation the
	// source address identifies us to the telescope.
	Source netip.Addr
	// Modules defaults to AllModules().
	Modules []Module
	// Timeout per connection attempt (default 500 ms).
	Timeout time.Duration
	// UDPTimeout bounds connectionless probes; zero means Timeout.
	UDPTimeout time.Duration
	// Workers in the scan pool (default 32).
	Workers int
	// Limiter defaults to NopLimiter.
	Limiter Limiter
	// RevisitAfter defaults to 72 h (logical).
	RevisitAfter time.Duration
	// PortOverrides redirects modules (by name) to non-IANA ports.
	PortOverrides map[string]uint16
	// InterProtocolDelay spaces one target's modules apart on the
	// logical timeline (the paper waits 10 s – 10 min between protocols
	// to spare low-powered devices, Appendix A.2.1). The fabric is
	// latency-free, so the delay is recorded in each result's schedule
	// stamp rather than slept.
	InterProtocolDelay time.Duration
	// OnResult receives every grab; it is called from worker
	// goroutines and must be safe for concurrent use.
	OnResult func(*Result)
}

// Scanner is the zgrab2-style runtime: submit addresses, modules fan
// out, results stream to OnResult.
type Scanner struct {
	cfg     Config
	env     *Env
	revisit *Revisit

	queue   chan netip.Addr
	wg      sync.WaitGroup
	started bool

	submitted  atomic.Int64
	scanned    atomic.Int64
	probes     atomic.Int64
	suppressed atomic.Int64
}

// NewScanner validates cfg and builds a scanner.
func NewScanner(cfg Config) *Scanner {
	if cfg.Net == nil {
		cfg.Net = SimNet(cfg.Fabric)
	}
	if cfg.Clock == nil {
		if cfg.Fabric != nil {
			cfg.Clock = cfg.Fabric.Clock()
		} else {
			cfg.Clock = netsim.RealClock{}
		}
	}
	if len(cfg.Modules) == 0 {
		cfg.Modules = AllModules()
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.Limiter == nil {
		cfg.Limiter = &NopLimiter{}
	}
	if cfg.RevisitAfter <= 0 {
		cfg.RevisitAfter = 72 * time.Hour
	}
	return &Scanner{
		cfg: cfg,
		env: &Env{
			Net: cfg.Net, Source: cfg.Source, Clock: cfg.Clock,
			Timeout: cfg.Timeout, UDPTimeout: cfg.UDPTimeout,
			PortOverrides: cfg.PortOverrides,
		},
		revisit: NewRevisit(cfg.RevisitAfter),
		queue:   make(chan netip.Addr, 4096),
	}
}

// Start launches the worker pool.
func (s *Scanner) Start(ctx context.Context) {
	if s.started {
		panic("zgrab: Scanner started twice")
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for addr := range s.queue {
				s.scanOne(ctx, addr)
			}
		}()
	}
}

// Submit enqueues one target, honouring revisit suppression. It reports
// whether the address was accepted. Submit blocks when the queue is
// full (backpressure onto the capture feed).
func (s *Scanner) Submit(addr netip.Addr) bool {
	s.submitted.Add(1)
	if !s.revisit.Allow(addr, s.cfg.Clock.Now()) {
		s.suppressed.Add(1)
		return false
	}
	s.queue <- addr
	return true
}

// ScanNow scans one address synchronously with all modules, bypassing
// the queue (used by tests and the batch hitlist run's driver).
func (s *Scanner) ScanNow(ctx context.Context, addr netip.Addr) []*Result {
	out := make([]*Result, 0, len(s.cfg.Modules))
	for _, m := range s.cfg.Modules {
		if err := s.cfg.Limiter.Wait(ctx); err != nil {
			return out
		}
		s.probes.Add(1)
		r := m.Scan(ctx, s.env, addr)
		out = append(out, r)
		if s.cfg.OnResult != nil {
			s.cfg.OnResult(r)
		}
	}
	s.scanned.Add(1)
	return out
}

func (s *Scanner) scanOne(ctx context.Context, addr netip.Addr) {
	for i, m := range s.cfg.Modules {
		if err := s.cfg.Limiter.Wait(ctx); err != nil {
			return
		}
		s.probes.Add(1)
		r := m.Scan(ctx, s.env, addr)
		if s.cfg.InterProtocolDelay > 0 {
			r.Time = r.Time.Add(time.Duration(i) * s.cfg.InterProtocolDelay)
		}
		if s.cfg.OnResult != nil {
			s.cfg.OnResult(r)
		}
	}
	s.scanned.Add(1)
}

// Close drains the queue and stops the workers. The scanner cannot be
// restarted.
func (s *Scanner) Close() {
	close(s.queue)
	s.wg.Wait()
}

// Stats returns submitted, scanned, suppressed target counts and the
// total probe count.
func (s *Scanner) Stats() (submitted, scanned, suppressed, probes int64) {
	return s.submitted.Load(), s.scanned.Load(), s.suppressed.Load(), s.probes.Load()
}
