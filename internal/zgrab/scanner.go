package zgrab

import (
	"context"
	"hash/maphash"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ntpscan/internal/netsim"
	"ntpscan/internal/obs"
)

// Limiter bounds the probe rate. Wait blocks until the caller may send
// one probe.
type Limiter interface {
	Wait(ctx context.Context) error
}

// logicalClock is the subset of netsim.ManualClock the token bucket uses
// to sleep on simulated time instead of wall time.
type logicalClock interface {
	Changed() <-chan struct{}
}

// TokenBucket is a token-bucket limiter. The paper caps scans at
// 100 000 packets per second (Appendix A.2.1). Time is read from the
// injected clock: on the system clock it behaves like a classic
// real-time bucket, on a netsim.ManualClock it replenishes with the
// experiment's logical time and waiters park on the clock's Changed
// channel instead of a wall timer — a mass run that advances weeks in
// milliseconds is no longer silently throttled against real time.
type TokenBucket struct {
	mu     sync.Mutex
	clock  netsim.Clock
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a wall-clock limiter emitting rate
// tokens/second with the given burst (real-socket scanning).
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return NewTokenBucketAt(rate, burst, netsim.RealClock{})
}

// NewTokenBucketAt returns a limiter reading time from clock.
func NewTokenBucketAt(rate, burst float64, clock netsim.Clock) *TokenBucket {
	if clock == nil {
		clock = netsim.RealClock{}
	}
	return &TokenBucket{clock: clock, rate: rate, burst: burst, tokens: burst, last: clock.Now()}
}

// Wait implements Limiter.
func (tb *TokenBucket) Wait(ctx context.Context) error {
	for {
		// Grab the wake channel before reading the clock so an advance
		// racing with the read cannot be missed.
		var wake <-chan struct{}
		if lc, ok := tb.clock.(logicalClock); ok {
			wake = lc.Changed()
		}
		tb.mu.Lock()
		now := tb.clock.Now()
		if now.After(tb.last) {
			tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
			tb.last = now
		}
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return nil
		}
		need := (1 - tb.tokens) / tb.rate
		tb.mu.Unlock()
		if wake != nil {
			// Logical time: only the driver moves the clock, so sleep
			// until it does.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-wake:
			}
			continue
		}
		t := time.NewTimer(time.Duration(need * float64(time.Second)))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// NopLimiter never blocks; mass simulations run on logical time where
// the 100 kpps budget is accounted for analytically instead.
type NopLimiter struct{ n atomic.Int64 }

// Wait implements Limiter.
func (l *NopLimiter) Wait(context.Context) error {
	l.n.Add(1)
	return nil
}

// Count returns how many probes passed.
func (l *NopLimiter) Count() int64 { return l.n.Load() }

// revisitShards is the fan-out of the revisit map. The shard is a pure
// function of the address, so the same address always serialises on the
// same lock and distinct addresses almost never contend.
const revisitShards = 64

var revisitSeed = maphash.MakeSeed()

func revisitShard(addr netip.Addr) int {
	b := addr.As16()
	return int(maphash.Bytes(revisitSeed, b[:]) % revisitShards)
}

// Revisit suppresses re-scans of recently scanned addresses: the paper
// refrains from re-scanning an address for three days (Appendix A.2.1).
// The map is hash-sharded so the feed path scales with submitter and
// worker counts; all methods are safe for concurrent use.
type Revisit struct {
	after  time.Duration
	shards [revisitShards]struct {
		mu   sync.Mutex
		last map[netip.Addr]time.Time
	}
}

// NewRevisit returns a suppressor with the given re-scan holdoff.
func NewRevisit(after time.Duration) *Revisit {
	rv := &Revisit{after: after}
	for i := range rv.shards {
		rv.shards[i].last = make(map[netip.Addr]time.Time)
	}
	return rv
}

// Allow reports whether addr may be scanned at now, and records the scan
// if so.
func (rv *Revisit) Allow(addr netip.Addr, now time.Time) bool {
	sh := &rv.shards[revisitShard(addr)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t, seen := sh.last[addr]; seen && now.Sub(t) < rv.after {
		return false
	}
	sh.last[addr] = now
	return true
}

// Len returns how many addresses are tracked.
func (rv *Revisit) Len() int {
	n := 0
	for i := range rv.shards {
		rv.shards[i].mu.Lock()
		n += len(rv.shards[i].last)
		rv.shards[i].mu.Unlock()
	}
	return n
}

// Sweep evicts entries whose holdoff has expired — they no longer
// suppress anything (Allow would admit them) and over a long campaign
// would otherwise accumulate without bound. Returns how many entries
// were dropped. The scanner sweeps at each drain barrier.
func (rv *Revisit) Sweep(now time.Time) int {
	evicted := 0
	for i := range rv.shards {
		sh := &rv.shards[i]
		sh.mu.Lock()
		for addr, t := range sh.last {
			if now.Sub(t) >= rv.after {
				delete(sh.last, addr)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

// RevisitEntry is one tracked address in a checkpoint.
type RevisitEntry struct {
	Addr netip.Addr `json:"addr"`
	Last time.Time  `json:"last"`
}

// Snapshot exports the tracked addresses in canonical (address) order.
func (rv *Revisit) Snapshot() []RevisitEntry {
	var out []RevisitEntry
	for i := range rv.shards {
		sh := &rv.shards[i]
		sh.mu.Lock()
		for addr, t := range sh.last {
			out = append(out, RevisitEntry{Addr: addr, Last: t})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// Restore replaces the tracked set with a snapshot.
func (rv *Revisit) Restore(entries []RevisitEntry) {
	for i := range rv.shards {
		sh := &rv.shards[i]
		sh.mu.Lock()
		sh.last = make(map[netip.Addr]time.Time)
		sh.mu.Unlock()
	}
	for _, e := range entries {
		sh := &rv.shards[revisitShard(e.Addr)]
		sh.mu.Lock()
		sh.last[e.Addr] = e.Last
		sh.mu.Unlock()
	}
}

// Config assembles a scanner.
type Config struct {
	// Fabric selects the simulation transport; leave nil and set Net
	// for real-socket scanning.
	Fabric *netsim.Network
	// Net overrides the transport (e.g. NewRealNet()). Defaults to
	// SimNet(Fabric).
	Net Net
	// Clock stamps results (the experiment's logical clock for mass
	// runs). Defaults to the fabric clock.
	Clock netsim.Clock
	// Source is the scanner's source address. The paper's scan hosts
	// carry identifying rDNS and web pages; in the simulation the
	// source address identifies us to the telescope.
	Source netip.Addr
	// Modules defaults to AllModules().
	Modules []Module
	// Timeout per connection attempt (default 500 ms).
	Timeout time.Duration
	// UDPTimeout bounds connectionless probes; zero means Timeout.
	UDPTimeout time.Duration
	// Workers in the scan pool (default 32).
	Workers int
	// Limiter defaults to NopLimiter.
	Limiter Limiter
	// RevisitAfter defaults to 72 h (logical).
	RevisitAfter time.Duration
	// PortOverrides redirects modules (by name) to non-IANA ports.
	PortOverrides map[string]uint16
	// InterProtocolDelay spaces one target's modules apart on the
	// logical timeline (the paper waits 10 s – 10 min between protocols
	// to spare low-powered devices, Appendix A.2.1). The fabric is
	// latency-free, so the delay is recorded in each result's schedule
	// stamp rather than slept.
	InterProtocolDelay time.Duration
	// Retry, when set, gives each module probe up to MaxAttempts tries
	// with exponential backoff and deterministic jitter. Like
	// InterProtocolDelay, backoff under a logical clock is stamped into
	// the result's schedule rather than slept; under a real clock it
	// sleeps.
	Retry *RetryPolicy
	// Obs is the metrics registry the scanner registers on. Nil gets a
	// private registry, so instrumentation is always on (it is a few
	// atomic adds) and Metrics() never returns nil. The campaign
	// pipeline passes its own registry so campaign and hitlist scans
	// accumulate into one set of books.
	Obs *obs.Registry
	// Breaker, when set, enables the per-prefix circuit breaker:
	// targets in prefixes that have produced nothing but silence are
	// skipped (emitting StatusBreakerOpen results) until the cooldown's
	// probation re-admits them. State advances at the Drain barrier.
	Breaker *BreakerConfig
	// OnResult receives every grab; it is called from worker
	// goroutines and must be safe for concurrent use.
	OnResult func(*Result)
	// OnResultWorker, when set, is used instead of OnResult and
	// additionally receives the worker index in [0, Workers). Sinks can
	// keep one unsynchronised buffer per worker and merge at the end —
	// the lock-free fast path of the campaign pipeline.
	OnResultWorker func(worker int, r *Result)
}

// target is one queued scan with its submission sequence number.
type target struct {
	addr netip.Addr
	seq  int64
}

// submitChunk bounds how many targets ride one channel operation; the
// feed amortises channel synchronisation across a chunk instead of
// paying it per address.
const submitChunk = 64

// session is one in-flight submit chunk: the unit of work handed from
// the feed to a worker. Sessions live in the scanner's dense session
// table under explicit lifetimes — acquired when the feed fills one,
// released when the worker finishes its last target — instead of a
// GC-managed sync.Pool, so a campaign's transport state is a bounded,
// inspectable table rather than whatever the collector kept.
type session struct {
	id      int32
	inUse   bool
	targets []target
}

// sessionTable is the scanner's dense, index-keyed session registry:
// slot i holds session id i forever, freed ids recycle LIFO, and the
// table only ever grows to the campaign's in-flight high-water mark, so
// steady-state acquire/release touches no allocator. Safe for
// concurrent use by the feed and the worker pool.
type sessionTable struct {
	mu    sync.Mutex
	slots []*session
	free  []int32
	high  int // high-water live sessions
}

// acquire hands out a free session (growing the table when none is
// free) with its target buffer reset.
func (t *sessionTable) acquire() *session {
	t.mu.Lock()
	var s *session
	if n := len(t.free); n > 0 {
		s = t.slots[t.free[n-1]]
		t.free = t.free[:n-1]
	} else {
		s = &session{id: int32(len(t.slots)), targets: make([]target, 0, submitChunk)}
		t.slots = append(t.slots, s)
	}
	s.inUse = true
	if live := len(t.slots) - len(t.free); live > t.high {
		t.high = live
	}
	t.mu.Unlock()
	s.targets = s.targets[:0]
	return s
}

// release returns a session to the free list. Releasing a session that
// is not live is a lifetime bug, not a recoverable condition.
func (t *sessionTable) release(s *session) {
	t.mu.Lock()
	if !s.inUse {
		t.mu.Unlock()
		panic("zgrab: session released twice")
	}
	s.inUse = false
	t.free = append(t.free, s.id)
	t.mu.Unlock()
}

// stats returns the live session count and the high-water mark.
func (t *sessionTable) stats() (live, high int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slots) - len(t.free), t.high
}

// Scanner is the zgrab2-style runtime: submit addresses, modules fan
// out, results stream to OnResult.
type Scanner struct {
	cfg     Config
	env     *Env
	revisit *Revisit
	breaker *Breaker // nil unless Config.Breaker is set
	met     *Metrics // never nil

	sessions sessionTable
	queue    chan *session
	wg       sync.WaitGroup
	started  bool

	// closeMu guards closed and makes Submit/Close race-free: Submit
	// holds the read side across the enqueue so Close (write side)
	// cannot close the channel underneath it.
	closeMu sync.RWMutex
	closed  bool

	// pending counts enqueued-but-unfinished targets; Drain waits on it.
	pendingMu   sync.Mutex
	pendingCond *sync.Cond
	pending     int

	nextSeq atomic.Int64

	submitted  atomic.Int64
	scanned    atomic.Int64
	probes     atomic.Int64
	suppressed atomic.Int64
}

// NewScanner validates cfg and builds a scanner.
func NewScanner(cfg Config) *Scanner {
	if cfg.Net == nil {
		cfg.Net = SimNet(cfg.Fabric)
	}
	if cfg.Clock == nil {
		if cfg.Fabric != nil {
			cfg.Clock = cfg.Fabric.Clock()
		} else {
			cfg.Clock = netsim.RealClock{}
		}
	}
	if len(cfg.Modules) == 0 {
		cfg.Modules = AllModules()
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.Limiter == nil {
		cfg.Limiter = &NopLimiter{}
	}
	if cfg.RevisitAfter <= 0 {
		cfg.RevisitAfter = 72 * time.Hour
	}
	_, logical := cfg.Clock.(logicalClock)
	s := &Scanner{
		cfg: cfg,
		env: &Env{
			Net: cfg.Net, Source: cfg.Source, Clock: cfg.Clock,
			Timeout: cfg.Timeout, UDPTimeout: cfg.UDPTimeout,
			PortOverrides: cfg.PortOverrides, Logical: logical,
		},
		revisit: NewRevisit(cfg.RevisitAfter),
		queue:   make(chan *session, 4096),
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.met = newScanMetrics(reg, cfg.Modules)
	if cfg.Breaker != nil {
		s.breaker = NewBreaker(*cfg.Breaker)
		s.breaker.met = s.met
	}
	s.pendingCond = sync.NewCond(&s.pendingMu)
	return s
}

// logical reports whether the scanner runs on a manual clock (delays
// are stamped, not slept).
func (s *Scanner) logical() bool {
	_, ok := s.cfg.Clock.(logicalClock)
	return ok
}

// Start launches the worker pool.
func (s *Scanner) Start(ctx context.Context) {
	if s.started {
		panic("zgrab: Scanner started twice")
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		worker := i
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for sess := range s.queue {
				for _, t := range sess.targets {
					s.scanOne(ctx, worker, t)
				}
				n := len(sess.targets)
				s.sessions.release(sess)
				s.finish(n)
			}
		}()
	}
}

// enqueue numbers and queues a pre-filtered session. Callers hold
// closeMu.RLock and have checked closed. Ownership of the session
// passes to the worker, which releases it back to the table once its
// last target has been scanned.
func (s *Scanner) enqueue(sess *session) {
	batch := sess.targets
	for i := range batch {
		batch[i].seq = s.nextSeq.Add(1) - 1
	}
	s.pendingMu.Lock()
	s.pending += len(batch)
	s.pendingMu.Unlock()
	s.queue <- sess
}

func (s *Scanner) finish(n int) {
	s.pendingMu.Lock()
	s.pending -= n
	if s.pending == 0 {
		s.pendingCond.Broadcast()
	}
	s.pendingMu.Unlock()
}

// Submit enqueues one target, honouring revisit suppression. It reports
// whether the address was accepted; submitting to a closed scanner is a
// safe no-op returning false. Submit blocks when the queue is full
// (backpressure onto the capture feed).
func (s *Scanner) Submit(addr netip.Addr) bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return false
	}
	s.submitted.Add(1)
	s.met.Submitted.Inc()
	if !s.revisit.Allow(addr, s.cfg.Clock.Now()) {
		s.suppressed.Add(1)
		s.met.Suppressed.Inc()
		return false
	}
	sess := s.sessions.acquire()
	sess.targets = append(sess.targets, target{addr: addr})
	s.enqueue(sess)
	return true
}

// SubmitBatch enqueues many targets with one channel operation per
// submitChunk addresses, honouring revisit suppression. It returns how
// many were accepted; a closed scanner accepts none. Sequence numbers
// are assigned in slice order, so a single feeding goroutine produces a
// deterministic result order regardless of worker count.
func (s *Scanner) SubmitBatch(addrs []netip.Addr) int {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return 0
	}
	s.submitted.Add(int64(len(addrs)))
	s.met.Submitted.Add(int64(len(addrs)))
	accepted := 0
	now := s.cfg.Clock.Now()
	sess := s.sessions.acquire()
	for _, addr := range addrs {
		if !s.revisit.Allow(addr, now) {
			s.suppressed.Add(1)
			s.met.Suppressed.Inc()
			continue
		}
		accepted++
		sess.targets = append(sess.targets, target{addr: addr})
		if len(sess.targets) == submitChunk {
			s.enqueue(sess)
			sess = s.sessions.acquire()
		}
	}
	if len(sess.targets) > 0 {
		s.enqueue(sess)
	} else {
		s.sessions.release(sess)
	}
	return accepted
}

// Drain blocks until every target submitted so far has been fully
// scanned. The campaign pipeline drains at each slice boundary so no
// scan is in flight when the logical clock moves — the source of the
// pipeline's bit-reproducibility under concurrency.
//
// The quiescent point doubles as the maintenance tick: expired revisit
// entries are evicted and the circuit breaker folds the slice's
// outcomes and runs its state transitions. Doing both here — never
// mid-slice — keeps them a pure function of the schedule.
func (s *Scanner) Drain() {
	s.pendingMu.Lock()
	for s.pending > 0 {
		s.pendingCond.Wait()
	}
	s.pendingMu.Unlock()
	now := s.cfg.Clock.Now()
	s.revisit.Sweep(now)
	if s.breaker != nil {
		s.breaker.Advance(now)
	}
}

// ScanNow scans one address synchronously with all modules, bypassing
// the queue (used by tests and the batch hitlist run's driver).
func (s *Scanner) ScanNow(ctx context.Context, addr netip.Addr) []*Result {
	seq := s.nextSeq.Add(1) - 1
	s.met.Submitted.Inc()
	out := make([]*Result, 0, len(s.cfg.Modules))
	for i, m := range s.cfg.Modules {
		t := obs.StartTimer(s.met.LimiterWait, s.cfg.Clock)
		err := s.cfg.Limiter.Wait(ctx)
		t.Stop()
		if err != nil {
			return out
		}
		s.probes.Add(1)
		s.met.Probes.Inc(i)
		r := m.Scan(ctx, s.env, addr)
		if r.Status == StatusSuccess {
			s.met.Successes.Inc(i)
		}
		r.Seq = seq*int64(len(s.cfg.Modules)) + int64(i)
		out = append(out, r)
		s.emit(0, r)
	}
	s.scanned.Add(1)
	s.met.Completed.Inc()
	return out
}

func (s *Scanner) emit(worker int, r *Result) {
	if s.cfg.OnResultWorker != nil {
		s.cfg.OnResultWorker(worker, r)
		return
	}
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(r)
	}
}

func (s *Scanner) scanOne(ctx context.Context, worker int, t target) {
	if s.breaker != nil && !s.breaker.Allow(t.addr) {
		// Shed the target but keep the sequence space dense: every
		// module slot still gets a result, so sinks and offsets line up
		// whether or not the breaker fired.
		now := s.env.now()
		for i, m := range s.cfg.Modules {
			r := &Result{
				IP: t.addr, Module: m.Name(), Port: s.env.portFor(m),
				Time: now, Status: StatusBreakerOpen,
			}
			r.Seq = t.seq*int64(len(s.cfg.Modules)) + int64(i)
			s.emit(worker, r)
		}
		s.scanned.Add(1)
		s.met.Shed.Inc()
		return
	}
	alive := false
	for i, m := range s.cfg.Modules {
		r := s.scanModule(ctx, t.addr, i, m)
		if r == nil {
			return // cancelled in the limiter
		}
		if Alive(r) {
			alive = true
		}
		if r.Status == StatusSuccess {
			s.met.Successes.Inc(i)
		}
		r.Seq = t.seq*int64(len(s.cfg.Modules)) + int64(i)
		if s.cfg.InterProtocolDelay > 0 {
			r.Time = r.Time.Add(time.Duration(i) * s.cfg.InterProtocolDelay)
		}
		s.emit(worker, r)
	}
	if s.breaker != nil {
		s.breaker.Record(t.addr, alive)
	}
	s.scanned.Add(1)
	s.met.Completed.Inc()
}

// scanModule runs one module probe under the retry policy and returns
// the final attempt's result (nil if the context died in the limiter).
// Retries re-roll the fabric's fault hashes via the context attempt
// tag; accumulated backoff is stamped into the result's schedule under
// a logical clock and slept under a real one.
func (s *Scanner) scanModule(ctx context.Context, addr netip.Addr, mi int, m Module) *Result {
	attempts := s.cfg.Retry.attempts()
	var backoff time.Duration
	for attempt := 0; ; attempt++ {
		t := obs.StartTimer(s.met.LimiterWait, s.cfg.Clock)
		err := s.cfg.Limiter.Wait(ctx)
		t.Stop()
		if err != nil {
			return nil
		}
		s.probes.Add(1)
		s.met.Probes.Inc(mi)
		r := m.Scan(netsim.WithAttempt(ctx, attempt), s.env, addr)
		if attempt > 0 {
			r.Attempts = attempt + 1
		}
		if backoff > 0 {
			r.Time = r.Time.Add(backoff)
		}
		if attempt+1 >= attempts || !Classify(r).Retryable() {
			if attempt > 0 && Classify(r).Retryable() {
				s.met.RetryExhausted.Inc()
			}
			return r
		}
		s.met.Retries.Inc(mi)
		d := s.cfg.Retry.Backoff(addr, m.Name(), attempt)
		s.met.Backoff.Observe(obs.DurationMS(d))
		if s.logical() {
			backoff += d
		} else {
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return r
			case <-timer.C:
			}
		}
	}
}

// ScanState is the scanner's checkpointable state: the sequence
// cursor, the revisit suppression set, and the breaker's prefix
// states. Capture it from a quiescent point (after Drain, before any
// further Submit).
type ScanState struct {
	NextSeq int64               `json:"next_seq"`
	Revisit []RevisitEntry      `json:"revisit,omitempty"`
	Breaker []BreakerEntryState `json:"breaker,omitempty"`
}

// Snapshot exports the scanner's state for a checkpoint.
func (s *Scanner) Snapshot() ScanState {
	st := ScanState{
		NextSeq: s.nextSeq.Load(),
		Revisit: s.revisit.Snapshot(),
	}
	if s.breaker != nil {
		st.Breaker = s.breaker.Snapshot()
	}
	return st
}

// Restore loads a checkpointed state. Call before Start.
func (s *Scanner) Restore(st ScanState) {
	s.nextSeq.Store(st.NextSeq)
	s.revisit.Restore(st.Revisit)
	if s.breaker != nil {
		s.breaker.Restore(st.Breaker)
	}
}

// Breaker returns the scanner's circuit breaker (nil if not enabled).
func (s *Scanner) Breaker() *Breaker { return s.breaker }

// Close drains the queue and stops the workers. The scanner cannot be
// restarted; Submit calls racing or following Close are rejected rather
// than panicking.
func (s *Scanner) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.closeMu.Unlock()
	s.wg.Wait()
}

// Stats returns submitted, scanned, suppressed target counts and the
// total probe count.
func (s *Scanner) Stats() (submitted, scanned, suppressed, probes int64) {
	return s.submitted.Load(), s.scanned.Load(), s.suppressed.Load(), s.probes.Load()
}

// Sessions returns the scanner's live in-flight session count and the
// campaign's high-water mark — the bound on transport state the session
// table ever held.
func (s *Scanner) Sessions() (live, high int) {
	return s.sessions.stats()
}
