package zgrab

import (
	"net/netip"
	"testing"
	"time"
)

func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name string
		r    *Result
		want ErrorClass
	}{
		{"success", &Result{Status: StatusSuccess}, ClassNone},
		{"refused", &Result{Status: StatusRefused}, ClassRefused},
		{"timeout", &Result{Status: StatusTimeout}, ClassFiltered},
		{"ioerror", &Result{Status: StatusIOError}, ClassTransient},
		{"protocol", &Result{Status: StatusProtocolError}, ClassGarbled},
		{"tls-alert", &Result{Status: StatusTLSError, TLS: &TLSGrab{Alert: "handshake_failure"}}, ClassNone},
		{"tls-truncated", &Result{Status: StatusTLSError}, ClassGarbled},
		{"breaker-open", &Result{Status: StatusBreakerOpen}, ClassNone},
	}
	for _, c := range cases {
		if got := Classify(c.r); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
	for _, c := range cases {
		wantRetry := c.want == ClassFiltered || c.want == ClassTransient || c.want == ClassGarbled
		if got := Classify(c.r).Retryable(); got != wantRetry {
			t.Errorf("%s: Retryable = %v, want %v", c.name, got, wantRetry)
		}
	}
}

func TestAliveCountsAnyAnswer(t *testing.T) {
	alive := []*Result{
		{Status: StatusSuccess},
		{Status: StatusRefused},
		{Status: StatusProtocolError},
		{Status: StatusTLSError, TLS: &TLSGrab{Alert: "bad_certificate"}},
	}
	for _, r := range alive {
		if !Alive(r) {
			t.Errorf("%s should count as alive", r.Status)
		}
	}
	dark := []*Result{
		{Status: StatusTimeout},
		{Status: StatusIOError},
	}
	for _, r := range dark {
		if Alive(r) {
			t.Errorf("%s should not count as alive", r.Status)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 6, Base: time.Second, Max: 4 * time.Second, Multiplier: 2}
	a := netip.MustParseAddr("2001:db8::1")
	got := []time.Duration{
		p.Backoff(a, "http", 0),
		p.Backoff(a, "http", 1),
		p.Backoff(a, "http", 2),
		p.Backoff(a, "http", 3),
	}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("attempt %d backoff = %v, want %v (no jitter)", i, got[i], want[i])
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := DefaultRetryPolicy()
	a := netip.MustParseAddr("2001:db8::1")
	b := netip.MustParseAddr("2001:db8::2")

	if p.Backoff(a, "http", 1) != p.Backoff(a, "http", 1) {
		t.Fatal("jittered backoff not deterministic")
	}
	if p.Backoff(a, "http", 1) == p.Backoff(b, "http", 1) &&
		p.Backoff(a, "ssh", 1) == p.Backoff(b, "ssh", 1) &&
		p.Backoff(a, "http", 2) == p.Backoff(b, "http", 2) {
		t.Fatal("jitter ignores probe identity")
	}
	// Bounds: jitter 0.5 keeps each delay within [0.75, 1.25) of nominal.
	nominal := 2 * time.Second
	for i := 0; i < 64; i++ {
		addr := netip.AddrFrom16([16]byte{0x20, 0x01, 15: byte(i)})
		d := p.Backoff(addr, "http", 1)
		if d < 3*nominal/4 || d >= 5*nominal/4 {
			t.Fatalf("backoff %v outside jitter bounds around %v", d, nominal)
		}
	}
}

func TestRetryPolicyAttempts(t *testing.T) {
	var nilPolicy *RetryPolicy
	if got := nilPolicy.attempts(); got != 1 {
		t.Fatalf("nil policy attempts = %d, want 1", got)
	}
	if got := (&RetryPolicy{}).attempts(); got != 1 {
		t.Fatalf("zero policy attempts = %d, want 1", got)
	}
	if got := (&RetryPolicy{MaxAttempts: 3}).attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}
