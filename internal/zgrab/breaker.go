package zgrab

import (
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerConfig tunes the per-prefix circuit breaker that sheds probe
// load from dark space. Aggregation is per routing prefix: a run of
// all-silent targets under one /48 is far more likely a dark or
// filtered aggregate than many coincidentally dead hosts.
type BreakerConfig struct {
	// PrefixBits is the aggregation width (default /48).
	PrefixBits int
	// Threshold is how much accumulated darkness (silent targets, with
	// older slices decaying by half) trips the breaker. Default 64.
	Threshold int
	// Cooldown is how long a tripped prefix stays open before a
	// probation slice is admitted. Default 14 h (two campaign slices)
	// of logical time.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.PrefixBits <= 0 || c.PrefixBits > 128 {
		c.PrefixBits = 48
	}
	if c.Threshold <= 0 {
		c.Threshold = 64
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 14 * time.Hour
	}
	return c
}

// Breaker states.
const (
	breakerClosed int32 = iota // normal operation
	breakerOpen                // shedding: targets are skipped
	breakerProbing             // probation slice: admit everything, judge at the boundary
)

// breakerEntry is one prefix's state. Outcome counters for the current
// slice accumulate atomically from any worker; windowed totals and
// state transitions are touched only by Advance, which the scanner
// calls at the drain barrier — so transitions are a pure function of
// (slice outcomes, schedule), independent of worker interleaving.
type breakerEntry struct {
	dark  atomic.Int64 // this slice: targets with no sign of life
	alive atomic.Int64 // this slice: targets that answered somehow

	state    atomic.Int32
	openedAt time.Time
	winDark  int64 // decayed window of darkness
	winAlive int64
}

// Breaker is the per-prefix circuit breaker. Allow/Record are safe for
// any concurrency; Advance must be called from the drain barrier (one
// goroutine, scans quiescent).
type Breaker struct {
	cfg BreakerConfig

	mu      sync.RWMutex
	entries map[netip.Prefix]*breakerEntry

	skipped atomic.Int64

	// met, when set (by the owning scanner), receives transition
	// counters and the open-set gauge from Advance. Transitions only
	// happen at the drain barrier, so the counts are a pure function of
	// the schedule.
	met *Metrics
}

// NewBreaker returns a breaker with cfg (zero fields take defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), entries: make(map[netip.Prefix]*breakerEntry)}
}

func (b *Breaker) prefixOf(addr netip.Addr) netip.Prefix {
	p, _ := addr.Prefix(b.cfg.PrefixBits)
	return p
}

func (b *Breaker) entry(pfx netip.Prefix, create bool) *breakerEntry {
	b.mu.RLock()
	e := b.entries[pfx]
	b.mu.RUnlock()
	if e != nil || !create {
		return e
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e = b.entries[pfx]; e == nil {
		e = &breakerEntry{}
		b.entries[pfx] = e
	}
	return e
}

// Allow reports whether addr's prefix admits probes right now. An open
// prefix sheds; closed and probing prefixes admit.
func (b *Breaker) Allow(addr netip.Addr) bool {
	e := b.entry(b.prefixOf(addr), false)
	if e != nil && e.state.Load() == breakerOpen {
		b.skipped.Add(1)
		return false
	}
	return true
}

// Record accumulates one target's fate: alive if any module got an
// answer (success, refusal, or a garbled banner), dark if every module
// met silence.
func (b *Breaker) Record(addr netip.Addr, alive bool) {
	e := b.entry(b.prefixOf(addr), true)
	if alive {
		e.alive.Add(1)
	} else {
		e.dark.Add(1)
	}
}

// Advance folds the slice's outcomes into the decayed windows and runs
// state transitions. Call from the drain barrier with now = the
// logical slice time.
//
// Transitions: closed trips open when the dark window reaches
// Threshold with no sign of life; open waits out Cooldown, then admits
// one whole probation slice; probation closes on any life, re-opens on
// continued darkness, and idles if nothing was probed.
func (b *Breaker) Advance(now time.Time) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	open := int64(0)
	for _, e := range b.entries {
		sliceDark := e.dark.Swap(0)
		sliceAlive := e.alive.Swap(0)
		e.winDark = e.winDark/2 + sliceDark
		e.winAlive = e.winAlive/2 + sliceAlive
		switch e.state.Load() {
		case breakerClosed:
			if e.winDark >= int64(b.cfg.Threshold) && e.winAlive == 0 {
				e.state.Store(breakerOpen)
				e.openedAt = now
				if b.met != nil {
					b.met.BreakerOpened.Inc()
				}
			}
		case breakerOpen:
			if now.Sub(e.openedAt) >= b.cfg.Cooldown {
				e.state.Store(breakerProbing)
				if b.met != nil {
					b.met.BreakerProbation.Inc()
				}
			}
		case breakerProbing:
			switch {
			case sliceAlive > 0:
				e.state.Store(breakerClosed)
				e.winDark = 0
				if b.met != nil {
					b.met.BreakerClosed.Inc()
				}
			case sliceDark > 0:
				e.state.Store(breakerOpen)
				e.openedAt = now
				if b.met != nil {
					b.met.BreakerReopened.Inc()
				}
			}
		}
		if e.state.Load() == breakerOpen {
			open++
		}
	}
	if b.met != nil {
		b.met.BreakerOpen.Set(open)
	}
}

// Skipped returns how many targets the breaker shed.
func (b *Breaker) Skipped() int64 { return b.skipped.Load() }

// Open returns how many prefixes are currently shedding.
func (b *Breaker) Open() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, e := range b.entries {
		if e.state.Load() == breakerOpen {
			n++
		}
	}
	return n
}

// BreakerEntryState is one prefix's checkpointed state.
type BreakerEntryState struct {
	Prefix   netip.Prefix `json:"prefix"`
	State    int32        `json:"state"`
	OpenedAt time.Time    `json:"opened_at,omitempty"`
	WinDark  int64        `json:"win_dark,omitempty"`
	WinAlive int64        `json:"win_alive,omitempty"`
}

// Snapshot exports all prefix states in canonical (prefix string)
// order. Call from a quiescent point (after Advance): mid-slice
// counters must be zero, and are not captured.
func (b *Breaker) Snapshot() []BreakerEntryState {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]BreakerEntryState, 0, len(b.entries))
	for pfx, e := range b.entries {
		out = append(out, BreakerEntryState{
			Prefix: pfx, State: e.state.Load(),
			OpenedAt: e.openedAt, WinDark: e.winDark, WinAlive: e.winAlive,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

// Restore replaces the breaker's state with a snapshot.
func (b *Breaker) Restore(states []BreakerEntryState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries = make(map[netip.Prefix]*breakerEntry, len(states))
	for _, st := range states {
		e := &breakerEntry{openedAt: st.OpenedAt, winDark: st.WinDark, winAlive: st.WinAlive}
		e.state.Store(st.State)
		b.entries[st.Prefix] = e
	}
}
