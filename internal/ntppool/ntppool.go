// Package ntppool models the NTP Pool: country zones, server
// registration with operator-configurable netspeed weights, monitor
// scoring, and the weighted client→server mapping (following the
// behaviour documented by Moura et al. and relied on in the paper's
// §3.1: clients resolve to servers in their country zone, falling back
// to larger zones when the country zone is empty).
//
// Third-party pool servers are aggregated per zone as background weight:
// the simulation only needs to know how often a client lands on *our*
// capture servers versus anyone else's.
package ntppool

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"ntpscan/internal/rng"
)

// MinScore is the monitor score below which the pool stops handing out a
// server (the real pool uses 10 on a -100..20 scale).
const MinScore = 10

// Server is one pool member operated by us (capture-capable deployments
// are plain Servers whose Handle feeds an ntp.Server).
type Server struct {
	ID       string
	Country  string // ISO code of the zone the server is registered in
	Addr     netip.Addr
	NetSpeed float64 // operator-configured relative weight ("netspeed")
	Score    float64 // monitor score; starts at 20 (healthy)
}

// Pool is the zone directory. All methods are safe for concurrent use.
type Pool struct {
	mu sync.RWMutex
	// background holds the aggregate netspeed of third-party servers
	// per country zone.
	background map[string]float64
	// globalBackground is third-party weight reachable via the global
	// zone (continent/global fallback).
	globalBackground float64
	servers          map[string]*Server // by ID
	byZone           map[string][]*Server
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		background: make(map[string]float64),
		servers:    make(map[string]*Server),
		byZone:     make(map[string][]*Server),
	}
}

// SetBackground records the aggregate third-party server weight for a
// country zone (0 models an empty zone).
func (p *Pool) SetBackground(country string, weight float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.background[country] = weight
}

// SetGlobalBackground records third-party weight in the global fallback
// zone.
func (p *Pool) SetGlobalBackground(weight float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.globalBackground = weight
}

// AddServer registers one of our servers in its country zone. The server
// starts with a healthy monitor score.
func (p *Pool) AddServer(s *Server) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.servers[s.ID]; dup {
		return fmt.Errorf("ntppool: duplicate server id %q", s.ID)
	}
	if s.Score == 0 {
		s.Score = 20
	}
	p.servers[s.ID] = s
	p.byZone[s.Country] = append(p.byZone[s.Country], s)
	return nil
}

// RemoveServer withdraws a server (the paper stops advertising four
// weeks before shutdown; withdrawal is immediate here and the advance
// notice is the caller's schedule).
func (p *Pool) RemoveServer(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.servers[id]
	if !ok {
		return
	}
	delete(p.servers, id)
	zone := p.byZone[s.Country]
	for i, z := range zone {
		if z.ID == id {
			p.byZone[s.Country] = append(zone[:i], zone[i+1:]...)
			break
		}
	}
}

// Server returns a registered server by ID.
func (p *Pool) Server(id string) (*Server, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s, ok := p.servers[id]
	return s, ok
}

// Servers returns our servers sorted by ID.
func (p *Pool) Servers() []*Server {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Server, 0, len(p.servers))
	for _, s := range p.servers {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetNetSpeed adjusts a server's weight — the knob the paper turns until
// the capture rate matches the scanning budget.
func (p *Pool) SetNetSpeed(id string, speed float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.servers[id]; ok {
		s.NetSpeed = speed
	}
}

// SetScore updates a server's monitor score; unhealthy servers stop
// receiving clients.
func (p *Pool) SetScore(id string, score float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.servers[id]; ok {
		s.Score = score
	}
}

// MapClient resolves which server a syncing client in the given country
// is directed to. It returns (server, true) when the client lands on one
// of our capture servers, and (nil, false) when a third-party background
// server absorbs the query. Selection is weight-proportional within the
// country zone; an entirely empty country zone falls back to the global
// zone, matching pool behaviour.
func (p *Pool) MapClient(country string, r *rng.Stream) (*Server, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()

	ours := p.byZone[country]
	bg := p.background[country]
	total := bg
	for _, s := range ours {
		if s.Score >= MinScore {
			total += s.NetSpeed
		}
	}
	if total <= 0 {
		// Empty zone: global fallback over all our servers plus global
		// background.
		return p.mapGlobalLocked(r)
	}
	target := r.Float64() * total
	for _, s := range ours {
		if s.Score < MinScore {
			continue
		}
		target -= s.NetSpeed
		if target < 0 {
			return s, true
		}
	}
	return nil, false // background server
}

func (p *Pool) mapGlobalLocked(r *rng.Stream) (*Server, bool) {
	total := p.globalBackground
	ids := make([]string, 0, len(p.servers))
	for id := range p.servers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if s := p.servers[id]; s.Score >= MinScore {
			total += s.NetSpeed
		}
	}
	if total <= 0 {
		return nil, false
	}
	target := r.Float64() * total
	for _, id := range ids {
		s := p.servers[id]
		if s.Score < MinScore {
			continue
		}
		target -= s.NetSpeed
		if target < 0 {
			return s, true
		}
	}
	return nil, false
}

// ShareEstimate returns the fraction of a country's sync traffic our
// servers currently attract, for the netspeed controller.
func (p *Pool) ShareEstimate(country string) float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ours := 0.0
	for _, s := range p.byZone[country] {
		if s.Score >= MinScore {
			ours += s.NetSpeed
		}
	}
	total := ours + p.background[country]
	if total <= 0 {
		return 0
	}
	return ours / total
}

// ConfiguredShare is ShareEstimate ignoring monitor health: the share
// the operator's netspeed configuration would attract with every
// server healthy. Campaign budgets are computed from this — a budget
// must not depend on the transient health the monitor happens to see
// at planning time, or a resumed run would plan a different campaign
// than the one it is resuming.
func (p *Pool) ConfiguredShare(country string) float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ours := 0.0
	for _, s := range p.byZone[country] {
		ours += s.NetSpeed
	}
	total := ours + p.background[country]
	if total <= 0 {
		return 0
	}
	return ours / total
}

// Healthy reports whether the server's monitor score keeps it in
// rotation. Unknown IDs are unhealthy.
func (p *Pool) Healthy(id string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s, ok := p.servers[id]
	return ok && s.Score >= MinScore
}

// Score returns the server's current monitor score (0 for unknown
// IDs).
func (p *Pool) Score(id string) float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if s, ok := p.servers[id]; ok {
		return s.Score
	}
	return 0
}
