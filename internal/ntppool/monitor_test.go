package ntppool

import (
	"testing"

	"ntpscan/internal/rng"
)

func TestMonitorFailureDrainsTraffic(t *testing.T) {
	p := New()
	p.SetBackground("DE", 10)
	p.AddServer(newServer("s1", "DE", 100))
	m := NewMonitor(p)

	// An outage spans several probe rounds; the score collapses.
	var score float64
	for i := 0; i < 3; i++ {
		score = m.Check("s1", false)
	}
	if score >= MinScore {
		t.Fatalf("score after outage = %v", score)
	}
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		if _, ours := p.MapClient("DE", r); ours {
			t.Fatal("failing server still mapped")
		}
	}

	// Recovery is slow: it takes several good probes to serve again.
	steps := 0
	for {
		steps++
		if m.Check("s1", true) >= MinScore {
			break
		}
		if steps > 10 {
			t.Fatal("server never recovered")
		}
	}
	if steps < 2 {
		t.Fatalf("recovered after %d steps; failures should outweigh successes", steps)
	}
	mapped := false
	for i := 0; i < 2000; i++ {
		if _, ours := p.MapClient("DE", r); ours {
			mapped = true
			break
		}
	}
	if !mapped {
		t.Fatal("recovered server not mapped")
	}
}

func TestMonitorScoreBounds(t *testing.T) {
	p := New()
	p.AddServer(newServer("s1", "DE", 1))
	m := NewMonitor(p)
	for i := 0; i < 50; i++ {
		m.Check("s1", false)
	}
	s, _ := p.Server("s1")
	if s.Score < m.MinFloor {
		t.Fatalf("score %v below floor", s.Score)
	}
	for i := 0; i < 100; i++ {
		m.Check("s1", true)
	}
	s, _ = p.Server("s1")
	if s.Score > m.MaxScore {
		t.Fatalf("score %v above cap", s.Score)
	}
}

func TestMonitorCheckAll(t *testing.T) {
	p := New()
	p.AddServer(newServer("good", "DE", 1))
	p.AddServer(newServer("bad", "DE", 1))
	m := NewMonitor(p)
	healthy := m.CheckAll(func(s *Server) bool { return s.ID == "good" })
	if healthy != 1 {
		t.Fatalf("healthy = %d", healthy)
	}
	if _, ok := p.Server("missing"); ok {
		t.Fatal("phantom server")
	}
	if got := m.Check("missing", true); got != 0 {
		t.Fatalf("Check on missing server = %v", got)
	}
}
