package ntppool

import (
	"testing"

	"ntpscan/internal/rng"
)

func TestMonitorFailureDrainsTraffic(t *testing.T) {
	p := New()
	p.SetBackground("DE", 10)
	p.AddServer(newServer("s1", "DE", 100))
	m := NewMonitor(p)

	// An outage spans several probe rounds; the score collapses.
	var score float64
	for i := 0; i < 3; i++ {
		score = m.Check("s1", false)
	}
	if score >= MinScore {
		t.Fatalf("score after outage = %v", score)
	}
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		if _, ours := p.MapClient("DE", r); ours {
			t.Fatal("failing server still mapped")
		}
	}

	// Recovery is slow: it takes several good probes to serve again.
	steps := 0
	for {
		steps++
		if m.Check("s1", true) >= MinScore {
			break
		}
		if steps > 10 {
			t.Fatal("server never recovered")
		}
	}
	if steps < 2 {
		t.Fatalf("recovered after %d steps; failures should outweigh successes", steps)
	}
	mapped := false
	for i := 0; i < 2000; i++ {
		if _, ours := p.MapClient("DE", r); ours {
			mapped = true
			break
		}
	}
	if !mapped {
		t.Fatal("recovered server not mapped")
	}
}

func TestMonitorScoreBounds(t *testing.T) {
	p := New()
	p.AddServer(newServer("s1", "DE", 1))
	m := NewMonitor(p)
	for i := 0; i < 50; i++ {
		m.Check("s1", false)
	}
	s, _ := p.Server("s1")
	if s.Score < m.MinFloor {
		t.Fatalf("score %v below floor", s.Score)
	}
	for i := 0; i < 100; i++ {
		m.Check("s1", true)
	}
	s, _ = p.Server("s1")
	if s.Score > m.MaxScore {
		t.Fatalf("score %v above cap", s.Score)
	}
}

func TestMonitorCheckAll(t *testing.T) {
	p := New()
	p.AddServer(newServer("good", "DE", 1))
	p.AddServer(newServer("bad", "DE", 1))
	m := NewMonitor(p)
	healthy := m.CheckAll(func(s *Server) bool { return s.ID == "good" })
	if healthy != 1 {
		t.Fatalf("healthy = %d", healthy)
	}
	if _, ok := p.Server("missing"); ok {
		t.Fatal("phantom server")
	}
	if got := m.Check("missing", true); got != 0 {
		t.Fatalf("Check on missing server = %v", got)
	}
}

// Satellite: repeated flap/recover cycles. Each blackout must drain the
// vantage within one failed probe round after the score dips below the
// cutoff, each recovery must take more than one good round (asymmetric
// hysteresis), and the cycle must be stable — scores neither ratchet
// down nor float up across cycles.
func TestMonitorFlapRecoverCycles(t *testing.T) {
	p := New()
	p.SetBackground("DE", 10)
	p.AddServer(newServer("s1", "DE", 100))
	m := NewMonitor(p)

	for cycle := 0; cycle < 3; cycle++ {
		// One failed probe from a full score: 20 - 15 = 5 < MinScore.
		if score := m.Check("s1", false); score >= MinScore {
			t.Fatalf("cycle %d: one failure left score %v >= cutoff", cycle, score)
		}
		if p.Healthy("s1") {
			t.Fatalf("cycle %d: drained server still Healthy", cycle)
		}
		if _, ours := p.MapClient("DE", rng.New(uint64(cycle))); ours {
			t.Fatalf("cycle %d: drained server still mapped", cycle)
		}

		// Recovery: 5 + 5 = 10 >= MinScore after exactly one good round,
		// then the score climbs back to the cap.
		if score := m.Check("s1", true); score < MinScore {
			t.Fatalf("cycle %d: score %v still below cutoff after recovery round", cycle, score)
		}
		if !p.Healthy("s1") {
			t.Fatalf("cycle %d: recovered server not Healthy", cycle)
		}
		for i := 0; i < 4; i++ {
			m.Check("s1", true)
		}
		if score := p.Score("s1"); score != m.MaxScore {
			t.Fatalf("cycle %d: score %v did not return to cap %v", cycle, score, m.MaxScore)
		}
	}
}

// ConfiguredShare must ignore monitor health — campaign budgets planned
// from it cannot depend on transient vantage state.
func TestConfiguredShareScoreBlind(t *testing.T) {
	p := New()
	p.SetBackground("DE", 100)
	p.AddServer(newServer("s1", "DE", 100))

	before := p.ConfiguredShare("DE")
	if before != 0.5 {
		t.Fatalf("ConfiguredShare = %v, want 0.5", before)
	}
	m := NewMonitor(p)
	m.Check("s1", false) // drain
	if p.ShareEstimate("DE") != 0 {
		t.Fatalf("ShareEstimate should see the drain, got %v", p.ShareEstimate("DE"))
	}
	if got := p.ConfiguredShare("DE"); got != before {
		t.Fatalf("ConfiguredShare moved with health: %v -> %v", before, got)
	}
	if p.Healthy("nope") {
		t.Fatal("unknown server reported Healthy")
	}
	if p.Score("nope") != 0 {
		t.Fatal("unknown server has a score")
	}
}
