package ntppool

import "sync"

// Monitor models the pool's monitoring system: servers are probed
// periodically, failures push the score down, successes recover it. A
// server below MinScore stops receiving clients until it recovers —
// why the paper insisted on near-100%-uptime hosting for its vantage
// deployments (Appendix A.1.1).
type Monitor struct {
	mu   sync.Mutex
	pool *Pool
	// Step sizes follow the real monitor's asymmetric behaviour:
	// failures hurt much faster than successes heal.
	FailPenalty   float64
	SuccessCredit float64
	MaxScore      float64
	MinFloor      float64
}

// NewMonitor returns a monitor for the pool with the production-like
// default steps.
func NewMonitor(pool *Pool) *Monitor {
	return &Monitor{
		pool:          pool,
		FailPenalty:   15,
		SuccessCredit: 5,
		MaxScore:      20,
		MinFloor:      -100,
	}
}

// Check records one probe outcome for a server and returns its new
// score.
func (m *Monitor) Check(id string, ok bool) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, found := m.pool.Server(id)
	if !found {
		return 0
	}
	score := s.Score
	if ok {
		score += m.SuccessCredit
		if score > m.MaxScore {
			score = m.MaxScore
		}
	} else {
		score -= m.FailPenalty
		if score < m.MinFloor {
			score = m.MinFloor
		}
	}
	m.pool.SetScore(id, score)
	return score
}

// CheckAll probes every registered server with the given function and
// returns how many are currently healthy (score >= MinScore).
func (m *Monitor) CheckAll(probe func(*Server) bool) (healthy int) {
	for _, s := range m.pool.Servers() {
		m.Check(s.ID, probe(s))
	}
	for _, s := range m.pool.Servers() {
		if s.Score >= MinScore {
			healthy++
		}
	}
	return healthy
}
