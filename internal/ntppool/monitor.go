package ntppool

import (
	"sync"

	"ntpscan/internal/obs"
)

// MonitorMetrics counts the monitor's probe outcomes and, more
// importantly, health *transitions*: a server crossing below MinScore
// is one degradation event, crossing back is one recovery. The
// invariant suite checks degraded - recovered == currently-unhealthy
// servers (every degradation is eventually paired with a recovery or
// still visible in the pool).
type MonitorMetrics struct {
	Checks    *obs.Counter // probe outcomes recorded
	Failures  *obs.Counter // probes that failed
	Degraded  *obs.Counter // servers crossing below MinScore
	Recovered *obs.Counter // servers crossing back to MinScore or above
}

// NewMonitorMetrics registers the monitor's families on r.
func NewMonitorMetrics(r *obs.Registry) *MonitorMetrics {
	return &MonitorMetrics{
		Checks:    r.NewCounter("pool_checks_total", "monitor probe outcomes recorded"),
		Failures:  r.NewCounter("pool_check_failures_total", "monitor probes that failed"),
		Degraded:  r.NewCounter("pool_degraded_total", "servers crossing below the serving threshold"),
		Recovered: r.NewCounter("pool_recovered_total", "servers recovering to the serving threshold"),
	}
}

// Monitor models the pool's monitoring system: servers are probed
// periodically, failures push the score down, successes recover it. A
// server below MinScore stops receiving clients until it recovers —
// why the paper insisted on near-100%-uptime hosting for its vantage
// deployments (Appendix A.1.1).
type Monitor struct {
	mu   sync.Mutex
	pool *Pool
	// Step sizes follow the real monitor's asymmetric behaviour:
	// failures hurt much faster than successes heal.
	FailPenalty   float64
	SuccessCredit float64
	MaxScore      float64
	MinFloor      float64

	met *MonitorMetrics // optional; set via SetMetrics
}

// SetMetrics attaches observability counters. Scores set directly on
// the pool (e.g. a checkpoint restore via SetScore) bypass the monitor
// and are deliberately not counted — restoring state must not re-count
// the events that produced it.
func (m *Monitor) SetMetrics(met *MonitorMetrics) {
	m.mu.Lock()
	m.met = met
	m.mu.Unlock()
}

// NewMonitor returns a monitor for the pool with the production-like
// default steps.
func NewMonitor(pool *Pool) *Monitor {
	return &Monitor{
		pool:          pool,
		FailPenalty:   15,
		SuccessCredit: 5,
		MaxScore:      20,
		MinFloor:      -100,
	}
}

// Check records one probe outcome for a server and returns its new
// score.
func (m *Monitor) Check(id string, ok bool) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, found := m.pool.Server(id)
	if !found {
		return 0
	}
	score := s.Score
	if ok {
		score += m.SuccessCredit
		if score > m.MaxScore {
			score = m.MaxScore
		}
	} else {
		score -= m.FailPenalty
		if score < m.MinFloor {
			score = m.MinFloor
		}
	}
	if m.met != nil {
		m.met.Checks.Inc()
		if !ok {
			m.met.Failures.Inc()
		}
		wasHealthy := s.Score >= MinScore
		isHealthy := score >= MinScore
		if wasHealthy && !isHealthy {
			m.met.Degraded.Inc()
		} else if !wasHealthy && isHealthy {
			m.met.Recovered.Inc()
		}
	}
	m.pool.SetScore(id, score)
	return score
}

// CheckAll probes every registered server with the given function and
// returns how many are currently healthy (score >= MinScore).
func (m *Monitor) CheckAll(probe func(*Server) bool) (healthy int) {
	for _, s := range m.pool.Servers() {
		m.Check(s.ID, probe(s))
	}
	for _, s := range m.pool.Servers() {
		if s.Score >= MinScore {
			healthy++
		}
	}
	return healthy
}
