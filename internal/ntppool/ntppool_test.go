package ntppool

import (
	"net/netip"
	"testing"

	"ntpscan/internal/rng"
)

var nextAddr uint64

func newServer(id, country string, speed float64) *Server {
	nextAddr++
	var b [16]byte
	b[0], b[1], b[15] = 0x20, 0x01, byte(nextAddr)
	return &Server{
		ID: id, Country: country, NetSpeed: speed,
		Addr: netip.AddrFrom16(b),
	}
}

func TestAddRemoveServer(t *testing.T) {
	p := New()
	if err := p.AddServer(newServer("1", "DE", 10)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddServer(newServer("1", "DE", 10)); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if _, ok := p.Server("1"); !ok {
		t.Fatal("server lost")
	}
	p.RemoveServer("1")
	if _, ok := p.Server("1"); ok {
		t.Fatal("server not removed")
	}
	p.RemoveServer("missing") // no-op
}

func TestMapClientZoneShare(t *testing.T) {
	p := New()
	p.SetBackground("DE", 90)
	p.AddServer(newServer("ours", "DE", 10))
	r := rng.New(1)
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if s, ok := p.MapClient("DE", r); ok {
			if s.ID != "ours" {
				t.Fatalf("mapped to %q", s.ID)
			}
			hits++
		}
	}
	share := float64(hits) / draws
	if share < 0.08 || share > 0.12 {
		t.Fatalf("share = %v, want ~0.10", share)
	}
	if got := p.ShareEstimate("DE"); got != 0.10 {
		t.Fatalf("ShareEstimate = %v", got)
	}
}

func TestMapClientNetspeedIncrease(t *testing.T) {
	// The paper's methodology: raising netspeed raises capture share.
	p := New()
	p.SetBackground("IN", 100)
	p.AddServer(newServer("in1", "IN", 1))
	r := rng.New(2)
	count := func() int {
		n := 0
		for i := 0; i < 20000; i++ {
			if _, ok := p.MapClient("IN", r); ok {
				n++
			}
		}
		return n
	}
	low := count()
	p.SetNetSpeed("in1", 100)
	high := count()
	if high <= low*5 {
		t.Fatalf("netspeed increase ineffective: %d -> %d", low, high)
	}
}

func TestMapClientEmptyZoneFallsBackGlobal(t *testing.T) {
	p := New()
	p.AddServer(newServer("de", "DE", 10))
	p.SetGlobalBackground(10)
	r := rng.New(3)
	hits := 0
	for i := 0; i < 20000; i++ {
		// "ZZ" has no zone servers and no background: global fallback.
		if s, ok := p.MapClient("ZZ", r); ok {
			if s.ID != "de" {
				t.Fatalf("mapped to %q", s.ID)
			}
			hits++
		}
	}
	if hits < 8000 || hits > 12000 {
		t.Fatalf("global fallback share = %d/20000, want ~half", hits)
	}
}

func TestMapClientNothingAnywhere(t *testing.T) {
	p := New()
	r := rng.New(4)
	if _, ok := p.MapClient("ZZ", r); ok {
		t.Fatal("empty pool mapped a client")
	}
}

func TestUnhealthyServerSkipped(t *testing.T) {
	p := New()
	p.AddServer(newServer("sick", "JP", 100))
	p.SetScore("sick", 5) // below MinScore
	p.SetBackground("JP", 10)
	r := rng.New(5)
	for i := 0; i < 5000; i++ {
		if _, ok := p.MapClient("JP", r); ok {
			t.Fatal("unhealthy server received a client")
		}
	}
	// Recovery restores traffic.
	p.SetScore("sick", 20)
	got := false
	for i := 0; i < 5000; i++ {
		if _, ok := p.MapClient("JP", r); ok {
			got = true
			break
		}
	}
	if !got {
		t.Fatal("recovered server never mapped")
	}
}

func TestServersSorted(t *testing.T) {
	p := New()
	for _, id := range []string{"c", "a", "b"} {
		p.AddServer(newServer(id, "US", 1))
	}
	ss := p.Servers()
	if len(ss) != 3 || ss[0].ID != "a" || ss[2].ID != "c" {
		t.Fatalf("order: %v %v %v", ss[0].ID, ss[1].ID, ss[2].ID)
	}
}

func TestShareEstimateEmpty(t *testing.T) {
	p := New()
	if got := p.ShareEstimate("DE"); got != 0 {
		t.Fatalf("empty share = %v", got)
	}
}

func TestMapClientDistributionAcrossOurServers(t *testing.T) {
	p := New()
	p.AddServer(newServer("a", "BR", 30))
	p.AddServer(newServer("b", "BR", 10))
	r := rng.New(6)
	counts := map[string]int{}
	for i := 0; i < 40000; i++ {
		if s, ok := p.MapClient("BR", r); ok {
			counts[s.ID]++
		}
	}
	ratio := float64(counts["a"]) / float64(counts["b"])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}
