package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"ntpscan/internal/zgrab"
)

var testMods = []string{"http", "tls", "ssh", "mqtt"}

func testAddr(i int) netip.Addr {
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	b[2], b[3] = 0x0d, 0xb8
	b[4] = byte(i >> 8) // vary the /48
	b[5] = byte(i)
	b[15] = byte(i * 7)
	return netip.AddrFrom16(b)
}

func testResult(i, slice int) *zgrab.Result {
	r := &zgrab.Result{
		IP:     testAddr(i),
		Module: testMods[i%len(testMods)],
		Port:   uint16(80 + i%3),
		Time:   time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC).Add(time.Duration(slice*1000+i) * time.Millisecond),
		Status: zgrab.StatusSuccess,
		Seq:    int64(slice*10000 + i),
	}
	if i%5 == 0 {
		r.Status = zgrab.StatusTimeout
		r.Error = "i/o timeout"
	}
	switch r.Module {
	case "http":
		r.HTTP = &zgrab.HTTPGrab{StatusCode: 200, Title: fmt.Sprintf("title-%d", i%4), Server: "nginx"}
	case "tls":
		r.TLS = &zgrab.TLSGrab{Version: "TLSv1.3", HandshakeOK: true, CertFingerprint: fmt.Sprintf("fp-%d", i%6)}
	case "ssh":
		r.SSH = &zgrab.SSHGrab{ServerID: "SSH-2.0-OpenSSH_9.6", Software: "OpenSSH_9.6"}
	}
	return r
}

func testCapture(i int) CaptureRow {
	vans := []string{"DE", "US", "JP"}
	return CaptureRow{Addr: testAddr(i), Vantage: vans[i%len(vans)]}
}

// fillStore appends nSlices slices of rowsPer rows each.
func fillStore(t *testing.T, s *Store, nSlices, rowsPer int) (caps int, results int) {
	t.Helper()
	for sl := 0; sl < nSlices; sl++ {
		var cs []CaptureRow
		var rs []*zgrab.Result
		for i := 0; i < rowsPer; i++ {
			cs = append(cs, testCapture(sl*rowsPer+i))
			rs = append(rs, testResult(sl*rowsPer+i, sl))
		}
		if err := s.AppendSlice(sl, cs, rs); err != nil {
			t.Fatalf("append slice %d: %v", sl, err)
		}
		caps += len(cs)
		results += len(rs)
	}
	return caps, results
}

func scanAll(t *testing.T, s *Store) (caps []CaptureRow, results []*zgrab.Result, stats ScanStats) {
	t.Helper()
	it := s.Scan(Pred{})
	for it.Next() {
		r := it.Row()
		switch r.Kind {
		case KindCaptures:
			caps = append(caps, r.Capture)
		case KindResults:
			results = append(results, r.Result)
		}
	}
	if it.Err() != nil {
		t.Fatalf("scan: %v", it.Err())
	}
	return caps, results, it.Stats()
}

func hashDir(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s %d\n", n, len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestRoundTripAndCanonicalOrder(t *testing.T) {
	s, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	wantCaps, wantRes := fillStore(t, s, 6, 40)
	caps, results, _ := scanAll(t, s)
	if len(caps) != wantCaps || len(results) != wantRes {
		t.Fatalf("got %d caps %d results, want %d %d", len(caps), len(results), wantCaps, wantRes)
	}
	for i, r := range results {
		sl := i / 40
		want := testResult(i%40+sl*40, sl)
		got, _ := r.AppendGrabs(nil)
		wg, _ := want.AppendGrabs(nil)
		if r.IP != want.IP || r.Module != want.Module || r.Port != want.Port ||
			!r.Time.Equal(want.Time) || r.Status != want.Status || r.Error != want.Error ||
			r.Seq != want.Seq || !bytes.Equal(got, wg) {
			t.Fatalf("result %d mismatch:\n got %+v\nwant %+v", i, r, want)
		}
	}
	for i, c := range caps {
		sl := i / 40
		want := testCapture(i%40 + sl*40)
		if c != want {
			t.Fatalf("capture %d: got %+v want %+v", i, c, want)
		}
	}
	if gc, gr, err := s.Rows(); err != nil || gc != int64(wantCaps) || gr != int64(wantRes) {
		t.Fatalf("Rows() = %d,%d,%v want %d,%d", gc, gr, err, wantCaps, wantRes)
	}
}

func TestCompactionPreservesRowsAndBytes(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sa, err := Open(dirA, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Open(dirB, Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, sa, 8, 30)
	fillStore(t, sb, 8, 30)

	_, resA, _ := scanAll(t, sa)
	_, resB, _ := scanAll(t, sb)
	if len(resA) != len(resB) {
		t.Fatalf("row counts diverge: %d vs %d", len(resA), len(resB))
	}
	var ja, jb bytes.Buffer
	if err := sa.ExportJSONL(&ja, Pred{}); err != nil {
		t.Fatal(err)
	}
	if err := sb.ExportJSONL(&jb, Pred{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("JSONL export differs between compacted and uncompacted stores")
	}
	man := sb.Manifest()
	if len(man.Segments) != 2 {
		t.Fatalf("compacted store has %d segments, want 2 L1s: %+v", len(man.Segments), man.Segments)
	}
	for _, si := range man.Segments {
		if si.Level != 1 {
			t.Fatalf("segment %s still at level %d", si.Name, si.Level)
		}
	}
}

func TestDeterministicDirectoryBytes(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var hashes [2]string
	for i, dir := range dirs {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fillStore(t, s, 10, 25)
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		hashes[i] = hashDir(t, dir)
	}
	if hashes[0] != hashes[1] {
		t.Fatal("identical appends produced different directory bytes")
	}
}

func TestPredicatePushdownSkipsBlocks(t *testing.T) {
	s, err := Open(t.TempDir(), Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 8, 50)

	// Kind pushdown: a results-only scan must skip every capture block.
	it := s.Scan(Pred{Kind: KindResults})
	n := 0
	for it.Next() {
		if it.Row().Kind != KindResults {
			t.Fatal("kind filter leaked a capture row")
		}
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	st := it.Stats()
	if st.BlocksSkipped == 0 || st.BytesSkipped == 0 {
		t.Fatalf("kind pushdown skipped nothing: %+v", st)
	}
	if n != 8*50 {
		t.Fatalf("got %d results, want %d", n, 8*50)
	}

	// Slice pushdown on the uncompacted tail + compacted body.
	it = s.Scan(Pred{Slices: &SliceRange{Lo: 2, Hi: 3}})
	n = 0
	for it.Next() {
		if r := it.Row(); r.Slice < 2 || r.Slice > 3 {
			t.Fatalf("slice filter leaked slice %d", r.Slice)
		}
		n++
	}
	if n != 2*2*50 {
		t.Fatalf("slice scan got %d rows, want %d", n, 2*2*50)
	}

	// Module pushdown.
	it = s.Scan(Pred{Modules: []string{"http"}})
	n = 0
	for it.Next() {
		r := it.Row()
		if r.Kind == KindResults && r.Result.Module != "http" {
			t.Fatal("module filter leaked")
		}
		n++
	}
	if n == 0 {
		t.Fatal("module scan found nothing")
	}

	// Prefix pushdown: exact /48 → bloom + min/max pruning.
	p := netip.PrefixFrom(testAddr(7), 48)
	it = s.Scan(Pred{Prefix: p})
	n = 0
	for it.Next() {
		r := it.Row()
		var a netip.Addr
		if r.Kind == KindCaptures {
			a = r.Capture.Addr
		} else {
			a = r.Result.IP
		}
		if !p.Contains(a) {
			t.Fatalf("prefix filter leaked %s", a)
		}
		n++
	}
	if n == 0 {
		t.Fatal("prefix scan found nothing")
	}
	// A /48 that never appears must be pruned without reading blocks.
	var b [16]byte
	b[0] = 0xfd
	it = s.Scan(Pred{Prefix: netip.PrefixFrom(netip.AddrFrom16(b), 48)})
	for it.Next() {
		t.Fatal("absent prefix matched a row")
	}
	if st := it.Stats(); st.BlocksRead != 0 {
		t.Fatalf("absent-prefix scan read %d blocks, want 0", st.BlocksRead)
	}
}

func TestRecoverDropsUnsealedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 4, 20)
	man := s.Manifest()

	// Simulate a crash mid-write: a stray tmp, an unmanifested sealed
	// segment, and a torn (truncated) manifested segment.
	if err := os.WriteFile(filepath.Join(dir, "seg-L0-00009.seg.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-L0-00008.seg"), []byte("sealed but unmanifested"), 0o644); err != nil {
		t.Fatal(err)
	}
	last := man.Segments[len(man.Segments)-1]
	full, err := os.ReadFile(filepath.Join(dir, last.Name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, last.Name), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Manifest()
	if len(got.Segments) != len(man.Segments)-1 {
		t.Fatalf("recovered %d segments, want %d", len(got.Segments), len(man.Segments)-1)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") || e.Name() == "seg-L0-00008.seg" || e.Name() == last.Name {
			t.Fatalf("unsealed tail survived recovery: %s", e.Name())
		}
	}
	// The recovered store accepts the torn slice again and ends up
	// byte-identical to a never-crashed store.
	var cs []CaptureRow
	var rs []*zgrab.Result
	for i := 0; i < 20; i++ {
		cs = append(cs, testCapture(3*20+i))
		rs = append(rs, testResult(3*20+i, 3))
	}
	if err := s2.AppendSlice(3, cs, rs); err != nil {
		t.Fatal(err)
	}

	ref, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, ref, 4, 20)
	if hashDir(t, dir) != hashDir(t, ref.Dir()) {
		t.Fatal("recovered+reappended store differs from uninterrupted store")
	}
}

func TestResetToResurrectsRetiredInputs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint after slice 1 (two L0s live), then run through the
	// compaction at slice 3 which consumes them.
	fillStore(t, s, 2, 15)
	cp := s.Manifest()
	for sl := 2; sl < 4; sl++ {
		var cs []CaptureRow
		var rs []*zgrab.Result
		for i := 0; i < 15; i++ {
			cs = append(cs, testCapture(sl*15+i))
			rs = append(rs, testResult(sl*15+i, sl))
		}
		if err := s.AppendSlice(sl, cs, rs); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.Manifest().Segments); n != 1 {
		t.Fatalf("expected one L1 after compaction, got %d", n)
	}
	if err := s.ResetTo(cp); err != nil {
		t.Fatalf("reset to pre-compaction checkpoint: %v", err)
	}
	got := s.Manifest()
	if len(got.Segments) != 2 {
		t.Fatalf("reset manifest has %d segments, want 2", len(got.Segments))
	}
	// Replaying the same appends reproduces the uninterrupted directory.
	for sl := 2; sl < 4; sl++ {
		var cs []CaptureRow
		var rs []*zgrab.Result
		for i := 0; i < 15; i++ {
			cs = append(cs, testCapture(sl*15+i))
			rs = append(rs, testResult(sl*15+i, sl))
		}
		if err := s.AppendSlice(sl, cs, rs); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	ref, err := Open(t.TempDir(), Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, ref, 4, 15)
	if err := ref.Seal(); err != nil {
		t.Fatal(err)
	}
	if hashDir(t, dir) != hashDir(t, ref.Dir()) {
		t.Fatal("reset+replayed store differs from uninterrupted store")
	}
}

func TestAppendSliceRejectsOutOfOrder(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSlice(5, nil, []*zgrab.Result{testResult(0, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSlice(5, nil, []*zgrab.Result{testResult(1, 5)}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}

func TestDecodeSegmentRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 1, 35)
	man := s.Manifest()
	data, err := os.ReadFile(filepath.Join(s.Dir(), man.Segments[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	var nc, nr int
	err = DecodeSegment(data,
		func(CaptureRow, int) error { nc++; return nil },
		func(*zgrab.Result, int) error { nr++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if nc != 35 || nr != 35 {
		t.Fatalf("decoded %d caps %d results, want 35 each", nc, nr)
	}
	// Any flipped byte must fail decode, never panic.
	for _, off := range []int{0, 5, len(data) / 2, len(data) - 3} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		if err := DecodeSegment(mut, nil, nil); err == nil {
			t.Fatalf("corruption at offset %d decoded cleanly", off)
		}
	}
}
