package store_test

import (
	"bytes"
	"context"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"ntpscan/internal/analysis"
	"ntpscan/internal/chaos"
	"ntpscan/internal/core"
	"ntpscan/internal/store"
	"ntpscan/internal/targetgen"
	"ntpscan/internal/zgrab"
)

// The store as analysis substrate: a campaign persisted to both JSONL
// and the columnar store must yield the same dataset either way —
// same analysis tables, same hitlist of responsive addresses, and a
// targetgen model trained on the store-queried addresses generates
// exactly what the JSONL-derived model does.
func TestAnalysisRoundTripThroughStore(t *testing.T) {
	cfg := chaos.Config(51)
	p := core.NewPipeline(cfg)
	st, err := store.Open(t.TempDir(), store.Options{Obs: p.Obs})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Store: st, Out: &out}); err != nil {
		t.Fatal(err)
	}

	// JSONL-derived dataset (the legacy path).
	var dsJSON *analysis.Dataset
	{
		d := analysis.NewDataset("ntp", nil)
		if err := zgrab.DecodeJSONL(bytes.NewReader(out.Bytes()), func(r *zgrab.Result) error {
			d.Add(r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		dsJSON = d
	}

	// Store-queried dataset (the query-engine path).
	next, stats := st.Results(store.Pred{})
	dsStore, err := analysis.NewDatasetStream("ntp", next)
	if err != nil {
		t.Fatal(err)
	}
	if len(dsStore.Results) == 0 || len(dsStore.Results) != len(dsJSON.Results) {
		t.Fatalf("store dataset has %d results, JSONL %d", len(dsStore.Results), len(dsJSON.Results))
	}
	if s := stats(); s.BlocksSkipped == 0 || s.BytesSkipped == 0 {
		t.Fatalf("result-only query skipped nothing (capture blocks must be pruned): %+v", s)
	}

	// Identical analysis tables.
	if got, want := analysis.Table2(dsStore), analysis.Table2(dsJSON); !reflect.DeepEqual(got, want) {
		t.Fatalf("Table2 diverges:\nstore %+v\njsonl %+v", got, want)
	}
	gotHR1, gotHR2, _ := analysis.HitRate(dsStore)
	wantHR1, wantHR2, _ := analysis.HitRate(dsJSON)
	if gotHR1 != wantHR1 || gotHR2 != wantHR2 {
		t.Fatalf("hit rate diverges: store %d/%d, jsonl %d/%d", gotHR1, gotHR2, wantHR1, wantHR2)
	}

	// Identical hitlists (distinct responsive addresses, sorted).
	hitlist := func(d *analysis.Dataset) []netip.Addr {
		seen := make(map[netip.Addr]struct{})
		for _, r := range d.Results {
			if r.Success() {
				seen[r.IP] = struct{}{}
			}
		}
		addrs := make([]netip.Addr, 0, len(seen))
		for a := range seen {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		return addrs
	}
	hlStore, hlJSON := hitlist(dsStore), hitlist(dsJSON)
	if !reflect.DeepEqual(hlStore, hlJSON) {
		t.Fatalf("hitlists diverge: store %d addrs, jsonl %d", len(hlStore), len(hlJSON))
	}
	if len(hlStore) == 0 {
		t.Fatal("empty hitlist")
	}

	// Identical targetgen behaviour from either substrate.
	mStore, mJSON := targetgen.Train(hlStore), targetgen.Train(hlJSON)
	if mStore.SeedCount() != mJSON.SeedCount() || mStore.Prefixes() != mJSON.Prefixes() {
		t.Fatalf("models diverge: store (%d seeds, %d prefixes), jsonl (%d, %d)",
			mStore.SeedCount(), mStore.Prefixes(), mJSON.SeedCount(), mJSON.Prefixes())
	}
	gen1, gen2 := mStore.Generate(512, 7), mJSON.Generate(512, 7)
	if !reflect.DeepEqual(gen1, gen2) {
		t.Fatal("targetgen generation diverges between store-trained and JSONL-trained models")
	}
}
