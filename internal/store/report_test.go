package store

import (
	"os"
	"path/filepath"
	"testing"
)

func dirBytes(tb testing.TB, dir string) int64 {
	tb.Helper()
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			tb.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestReportStorageFootprint prints the on-disk and pruning numbers
// quoted in EXPERIMENTS.md "Columnar store vs JSONL" for the shared
// bench workload. Skipped unless explicitly asked for:
//
//	NTPSCAN_STORE_REPORT=1 go test -run TestReportStorageFootprint -v ./internal/store/
func TestReportStorageFootprint(t *testing.T) {
	if os.Getenv("NTPSCAN_STORE_REPORT") == "" {
		t.Skip("set NTPSCAN_STORE_REPORT=1 to print the storage footprint report")
	}
	slices := benchResults()

	jsonlPath := filepath.Join(t.TempDir(), "bench.jsonl")
	ingestJSONL(t, jsonlPath, slices)
	info, err := os.Stat(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	jsonlSize := info.Size()

	l0Dir, l1Dir := t.TempDir(), t.TempDir()
	l0 := ingestStore(t, l0Dir, slices, -1)
	ingestStore(t, l1Dir, slices, 4)
	t.Logf("JSONL file:          %8d bytes", jsonlSize)
	t.Logf("store (L0 only):     %8d bytes (%.2fx JSONL)", dirBytes(t, l0Dir), float64(dirBytes(t, l0Dir))/float64(jsonlSize))
	t.Logf("store (compacted):   %8d bytes (%.2fx JSONL)", dirBytes(t, l1Dir), float64(dirBytes(t, l1Dir))/float64(jsonlSize))

	report := func(name string, pred Pred) {
		it := l0.Scan(pred)
		n := 0
		for it.Next() {
			n++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		s := it.Stats()
		it.Close()
		t.Logf("%-22s %6d rows; blocks %d read / %d skipped; bytes %d read / %d skipped",
			name, n, s.BlocksRead, s.BlocksSkipped, s.BytesRead, s.BytesSkipped)
	}
	report("scan all results:", Pred{Kind: KindResults})
	report("scan module=http:", Pred{Modules: []string{testMods[0]}})
	report("scan slices 0-1:", Pred{Slices: &SliceRange{Lo: 0, Hi: 1}})
}
