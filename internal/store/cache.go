package store

import (
	"container/list"
	"sync"
)

// The read path keeps two caches, both content-addressed: segments are
// immutable and the manifest pins every live file's whole-file CRC and
// size, so (crc, size) identifies a segment's exact bytes regardless of
// what the file is currently called. That makes both caches safe
// against compaction retiring (renaming) segments mid-query and against
// ResetTo rewinding the directory: a stale entry can only ever be
// unreachable, never wrong, and no invalidation protocol is needed.
//
//   - footerCache holds parsed footers — the sparse block index plus
//     the segment-level module/vantage dictionaries and the /48 bloom
//     filter. Before it, every Scan re-read and re-parsed the footer of
//     every segment it visited; a query daemon doing thousands of
//     selective scans repaid that tax on each one.
//   - blockCache is a bounded LRU of fully *decoded* column blocks:
//     the block's rows, materialised once. Inflating a flate block and
//     re-decoding its rows (column reads, JSON grabs) dominate a warm
//     selective scan, and concurrent queries over the same hot
//     segments used to repeat both once per query. Cached rows are
//     shared read-only across scans — decoders copy what they keep, so
//     nothing aliases the segment file, and consumers must not mutate
//     rows (the query layer never does).

// DefaultBlockCacheBytes is the decoded-block cache budget when
// Options leaves it zero.
const DefaultBlockCacheBytes = 32 << 20

// DefaultFooterCacheEntries is the parsed-footer cache bound when
// Options leaves it zero.
const DefaultFooterCacheEntries = 1024

// segKey identifies a segment's exact contents: the manifest-pinned
// whole-file CRC-32C and size. Name is deliberately absent — compaction
// renames files without changing their bytes.
type segKey struct {
	crc  uint32
	size int64
}

// footerCache memoises parsed segment footers across Scan calls. A nil
// footerCache (Options.FooterCacheEntries < 0) disables caching.
type footerCache struct {
	mu  sync.Mutex
	max int
	m   map[segKey]*segment
}

func newFooterCache(max int) *footerCache {
	if max < 0 {
		return nil
	}
	if max == 0 {
		max = DefaultFooterCacheEntries
	}
	return &footerCache{max: max, m: make(map[segKey]*segment)}
}

// get returns the cached parsed footer for a manifest entry, if any.
// The returned segment is shared and must be treated as immutable —
// which it is by construction: nothing mutates a parsed footer.
func (c *footerCache) get(si SegmentInfo) *segment {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[segKey{si.CRC32, si.Size}]
}

// put caches a parsed footer. When the bound is hit the whole map is
// dropped — footers are cheap to re-parse and a generation clear keeps
// the path free of eviction bookkeeping.
func (c *footerCache) put(si SegmentInfo, seg *segment) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.max {
		c.m = make(map[segKey]*segment, c.max)
	}
	c.m[segKey{si.CRC32, si.Size}] = seg
}

// blockKey identifies one decoded block: the owning segment's content
// identity plus the block's file offset.
type blockKey struct {
	seg segKey
	off int64
}

// blockCache is a bounded LRU over decoded blocks. The byte budget is
// accounted in decompressed block-body bytes — a stable, deterministic
// proxy for the decoded rows' footprint that doesn't depend on Go's
// allocator. Entries are shared read-only row slices: concurrent scans
// filter the same cached rows without coordination.
type blockCache struct {
	mu  sync.Mutex
	max int64
	cur int64
	m   map[blockKey]*list.Element
	lru *list.List // front = most recently used

	met *Metrics // nil-safe: eviction/bytes accounting only
}

type blockEntry struct {
	key  blockKey
	rows []Row
	cost int64 // decompressed body bytes
}

func newBlockCache(max int64, met *Metrics) *blockCache {
	if max < 0 {
		return nil
	}
	if max == 0 {
		max = DefaultBlockCacheBytes
	}
	return &blockCache{max: max, m: make(map[blockKey]*list.Element), lru: list.New(), met: met}
}

// get returns the decoded rows for a block, if cached. found
// distinguishes a cached empty block from a miss.
func (c *blockCache) get(k blockKey) (rows []Row, found bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.m[k]
	if el == nil {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*blockEntry).rows, true
}

// put inserts a decoded block, evicting least-recently-used entries
// until the byte budget holds. Blocks costlier than the whole budget
// are not cached. A concurrent duplicate insert keeps the existing
// entry.
func (c *blockCache) put(k blockKey, rows []Row, cost int64) {
	if c == nil || cost > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; ok {
		return
	}
	c.cur += cost
	c.m[k] = c.lru.PushFront(&blockEntry{key: k, rows: rows, cost: cost})
	for c.cur > c.max {
		el := c.lru.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*blockEntry)
		c.lru.Remove(el)
		delete(c.m, ent.key)
		c.cur -= ent.cost
		if c.met != nil {
			c.met.BlockCacheEvictions.Inc()
		}
	}
	if c.met != nil {
		c.met.BlockCacheBytes.Set(c.cur)
	}
}

// bytes reports the cache's current decoded-byte footprint.
func (c *blockCache) bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}
