package store

import (
	"encoding/json"
	"io"
)

// ExportJSONL is the compatibility view: it streams the result rows
// matching pred to w in the campaign's JSONL encoding (one
// json.Encoder line per result, canonical order), so downstream JSONL
// consumers keep working against a store-backed campaign. An
// unfiltered export of an uncompacted-or-compacted store reproduces
// the legacy campaign output byte-for-byte.
func (s *Store) ExportJSONL(w io.Writer, pred Pred) error {
	pred.Kind = KindResults
	it := s.Scan(pred)
	defer it.Close()
	enc := json.NewEncoder(w)
	for it.Next() {
		if err := enc.Encode(it.Row().Result); err != nil {
			return err
		}
	}
	return it.Err()
}
