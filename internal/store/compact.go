package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ntpscan/internal/zgrab"
)

// maybeCompact runs the compaction policy after slice has been
// appended: at every K-th slice boundary ((slice+1)%K == 0) all
// pending L0 segments are merged into one L1 segment. The trigger is
// slice-aligned — it fires even when the slice wrote no segment — so
// the final segment layout is a pure function of the appended rows,
// never of batch timing.
func (s *Store) maybeCompact(slice int) error {
	k := s.opt.compactEvery()
	if k <= 0 || (slice+1)%k != 0 {
		return nil
	}
	var inputs []SegmentInfo
	for _, si := range s.man.Segments {
		if si.Level == 0 && si.SliceHi <= slice {
			inputs = append(inputs, si)
		}
	}
	if len(inputs) < 2 {
		return nil
	}
	return s.compact(inputs)
}

// compact merges the input segments (already in manifest order) into
// one L1 segment: all capture rows in segment order, then all result
// rows in segment order, re-chunked into fresh blocks. Inputs are
// retired (renamed, not deleted) before the manifest commits the
// merge, so a crash at any point recovers: an unmanifested L1 is a
// deletable stray, and retired-but-still-manifested inputs are
// resurrected by recover/ResetTo.
func (s *Store) compact(inputs []SegmentInfo) error {
	datas := make([][]byte, len(inputs))
	segs := make([]*segment, len(inputs))
	for i, si := range inputs {
		data, err := os.ReadFile(filepath.Join(s.dir, si.Name))
		if err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		seg, err := parseSegmentBytes(data)
		if err != nil {
			return fmt.Errorf("store: compact: segment %s: %w", si.Name, err)
		}
		datas[i], segs[i] = data, seg
	}
	sb := newSegBuilder()
	for i, seg := range segs {
		for _, bi := range seg.blocks {
			if bi.Kind != KindCaptures {
				continue
			}
			raw, err := decodeBlock(datas[i][bi.Off:bi.Off+bi.Len], bi)
			if err != nil {
				return fmt.Errorf("store: compact: segment %s: %w", inputs[i].Name, err)
			}
			err = decodeCaptureBlock(raw, func(c CaptureRow, slice int) error {
				sb.addCapture(c, slice)
				return nil
			})
			if err != nil {
				return fmt.Errorf("store: compact: segment %s: %w", inputs[i].Name, err)
			}
		}
	}
	sb.flushCaptures()
	for i, seg := range segs {
		for _, bi := range seg.blocks {
			if bi.Kind != KindResults {
				continue
			}
			raw, err := decodeBlock(datas[i][bi.Off:bi.Off+bi.Len], bi)
			if err != nil {
				return fmt.Errorf("store: compact: segment %s: %w", inputs[i].Name, err)
			}
			err = decodeResultBlock(raw, func(r *zgrab.Result, slice int) error {
				return sb.addResult(r, slice)
			})
			if err != nil {
				return fmt.Errorf("store: compact: segment %s: %w", inputs[i].Name, err)
			}
		}
	}
	data, rows, err := sb.finish()
	if err != nil {
		return err
	}
	name := fmt.Sprintf("seg-L1-%05d-%05d.seg", sb.sliceLo, sb.sliceHi)
	if err := s.writeFileAtomic(name, data); err != nil {
		return err
	}
	for _, si := range inputs {
		path := filepath.Join(s.dir, si.Name)
		if err := os.Rename(path, path+retiredSuffix); err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	retired := make(map[string]bool, len(inputs))
	for _, si := range inputs {
		retired[si.Name] = true
	}
	kept := s.man.Segments[:0]
	for _, si := range s.man.Segments {
		if !retired[si.Name] {
			kept = append(kept, si)
		}
	}
	s.man.Segments = append(kept, SegmentInfo{
		Name:    name,
		Level:   1,
		SliceLo: sb.sliceLo,
		SliceHi: sb.sliceHi,
		Rows:    rows,
		Size:    int64(len(data)),
		CRC32:   crcOf(data),
	})
	sort.SliceStable(s.man.Segments, func(i, j int) bool {
		return s.man.Segments[i].SliceLo < s.man.Segments[j].SliceLo
	})
	if s.met != nil {
		s.met.Compactions.Inc()
		s.met.SegmentsCompacted.Add(int64(len(inputs)))
		s.met.SegmentsWritten.Inc()
		s.met.BlocksWritten.Add(int64(len(sb.blocks)))
		s.met.BytesWritten.Add(int64(len(data)))
	}
	return s.persistManifest()
}
