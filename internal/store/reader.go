package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// openSegmentFile opens a live segment by name, falling back to its
// .retired name. Compaction retires inputs by rename, and ResetTo
// resurrects them the same way, so a reader racing either transition
// sees the bytes under exactly one of the two names at any instant; two
// rounds over both names close the rename window. Renames never
// invalidate an already-open descriptor, so an iterator that holds the
// file is immune regardless.
func (s *Store) openSegmentFile(name string) (*os.File, error) {
	var err error
	for i := 0; i < 2; i++ {
		var f *os.File
		if f, err = os.Open(filepath.Join(s.dir, name)); err == nil {
			return f, nil
		}
		if f, err = os.Open(filepath.Join(s.dir, name+retiredSuffix)); err == nil {
			return f, nil
		}
	}
	return nil, fmt.Errorf("store: %w", err)
}

// openSegment returns a live segment's parsed footer — trailer magic,
// footer CRC, block index bounds, segment dictionaries, bloom filter —
// without touching any block payloads. Parsed footers are cached by
// segment content identity, so repeated scans (the query daemon's
// steady state) skip the read and re-parse entirely.
func (s *Store) openSegment(si SegmentInfo) (*segment, int64, error) {
	if seg := s.feet.get(si); seg != nil {
		if s.met != nil {
			s.met.FooterCacheHits.Inc()
		}
		return seg, si.Size, nil
	}
	if s.met != nil {
		s.met.FooterCacheMisses.Inc()
	}
	f, err := s.openSegmentFile(si.Name)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if size < int64(len(segMagic))+trailerLen {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, errCorrupt)
	}
	var tr [trailerLen]byte
	if _, err := f.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, err)
	}
	if string(tr[8:]) != ftrMagic {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, errCorrupt)
	}
	flen := int64(binary.LittleEndian.Uint32(tr[0:4]))
	fcrc := binary.LittleEndian.Uint32(tr[4:8])
	ftrStart := size - trailerLen - flen
	if ftrStart < int64(len(segMagic)) {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, errCorrupt)
	}
	body := make([]byte, flen)
	if _, err := f.ReadAt(body, ftrStart); err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, err)
	}
	if crc32.Checksum(body, castagnoli) != fcrc {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, errCorrupt)
	}
	seg, err := parseFooter(body, ftrStart)
	if err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, err)
	}
	s.feet.put(si, seg)
	return seg, size, nil
}

// readBlockRaw reads and decodes one block's body from an open segment
// file.
func readBlockRaw(f *os.File, bi blockIndex) ([]byte, error) {
	buf := make([]byte, bi.Len)
	if _, err := f.ReadAt(buf, bi.Off); err != nil {
		return nil, err
	}
	return decodeBlock(buf, bi)
}
