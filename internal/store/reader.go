package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// openSegment reads and validates a live segment's footer — trailer
// magic, footer CRC, block index bounds — without touching any block
// payloads. It returns the parsed sparse index and the file size.
func (s *Store) openSegment(si SegmentInfo) (*segment, int64, error) {
	f, err := os.Open(filepath.Join(s.dir, si.Name))
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if size < int64(len(segMagic))+trailerLen {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, errCorrupt)
	}
	var tr [trailerLen]byte
	if _, err := f.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, err)
	}
	if string(tr[8:]) != ftrMagic {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, errCorrupt)
	}
	flen := int64(binary.LittleEndian.Uint32(tr[0:4]))
	fcrc := binary.LittleEndian.Uint32(tr[4:8])
	ftrStart := size - trailerLen - flen
	if ftrStart < int64(len(segMagic)) {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, errCorrupt)
	}
	body := make([]byte, flen)
	if _, err := f.ReadAt(body, ftrStart); err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, err)
	}
	if crc32.Checksum(body, castagnoli) != fcrc {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, errCorrupt)
	}
	seg, err := parseFooter(body, ftrStart)
	if err != nil {
		return nil, 0, fmt.Errorf("store: segment %s: %w", si.Name, err)
	}
	return seg, size, nil
}

// readBlock reads and decodes one block's rows from an open segment
// file.
func readBlockRaw(f *os.File, bi blockIndex) ([]byte, error) {
	buf := make([]byte, bi.Len)
	if _, err := f.ReadAt(buf, bi.Off); err != nil {
		return nil, err
	}
	return decodeBlock(buf, bi)
}
