package store

import (
	"net/netip"
	"os"

	"ntpscan/internal/zgrab"
)

// SliceRange is an inclusive slice-id interval.
type SliceRange struct {
	Lo, Hi int
}

// Pred is a scan predicate. Zero fields match everything; set fields
// are conjunctive. Every field pushes down to block skipping where the
// footer index allows it: Kind and Slices prune on the per-block kind
// and slice range, Modules and Vantages prune on the per-block
// dictionary bitmasks, and Prefix prunes on the per-block min//48,
// max//48 key range plus the segment bloom filter (for prefixes of
// /48 or longer).
type Pred struct {
	// Kind restricts rows to one kind; zero scans both.
	Kind Kind
	// Modules restricts result rows to these zgrab modules.
	Modules []string
	// Vantages restricts capture rows to these vantage countries.
	Vantages []string
	// Prefix restricts rows to addresses inside this prefix. The zero
	// prefix matches everything.
	Prefix netip.Prefix
	// Slices restricts rows to a slice-id interval.
	Slices *SliceRange
}

// Row is one scan hit: a capture event or a zgrab result, with the
// collection slice it was appended under. Rows may be served from the
// shared decoded-block cache, so Result pointers can be handed to
// several concurrent scans — treat rows as immutable.
type Row struct {
	Kind    Kind
	Slice   int
	Capture CaptureRow    // set when Kind == KindCaptures
	Result  *zgrab.Result // set when Kind == KindResults
}

// ScanStats reports what a scan touched versus what the sparse index
// let it skip — the evidence that predicate pushdown prunes — plus how
// much of the touched data the decoded-block cache absorbed. BlocksRead
// counts blocks the scan had to decode rows from (not skipped by the
// index); of those, CacheHits were served from the cache without disk
// I/O or decompression, and only CacheMisses cost a read and an
// inflate.
type ScanStats struct {
	Segments      int
	BlocksRead    int64
	BlocksSkipped int64
	BytesRead     int64
	BytesSkipped  int64
	CacheHits     int64
	CacheMisses   int64
}

// Iter streams rows matching a predicate in canonical order: segments
// in manifest (slice) order, blocks in file order — so all of a
// segment's capture rows precede its result rows. The iterator is
// single-pass; Close is idempotent and also runs when Next exhausts
// the store.
type Iter struct {
	s    *Store
	pred Pred

	segs   []SegmentInfo
	segIdx int
	cur    *segment
	file   *os.File

	// per-segment predicate state
	wantMod   uint64 // module mask over cur.mods; ^0 when unfiltered
	wantVan   uint64 // vantage mask over cur.vans; ^0 when unfiltered
	bloomMiss bool

	// prefix pushdown state
	hasPrefix    bool
	keyLo, keyHi uint64
	exactKey     bool

	modSet map[string]bool
	vanSet map[string]bool

	blkIdx int
	buf    []Row
	bufPos int

	row     Row
	err     error
	stats   ScanStats
	flushed bool
}

// Scan opens a streaming iterator over all live rows matching pred.
// The iterator works against a point-in-time snapshot of the manifest,
// so it is safe to run while AppendSlice and compaction mutate the
// store: slices appended after Scan are not seen, and segments a
// compaction retires mid-scan remain readable through their retired
// names until Seal garbage-collects them.
func (s *Store) Scan(pred Pred) *Iter {
	s.mu.RLock()
	segs := s.man.clone().Segments
	s.mu.RUnlock()
	it := &Iter{s: s, pred: pred, segs: segs}
	if pred.Prefix.IsValid() {
		it.hasPrefix = true
		it.keyLo, it.keyHi = prefixKeyRange(pred.Prefix)
		it.exactKey = pred.Prefix.Bits() >= 48
	}
	if len(pred.Modules) > 0 {
		it.modSet = make(map[string]bool, len(pred.Modules))
		for _, m := range pred.Modules {
			it.modSet[m] = true
		}
	}
	if len(pred.Vantages) > 0 {
		it.vanSet = make(map[string]bool, len(pred.Vantages))
		for _, v := range pred.Vantages {
			it.vanSet[v] = true
		}
	}
	return it
}

// wantMask projects a wanted-string set onto a segment dictionary's
// 64-bit id space. A wanted string sitting past id 63 poisons the mask
// to all-ones (cannot prune); a set with no dictionary hits yields 0
// (every block of that kind skips).
func wantMask(set map[string]bool, dict []string) uint64 {
	if set == nil {
		return ^uint64(0)
	}
	var mask uint64
	for id, s := range dict {
		if !set[s] {
			continue
		}
		if id >= 64 {
			return ^uint64(0)
		}
		mask |= 1 << uint(id)
	}
	return mask
}

// nextSegment advances to the next live segment, loading its footer
// and computing per-segment predicate state.
func (it *Iter) nextSegment() bool {
	it.closeFile()
	for it.segIdx < len(it.segs) {
		si := it.segs[it.segIdx]
		it.segIdx++
		seg, _, err := it.s.openSegment(si)
		if err != nil {
			it.err = err
			return false
		}
		it.cur = seg
		it.blkIdx = 0
		it.stats.Segments++
		it.wantMod = wantMask(it.modSet, seg.mods)
		it.wantVan = wantMask(it.vanSet, seg.vans)
		it.bloomMiss = it.exactKey && seg.bloom != nil && !seg.bloom.mayContain(it.keyLo)
		return true
	}
	return false
}

// skipBlock decides, from footer metadata alone, whether a block can
// contain a matching row.
func (it *Iter) skipBlock(bi blockIndex) bool {
	if it.pred.Kind != 0 && bi.Kind != it.pred.Kind {
		return true
	}
	if r := it.pred.Slices; r != nil && (bi.SliceHi < r.Lo || bi.SliceLo > r.Hi) {
		return true
	}
	if it.hasPrefix {
		if it.bloomMiss {
			return true
		}
		if bi.Max48 < it.keyLo || bi.Min48 > it.keyHi {
			return true
		}
	}
	switch bi.Kind {
	case KindResults:
		if bi.Mask&it.wantMod == 0 {
			return true
		}
	case KindCaptures:
		if bi.Mask&it.wantVan == 0 {
			return true
		}
	}
	return false
}

// matchRow applies the row-level residue of the predicate (block
// pruning is necessary, not sufficient).
func (it *Iter) matchRow(r Row) bool {
	if sr := it.pred.Slices; sr != nil && (r.Slice < sr.Lo || r.Slice > sr.Hi) {
		return false
	}
	switch r.Kind {
	case KindCaptures:
		if it.vanSet != nil && !it.vanSet[r.Capture.Vantage] {
			return false
		}
		if it.hasPrefix && !it.pred.Prefix.Contains(r.Capture.Addr) {
			return false
		}
	case KindResults:
		if it.modSet != nil && !it.modSet[r.Result.Module] {
			return false
		}
		if it.hasPrefix && !it.pred.Prefix.Contains(r.Result.IP) {
			return false
		}
	}
	return true
}

// loadBlock produces the current segment's block blkIdx into the row
// buffer, keeping only matching rows. The block's decoded rows come
// from the store's block cache when present; a miss reads the body
// from the segment file, inflates it, decodes every row once, and
// populates the cache. Cached rows are shared read-only across
// concurrent iterators — only the filtered view in it.buf is private.
func (it *Iter) loadBlock(bi blockIndex) error {
	si := it.segs[it.segIdx-1]
	key := blockKey{seg: segKey{si.CRC32, si.Size}, off: bi.Off}
	rows, cached := it.s.blocks.get(key)
	if cached {
		it.stats.CacheHits++
	} else {
		if it.s.blocks != nil {
			it.stats.CacheMisses++
		}
		if it.file == nil {
			f, err := it.s.openSegmentFile(si.Name)
			if err != nil {
				return err
			}
			it.file = f
		}
		raw, err := readBlockRaw(it.file, bi)
		if err != nil {
			return err
		}
		rows, err = decodeRows(raw, bi.Kind)
		if err != nil {
			return err
		}
		it.s.blocks.put(key, rows, int64(len(raw)))
	}
	it.buf = it.buf[:0]
	it.bufPos = 0
	for _, r := range rows {
		if it.matchRow(r) {
			it.buf = append(it.buf, r)
		}
	}
	return nil
}

// decodeRows materialises every row of a decompressed block body.
func decodeRows(raw []byte, kind Kind) ([]Row, error) {
	var rows []Row
	switch kind {
	case KindCaptures:
		err := decodeCaptureBlock(raw, func(c CaptureRow, slice int) error {
			rows = append(rows, Row{Kind: KindCaptures, Slice: slice, Capture: c})
			return nil
		})
		return rows, err
	case KindResults:
		err := decodeResultBlock(raw, func(res *zgrab.Result, slice int) error {
			rows = append(rows, Row{Kind: KindResults, Slice: slice, Result: res})
			return nil
		})
		return rows, err
	}
	return nil, errCorrupt
}

// Next advances to the next matching row.
func (it *Iter) Next() bool {
	if it.err != nil {
		return false
	}
	for {
		if it.bufPos < len(it.buf) {
			it.row = it.buf[it.bufPos]
			it.bufPos++
			return true
		}
		if it.cur == nil || it.blkIdx >= len(it.cur.blocks) {
			if !it.nextSegment() {
				it.Close()
				return false
			}
			continue
		}
		bi := it.cur.blocks[it.blkIdx]
		it.blkIdx++
		if it.skipBlock(bi) {
			it.stats.BlocksSkipped++
			it.stats.BytesSkipped += bi.Len
			continue
		}
		it.stats.BlocksRead++
		it.stats.BytesRead += bi.Len
		if err := it.loadBlock(bi); err != nil {
			it.err = err
			it.Close()
			return false
		}
	}
}

// Row returns the current row after a true Next.
func (it *Iter) Row() Row { return it.row }

// Err reports the first error the scan hit, if any.
func (it *Iter) Err() error { return it.err }

// Stats returns what the scan read and skipped so far.
func (it *Iter) Stats() ScanStats { return it.stats }

func (it *Iter) closeFile() {
	if it.file != nil {
		it.file.Close()
		it.file = nil
	}
}

// Close releases the iterator and folds its stats into the store's
// metric families. Idempotent.
func (it *Iter) Close() error {
	it.closeFile()
	it.cur = nil
	it.segIdx = len(it.segs)
	it.buf = nil
	it.bufPos = 0
	if st, m := it.stats, it.s.met; m != nil && !it.flushed {
		m.BlocksRead.Add(st.BlocksRead)
		m.BlocksSkipped.Add(st.BlocksSkipped)
		m.BytesRead.Add(st.BytesRead)
		m.BytesSkipped.Add(st.BytesSkipped)
		m.BlockCacheHits.Add(st.CacheHits)
		m.BlockCacheMisses.Add(st.CacheMisses)
		it.flushed = true
	}
	return nil
}

// Results returns a pull source of result rows matching pred (Kind is
// forced to KindResults), shaped for analysis.NewDatasetStream: each
// call yields the next row in canonical order, then (nil, nil) at the
// end of the scan.
func (s *Store) Results(pred Pred) (next func() (*zgrab.Result, error), stats func() ScanStats) {
	pred.Kind = KindResults
	it := s.Scan(pred)
	next = func() (*zgrab.Result, error) {
		if it.Next() {
			return it.Row().Result, nil
		}
		return nil, it.Err()
	}
	return next, func() ScanStats { return it.Stats() }
}
