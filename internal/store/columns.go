package store

import (
	"encoding/binary"
	"errors"
	"net/netip"
)

// errCorrupt is the blanket decode failure: every malformed input —
// truncation, bad varint, impossible count — folds into it, so the
// fuzz target and the crash-recovery path have one error to classify.
var errCorrupt = errors.New("store: corrupt segment")

// colReader is a bounds-checked cursor over an in-memory byte slice.
// Every decode path goes through it; nothing indexes raw buffers.
type colReader struct {
	b   []byte
	off int
}

// rem is how many bytes remain.
func (r *colReader) rem() int { return len(r.b) - r.off }

func (r *colReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	r.off += n
	return v, nil
}

func (r *colReader) svarint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	r.off += n
	return v, nil
}

// take returns the next n bytes without copying.
func (r *colReader) take(n int) ([]byte, error) {
	if n < 0 || r.rem() < n {
		return nil, errCorrupt
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// dict assigns dense ids to strings in first-appearance order — the
// only order that is identical at every worker count, since rows reach
// the store in deterministic (shard/sequence) order.
type dict struct {
	idx  map[string]int
	vals []string
}

func (d *dict) id(s string) int {
	if i, ok := d.idx[s]; ok {
		return i
	}
	if d.idx == nil {
		d.idx = make(map[string]int)
	}
	i := len(d.vals)
	d.idx[s] = i
	d.vals = append(d.vals, s)
	return i
}

func (d *dict) reset() {
	clear(d.idx)
	d.vals = d.vals[:0]
}

// appendDict encodes a string table: uvarint count, then per entry
// uvarint length + bytes.
func appendDict(b []byte, vals []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	for _, v := range vals {
		b = binary.AppendUvarint(b, uint64(len(v)))
		b = append(b, v...)
	}
	return b
}

// readDict decodes a string table. The entry count is bounded by the
// remaining payload (each entry costs at least its length prefix), so
// hostile inputs cannot force huge allocations.
func readDict(r *colReader) ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.rem()) {
		return nil, errCorrupt
	}
	vals := make([]string, n)
	for i := range vals {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(int(l))
		if err != nil {
			return nil, err
		}
		vals[i] = string(b)
	}
	return vals, nil
}

// key48 packs an address's /48 prefix into a comparable integer — the
// key space of the per-block min/max index and the segment bloom
// filter.
func key48(a netip.Addr) uint64 {
	b := a.As16()
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

// prefixKeyRange maps a prefix of up to /48 onto the inclusive key48
// range it covers. Longer prefixes collapse to their containing /48
// (exact key, bloom-eligible).
func prefixKeyRange(p netip.Prefix) (lo, hi uint64) {
	lo = key48(p.Masked().Addr())
	bits := p.Bits()
	if bits >= 48 {
		return lo, lo
	}
	return lo, lo | (uint64(1)<<(48-bits) - 1)
}
