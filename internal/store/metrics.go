package store

import "ntpscan/internal/obs"

// Metrics are the store's observability families. Writer-side counters
// (segments, blocks, bytes written; compactions) advance at drain
// barriers, so they are deterministic per slice and ride checkpoint
// telemetry unchanged across worker counts and resume. Reader-side
// counters (blocks/bytes read and skipped) are the query engine's
// pruning evidence, folded in at Iter.Close.
type Metrics struct {
	SegmentsWritten   *obs.Counter
	SegmentsCompacted *obs.Counter
	Compactions       *obs.Counter
	BlocksWritten     *obs.Counter
	BytesWritten      *obs.Counter

	BlocksRead    *obs.Counter
	BlocksSkipped *obs.Counter
	BytesRead     *obs.Counter
	BytesSkipped  *obs.Counter
}

// NewMetrics registers (or re-binds, registries are get-or-create) the
// store families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		SegmentsWritten:   reg.NewCounter("store_segments_written_total", "Immutable segments written (L0 appends and L1 compactions)."),
		SegmentsCompacted: reg.NewCounter("store_segments_compacted_total", "L0 segments consumed by compaction."),
		Compactions:       reg.NewCounter("store_compactions_total", "Compaction merges run."),
		BlocksWritten:     reg.NewCounter("store_blocks_written_total", "Column blocks written into segments."),
		BytesWritten:      reg.NewCounter("store_bytes_written_total", "Segment bytes written (compressed, incl. footers)."),
		BlocksRead:        reg.NewCounter("store_blocks_read_total", "Column blocks read by query scans."),
		BlocksSkipped:     reg.NewCounter("store_blocks_skipped_total", "Column blocks skipped by predicate pushdown."),
		BytesRead:         reg.NewCounter("store_bytes_read_total", "Block bytes read by query scans."),
		BytesSkipped:      reg.NewCounter("store_bytes_skipped_total", "Block bytes skipped by predicate pushdown."),
	}
}
