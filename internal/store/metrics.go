package store

import "ntpscan/internal/obs"

// Metrics are the store's observability families. Writer-side counters
// (segments, blocks, bytes written; compactions) advance at drain
// barriers, so they are deterministic per slice and ride checkpoint
// telemetry unchanged across worker counts and resume. Reader-side
// counters (blocks/bytes read and skipped) are the query engine's
// pruning evidence, folded in at Iter.Close.
type Metrics struct {
	SegmentsWritten   *obs.Counter
	SegmentsCompacted *obs.Counter
	Compactions       *obs.Counter
	BlocksWritten     *obs.Counter
	BytesWritten      *obs.Counter

	BlocksRead    *obs.Counter
	BlocksSkipped *obs.Counter
	BytesRead     *obs.Counter
	BytesSkipped  *obs.Counter

	// Read-path cache families: the decoded-block LRU and the parsed-
	// footer (segment dictionary) cache that turn repeated selective
	// scans into a hot read path.
	BlockCacheHits      *obs.Counter
	BlockCacheMisses    *obs.Counter
	BlockCacheEvictions *obs.Counter
	BlockCacheBytes     *obs.Gauge
	FooterCacheHits     *obs.Counter
	FooterCacheMisses   *obs.Counter
}

// NewMetrics registers (or re-binds, registries are get-or-create) the
// store families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		SegmentsWritten:   reg.NewCounter("store_segments_written_total", "Immutable segments written (L0 appends and L1 compactions)."),
		SegmentsCompacted: reg.NewCounter("store_segments_compacted_total", "L0 segments consumed by compaction."),
		Compactions:       reg.NewCounter("store_compactions_total", "Compaction merges run."),
		BlocksWritten:     reg.NewCounter("store_blocks_written_total", "Column blocks written into segments."),
		BytesWritten:      reg.NewCounter("store_bytes_written_total", "Segment bytes written (compressed, incl. footers)."),
		BlocksRead:        reg.NewCounter("store_blocks_read_total", "Column blocks read by query scans."),
		BlocksSkipped:     reg.NewCounter("store_blocks_skipped_total", "Column blocks skipped by predicate pushdown."),
		BytesRead:         reg.NewCounter("store_bytes_read_total", "Block bytes read by query scans."),
		BytesSkipped:      reg.NewCounter("store_bytes_skipped_total", "Block bytes skipped by predicate pushdown."),

		BlockCacheHits:      reg.NewCounter("store_block_cache_hits_total", "Scanned blocks served from the decoded-block cache."),
		BlockCacheMisses:    reg.NewCounter("store_block_cache_misses_total", "Scanned blocks read from disk and inflated on a cache miss."),
		BlockCacheEvictions: reg.NewCounter("store_block_cache_evictions_total", "Decoded blocks evicted to hold the cache byte budget."),
		BlockCacheBytes:     reg.NewGauge("store_block_cache_bytes", "Decoded bytes currently resident in the block cache."),
		FooterCacheHits:     reg.NewCounter("store_footer_cache_hits_total", "Segment footers (indexes and dictionaries) served from cache."),
		FooterCacheMisses:   reg.NewCounter("store_footer_cache_misses_total", "Segment footers read and parsed from disk."),
	}
}
