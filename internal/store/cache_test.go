package store

import "testing"

// White-box unit tests for the cache edge branches the end-to-end
// concurrent tests don't reach: nil (disabled) receivers, oversized
// entries, duplicate inserts, and the footer generation clear.

func TestBlockCacheEdgeCases(t *testing.T) {
	var nilCache *blockCache
	if _, found := nilCache.get(blockKey{}); found {
		t.Error("nil cache reported a hit")
	}
	nilCache.put(blockKey{}, nil, 1) // must not panic
	if nilCache.bytes() != 0 {
		t.Error("nil cache reported bytes")
	}
	if newBlockCache(-1, nil) != nil {
		t.Error("negative budget did not disable the cache")
	}

	c := newBlockCache(100, nil)
	k1 := blockKey{seg: segKey{crc: 1, size: 10}, off: 0}

	// An entry costlier than the whole budget is not cached.
	c.put(k1, []Row{{Slice: 1}}, 101)
	if _, found := c.get(k1); found || c.bytes() != 0 {
		t.Errorf("oversized entry cached (bytes=%d)", c.bytes())
	}

	// A duplicate insert keeps the existing rows and charges nothing.
	c.put(k1, []Row{{Slice: 1}}, 40)
	c.put(k1, []Row{{Slice: 2}}, 40)
	rows, found := c.get(k1)
	if !found || len(rows) != 1 || rows[0].Slice != 1 {
		t.Errorf("duplicate insert replaced entry: %v", rows)
	}
	if c.bytes() != 40 {
		t.Errorf("bytes = %d, want 40", c.bytes())
	}

	// Filling past the budget evicts the LRU entry (k1: k2 was touched
	// by get, keeping it fresher).
	k2 := blockKey{seg: segKey{crc: 2, size: 20}, off: 0}
	k3 := blockKey{seg: segKey{crc: 3, size: 30}, off: 0}
	c.put(k2, nil, 40)
	c.get(k2)
	c.put(k3, nil, 40)
	if _, found := c.get(k1); found {
		t.Error("LRU entry survived eviction")
	}
	if _, found := c.get(k2); !found {
		t.Error("recently-used entry was evicted")
	}
	if c.bytes() != 80 {
		t.Errorf("bytes = %d, want 80", c.bytes())
	}
}

func TestFooterCacheEdgeCases(t *testing.T) {
	var nilCache *footerCache
	if nilCache.get(SegmentInfo{}) != nil {
		t.Error("nil cache reported a hit")
	}
	nilCache.put(SegmentInfo{}, nil) // must not panic
	if newFooterCache(-1) != nil {
		t.Error("negative bound did not disable the cache")
	}

	c := newFooterCache(2)
	s1 := SegmentInfo{CRC32: 1, Size: 10}
	s2 := SegmentInfo{CRC32: 2, Size: 20}
	s3 := SegmentInfo{CRC32: 3, Size: 30}
	seg := &segment{}
	c.put(s1, seg)
	c.put(s2, seg)
	if c.get(s1) != seg || c.get(s2) != seg {
		t.Error("cached footers not returned")
	}
	// Hitting the bound drops the whole generation; the new entry
	// lands in a fresh map.
	c.put(s3, seg)
	if c.get(s1) != nil || c.get(s2) != nil {
		t.Error("generation clear kept old entries")
	}
	if c.get(s3) != seg {
		t.Error("post-clear insert missing")
	}
}
