package store

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"ntpscan/internal/zgrab"
)

// A slice with more than 64 distinct modules overflows the 64-bit
// dictionary mask; overflowing ids poison the mask to all-ones, so
// those blocks are never pruned — and never wrongly pruned.
func TestDictMaskOverflowStaysCorrect(t *testing.T) {
	s, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]*zgrab.Result, 70)
	for i := range rows {
		r := testResult(i, 0)
		r.Module = fmt.Sprintf("mod%02d", i)
		rows[i] = r
	}
	if err := s.AppendSlice(0, nil, rows); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// A module past id 63 must still be found (its mask bits are the
	// poisoned all-ones, so the block is read and row-filtered).
	for _, mod := range []string{"mod00", "mod69"} {
		it := s.Scan(Pred{Modules: []string{mod}})
		n := 0
		for it.Next() {
			if it.Row().Result.Module != mod {
				t.Fatalf("module %s scan yielded %s", mod, it.Row().Result.Module)
			}
			n++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		it.Close()
		if n != 1 {
			t.Fatalf("module %s matched %d rows, want 1", mod, n)
		}
	}
}

// Wide prefixes (shorter than /48) still prune via the block key range
// even though the bloom filter (exact /48 keys) cannot help.
func TestWidePrefixQuery(t *testing.T) {
	s, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 4, 50)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	it := s.Scan(Pred{Kind: KindResults, Prefix: netip.MustParsePrefix("2001:db8::/32")})
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	it.Close()
	if n == 0 {
		t.Fatal("covering /32 matched nothing")
	}
	it = s.Scan(Pred{Kind: KindResults, Prefix: netip.MustParsePrefix("2002::/16")})
	for it.Next() {
		t.Fatal("disjoint /16 matched a row")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	st := it.Stats()
	it.Close()
	if st.BlocksRead != 0 {
		t.Fatalf("disjoint prefix read %d blocks", st.BlocksRead)
	}
}

// Corruption that lands after sealing (bit rot, torn overwrite) must
// surface as a scan error, not bad rows.
func TestScanReportsCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 4, 50)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	man := s.Manifest()
	path := filepath.Join(dir, man.Segments[0].Name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"footer-bit-flip": func(b []byte) []byte { b[len(b)-6] ^= 0xff; return b },
		"truncated":       func(b []byte) []byte { return b[:len(b)/3] },
		"tiny":            func(b []byte) []byte { return b[:4] },
	} {
		corrupt := mutate(append([]byte(nil), data...))
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		it := s.Scan(Pred{})
		for it.Next() {
		}
		if it.Err() == nil {
			t.Fatalf("%s: scan of corrupted segment reported no error", name)
		}
		it.Close()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	it := s.Scan(Pred{})
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() != nil || n == 0 {
		t.Fatalf("restored segment unreadable: n=%d err=%v", n, it.Err())
	}
	it.Close()
}
