package store

import "encoding/binary"

// bloom is a classic k-hash bloom filter over /48 prefix keys, sized
// at ~10 bits per distinct key (k=7, ~1% false positives). Hashes are
// derived from two splitmix64 finalisers — pure integer mixing, so the
// filter bytes are a deterministic function of the key set.
type bloom struct {
	k    uint32
	bits []uint64
}

// mix64 is the splitmix64 finaliser.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newBloom sizes a filter for the expected distinct-key count.
func newBloom(distinct int) *bloom {
	if distinct < 1 {
		distinct = 1
	}
	words := (distinct*10 + 63) / 64
	return &bloom{k: 7, bits: make([]uint64, words)}
}

func (f *bloom) hashes(key uint64) (h1, h2 uint64) {
	h1 = mix64(key ^ 0x9e3779b97f4a7c15)
	h2 = mix64(key^0xc2b2ae3d27d4eb4f) | 1
	return h1, h2
}

func (f *bloom) add(key uint64) {
	h1, h2 := f.hashes(key)
	n := uint64(len(f.bits)) * 64
	for i := uint64(0); i < uint64(f.k); i++ {
		bit := (h1 + i*h2) % n
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (f *bloom) mayContain(key uint64) bool {
	if len(f.bits) == 0 {
		return false
	}
	h1, h2 := f.hashes(key)
	n := uint64(len(f.bits)) * 64
	for i := uint64(0); i < uint64(f.k); i++ {
		bit := (h1 + i*h2) % n
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// appendBloom encodes the filter: uvarint k, uvarint word count, then
// the words little-endian.
func appendBloom(b []byte, f *bloom) []byte {
	b = binary.AppendUvarint(b, uint64(f.k))
	b = binary.AppendUvarint(b, uint64(len(f.bits)))
	for _, w := range f.bits {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// readBloom decodes a filter, bounding both parameters by what the
// remaining payload can actually hold.
func readBloom(r *colReader) (*bloom, error) {
	k, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	words, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if k == 0 || k > 32 || words > uint64(r.rem())/8 {
		return nil, errCorrupt
	}
	f := &bloom{k: uint32(k), bits: make([]uint64, words)}
	for i := range f.bits {
		b, err := r.take(8)
		if err != nil {
			return nil, err
		}
		f.bits[i] = binary.LittleEndian.Uint64(b)
	}
	return f, nil
}
