package store

import (
	"os"
	"path/filepath"
	"testing"

	"ntpscan/internal/zgrab"
)

// AppendResults is the unsliced ingestion surface (standalone v6scan
// runs): each call lands on the next synthetic slice, so segments stay
// ordered and the usual query machinery applies.
func TestAppendResultsAutoSlice(t *testing.T) {
	s, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 3; batch++ {
		rows := make([]*zgrab.Result, 10)
		for i := range rows {
			rows[i] = testResult(batch*10+i, batch)
		}
		if err := s.AppendResults(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	man := s.Manifest()
	if len(man.Segments) != 3 {
		t.Fatalf("3 batches produced %d segments", len(man.Segments))
	}
	for i, si := range man.Segments {
		if si.SliceLo != i || si.SliceHi != i {
			t.Fatalf("batch %d landed on slices [%d,%d]", i, si.SliceLo, si.SliceHi)
		}
	}
	it := s.Scan(Pred{Kind: KindResults})
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	it.Close()
	if n != 30 {
		t.Fatalf("scanned %d rows, want 30", n)
	}
}

func TestKindString(t *testing.T) {
	if KindCaptures.String() != "captures" || KindResults.String() != "results" {
		t.Fatalf("kind names: %s/%s", KindCaptures, KindResults)
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must still print")
	}
}

func TestOpenRejectsFilePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a plain file as a store directory")
	}
}
