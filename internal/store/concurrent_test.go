package store

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"

	"ntpscan/internal/obs"
	"ntpscan/internal/zgrab"
)

// appendOne appends one full slice of rowsPer rows, sharing the row
// generators with fillStore.
func appendOne(t testing.TB, s *Store, slice, rowsPer int) {
	t.Helper()
	caps := make([]CaptureRow, 0, rowsPer)
	results := make([]*zgrab.Result, 0, rowsPer)
	for i := 0; i < rowsPer; i++ {
		caps = append(caps, testCapture(slice*rowsPer+i))
		results = append(results, testResult(slice*rowsPer+i, slice))
	}
	if err := s.AppendSlice(slice, caps, results); err != nil {
		t.Errorf("append slice %d: %v", slice, err)
	}
}

// TestScanWhileAppendAndCompact runs readers concurrently with the
// writer: AppendSlice commits whole slices through an atomic manifest
// swap and compaction retires inputs only after the merged L1 segment
// is durable, so every Scan snapshot must observe an integral number of
// complete slices — never a torn one — while compactions churn the
// directory underneath. Run under -race this is also the data-race
// oracle for the one-writer/many-readers contract.
func TestScanWhileAppendAndCompact(t *testing.T) {
	const (
		nSlices = 24
		rowsPer = 120
		readers = 4
	)
	s, err := Open(t.TempDir(), Options{CompactEvery: 4, BlockCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	preds := []Pred{
		{},
		{Kind: KindResults},
		{Kind: KindResults, Modules: []string{"ssh"}},
		{Kind: KindCaptures, Vantages: []string{"DE"}},
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastFull int64 = -1
			for !done.Load() {
				// Full result scans must always see whole slices.
				it := s.Scan(Pred{Kind: KindResults})
				var n int64
				for it.Next() {
					n++
				}
				if err := it.Err(); err != nil {
					t.Errorf("reader %d: scan: %v", r, err)
					return
				}
				if n%rowsPer != 0 {
					t.Errorf("reader %d: saw %d result rows, not a multiple of %d (torn slice)", r, n, rowsPer)
					return
				}
				if n < lastFull {
					t.Errorf("reader %d: row count went backwards: %d -> %d", r, lastFull, n)
					return
				}
				lastFull = n

				// Selective scans exercise pushdown + cache sharing.
				p := preds[r%len(preds)]
				it = s.Scan(p)
				for it.Next() {
				}
				if err := it.Err(); err != nil {
					t.Errorf("reader %d: selective scan: %v", r, err)
					return
				}
			}
		}(r)
	}

	for sl := 0; sl < nSlices; sl++ {
		appendOne(t, s, sl, rowsPer)
	}
	done.Store(true)
	wg.Wait()

	var n int
	next, _ := s.Results(Pred{})
	for {
		r, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
		n++
	}
	if n != nSlices*rowsPer {
		t.Fatalf("final scan saw %d results, want %d", n, nSlices*rowsPer)
	}
}

// TestIterAcrossCompactionRetire holds open iterators across a
// compaction that retires every segment in their snapshot. An iterator
// created before the compaction must still read its full point-in-time
// snapshot afterwards: segments it has already opened stay readable
// through the held descriptor, and segments it has not opened yet are
// found under their .retired names.
func TestIterAcrossCompactionRetire(t *testing.T) {
	const rowsPer = 150
	s, err := Open(t.TempDir(), Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}

	for sl := 0; sl < 3; sl++ {
		appendOne(t, s, sl, rowsPer)
	}

	// cold: snapshot taken, no segment opened yet.
	cold := s.Scan(Pred{Kind: KindResults})
	// hot: advanced partway into the first segment, holding its file.
	hot := s.Scan(Pred{Kind: KindResults})
	hotN := 0
	for hotN < rowsPer/2 && hot.Next() {
		hotN++
	}
	if err := hot.Err(); err != nil {
		t.Fatal(err)
	}

	// Slice 3 triggers compaction at (3+1)%4 == 0: all four L0 segments
	// are merged into one L1 segment and renamed *.retired.
	appendOne(t, s, 3, rowsPer)
	man := s.Manifest()
	if len(man.Segments) != 1 || man.Segments[0].Level != 1 {
		t.Fatalf("expected one L1 segment after compaction, got %+v", man.Segments)
	}

	for _, tc := range []struct {
		name string
		it   *Iter
		got  int
	}{{"cold", cold, 0}, {"hot", hot, hotN}} {
		n := tc.got
		for tc.it.Next() {
			n++
		}
		if err := tc.it.Err(); err != nil {
			t.Fatalf("%s iterator across compaction: %v", tc.name, err)
		}
		if n != 3*rowsPer {
			t.Fatalf("%s iterator saw %d rows, want %d (snapshot of 3 slices)", tc.name, n, 3*rowsPer)
		}
	}

	// A post-compaction scan sees all four slices from the L1 segment,
	// and Seal's GC of the retired files doesn't disturb it.
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	it := s.Scan(Pred{Kind: KindResults})
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 4*rowsPer {
		t.Fatalf("post-seal scan saw %d rows, want %d", n, 4*rowsPer)
	}
}

// TestBlockCacheAccounting checks the hit/miss bookkeeping: a cold
// scan misses every block it visits, a repeat of the same scan is
// served entirely from cache, and the footer cache absorbs the
// re-open of segment indexes/dictionaries across Scan calls.
func TestBlockCacheAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 4, 300)

	scan := func() (rows int64, st ScanStats) {
		it := s.Scan(Pred{Kind: KindResults, Modules: []string{"http"}})
		for it.Next() {
			rows++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		st = it.Stats()
		it.Close()
		return rows, st
	}

	rows1, st1 := scan()
	if st1.CacheMisses == 0 || st1.CacheMisses != st1.BlocksRead {
		t.Fatalf("cold scan: want all %d visited blocks to miss, got misses=%d hits=%d",
			st1.BlocksRead, st1.CacheMisses, st1.CacheHits)
	}
	if st1.CacheHits != 0 {
		t.Fatalf("cold scan reported %d hits", st1.CacheHits)
	}

	rows2, st2 := scan()
	if rows2 != rows1 {
		t.Fatalf("warm scan rows %d != cold rows %d", rows2, rows1)
	}
	if st2.CacheMisses != 0 || st2.CacheHits != st1.BlocksRead {
		t.Fatalf("warm scan: want %d hits 0 misses, got hits=%d misses=%d",
			st1.BlocksRead, st2.CacheHits, st2.CacheMisses)
	}

	m := s.met
	if got := m.BlockCacheHits.Value(); got != st2.CacheHits {
		t.Fatalf("BlockCacheHits metric = %d, want %d", got, st2.CacheHits)
	}
	if got := m.BlockCacheMisses.Value(); got != st1.CacheMisses {
		t.Fatalf("BlockCacheMisses metric = %d, want %d", got, st1.CacheMisses)
	}
	if m.BlockCacheBytes.Value() <= 0 {
		t.Fatal("BlockCacheBytes gauge not advanced")
	}
	// The second scan re-visited the same segments: every footer after
	// the first visit comes from the footer cache.
	if m.FooterCacheHits.Value() < int64(st2.Segments) {
		t.Fatalf("FooterCacheHits = %d, want >= %d", m.FooterCacheHits.Value(), st2.Segments)
	}
}

// TestBlockCacheDisabled verifies negative budgets turn both caches
// off: scans stay correct and report no cache traffic at all.
func TestBlockCacheDisabled(t *testing.T) {
	s, err := Open(t.TempDir(), Options{BlockCacheBytes: -1, FooterCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 3, 200)

	for round := 0; round < 2; round++ {
		it := s.Scan(Pred{})
		var n int64
		for it.Next() {
			n++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		st := it.Stats()
		if st.CacheHits != 0 || st.CacheMisses != 0 {
			t.Fatalf("round %d: disabled cache reported hits=%d misses=%d", round, st.CacheHits, st.CacheMisses)
		}
		if n != 2*3*200 {
			t.Fatalf("round %d: saw %d rows, want %d", round, n, 2*3*200)
		}
	}
}

// TestBlockCacheEviction pins a tiny byte budget and checks the LRU
// holds it: the resident footprint never exceeds the budget and the
// eviction counter advances once the working set overflows.
func TestBlockCacheEviction(t *testing.T) {
	reg := obs.NewRegistry()
	const budget = 16 << 10
	s, err := Open(t.TempDir(), Options{Obs: reg, BlockCacheBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 6, 400)

	for round := 0; round < 2; round++ {
		it := s.Scan(Pred{})
		for it.Next() {
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.blocks.bytes(); got > budget {
		t.Fatalf("cache footprint %d exceeds budget %d", got, budget)
	}
	m := s.met
	if m.BlockCacheEvictions.Value() == 0 {
		t.Fatal("expected evictions under a 16KiB budget")
	}
	if got := m.BlockCacheBytes.Value(); got != s.blocks.bytes() {
		t.Fatalf("BlockCacheBytes gauge %d != footprint %d", got, s.blocks.bytes())
	}
}

// TestPrefixScanWhileWriting pins the /48-exact pushdown path (bloom +
// key range) against a concurrent writer, since its per-segment state
// is computed from cached footers.
func TestPrefixScanWhileWriting(t *testing.T) {
	s, err := Open(t.TempDir(), Options{CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}

	// testAddr varies bytes 4-5 with i, so /48 = 2001:db8:xx00::/48.
	pfx := netip.PrefixFrom(testAddr(7), 48).Masked()

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			it := s.Scan(Pred{Prefix: pfx})
			for it.Next() {
				for _, a := range []netip.Addr{it.Row().Capture.Addr, addrOf(it.Row())} {
					if a.IsValid() && !pfx.Contains(a) {
						t.Errorf("prefix scan leaked %s outside %s", a, pfx)
						return
					}
				}
			}
			if err := it.Err(); err != nil {
				t.Errorf("prefix scan: %v", err)
				return
			}
		}
	}()
	for sl := 0; sl < 12; sl++ {
		appendOne(t, s, sl, 100)
	}
	done.Store(true)
	wg.Wait()
}

func addrOf(r Row) netip.Addr {
	if r.Kind == KindResults {
		return r.Result.IP
	}
	return r.Capture.Addr
}
