package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ntpscan/internal/zgrab"
)

// seedSegment builds a small valid segment image covering both row
// kinds, multi-slice rows, and every column type — the canonical
// corpus entry the fuzzer mutates from.
func seedSegment(tb testing.TB, nCaps, nRes int) []byte {
	sb := newSegBuilder()
	for i := 0; i < nCaps; i++ {
		sb.addCapture(testCapture(i), i%3)
	}
	sb.flushCaptures()
	for i := 0; i < nRes; i++ {
		if err := sb.addResult(testResult(i, i%3), i%3); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sb.flushResults(); err != nil {
		tb.Fatal(err)
	}
	data, _, err := sb.finish()
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzSegmentDecode hardens the segment footer and block decoders:
// arbitrary bytes must either fail with an error or decode cleanly —
// never panic, never over-allocate — and anything that decodes must
// survive a re-encode/re-decode round trip with its row streams
// intact. This is the boundary crash recovery crosses when it reopens
// a store after a torn write.
func FuzzSegmentDecode(f *testing.F) {
	full := seedSegment(f, 24, 24)
	f.Add(full)
	f.Add(seedSegment(f, 1, 0))
	f.Add(seedSegment(f, 0, 3))
	f.Add(full[:len(full)/2])     // truncated tail
	f.Add([]byte(segMagic))       // header only
	f.Add([]byte("not a segment"))
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		type capRow struct {
			c     CaptureRow
			slice int
		}
		type resRow struct {
			j     string
			slice int
		}
		var caps []capRow
		var results []resRow
		sane := true
		err := DecodeSegment(data,
			func(c CaptureRow, slice int) error {
				if slice < 0 || slice > 1<<20 {
					sane = false
				}
				caps = append(caps, capRow{c, slice})
				return nil
			},
			func(r *zgrab.Result, slice int) error {
				if slice < 0 || slice > 1<<20 {
					sane = false
				}
				b, err := json.Marshal(r)
				if err != nil {
					return err
				}
				results = append(results, resRow{string(b), slice})
				return nil
			})
		if err != nil || !sane {
			// Rejected (or decoded rows outside the writer's domain —
			// adversarial but well-formed inputs the builder can't
			// round-trip). Either way: no panic is the contract.
			return
		}
		// Accepted inputs must round-trip through the builder.
		sb := newSegBuilder()
		for _, cr := range caps {
			sb.addCapture(cr.c, cr.slice)
		}
		sb.flushCaptures()
		for _, rr := range results {
			r := &zgrab.Result{}
			if err := json.Unmarshal([]byte(rr.j), r); err != nil {
				t.Fatalf("re-decode row: %v", err)
			}
			if err := sb.addResult(r, rr.slice); err != nil {
				t.Fatalf("re-add row: %v", err)
			}
		}
		if err := sb.flushResults(); err != nil {
			t.Fatalf("re-flush: %v", err)
		}
		rebuilt, _, err := sb.finish()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var caps2 []capRow
		var results2 []resRow
		err = DecodeSegment(rebuilt,
			func(c CaptureRow, slice int) error {
				caps2 = append(caps2, capRow{c, slice})
				return nil
			},
			func(r *zgrab.Result, slice int) error {
				b, err := json.Marshal(r)
				if err != nil {
					return err
				}
				results2 = append(results2, resRow{string(b), slice})
				return nil
			})
		if err != nil {
			t.Fatalf("re-encoded segment failed to decode: %v", err)
		}
		if len(caps2) != len(caps) || len(results2) != len(results) {
			t.Fatalf("round trip changed row counts: %d/%d -> %d/%d",
				len(caps), len(results), len(caps2), len(results2))
		}
		for i := range caps {
			if caps[i] != caps2[i] {
				t.Fatalf("capture row %d changed across round trip", i)
			}
		}
		for i := range results {
			if results[i] != results2[i] {
				t.Fatalf("result row %d changed across round trip", i)
			}
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzSegmentDecode. Skipped unless explicitly asked
// for:
//
//	NTPSCAN_REGEN_FUZZ_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/store/
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("NTPSCAN_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set NTPSCAN_REGEN_FUZZ_CORPUS=1 to rewrite the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	full := seedSegment(t, 24, 24)
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x40
	entries := map[string][]byte{
		"seed-full":        full,
		"seed-captures":    seedSegment(t, 5, 0),
		"seed-results":     seedSegment(t, 0, 5),
		"seed-truncated":   full[:len(full)/2],
		"seed-magic-only":  []byte(segMagic),
		"seed-flipped-bit": flipped,
	}
	for name, data := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
