package store

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ntpscan/internal/zgrab"
)

// Bench workload: benchSlices slices of benchRows results each, the
// shape a campaign drains. The same rows feed the JSONL benchmarks so
// the two substrates are directly comparable (see BENCH_store.json).
const (
	benchSlices = 8
	benchRows   = 2000
)

func benchResults() [][]*zgrab.Result {
	out := make([][]*zgrab.Result, benchSlices)
	for sl := range out {
		rows := make([]*zgrab.Result, benchRows)
		for i := range rows {
			r := testResult(sl*benchRows+i, sl)
			// One module per slice (campaign drains are batch-shaped),
			// so block dictionary masks are selective and the module
			// scan below exercises real pushdown.
			r.Module = testMods[sl%len(testMods)]
			rows[i] = r
		}
		out[sl] = rows
	}
	return out
}

func ingestStore(b testing.TB, dir string, slices [][]*zgrab.Result, compactEvery int) *Store {
	b.Helper()
	s, err := Open(dir, Options{CompactEvery: compactEvery})
	if err != nil {
		b.Fatal(err)
	}
	for sl, rows := range slices {
		if err := s.AppendSlice(sl, nil, rows); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		b.Fatal(err)
	}
	return s
}

func ingestJSONL(b testing.TB, path string, slices [][]*zgrab.Result) {
	b.Helper()
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for _, rows := range slices {
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreIngest measures columnar segment writes, one per drain
// slice, compaction disabled.
func BenchmarkStoreIngest(b *testing.B) {
	slices := benchResults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		ingestStore(b, dir, slices, -1)
	}
}

// BenchmarkStoreIngestCompact is ingest plus the periodic merge: the
// difference against BenchmarkStoreIngest is the compaction cost.
func BenchmarkStoreIngestCompact(b *testing.B) {
	slices := benchResults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		ingestStore(b, dir, slices, 4)
	}
}

// BenchmarkJSONLIngest writes the same rows as flat JSONL, the legacy
// sink.
func BenchmarkJSONLIngest(b *testing.B) {
	slices := benchResults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		path := filepath.Join(b.TempDir(), "bench.jsonl")
		b.StartTimer()
		ingestJSONL(b, path, slices)
	}
}

// BenchmarkStoreScanAll streams every result row back out of the
// store.
func BenchmarkStoreScanAll(b *testing.B) {
	s := ingestStore(b, b.TempDir(), benchResults(), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		it := s.Scan(Pred{Kind: KindResults})
		for it.Next() {
			n++
		}
		if it.Err() != nil {
			b.Fatal(it.Err())
		}
		if n != benchSlices*benchRows {
			b.Fatalf("scanned %d rows", n)
		}
	}
}

// BenchmarkStoreScanModule is the selective query: one module out of
// four over the L0 layout, where per-block dictionary masks skip the
// three-quarters of blocks carrying other modules.
func BenchmarkStoreScanModule(b *testing.B) {
	s := ingestStore(b, b.TempDir(), benchResults(), -1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		it := s.Scan(Pred{Modules: []string{testMods[0]}})
		for it.Next() {
			n++
		}
		if it.Err() != nil {
			b.Fatal(it.Err())
		}
		if want := benchSlices / len(testMods) * benchRows; n != want {
			b.Fatalf("module scan matched %d rows, want %d", n, want)
		}
	}
}

// BenchmarkJSONLScan re-parses the flat file, the legacy query path —
// every byte read and decoded regardless of the question asked.
func BenchmarkJSONLScan(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.jsonl")
	ingestJSONL(b, path, benchResults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		err = zgrab.DecodeJSONL(bufio.NewReaderSize(f, 1<<20), func(*zgrab.Result) error {
			n++
			return nil
		})
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		if n != benchSlices*benchRows {
			b.Fatalf("scanned %d rows", n)
		}
	}
}
