// Package store is the campaign's embedded columnar result store: an
// append-only segment log that replaces raw JSONL as the durable
// substrate for capture events and zgrab scan results, while keeping
// JSONL export as a compatibility view (ExportJSONL).
//
// # On-disk layout
//
// A store is a directory:
//
//	dir/
//	  MANIFEST.json            current live segment list (atomic rename)
//	  seg-L0-00042.seg         one immutable L0 segment per drain slice
//	  seg-L1-00040-00047.seg   compacted L1 segment (merged L0 run)
//	  *.seg.retired            compaction inputs, kept until Seal/ResetTo
//
// Each segment file is
//
//	"NTPSSEG1" | block* | footer | trailer
//
// where every block is a length-prefixed, CRC'd, flate-compressed group
// of column vectors ([u32 payloadLen][u32 crc32c][flate payload]), the
// footer carries one sparse index entry per block (kind, slice range,
// row count, vantage/module bitmask, min//48,max//48 key range) plus a
// segment-level bloom filter over /48 prefixes, and the trailer is
// [u32 footerLen][u32 footerCRC]["NTPSFTR1"]. See segment.go for the
// byte-exact format and DESIGN.md "Storage" for the invariants.
//
// # Determinism and crash consistency
//
// Segment bytes are a pure function of the rows appended: dictionaries
// are built in first-appearance order, all integer columns are
// delta/varint coded in row order, and nothing wall-clock-dependent is
// written. A campaign therefore produces bit-identical store
// directories at any worker count, and a resumed campaign (ResetTo a
// checkpointed Manifest) rewrites exactly the segments the
// uninterrupted run would have.
//
// Writes are torn-write safe: a segment is staged to a .tmp file and
// renamed into place before the manifest is rewritten, so a crash
// leaves either a stray .tmp, a sealed-but-unmanifested .seg, or a
// stale manifest — Open drops all three forms of unsealed tail and
// recovers the longest valid manifest prefix. Compaction retires its
// inputs (rename to .retired) instead of deleting them, so ResetTo can
// rewind to a checkpoint taken before a compaction that consumed its
// segments; Seal garbage-collects retired files once a run completes.
package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ntpscan/internal/obs"
	"ntpscan/internal/zgrab"
)

// manifestName is the store's durable segment list.
const manifestName = "MANIFEST.json"

// castagnoli is the CRC-32C table shared by blocks, footers, and
// whole-file checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcOf is the whole-buffer CRC-32C.
func crcOf(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// Options tunes a store.
type Options struct {
	// Obs, when non-nil, registers the store's metric families there
	// (segments/blocks/bytes written, compactions, blocks read and
	// skipped). Nil disables metrics.
	Obs *obs.Registry
	// CompactEvery is the compaction cadence K: at every slice s with
	// (s+1)%K == 0 the pending L0 segments are merged into one L1
	// segment. 0 uses the default (8); negative disables compaction.
	CompactEvery int
	// BlockCacheBytes bounds the decoded-block LRU shared by every scan
	// on this store: each visited block's rows are decoded once and kept
	// (keyed by segment content identity, so compaction and ResetTo need
	// no invalidation) until the budget — accounted in decompressed
	// block-body bytes — fills. Cached rows are shared read-only across
	// scans. 0 uses DefaultBlockCacheBytes; negative disables the cache.
	BlockCacheBytes int64
	// FooterCacheEntries bounds the parsed-footer cache (block indexes,
	// segment dictionaries, bloom filters), which otherwise re-reads and
	// re-parses every visited segment's footer per Scan. 0 uses
	// DefaultFooterCacheEntries; negative disables the cache.
	FooterCacheEntries int
}

// DefaultCompactEvery is the compaction cadence when Options leaves it
// zero: with the campaign's 96 collection slices it yields 12 L1
// segments and no residual L0 tail.
const DefaultCompactEvery = 8

func (o *Options) compactEvery() int {
	switch {
	case o.CompactEvery < 0:
		return 0
	case o.CompactEvery == 0:
		return DefaultCompactEvery
	}
	return o.CompactEvery
}

// SegmentInfo is one live segment's manifest entry. CRC32 covers the
// whole file, so a manifest pins the exact bytes of every segment it
// lists.
type SegmentInfo struct {
	Name    string `json:"name"`
	Level   int    `json:"level"`
	SliceLo int    `json:"slice_lo"`
	SliceHi int    `json:"slice_hi"`
	Rows    int64  `json:"rows"`
	Size    int64  `json:"size"`
	CRC32   uint32 `json:"crc32"`
}

// Manifest is the store's durable state: the ordered live segment
// list. It is plain data — campaign checkpoints embed it (replacing
// the fragile byte offset JSONL resume relied on) and ResetTo rewinds
// a directory to it.
type Manifest struct {
	Version  int           `json:"version"`
	Segments []SegmentInfo `json:"segments,omitempty"`
}

// clone deep-copies the manifest.
func (m Manifest) clone() Manifest {
	out := Manifest{Version: m.Version}
	out.Segments = append([]SegmentInfo(nil), m.Segments...)
	return out
}

// Store is an open store directory. One writer (the campaign's drain
// barrier) and any number of concurrent readers are safe: mutating
// methods hold the write lock while readers snapshot the manifest under
// the read lock, and a running iterator works against its snapshot —
// segments a compaction retires mid-query are reopened through their
// .retired name (see openSegmentFile). Concurrent writers are not
// supported: appends are strictly ordered, like the collection slices
// that feed them.
type Store struct {
	dir string
	opt Options
	met *Metrics

	// mu guards man and nextSlice. Writers (AppendSlice, compaction,
	// ResetTo, Seal) take it exclusively; Scan/Manifest/Rows take the
	// read side just long enough to snapshot the segment list.
	mu  sync.RWMutex
	man Manifest
	// nextSlice is the lowest slice id AppendSlice accepts — appends
	// are strictly ordered, like the collection slices that feed them.
	nextSlice int

	// feet and blocks are the read path's caches (see cache.go). Either
	// may be nil (disabled).
	feet   *footerCache
	blocks *blockCache
}

// Open opens (creating if needed) the store directory and recovers it
// to a consistent state: manifest entries are validated against the
// files on disk (size and whole-file CRC), the manifest is truncated
// at the first invalid entry, and unsealed strays (.tmp files and
// segments the manifest does not list) are deleted. Retired compaction
// inputs are kept for ResetTo.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opt: opt}
	if opt.Obs != nil {
		s.met = NewMetrics(opt.Obs)
	}
	s.feet = newFooterCache(opt.FooterCacheEntries)
	s.blocks = newBlockCache(opt.BlockCacheBytes, s.met)
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover loads MANIFEST.json, keeps its longest valid prefix, and
// removes unsealed strays.
func (s *Store) recover() error {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	switch {
	case os.IsNotExist(err):
		s.man = Manifest{Version: 1}
	case err != nil:
		return fmt.Errorf("store: %w", err)
	default:
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			// A torn manifest write cannot happen (atomic rename), but a
			// corrupted file must not brick the directory: start empty.
			m = Manifest{Version: 1}
		}
		kept := m.Segments[:0]
		for _, si := range m.Segments {
			if s.restoreSegment(si) != nil {
				break // truncate at the first invalid entry
			}
			kept = append(kept, si)
		}
		m.Segments = kept
		if m.Version == 0 {
			m.Version = 1
		}
		s.man = m
	}
	live := make(map[string]bool, len(s.man.Segments))
	for _, si := range s.man.Segments {
		live[si.Name] = true
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case name == manifestName, strings.HasSuffix(name, retiredSuffix):
			// Keep: the manifest, and retired compaction inputs (ResetTo
			// may need to resurrect them).
		case strings.HasSuffix(name, ".seg") && live[name]:
			// Sealed and manifested.
		default:
			// Unsealed tail: a staged .tmp, a sealed segment the crash
			// beat the manifest write to, or a truncated entry dropped
			// above. All are rewritten by the resumed run.
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	s.nextSlice = s.man.maxSliceHi() + 1
	return s.persistManifest()
}

// maxSliceHi is the highest slice any live segment covers (-1 when
// empty).
func (m Manifest) maxSliceHi() int {
	hi := -1
	for _, si := range m.Segments {
		if si.SliceHi > hi {
			hi = si.SliceHi
		}
	}
	return hi
}

// restoreSegment makes a manifest entry live again: if its file is
// missing but a retired copy exists (a crash landed between a
// compaction retiring its inputs and committing the merged manifest),
// the retired copy is renamed back, then the entry is validated.
func (s *Store) restoreSegment(si SegmentInfo) error {
	path := filepath.Join(s.dir, si.Name)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if err := os.Rename(path+retiredSuffix, path); err != nil {
			return fmt.Errorf("store: segment %s is gone (%w)", si.Name, err)
		}
	}
	return s.validSegment(si)
}

// validSegment verifies a manifest entry against its file: size and
// whole-file CRC must match.
func (s *Store) validSegment(si SegmentInfo) error {
	data, err := os.ReadFile(filepath.Join(s.dir, si.Name))
	if err != nil {
		return fmt.Errorf("store: segment %s: %w", si.Name, err)
	}
	if int64(len(data)) != si.Size {
		return fmt.Errorf("store: segment %s: size %d, manifest %d", si.Name, len(data), si.Size)
	}
	if crc := crc32.Checksum(data, castagnoli); crc != si.CRC32 {
		return fmt.Errorf("store: segment %s: crc %08x, manifest %08x", si.Name, crc, si.CRC32)
	}
	return nil
}

// Manifest returns a deep copy of the live segment list, suitable for
// embedding in a campaign checkpoint.
func (s *Store) Manifest() Manifest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.clone()
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// AppendSlice writes one immutable L0 segment holding the slice's
// capture events and scan results (in that block order), then runs the
// compaction policy. Empty slices write no segment but still drive
// compaction, so the segment layout is a pure function of the appended
// data. Slices must arrive in strictly increasing order.
func (s *Store) AppendSlice(slice int, caps []CaptureRow, results []*zgrab.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendSlice(slice, caps, results)
}

// appendSlice is AppendSlice with s.mu held.
func (s *Store) appendSlice(slice int, caps []CaptureRow, results []*zgrab.Result) error {
	if slice < s.nextSlice {
		return fmt.Errorf("store: slice %d appended out of order (next %d)", slice, s.nextSlice)
	}
	s.nextSlice = slice + 1
	if len(caps) > 0 || len(results) > 0 {
		sb := newSegBuilder()
		for _, c := range caps {
			sb.addCapture(c, slice)
		}
		sb.flushCaptures()
		for _, r := range results {
			if err := sb.addResult(r, slice); err != nil {
				return err
			}
		}
		if err := sb.flushResults(); err != nil {
			return err
		}
		name := fmt.Sprintf("seg-L0-%05d.seg", slice)
		if err := s.writeSegment(name, 0, sb); err != nil {
			return err
		}
	}
	return s.maybeCompact(slice)
}

// AppendResults appends a batch of scan results outside a sliced
// campaign (e.g. a standalone v6scan run): each call becomes one
// segment on the next synthetic slice.
func (s *Store) AppendResults(results []*zgrab.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendSlice(s.nextSlice, nil, results)
}

// writeSegment finalises the builder, stages the file, renames it into
// place, and then commits it to the manifest — in that order, so a
// crash can only ever leave an unsealed tail.
func (s *Store) writeSegment(name string, level int, sb *segBuilder) error {
	data, rows, err := sb.finish()
	if err != nil {
		return err
	}
	if err := s.writeFileAtomic(name, data); err != nil {
		return err
	}
	si := SegmentInfo{
		Name:    name,
		Level:   level,
		SliceLo: sb.sliceLo,
		SliceHi: sb.sliceHi,
		Rows:    rows,
		Size:    int64(len(data)),
		CRC32:   crc32.Checksum(data, castagnoli),
	}
	s.man.Segments = append(s.man.Segments, si)
	sort.SliceStable(s.man.Segments, func(i, j int) bool {
		return s.man.Segments[i].SliceLo < s.man.Segments[j].SliceLo
	})
	if s.met != nil {
		s.met.SegmentsWritten.Inc()
		s.met.BlocksWritten.Add(int64(len(sb.blocks)))
		s.met.BytesWritten.Add(int64(len(data)))
	}
	return s.persistManifest()
}

// writeFileAtomic stages data to name.tmp and renames it into place.
func (s *Store) writeFileAtomic(name string, data []byte) error {
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// persistManifest rewrites MANIFEST.json atomically.
func (s *Store) persistManifest() error {
	data, err := json.Marshal(s.man)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.writeFileAtomic(manifestName, append(data, '\n'))
}

// ResetTo rewinds the directory to a checkpointed manifest: every
// listed segment is restored (resurrecting retired compaction inputs
// if needed) and re-validated, everything else — later segments,
// later compactions, leftover retired files — is deleted. After
// ResetTo the store accepts appends exactly as it did when the
// checkpoint was taken, so a resumed campaign reproduces the
// uninterrupted run's directory byte-for-byte.
func (s *Store) ResetTo(m Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, si := range m.Segments {
		// A segment consumed by a post-checkpoint compaction is
		// resurrected from its retired copy.
		if err := s.restoreSegment(si); err != nil {
			return fmt.Errorf("store: reset: %w", err)
		}
	}
	keep := make(map[string]bool, len(m.Segments)+1)
	keep[manifestName] = true
	for _, si := range m.Segments {
		keep[si.Name] = true
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range ents {
		if !keep[e.Name()] {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	s.man = m.clone()
	if s.man.Version == 0 {
		s.man.Version = 1
	}
	s.nextSlice = s.man.maxSliceHi() + 1
	return s.persistManifest()
}

// Seal marks the run complete: retired compaction inputs are garbage-
// collected (no checkpoint taken before this point will be resumed
// past a completed run). The store remains readable and appendable.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), retiredSuffix) {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	return nil
}

// Rows returns the total live row count by kind, from the manifest and
// footers (no block reads).
func (s *Store) Rows() (captures, results int64, err error) {
	s.mu.RLock()
	segs := append([]SegmentInfo(nil), s.man.Segments...)
	s.mu.RUnlock()
	for _, si := range segs {
		seg, _, err := s.openSegment(si)
		if err != nil {
			return 0, 0, err
		}
		for _, bi := range seg.blocks {
			switch bi.Kind {
			case KindCaptures:
				captures += int64(bi.Rows)
			case KindResults:
				results += int64(bi.Rows)
			}
		}
	}
	return captures, results, nil
}
