package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"io"
	"net/netip"
	"time"

	"ntpscan/internal/zgrab"
)

// Segment wire format (all varints are encoding/binary, u32/u64 are
// little-endian):
//
//	file    = magic "NTPSSEG1" | block* | footerBody | trailer
//	block   = u32 payloadLen | u32 crc32c(payload) | payload
//	payload = flate(blockBody)
//	trailer = u32 len(footerBody) | u32 crc32c(footerBody) | "NTPSFTR1"
//
//	footerBody = u8 version
//	           | uvarint nBlocks
//	           | blockIndex*          (kind, offset, length, rawLen,
//	                                   rows, sliceLo, sliceHi, u64 mask,
//	                                   min48, max48)
//	           | dict modules | dict vantages
//	           | bloom over /48 keys
//
// Capture block bodies hold columns (in order): slice (delta varint),
// addr (16B fixed), vantage (block-local dict index). Result block
// bodies hold: slice, ip (16B), module idx, port, time (delta varint
// unix-nanos), status idx, error idx, attempts, seq (delta varint),
// grabs (uvarint length + JSON payload per row). Dictionaries are
// block-local and precede the columns, so every block decodes in
// isolation — the property FuzzSegmentDecode leans on.
const (
	segMagic   = "NTPSSEG1"
	ftrMagic   = "NTPSFTR1"
	segVersion = 1

	// maxBlockRows bounds rows per block on both sides: the writer
	// chunks at it, and the decoder rejects larger claims before
	// allocating column scratch.
	maxBlockRows = 8192
	// maxRawBlock bounds a block's uncompressed size claim.
	maxRawBlock = 1 << 24

	// retiredSuffix marks compaction inputs kept for checkpoint rewind.
	retiredSuffix = ".retired"

	blockHeaderLen = 8
	trailerLen     = 16
)

// Kind discriminates row types.
type Kind uint8

// Row kinds.
const (
	KindCaptures Kind = 1
	KindResults  Kind = 2
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCaptures:
		return "captures"
	case KindResults:
		return "results"
	}
	return "unknown"
}

// CaptureRow is one capture event: a first-seen client address and the
// vantage country that captured it.
type CaptureRow struct {
	Addr    netip.Addr
	Vantage string
}

// blockIndex is one footer entry: everything the query engine needs to
// decide whether to read a block.
type blockIndex struct {
	Kind    Kind
	Off     int64
	Len     int64 // on-disk length including the 8-byte block header
	RawLen  int   // uncompressed body length
	Rows    int
	SliceLo int
	SliceHi int
	// Mask is a bitmask over the footer's module dict (result blocks)
	// or vantage dict (capture blocks). All-ones means "unprunable"
	// (dict overflowed 64 entries).
	Mask  uint64
	Min48 uint64
	Max48 uint64
}

// segBuilder accumulates rows and emits a complete segment image.
// Callers add captures (then flushCaptures) before results (then
// flushResults): capture blocks precede result blocks in every
// segment, which is the canonical row order the query engine returns.
type segBuilder struct {
	buf    []byte
	blocks []blockIndex
	mods   dict
	vans   dict
	keys   map[uint64]struct{}

	sliceLo, sliceHi int
	rows             int64

	capRows   []CaptureRow
	capSlices []int
	resRows   []*zgrab.Result
	resSlices []int

	body  []byte
	flBuf bytes.Buffer
	fl    *flate.Writer
	// block-local dicts, reset per block
	bdict1, bdict2, bdict3 dict
}

func newSegBuilder() *segBuilder {
	return &segBuilder{
		buf:     append(make([]byte, 0, 1<<16), segMagic...),
		keys:    make(map[uint64]struct{}),
		sliceLo: -1,
		sliceHi: -1,
	}
}

// noteRow folds a row's slice and address into the segment-level
// index state.
func (sb *segBuilder) noteRow(slice int, addr netip.Addr) {
	if sb.sliceLo < 0 || slice < sb.sliceLo {
		sb.sliceLo = slice
	}
	if slice > sb.sliceHi {
		sb.sliceHi = slice
	}
	sb.keys[key48(addr)] = struct{}{}
}

// maskBit maps a dict id onto the 64-bit pruning mask; overflowing
// dicts poison the mask to all-ones (never pruned, never wrong).
func maskBit(id int) uint64 {
	if id >= 64 {
		return ^uint64(0)
	}
	return 1 << uint(id)
}

// addCapture buffers one capture row, flushing a block at the chunk
// boundary.
func (sb *segBuilder) addCapture(c CaptureRow, slice int) {
	sb.capRows = append(sb.capRows, c)
	sb.capSlices = append(sb.capSlices, slice)
	if len(sb.capRows) >= maxBlockRows {
		sb.flushCaptures()
	}
}

// flushCaptures emits the buffered capture rows as one block.
func (sb *segBuilder) flushCaptures() {
	rows, slices := sb.capRows, sb.capSlices
	if len(rows) == 0 {
		return
	}
	sb.capRows, sb.capSlices = rows[:0], slices[:0]

	var mask uint64
	min48, max48 := ^uint64(0), uint64(0)
	vd := &sb.bdict1
	vd.reset()
	body := sb.body[:0]
	body = binary.AppendUvarint(body, uint64(len(rows)))

	// slice column
	prev := int64(0)
	for i, s := range slices {
		body = binary.AppendVarint(body, int64(s)-prev)
		prev = int64(s)
		sb.noteRow(s, rows[i].Addr)
	}
	// addr column
	for _, c := range rows {
		a := c.Addr.As16()
		body = append(body, a[:]...)
		k := key48(c.Addr)
		if k < min48 {
			min48 = k
		}
		if k > max48 {
			max48 = k
		}
	}
	// vantage dict + index column
	idxStart := len(body) // placeholder: dict must precede indexes
	_ = idxStart
	idxs := make([]int, len(rows))
	for i, c := range rows {
		id := vd.id(c.Vantage)
		idxs[i] = id
		mask |= maskBit(sb.vans.id(c.Vantage))
	}
	body = appendDict(body, vd.vals)
	for _, id := range idxs {
		body = binary.AppendUvarint(body, uint64(id))
	}
	sb.body = body
	sb.emitBlock(KindCaptures, body, len(rows), slices[0], slices[len(slices)-1], mask, min48, max48)
}

// addResult buffers one result row, flushing a block at the chunk
// boundary.
func (sb *segBuilder) addResult(r *zgrab.Result, slice int) error {
	sb.resRows = append(sb.resRows, r)
	sb.resSlices = append(sb.resSlices, slice)
	if len(sb.resRows) >= maxBlockRows {
		return sb.flushResults()
	}
	return nil
}

// flushResults emits the buffered result rows as one block.
func (sb *segBuilder) flushResults() error {
	rows, slices := sb.resRows, sb.resSlices
	if len(rows) == 0 {
		return nil
	}
	sb.resRows, sb.resSlices = rows[:0], slices[:0]

	var mask uint64
	min48, max48 := ^uint64(0), uint64(0)
	md, sd, ed := &sb.bdict1, &sb.bdict2, &sb.bdict3
	md.reset()
	sd.reset()
	ed.reset()
	body := sb.body[:0]
	body = binary.AppendUvarint(body, uint64(len(rows)))

	// slice column
	prev := int64(0)
	for i, s := range slices {
		body = binary.AppendVarint(body, int64(s)-prev)
		prev = int64(s)
		sb.noteRow(s, rows[i].IP)
	}
	// ip column
	for _, r := range rows {
		a := r.IP.As16()
		body = append(body, a[:]...)
		k := key48(r.IP)
		if k < min48 {
			min48 = k
		}
		if k > max48 {
			max48 = k
		}
	}
	// dicts (built in row order), then index columns
	modIdx := make([]int, len(rows))
	staIdx := make([]int, len(rows))
	errIdx := make([]int, len(rows))
	for i, r := range rows {
		modIdx[i] = md.id(r.Module)
		staIdx[i] = sd.id(string(r.Status))
		errIdx[i] = ed.id(r.Error)
		mask |= maskBit(sb.mods.id(r.Module))
	}
	body = appendDict(body, md.vals)
	body = appendDict(body, sd.vals)
	body = appendDict(body, ed.vals)
	for _, id := range modIdx {
		body = binary.AppendUvarint(body, uint64(id))
	}
	// port column
	for _, r := range rows {
		body = binary.AppendUvarint(body, uint64(r.Port))
	}
	// time column (delta unix-nanos)
	prev = 0
	for _, r := range rows {
		ns := r.Time.UnixNano()
		body = binary.AppendVarint(body, ns-prev)
		prev = ns
	}
	for _, id := range staIdx {
		body = binary.AppendUvarint(body, uint64(id))
	}
	for _, id := range errIdx {
		body = binary.AppendUvarint(body, uint64(id))
	}
	// attempts column
	for _, r := range rows {
		body = binary.AppendUvarint(body, uint64(r.Attempts))
	}
	// seq column (delta)
	prev = 0
	for _, r := range rows {
		body = binary.AppendVarint(body, r.Seq-prev)
		prev = r.Seq
	}
	// grabs column
	var scratch []byte
	for _, r := range rows {
		g, err := r.AppendGrabs(scratch[:0])
		if err != nil {
			return err
		}
		scratch = g
		body = binary.AppendUvarint(body, uint64(len(g)))
		body = append(body, g...)
	}
	sb.body = body
	sb.emitBlock(KindResults, body, len(rows), slices[0], slices[len(slices)-1], mask, min48, max48)
	return nil
}

// emitBlock compresses a body and appends the framed block to the
// file image.
func (sb *segBuilder) emitBlock(kind Kind, body []byte, rows, sliceLo, sliceHi int, mask, min48, max48 uint64) {
	off := int64(len(sb.buf))
	sb.flBuf.Reset()
	if sb.fl == nil {
		sb.fl, _ = flate.NewWriter(&sb.flBuf, flate.BestSpeed)
	} else {
		sb.fl.Reset(&sb.flBuf)
	}
	sb.fl.Write(body)
	sb.fl.Close()
	payload := sb.flBuf.Bytes()
	var hdr [blockHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	sb.buf = append(sb.buf, hdr[:]...)
	sb.buf = append(sb.buf, payload...)
	sb.blocks = append(sb.blocks, blockIndex{
		Kind: kind, Off: off, Len: int64(blockHeaderLen + len(payload)),
		RawLen: len(body), Rows: rows,
		SliceLo: sliceLo, SliceHi: sliceHi,
		Mask: mask, Min48: min48, Max48: max48,
	})
	sb.rows += int64(rows)
}

// finish flushes pending rows and appends the footer and trailer,
// returning the complete file image.
func (sb *segBuilder) finish() ([]byte, int64, error) {
	sb.flushCaptures()
	if err := sb.flushResults(); err != nil {
		return nil, 0, err
	}
	ftr := []byte{segVersion}
	ftr = binary.AppendUvarint(ftr, uint64(len(sb.blocks)))
	for _, bi := range sb.blocks {
		ftr = append(ftr, byte(bi.Kind))
		ftr = binary.AppendUvarint(ftr, uint64(bi.Off))
		ftr = binary.AppendUvarint(ftr, uint64(bi.Len))
		ftr = binary.AppendUvarint(ftr, uint64(bi.RawLen))
		ftr = binary.AppendUvarint(ftr, uint64(bi.Rows))
		ftr = binary.AppendUvarint(ftr, uint64(bi.SliceLo))
		ftr = binary.AppendUvarint(ftr, uint64(bi.SliceHi))
		ftr = binary.LittleEndian.AppendUint64(ftr, bi.Mask)
		ftr = binary.AppendUvarint(ftr, bi.Min48)
		ftr = binary.AppendUvarint(ftr, bi.Max48)
	}
	ftr = appendDict(ftr, sb.mods.vals)
	ftr = appendDict(ftr, sb.vans.vals)
	bl := newBloom(len(sb.keys))
	for k := range sb.keys {
		bl.add(k)
	}
	ftr = appendBloom(ftr, bl)

	out := append(sb.buf, ftr...)
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[0:], uint32(len(ftr)))
	binary.LittleEndian.PutUint32(tr[4:], crc32.Checksum(ftr, castagnoli))
	copy(tr[8:], ftrMagic)
	out = append(out, tr[:]...)
	return out, sb.rows, nil
}

// segment is a parsed footer: the sparse index the query engine prunes
// against.
type segment struct {
	blocks []blockIndex
	mods   []string
	vans   []string
	bloom  *bloom
	// dataEnd is where block space ends (the footer's file offset).
	dataEnd int64
}

// parseFooter decodes a footer body. size is the full file length,
// used to bound block extents.
func parseFooter(body []byte, size int64) (*segment, error) {
	r := &colReader{b: body}
	ver, err := r.take(1)
	if err != nil || ver[0] != segVersion {
		return nil, errCorrupt
	}
	n, err := r.uvarint()
	if err != nil || n > uint64(len(body)) {
		return nil, errCorrupt
	}
	seg := &segment{blocks: make([]blockIndex, 0, n), dataEnd: size}
	end := int64(len(segMagic))
	for i := uint64(0); i < n; i++ {
		var bi blockIndex
		kind, err := r.take(1)
		if err != nil {
			return nil, err
		}
		bi.Kind = Kind(kind[0])
		if bi.Kind != KindCaptures && bi.Kind != KindResults {
			return nil, errCorrupt
		}
		fields := [6]uint64{}
		for j := range fields {
			if fields[j], err = r.uvarint(); err != nil {
				return nil, err
			}
		}
		bi.Off, bi.Len = int64(fields[0]), int64(fields[1])
		bi.RawLen, bi.Rows = int(fields[2]), int(fields[3])
		bi.SliceLo, bi.SliceHi = int(fields[4]), int(fields[5])
		mb, err := r.take(8)
		if err != nil {
			return nil, err
		}
		bi.Mask = binary.LittleEndian.Uint64(mb)
		if bi.Min48, err = r.uvarint(); err != nil {
			return nil, err
		}
		if bi.Max48, err = r.uvarint(); err != nil {
			return nil, err
		}
		// Blocks must tile the data region in order, never overlapping
		// the footer.
		if bi.Off != end || bi.Len < blockHeaderLen || bi.Off+bi.Len > size ||
			bi.RawLen > maxRawBlock || bi.Rows > maxBlockRows || bi.SliceHi < bi.SliceLo {
			return nil, errCorrupt
		}
		end = bi.Off + bi.Len
		seg.blocks = append(seg.blocks, bi)
	}
	if seg.mods, err = readDict(r); err != nil {
		return nil, err
	}
	if seg.vans, err = readDict(r); err != nil {
		return nil, err
	}
	if seg.bloom, err = readBloom(r); err != nil {
		return nil, err
	}
	if r.rem() != 0 {
		return nil, errCorrupt
	}
	return seg, nil
}

// parseTrailer locates the footer within a whole-file image, returning
// its [start, end) offsets after validating magic and CRC.
func parseTrailer(data []byte) (ftrStart, ftrEnd int64, err error) {
	if len(data) < len(segMagic)+trailerLen || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, errCorrupt
	}
	tr := data[len(data)-trailerLen:]
	if string(tr[8:]) != ftrMagic {
		return 0, 0, errCorrupt
	}
	flen := int64(binary.LittleEndian.Uint32(tr[0:4]))
	fcrc := binary.LittleEndian.Uint32(tr[4:8])
	ftrEnd = int64(len(data)) - trailerLen
	ftrStart = ftrEnd - flen
	if ftrStart < int64(len(segMagic)) {
		return 0, 0, errCorrupt
	}
	if crc32.Checksum(data[ftrStart:ftrEnd], castagnoli) != fcrc {
		return 0, 0, errCorrupt
	}
	return ftrStart, ftrEnd, nil
}

// parseSegmentBytes parses a whole in-memory segment image.
func parseSegmentBytes(data []byte) (*segment, error) {
	ftrStart, ftrEnd, err := parseTrailer(data)
	if err != nil {
		return nil, err
	}
	seg, err := parseFooter(data[ftrStart:ftrEnd], ftrStart)
	if err != nil {
		return nil, err
	}
	return seg, nil
}

// decodeBlock verifies and decompresses one framed block. blockBytes
// is the on-disk extent [Off, Off+Len).
func decodeBlock(blockBytes []byte, bi blockIndex) ([]byte, error) {
	if int64(len(blockBytes)) != bi.Len || bi.Len < blockHeaderLen {
		return nil, errCorrupt
	}
	plen := binary.LittleEndian.Uint32(blockBytes[0:4])
	crc := binary.LittleEndian.Uint32(blockBytes[4:8])
	if int64(plen)+blockHeaderLen != bi.Len {
		return nil, errCorrupt
	}
	payload := blockBytes[blockHeaderLen:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, errCorrupt
	}
	raw := make([]byte, bi.RawLen)
	fr := flate.NewReader(bytes.NewReader(payload))
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, errCorrupt
	}
	var one [1]byte
	if n, _ := fr.Read(one[:]); n != 0 {
		return nil, errCorrupt
	}
	return raw, nil
}

// decodeCaptureBlock streams a capture block's rows (with their slice
// ids) through fn.
func decodeCaptureBlock(raw []byte, fn func(CaptureRow, int) error) error {
	r := &colReader{b: raw}
	n, err := r.uvarint()
	if err != nil || n > maxBlockRows {
		return errCorrupt
	}
	rows := int(n)
	slices := make([]int, rows)
	prev := int64(0)
	for i := range slices {
		d, err := r.svarint()
		if err != nil {
			return err
		}
		prev += d
		slices[i] = int(prev)
	}
	addrs, err := r.take(16 * rows)
	if err != nil {
		return err
	}
	vd, err := readDict(r)
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		id, err := r.uvarint()
		if err != nil {
			return err
		}
		if id >= uint64(len(vd)) {
			return errCorrupt
		}
		var a16 [16]byte
		copy(a16[:], addrs[i*16:])
		row := CaptureRow{Addr: netip.AddrFrom16(a16), Vantage: vd[id]}
		if err := fn(row, slices[i]); err != nil {
			return err
		}
	}
	if r.rem() != 0 {
		return errCorrupt
	}
	return nil
}

// decodeResultBlock streams a result block's rows (with their slice
// ids) through fn. Vocabulary strings are canonicalised through the
// shared intern table, like ReadJSONL does.
func decodeResultBlock(raw []byte, fn func(*zgrab.Result, int) error) error {
	r := &colReader{b: raw}
	n, err := r.uvarint()
	if err != nil || n > maxBlockRows {
		return errCorrupt
	}
	rows := int(n)
	slices := make([]int, rows)
	prev := int64(0)
	for i := range slices {
		d, err := r.svarint()
		if err != nil {
			return err
		}
		prev += d
		slices[i] = int(prev)
	}
	ips, err := r.take(16 * rows)
	if err != nil {
		return err
	}
	md, err := readDict(r)
	if err != nil {
		return err
	}
	sd, err := readDict(r)
	if err != nil {
		return err
	}
	ed, err := readDict(r)
	if err != nil {
		return err
	}
	readIdx := func(vals []string) ([]string, error) {
		out := make([]string, rows)
		for i := range out {
			id, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if id >= uint64(len(vals)) {
				return nil, errCorrupt
			}
			out[i] = vals[id]
		}
		return out, nil
	}
	mods, err := readIdx(md)
	if err != nil {
		return err
	}
	ports := make([]uint16, rows)
	for i := range ports {
		p, err := r.uvarint()
		if err != nil {
			return err
		}
		if p > 0xffff {
			return errCorrupt
		}
		ports[i] = uint16(p)
	}
	times := make([]int64, rows)
	prev = 0
	for i := range times {
		d, err := r.svarint()
		if err != nil {
			return err
		}
		prev += d
		times[i] = prev
	}
	stats, err := readIdx(sd)
	if err != nil {
		return err
	}
	errs, err := readIdx(ed)
	if err != nil {
		return err
	}
	attempts := make([]int, rows)
	for i := range attempts {
		a, err := r.uvarint()
		if err != nil {
			return err
		}
		attempts[i] = int(a)
	}
	seqs := make([]int64, rows)
	prev = 0
	for i := range seqs {
		d, err := r.svarint()
		if err != nil {
			return err
		}
		prev += d
		seqs[i] = prev
	}
	for i := 0; i < rows; i++ {
		gl, err := r.uvarint()
		if err != nil {
			return err
		}
		gb, err := r.take(int(gl))
		if err != nil {
			return err
		}
		var a16 [16]byte
		copy(a16[:], ips[i*16:])
		res := &zgrab.Result{
			IP:       netip.AddrFrom16(a16),
			Module:   mods[i],
			Port:     ports[i],
			Time:     time.Unix(0, times[i]).UTC(),
			Status:   zgrab.Status(stats[i]),
			Error:    errs[i],
			Attempts: attempts[i],
			Seq:      seqs[i],
		}
		if err := res.SetGrabs(gb); err != nil {
			return errCorrupt
		}
		res.Intern()
		if err := fn(res, slices[i]); err != nil {
			return err
		}
	}
	if r.rem() != 0 {
		return errCorrupt
	}
	return nil
}

// DecodeSegment fully parses and decodes an in-memory segment image —
// footer, every block, every row. It is the crash-recovery validator's
// strict sibling and the FuzzSegmentDecode entry point: any input must
// either decode cleanly or fail with an error, never panic.
func DecodeSegment(data []byte, capFn func(CaptureRow, int) error, resFn func(*zgrab.Result, int) error) error {
	seg, err := parseSegmentBytes(data)
	if err != nil {
		return err
	}
	for _, bi := range seg.blocks {
		raw, err := decodeBlock(data[bi.Off:bi.Off+bi.Len], bi)
		if err != nil {
			return err
		}
		switch bi.Kind {
		case KindCaptures:
			if err := decodeCaptureBlock(raw, func(c CaptureRow, slice int) error {
				if capFn != nil {
					return capFn(c, slice)
				}
				return nil
			}); err != nil {
				return err
			}
		case KindResults:
			if err := decodeResultBlock(raw, func(r *zgrab.Result, slice int) error {
				if resFn != nil {
					return resFn(r, slice)
				}
				return nil
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
