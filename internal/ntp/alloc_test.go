package ntp

import (
	"net/netip"
	"testing"
	"time"
)

// TestEncodeDecodeZeroAlloc pins the codec's steady state: encoding
// into a caller-owned buffer and decoding into a caller-owned packet
// must not touch the heap — the collection fast path runs this once
// per capture event.
func TestEncodeDecodeZeroAlloc(t *testing.T) {
	now := time.Date(2024, 7, 20, 12, 0, 0, 0, time.UTC)
	buf := make([]byte, 0, PacketSize)
	var pkt Packet

	allocs := testing.AllocsPerRun(1000, func() {
		req := ClientPacket(now)
		buf = req.AppendEncode(buf[:0])
		if err := DecodeInto(&pkt, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode/decode allocated %v times per run, want 0", allocs)
	}
	if pkt.Mode != ModeClient || pkt.Version != 4 {
		t.Fatalf("round trip corrupted the packet: %+v", pkt)
	}
}

// TestRespondAppendZeroAlloc pins the server's datagram cycle: decode,
// rate check, response build, capture hook — all without allocating
// once the scratch buffers exist.
func TestRespondAppendZeroAlloc(t *testing.T) {
	now := time.Date(2024, 7, 20, 12, 0, 0, 0, time.UTC)
	captured := 0
	s := NewServer(ServerConfig{
		Now:     func() time.Time { return now },
		Capture: func(client netip.AddrPort, at time.Time) { captured++ },
	})
	client := netip.MustParseAddrPort("[2001:db8::1]:40000")
	req := ClientPacket(now)
	reqBuf := req.AppendEncode(nil)
	respBuf := make([]byte, 0, PacketSize)

	allocs := testing.AllocsPerRun(1000, func() {
		out, ok := s.RespondAppend(client, reqBuf, respBuf[:0])
		if !ok {
			t.Fatal("request not answered")
		}
		respBuf = out
	})
	if allocs != 0 {
		t.Fatalf("RespondAppend allocated %v times per run, want 0", allocs)
	}
	if captured == 0 {
		t.Fatal("capture hook never fired")
	}
	if len(respBuf) != PacketSize {
		t.Fatalf("response is %d bytes, want %d", len(respBuf), PacketSize)
	}
}
