package ntp

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

func batchPackets() []Packet {
	now := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	tmpl := ClientPacket(now)
	other := ClientPacket(now.Add(90 * time.Second))
	other.Poll = 6
	full := Packet{
		Leap: LeapAddSecond, Version: 3, Mode: ModeServer, Stratum: 2,
		Poll: 10, Precision: -20, RootDelay: 0x1234, RootDispersion: 0x567,
		ReferenceID:   [4]byte{'G', 'P', 'S', 0},
		ReferenceTime: ToTime64(now.Add(-17 * time.Second)),
		OriginTime:    ToTime64(now.Add(-time.Second)),
		ReceiveTime:   ToTime64(now),
		TransmitTime:  ToTime64(now),
	}
	// Runs of identical packets exercise the template fast path.
	return []Packet{tmpl, tmpl, tmpl, other, tmpl, full, full, other}
}

func TestEncodeBatchMatchesSequential(t *testing.T) {
	ps := batchPackets()
	var want []byte
	for i := range ps {
		want = ps[i].AppendEncode(want)
	}
	got := EncodeBatch(ps, []byte("prefix"))
	if !bytes.Equal(got[:6], []byte("prefix")) {
		t.Fatal("EncodeBatch clobbered the destination prefix")
	}
	if !bytes.Equal(got[6:], want) {
		t.Fatal("EncodeBatch diverges from sequential AppendEncode")
	}
	if out := EncodeBatch(nil, []byte{1}); len(out) != 1 {
		t.Fatal("empty batch should leave dst untouched")
	}
}

func TestDecodeBatchRoundTrip(t *testing.T) {
	ps := batchPackets()
	slab := EncodeBatch(ps, nil)
	got := make([]Packet, len(ps))
	n, err := DecodeBatch(got, slab)
	if err != nil || n != len(ps) {
		t.Fatalf("DecodeBatch = %d, %v", n, err)
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("stride %d round-trips to %+v, want %+v", i, got[i], ps[i])
		}
	}
}

func TestDecodeBatchErrors(t *testing.T) {
	ps := batchPackets()
	slab := EncodeBatch(ps, nil)
	if _, err := DecodeBatch(make([]Packet, len(ps)), slab[:len(slab)-1]); err == nil {
		t.Fatal("trailing partial stride not rejected")
	}
	slab[2*PacketSize] = 0 // version 0 in stride 2
	n, err := DecodeBatch(make([]Packet, len(ps)), slab)
	if err == nil || n != 2 {
		t.Fatalf("bad stride: n=%d err=%v, want n=2 and an error", n, err)
	}
}

// TestRespondBatchMatchesSequential drives the same mixed request slab
// through RespondAppend one by one and through RespondBatch, asserting
// byte-identical output, identical per-event accounting, and identical
// capture sequences — including invalid datagrams, a non-client mode,
// and rate-limited repeats.
func TestRespondBatchMatchesSequential(t *testing.T) {
	start := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	mk := func(captured *[]netip.AddrPort) *Server {
		return NewServer(ServerConfig{
			Stratum:     2,
			ReferenceID: [4]byte{'G', 'P', 'S', 0},
			Now:         func() time.Time { return start },
			MinInterval: time.Minute,
			Capture: func(c netip.AddrPort, _ time.Time) {
				*captured = append(*captured, c)
			},
		})
	}

	tmpl := ClientPacket(start)
	bad := tmpl
	bad.Mode = ModeSymmetricActive
	reqs := EncodeBatch([]Packet{tmpl, tmpl, bad, tmpl, tmpl, tmpl}, nil)
	reqs = append(reqs, make([]byte, PacketSize)...) // version-0 junk stride
	clients := []netip.AddrPort{
		netip.MustParseAddrPort("[2001:db8::1]:123"),
		netip.MustParseAddrPort("[2001:db8::2]:123"),
		netip.MustParseAddrPort("[2001:db8::3]:123"),
		netip.MustParseAddrPort("[2001:db8::1]:123"), // rate-limited repeat
		netip.MustParseAddrPort("[2001:db8::4]:123"),
		netip.MustParseAddrPort("[2001:db8::4]:123"), // rate-limited repeat
		netip.MustParseAddrPort("[2001:db8::5]:123"),
	}

	var capSeq, capBatch []netip.AddrPort
	seq, batch := mk(&capSeq), mk(&capBatch)

	var want []byte
	wantOks := make([]bool, len(clients))
	wantAnswered := 0
	for i := range clients {
		out, ok := seq.RespondAppend(clients[i], reqs[i*PacketSize:(i+1)*PacketSize], want)
		want = out
		wantOks[i] = ok
		if ok {
			wantAnswered++
		}
	}

	oks := make([]bool, len(clients))
	got, answered := batch.RespondBatch(clients, reqs, nil, oks)
	if !bytes.Equal(got, want) {
		t.Fatal("batch response slab diverges from sequential responses")
	}
	if answered != wantAnswered {
		t.Fatalf("answered = %d, want %d", answered, wantAnswered)
	}
	for i := range oks {
		if oks[i] != wantOks[i] {
			t.Fatalf("oks[%d] = %v, want %v", i, oks[i], wantOks[i])
		}
	}
	if len(capBatch) != len(capSeq) {
		t.Fatalf("capture counts differ: %d vs %d", len(capBatch), len(capSeq))
	}
	for i := range capSeq {
		if capBatch[i] != capSeq[i] {
			t.Fatalf("capture %d: %v vs %v", i, capBatch[i], capSeq[i])
		}
	}
	gr, ga := batch.Stats()
	wr, wa := seq.Stats()
	if gr != wr || ga != wa || batch.RateLimited() != seq.RateLimited() {
		t.Fatalf("server books diverge: %d/%d/%d vs %d/%d/%d",
			gr, ga, batch.RateLimited(), wr, wa, seq.RateLimited())
	}
}

// TestRespondBatchZeroAlloc pins the steady-state batch path — capacity
// available, no rate limiting — at zero heap allocations per call.
func TestRespondBatchZeroAlloc(t *testing.T) {
	start := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	s := NewServer(ServerConfig{
		Now:     func() time.Time { return start },
		Capture: func(netip.AddrPort, time.Time) {},
	})
	const n = 64
	tmpl := ClientPacket(start)
	ps := make([]Packet, n)
	for i := range ps {
		ps[i] = tmpl
	}
	reqs := EncodeBatch(ps, nil)
	clients := make([]netip.AddrPort, n)
	for i := range clients {
		clients[i] = netip.MustParseAddrPort("[2001:db8::1]:123")
	}
	oks := make([]bool, n)
	dst := make([]byte, 0, n*PacketSize)
	if avg := testing.AllocsPerRun(100, func() {
		out, answered := s.RespondBatch(clients, reqs, dst[:0], oks)
		if answered != n || len(out) != n*PacketSize {
			t.Fatalf("answered %d of %d", answered, n)
		}
	}); avg != 0 {
		t.Fatalf("RespondBatch allocates %.1f objects per batch", avg)
	}

	// And the codec slab paths themselves.
	scratch := make([]Packet, n)
	if avg := testing.AllocsPerRun(100, func() {
		EncodeBatch(ps, dst[:0])
		if _, err := DecodeBatch(scratch, reqs); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("codec batch paths allocate %.1f objects per slab", avg)
	}
}
