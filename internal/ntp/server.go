package ntp

import (
	"bytes"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ntpscan/internal/obs"
)

// ServerMetrics is a shared bundle of request counters. Several Server
// instances may carry the same bundle — the collection pipeline clones
// one vantage server per shard, and all clones account into the same
// books — so the totals read as per-vantage-fleet, not per-instance.
// All updates are lone atomic adds: the capture fast path stays
// zero-alloc with metrics enabled.
type ServerMetrics struct {
	Requests    *obs.Counter // datagrams that reached an NTP server
	Answered    *obs.Counter // requests answered with time
	RateLimited *obs.Counter // requests answered with a kiss-of-death
}

// NewServerMetrics registers the NTP server families on r.
func NewServerMetrics(r *obs.Registry) *ServerMetrics {
	return &ServerMetrics{
		Requests:    r.NewCounter("ntp_requests_total", "datagrams that reached an NTP capture server"),
		Answered:    r.NewCounter("ntp_answered_total", "NTP requests answered with time"),
		RateLimited: r.NewCounter("ntp_rate_limited_total", "NTP requests answered with a kiss-of-death"),
	}
}

// CaptureFunc receives the source address and arrival time of every valid
// client request the server answers. This is the paper's core
// instrumentation point: a pool server sees the addresses of everyone who
// synchronises against it.
type CaptureFunc func(client netip.AddrPort, at time.Time)

// ServerConfig configures a capture server.
type ServerConfig struct {
	// Stratum reported in responses. Pool servers are typically 2.
	Stratum uint8
	// ReferenceID is the 4-byte refid ("GPS\0", upstream v4 addr, ...).
	ReferenceID [4]byte
	// Now supplies timestamps; defaults to time.Now. The mass
	// simulation injects the experiment's logical clock.
	Now func() time.Time
	// Capture, if non-nil, is invoked for every answered request.
	Capture CaptureFunc
	// MinInterval enables per-client rate limiting: a client address
	// querying again within the interval receives a kiss-of-death
	// (stratum 0, refid RATE) instead of time, as abusive clients do
	// from real pool servers. Zero disables limiting.
	MinInterval time.Duration
	// Metrics, if non-nil, additionally accounts requests into a shared
	// observability bundle (see ServerMetrics).
	Metrics *ServerMetrics
}

// rateTableMax bounds the rate limiter's memory; beyond it the oldest
// half is evicted wholesale (abusers re-tracked on their next query).
const rateTableMax = 1 << 16

// Server answers SNTP requests and captures client addresses. It is
// transport-agnostic: Respond computes a response for one datagram, and
// the Handle/Serve adapters bind it to netsim and net sockets.
type Server struct {
	cfg      ServerConfig
	requests atomic.Int64
	answered atomic.Int64
	limited  atomic.Int64

	rateMu   sync.Mutex
	lastSeen map[netip.Addr]time.Time
}

// NewServer returns a server with the given configuration.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Stratum == 0 {
		cfg.Stratum = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{cfg: cfg}
	if cfg.MinInterval > 0 {
		s.lastSeen = make(map[netip.Addr]time.Time)
	}
	return s
}

// Stats returns how many datagrams arrived and how many were answered.
func (s *Server) Stats() (requests, answered int64) {
	return s.requests.Load(), s.answered.Load()
}

// RateLimited returns how many requests were answered with a
// kiss-of-death.
func (s *Server) RateLimited() int64 { return s.limited.Load() }

// overRate records the client and reports whether it queried too soon.
func (s *Server) overRate(client netip.Addr, now time.Time) bool {
	if s.lastSeen == nil {
		return false
	}
	s.rateMu.Lock()
	defer s.rateMu.Unlock()
	last, seen := s.lastSeen[client]
	if len(s.lastSeen) >= rateTableMax {
		// Crude wholesale eviction keeps memory bounded without
		// per-entry timers.
		s.lastSeen = make(map[netip.Addr]time.Time, rateTableMax/2)
	}
	s.lastSeen[client] = now
	return seen && now.Sub(last) < s.cfg.MinInterval
}

// kissOfDeath builds the stratum-0 RATE response.
func kissOfDeath(req *Packet, now time.Time) Packet {
	return Packet{
		Leap:         LeapUnsynchronized,
		Version:      req.Version,
		Mode:         ModeServer,
		Stratum:      0,
		ReferenceID:  [4]byte{'R', 'A', 'T', 'E'},
		OriginTime:   req.TransmitTime,
		ReceiveTime:  ToTime64(now),
		TransmitTime: ToTime64(now),
	}
}

// Respond processes one request datagram from the given client and
// returns the response payload, or nil if the datagram is not an
// answerable NTP request. Capture fires only for answered requests,
// mirroring the paper's server-side logging.
func (s *Server) Respond(client netip.AddrPort, payload []byte) []byte {
	resp, ok := s.RespondAppend(client, payload, make([]byte, 0, PacketSize))
	if !ok {
		return nil
	}
	return resp
}

// RespondAppend is Respond with caller-owned output: the response is
// appended onto dst (typically a reused per-shard scratch buffer) and
// returned with ok true, or dst is returned untouched with ok false
// when the datagram is not answerable. The entire request/response
// cycle runs without heap allocation — the collection fast path calls
// this once per capture event.
func (s *Server) RespondAppend(client netip.AddrPort, payload, dst []byte) (out []byte, ok bool) {
	s.requests.Add(1)
	if m := s.cfg.Metrics; m != nil {
		m.Requests.Inc()
	}
	var req Packet
	if err := DecodeInto(&req, payload); err != nil {
		return dst, false
	}
	// Answer client requests; symmetric-active peers also receive a
	// reply in real deployments but are irrelevant for address
	// sourcing, so we keep the strict SNTP server behaviour.
	if req.Mode != ModeClient {
		return dst, false
	}
	now := s.cfg.Now()
	if s.overRate(client.Addr(), now) {
		s.limited.Add(1)
		if m := s.cfg.Metrics; m != nil {
			m.RateLimited.Inc()
		}
		kod := kissOfDeath(&req, now)
		return kod.AppendEncode(dst), true
	}
	resp := Packet{
		Leap:          LeapNone,
		Version:       req.Version,
		Mode:          ModeServer,
		Stratum:       s.cfg.Stratum,
		Poll:          req.Poll,
		Precision:     -20,
		ReferenceID:   s.cfg.ReferenceID,
		ReferenceTime: ToTime64(now.Add(-17 * time.Second)),
		OriginTime:    req.TransmitTime,
		ReceiveTime:   ToTime64(now),
		TransmitTime:  ToTime64(now),
	}
	s.answered.Add(1)
	if m := s.cfg.Metrics; m != nil {
		m.Answered.Inc()
	}
	if s.cfg.Capture != nil {
		s.cfg.Capture(client, now)
	}
	return resp.AppendEncode(dst), true
}

// RespondBatch processes a slab of back-to-back 48-byte request
// datagrams — reqs[i*PacketSize:(i+1)*PacketSize] from clients[i] —
// appending each response onto dst in request order and returning the
// extended slice plus the number of requests answered. Per-event
// semantics are identical to calling RespondAppend in a loop: metrics,
// rate limiting, and the Capture hook fire once per request, in order.
// What the batch buys is template reuse: consecutive identical requests
// at a frozen clock (the collection pipeline's steady state — every
// simulated client in a slice sends the same mode-3 header) are decoded
// once, and their responses are stride-copied instead of re-encoded.
// When oks is non-nil it must have len(clients) entries and records
// which requests produced a response.
func (s *Server) RespondBatch(clients []netip.AddrPort, reqs, dst []byte, oks []bool) (out []byte, answered int) {
	n := len(reqs) / PacketSize
	var (
		req     Packet
		reqOK   bool
		prevRaw []byte
		prevOff = -1 // dst offset of the previous plain response
		prevNow time.Time
		now     time.Time
	)
	for i := 0; i < n; i++ {
		raw := reqs[i*PacketSize : (i+1)*PacketSize]
		s.requests.Add(1)
		if m := s.cfg.Metrics; m != nil {
			m.Requests.Inc()
		}
		if oks != nil {
			oks[i] = false
		}
		if prevRaw == nil || !bytes.Equal(raw, prevRaw) {
			prevRaw = raw
			prevOff = -1
			reqOK = DecodeInto(&req, raw) == nil && req.Mode == ModeClient
		}
		if !reqOK {
			continue
		}
		now = s.cfg.Now()
		if s.overRate(clients[i].Addr(), now) {
			s.limited.Add(1)
			if m := s.cfg.Metrics; m != nil {
				m.RateLimited.Inc()
			}
			kod := kissOfDeath(&req, now)
			dst = kod.AppendEncode(dst)
			prevOff = -1 // KoD breaks the plain-response run
			if oks != nil {
				oks[i] = true
			}
			answered++
			continue
		}
		s.answered.Add(1)
		if m := s.cfg.Metrics; m != nil {
			m.Answered.Inc()
		}
		if s.cfg.Capture != nil {
			s.cfg.Capture(clients[i], now)
		}
		if prevOff >= 0 && now.Equal(prevNow) {
			// Same request template, same instant: the response bytes
			// are identical — copy the previous stride.
			dst = append(dst, dst[prevOff:prevOff+PacketSize]...)
		} else {
			resp := Packet{
				Leap:          LeapNone,
				Version:       req.Version,
				Mode:          ModeServer,
				Stratum:       s.cfg.Stratum,
				Poll:          req.Poll,
				Precision:     -20,
				ReferenceID:   s.cfg.ReferenceID,
				ReferenceTime: ToTime64(now.Add(-17 * time.Second)),
				OriginTime:    req.TransmitTime,
				ReceiveTime:   ToTime64(now),
				TransmitTime:  ToTime64(now),
			}
			prevOff = len(dst)
			prevNow = now
			dst = resp.AppendEncode(dst)
		}
		if oks != nil {
			oks[i] = true
		}
		answered++
	}
	return dst, answered
}

// Handle adapts the server to a netsim packet handler.
func (s *Server) Handle(from netip.AddrPort, payload []byte) [][]byte {
	if resp := s.Respond(from, payload); resp != nil {
		return [][]byte{resp}
	}
	return nil
}

// Serve answers requests on a real socket until the connection is closed
// or reading fails for another reason. It returns the first terminal
// error (net.ErrClosed on clean shutdown).
func (s *Server) Serve(conn net.PacketConn) error {
	buf := make([]byte, 1024)
	resp := make([]byte, 0, PacketSize)
	for {
		n, raddr, err := conn.ReadFrom(buf)
		if err != nil {
			return err
		}
		client := addrPortOf(raddr)
		if out, ok := s.RespondAppend(client, buf[:n], resp[:0]); ok {
			resp = out
			if _, err := conn.WriteTo(out, raddr); err != nil {
				return err
			}
		}
	}
}

func addrPortOf(a net.Addr) netip.AddrPort {
	if ua, ok := a.(*net.UDPAddr); ok {
		if ap, ok := netip.AddrFromSlice(ua.IP); ok {
			return netip.AddrPortFrom(ap.Unmap(), uint16(ua.Port))
		}
	}
	return netip.AddrPort{}
}
