package ntp

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ntpscan/internal/netsim"
)

func TestTime64RoundTrip(t *testing.T) {
	f := func(secs uint32, millis uint16) bool {
		// Stay within NTP era 0, which ends in 2036: Unix seconds must
		// be below 2^32 - ntpEpochOffset.
		const era0Max = 1<<32 - ntpEpochOffset
		orig := time.Unix(int64(secs)%era0Max, int64(millis)*1e6).UTC()
		got := ToTime64(orig).Time()
		d := got.Sub(orig)
		if d < 0 {
			d = -d
		}
		return d < time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTime64Zero(t *testing.T) {
	if ToTime64(time.Time{}) != 0 {
		t.Fatal("zero time should encode to 0")
	}
	if !Time64(0).Time().IsZero() {
		t.Fatal("0 should decode to zero time")
	}
}

func TestTime64KnownEpoch(t *testing.T) {
	// Unix epoch is exactly 2208988800 seconds after the NTP epoch.
	got := ToTime64(time.Unix(0, 0))
	if got>>32 != 2208988800 || got&0xffffffff != 0 {
		t.Fatalf("epoch encodes to %x", uint64(got))
	}
}

func TestPacketEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Leap: LeapAddSecond, Version: 4, Mode: ModeServer,
		Stratum: 2, Poll: 6, Precision: -20,
		RootDelay: 0x00010000, RootDispersion: 0x00000800,
		ReferenceID:   [4]byte{'G', 'P', 'S', 0},
		ReferenceTime: 0x1111111122222222,
		OriginTime:    0x3333333344444444,
		ReceiveTime:   0x5555555566666666,
		TransmitTime:  0x7777777788888888,
	}
	b := p.Encode()
	if len(b) != PacketSize {
		t.Fatalf("encoded %d bytes", len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 47)); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 48)
	b[0] = 7 << 3 // version 7
	if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	b[0] = 0 // version 0
	if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version 0: %v", err)
	}
}

func TestDecodeIgnoresExtensions(t *testing.T) {
	p := NewClientPacket(time.Now())
	b := append(p.Encode(), make([]byte, 20)...) // trailing extension
	if _, err := Decode(b); err != nil {
		t.Fatalf("extensions rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if ModeClient.String() != "client" || ModeServer.String() != "server" {
		t.Fatal("mode names wrong")
	}
}

func TestServerRespond(t *testing.T) {
	now := time.Date(2024, 7, 20, 12, 0, 0, 0, time.UTC)
	var captured []netip.AddrPort
	s := NewServer(ServerConfig{
		Stratum:     2,
		ReferenceID: [4]byte{1, 2, 3, 4},
		Now:         func() time.Time { return now },
		Capture: func(c netip.AddrPort, at time.Time) {
			captured = append(captured, c)
			if !at.Equal(now) {
				t.Errorf("capture time = %v", at)
			}
		},
	})
	client := netip.MustParseAddrPort("[2001:db8::42]:50000")
	req := NewClientPacket(now.Add(-time.Second))
	respB := s.Respond(client, req.Encode())
	if respB == nil {
		t.Fatal("no response")
	}
	resp, err := Decode(respB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeServer || resp.Stratum != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.OriginTime != req.TransmitTime {
		t.Fatal("origin must echo client transmit")
	}
	if len(captured) != 1 || captured[0] != client {
		t.Fatalf("captured = %v", captured)
	}
	reqs, ans := s.Stats()
	if reqs != 1 || ans != 1 {
		t.Fatalf("stats = %d %d", reqs, ans)
	}
}

func TestServerIgnoresGarbageAndWrongMode(t *testing.T) {
	s := NewServer(ServerConfig{})
	client := netip.MustParseAddrPort("[2001:db8::1]:1")
	if s.Respond(client, []byte("short")) != nil {
		t.Fatal("garbage answered")
	}
	serverMode := &Packet{Version: 4, Mode: ModeServer}
	if s.Respond(client, serverMode.Encode()) != nil {
		t.Fatal("mode-4 packet answered")
	}
	reqs, ans := s.Stats()
	if reqs != 2 || ans != 0 {
		t.Fatalf("stats = %d %d", reqs, ans)
	}
}

func TestServerEchoesVersion(t *testing.T) {
	s := NewServer(ServerConfig{})
	req := NewClientPacket(time.Now())
	req.Version = 3
	resp, err := Decode(s.Respond(netip.MustParseAddrPort("[::1]:9"), req.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 3 {
		t.Fatalf("version = %d", resp.Version)
	}
}

func TestQuerySimEndToEnd(t *testing.T) {
	clock := netsim.NewManualClock(time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC))
	fabric := netsim.New(netsim.Config{Clock: clock})

	var mu sync.Mutex
	var captured []netip.AddrPort
	srv := NewServer(ServerConfig{
		Now: clock.Now,
		Capture: func(c netip.AddrPort, _ time.Time) {
			mu.Lock()
			captured = append(captured, c)
			mu.Unlock()
		},
	})
	serverAddr := netip.MustParseAddr("2001:db8:ffff::123")
	fabric.Register(serverAddr, netsim.NewHost("pool-server").HandleUDP(Port, srv.Handle))

	src := netip.MustParseAddrPort("[2001:db8:1::aa]:40000")
	res, err := QuerySim(fabric, src, netip.AddrPortFrom(serverAddr, Port), clock.Now, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stratum != 2 {
		t.Fatalf("stratum = %d", res.Stratum)
	}
	// Client and server share the manual clock, so offset must be ~0.
	if res.Offset != 0 {
		t.Fatalf("offset = %v", res.Offset)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(captured) != 1 || captured[0] != src {
		t.Fatalf("captured = %v", captured)
	}
}

func TestQuerySimNoServer(t *testing.T) {
	fabric := netsim.New(netsim.Config{})
	src := netip.MustParseAddrPort("[2001:db8:1::aa]:40001")
	_, err := QuerySim(fabric, src, netip.MustParseAddrPort("[2001:db8::dead]:123"),
		time.Now, 50*time.Millisecond)
	if !errors.Is(err, ErrNoResponse) {
		t.Fatalf("got %v", err)
	}
}

func TestEvaluateRejectsBogusOrigin(t *testing.T) {
	req := NewClientPacket(time.Now())
	resp := &Packet{Version: 4, Mode: ModeServer, Stratum: 2, OriginTime: req.TransmitTime + 1}
	_, err := evaluate(req, resp, netip.AddrPort{}, time.Now(), time.Now())
	if !errors.Is(err, ErrBogusOrigin) {
		t.Fatalf("got %v", err)
	}
}

func TestEvaluateRejectsKoD(t *testing.T) {
	req := NewClientPacket(time.Now())
	resp := &Packet{Version: 4, Mode: ModeServer, Stratum: 0, OriginTime: req.TransmitTime}
	_, err := evaluate(req, resp, netip.AddrPort{}, time.Now(), time.Now())
	if !errors.Is(err, ErrKissOfDeath) {
		t.Fatalf("got %v", err)
	}
}

func TestServeRealSocket(t *testing.T) {
	// End-to-end over genuine UDP loopback sockets: the same server core
	// that runs in the simulation answers a real socket client.
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer serverConn.Close()

	var mu sync.Mutex
	var captured []netip.AddrPort
	srv := NewServer(ServerConfig{Capture: func(c netip.AddrPort, _ time.Time) {
		mu.Lock()
		captured = append(captured, c)
		mu.Unlock()
	}})
	go srv.Serve(serverConn)

	clientConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientConn.Close()

	res, err := QueryConn(clientConn, serverConn.LocalAddr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stratum != 2 {
		t.Fatalf("stratum = %d", res.Stratum)
	}
	if res.Offset > time.Second || res.Offset < -time.Second {
		t.Fatalf("loopback offset = %v", res.Offset)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(captured) != 1 {
		t.Fatalf("captured %d clients", len(captured))
	}
}

func BenchmarkServerRespond(b *testing.B) {
	s := NewServer(ServerConfig{Now: func() time.Time { return time.Unix(1721433600, 0) }})
	client := netip.MustParseAddrPort("[2001:db8::1]:50000")
	req := NewClientPacket(time.Unix(1721433599, 0)).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Respond(client, req)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	p := NewClientPacket(time.Now())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := p.Encode()
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRateLimitKissOfDeath(t *testing.T) {
	now := time.Date(2024, 7, 20, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	s := NewServer(ServerConfig{Now: clock, MinInterval: 10 * time.Second})
	client := netip.MustParseAddrPort("[2001:db8::1]:5000")
	req := NewClientPacket(now)

	// First query: answered normally.
	resp, err := Decode(s.Respond(client, req.Encode()))
	if err != nil || resp.Stratum == 0 {
		t.Fatalf("first query: %+v %v", resp, err)
	}
	// Immediate re-query: kiss-of-death with RATE refid.
	resp, err = Decode(s.Respond(client, req.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stratum != 0 || string(resp.ReferenceID[:]) != "RATE" {
		t.Fatalf("expected KoD, got %+v", resp)
	}
	if s.RateLimited() != 1 {
		t.Fatalf("RateLimited = %d", s.RateLimited())
	}
	// Other clients are unaffected.
	other := netip.MustParseAddrPort("[2001:db8::2]:5000")
	if resp, _ = Decode(s.Respond(other, req.Encode())); resp.Stratum == 0 {
		t.Fatal("other client rate limited")
	}
	// After the interval the original client is served again.
	now = now.Add(11 * time.Second)
	if resp, _ = Decode(s.Respond(client, req.Encode())); resp.Stratum == 0 {
		t.Fatal("client still limited after interval")
	}
}

func TestRateLimitCaptureSuppressed(t *testing.T) {
	now := time.Unix(1721433600, 0)
	captures := 0
	s := NewServer(ServerConfig{
		Now:         func() time.Time { return now },
		MinInterval: time.Minute,
		Capture:     func(netip.AddrPort, time.Time) { captures++ },
	})
	client := netip.MustParseAddrPort("[2001:db8::1]:5000")
	req := NewClientPacket(now).Encode()
	s.Respond(client, req)
	s.Respond(client, req) // limited
	if captures != 1 {
		t.Fatalf("captures = %d, want 1 (KoD must not capture)", captures)
	}
}

func TestClientRejectsKoD(t *testing.T) {
	// QuerySim against a rate-limiting server: the second query errors
	// with ErrKissOfDeath.
	clock := netsim.NewManualClock(time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC))
	fabric := netsim.New(netsim.Config{Clock: clock})
	srv := NewServer(ServerConfig{Now: clock.Now, MinInterval: time.Hour})
	serverAddr := netip.MustParseAddr("2001:db8::123")
	fabric.Register(serverAddr, netsim.NewHost("ntp").HandleUDP(Port, srv.Handle))

	src := netip.MustParseAddrPort("[2001:db8:1::1]:40000")
	if _, err := QuerySim(fabric, src, netip.AddrPortFrom(serverAddr, Port), clock.Now, time.Second); err != nil {
		t.Fatal(err)
	}
	src2 := netip.MustParseAddrPort("[2001:db8:1::1]:40001")
	_, err := QuerySim(fabric, src2, netip.AddrPortFrom(serverAddr, Port), clock.Now, time.Second)
	if !errors.Is(err, ErrKissOfDeath) {
		t.Fatalf("got %v", err)
	}
}

func TestRateTableEviction(t *testing.T) {
	now := time.Unix(1721433600, 0)
	s := NewServer(ServerConfig{Now: func() time.Time { return now }, MinInterval: time.Minute})
	req := NewClientPacket(now).Encode()
	for i := 0; i < rateTableMax+100; i++ {
		client := netip.AddrPortFrom(ipv6xAddr(uint64(i)), 5000)
		s.Respond(client, req)
	}
	s.rateMu.Lock()
	size := len(s.lastSeen)
	s.rateMu.Unlock()
	if size > rateTableMax {
		t.Fatalf("rate table grew to %d", size)
	}
}

func ipv6xAddr(i uint64) netip.Addr {
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	for j := 0; j < 8; j++ {
		b[15-j] = byte(i >> (8 * uint(j)))
	}
	return netip.AddrFrom16(b)
}

// Satellite: the exchange's read deadline must live on the injected
// clock, like every other timestamp. On a frozen ManualClock a dead
// query must return promptly in wall time (the armed logical deadline
// is already expired for a read with no data) instead of parking a
// wall timer against a clock that never moves.
func TestQuerySimDeadlineOnInjectedClock(t *testing.T) {
	clock := netsim.NewManualClock(time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC))
	fabric := netsim.New(netsim.Config{Clock: clock})
	src := netip.MustParseAddrPort("[2001:db8:1::aa]:40002")

	start := time.Now()
	_, err := QuerySim(fabric, src, netip.MustParseAddrPort("[2001:db8::dead]:123"),
		clock.Now, 10*time.Second) // 10s of *logical* patience
	if !errors.Is(err, ErrNoResponse) {
		t.Fatalf("got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead query on a frozen clock took %v of wall time", elapsed)
	}
}

// Every timestamp in the exchange — client transmit, server transmit,
// receive — must come off the injected clock, so a shared logical
// clock on both ends yields a bit-exact zero offset and delay.
func TestQuerySimTimestampsOnInjectedClock(t *testing.T) {
	clock := netsim.NewManualClock(time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC))
	fabric := netsim.New(netsim.Config{Clock: clock})
	srv := NewServer(ServerConfig{Now: clock.Now})
	serverAddr := netip.MustParseAddr("2001:db8:ffff::123")
	fabric.Register(serverAddr, netsim.NewHost("pool").HandleUDP(Port, srv.Handle))

	res, err := QuerySim(fabric, netip.MustParseAddrPort("[2001:db8:1::aa]:40003"),
		netip.AddrPortFrom(serverAddr, Port), clock.Now, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offset != 0 || res.Delay != 0 {
		t.Fatalf("offset=%v delay=%v on a shared logical clock", res.Offset, res.Delay)
	}
	if got := res.Response.TransmitTime.Time(); !got.Equal(clock.Now()) {
		t.Fatalf("server transmit %v, want logical %v", got, clock.Now())
	}
}
