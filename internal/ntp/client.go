package ntp

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"time"

	"ntpscan/internal/netsim"
)

// Result is the outcome of one client exchange.
type Result struct {
	Server   netip.AddrPort
	Stratum  uint8
	RefID    [4]byte
	Offset   time.Duration // estimated clock offset (server - client)
	Delay    time.Duration // round-trip delay excluding server hold time
	Response *Packet
}

// Errors returned by clients.
var (
	ErrNoResponse  = errors.New("ntp: no response before deadline")
	ErrBogusOrigin = errors.New("ntp: response origin does not echo our transmit time")
	ErrKissOfDeath = errors.New("ntp: kiss-of-death (stratum 0) response")
)

// evaluate validates a response against the request and computes
// offset/delay with the standard four-timestamp formula.
func evaluate(req *Packet, resp *Packet, server netip.AddrPort, sent, recvd time.Time) (*Result, error) {
	if resp.Mode != ModeServer {
		return nil, fmt.Errorf("ntp: unexpected response mode %v", resp.Mode)
	}
	if resp.OriginTime != req.TransmitTime {
		return nil, ErrBogusOrigin
	}
	if resp.Stratum == 0 {
		return nil, ErrKissOfDeath
	}
	t1 := sent
	t2 := resp.ReceiveTime.Time()
	t3 := resp.TransmitTime.Time()
	t4 := recvd
	offset := (t2.Sub(t1) + t3.Sub(t4)) / 2
	delay := t4.Sub(t1) - t3.Sub(t2)
	return &Result{
		Server:   server,
		Stratum:  resp.Stratum,
		RefID:    resp.ReferenceID,
		Offset:   offset,
		Delay:    delay,
		Response: resp,
	}, nil
}

// QueryConn performs one SNTP exchange over an already-bound real UDP
// socket (used by cmd tools and the realsockets example), on the
// system clock.
func QueryConn(conn net.PacketConn, server net.Addr, timeout time.Duration) (*Result, error) {
	return QueryConnClock(conn, server, time.Now, timeout)
}

// QueryConnClock is QueryConn with an injected clock: every timestamp
// — the request's transmit time, the four-timestamp offset inputs, and
// the read deadline — comes from now. Mixing clocks here is the bug
// class this signature exists to prevent: a wall-clock deadline on a
// logical-clock exchange either never fires or fires instantly.
func QueryConnClock(conn net.PacketConn, server net.Addr, now func() time.Time, timeout time.Duration) (*Result, error) {
	req := NewClientPacket(now())
	sent := now()
	if _, err := conn.WriteTo(req.Encode(), server); err != nil {
		return nil, err
	}
	if err := conn.SetReadDeadline(now().Add(timeout)); err != nil {
		return nil, err
	}
	buf := make([]byte, 1024)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			return nil, ErrNoResponse
		}
		if from.String() != server.String() {
			continue // stray datagram from elsewhere
		}
		recvd := now()
		resp, err := Decode(buf[:n])
		if err != nil {
			return nil, err
		}
		return evaluate(req, resp, addrPortOf(from), sent, recvd)
	}
}

// QuerySim performs one SNTP exchange over the netsim fabric from the
// given source address. now supplies the client's clock (the experiment
// clock for mass runs).
func QuerySim(n *netsim.Network, src netip.AddrPort, server netip.AddrPort, now func() time.Time, timeout time.Duration) (*Result, error) {
	conn, err := n.ListenUDP(src)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	req := NewClientPacket(now())
	sent := now()
	if _, err := conn.WriteTo(req.Encode(), server); err != nil {
		return nil, err
	}
	// The deadline lives on the injected clock, like every other
	// timestamp in the exchange. Under a ManualClock the armed deadline
	// makes a dead read return immediately in logical time instead of
	// parking a wall timer against a frozen clock.
	if err := conn.SetReadDeadline(now().Add(timeout)); err != nil {
		return nil, err
	}
	buf := make([]byte, 1024)
	for {
		nr, from, err := conn.ReadFrom(buf)
		if err != nil {
			return nil, ErrNoResponse
		}
		if from != server {
			continue
		}
		recvd := now()
		resp, err := Decode(buf[:nr])
		if err != nil {
			return nil, err
		}
		return evaluate(req, resp, server, sent, recvd)
	}
}
