package ntp

import (
	"testing"
	"time"
)

// FuzzDecode hardens the NTP parser against arbitrary datagrams — the
// capture server feeds every UDP payload it receives into it.
func FuzzDecode(f *testing.F) {
	f.Add(NewClientPacket(time.Unix(1721433600, 0)).Encode())
	f.Add(make([]byte, PacketSize))
	f.Add([]byte("not ntp at all, but longer than fourty-eight bytes padding"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode into a packet that decodes
		// to the same header (the first 48 bytes round-trip).
		back, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if *back != *p {
			t.Fatalf("round trip changed packet:\n%+v\n%+v", p, back)
		}
	})
}
