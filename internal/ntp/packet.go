// Package ntp implements the subset of RFC 5905 the reproduction needs:
// the 48-byte packet codec, an SNTP client, and a server whose defining
// feature — following Rye & Levin and the paper — is that it records the
// source address of every client that synchronises against it.
//
// The same server core runs over a real net.PacketConn (cmd/ntpserved,
// the realsockets example) and over the netsim fabric (the mass
// collection experiments).
package ntp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// PacketSize is the size of an NTP header without extensions. The server
// ignores any trailing extension fields, like common implementations.
const PacketSize = 48

// Port is the IANA-assigned NTP port.
const Port = 123

// Mode is the 3-bit association mode.
type Mode uint8

// RFC 5905 association modes.
const (
	ModeReserved Mode = iota
	ModeSymmetricActive
	ModeSymmetricPassive
	ModeClient
	ModeServer
	ModeBroadcast
	ModeControl
	ModePrivate
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	names := [...]string{
		"reserved", "symmetric-active", "symmetric-passive", "client",
		"server", "broadcast", "control", "private",
	}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// LeapIndicator is the 2-bit leap warning field.
type LeapIndicator uint8

// Leap indicator values.
const (
	LeapNone LeapIndicator = iota
	LeapAddSecond
	LeapDelSecond
	LeapUnsynchronized
)

// Time64 is the 64-bit NTP timestamp format: seconds since 1900-01-01
// UTC in the upper 32 bits, binary fraction in the lower 32.
type Time64 uint64

// ntpEpochOffset is the difference between the NTP era-0 epoch
// (1900-01-01) and the Unix epoch (1970-01-01) in seconds.
const ntpEpochOffset = 2208988800

// ToTime64 converts a time.Time to the NTP short era-0 format.
func ToTime64(t time.Time) Time64 {
	if t.IsZero() {
		return 0
	}
	secs := uint64(t.Unix() + ntpEpochOffset)
	frac := uint64(t.Nanosecond()) << 32 / 1e9
	return Time64(secs<<32 | frac)
}

// Time converts back to time.Time (era 0). The zero Time64 maps to the
// zero time.Time, matching its RFC meaning of "unknown".
func (ts Time64) Time() time.Time {
	if ts == 0 {
		return time.Time{}
	}
	secs := int64(ts>>32) - ntpEpochOffset
	nanos := (int64(ts&0xffffffff)*1e9 + 1<<31) >> 32
	return time.Unix(secs, nanos).UTC()
}

// Packet is a decoded NTP header.
type Packet struct {
	Leap           LeapIndicator
	Version        uint8
	Mode           Mode
	Stratum        uint8
	Poll           int8
	Precision      int8
	RootDelay      uint32 // 16.16 fixed-point seconds
	RootDispersion uint32 // 16.16 fixed-point seconds
	ReferenceID    [4]byte
	ReferenceTime  Time64
	OriginTime     Time64
	ReceiveTime    Time64
	TransmitTime   Time64
}

// Errors returned by Decode.
var (
	ErrShortPacket = errors.New("ntp: packet shorter than 48 bytes")
	ErrBadVersion  = errors.New("ntp: unsupported protocol version")
)

// Encode serialises the header into a fresh 48-byte slice.
func (p *Packet) Encode() []byte {
	return p.AppendEncode(make([]byte, 0, PacketSize))
}

// AppendEncode serialises the header onto dst and returns the extended
// slice, allocating only if dst lacks capacity. The collection fast
// path encodes millions of requests into per-shard scratch buffers, so
// the steady state is zero-alloc (asserted by TestEncodeDecodeZeroAlloc).
func (p *Packet) AppendEncode(dst []byte) []byte {
	var b [PacketSize]byte
	p.encodeTo(b[:])
	return append(dst, b[:]...)
}

// encodeTo writes the 48-byte wire form into b[:PacketSize].
func (p *Packet) encodeTo(b []byte) {
	b[0] = byte(p.Leap)<<6 | (p.Version&0x7)<<3 | byte(p.Mode)&0x7
	b[1] = p.Stratum
	b[2] = byte(p.Poll)
	b[3] = byte(p.Precision)
	binary.BigEndian.PutUint32(b[4:], p.RootDelay)
	binary.BigEndian.PutUint32(b[8:], p.RootDispersion)
	copy(b[12:16], p.ReferenceID[:])
	binary.BigEndian.PutUint64(b[16:], uint64(p.ReferenceTime))
	binary.BigEndian.PutUint64(b[24:], uint64(p.OriginTime))
	binary.BigEndian.PutUint64(b[32:], uint64(p.ReceiveTime))
	binary.BigEndian.PutUint64(b[40:], uint64(p.TransmitTime))
}

// EncodeBatch appends the wire encodings of ps onto dst as one
// contiguous slab (len(ps)*PacketSize bytes) and returns the extended
// slice. Runs of equal headers — the shape the collection fast path
// produces, since every request within a frozen slice carries the same
// transmit stamp — are encoded once and then copied stride to stride,
// which is substantially cheaper than field-by-field serialisation.
func EncodeBatch(ps []Packet, dst []byte) []byte {
	if len(ps) == 0 {
		return dst
	}
	off := len(dst)
	need := len(ps) * PacketSize
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	prev := -1
	for i := range ps {
		b := dst[off+i*PacketSize:]
		if prev >= 0 && ps[i] == ps[prev] {
			copy(b[:PacketSize], dst[off+prev*PacketSize:])
			continue
		}
		ps[i].encodeTo(b)
		prev = i
	}
	return dst
}

// DecodeBatch decodes a slab of back-to-back 48-byte headers into ps,
// one element per stride, and returns the number decoded. ps must have
// at least len(slab)/PacketSize elements; a trailing partial header or
// an undecodable stride fails the whole batch with the stride index in
// the error. Like EncodeBatch, runs of identical strides are decoded
// once: repeated request templates cost a comparison, not a parse.
func DecodeBatch(ps []Packet, slab []byte) (int, error) {
	if len(slab)%PacketSize != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes in slab", ErrShortPacket, len(slab)%PacketSize)
	}
	n := len(slab) / PacketSize
	prev := -1
	for i := 0; i < n; i++ {
		raw := slab[i*PacketSize : (i+1)*PacketSize]
		if prev >= 0 && bytes.Equal(raw, slab[prev*PacketSize:(prev+1)*PacketSize]) {
			ps[i] = ps[prev]
			continue
		}
		if err := DecodeInto(&ps[i], raw); err != nil {
			return i, fmt.Errorf("slab stride %d: %w", i, err)
		}
		prev = i
	}
	return n, nil
}

// Decode parses an NTP header from b. Extension fields and MACs beyond
// the first 48 bytes are ignored. Versions 1 through 4 are accepted, as
// real pool servers answer all of them.
func Decode(b []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodeInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto parses an NTP header from b into p, overwriting every
// field. It is Decode without the Packet allocation: the server's
// datagram loop decodes into a stack value.
func DecodeInto(p *Packet, b []byte) error {
	if len(b) < PacketSize {
		return ErrShortPacket
	}
	version := b[0] >> 3 & 0x7
	if version == 0 || version > 4 {
		return fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	*p = Packet{
		Leap:           LeapIndicator(b[0] >> 6),
		Version:        version,
		Mode:           Mode(b[0] & 0x7),
		Stratum:        b[1],
		Poll:           int8(b[2]),
		Precision:      int8(b[3]),
		RootDelay:      binary.BigEndian.Uint32(b[4:]),
		RootDispersion: binary.BigEndian.Uint32(b[8:]),
		ReferenceTime:  Time64(binary.BigEndian.Uint64(b[16:])),
		OriginTime:     Time64(binary.BigEndian.Uint64(b[24:])),
		ReceiveTime:    Time64(binary.BigEndian.Uint64(b[32:])),
		TransmitTime:   Time64(binary.BigEndian.Uint64(b[40:])),
	}
	copy(p.ReferenceID[:], b[12:16])
	return nil
}

// ClientPacket returns a version-4 mode-3 request with TransmitTime
// stamped from now, as SNTP clients send. Returned by value so hot
// paths can keep it on the stack.
func ClientPacket(now time.Time) Packet {
	return Packet{
		Version:      4,
		Mode:         ModeClient,
		TransmitTime: ToTime64(now),
	}
}

// NewClientPacket is ClientPacket on the heap, kept for callers that
// want a pointer.
func NewClientPacket(now time.Time) *Packet {
	p := ClientPacket(now)
	return &p
}
