package chaos

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"ntpscan/internal/core"
	"ntpscan/internal/world"
	"ntpscan/internal/zgrab"
)

// Test hooks: the chaos scenario matrix as exported helpers, so other
// packages' test suites (the observability invariant tests in
// internal/obs) run the exact same campaigns the chaos suite does —
// one scenario definition, many oracles.

// Seeds returns the chaos seed matrix: NTPSCAN_CHAOS_SEEDS
// (space-separated, set by `make chaos`) when present, else a single
// default seed. A malformed entry panics — a misconfigured matrix must
// not silently shrink coverage.
func Seeds() []uint64 {
	env := os.Getenv("NTPSCAN_CHAOS_SEEDS")
	if env == "" {
		return []uint64{11}
	}
	var seeds []uint64
	for _, f := range strings.Fields(env) {
		s, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("chaos: bad seed %q in NTPSCAN_CHAOS_SEEDS: %v", f, err))
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// Config is the canonical chaos-scale pipeline configuration for a
// seed: small world scales, retries and the circuit breaker on. Two
// environment knobs widen the matrix without touching the scenario
// definition: NTPSCAN_CHAOS_SCALE multiplies the address-only eyeball
// population, and NTPSCAN_CHAOS_LAZY=1 derives that population through
// the shard arenas instead of building it (`make chaos` runs one seed
// at SCALE=10 against the lazy world). The capture budget is pinned, so
// scaled runs do the same campaign work against a bigger universe. A
// malformed scale panics, like a malformed seed matrix.
func Config(seed uint64) core.Config {
	scale := 1.0
	if env := os.Getenv("NTPSCAN_CHAOS_SCALE"); env != "" {
		f, err := strconv.ParseFloat(env, 64)
		if err != nil || f <= 0 {
			panic(fmt.Sprintf("chaos: bad NTPSCAN_CHAOS_SCALE %q", env))
		}
		scale = f
	}
	return core.Config{
		Seed: seed,
		World: world.Config{
			DeviceScale: 1e-3,
			AddrScale:   1e-6 * scale,
			ASScale:     0.02,
			Lazy:        os.Getenv("NTPSCAN_CHAOS_LAZY") == "1",
		},
		Workers:       8,
		CaptureBudget: 2500,
		Retry:         zgrab.DefaultRetryPolicy(),
		Breaker:       &zgrab.BreakerConfig{},
	}
}

// NoGoroutineLeaks arms a leak check on the test: at cleanup, the
// goroutine count must settle back to its value at arm time (worker
// pools, per-node executors and monitor goroutines all join before a
// campaign returns). On a leak it fails with a full stack dump, so the
// stuck goroutine is named, not guessed at.
func NoGoroutineLeaks(t testing.TB) {
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		after := runtime.NumGoroutine()
		for after > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			after = runtime.NumGoroutine()
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d at start, %d after cleanup\n%s", before, after, buf[:n])
		}
	})
}

// CongestedSpec is DefaultSpec plus a congested link layer: two
// vantage access links and four device /48s behind short queues at 0.9
// utilization, with two mid-campaign route flaps. Heavy — most
// congested-path exchanges queue visibly, a tail drops — but the
// campaign stays productive.
func CongestedSpec() Spec {
	s := DefaultSpec()
	s.CongestedVantages = 2
	s.CongestedPrefixes = 4
	s.LinkQueuePkts = 12
	s.LinkBytesPerSec = 32 << 20 // ~15µs per queued 512B cross packet
	s.LinkPropDelay = 20 * time.Microsecond
	s.LinkUtilization = 0.9
	s.LinkJitter = 25 * time.Microsecond
	s.RouteChurns = 2
	s.ChurnDownSlices = 12
	return s
}

// SaturatedSpec pushes CongestedSpec to utilization 1.0 on six
// prefixes with three route flaps: congested links drop or arrive late
// almost always. The `make chaos` congested leg and the
// stamped-not-slept benchmark both pin this spec.
func SaturatedSpec() Spec {
	s := CongestedSpec()
	s.LinkUtilization = 1.0
	s.CongestedPrefixes = 6
	s.RouteChurns = 3
	return s
}

// FaultedPipeline builds a pipeline and installs the plan derived for
// (planSeed, spec). The plan is a pure function of the arguments, so a
// second call builds a bit-identical setup — the property resume (and
// every cross-run comparison) relies on.
func FaultedPipeline(cfg core.Config, planSeed uint64, spec Spec) *core.Pipeline {
	p := core.NewPipeline(cfg)
	p.InstallFaults(PlanFor(p, planSeed, spec))
	return p
}
