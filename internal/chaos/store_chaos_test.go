package chaos

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ntpscan/internal/core"
	"ntpscan/internal/store"
)

func storeDigest(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s %d\n", n, len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// The regression pin for the torn-tail flake (ROADMAP item 4): the
// scheduling-dependent value was the *order of capture rows* — when two
// shards first-captured the same address in the same slice, the
// cross-shard first-win race decided which shard's capture log carried
// the row, so the store's capture rows (and one segment's bytes) could
// wobble with worker interleaving while JSONL and telemetry stayed
// fixed. Shard effects are now buffered and committed in ascending
// shard order at the barrier, making row order worker-invariant. This
// test pins that at the row level — raw store rows, compared
// one-by-one across worker counts under the fault fabric, over the
// seed matrix the flake was chased with — so a recurrence names the
// exact diverging row instead of a one-byte digest mismatch.
func TestStoreRowsIdenticalAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{11, 23, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rows := func(workers int) []string {
				cfg := Config(seed)
				cfg.Workers = workers
				p := FaultedPipeline(cfg, seed+1, DefaultSpec())
				st, err := store.Open(t.TempDir(), store.Options{Obs: p.Obs})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Store: st}); err != nil {
					t.Fatal(err)
				}
				var out []string
				it := st.Scan(store.Pred{})
				for it.Next() {
					b, err := json.Marshal(it.Row())
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, string(b))
				}
				if err := it.Err(); err != nil {
					t.Fatal(err)
				}
				return out
			}
			want := rows(1)
			if len(want) == 0 {
				t.Fatal("store holds no rows")
			}
			for _, workers := range []int{3, 8} {
				got := rows(workers)
				if len(got) != len(want) {
					t.Errorf("workers=%d: %d rows, want %d", workers, len(got), len(want))
				}
				for i := range want {
					if i < len(got) && got[i] != want[i] {
						t.Errorf("workers=%d: row %d diverges:\n got %s\nwant %s", workers, i, got[i], want[i])
						break
					}
				}
			}
		})
	}
}

// Crash recovery under faults: a store-backed faulted campaign is
// killed with a torn tail — the newest segment half-written, a stray
// .tmp staged, and the manifest rolled back to the last checkpoint's
// state — and the resumed run must recover the directory and finish
// bit-identical to the uninterrupted run, torn bytes and all.
func TestStoreTornTailRecoveryUnderFaults(t *testing.T) {
	NoGoroutineLeaks(t)
	for _, seed := range Seeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Uninterrupted reference run.
			cfg := Config(seed)
			p1 := FaultedPipeline(cfg, seed+1, DefaultSpec())
			fullDir := t.TempDir()
			st1, err := store.Open(fullDir, store.Options{Obs: p1.Obs})
			if err != nil {
				t.Fatal(err)
			}
			var full bytes.Buffer
			var cps []*core.Checkpoint
			crashDir := t.TempDir()
			if _, err := p1.RunCampaign(context.Background(), core.CampaignOpts{
				Store:           st1,
				Out:             &full,
				CheckpointEvery: 24,
				OnCheckpoint: func(cp *core.Checkpoint) {
					cps = append(cps, cp)
					// Snapshot one checkpoint PAST the resume point: the
					// segments torn below must postdate the manifest the
					// resume rewinds to, as a real crash's in-flight
					// writes would.
					if len(cps) == 3 {
						// Snapshot the directory the crash will tear below.
						ents, err := os.ReadDir(fullDir)
						if err != nil {
							t.Fatal(err)
						}
						for _, e := range ents {
							data, err := os.ReadFile(filepath.Join(fullDir, e.Name()))
							if err != nil {
								t.Fatal(err)
							}
							if err := os.WriteFile(filepath.Join(crashDir, e.Name()), data, 0o644); err != nil {
								t.Fatal(err)
							}
						}
					}
				},
			}); err != nil {
				t.Fatal(err)
			}
			if len(cps) < 3 {
				t.Fatalf("expected 3 checkpoints, got %d", len(cps))
			}
			wantDigest := storeDigest(t, fullDir)
			cp := cps[1]
			blob, err := json.Marshal(cp)
			if err != nil {
				t.Fatal(err)
			}
			var back core.Checkpoint
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}

			// Tear the tail: truncate the newest live segment to half its
			// bytes and stage a stray .tmp, as a mid-write kill would.
			ents, err := os.ReadDir(crashDir)
			if err != nil {
				t.Fatal(err)
			}
			var segs []string
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".seg") {
					segs = append(segs, e.Name())
				}
			}
			if len(segs) == 0 {
				t.Fatal("crash snapshot holds no segments")
			}
			sort.Strings(segs)
			victim := filepath.Join(crashDir, segs[len(segs)-1])
			data, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(crashDir, "seg-L0-99999.seg.tmp"), []byte("torn"), 0o644); err != nil {
				t.Fatal(err)
			}

			// Resume on a fresh faulted pipeline: Open must drop the torn
			// tail, ResetTo must rewind to the checkpoint manifest, and the
			// rerun must land on the uninterrupted run's exact bytes.
			p2 := FaultedPipeline(cfg, seed+1, DefaultSpec())
			st2, err := store.Open(crashDir, store.Options{Obs: p2.Obs})
			if err != nil {
				t.Fatal(err)
			}
			var rest bytes.Buffer
			if _, err := p2.ResumeCampaign(context.Background(), &back, core.CampaignOpts{Store: st2, Out: &rest}); err != nil {
				t.Fatal(err)
			}
			if got := storeDigest(t, crashDir); got != wantDigest {
				t.Error("recovered store directory diverges from uninterrupted run")
			}
			if want := full.Bytes()[back.OutOffset:]; !bytes.Equal(rest.Bytes(), want) {
				t.Errorf("resumed output %d bytes, want %d", rest.Len(), len(want))
			}
		})
	}
}
