package chaos

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"ntpscan/internal/cluster"
	"ntpscan/internal/core"
	"ntpscan/internal/netsim"
	"ntpscan/internal/store"
)

// Node-loss chaos: the cluster campaign under the canonical node-loss
// schedule (crashes, a partition, a lagging heartbeat — NodeLossSpec)
// plus one pinned partition that provably produces zombie submissions.
// The claim under test is the tentpole's: node loss is invisible in the
// output. Byte-identical JSONL, identical Summary, identical Captures —
// and the cluster's own books balance.

// pinPartition adds a deterministic partition of node 2 over slices
// [40, 52): the node is mid-campaign, holds leases, and its grant view
// outlives the first missed heartbeat — so fenced (zombie) submissions
// are guaranteed, not left to where the drawn windows happen to land.
func pinPartition(p *core.Pipeline) {
	from, _ := p.SliceWindow(40)
	until, _ := p.SliceWindow(52)
	p.Cfg.Faults.AddNode(netsim.NodeFault{
		Kind: netsim.NodePartition, Node: 2, From: from, Until: until,
	})
}

func TestClusterNodeLossDeterministic(t *testing.T) {
	NoGoroutineLeaks(t)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Oracle: the same data-plane faults, single process, no
			// cluster. Node faults never touch the fabric, so this is
			// the exact output a lossless cluster must reproduce.
			var want bytes.Buffer
			base := faultedPipeline(chaosConfig(seed), seed+1, DefaultSpec())
			bd, err := base.RunCampaign(context.Background(), core.CampaignOpts{Out: &want})
			if err != nil {
				t.Fatal(err)
			}

			var got bytes.Buffer
			p := faultedPipeline(chaosConfig(seed), seed+1, NodeLossSpec(3, 1))
			pinPartition(p)
			cd, coord, err := cluster.Run(context.Background(), p, cluster.Config{Nodes: 3},
				core.CampaignOpts{Out: &got})
			if err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("node-loss cluster JSONL diverges from single-process run (%d vs %d bytes)",
					got.Len(), want.Len())
			}
			if d1, d2 := digest(t, bd), digest(t, cd); d1 != d2 {
				t.Errorf("dataset digest %x, want %x", d2, d1)
			}
			if p.Captures != base.Captures {
				t.Errorf("Captures = %d, want %d", p.Captures, base.Captures)
			}
			if g, w := fmt.Sprintf("%+v", p.Summary.Stats()), fmt.Sprintf("%+v", base.Summary.Stats()); g != w {
				t.Errorf("Summary diverges:\n got %s\nwant %s", g, w)
			}

			claimed, completed, fenced, lost := coord.TaskCounts()
			t.Logf("tasks: claimed %d = completed %d + fenced %d + lost %d",
				claimed, completed, fenced, lost)
			if fenced == 0 {
				t.Error("kill run produced no epoch rejections — zombies were not provably fenced")
			}
			if claimed != completed+fenced+lost {
				t.Errorf("task conservation violated: claimed %d != completed %d + fenced %d + lost %d",
					claimed, completed, fenced, lost)
			}
			if inflight := coord.Obs.Snapshot()["cluster_tasks_inflight"]; len(inflight) != 1 || inflight[0] != 0 {
				t.Errorf("cluster_tasks_inflight = %v at campaign end, want [0]", inflight)
			}
		})
	}
}

// The store directory is part of the byte-identity contract too: a
// store-backed cluster campaign under node loss must leave the exact
// directory bytes (segments, manifest) of the single-process run.
func TestClusterStoreDirIdenticalAcrossNodes(t *testing.T) {
	NoGoroutineLeaks(t)
	seed := chaosSeeds(t)[0]

	runDir := func(nodes int) string {
		dir := t.TempDir()
		var spec Spec
		if nodes > 1 {
			spec = NodeLossSpec(nodes, 1)
		} else {
			spec = DefaultSpec()
		}
		p := faultedPipeline(chaosConfig(seed), seed+1, spec)
		st, err := store.Open(dir, store.Options{Obs: p.Obs})
		if err != nil {
			t.Fatal(err)
		}
		if nodes > 1 {
			pinPartition(p)
			_, coord, err := cluster.Run(context.Background(), p,
				cluster.Config{Nodes: nodes}, core.CampaignOpts{Store: st})
			if err != nil {
				t.Fatal(err)
			}
			if coord.EpochRejections() == 0 {
				t.Errorf("nodes=%d: no epoch rejections — zombie fencing untested", nodes)
			}
		} else if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Store: st}); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	want := storeDigest(t, runDir(1))
	for _, nodes := range []int{3, 8} {
		if got := storeDigest(t, runDir(nodes)); got != want {
			t.Errorf("nodes=%d: store directory diverges from single-process run", nodes)
		}
	}
}

// The EXPERIMENTS.md ladder: 0, 1 and 2 node kills against the same
// three-node campaign. Convergence-to-clean is exact by construction —
// the bytes must not move — while the recovery work (expired leases,
// lost tasks, fenced submissions) grows with the kill count.
func TestClusterKillLadderConvergesExactly(t *testing.T) {
	NoGoroutineLeaks(t)
	seed := chaosSeeds(t)[0]

	var want bytes.Buffer
	base := faultedPipeline(chaosConfig(seed), seed+1, DefaultSpec())
	if _, err := base.RunCampaign(context.Background(), core.CampaignOpts{Out: &want}); err != nil {
		t.Fatal(err)
	}

	for _, kills := range []int{0, 1, 2} {
		spec := DefaultSpec()
		spec.ClusterNodes = 3
		spec.NodeKills = kills
		spec.KillLen = NodeLossSpec(3, kills).KillLen

		var got bytes.Buffer
		p := faultedPipeline(chaosConfig(seed), seed+1, spec)
		_, coord, err := cluster.Run(context.Background(), p, cluster.Config{Nodes: 3},
			core.CampaignOpts{Out: &got})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("kills=%d: output diverges from clean single-process run (%d vs %d bytes)",
				kills, got.Len(), want.Len())
		}
		claimed, completed, fenced, lost := coord.TaskCounts()
		snap := coord.Obs.Snapshot()
		expired := snap["cluster_leases_expired_total"]
		t.Logf("kills=%d: claimed %d, completed %d, fenced %d, lost %d, leases expired %v",
			kills, claimed, completed, fenced, lost, expired)
		if kills == 0 && (fenced != 0 || lost != 0) {
			t.Errorf("kills=0: healthy cluster fenced %d / lost %d", fenced, lost)
		}
	}
}
