// Package chaos generates deterministic fault plans against a deployed
// pipeline and hosts the end-to-end fault-injection suite. Given a
// pipeline (for the vantage set and the responsive device population),
// a seed, and a Spec of how much to break, PlanFor emits a
// netsim.FaultPlan whose windows land inside the collection window —
// vantage blackouts, device outages, prefix loss bursts, slow links,
// and garbled banners. The plan is pure data: the same (pipeline
// config, seed, spec) always yields the same plan, and the same
// (pipeline config, plan) always yields the same campaign.
package chaos

import (
	"net/netip"
	"time"

	"ntpscan/internal/core"
	"ntpscan/internal/netsim"
	"ntpscan/internal/netsim/link"
	"ntpscan/internal/rng"
	"ntpscan/internal/world"
)

// Spec sizes a fault plan. Zero values mean "none of that fault".
type Spec struct {
	// VantageBlackouts takes that many vantage servers fully offline
	// for BlackoutLen each (scores collapse, capture streams pause).
	VantageBlackouts int
	BlackoutLen      time.Duration

	// HostOutages reboots that many responsive devices for OutageLen.
	HostOutages int
	OutageLen   time.Duration

	// LossBursts rains BurstProb loss on that many /48s for BurstLen.
	LossBursts int
	BurstLen   time.Duration
	BurstProb  float64

	// SlowLinks adds SlowLatency to that many devices for SlowLen
	// (exceeding the dial timeout turns the device into a timeout).
	SlowLinks   int
	SlowLen     time.Duration
	SlowLatency time.Duration

	// Garbles corrupts that many devices' responses for GarbleLen.
	Garbles   int
	GarbleLen time.Duration

	// ClusterNodes is the campaign-node count the node-level faults
	// below target (0 disables them all, leaving the plan byte-identical
	// to a pre-cluster one — their rng draws happen after every
	// data-plane draw).
	ClusterNodes int

	// NodeKills crashes that many nodes for KillLen each: the process
	// dies mid-campaign, its leases fence, its shards reassign, and it
	// rejoins from the coordinator's state when the window closes.
	NodeKills int
	KillLen   time.Duration

	// NodePartitions cuts that many nodes off the coordinator for
	// PartitionLen each: the node keeps zombie-executing until its
	// lease view expires, and everything it submits is fenced.
	NodePartitions int
	PartitionLen   time.Duration

	// SlowHeartbeats lags that many nodes' heartbeats by HeartbeatLag
	// for SlowHeartbeatLen each; a lag past the coordinator's grace
	// reads as a miss.
	SlowHeartbeats   int
	SlowHeartbeatLen time.Duration
	HeartbeatLag     time.Duration

	// CongestedVantages puts that many vantage servers behind a queued
	// access link (LinkQueuePkts / LinkBytesPerSec / LinkPropDelay /
	// LinkUtilization / LinkJitter below); CongestedPrefixes does the
	// same for that many responsive-device /48 aggregates. Zero links
	// (all three counts zero) leave the plan byte-identical to a
	// pre-link one — link rng draws happen after every other draw.
	CongestedVantages int
	CongestedPrefixes int
	LinkQueuePkts     int
	LinkBytesPerSec   int64
	LinkPropDelay     time.Duration
	LinkUtilization   float64
	LinkJitter        time.Duration

	// RouteChurns schedules that many withdraw→re-announce flaps on
	// congested prefixes: each withdraws a /48 at a drawn slice and
	// re-announces it ChurnDownSlices later, flipping reachability and
	// resetting the prefix's queue process.
	RouteChurns     int
	ChurnDownSlices int
}

// DefaultSpec is a moderately hostile four weeks: a couple of vantage
// blackouts, a handful of device outages and loss bursts, some broken
// middleboxes — enough to exercise every recovery path without
// drowning the campaign.
func DefaultSpec() Spec {
	return Spec{
		VantageBlackouts: 2,
		BlackoutLen:      30 * time.Hour, // > 4 slices: monitor must react
		HostOutages:      4,
		OutageLen:        24 * time.Hour,
		LossBursts:       3,
		BurstLen:         36 * time.Hour,
		BurstProb:        0.5,
		SlowLinks:        2,
		SlowLen:          24 * time.Hour,
		SlowLatency:      time.Second, // far beyond any dial timeout
		Garbles:          3,
		GarbleLen:        48 * time.Hour,
	}
}

// NodeLossSpec is the canonical node-loss schedule for a cluster of
// the given size: DefaultSpec's data-plane hostility plus `kills`
// multi-day node crashes, a control-plane partition, and a lagging
// heartbeat — the scenario `make chaos` runs its node-loss leg with.
func NodeLossSpec(nodes, kills int) Spec {
	s := DefaultSpec()
	s.ClusterNodes = nodes
	s.NodeKills = kills
	s.KillLen = 4 * 24 * time.Hour // ~14 slices: long enough to force reassignment and rejoin
	s.NodePartitions = 1
	s.PartitionLen = 2 * 24 * time.Hour
	s.SlowHeartbeats = 1
	s.SlowHeartbeatLen = 24 * time.Hour
	s.HeartbeatLag = 2 * time.Hour // far past the default 30m grace
	return s
}

// PlanFor derives a fault plan for the pipeline's world. Targets are
// drawn from the deployed vantage set and the responsive population
// with a stream seeded off (pipeline seed, plan seed) only — no
// dependence on any run-time state, so a plan can be regenerated for a
// resume by calling PlanFor again with the same arguments.
func PlanFor(p *core.Pipeline, seed uint64, spec Spec) *netsim.FaultPlan {
	r := rng.New(seed ^ p.Cfg.Seed ^ 0xfa017)
	start := p.W.Cfg.Start
	plan := &netsim.FaultPlan{Seed: seed}

	// window places a fault of length d uniformly inside the collection
	// window (clipped so it starts strictly after the first slice — the
	// campaign should always boot cleanly).
	window := func(d time.Duration) (time.Time, time.Time) {
		span := world.CollectionWindow - d
		if span < 0 {
			span = 0
		}
		off := time.Duration(r.Int63() % int64(span+1))
		from := start.Add(off)
		return from, from.Add(d)
	}

	// deviceAddr is the device's address at the window start — a pure
	// function of the world seed, usable before any collection ran.
	responsive := p.W.ResponsiveNTP()
	deviceAddr := func(d *world.Device) netip.Addr {
		return p.W.AddrAt(d, d.EpochAt(start, start))
	}
	pickDevice := func() *world.Device {
		if len(responsive) == 0 {
			return nil
		}
		return responsive[r.Intn(len(responsive))]
	}

	for i := 0; i < spec.VantageBlackouts && len(p.Servers) > 0; i++ {
		vs := p.Servers[r.Intn(len(p.Servers))]
		from, until := window(spec.BlackoutLen)
		plan.Add(netsim.Fault{Kind: netsim.FaultOutage, Addr: vs.Addr, From: from, Until: until})
	}
	for i := 0; i < spec.HostOutages; i++ {
		d := pickDevice()
		if d == nil {
			break
		}
		from, until := window(spec.OutageLen)
		plan.Add(netsim.Fault{Kind: netsim.FaultOutage, Addr: deviceAddr(d), From: from, Until: until})
	}
	for i := 0; i < spec.LossBursts; i++ {
		d := pickDevice()
		if d == nil {
			break
		}
		pfx, err := deviceAddr(d).Prefix(48)
		if err != nil {
			continue
		}
		from, until := window(spec.BurstLen)
		plan.Add(netsim.Fault{Kind: netsim.FaultLoss, Prefix: pfx, From: from, Until: until, Prob: spec.BurstProb})
	}
	for i := 0; i < spec.SlowLinks; i++ {
		d := pickDevice()
		if d == nil {
			break
		}
		from, until := window(spec.SlowLen)
		plan.Add(netsim.Fault{Kind: netsim.FaultSlow, Addr: deviceAddr(d), From: from, Until: until, Latency: spec.SlowLatency})
	}
	for i := 0; i < spec.Garbles; i++ {
		d := pickDevice()
		if d == nil {
			break
		}
		from, until := window(spec.GarbleLen)
		plan.Add(netsim.Fault{Kind: netsim.FaultGarble, Addr: deviceAddr(d), From: from, Until: until})
	}
	// Node-level (control-plane) faults draw last so a zero-node spec
	// yields exactly the plan it always did.
	if spec.ClusterNodes > 0 {
		pickNode := func() int { return r.Intn(spec.ClusterNodes) }
		for i := 0; i < spec.NodeKills; i++ {
			from, until := window(spec.KillLen)
			plan.AddNode(netsim.NodeFault{Kind: netsim.NodeCrash, Node: pickNode(), From: from, Until: until})
		}
		for i := 0; i < spec.NodePartitions; i++ {
			from, until := window(spec.PartitionLen)
			plan.AddNode(netsim.NodeFault{Kind: netsim.NodePartition, Node: pickNode(), From: from, Until: until})
		}
		for i := 0; i < spec.SlowHeartbeats; i++ {
			from, until := window(spec.SlowHeartbeatLen)
			plan.AddNode(netsim.NodeFault{Kind: netsim.NodeSlowHeartbeat, Node: pickNode(), From: from, Until: until, Delay: spec.HeartbeatLag})
		}
	}
	// Link-layer draws come last of all, so a zero-link spec consumes no
	// extra rng and its plan stays byte-identical to a pre-link one.
	// They also use their own derived stream rather than continuing r:
	// the link plan must not shift when a spec adds node-level faults,
	// so a congested cluster campaign shares its data-plane physics
	// with the single-process baseline it is compared against.
	if spec.CongestedVantages+spec.CongestedPrefixes+spec.RouteChurns > 0 {
		lr := rng.New(seed ^ p.Cfg.Seed ^ 0x11477)
		prm := link.Params{
			QueuePackets: spec.LinkQueuePkts,
			BytesPerSec:  spec.LinkBytesPerSec,
			PropDelay:    spec.LinkPropDelay,
			Utilization:  spec.LinkUtilization,
			JitterMax:    spec.LinkJitter,
		}
		lp := &link.Plan{
			// Offset the link seed off the fault seed so link and fault
			// hash streams never correlate even for equal flow identities.
			Seed:     seed ^ 0x1147,
			Epoch:    start,
			SliceLen: world.CollectionWindow / core.CollectSlices,
			Vantages: map[netip.Addr]link.Params{},
			Prefixes: map[netip.Prefix]link.Params{},
		}
		for i := 0; i < spec.CongestedVantages && len(p.Servers) > 0; i++ {
			vs := p.Servers[lr.Intn(len(p.Servers))]
			lp.Vantages[vs.Addr] = prm
		}
		var congested []netip.Prefix
		for i := 0; i < spec.CongestedPrefixes && len(responsive) > 0; i++ {
			// Drawn from lr, not pickDevice's r: node-fault draws above
			// must not shift which prefixes sit behind congested links.
			d := responsive[lr.Intn(len(responsive))]
			pfx, err := deviceAddr(d).Prefix(48)
			if err != nil {
				continue
			}
			if _, dup := lp.Prefixes[pfx]; !dup {
				congested = append(congested, pfx)
			}
			lp.Prefixes[pfx] = prm
		}
		// Churn flaps target congested prefixes: withdraw at a drawn
		// slice inside the campaign's middle half (the boot and the tail
		// stay routable), re-announce ChurnDownSlices later. Slices are
		// drawn, not windowed, because churn applies at slice
		// granularity by construction.
		down := spec.ChurnDownSlices
		if down <= 0 {
			down = 8
		}
		for i := 0; i < spec.RouteChurns && len(congested) > 0; i++ {
			pfx := congested[lr.Intn(len(congested))]
			at := core.CollectSlices/6 + lr.Intn(core.CollectSlices/2)
			lp.Churn = append(lp.Churn, link.ChurnEvent{Prefix: pfx, Slice: at, Withdraw: true})
			lp.Churn = append(lp.Churn, link.ChurnEvent{Prefix: pfx, Slice: at + down})
		}
		plan.Links = lp
	}
	return plan
}
